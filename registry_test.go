package imfant

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// registryOracle compiles patterns standalone and returns the sorted match
// list for input — the ground truth a registry-routed scan of the same
// version must reproduce byte-identically.
func registryOracle(t *testing.T, patterns []string, opts Options, input []byte) []Match {
	t.Helper()
	rs, err := Compile(patterns, opts)
	if err != nil {
		t.Fatalf("oracle compile: %v", err)
	}
	return rs.FindAll(input)
}

func TestRegistryBasics(t *testing.T) {
	r, err := NewRegistry([]string{"abc", "def"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Version(); got != 1 {
		t.Fatalf("fresh registry version = %d, want 1", got)
	}
	input := []byte("xx abc yy def zz xyz")
	if got := r.Count(input); got != 2 {
		t.Fatalf("v1 count = %d, want 2", got)
	}
	if _, err := r.Update([]string{"abc", "xyz"}, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := r.Version(); got != 2 {
		t.Fatalf("after update version = %d, want 2", got)
	}
	if got := r.Count(input); got != 2 {
		t.Fatalf("v2 count = %d, want 2 (abc+xyz)", got)
	}
	got := r.FindAll(input)
	want := registryOracle(t, []string{"abc", "xyz"}, Options{}, input)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v2 FindAll = %v, want %v", got, want)
	}
	// A failed update must leave the current version untouched.
	if _, err := r.Update([]string{"("}, Options{}); err == nil {
		t.Fatal("update with bad pattern: want error")
	}
	if got := r.Version(); got != 2 {
		t.Fatalf("after failed update version = %d, want 2", got)
	}
	if got := r.Count(input); got != 2 {
		t.Fatalf("after failed update count = %d, want 2", got)
	}
}

func TestRegistryUpdateBackground(t *testing.T) {
	r, err := NewRegistry([]string{"abc"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-r.UpdateBackground([]string{"def"}, Options{}):
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("background update did not complete")
	}
	if got := r.Count([]byte("abc def")); got != 1 {
		t.Fatalf("post-swap count = %d, want 1 (def only)", got)
	}
	if err := <-r.UpdateBackground([]string{"["}, Options{}); err == nil {
		t.Fatal("background update with bad pattern: want error")
	}
	if got := r.Version(); got != 2 {
		t.Fatalf("version after failed background update = %d, want 2", got)
	}
}

// TestRegistryStreamPinsVersion: a stream created before a swap keeps the
// old version's semantics for its whole life, while new block scans observe
// the new version immediately — the core zero-downtime contract.
func TestRegistryStreamPinsVersion(t *testing.T) {
	v1 := []string{"oldrule"}
	v2 := []string{"newrule"}
	r, err := NewRegistry(v1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Match
	sm := r.NewStreamMatcher(func(m Match) { streamed = append(streamed, m) })

	if _, err := r.Update(v2, Options{}); err != nil {
		t.Fatal(err)
	}
	input := []byte("-- oldrule -- newrule --")
	// New scans run on v2 right away.
	got := r.FindAll(input)
	want := registryOracle(t, v2, Options{}, input)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-swap FindAll = %v, want v2 oracle %v", got, want)
	}
	// The open stream still pins v1: DrainOld must not report clear yet.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := r.DrainOld(ctx); err == nil {
		t.Fatal("DrainOld with an open v1 stream: want timeout, got nil")
	}
	// And it matches on v1 rules even though v2 is current.
	if _, err := sm.Write(input); err != nil {
		t.Fatal(err)
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	wantStream := registryOracle(t, v1, Options{}, input)
	if !reflect.DeepEqual(streamed, wantStream) {
		t.Fatalf("stream matches = %v, want v1 oracle %v", streamed, wantStream)
	}
	// Close released the pin: the drain barrier clears.
	if err := r.DrainOld(context.Background()); err != nil {
		t.Fatalf("DrainOld after stream close: %v", err)
	}
}

// TestRegistrySwapDrainUnderTraffic hammers a registry with concurrent
// block scans and streams while the main goroutine hot-swaps between two
// versions. Every scan must return a match list byte-identical to exactly
// one version's oracle — never a blend, never a truncation — and the final
// drain must clear once traffic stops.
func TestRegistrySwapDrainUnderTraffic(t *testing.T) {
	v1 := []string{"needle", "VERSIONONE"}
	v2 := []string{"needle", "VERSIONTWO"}
	opts := Options{KeepOnMatch: true} // exercise the lazy-DFA engine too

	var input bytes.Buffer
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&input, "junk%04d ", rng.Intn(10000))
		if i%9 == 0 {
			input.WriteString("needle ")
		}
		if i == 50 {
			input.WriteString("VERSIONONE ")
		}
		if i == 150 {
			input.WriteString("VERSIONTWO ")
		}
	}
	payload := input.Bytes()
	oracle1 := registryOracle(t, v1, opts, payload)
	oracle2 := registryOracle(t, v2, opts, payload)
	if len(oracle1) == 0 || len(oracle2) == 0 || reflect.DeepEqual(oracle1, oracle2) {
		t.Fatalf("bad fixture: oracles %d/%d matches", len(oracle1), len(oracle2))
	}
	matchesOneOracle := func(got []Match) bool {
		return reflect.DeepEqual(got, oracle1) || reflect.DeepEqual(got, oracle2)
	}

	r, err := NewRegistry(v1, opts)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := Compile(v2, opts)
	if err != nil {
		t.Fatal(err)
	}
	rs1 := r.Current()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
	}

	// Block scanners: each FindAll pins whichever version is current.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := r.FindAll(payload)
				if !matchesOneOracle(got) {
					report("FindAll returned a blended/truncated match list (%d matches)", len(got))
					return
				}
			}
		}()
	}
	// Streamers: chunked writes across many swap boundaries; the pinned
	// version must hold for the whole stream.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				var got []Match
				sm := r.NewStreamMatcher(func(m Match) { got = append(got, m) })
				rest := payload
				for len(rest) > 0 {
					n := 1 + rng.Intn(len(rest))
					if _, err := sm.Write(rest[:n]); err != nil {
						report("stream write: %v", err)
						sm.Close()
						return
					}
					rest = rest[n:]
				}
				if err := sm.Close(); err != nil {
					report("stream close: %v", err)
					return
				}
				sortMatches(got)
				if !matchesOneOracle(got) {
					report("stream returned a blended/truncated match list (%d matches)", len(got))
					return
				}
			}
		}(int64(g))
	}

	// Hot-swap churn: alternate the two precompiled versions.
	deadline := time.Now().Add(300 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		if i%2 == 0 {
			r.Swap(rs2)
		} else {
			r.Swap(rs1)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	// Traffic has quiesced: every superseded version must drain.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.DrainOld(ctx); err != nil {
		t.Fatalf("DrainOld after traffic stopped: %v", err)
	}
	if got := r.Version(); got < 3 {
		t.Fatalf("version = %d, want several swaps applied", got)
	}
}
