package imfant

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/budget"
	"repro/internal/nfa"
	"repro/internal/pipeline"
	"repro/internal/rex"
)

// ErrScanTimeout is the typed error of scans cancelled by
// Options.ScanTimeout. It wraps context.DeadlineExceeded, so callers that
// already classify context failures keep working:
// errors.Is(err, imfant.ErrScanTimeout) and errors.Is(err,
// context.DeadlineExceeded) are both true. The timeout is observed at the
// engines' ordinary checkpoints (about every 4 KiB per automaton), the same
// rung of the degradation ladder as a context deadline — matches streamed
// before the cutoff were delivered, nothing after it is.
var ErrScanTimeout = fmt.Errorf("imfant: scan timeout: %w", context.DeadlineExceeded)

// ErrOverloaded is the typed error of scans rejected by overload shedding
// (Options.MaxConcurrentScans/MaxQueuedScans): the bounded work queue was
// full, so the scan was refused before doing any work instead of queueing
// unboundedly. Callers should treat it as back-pressure and retry later or
// drop the input, per their loss policy.
var ErrOverloaded = errors.New("imfant: overloaded: scan shed by bounded work queue")

// Stage identifies the compilation stage (§IV, Fig. 4) that raised a
// CompileError.
type Stage = pipeline.Stage

// The five pipeline stages, re-exported for failure attribution.
const (
	StageFrontEnd  = pipeline.StageFrontEnd  // lexical + syntactic analysis
	StageASTToFSA  = pipeline.StageASTToFSA  // Thompson-like construction
	StageSingleFSA = pipeline.StageSingleFSA // ε-removal, loop expansion, multiplicity
	StageMerge     = pipeline.StageMerge     // MFSA merging (Algorithm 1)
	StageBackEnd   = pipeline.StageBackEnd   // ANML generation
)

// ErrBudget is the sentinel wrapped by every resource-budget violation —
// pattern length, nesting depth, repetition bounds, NFA state caps during
// loop expansion, and the total MFSA state cap. Classify with
// errors.Is(err, imfant.ErrBudget) or IsBudget.
var ErrBudget = budget.Err

// IsBudget reports whether err is (or wraps) a resource-budget violation,
// as opposed to a plain syntax error.
func IsBudget(err error) bool { return budget.Is(err) }

// CompileError is a typed compilation failure. Per-rule failures carry the
// rule's index in the original ruleset and its pattern; ruleset-level
// failures (merging, ANML generation) carry Rule == -1 and an empty
// Pattern. Stage attributes the failure to the pipeline checkpoint that
// raised it, and Err — reachable through errors.As/Is — is the underlying
// cause (for example a *rex.SyntaxError, or a budget violation satisfying
// IsBudget).
type CompileError struct {
	// Rule is the pattern's index within the ruleset passed to Compile or
	// CompileLax, or -1 for ruleset-level failures.
	Rule int
	// Pattern is the failing rule's source text (possibly long; Error()
	// truncates it for display).
	Pattern string
	// Stage is the compilation stage that rejected the input.
	Stage Stage
	// Err is the underlying cause.
	Err error
}

func (e *CompileError) Error() string {
	if e.Rule < 0 {
		return fmt.Sprintf("imfant: ruleset failed in %s: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("imfant: rule %d (%q) failed in %s: %v",
		e.Rule, truncatePattern(e.Pattern), e.Stage, e.Err)
}

// Unwrap exposes the underlying cause for errors.Is / errors.As.
func (e *CompileError) Unwrap() error { return e.Err }

// RuleError is the per-rule failure type reported by CompileLax.
type RuleError = CompileError

// truncatePattern keeps hostile multi-kilobyte patterns out of error text.
func truncatePattern(p string) string {
	const max = 128
	if len(p) <= max {
		return p
	}
	return p[:max] + "..."
}

// Limits is the compile-side resource budget. For each field, zero selects
// the documented default and a negative value disables the check.
// Violations surface as *CompileError values wrapping ErrBudget.
type Limits struct {
	// MaxPatternLen bounds each pattern's length in bytes, checked before
	// lexing (default rex.DefaultMaxLen, 64 KiB).
	MaxPatternLen int
	// MaxNestingDepth bounds each pattern's group-nesting depth, checked
	// during parsing so the parser's recursion is bounded too (default
	// rex.DefaultMaxDepth, 250).
	MaxNestingDepth int
	// MaxNFAStates bounds each rule's automaton during loop expansion,
	// where counted repetitions like a{1,1000} materialize copies
	// (default nfa.DefaultMaxStates, 256 Ki states).
	MaxNFAStates int
	// MaxMFSAStates bounds the state count summed over all merged MFSAs —
	// the memory budget of the compiled ruleset (default 2 Mi states).
	MaxMFSAStates int
}

func (l Limits) pipeline() pipeline.Limits {
	return pipeline.Limits{
		MaxPatternLen: l.MaxPatternLen,
		MaxDepth:      l.MaxNestingDepth,
		MaxNFAStates:  l.MaxNFAStates,
		MaxMFSAStates: l.MaxMFSAStates,
	}
}

// DefaultLimits returns the resolved default budgets (the values used when
// the corresponding Limits field is zero).
func DefaultLimits() Limits {
	return Limits{
		MaxPatternLen:   rex.DefaultMaxLen,
		MaxNestingDepth: rex.DefaultMaxDepth,
		MaxNFAStates:    nfa.DefaultMaxStates,
		MaxMFSAStates:   pipeline.DefaultMaxMFSAStates,
	}
}
