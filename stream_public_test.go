package imfant

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

func streamAll(rs *Ruleset, input []byte, chunk int) []Match {
	var out []Match
	sm := rs.NewStreamMatcher(func(m Match) { out = append(out, m) })
	for i := 0; i < len(input); i += chunk {
		end := i + chunk
		if end > len(input) {
			end = len(input)
		}
		sm.Write(input[i:end])
	}
	sm.Close()
	return out
}

func TestStreamMatcherEqualsFindAll(t *testing.T) {
	rs := MustCompile([]string{"abc", "b+c", "^ab", "cd$"}, Options{})
	input := []byte("abcxbbbcxabcd")
	want := rs.FindAll(input)
	for _, chunk := range []int{1, 2, 3, 5, len(input), 100} {
		got := streamAll(rs, input, chunk)
		// FindAll sorts; sort streaming output equivalently.
		sortMatches(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk=%d: %v, want %v", chunk, got, want)
		}
	}
}

func sortMatches(ms []Match) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && (ms[j].End < ms[j-1].End || (ms[j].End == ms[j-1].End && ms[j].Rule < ms[j-1].Rule)); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

func TestStreamMatcherAsWriter(t *testing.T) {
	rs := MustCompile([]string{"needle"}, Options{})
	sm := rs.NewStreamMatcher(nil)
	var w io.WriteCloser = sm
	src := bytes.NewReader([]byte("hay needle hay needle"))
	if _, err := io.CopyBuffer(w, src, make([]byte, 3)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if sm.Matches() != 2 {
		t.Fatalf("matches=%d", sm.Matches())
	}
}

func TestStreamMatcherEndAnchorTiming(t *testing.T) {
	rs := MustCompile([]string{"ab$"}, Options{})
	var got []Match
	sm := rs.NewStreamMatcher(func(m Match) { got = append(got, m) })
	sm.Write([]byte("ab"))
	if len(got) != 0 {
		t.Fatalf("$ fired before Close: %v", got)
	}
	sm.Close()
	if len(got) != 1 || got[0].End != 1 {
		t.Fatalf("after Close: %v", got)
	}
	// Contrast: data following "ab" kills the anchor.
	got = nil
	sm = rs.NewStreamMatcher(func(m Match) { got = append(got, m) })
	sm.Write([]byte("ab"))
	sm.Write([]byte("x"))
	sm.Close()
	if len(got) != 0 {
		t.Fatalf("$ fired mid-stream: %v", got)
	}
}

func TestStreamMatcherCloseIdempotent(t *testing.T) {
	rs := MustCompile([]string{"x"}, Options{})
	sm := rs.NewStreamMatcher(nil)
	sm.Write([]byte("xx"))
	sm.Close()
	n := sm.Matches()
	sm.Close()
	sm.Write([]byte("xxx"))
	if sm.Matches() != n {
		t.Fatal("writes after Close were processed")
	}
}

func TestStreamMatcherEmpty(t *testing.T) {
	rs := MustCompile([]string{"x"}, Options{})
	sm := rs.NewStreamMatcher(nil)
	sm.Write(nil)
	sm.Close()
	if sm.Matches() != 0 {
		t.Fatal("phantom matches")
	}
}

// TestStreamConsumedBytesMatchedOnCancel is the regression test for the
// held-byte accounting bug: Write used to report the held-back byte as
// consumed even though a cancellation meant it was never fed to any
// automaton, silently dropping matches ending on it. Now every byte Write
// reports as consumed is matched against: a match completing on the held
// byte is reported when the cancellation is observed, while $-anchored
// rules still do not fire (the true stream end was never seen).
func TestStreamConsumedBytesMatchedOnCancel(t *testing.T) {
	rs := MustCompile([]string{"xa", "a$"}, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	var got []Match
	sm := rs.NewStreamMatcherContext(ctx, func(m Match) { got = append(got, m) })

	n, err := sm.Write([]byte("xa"))
	if n != 2 || err != nil {
		t.Fatalf("Write = (%d, %v), want (2, nil)", n, err)
	}
	cancel()
	if n2, err2 := sm.Write([]byte("zz")); n2 != 0 || !errors.Is(err2, context.Canceled) {
		t.Fatalf("post-cancel Write = (%d, %v)", n2, err2)
	}
	// The 'a' at offset 1 was reported as consumed, so "xa" must have
	// been completed on it; "a$" must not fire.
	want := []Match{{Rule: 0, Pattern: "xa", End: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("matches after cancel: %v, want %v", got, want)
	}
	if err := sm.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close = %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Close changed the match set: %v", got)
	}
}

// TestStreamCloseImmediatelyAfterCancel covers the unobserved-cancellation
// path: the context is cancelled after a healthy Write and Close is the
// first checkpoint to see it. Close must return the context error, match
// the held byte as ordinary data, and suppress $-anchored accepts.
func TestStreamCloseImmediatelyAfterCancel(t *testing.T) {
	for _, opts := range []Options{{}, {Engine: EngineLazyDFA, KeepOnMatch: true}} {
		rs := MustCompile([]string{"xa", "a$"}, opts)
		ctx, cancel := context.WithCancel(context.Background())
		var got []Match
		sm := rs.NewStreamMatcherContext(ctx, func(m Match) { got = append(got, m) })
		if n, err := sm.Write([]byte("xa")); n != 2 || err != nil {
			t.Fatalf("opts %+v: Write = (%d, %v)", opts, n, err)
		}
		cancel()
		if err := sm.Close(); !errors.Is(err, context.Canceled) {
			t.Fatalf("opts %+v: Close = %v", opts, err)
		}
		want := []Match{{Rule: 0, Pattern: "xa", End: 1}}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("opts %+v: matches %v, want %v", opts, got, want)
		}
		if !errors.Is(sm.Err(), context.Canceled) {
			t.Fatalf("opts %+v: Err() = %v", opts, sm.Err())
		}
	}
}

func TestQuickStreamChunkInvariance(t *testing.T) {
	rs := MustCompile([]string{"ab", "a[bc]d", "b+", "ca$"}, Options{})
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		in := make([]byte, 1+r.Intn(60))
		for i := range in {
			in[i] = byte('a' + r.Intn(4))
		}
		want := streamAll(rs, in, len(in))
		chunk := 1 + r.Intn(7)
		got := streamAll(rs, in, chunk)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("input %q chunk %d: %v want %v", in, chunk, got, want)
		}
	}
}
