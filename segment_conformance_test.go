package imfant

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// segConfPatterns mixes every planner strategy: pure literals (AC group),
// anchored literals, an eager-DFA shape, and general engine patterns whose
// boundary carries exercise the stitch.
var segConfPatterns = []string{
	"needle",
	"haystack",
	"^HDR:",
	"suffix$",
	"a[bc]+d",
	"(foo|bar)baz",
	"x.{2,5}y",
	"b+c",
}

// segConfInputs builds inputs whose matches straddle segment boundaries for
// every small worker count used by the conformance tests.
func segConfInputs(t testing.TB) [][]byte {
	t.Helper()
	rnd := rand.New(rand.NewSource(77))
	big := make([]byte, 8192)
	alpha := []byte("abcdfoxy ")
	for i := range big {
		big[i] = alpha[rnd.Intn(len(alpha))]
	}
	copy(big[4094:], "needle")    // straddles the 2-way boundary
	copy(big[2729:], "foobaz")    // straddles a 3-way boundary
	copy(big[1020:], "xqqy")      // straddles an 8-way boundary
	copy(big[len(big)-7:], "suffix\n")
	return [][]byte{
		nil,
		[]byte("n"),
		[]byte("needle"),
		[]byte("HDR: foobazsuffix"),
		[]byte(strings.Repeat("abdacd", 300) + "suffix"),
		big,
	}
}

// segRuleset compiles segConfPatterns with segmentation forced on.
func segRuleset(t testing.TB, opts Options) *Ruleset {
	t.Helper()
	rs, err := Compile(segConfPatterns, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// TestSegmentedScanConformance is the tentpole's correctness gate: segmented
// CountParallel and FindAll are byte-identical to their serial counterparts
// across engines × prefilter × acceleration × worker counts.
func TestSegmentedScanConformance(t *testing.T) {
	inputs := segConfInputs(t)
	for _, eng := range []EngineMode{EngineIMFAnt, EngineLazyDFA} {
		for _, keep := range []bool{false, true} {
			if eng == EngineLazyDFA && !keep {
				continue // lazy engine runs keep-semantics scans
			}
			for _, pf := range []PrefilterMode{PrefilterOff, PrefilterOn} {
				for _, accel := range []AccelMode{AccelOff, AccelOn} {
					base := Options{Engine: eng, KeepOnMatch: keep, Prefilter: pf, Accel: accel}
					serialOpts := base
					serialOpts.Segment = SegmentOff
					serial := segRuleset(t, serialOpts)
					for _, workers := range []int{2, 3, 8} {
						segOpts := base
						segOpts.Segment = SegmentOn
						segOpts.SegmentWorkers = workers
						seg := segRuleset(t, segOpts)
						for ii, in := range inputs {
							wantMatches := serial.FindAll(in)
							gotMatches, err := seg.FindAllContext(t.Context(), in)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(gotMatches, wantMatches) {
								t.Fatalf("eng=%v keep=%v pf=%v accel=%v workers=%d input#%d: FindAll\ngot  %v\nwant %v",
									eng, keep, pf, accel, workers, ii, gotMatches, wantMatches)
							}
							want, err := serial.CountParallel(in, 1)
							if err != nil {
								t.Fatal(err)
							}
							got, err := seg.CountParallel(in, workers)
							if err != nil {
								t.Fatal(err)
							}
							if got != want {
								t.Fatalf("eng=%v keep=%v pf=%v accel=%v workers=%d input#%d: CountParallel got %d want %d",
									eng, keep, pf, accel, workers, ii, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestSegmentAutoThreshold pins the SegmentAuto gate: inputs under
// SegmentMinBytes stay serial (Segment section all-serial), larger ones
// segment.
func TestSegmentAutoThreshold(t *testing.T) {
	rs := segRuleset(t, Options{SegmentMinBytes: 1024, SegmentWorkers: 4})
	small := []byte(strings.Repeat("ab", 256)) // 512 B: under the threshold
	if _, err := rs.CountParallel(small, 0); err != nil {
		t.Fatal(err)
	}
	st := rs.Stats()
	if st.Segment == nil {
		t.Fatal("Segment section missing with SegmentAuto")
	}
	if st.Segment.SegmentedScans != 0 || st.Segment.ParallelBytes != 0 {
		t.Fatalf("sub-threshold scan segmented: %+v", st.Segment)
	}
	if st.Segment.SerialBytes != st.BytesScanned {
		t.Fatalf("sub-threshold serial bytes %d, want all %d", st.Segment.SerialBytes, st.BytesScanned)
	}
	large := []byte(strings.Repeat("ab", 1024)) // 2 KiB: over it
	if _, err := rs.CountParallel(large, 0); err != nil {
		t.Fatal(err)
	}
	if st = rs.Stats(); st.Segment.SegmentedScans == 0 {
		t.Fatalf("above-threshold scan did not segment: %+v", st.Segment)
	}
}

// TestSegmentStatsPartition pins the accounting contract: ParallelBytes +
// StitchBytes + SerialBytes == BytesScanned, exactly, on a workload mixing
// segmented parallel scans with serial Scanner scans.
func TestSegmentStatsPartition(t *testing.T) {
	rs := segRuleset(t, Options{Segment: SegmentOn, SegmentWorkers: 4})
	inputs := segConfInputs(t)
	for _, in := range inputs {
		if _, err := rs.CountParallel(in, 4); err != nil {
			t.Fatal(err)
		}
	}
	rs.Count(inputs[len(inputs)-1]) // a serial Scanner scan in the mix
	st := rs.Stats()
	if st.Segment == nil {
		t.Fatal("Segment section missing with SegmentOn")
	}
	s := st.Segment
	if s.SegmentedScans == 0 || s.Segments <= s.SegmentedScans {
		t.Fatalf("implausible segmentation counters: %+v", s)
	}
	if got := s.ParallelBytes + s.StitchBytes + s.SerialBytes; got != st.BytesScanned {
		t.Fatalf("partition broken: parallel %d + stitch %d + serial %d = %d, BytesScanned %d",
			s.ParallelBytes, s.StitchBytes, s.SerialBytes, got, st.BytesScanned)
	}
	if s.SerialBytes == 0 {
		t.Fatal("serial Scanner scan not reflected in SerialBytes")
	}

	// Scanner scope: every byte serial, and the snapshot matches the
	// ruleset's shape contract.
	sc := rs.NewScanner()
	sc.Count(inputs[len(inputs)-1])
	scs := sc.Stats()
	if scs.Segment == nil || scs.Segment.SerialBytes != scs.BytesScanned {
		t.Fatalf("scanner-scope segment section = %+v, want all-serial of %d", scs.Segment, scs.BytesScanned)
	}
}

// TestSegmentFrontierFallbackSticky pins the degradation contract: a group
// whose boundary carry exceeds SegmentMaxFrontier still reports exact
// results, records a fallback, and runs serially on subsequent segmented
// scans.
func TestSegmentFrontierFallbackSticky(t *testing.T) {
	// "a.*b" keeps its loop state alive from the first 'a' on, and the
	// repeated "ax" prefix keeps several overlapping "a[xy]{0,8}b" windows
	// live at every position — so every boundary carry holds multiple
	// states, over the minimal budget of 1.
	// Engine forced so the planner cannot route the groups to the eager-DFA
	// strategy, which runs serially and never carries a frontier.
	patterns := []string{"a.*b", "a[xy]{0,8}b"}
	serial, err := Compile(patterns, Options{Engine: EngineIMFAnt})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Compile(patterns, Options{Engine: EngineIMFAnt,
		Segment: SegmentOn, SegmentWorkers: 4, SegmentMaxFrontier: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := []byte(strings.Repeat("ax", 2048) + "b" + strings.Repeat("q", 64) + "axb")
	want := serial.FindAll(in)
	for round := 0; round < 2; round++ {
		got, err := rs.FindAllContext(t.Context(), in)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: exactness lost under frontier fallback:\ngot  %v\nwant %v", round, got, want)
		}
	}
	st := rs.Stats()
	if st.Segment.Fallbacks == 0 {
		t.Fatalf("no fallback recorded: %+v", st.Segment)
	}
	// Sticky: the pinned groups stopped segmenting, so a third scan adds
	// serial bytes but no fallback growth.
	fallbacks := st.Segment.Fallbacks
	serialBytes := st.Segment.SerialBytes
	if _, err := rs.FindAllContext(t.Context(), in); err != nil {
		t.Fatal(err)
	}
	st = rs.Stats()
	if st.Segment.Fallbacks != fallbacks {
		t.Fatalf("fallbacks grew after pinning: %d -> %d", fallbacks, st.Segment.Fallbacks)
	}
	if st.Segment.SerialBytes <= serialBytes {
		t.Fatalf("pinned group did not run serially: serial bytes %d -> %d",
			serialBytes, st.Segment.SerialBytes)
	}
}

// FuzzSegmentStitch is the boundary-stitching conformance fuzzer: random
// patterns × inputs × segment counts, both engines, prefilter and accel on
// and off — the segmented match set must be byte-identical to the serial
// scan every time.
func FuzzSegmentStitch(f *testing.F) {
	type seed struct {
		pattern, input string
		parts          int
	}
	for _, s := range []seed{
		{"abc", "xxabcxx", 2},
		{"a.*b", "a" + strings.Repeat("x", 64) + "b", 3},
		{"^start", "start middle end", 2},
		{"end$", "the end", 2},
		{"a[bc]{2,4}d", strings.Repeat("abccd", 20), 7},
		{"(ab|ba)+", strings.Repeat("ab", 40), 5},
		{"n+e", "nnnneeee", 4},
	} {
		f.Add(s.pattern, s.input, s.parts)
	}
	f.Fuzz(func(t *testing.T, pattern, input string, parts int) {
		if len(input) > 1<<12 || parts < 2 || parts > 32 {
			return
		}
		serial, err := Compile([]string{pattern, "zz9fixed"},
			Options{Engine: EngineIMFAnt, Prefilter: PrefilterOff, Segment: SegmentOff})
		if err != nil {
			return // FuzzCompile owns compile-error typing
		}
		in := []byte(input + " zz9fixed")
		want := serial.FindAll(in)
		sortMatches(want)
		for _, eng := range []EngineMode{EngineIMFAnt, EngineLazyDFA} {
			for _, pf := range []PrefilterMode{PrefilterOff, PrefilterOn} {
				for _, accel := range []AccelMode{AccelOff, AccelOn} {
					keep := eng == EngineLazyDFA
					seg, err := Compile([]string{pattern, "zz9fixed"}, Options{
						Engine: eng, KeepOnMatch: keep, Prefilter: pf, Accel: accel,
						Segment: SegmentOn, SegmentWorkers: parts,
					})
					if err != nil {
						t.Fatalf("%.60q: segmented compile failed after serial succeeded: %v", pattern, err)
					}
					wantSet := want
					if keep {
						// Keep semantics report a superset; compare against a
						// keep-mode serial oracle instead.
						oracle, err := Compile([]string{pattern, "zz9fixed"},
							Options{Engine: eng, KeepOnMatch: true, Segment: SegmentOff})
						if err != nil {
							t.Fatal(err)
						}
						wantSet = oracle.FindAll(in)
						sortMatches(wantSet)
					}
					got, err := seg.FindAllContext(t.Context(), in)
					if err != nil {
						t.Fatal(err)
					}
					sortMatches(got)
					if !reflect.DeepEqual(got, wantSet) {
						t.Fatalf("%.60q on %.60q (eng=%v pf=%v accel=%v parts=%d): segmented %v, serial %v",
							pattern, input, eng, pf, accel, parts, got, wantSet)
					}
				}
			}
		}
	})
}
