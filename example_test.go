package imfant_test

import (
	"bytes"
	"fmt"

	imfant "repro"
)

// The basic workflow: compile a ruleset into one MFSA and scan a payload.
func ExampleCompile() {
	rs, err := imfant.Compile([]string{"GET /admin", "cmd\\.exe"}, imfant.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(rs.NumRules(), "rules in", rs.NumAutomata(), "automaton")
	// Output: 2 rules in 1 automaton
}

func ExampleRuleset_FindAll() {
	rs := imfant.MustCompile([]string{"ab+c", "bc"}, imfant.Options{})
	for _, m := range rs.FindAll([]byte("xabbc")) {
		fmt.Printf("rule %d ends at %d\n", m.Rule, m.End)
	}
	// Output:
	// rule 0 ends at 4
	// rule 1 ends at 4
}

func ExampleRuleset_Compression() {
	// Morphologically similar rules share most of their automaton.
	rs := imfant.MustCompile([]string{
		"User-Agent: curl", "User-Agent: wget", "User-Agent: nmap",
	}, imfant.Options{})
	states, _ := rs.Compression()
	fmt.Println(states > 50)
	// Output: true
}

func ExampleRuleset_NewStreamMatcher() {
	rs := imfant.MustCompile([]string{"needle"}, imfant.Options{})
	sm := rs.NewStreamMatcher(func(m imfant.Match) {
		fmt.Println("match ending at", m.End)
	})
	sm.Write([]byte("hay nee")) // the match spans this chunk boundary
	sm.Write([]byte("dle hay"))
	sm.Close()
	// Output: match ending at 9
}

func ExampleRuleset_WriteANML() {
	rs := imfant.MustCompile([]string{"abc", "abd"}, imfant.Options{})
	var buf bytes.Buffer
	if err := rs.WriteANML(&buf); err != nil {
		panic(err)
	}
	reloaded, err := imfant.LoadANML(&buf, imfant.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(reloaded.Count([]byte("xxabdxx")))
	// Output: 1
}
