package imfant

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/snort"
)

// snortProfiled compiles the snort-derived web-attacks ruleset with the
// profiler on, plus HTTP-ish traffic salted with attack fragments.
func snortProfiled(t *testing.T, opts Options) (*Ruleset, []byte) {
	t.Helper()
	f, err := os.Open("internal/snort/testdata/web-attacks.rules")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rules, _, err := snort.ParseRules(f)
	if err != nil {
		t.Fatal(err)
	}
	patterns := make([]string, 0, len(rules))
	for _, ru := range rules {
		patterns = append(patterns, ru.Pattern)
	}
	rs, _, err := CompileLax(patterns, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	frags := []string{
		"GET /index.html HTTP/1.0\r\n", "Host: example.com\r\n",
		"User-Agent: Mozilla/5.0\r\n", "Accept: */*\r\n",
		"/etc/passwd", "cmd.exe", "<script>", "../..", "id=1 or 1=1",
	}
	var traffic []byte
	for len(traffic) < 128<<10 {
		traffic = append(traffic, frags[rng.Intn(len(frags))]...)
	}
	return rs, traffic
}

// TestProfileSnortHotStates pins the profiler's core contract on a real
// ruleset: visit shares over all states sum to 1, every hot state is
// attributed to valid rules, and the stats section agrees with the
// report.
func TestProfileSnortHotStates(t *testing.T) {
	rs, traffic := snortProfiled(t, Options{
		Engine: EngineLazyDFA, KeepOnMatch: true, Profile: true,
	})
	sc := rs.NewScanner()
	for i := 0; i < 3; i++ {
		sc.Count(traffic)
	}

	p := rs.Profile()
	if p == nil {
		t.Fatal("Profile() == nil with Options.Profile set")
	}
	if p.Samples == 0 || p.TotalVisits() == 0 {
		t.Fatalf("no samples (%d) or visits (%d)", p.Samples, p.TotalVisits())
	}
	all := p.HotStates(0)
	var sum float64
	for _, h := range all {
		sum += h.Share
		if len(h.Rules) == 0 {
			t.Fatalf("hot state %d/%d has no owning rules", h.Automaton, h.State)
		}
		for _, id := range h.Rules {
			if id < 0 || id >= rs.NumRules() {
				t.Fatalf("state %d attributed to out-of-range rule %d", h.State, id)
			}
		}
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Fatalf("visit shares sum to %f, want 1.0", sum)
	}

	// Rule attribution must be consistent with the match-side telemetry:
	// every rule that matched traverses states, so it must absorb heat.
	heat := map[int]bool{}
	for _, rh := range p.HotRules(0) {
		heat[rh.Rule] = true
	}
	for id, n := range rs.Stats().RuleHits {
		if n > 0 && !heat[id] {
			t.Errorf("rule %d has %d hits but no absorbed visits", id, n)
		}
	}

	// The Stats() profile section mirrors the report.
	st := rs.Stats()
	if st.Profile == nil {
		t.Fatal("Stats().Profile == nil with profiling on")
	}
	if st.Profile.Samples != p.Samples || st.Profile.Stride != p.Stride {
		t.Fatalf("stats/report disagree: %+v vs stride=%d samples=%d",
			st.Profile, p.Stride, p.Samples)
	}
	if len(st.Profile.HotStates) == 0 || st.Profile.HotStates[0].State != all[0].State {
		t.Fatalf("stats hot states diverge from report: %+v vs %+v",
			st.Profile.HotStates, all[0])
	}
	if st.Profile.ScanLatencyNS == nil || st.Profile.ScanLatencyNS.Count != p.ScanLatency.Count() {
		t.Fatalf("scan latency missing or inconsistent: %+v", st.Profile.ScanLatencyNS)
	}
}

// TestProfileOffIsAbsent pins the zero-overhead-off contract's API side:
// without Options.Profile there is no report, no stats section, and no
// heat DOT.
func TestProfileOffIsAbsent(t *testing.T) {
	rs := MustCompile([]string{"abc", "xyz+"}, Options{})
	rs.Count([]byte("zabcxyzz"))
	if rs.Profile() != nil {
		t.Fatal("Profile() != nil with profiling off")
	}
	if rs.Stats().Profile != nil {
		t.Fatal("Stats().Profile != nil with profiling off")
	}
	var buf bytes.Buffer
	if err := rs.WriteProfileDOT(&buf, 0); err == nil {
		t.Fatal("WriteProfileDOT should fail with profiling off")
	}
	data, err := json.Marshal(rs.Stats())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "profile") {
		t.Fatalf("profile-off JSON leaks a profile key: %s", data)
	}
}

// TestProfileDOTHeat checks the heat-map rendering over real visits.
func TestProfileDOTHeat(t *testing.T) {
	rs := MustCompile([]string{"abc", "abd"}, Options{Profile: true, ProfileStride: 4})
	input := bytes.Repeat([]byte("abcabd"), 200)
	rs.Count(input)
	var buf bytes.Buffer
	if err := rs.WriteProfileDOT(&buf, 0); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	if !strings.Contains(dot, "digraph mfsa_heat") || !strings.Contains(dot, "#ff") {
		t.Fatalf("heat DOT has no shaded states:\n%.400s", dot)
	}
	if err := rs.WriteProfileDOT(&buf, 99); err == nil {
		t.Fatal("out-of-range automaton should fail")
	}
}

// TestTraceRingPublic exercises the trace API end to end: kinds, capacity,
// the live sink, and stream-end events.
func TestTraceRingPublic(t *testing.T) {
	rs := MustCompile([]string{"abc", "xyz$"}, Options{TraceCapacity: 128})
	var sunk []TraceEvent
	rs.SetTraceSink(func(ev TraceEvent) { sunk = append(sunk, ev) })

	rs.Scan([]byte("zzabczz"), func(Match) {})
	sm := rs.NewStreamMatcher(nil)
	sm.Write([]byte("ab"))
	sm.Write([]byte("cxyz"))
	sm.Close()

	evs := rs.TraceEvents()
	if len(evs) == 0 {
		t.Fatal("no trace events retained")
	}
	kinds := map[string]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	for _, want := range []string{"scan_begin", "scan_end", "match", "stream_end"} {
		if kinds[want] == 0 {
			t.Fatalf("no %s event in %v", want, kinds)
		}
	}
	if len(sunk) != len(evs) {
		t.Fatalf("sink saw %d events, ring kept %d", len(sunk), len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("trace not chronological: seq %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}

	// Tracing off: everything degrades to no-ops.
	off := MustCompile([]string{"abc"}, Options{})
	off.Count([]byte("abc"))
	if off.TraceEvents() != nil {
		t.Fatal("TraceEvents != nil with tracing off")
	}
	off.SetTraceSink(func(TraceEvent) { t.Fatal("sink fired with tracing off") })
	off.Count([]byte("abc"))
}

// TestProfileConcurrentSnapshots hammers one profiled ruleset with
// concurrent Scanners, a StreamMatcher, and snapshot readers, checking
// that Stats() JSON stays valid mid-scan. Run with -race.
func TestProfileConcurrentSnapshots(t *testing.T) {
	rs := MustCompile([]string{"abc", "abd", "xyz+", "hello"}, Options{
		Profile: true, ProfileStride: 16, TraceCapacity: 64,
		Engine: EngineLazyDFA, KeepOnMatch: true,
	})
	input := bytes.Repeat([]byte("abc xyzz hello abd "), 500)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := rs.NewScanner()
			for i := 0; i < 20; i++ {
				sc.Count(input)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sm := rs.NewStreamMatcher(nil)
		for i := 0; i < 50; i++ {
			sm.Write(input[:1024])
		}
		sm.Close()
	}()
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			data := []byte(rs.StatsVar().String())
			var m map[string]any
			if err := json.Unmarshal(data, &m); err != nil {
				t.Errorf("mid-scan stats JSON invalid: %v\n%s", err, data)
				return
			}
			if rs.Profile() == nil {
				t.Error("Profile() became nil mid-scan")
				return
			}
			rs.TraceEvents()
		}
	}()
	wg.Wait()
	close(stop)
	reader.Wait()

	st := rs.Stats()
	if st.Profile == nil || st.Profile.Samples == 0 {
		t.Fatalf("no profile after concurrent scans: %+v", st.Profile)
	}
	if st.Profile.ChunkLatencyNS == nil || st.Profile.ChunkLatencyNS.Count == 0 {
		t.Fatalf("stream writes recorded no chunk latency: %+v", st.Profile.ChunkLatencyNS)
	}
}
