package imfant

import (
	"repro/internal/ahocorasick"
	"repro/internal/engine"
	"repro/internal/factor"
	"repro/internal/faultpoint"
	"repro/internal/rex"
	"repro/internal/telemetry"
)

// wakeAll is the PrefilterWake fault: the sweeper desyncs and every gated
// automaton is spuriously woken (reported active without a sweep). Waking is
// always sound — the prefilter only ever elides provably dead work — so the
// fault adversarially exercises the ungated paths without changing results.
// Returns nil (no injector, or the point did not fire) or the all-active
// mask.
func wakeAll(in *faultpoint.Injector, n int) []bool {
	if !in.Hit(faultpoint.PrefilterWake) {
		return nil
	}
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	return active
}

// PrefilterMode selects the literal-factor prefilter stage (Hyperscan-style
// decomposition, §II of the paper's related work): at compile time every
// rule is analysed for a required literal factor — a string that occurs in
// every match of the rule — and at scan time one Aho–Corasick sweep over
// the input decides which MFSA groups can be skipped outright. A group runs
// only if it contains a rule without a factor or one of its members'
// factors occurred in the input; otherwise no member rule can match and the
// whole automaton execution is elided. The prefilter never changes results,
// only the work done to produce them.
type PrefilterMode int

const (
	// PrefilterAuto (the default) enables the prefilter when it can pay
	// off: at least one automaton must be fully filterable — every member
	// rule carrying a factor — so whole groups become skippable. Grouping
	// is left untouched.
	PrefilterAuto PrefilterMode = iota
	// PrefilterOn forces the prefilter whenever any rule has a factor, and
	// additionally biases grouping so factor-bearing rules share MFSAs
	// (filterable rules are packed into MergeFactor groups first), turning
	// more groups fully skippable. Match results are unchanged; automaton
	// boundaries may differ from PrefilterOff compilation.
	PrefilterOn
	// PrefilterOff disables factor extraction and sweeping entirely.
	PrefilterOff
)

// prefilter is the compiled gating plan of a ruleset: the Aho–Corasick
// automaton over the deduplicated factor strings plus, per MFSA group, the
// factor set that can wake it.
type prefilter struct {
	ac           *ahocorasick.Matcher
	factors      []string  // deduplicated factor strings, AC pattern order
	filterable   int       // number of rules carrying a factor
	groupFactors [][]int32 // per automaton: AC pattern ids of member factors
	groupAlways  []bool    // automaton has a factor-less member: always runs
}

// minFactorLen resolves Options.MinFactorLen to the effective threshold.
func (o Options) minFactorLen() int {
	if o.MinFactorLen <= 0 {
		return factor.MinLen
	}
	return o.MinFactorLen
}

// buildPrefilter compiles the gating plan from per-rule factors (indexed by
// rule id, "" meaning unfilterable). Called after buildPlan — only groups
// the plan left gatable participate: AC-routed groups must not ALSO be swept
// (their strategy scan is itself a literal sweep; gating them would scan the
// same literals twice), and anchored groups are O(1) already. A nil factors
// slice, PrefilterOff, or a plan with no gatable factor-covered group leaves
// rs.pf nil and scans ungated.
func (rs *Ruleset) buildPrefilter(factors []string) {
	if rs.opts.Prefilter == PrefilterOff {
		return
	}
	defer func() {
		// The Prefilter stats section is live whenever literal gating
		// happens anywhere: the factor sweep, AC-routed groups (whose scans
		// report as sweeps), or both.
		acRules, acLits := rs.plan.literalCounts(rs)
		if rs.pf != nil || acRules > 0 {
			rs.prefEnabled = true
			rs.prefRules += acRules
			rs.prefFactors += acLits
			rs.collector.EnablePrefilter(rs.prefRules, rs.prefFactors)
		}
	}()
	if factors == nil {
		return
	}
	pf := &prefilter{}
	index := make(map[string]int32)
	pf.groupFactors = make([][]int32, len(rs.programs))
	pf.groupAlways = make([]bool, len(rs.programs))
	anyGated := false
	for i, p := range rs.programs {
		if !rs.plan.gatable(i) {
			pf.groupAlways[i] = true
			continue
		}
		seen := make(map[int32]bool)
		for _, ri := range p.Rules() {
			f := ""
			if ri.RuleID >= 0 && ri.RuleID < len(factors) {
				f = factors[ri.RuleID]
			}
			if f == "" {
				pf.groupAlways[i] = true
				continue
			}
			pi, ok := index[f]
			if !ok {
				pi = int32(len(pf.factors))
				index[f] = pi
				pf.factors = append(pf.factors, f)
			}
			pf.filterable++
			if !seen[pi] {
				seen[pi] = true
				pf.groupFactors[i] = append(pf.groupFactors[i], pi)
			}
		}
		if !pf.groupAlways[i] {
			anyGated = true
		}
	}
	if !anyGated || len(pf.factors) == 0 {
		return
	}
	pats := make([][]byte, len(pf.factors))
	for i, f := range pf.factors {
		pats[i] = []byte(f)
	}
	ac, err := ahocorasick.New(pats)
	if err != nil {
		return
	}
	pf.ac = ac
	rs.pf = pf
	rs.prefRules = pf.filterable
	rs.prefFactors = len(pf.factors)
	rs.tracker = newPrefTracker(pf.groupAlways)
}

// factorsOf re-derives per-rule factors from pattern sources, for rulesets
// whose compilation pipeline did not run (LoadANML). Rules whose source is
// missing or no longer parses are treated as unfilterable, which is always
// sound. Returns nil when no rule yields a factor.
func factorsOf(patterns []string, minLen int) []string {
	out := make([]string, len(patterns))
	any := false
	for i, p := range patterns {
		if p == "" {
			continue
		}
		ast, err := rex.Parse(p)
		if err != nil {
			continue
		}
		if f, ok := factor.Extract(ast, minLen); ok {
			out[i] = f
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}

// active reports whether automaton i must run given the sweep's hit set.
func (pf *prefilter) active(i int, sw *ahocorasick.Sweeper) bool {
	if pf.groupAlways[i] {
		return true
	}
	for _, pid := range pf.groupFactors[i] {
		if sw.Hit(int(pid)) {
			return true
		}
	}
	return false
}

// PrefilterActive reports whether the literal-factor prefilter gates this
// ruleset's scans (see PrefilterMode for when it engages).
func (rs *Ruleset) PrefilterActive() bool { return rs.pf != nil }

// PrefilterFactors returns the deduplicated literal factors the prefilter
// sweeps for; nil when the prefilter is not active.
func (rs *Ruleset) PrefilterFactors() []string {
	if rs.pf == nil {
		return nil
	}
	return append([]string(nil), rs.pf.factors...)
}

// prefCounters accumulates one owner's (Scanner or StreamMatcher) prefilter
// activity for its local Stats snapshot.
type prefCounters struct {
	sweeps, hits, skipped, saved int64
}

// stats converts the counters to the public shape; nil when no literal
// gating (factor sweep or AC-routed groups) is live on the ruleset.
func (p *prefCounters) stats(rs *Ruleset) *PrefilterStats {
	if !rs.prefEnabled {
		return nil
	}
	return &PrefilterStats{
		FilterableRules: rs.prefRules,
		Factors:         rs.prefFactors,
		Sweeps:          p.sweeps,
		FactorHits:      p.hits,
		GroupsSkipped:   p.skipped,
		BytesSaved:      p.saved,
	}
}

// prefilterGate sweeps input through the factor automaton and returns the
// per-automaton activation mask, or nil when every automaton must run
// (prefilter inactive). The sweep polls check between blocks so hostile
// inputs cannot wedge a cancellable scan inside the prefilter. Counters are
// folded into the ruleset collector and the scanner's local totals; trace
// skip events are the caller's job (it knows the skip sites).
func (s *Scanner) prefilterGate(input []byte, check func() error) ([]bool, error) {
	rs := s.rs
	pf := rs.pf
	if pf == nil {
		return nil, nil
	}
	if active := wakeAll(s.faults, len(rs.programs)); active != nil {
		return active, nil
	}
	run, probe := rs.tracker.decide()
	if !run {
		// Every gated group's gate is disabled — the sweep could skip
		// nothing, so it is pure overhead: elide it and run everything.
		rs.collector.AddSweepsElided(1)
		return nil, nil
	}
	if probe {
		rs.collector.AddSweepProbes(1)
	}
	if s.sweep == nil {
		s.sweep = pf.ac.NewSweeper()
		s.sweep.SetAccel(rs.opts.accelOn())
	} else {
		s.sweep.Reset()
	}
	st0 := rs.stageStart()
	const block = engine.DefaultCheckpointEvery
	for off := 0; off < len(input) && !s.sweep.Done(); off += block {
		if check != nil {
			if err := check(); err != nil {
				rs.stageEnd(telemetry.StagePrefilter, st0)
				return nil, err
			}
		}
		end := off + block
		if end > len(input) {
			end = len(input)
		}
		s.sweep.Sweep(input[off:end])
	}
	rs.stageEnd(telemetry.StagePrefilter, st0)
	if s.active == nil {
		s.active = make([]bool, len(rs.programs))
	}
	var skipped int64
	for i := range s.active {
		woke := pf.active(i, s.sweep)
		act := woke
		if !pf.groupAlways[i] {
			// A gate the tracker disabled runs its group regardless of the
			// sweep outcome; the observation below may re-enable it.
			if rs.tracker.isDisabled(i) {
				act = true
			}
			rs.tracker.observe(i, woke)
		}
		s.active[i] = act
		if !act {
			skipped++
		}
	}
	rs.collector.SetGroupsUngated(rs.tracker.disabledNow())
	saved := skipped * int64(len(input))
	s.pref.sweeps++
	s.pref.hits += int64(s.sweep.Seen())
	s.pref.skipped += skipped
	s.pref.saved += saved
	rs.collector.AddPrefilterScan(1, int64(s.sweep.Seen()), skipped, saved)
	return s.active, nil
}

// prefilterSelect is the Ruleset-level counterpart of Scanner.prefilterGate
// for CountParallel: it allocates its own sweeper (the parallel path is
// coarse-grained enough for that), folds collector counters, records trace
// skip events, and returns the activation mask or nil when ungated.
func (rs *Ruleset) prefilterSelect(input []byte, check func() error) ([]bool, error) {
	pf := rs.pf
	if pf == nil {
		return nil, nil
	}
	if active := wakeAll(rs.faults, len(rs.programs)); active != nil {
		return active, nil
	}
	run, probe := rs.tracker.decide()
	if !run {
		rs.collector.AddSweepsElided(1)
		return nil, nil
	}
	if probe {
		rs.collector.AddSweepProbes(1)
	}
	sw := pf.ac.NewSweeper()
	sw.SetAccel(rs.opts.accelOn())
	st0 := rs.stageStart()
	const block = engine.DefaultCheckpointEvery
	for off := 0; off < len(input) && !sw.Done(); off += block {
		if check != nil {
			if err := check(); err != nil {
				rs.stageEnd(telemetry.StagePrefilter, st0)
				return nil, err
			}
		}
		end := off + block
		if end > len(input) {
			end = len(input)
		}
		sw.Sweep(input[off:end])
	}
	rs.stageEnd(telemetry.StagePrefilter, st0)
	active := make([]bool, len(rs.programs))
	var skipped int64
	for i := range active {
		woke := pf.active(i, sw)
		act := woke
		if !pf.groupAlways[i] {
			if rs.tracker.isDisabled(i) {
				act = true
			}
			rs.tracker.observe(i, woke)
		}
		active[i] = act
		if !act {
			skipped++
			if rs.trace != nil {
				rs.trace.Record(telemetry.Event{Kind: telemetry.EventPrefilterSkip,
					Automaton: int32(i), Rule: -1, Offset: -1, Value: int64(len(input))})
			}
		}
	}
	rs.collector.SetGroupsUngated(rs.tracker.disabledNow())
	rs.collector.AddPrefilterScan(1, int64(sw.Seen()), skipped, skipped*int64(len(input)))
	return active, nil
}
