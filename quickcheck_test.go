package imfant

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// quickcheckOpts are the engine configurations the differential streaming
// quickcheck runs under: iMFAnt, lazy-DFA, and a lazy-DFA cache small
// enough to flush and fall back mid-stream.
func quickcheckOpts() []Options {
	return []Options{
		{},
		{KeepOnMatch: true},
		{Engine: EngineLazyDFA, KeepOnMatch: true},
		{Engine: EngineLazyDFA, KeepOnMatch: true, LazyDFAMaxStates: 3},
	}
}

// quickcheckPatterns stresses boundary-sensitive features: anchors on both
// ends, counted repetition, alternation, and overlapping literals.
var quickcheckPatterns = []string{
	"ab", "a[bc]d", "b+c", "^ab", "cd$", "a{2,3}", "(bc|cb)d", "d?c", "^a.*d$",
}

// TestQuickStreamEqualsFindAll is the differential quickcheck of the
// streaming path: random inputs split at random chunk boundaries —
// including empty and 1-byte writes — through StreamMatcher on every
// engine configuration must produce exactly the single-shot FindAll match
// set.
func TestQuickStreamEqualsFindAll(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, opts := range quickcheckOpts() {
		rs := MustCompile(quickcheckPatterns, opts)
		for trial := 0; trial < 80; trial++ {
			in := make([]byte, rng.Intn(120))
			for i := range in {
				in[i] = byte('a' + rng.Intn(5))
			}
			want := rs.FindAll(in)

			var got []Match
			sm := rs.NewStreamMatcher(func(m Match) { got = append(got, m) })
			written := 0
			for written < len(in) {
				var n int
				switch rng.Intn(4) {
				case 0: // empty write
					n = 0
				case 1: // 1-byte write
					n = 1
				default:
					n = rng.Intn(len(in) - written + 1)
				}
				w, err := sm.Write(in[written : written+n])
				if err != nil || w != n {
					t.Fatalf("opts %+v: Write(%d bytes) = (%d, %v)", opts, n, w, err)
				}
				written += n
			}
			if err := sm.Close(); err != nil {
				t.Fatalf("opts %+v: Close = %v", opts, err)
			}
			sortMatches(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("opts %+v input %q: stream %v, want %v", opts, in, got, want)
			}
		}
	}
}

// TestQuickStreamCancelThenClose quickchecks the cancellation path: after
// random healthy writes the context is cancelled and the stream is closed
// immediately. Every consumed byte must have been matched against — the
// reported events must equal the matches of the consumed prefix scanned
// WITHOUT a stream end (computed by appending a byte no rule matches and
// keeping events inside the prefix) — and Close must return the context
// error. Inputs stay under one checkpoint so each Write consumes fully.
func TestQuickStreamCancelThenClose(t *testing.T) {
	rng := rand.New(rand.NewSource(1337))
	for _, opts := range quickcheckOpts() {
		rs := MustCompile(quickcheckPatterns, opts)
		for trial := 0; trial < 40; trial++ {
			in := make([]byte, 1+rng.Intn(80))
			for i := range in {
				in[i] = byte('a' + rng.Intn(5))
			}
			// Reference: matches of `in` as a non-final prefix. No rule
			// matches 'z', so events inside the prefix are unaffected,
			// and the true stream end is never at the prefix boundary.
			var want []Match
			for _, m := range rs.FindAll(append(append([]byte{}, in...), 'z')) {
				if m.End < len(in) {
					want = append(want, m)
				}
			}

			ctx, cancel := context.WithCancel(context.Background())
			var got []Match
			sm := rs.NewStreamMatcherContext(ctx, func(m Match) { got = append(got, m) })
			written := 0
			for written < len(in) {
				n := 1 + rng.Intn(len(in)-written)
				if w, err := sm.Write(in[written:written+n]); err != nil || w != n {
					t.Fatalf("opts %+v: Write = (%d, %v)", opts, w, err)
				}
				written += n
			}
			cancel()
			if err := sm.Close(); !errors.Is(err, context.Canceled) {
				t.Fatalf("opts %+v: Close after cancel = %v", opts, err)
			}
			sortMatches(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("opts %+v input %q: cancelled stream %v, want %v", opts, in, got, want)
			}
		}
	}
}
