package imfant

import (
	"sync/atomic"

	"repro/internal/ahocorasick"
	"repro/internal/bytescan"
	"repro/internal/dfa"
	"repro/internal/engine"
	"repro/internal/lazydfa"
	"repro/internal/nfa"
	"repro/internal/rex"
	"repro/internal/strategy"
)

// Strategy is the execution strategy the planner assigned to one automaton
// group. With Options.Engine == EngineAuto every group is classified at
// compile time (see DESIGN.md, "Per-group strategy planner"); a forced
// EngineIMFAnt/EngineLazyDFA puts every group on that engine.
type Strategy uint8

const (
	// StrategyIMFAnt runs the group on the paper's NFA-style engine.
	StrategyIMFAnt Strategy = iota
	// StrategyLazyDFA runs the group on the lazy-DFA engine.
	StrategyLazyDFA
	// StrategyAC runs an all-literal group as a pure Aho–Corasick scan:
	// no automaton executes at all, and the literal scan doubles as the
	// group's factor sweep.
	StrategyAC
	// StrategyAnchored runs a group of anchored-literal rules (`^lit$`,
	// `^lit`, `lit$`, `^prefix<set>*suffix$`) as O(1)-ish per-scan checks:
	// bounded prefix/suffix compares plus a vectorized hunt for a byte the
	// middle cannot consume.
	StrategyAnchored
	// StrategyDFA runs a small group on an eagerly determinized DFA
	// (internal/dfa): one table lookup per input byte, no activation
	// bookkeeping.
	StrategyDFA

	numStrategies = 5
)

// String returns the snapshot label ("imfant", "lazydfa", "ac", "anchored",
// "dfa").
func (s Strategy) String() string {
	switch s {
	case StrategyIMFAnt:
		return "imfant"
	case StrategyLazyDFA:
		return "lazydfa"
	case StrategyAC:
		return "ac"
	case StrategyAnchored:
		return "anchored"
	case StrategyDFA:
		return "dfa"
	}
	return "unknown"
}

// Eager-DFA admission bounds: groups whose member NFAs total more states
// than maxEagerNFAStates are not even attempted, and subset construction
// itself is capped at maxEagerDFAStates (a blow-up falls back to the
// default engine at compile time, never at scan time).
const (
	maxEagerNFAStates = 128
	maxEagerDFAStates = 2048
)

// acGroup is the compiled form of a pure-AC group: the Aho–Corasick
// automaton over the member literals, in program FSA order (pattern id ==
// FSA index within the group).
type acGroup struct {
	m     *ahocorasick.Matcher
	rules int
}

// anchRule is one compiled anchored-literal check.
type anchRule struct {
	sh     strategy.Shape
	bad    bytescan.Finder // hunts bytes the middle cannot consume
	hasBad bool
	minLen int
}

// anchGroup is the compiled form of an anchored-literal group, indexed by
// FSA within the program.
type anchGroup struct {
	rules     []anchRule
	maxSuffix int // longest member suffix: the stream tail window
}

// scanPlan is the planner's output, recorded on the Ruleset: one strategy
// per automaton group plus the compiled per-strategy artifacts.
type scanPlan struct {
	strat   []Strategy
	ac      []*acGroup   // non-nil iff strat[i] == StrategyAC
	anch    []*anchGroup // non-nil iff strat[i] == StrategyAnchored
	dfas    []*dfa.DFA   // non-nil iff strat[i] == StrategyDFA
	counts  [numStrategies]int
	planned bool // false under a forced Options.Engine
}

// gatable reports whether group i participates in factor-prefilter gating.
// AC groups would be double-scanned (their strategy scan is itself a
// literal sweep) and anchored groups are O(1) already, so only DFA and
// default-engine groups are worth gating.
func (pl *scanPlan) gatable(i int) bool {
	return pl.strat[i] != StrategyAC && pl.strat[i] != StrategyAnchored
}

// literalCounts returns the number of rules in AC-routed groups and of
// distinct literals among them, for the prefilter config section (the AC
// scans report into the prefilter counters as that many sweeps' factor
// automata).
func (pl *scanPlan) literalCounts(rs *Ruleset) (rules, distinct int) {
	seen := make(map[string]bool)
	for i, g := range pl.ac {
		if g == nil {
			continue
		}
		rules += g.rules
		for _, ri := range rs.programs[i].Rules() {
			if !seen[ri.Pattern] {
				seen[ri.Pattern] = true
				distinct++
			}
		}
	}
	return rules, distinct
}

// StrategyOf returns the execution strategy of automaton group i.
func (rs *Ruleset) StrategyOf(i int) Strategy { return rs.plan.strat[i] }

// Strategies returns the per-group strategy assignment, indexed like the
// automata.
func (rs *Ruleset) Strategies() []Strategy {
	return append([]Strategy(nil), rs.plan.strat...)
}

// defaultStrategy resolves the engine groups fall to when no fast shape
// applies, mirroring useLazy.
func (rs *Ruleset) defaultStrategy() Strategy {
	if rs.useLazy() {
		return StrategyLazyDFA
	}
	return StrategyIMFAnt
}

// buildPlan classifies every automaton group. shapes is the Front-End's
// per-rule classification (indexed by original rule id; nil disables the
// fast shapes); nfas maps rule id to its optimized per-rule NFA (nil — e.g.
// rulesets loaded from ANML — disables the eager-DFA strategy). Called
// after buildEngines, before buildPrefilter (which consults the plan).
func (rs *Ruleset) buildPlan(shapes []strategy.Shape, nfas map[int]*nfa.NFA) {
	n := len(rs.programs)
	pl := &scanPlan{
		strat:   make([]Strategy, n),
		ac:      make([]*acGroup, n),
		anch:    make([]*anchGroup, n),
		dfas:    make([]*dfa.DFA, n),
		planned: rs.opts.Engine == EngineAuto,
	}
	def := rs.defaultStrategy()
	for i := range rs.programs {
		pl.strat[i] = def
		if pl.planned {
			rs.classifyGroup(pl, i, shapes, nfas)
		}
		pl.counts[pl.strat[i]]++
	}
	rs.plan = pl

	if pl.counts[StrategyLazyDFA] > 0 {
		classes := 0
		for i, st := range pl.strat {
			if st == StrategyLazyDFA {
				classes += rs.lazy[i].NumClasses()
			}
		}
		rs.collector.EnableLazy(pl.counts[StrategyLazyDFA],
			lazydfa.ResolveMaxStates(rs.opts.LazyDFAMaxStates), classes)
	}

	names := make([]string, numStrategies)
	groups := make([]int, numStrategies)
	for k := 0; k < numStrategies; k++ {
		names[k] = Strategy(k).String()
		groups[k] = pl.counts[k]
	}
	rs.collector.EnableStrategy(pl.planned, names, groups)
}

// classifyGroup decides group i's strategy, in preference order: pure AC
// (every member a plain literal), anchored-literal, eager DFA (small,
// unanchored, and pop ≡ keep for every member), default engine.
func (rs *Ruleset) classifyGroup(pl *scanPlan, i int, shapes []strategy.Shape, nfas map[int]*nfa.NFA) {
	rules := rs.programs[i].Rules()
	if len(shapes) > 0 {
		allLit, allAnch := true, true
		for _, ri := range rules {
			if ri.RuleID < 0 || ri.RuleID >= len(shapes) {
				return
			}
			switch shapes[ri.RuleID].Kind {
			case strategy.KindLiteral:
				allAnch = false
			case strategy.KindAnchored:
				allLit = false
			default:
				allLit, allAnch = false, false
			}
		}
		if allLit && len(rules) > 0 {
			pats := make([][]byte, len(rules))
			for j, ri := range rules {
				pats[j] = shapes[ri.RuleID].Literal
			}
			if m, err := ahocorasick.New(pats); err == nil {
				pl.strat[i] = StrategyAC
				pl.ac[i] = &acGroup{m: m, rules: len(rules)}
				return
			}
		}
		if allAnch && len(rules) > 0 {
			g := &anchGroup{rules: make([]anchRule, len(rules))}
			ok := true
			for j, ri := range rules {
				sh := shapes[ri.RuleID]
				r := anchRule{sh: sh, minLen: sh.MinLen()}
				if sh.HasMiddle && len(sh.MiddleExcluded) > 0 {
					f, built := sh.BadFinder()
					if !built {
						// Cannot hunt the violating bytes: the check
						// would be unsound, so the group stays general.
						ok = false
						break
					}
					r.bad, r.hasBad = f, true
				}
				if len(sh.Suffix) > g.maxSuffix {
					g.maxSuffix = len(sh.Suffix)
				}
				g.rules[j] = r
			}
			if ok {
				pl.strat[i] = StrategyAnchored
				pl.anch[i] = g
				return
			}
		}
	}
	if d := rs.eagerDFA(rules, nfas); d != nil {
		pl.strat[i] = StrategyDFA
		pl.dfas[i] = d
	}
}

// eagerDFA attempts the eager-DFA strategy for a group: every member must
// have an optimized unanchored NFA, the group must be small, and — because
// the scan determinization has keep semantics — either KeepOnMatch is set
// or every member's final states are sinks, which makes the Eq. 5 pop
// unobservable (a popped thread had nowhere to go anyway). Returns nil when
// the group does not qualify or subset construction explodes.
func (rs *Ruleset) eagerDFA(rules []engine.RuleInfo, nfas map[int]*nfa.NFA) *dfa.DFA {
	if nfas == nil || len(rules) == 0 {
		return nil
	}
	group := make([]*nfa.NFA, len(rules))
	states := 0
	for j, ri := range rules {
		a := nfas[ri.RuleID]
		if a == nil || a.AnchorStart || a.AnchorEnd || len(a.Eps) > 0 || len(a.Loops) > 0 {
			return nil
		}
		if !rs.opts.KeepOnMatch && !finalsAreSinks(a) {
			return nil
		}
		states += a.NumStates
		if states > maxEagerNFAStates {
			return nil
		}
		group[j] = a
	}
	d, err := dfa.FromNFAs(group, maxEagerDFAStates)
	if err != nil {
		return nil
	}
	return d
}

// finalsAreSinks reports whether none of the NFA's final states has an
// outgoing transition — the condition under which the engines' pop and
// keep semantics coincide for the rule.
func finalsAreSinks(a *nfa.NFA) bool {
	final := make(map[nfa.StateID]bool, len(a.Finals))
	for _, f := range a.Finals {
		final[f] = true
	}
	for _, t := range a.Trans {
		if final[t.From] {
			return false
		}
	}
	return true
}

// match evaluates one anchored rule against a whole input block, returning
// the single possible match end. `^` means stream offset 0 and `$` means
// end of stream, so a block scan sees both boundaries at once.
func (r *anchRule) match(input []byte) (end int, ok bool) {
	sh := &r.sh
	p, s := len(sh.Prefix), len(sh.Suffix)
	switch {
	case sh.AnchorStart && sh.AnchorEnd && !sh.HasMiddle:
		// `^lit$`: exact equality (the classifier folds all bytes into
		// Prefix).
		if len(input) == p && p > 0 && hasPrefix(input, sh.Prefix) {
			return p - 1, true
		}
	case sh.AnchorStart && !sh.AnchorEnd:
		// `^lit`: one event where the prefix completes.
		if len(input) >= p && hasPrefix(input, sh.Prefix) {
			return p - 1, true
		}
	case !sh.AnchorStart && sh.AnchorEnd:
		// `lit$`: one event at the last byte.
		if len(input) >= s && s > 0 && hasSuffix(input, sh.Suffix) {
			return len(input) - 1, true
		}
	default:
		// `^prefix<set>{m,}suffix$`.
		if len(input) >= r.minLen && len(input) > 0 &&
			hasPrefix(input, sh.Prefix) && hasSuffix(input, sh.Suffix) &&
			(!r.hasBad || r.bad.Index(input[p:len(input)-s]) < 0) {
			return len(input) - 1, true
		}
	}
	return 0, false
}

func hasPrefix(in, lit []byte) bool {
	if len(in) < len(lit) {
		return false
	}
	for i, b := range lit {
		if in[i] != b {
			return false
		}
	}
	return true
}

func hasSuffix(in, lit []byte) bool {
	if len(in) < len(lit) {
		return false
	}
	off := len(in) - len(lit)
	for i, b := range lit {
		if in[off+i] != b {
			return false
		}
	}
	return true
}

// shapesOf re-derives per-rule shapes from pattern sources, for rulesets
// whose compilation pipeline did not run (LoadANML). Rules whose source is
// missing or no longer parses stay KindGeneral, which is always sound.
func shapesOf(patterns []string) []strategy.Shape {
	out := make([]strategy.Shape, len(patterns))
	for i, p := range patterns {
		if p == "" {
			continue
		}
		if ast, err := rex.Parse(p); err == nil {
			out[i] = strategy.Classify(ast)
		}
	}
	return out
}

// Effectiveness-tracker tuning: per-group wake rates are judged over
// windows of trackerWindow sweeps; a group waking in ≥ 90% of a window's
// sweeps has its gate disabled (the sweep is pure overhead for it). A
// disabled group re-enables for free on any sweep — run for the other
// groups — in which it would not have woken. Once every gated group is
// disabled the sweep itself is elided, with one explicit probe sweep every
// trackerProbeEvery elisions so a traffic shift can re-arm gating.
const (
	trackerWindow     = 16
	trackerProbeEvery = 32
)

// prefTracker is the runtime prefilter-effectiveness tracker, shared by
// every Scanner and CountParallel call of a ruleset (streams gate exactly
// and retire their sweep after the first chunk, so they neither consult nor
// feed the tracker). All state is atomic; windows are approximate under
// concurrency, which only shifts when a decision lands, never its
// soundness — a disabled gate means more groups run, and a sweep that does
// run is always exact.
type prefTracker struct {
	groups   []trackerGroup // indexed by automaton; only gated entries used
	gated    int            // number of gated (non-always) groups
	disabled atomic.Int64   // gauge: gated groups currently disabled
	elided   atomic.Int64   // elided sweeps since the last probe
}

type trackerGroup struct {
	off    atomic.Bool // gate disabled: the group runs every scan
	sweeps atomic.Int64
	wakes  atomic.Int64
}

func newPrefTracker(groupAlways []bool) *prefTracker {
	t := &prefTracker{groups: make([]trackerGroup, len(groupAlways))}
	for _, always := range groupAlways {
		if !always {
			t.gated++
		}
	}
	return t
}

// decide reports whether the next sweep should run at all and whether it
// runs as an explicit re-enable probe. Nil-safe.
func (t *prefTracker) decide() (run, probe bool) {
	if t == nil || t.gated == 0 {
		return true, false
	}
	if t.disabled.Load() < int64(t.gated) {
		return true, false
	}
	if t.elided.Add(1) >= trackerProbeEvery {
		t.elided.Store(0)
		return true, true
	}
	return false, false
}

// disabledNow returns how many gated groups' gates are currently off — the
// Stats().Strategy.GroupsUngated gauge. Nil-safe.
func (t *prefTracker) disabledNow() int64 {
	if t == nil {
		return 0
	}
	return t.disabled.Load()
}

// isDisabled reports whether group i's gate is currently off. Nil-safe.
func (t *prefTracker) isDisabled(i int) bool {
	return t != nil && t.groups[i].off.Load()
}

// observe folds one sweep's outcome for gated group i: woke means the
// group's factors occurred, so gating saved nothing. Returns the group's
// disabled state to apply to this scan (a disabled group runs even when
// the sweep says it could be skipped). Nil-safe.
func (t *prefTracker) observe(i int, woke bool) {
	if t == nil {
		return
	}
	g := &t.groups[i]
	if g.off.Load() {
		if !woke {
			// The sweep ran anyway (for the other groups) and this group
			// would have been skipped: gating pays again.
			if g.off.CompareAndSwap(true, false) {
				g.sweeps.Store(0)
				g.wakes.Store(0)
				t.disabled.Add(-1)
			}
		}
		return
	}
	s := g.sweeps.Add(1)
	if woke {
		g.wakes.Add(1)
	}
	if s >= trackerWindow {
		w := g.wakes.Load()
		g.sweeps.Store(0)
		g.wakes.Store(0)
		if w*10 >= s*9 {
			if g.off.CompareAndSwap(false, true) {
				t.disabled.Add(1)
			}
		}
	}
}
