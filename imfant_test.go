package imfant

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCompileAndFindAll(t *testing.T) {
	rs := MustCompile([]string{"GET /admin", "cmd\\.exe", "ab+c"}, Options{})
	input := []byte("xx GET /admin yy cmd.exe zz abbbc")
	ms := rs.FindAll(input)
	if len(ms) != 3 {
		t.Fatalf("matches=%v", ms)
	}
	if ms[0].Rule != 0 || ms[0].End != 12 {
		t.Fatalf("first match %+v", ms[0])
	}
	if ms[1].Rule != 1 || ms[1].Pattern != `cmd\.exe` {
		t.Fatalf("second match %+v", ms[1])
	}
	if ms[2].Rule != 2 || ms[2].End != 32 {
		t.Fatalf("third match %+v", ms[2])
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(nil, Options{}); err == nil {
		t.Fatal("empty ruleset accepted")
	}
	if _, err := Compile([]string{"("}, Options{}); err == nil {
		t.Fatal("bad pattern accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	MustCompile([]string{"("}, Options{})
}

func TestMergeFactorGrouping(t *testing.T) {
	pats := []string{"aa", "ab", "ac", "ad", "ae"}
	for _, tc := range []struct {
		m, want int
	}{{0, 1}, {1, 5}, {2, 3}, {5, 1}, {99, 1}} {
		rs := MustCompile(pats, Options{MergeFactor: tc.m})
		if rs.NumAutomata() != tc.want {
			t.Errorf("M=%d: automata=%d, want %d", tc.m, rs.NumAutomata(), tc.want)
		}
	}
}

func TestMergingResultsIndependentOfM(t *testing.T) {
	pats := []string{"GET /a", "GET /b", "POST /c", "x[yz]", "cmd"}
	input := []byte("GET /a POST /c xz cmd GET /b")
	var want []Match
	for _, m := range []int{0, 1, 2, 3, 5} {
		rs := MustCompile(pats, Options{MergeFactor: m})
		got := rs.FindAll(input)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("M=%d: %v, want %v", m, got, want)
		}
	}
}

func TestCompression(t *testing.T) {
	rs := MustCompile([]string{"GET /aaa", "GET /bbb", "GET /ccc"}, Options{})
	sp, tp := rs.Compression()
	if sp <= 0 || tp <= 0 {
		t.Fatalf("compression %.2f%%/%.2f%% for highly similar rules", sp, tp)
	}
	// M=1 must not compress.
	rs1 := MustCompile([]string{"GET /aaa", "GET /bbb"}, Options{MergeFactor: 1})
	sp1, tp1 := rs1.Compression()
	if sp1 != 0 || tp1 != 0 {
		t.Fatalf("M=1 compression %.2f%%/%.2f%%, want 0", sp1, tp1)
	}
}

func TestCountAndPerRule(t *testing.T) {
	rs := MustCompile([]string{"ab", "b"}, Options{})
	input := []byte("abab")
	if got := rs.Count(input); got != 4 {
		t.Fatalf("count=%d", got)
	}
	per := rs.CountPerRule(input)
	if per[0] != 2 || per[1] != 2 {
		t.Fatalf("per-rule %v", per)
	}
}

func TestCountParallelAgrees(t *testing.T) {
	pats := []string{"aa", "ab", "bc", "ca", "cc"}
	rs := MustCompile(pats, Options{MergeFactor: 2})
	rnd := rand.New(rand.NewSource(3))
	input := make([]byte, 2048)
	for i := range input {
		input[i] = byte('a' + rnd.Intn(3))
	}
	seq := rs.Count(input)
	for _, threads := range []int{1, 2, 4, 8} {
		got, err := rs.CountParallel(input, threads)
		if err != nil {
			t.Fatal(err)
		}
		if got != seq {
			t.Fatalf("threads=%d: %d, want %d", threads, got, seq)
		}
	}
}

func TestKeepOnMatchOption(t *testing.T) {
	pop := MustCompile([]string{"ab*"}, Options{})
	keep := MustCompile([]string{"ab*"}, Options{KeepOnMatch: true})
	in := []byte("abb")
	if got := pop.Count(in); got != 1 {
		t.Fatalf("pop count=%d", got)
	}
	if got := keep.Count(in); got != 3 {
		t.Fatalf("keep count=%d", got)
	}
}

func TestANMLRoundTrip(t *testing.T) {
	pats := []string{"GET /x", "GET /y", "cmd", "a[bc]{2,3}d"}
	rs := MustCompile(pats, Options{MergeFactor: 2})
	var buf bytes.Buffer
	if err := rs.WriteANML(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadANML(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumRules() != rs.NumRules() || loaded.NumAutomata() != rs.NumAutomata() {
		t.Fatalf("loaded %d rules / %d automata", loaded.NumRules(), loaded.NumAutomata())
	}
	if !reflect.DeepEqual(loaded.Patterns(), rs.Patterns()) {
		t.Fatalf("patterns %v vs %v", loaded.Patterns(), rs.Patterns())
	}
	input := []byte("GET /x zz a bccd cmd")
	if !reflect.DeepEqual(loaded.FindAll(input), rs.FindAll(input)) {
		t.Fatal("loaded ruleset matches differently")
	}
	ls, lt := loaded.Compression()
	os_, ot := rs.Compression()
	if ls != os_ || lt != ot {
		t.Fatalf("compression changed: %f/%f vs %f/%f", ls, lt, os_, ot)
	}
}

func TestLoadANMLErrors(t *testing.T) {
	if _, err := LoadANML(bytes.NewReader(nil), Options{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := LoadANML(bytes.NewReader([]byte("garbage")), Options{}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestActivity(t *testing.T) {
	rs := MustCompile([]string{"a+b", "a+c"}, Options{})
	avg, max := rs.Activity([]byte("aaaaaaaa"))
	if avg <= 0 || max != 2 {
		t.Fatalf("activity avg=%f max=%d", avg, max)
	}
}

func TestStatsAccessors(t *testing.T) {
	rs := MustCompile([]string{"abc", "abd"}, Options{})
	if rs.NumRules() != 2 {
		t.Fatal("NumRules")
	}
	if rs.States() <= 0 || rs.Transitions() <= 0 {
		t.Fatal("state/transition accounting")
	}
	ct := rs.CompileTimes()
	if ct.Total() <= 0 {
		t.Fatal("no compile times")
	}
	// Mutating the returned patterns must not affect the ruleset.
	rs.Patterns()[0] = "mutated"
	if rs.Patterns()[0] != "abc" {
		t.Fatal("Patterns leaks internal state")
	}
}

func TestScanCallback(t *testing.T) {
	rs := MustCompile([]string{"x"}, Options{})
	var n int
	rs.Scan([]byte("xxhx"), func(m Match) { n++ })
	if n != 3 {
		t.Fatalf("scan callbacks=%d", n)
	}
}

func TestQuickFindAllMatchesRegexpEnds(t *testing.T) {
	// Cross-check single-literal rules against simple substring scanning.
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		lit := make([]byte, 1+r.Intn(4))
		for i := range lit {
			lit[i] = byte('a' + r.Intn(3))
		}
		in := make([]byte, r.Intn(64))
		for i := range in {
			in[i] = byte('a' + r.Intn(3))
		}
		rs := MustCompile([]string{string(lit)}, Options{})
		var want []int
		for i := 0; i+len(lit) <= len(in); i++ {
			if bytes.Equal(in[i:i+len(lit)], lit) {
				want = append(want, i+len(lit)-1)
			}
		}
		got := rs.FindAll(in)
		if len(got) != len(want) {
			t.Logf("lit=%q in=%q got=%v want=%v", lit, in, got, want)
			return false
		}
		for i := range got {
			if got[i].End != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
