package imfant

import (
	"math/rand"
	"os"
	"testing"

	"repro/internal/snort"
)

// TestSnortPrefilterSkipRate measures the production literal-factor
// prefilter on the snort-derived web-attacks ruleset through the public
// API — the numbers recorded in EXPERIMENTS.md — and pins the qualitative
// properties: IDS rules are overwhelmingly filterable, benign HTTP traffic
// skips every group, salted traffic wakes only the groups whose factors
// occur, and match results are byte-identical to the unfiltered ruleset.
func TestSnortPrefilterSkipRate(t *testing.T) {
	f, err := os.Open("internal/snort/testdata/web-attacks.rules")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rules, _, err := snort.ParseRules(f)
	if err != nil {
		t.Fatal(err)
	}
	patterns := make([]string, 0, len(rules))
	for _, ru := range rules {
		patterns = append(patterns, ru.Pattern)
	}
	// The forced engine keeps every group behind the factor sweep — this
	// study measures sweep gating itself. Under the strategy planner
	// (EngineAuto) all-literal groups route to self-filtering AC scans and
	// leave the sweep, which TestSnortAccelAccounting covers.
	on, _, err := CompileLax(patterns, Options{MergeFactor: 2, Prefilter: PrefilterOn, Engine: EngineIMFAnt})
	if err != nil {
		t.Fatal(err)
	}
	off, _, err := CompileLax(patterns, Options{MergeFactor: 2, Prefilter: PrefilterOff, Engine: EngineIMFAnt})
	if err != nil {
		t.Fatal(err)
	}
	if !on.PrefilterActive() {
		t.Fatal("prefilter did not engage on the snort ruleset")
	}

	// Benign HTTP traffic, and the same traffic salted with attack
	// fragments, as in the lazy-DFA conformance suite.
	rng := rand.New(rand.NewSource(42))
	benignFrags := []string{
		"GET /index.html HTTP/1.0\r\n", "Host: example.com\r\n",
		"User-Agent: Mozilla/5.0\r\n", "Accept: */*\r\n",
	}
	attackFrags := []string{
		"/etc/passwd", "cmd.exe", "<script>", "../..", "id=1 or 1=1",
	}
	var benign, salted []byte
	for len(benign) < 256<<10 {
		benign = append(benign, benignFrags[rng.Intn(len(benignFrags))]...)
	}
	for len(salted) < 256<<10 {
		if rng.Intn(4) == 0 {
			salted = append(salted, attackFrags[rng.Intn(len(attackFrags))]...)
		} else {
			salted = append(salted, benignFrags[rng.Intn(len(benignFrags))]...)
		}
	}

	groups := int64(on.NumAutomata())
	measure := func(name string, in []byte) *PrefilterStats {
		sc := on.NewScanner()
		got, err := sc.FindAllContext(t.Context(), in)
		if err != nil {
			t.Fatal(err)
		}
		want := off.FindAll(in)
		sortMatches(got)
		sortMatches(want)
		if len(got) != len(want) {
			t.Fatalf("%s: %d matches with prefilter, %d without", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: match %d differs: %+v vs %+v", name, i, got[i], want[i])
			}
		}
		st := sc.Stats().Prefilter
		if st == nil {
			t.Fatalf("%s: no prefilter stats", name)
		}
		t.Logf("%s: %d/%d filterable rules, %d factors, %d/%d groups skipped (%.0f%%), %d bytes saved, %d matches",
			name, st.FilterableRules, on.NumRules(), st.Factors,
			st.GroupsSkipped, groups, 100*float64(st.GroupsSkipped)/float64(groups),
			st.BytesSaved, len(got))
		return st
	}

	// Not every snort rule yields a factor (case-insensitive rules
	// compile to per-character classes), so groups holding an
	// unfilterable rule must always run; the skippable population is the
	// fully-filterable groups. Benign traffic must skip those — attack
	// factors don't occur in it — and save exactly their share of the
	// scanned bytes.
	b := measure("benign", benign)
	if b.GroupsSkipped == 0 {
		t.Fatal("benign traffic skipped no groups")
	}
	if b.BytesSaved != b.GroupsSkipped*int64(len(benign)) {
		t.Fatalf("bytes saved %d, want %d", b.BytesSaved, b.GroupsSkipped*int64(len(benign)))
	}
	s := measure("salted", salted)
	if s.FactorHits <= b.FactorHits {
		t.Fatalf("salted traffic hit %d factors, benign %d — salt not detected",
			s.FactorHits, b.FactorHits)
	}
	if s.GroupsSkipped >= b.GroupsSkipped {
		t.Fatalf("salted traffic skipped %d groups, benign %d — factors did not wake groups",
			s.GroupsSkipped, b.GroupsSkipped)
	}
}
