package imfant

import (
	"errors"
	"strings"
	"testing"
)

// FuzzCompile feeds hostile patterns through the full compilation pipeline
// and a short scan. The invariants under fuzzing:
//
//   - no public entry point panics on malformed or adversarial input;
//   - every failure is a typed *CompileError attributing a rule and stage;
//   - every success respects the ruleset-level state budget, so a pattern
//     cannot talk the compiler into unbounded memory.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"(",
		")",
		"[",
		"a**",
		"a{2,1}",
		"a{1,100000}",
		"a{100000}",
		"(a{500}){500}",
		"((a{90}){90}){90}",
		"a{0,0}b",
		strings.Repeat("(", 500),
		strings.Repeat("(", 240) + "a" + strings.Repeat(")", 240),
		strings.Repeat("a|", 2000) + "b",
		strings.Repeat("[^a]", 300),
		"\\",
		"x" + string(rune(0)) + "y",
		"(a|b)*c{3,7}[d-f]+$",
		"^" + strings.Repeat("(ab?c+)", 60) + "$",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	maxStates := DefaultLimits().MaxMFSAStates
	probe := []byte("abcdefg\x00ab{}(x")
	f.Fuzz(func(t *testing.T, pattern string) {
		rs, err := Compile([]string{pattern}, Options{})
		if err != nil {
			var ce *CompileError
			if !errors.As(err, &ce) {
				t.Fatalf("%.60q: untyped compile error %T: %v", pattern, err, err)
			}
			return
		}
		if got := rs.States(); got > maxStates {
			t.Fatalf("%.60q: compiled to %d states, over the %d budget", pattern, got, maxStates)
		}
		// A compiled hostile pattern must also execute without panicking.
		rs.FindAll(probe)
	})
}
