package imfant

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// FuzzCompile feeds hostile patterns through the full compilation pipeline
// and a short scan. The invariants under fuzzing:
//
//   - no public entry point panics on malformed or adversarial input;
//   - every failure is a typed *CompileError attributing a rule and stage;
//   - every success respects the ruleset-level state budget, so a pattern
//     cannot talk the compiler into unbounded memory.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"(",
		")",
		"[",
		"a**",
		"a{2,1}",
		"a{1,100000}",
		"a{100000}",
		"(a{500}){500}",
		"((a{90}){90}){90}",
		"a{0,0}b",
		strings.Repeat("(", 500),
		strings.Repeat("(", 240) + "a" + strings.Repeat(")", 240),
		strings.Repeat("a|", 2000) + "b",
		strings.Repeat("[^a]", 300),
		"\\",
		"x" + string(rune(0)) + "y",
		"(a|b)*c{3,7}[d-f]+$",
		"^" + strings.Repeat("(ab?c+)", 60) + "$",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	maxStates := DefaultLimits().MaxMFSAStates
	probe := []byte("abcdefg\x00ab{}(x")
	f.Fuzz(func(t *testing.T, pattern string) {
		rs, err := Compile([]string{pattern}, Options{})
		if err != nil {
			var ce *CompileError
			if !errors.As(err, &ce) {
				t.Fatalf("%.60q: untyped compile error %T: %v", pattern, err, err)
			}
			return
		}
		if got := rs.States(); got > maxStates {
			t.Fatalf("%.60q: compiled to %d states, over the %d budget", pattern, got, maxStates)
		}
		// A compiled hostile pattern must also execute without panicking.
		rs.FindAll(probe)
	})
}

// FuzzStrategyPlan is the planner's differential fuzz target: whatever
// strategy the classifier picks for a pattern — pure AC, anchored-literal,
// eager DFA, or an engine — the match set must be byte-identical to the
// forced iMFAnt engine on the same input, with and without the prefilter.
func FuzzStrategyPlan(f *testing.F) {
	type seed struct{ pattern, input string }
	for _, s := range []seed{
		{"alpha", "xx alpha yy alphaalpha"},
		{"^HDR:", "HDR: content"},
		{"trail$", "stuff trail"},
		{"^PING$", "PING"},
		{"^GET [a-z]{1,}$", "GET abc"},
		{"a[bc]d", "abd acd aad abcd"},
		{"ne+dle[0-9]*x", "needle77x nedlex"},
		{"a{2,3}", "aaaa"},
		{"^a.*d$", "abcd"},
		{"(foo|bar)baz", "fooba foobaz barbaz"},
	} {
		f.Add(s.pattern, s.input)
	}
	f.Fuzz(func(t *testing.T, pattern, input string) {
		if len(input) > 1<<12 {
			return
		}
		oracleRS, err := Compile([]string{pattern, "zz9fixed"},
			Options{Engine: EngineIMFAnt, Prefilter: PrefilterOff})
		if err != nil {
			return // FuzzCompile owns compile-error typing
		}
		in := []byte(input + " zz9fixed")
		want := oracleRS.FindAll(in)
		sortMatches(want)
		for _, pf := range []PrefilterMode{PrefilterOff, PrefilterOn} {
			planned, err := Compile([]string{pattern, "zz9fixed"},
				Options{Prefilter: pf})
			if err != nil {
				t.Fatalf("%.60q: planner-on compile failed after planner-off succeeded: %v", pattern, err)
			}
			got := planned.FindAll(in)
			sortMatches(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%.60q on %.60q (pf=%v, strategies %v): planned %v, oracle %v",
					pattern, input, pf, planned.Strategies(), got, want)
			}
		}
	})
}
