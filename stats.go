package imfant

import (
	"expvar"

	"repro/internal/lazydfa"
	"repro/internal/telemetry"
)

// Stats is a point-in-time snapshot of runtime matching telemetry. Every
// counter is cumulative since the owning object was created. Snapshots are
// cheap — counters are folded at scan (never per-byte) granularity, so the
// matching hot loops pay nothing for them.
//
// Three scopes expose the same shape:
//
//   - Ruleset.Stats aggregates across every Scanner, StreamMatcher, and
//     CountParallel call derived from the ruleset.
//   - Scanner.Stats covers that scanner's own scans.
//   - StreamMatcher.Stats covers that stream.
type Stats struct {
	// Scans counts completed automaton executions: one per (scan,
	// automaton) pair for block scans, one per automaton for a closed
	// stream.
	Scans int64 `json:"scans"`
	// BytesScanned counts input bytes matched against, per automaton —
	// scanning 1 KiB through a ruleset of 3 MFSAs adds 3 KiB.
	BytesScanned int64 `json:"bytes_scanned"`
	// Matches counts reported match events.
	Matches int64 `json:"matches"`
	// RuleHits holds per-rule match counts indexed like the compiled
	// patterns. A persistently hot rule is a sharding candidate.
	RuleHits []int64 `json:"rule_hits,omitempty"`
	// Lazy holds the lazy-DFA cache counters; nil when the ruleset runs
	// on the iMFAnt engine.
	Lazy *LazyStats `json:"lazy,omitempty"`
	// Prefilter holds the literal-factor prefilter counters; nil when the
	// prefilter is not gating scans (see Options.Prefilter).
	Prefilter *PrefilterStats `json:"prefilter,omitempty"`
	// Accel holds the byte-skipping acceleration counters; nil when
	// acceleration is off (see Options.Accel).
	Accel *AccelStats `json:"accel,omitempty"`
	// Strategy holds the per-group strategy planner's section: which
	// execution strategies the compile-time classification chose, how much
	// input each has scanned, and the runtime prefilter-effectiveness
	// tracker's counters. Always present on rulesets compiled by this
	// version; the per-strategy Bytes partition BytesScanned exactly.
	Strategy *StrategyStats `json:"strategy,omitempty"`
	// Profile holds the sampling profiler's aggregates; nil when the
	// ruleset was compiled without Options.Profile. Ruleset scope only —
	// Scanner and StreamMatcher snapshots omit it (the profiler is shared
	// ruleset-wide).
	Profile *ProfileStats `json:"profile,omitempty"`
	// Segment holds the segment-parallel scanning counters; nil when
	// segmented scanning is disabled (Options.Segment == SegmentOff). Its
	// byte counters partition BytesScanned exactly. At Scanner and
	// StreamMatcher scope every byte is serial — those owners never run the
	// segment-parallel path.
	Segment *SegmentStats `json:"segment,omitempty"`
	// Degraded accounts every rung of the degradation ladder taken:
	// timeouts, shed scans, contained worker panics, lazy-DFA thrash
	// fallbacks, cache-grow retries, and pinned delegations. Always
	// present — an all-zero section is the healthy steady state. A scan
	// counted here still returned either exact matches or a typed error;
	// the section measures lost headroom, never lost correctness.
	Degraded *DegradedStats `json:"degraded"`
	// Latency holds the per-stage wall-clock latency distributions
	// recorded under Options.Latency; nil when attribution is off or no
	// stage has fired. Ruleset scope only — the histogram set is shared
	// ruleset-wide, like the profiler.
	Latency *LatencyStats `json:"latency,omitempty"`
}

// DegradedStats is the degradation-ladder section of a stats snapshot. The
// rungs, in escalation order: a scan can time out (ErrScanTimeout), be shed
// under overload (ErrOverloaded), lose one automaton to a contained worker
// panic (engine.WorkerPanicError), or — on the lazy-DFA engine — thrash its
// cache and fall back to iMFAnt, retry once with a doubled cache, and
// finally pin to iMFAnt for good. Scanner and StreamMatcher scopes report
// their own events; Shed and WorkerPanics are parallel-scan phenomena and
// stay zero there.
type DegradedStats struct {
	// ScanTimeouts counts scans cancelled by Options.ScanTimeout.
	ScanTimeouts int64 `json:"scan_timeouts"`
	// Shed counts scans rejected by the bounded work queue
	// (Options.MaxConcurrentScans) before doing any work.
	Shed int64 `json:"shed"`
	// WorkerPanics counts panics contained inside CountParallel workers:
	// the panicking automaton's results were lost (and reported as a
	// typed error), the process and sibling automata were not.
	WorkerPanics int64 `json:"worker_panics"`
	// ThrashFallbacks counts lazy-DFA scans that fell back to the iMFAnt
	// engine after thrashing the cache — the ladder's first rung,
	// mirroring Lazy.Fallbacks.
	ThrashFallbacks int64 `json:"thrash_fallbacks"`
	// CacheGrows counts one-shot retry-with-larger-cache events
	// (Options.ThrashRetry): a matching context re-entering the cached
	// path with its cap doubled after a thrash.
	CacheGrows int64 `json:"cache_grows"`
	// PinnedScans counts scans delegated whole to the iMFAnt engine
	// because the ladder bottomed out (thrash at the grown cap too).
	PinnedScans int64 `json:"pinned_scans"`
}

// SegmentStats is the segment-parallel scanning section of a stats snapshot
// (Options.Segment). ParallelBytes + StitchBytes + SerialBytes ==
// BytesScanned always holds: every matched-against byte was scanned inside a
// segment worker, by a boundary-stitch runner, or serially. A high
// StitchBytes share means boundary carries survive deep into segments
// (match-dense or always-live rules) and segmentation is paying for its
// parallelism; Fallbacks counts groups whose speculative frontier exceeded
// Options.SegmentMaxFrontier and were pinned serial.
type SegmentStats struct {
	// SegmentedScans counts automaton-group executions that ran
	// segment-parallel.
	SegmentedScans int64 `json:"segmented_scans"`
	// Segments counts segments executed across those scans.
	Segments int64 `json:"segments"`
	// Fallbacks counts segmented scans whose boundary frontier exceeded the
	// budget; results stayed exact and the group runs serially afterwards.
	Fallbacks int64 `json:"fallbacks"`
	// ParallelBytes counts input bytes scanned inside segment workers.
	ParallelBytes int64 `json:"parallel_bytes"`
	// StitchBytes counts bytes re-scanned by boundary stitching.
	StitchBytes int64 `json:"stitch_bytes"`
	// SerialBytes counts bytes scanned outside the segment-parallel path.
	SerialBytes int64 `json:"serial_bytes"`
}

// PrefilterStats is the literal-factor prefilter section of a stats
// snapshot. GroupsSkipped versus Scans is the skip rate; BytesSaved is the
// input volume the skipped automaton executions never had to touch.
type PrefilterStats struct {
	// FilterableRules is the number of rules carrying a literal factor.
	FilterableRules int `json:"filterable_rules"`
	// Factors is the number of distinct factor strings swept for.
	Factors int `json:"factors"`
	// Sweeps counts Aho–Corasick sweeps (one per gated scan or stream).
	Sweeps int64 `json:"sweeps"`
	// FactorHits counts distinct factors found per sweep, summed over
	// sweeps (the prefilter_factor_hits counter).
	FactorHits int64 `json:"prefilter_factor_hits"`
	// GroupsSkipped counts whole MFSA executions elided by the prefilter.
	GroupsSkipped int64 `json:"groups_skipped"`
	// BytesSaved totals the input bytes those executions would have
	// scanned.
	BytesSaved int64 `json:"bytes_saved"`
}

// StrategyStats is the strategy-planner section of a stats snapshot: the
// compile-time classification outcome (see DESIGN.md for the rules) plus
// the runtime prefilter-effectiveness tracker's counters. At Scanner and
// StreamMatcher scope the sweep-disable counters stay zero — the tracker is
// shared ruleset-wide and its event counters are reported there — while
// GroupsUngated reflects the shared gauge.
type StrategyStats struct {
	// Planned reports whether the planner classified groups individually;
	// false means a forced Options.Engine override put every group on one
	// engine.
	Planned bool `json:"planned"`
	// Groups lists, per execution strategy in use, how many automaton
	// groups run it and how many input bytes it has matched against.
	Groups []StrategyGroupStats `json:"groups,omitempty"`
	// SweepsDisabled counts factor sweeps elided entirely because the
	// effectiveness tracker had disabled gating for every gated group.
	SweepsDisabled int64 `json:"sweeps_disabled"`
	// SweepProbes counts sweeps re-run as explicit probes while disabled,
	// checking whether gating has become worthwhile again.
	SweepProbes int64 `json:"sweep_probes"`
	// GroupsUngated is the current number of gated groups whose factor
	// gate the tracker has disabled (a gauge; those groups scan every
	// input until a probe re-enables them).
	GroupsUngated int64 `json:"groups_ungated"`
}

// StrategyGroupStats is one strategy's row in the planner section.
type StrategyGroupStats struct {
	// Strategy names the execution strategy: "ac", "anchored", "dfa",
	// "imfant", or "lazydfa".
	Strategy string `json:"strategy"`
	// Groups is the number of automaton groups the planner routed here.
	Groups int `json:"groups"`
	// Bytes counts input bytes this strategy matched against.
	Bytes int64 `json:"bytes"`
}

// AccelStats is the byte-skipping acceleration section of a stats snapshot.
// BytesSkipped counts input bytes the engines jumped over with a skip kernel
// instead of stepping per byte; those bytes were still matched against (the
// jump is provably equivalent) and so also count in BytesScanned —
// BytesSkipped ≤ BytesScanned always holds, and the counter is disjoint from
// the prefilter's BytesSaved, which counts automaton executions that never
// ran at all.
type AccelStats struct {
	// Automata is the number of MFSAs contributing to these counters.
	Automata int `json:"automata"`
	// AccelStates is the current number of lazy-DFA cached states
	// classified as accelerable, summed across automata (a gauge, like
	// LazyStats.CachedStates); 0 on the iMFAnt engine.
	AccelStates int64 `json:"accel_states"`
	// BytesSkipped counts input bytes consumed by accelerated jumps.
	BytesSkipped int64 `json:"bytes_skipped"`
}

// ProfileStats is the profiler section of a stats snapshot: sampled state
// heat attributed to rules, plus latency and active-set distributions.
// For the full heat map use Ruleset.Profile.
type ProfileStats struct {
	// Stride is the symbol-sampling stride in effect.
	Stride int `json:"stride"`
	// Samples counts sampling points taken across all scans.
	Samples int64 `json:"samples"`
	// ScanLatencyNS summarizes per-scan wall-clock latency in
	// nanoseconds; nil before the first completed scan.
	ScanLatencyNS *HistStats `json:"scan_latency_ns,omitempty"`
	// ChunkLatencyNS summarizes StreamMatcher.Write latency in
	// nanoseconds; nil without stream traffic.
	ChunkLatencyNS *HistStats `json:"chunk_latency_ns,omitempty"`
	// ActivePairs summarizes the active (state, FSA) pair count at
	// sampling points — the engine's live working-set size.
	ActivePairs *HistStats `json:"active_pairs,omitempty"`
	// HotStates lists the ten most-visited states with rule attribution,
	// hottest first.
	HotStates []HotState `json:"hot_states,omitempty"`
}

// HistStats is the compact summary of one profiled distribution.
// Percentiles come from log2 buckets and are within 2× of exact.
type HistStats struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// LazyStats aggregates transition-cache behaviour across the automata of a
// ruleset running on the lazy-DFA engine. The hit rate is the primary
// signal for sizing Options.LazyDFAMaxStates: a low rate on steady traffic
// means the cap is too small for the ruleset; a rising Fallbacks count
// means the input mix is defeating determinization outright.
type LazyStats struct {
	// Automata is the number of MFSAs contributing to these counters.
	Automata int `json:"automata"`
	// CachedStates is the most recently observed total number of cached
	// DFA states across automata (a gauge, not a cumulative counter).
	CachedStates int64 `json:"cached_states"`
	// MaxStates is the per-automaton cache capacity in effect.
	MaxStates int `json:"max_states"`
	// ByteClasses is the total byte-class count across automata — the
	// width of each automaton's compressed transition rows.
	ByteClasses int `json:"byte_classes"`
	// Hits counts input bytes served by a cached transition.
	Hits int64 `json:"hits"`
	// Misses counts transitions computed on demand by an iMFAnt step.
	Misses int64 `json:"misses"`
	// Flushes counts whole-cache resets forced by the capacity limit.
	Flushes int64 `json:"flushes"`
	// Fallbacks counts scans that abandoned the cache for iMFAnt after
	// thrashing. Pop-mode delegation is a configuration choice and is
	// not counted.
	Fallbacks int64 `json:"fallbacks"`
}

// HitRate returns the fraction of cache lookups served from the cache, in
// [0, 1]; 0 when no lookups have happened.
func (l *LazyStats) HitRate() float64 {
	total := l.Hits + l.Misses
	if total == 0 {
		return 0
	}
	return float64(l.Hits) / float64(total)
}

// statsFrom converts an internal telemetry snapshot to the public shape.
func statsFrom(t telemetry.Stats) Stats {
	s := Stats{
		Scans:        t.Scans,
		BytesScanned: t.BytesScanned,
		Matches:      t.Matches,
		RuleHits:     t.RuleHits,
	}
	if t.Lazy != nil {
		s.Lazy = &LazyStats{
			Automata:     t.Lazy.Automata,
			CachedStates: t.Lazy.CachedStates,
			MaxStates:    t.Lazy.MaxStates,
			ByteClasses:  t.Lazy.ByteClasses,
			Hits:         t.Lazy.Hits,
			Misses:       t.Lazy.Misses,
			Flushes:      t.Lazy.Flushes,
			Fallbacks:    t.Lazy.Fallbacks,
		}
	}
	if t.Prefilter != nil {
		s.Prefilter = &PrefilterStats{
			FilterableRules: t.Prefilter.FilterableRules,
			Factors:         t.Prefilter.Factors,
			Sweeps:          t.Prefilter.Sweeps,
			FactorHits:      t.Prefilter.FactorHits,
			GroupsSkipped:   t.Prefilter.GroupsSkipped,
			BytesSaved:      t.Prefilter.BytesSaved,
		}
	}
	if t.Accel != nil {
		s.Accel = &AccelStats{
			Automata:     t.Accel.Automata,
			AccelStates:  t.Accel.AccelStates,
			BytesSkipped: t.Accel.BytesSkipped,
		}
	}
	if t.Strategy != nil {
		ss := &StrategyStats{
			Planned:        t.Strategy.Planned,
			SweepsDisabled: t.Strategy.SweepsDisabled,
			SweepProbes:    t.Strategy.SweepProbes,
			GroupsUngated:  t.Strategy.GroupsUngated,
		}
		for _, g := range t.Strategy.Groups {
			ss.Groups = append(ss.Groups, StrategyGroupStats{
				Strategy: g.Strategy, Groups: g.Groups, Bytes: g.Bytes,
			})
		}
		s.Strategy = ss
	}
	if t.Segment != nil {
		s.Segment = &SegmentStats{
			SegmentedScans: t.Segment.SegmentedScans,
			Segments:       t.Segment.Segments,
			Fallbacks:      t.Segment.Fallbacks,
			ParallelBytes:  t.Segment.ParallelBytes,
			StitchBytes:    t.Segment.StitchBytes,
			SerialBytes:    t.Segment.SerialBytes,
		}
	}
	if t.Profile != nil {
		p := &ProfileStats{
			Stride:         t.Profile.Stride,
			Samples:        t.Profile.Samples,
			ScanLatencyNS:  histStatsFrom(t.Profile.ScanLatencyNS),
			ChunkLatencyNS: histStatsFrom(t.Profile.ChunkLatencyNS),
			ActivePairs:    histStatsFrom(t.Profile.ActivePairs),
		}
		for _, h := range t.Profile.HotStates {
			p.HotStates = append(p.HotStates, HotState{
				Automaton: h.Automaton, State: h.State,
				Visits: h.Visits, Share: h.Share, Rules: h.Rules,
			})
		}
		s.Profile = p
	}
	if t.Latency != nil {
		ls := &LatencyStats{}
		for _, g := range t.Latency.Stages {
			ls.Stages = append(ls.Stages, StageLatency{
				Stage: g.Stage,
				HistStats: HistStats{Count: g.Count, Mean: g.Mean,
					P50: g.P50, P90: g.P90, P99: g.P99, Max: g.Max},
			})
		}
		s.Latency = ls
	}
	if t.Degraded != nil {
		s.Degraded = &DegradedStats{
			ScanTimeouts:    t.Degraded.ScanTimeouts,
			Shed:            t.Degraded.Shed,
			WorkerPanics:    t.Degraded.WorkerPanics,
			ThrashFallbacks: t.Degraded.ThrashFallbacks,
			CacheGrows:      t.Degraded.CacheGrows,
			PinnedScans:     t.Degraded.PinnedScans,
		}
	}
	return s
}

// histStatsFrom converts the internal histogram summary; nil passes
// through.
func histStatsFrom(h *telemetry.HistStats) *HistStats {
	if h == nil {
		return nil
	}
	return &HistStats{Count: h.Count, Mean: h.Mean, P50: h.P50, P90: h.P90, P99: h.P99, Max: h.Max}
}

// Stats returns the ruleset-wide telemetry snapshot: the fold of every scan
// executed by Scanners, StreamMatchers, and CountParallel calls created
// from this ruleset. Safe for concurrent use.
func (rs *Ruleset) Stats() Stats {
	return statsFrom(rs.collector.Snapshot())
}

// StatsVar returns the ruleset's live counters as an expvar.Var whose
// String method renders the current Stats snapshot as JSON, for publishing
// on the standard debug endpoint:
//
//	expvar.Publish("imfant", rs.StatsVar())
func (rs *Ruleset) StatsVar() expvar.Var {
	return rs.collector
}

// Stats returns this scanner's own telemetry: totals over every scan it has
// executed, including a partial scan still in progress. Not safe for use
// concurrent with the scanner's scans (the Scanner itself is single-owner).
func (s *Scanner) Stats() Stats {
	st := Stats{RuleHits: append([]int64(nil), s.ruleHits...),
		Degraded: &DegradedStats{ScanTimeouts: s.timeouts}}
	rs := s.rs
	var accel *AccelStats
	if rs.opts.accelOn() {
		accel = &AccelStats{Automata: len(rs.programs)}
	}
	// Top-level totals are the fold of the per-strategy locals — every scan
	// branch records into exactly one s.strat row, so the rows partition the
	// totals by construction.
	for k := range s.strat {
		st.Scans += s.strat[k].scans
		st.BytesScanned += s.strat[k].bytes
		st.Matches += s.strat[k].matches
	}
	var l *LazyStats
	for i := range rs.programs {
		switch {
		case s.lazies[i] != nil:
			r := s.lazies[i]
			if l == nil {
				l = &LazyStats{}
			}
			l.Automata++
			t := r.Totals()
			l.Hits += t.CacheHits
			l.Misses += t.CacheMisses
			l.Flushes += t.Flushes
			l.Fallbacks += t.Fallbacks
			st.Degraded.CacheGrows += t.Grows
			st.Degraded.PinnedScans += t.Pins
			l.CachedStates += int64(r.CachedStates())
			if m := r.MaxStates(); m > l.MaxStates {
				l.MaxStates = m
			}
			l.ByteClasses += rs.lazy[i].NumClasses()
			if accel != nil {
				accel.BytesSkipped += t.AccelBytes
				accel.AccelStates += int64(r.AccelStates())
			}
		case s.runners[i] != nil:
			if accel != nil {
				accel.BytesSkipped += s.runners[i].Totals().AccelBytes
			}
		case s.acs[i] != nil:
			if accel != nil {
				accel.BytesSkipped += s.acs[i].Skipped()
			}
		}
	}
	if l != nil {
		if l.MaxStates == 0 {
			l.MaxStates = lazydfa.ResolveMaxStates(rs.opts.LazyDFAMaxStates)
		}
		st.Degraded.ThrashFallbacks = l.Fallbacks
		st.Lazy = l
	}
	st.Strategy = localStrategyStats(rs, s.strat)
	st.Prefilter = s.pref.stats(rs)
	st.Accel = accel
	st.Segment = rs.localSegmentStats(st.BytesScanned)
	return st
}

// localStrategyStats builds the Scanner/StreamMatcher-scope planner section:
// classification outcome from the shared plan, bytes from the owner's local
// per-strategy totals, and the shared tracker's ungated gauge. The tracker's
// sweep-disable event counters are ruleset-scope and stay zero here.
func localStrategyStats(rs *Ruleset, strat [numStrategies]stratTotals) *StrategyStats {
	pl := rs.plan
	if pl == nil {
		return nil
	}
	ss := &StrategyStats{Planned: pl.planned, GroupsUngated: rs.tracker.disabledNow()}
	for k := 0; k < numStrategies; k++ {
		if pl.counts[k] == 0 {
			continue
		}
		ss.Groups = append(ss.Groups, StrategyGroupStats{
			Strategy: Strategy(k).String(),
			Groups:   pl.counts[k],
			Bytes:    strat[k].bytes,
		})
	}
	return ss
}

// Stats returns this stream's telemetry, including the in-progress state of
// a stream that has not been closed yet (Scans stays 0 until Close, since a
// stream counts as one completed scan per automaton). Not safe for use
// concurrent with Write or Close.
func (sm *StreamMatcher) Stats() Stats {
	st := Stats{RuleHits: append([]int64(nil), sm.ruleHits...),
		Degraded: &DegradedStats{ScanTimeouts: sm.timeouts}}
	rs := sm.rs
	var accel *AccelStats
	if rs.opts.accelOn() {
		accel = &AccelStats{Automata: len(rs.programs)}
	}
	var strat [numStrategies]stratTotals
	var l *LazyStats
	for i := range rs.programs {
		switch {
		case sm.engines[i] != nil:
			if sm.isGated(i) {
				continue
			}
			t := sm.engines[i].Totals()
			strat[StrategyIMFAnt].scans += t.Scans
			strat[StrategyIMFAnt].bytes += t.Symbols
			strat[StrategyIMFAnt].matches += t.Matches
			if accel != nil {
				accel.BytesSkipped += t.AccelBytes
			}
		case sm.lazies[i] != nil:
			if sm.isGated(i) {
				continue
			}
			r := sm.lazies[i]
			if l == nil {
				l = &LazyStats{}
			}
			l.Automata++
			t := r.Totals()
			strat[StrategyLazyDFA].scans += t.Scans
			strat[StrategyLazyDFA].bytes += t.Symbols
			strat[StrategyLazyDFA].matches += t.Matches
			l.Hits += t.CacheHits
			l.Misses += t.CacheMisses
			l.Flushes += t.Flushes
			l.Fallbacks += t.Fallbacks
			st.Degraded.CacheGrows += t.Grows
			st.Degraded.PinnedScans += t.Pins
			l.CachedStates += int64(r.CachedStates())
			if m := r.MaxStates(); m > l.MaxStates {
				l.MaxStates = m
			}
			l.ByteClasses += rs.lazy[i].NumClasses()
			if accel != nil {
				accel.BytesSkipped += t.AccelBytes
				accel.AccelStates += int64(r.AccelStates())
			}
		case sm.dfaRuns[i] != nil:
			if sm.isGated(i) {
				continue
			}
			t := sm.dfaRuns[i].Totals()
			strat[StrategyDFA].scans += t.Scans
			strat[StrategyDFA].bytes += t.Symbols
			strat[StrategyDFA].matches += t.Matches
		case sm.acRuns[i] != nil:
			// AC groups count like engine streams: one completed scan at
			// Close, bytes as they are consumed.
			if sm.closed {
				strat[StrategyAC].scans++
			}
			strat[StrategyAC].bytes += sm.consumed
			strat[StrategyAC].matches += sm.groupMatches[i]
			if accel != nil {
				accel.BytesSkipped += sm.acRuns[i].Skipped()
			}
		case sm.anchRuns[i] != nil:
			if sm.closed {
				strat[StrategyAnchored].scans++
			}
			strat[StrategyAnchored].bytes += sm.consumed
			strat[StrategyAnchored].matches += sm.groupMatches[i]
		}
	}
	for k := range strat {
		st.Scans += strat[k].scans
		st.BytesScanned += strat[k].bytes
		st.Matches += strat[k].matches
	}
	if l != nil {
		if l.MaxStates == 0 {
			l.MaxStates = lazydfa.ResolveMaxStates(rs.opts.LazyDFAMaxStates)
		}
		st.Degraded.ThrashFallbacks = l.Fallbacks
		st.Lazy = l
	}
	st.Strategy = localStrategyStats(rs, strat)
	st.Prefilter = sm.pref.stats(rs)
	st.Accel = accel
	st.Segment = rs.localSegmentStats(st.BytesScanned)
	return st
}
