package imfant

import (
	"context"
	"runtime"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/lazydfa"
	"repro/internal/segment"
	"repro/internal/telemetry"
)

// SegmentMode selects segment-parallel scanning for whole-buffer scans (see
// Options.Segment).
type SegmentMode int

const (
	// SegmentAuto segments inputs of at least Options.SegmentMinBytes when
	// more than one worker is available.
	SegmentAuto SegmentMode = iota
	// SegmentOn segments every input large enough to cut, regardless of
	// SegmentMinBytes.
	SegmentOn
	// SegmentOff disables segment-parallel scanning.
	SegmentOff
)

const (
	// DefaultSegmentMinBytes is the SegmentAuto threshold: below 1 MiB the
	// per-worker runner setup and boundary stitching outweigh the
	// parallelism.
	DefaultSegmentMinBytes = 1 << 20
	// DefaultSegmentMaxFrontier is the speculative boundary-frontier budget,
	// in active MFSA states.
	DefaultSegmentMaxFrontier = 64
)

// localSegmentStats builds the Segment stats section for a Scanner or
// StreamMatcher scope, whose scans are never segmented: the whole byte count
// is serial. Nil when segmentation is disabled, matching the ruleset scope.
func (rs *Ruleset) localSegmentStats(bytes int64) *SegmentStats {
	if rs.opts.Segment == SegmentOff {
		return nil
	}
	return &SegmentStats{SerialBytes: bytes}
}

// segmentParts resolves the segment count for an n-byte scan: 0 means "do
// not segment" (mode off, input below the auto threshold, or only one worker
// available). threads, when positive, is CountParallel's explicit worker
// count and takes precedence over Options.SegmentWorkers.
func (rs *Ruleset) segmentParts(n, threads int) int {
	if rs.opts.Segment == SegmentOff {
		return 0
	}
	if rs.opts.Segment == SegmentAuto {
		min := rs.opts.SegmentMinBytes
		if min <= 0 {
			min = DefaultSegmentMinBytes
		}
		if n < min {
			return 0
		}
	}
	p := threads
	if p <= 0 {
		p = rs.opts.SegmentWorkers
	}
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 2 {
		return 0
	}
	return p
}

// maxFrontier resolves the speculative-frontier budget.
func (rs *Ruleset) maxFrontier() int {
	if rs.opts.SegmentMaxFrontier > 0 {
		return rs.opts.SegmentMaxFrontier
	}
	return DefaultSegmentMaxFrontier
}

// groupHeat is automaton i's total sampled state-visit count — the planner's
// work estimate for heat-balanced ordering. 0 when profiling is off.
func (rs *Ruleset) groupHeat(i int) int64 {
	p := rs.profileOf(i)
	if p == nil {
		return 0
	}
	var total int64
	for _, v := range p.Visits() {
		total += v
	}
	return total
}

// scanSegmented is the segment-parallel ruleset scan behind CountParallel
// and FindAll on large buffers. It mirrors CountParallelContext's shape —
// admission gate, deadline, prefilter gating, per-group strategy dispatch —
// but cuts the input into parts segments and runs each group's default- or
// AC-strategy scan segment-parallel with exact boundary stitching (package
// segment). Anchored and eager-DFA groups run serially: their scans are
// O(1) or a single cache-resident sweep, and segmenting them buys nothing.
// emit, when non-nil, receives every event; events arrive grouped by
// automaton, unsorted.
func (rs *Ruleset) scanSegmented(ctx context.Context, input []byte, parts int,
	emit func(automaton, fsa, end int)) (int64, error) {
	deadline := scanDeadline(rs.opts.ScanTimeout)
	if err := rs.sched.acquire(ctx, deadline); err != nil {
		return 0, rs.noteParallelErr(err)
	}
	defer rs.sched.release()
	check := deadlineCheckpoint(checkpointOf(ctx), deadline)
	if rs.profiles != nil {
		defer func(t0 time.Time) { rs.scanLat.Record(time.Since(t0).Nanoseconds()) }(time.Now())
	}
	if rs.lat != nil {
		defer func(t0 time.Time) {
			rs.lat.Record(telemetry.StageScan, time.Since(t0).Nanoseconds())
		}(time.Now())
	}
	gate, err := rs.prefilterSelect(input, check)
	if err != nil {
		return 0, rs.noteParallelErr(err)
	}
	bounds := segment.Boundaries(len(input), parts)
	var total int64
	for i := range rs.programs {
		if gate != nil && !gate[i] {
			continue
		}
		var groupEmit func(fsa, end int)
		if emit != nil {
			automaton := i
			groupEmit = func(fsa, end int) { emit(automaton, fsa, end) }
		}
		var n int64
		var err error
		st0 := rs.stageStart()
		switch rs.plan.strat[i] {
		case StrategyAC:
			n, err = rs.segmentACGroup(i, input, bounds, check, groupEmit)
			rs.stageEnd(telemetry.StageSegment, st0)
		case StrategyAnchored:
			n = rs.countAnchoredGroup(i, input, groupEmit)
			rs.stageEnd(telemetry.StageStrategyAnchored, st0)
		case StrategyDFA:
			n, err = rs.countDFAGroup(i, input, check, groupEmit)
			rs.stageEnd(telemetry.StageStrategyDFA, st0)
		default:
			if rs.segSerial[i].Load() {
				n, err = rs.serialDefaultGroup(i, input, check, groupEmit)
				rs.stageEnd(telemetry.StrategyStage(int(rs.plan.strat[i])), st0)
			} else {
				n, err = rs.segmentDefaultGroup(i, input, bounds, check, groupEmit)
				rs.stageEnd(telemetry.StageSegment, st0)
			}
		}
		if err != nil {
			return 0, rs.noteParallelErr(err)
		}
		total += n
	}
	return total, nil
}

// segmentDefaultGroup runs default-strategy group i segment-parallel: iMFAnt
// or lazy-DFA workers per segment plus the sequential boundary stitch. A
// scan whose boundary carry exceeds the frontier budget completes exactly
// but pins the group serial for subsequent segmented scans.
func (rs *Ruleset) segmentDefaultGroup(i int, input []byte, bounds []int,
	check func() error, emit func(fsa, end int)) (int64, error) {
	g := segment.Group{
		Automaton: i,
		Program:   rs.programs[i],
		Cfg: engine.Config{
			KeepOnMatch: rs.opts.KeepOnMatch,
			Checkpoint:  check,
			Accel:       rs.opts.accelOn(),
			Profile:     rs.profileOf(i),
			Faults:      rs.faults,
		},
		MaxFrontier: rs.maxFrontier(),
	}
	lazy := rs.plan.strat[i] == StrategyLazyDFA
	if lazy {
		g.Lazy = rs.lazy[i]
		g.LazyCfg = lazydfa.Config{
			KeepOnMatch: rs.opts.KeepOnMatch,
			MaxStates:   rs.opts.LazyDFAMaxStates,
			Checkpoint:  check,
			Accel:       rs.opts.accelOn(),
			Profile:     rs.profileOf(i),
			Faults:      rs.faults,
		}
	}
	res, err := segment.Scan(g, input, bounds, emit)
	n := res.ParallelBytes + res.StitchBytes
	rs.collector.AddScans(1)
	rs.collector.AddBytes(n)
	rs.collector.AddMatches(res.Matches)
	rs.collector.AddAccelScan(res.AccelBytes)
	rs.collector.AddStrategyBytes(int(rs.plan.strat[i]), n)
	var fell int64
	if res.FellBack {
		fell = 1
		rs.segSerial[i].Store(true)
	}
	rs.collector.AddSegmentScan(int64(res.Segments), fell, res.ParallelBytes, res.StitchBytes)
	if lazy {
		rs.collector.AddLazyScan(res.CacheHits, res.CacheMisses, res.Flushes, res.Thrashes)
	}
	if err != nil {
		return 0, err
	}
	rs.foldRuleHits(i, res.PerFSA)
	return res.Matches, nil
}

// serialDefaultGroup runs default-strategy group i serially inside a
// segmented scan — the sticky fallback for groups whose boundary frontier
// blew the budget. Its bytes carry no AddSegmentScan fold, so they land in
// the derived SerialBytes bucket of the Segment stats partition.
func (rs *Ruleset) serialDefaultGroup(i int, input []byte, check func() error,
	emit func(fsa, end int)) (int64, error) {
	if rs.plan.strat[i] == StrategyLazyDFA {
		r := lazydfa.NewRunner(rs.lazy[i])
		res := r.Run(input, lazydfa.Config{
			KeepOnMatch: rs.opts.KeepOnMatch,
			MaxStates:   rs.opts.LazyDFAMaxStates,
			OnMatch:     emit,
			Checkpoint:  check,
			Accel:       rs.opts.accelOn(),
			Profile:     rs.profileOf(i),
			Faults:      rs.faults,
		})
		rs.collector.AddScans(1)
		rs.collector.AddBytes(int64(res.Symbols))
		rs.collector.AddMatches(res.Matches)
		rs.collector.AddAccelScan(res.AccelBytes)
		rs.collector.AddStrategyBytes(int(StrategyLazyDFA), int64(res.Symbols))
		var thrash int64
		if res.Thrashed {
			thrash = 1
		}
		rs.collector.AddLazyScan(res.CacheHits, res.CacheMisses, int64(res.Flushes), thrash)
		if err := r.Err(); err != nil {
			return 0, err
		}
		rs.foldRuleHits(i, res.PerFSA)
		return res.Matches, nil
	}
	r := engine.NewRunner(rs.programs[i])
	res := r.Run(input, engine.Config{
		KeepOnMatch: rs.opts.KeepOnMatch,
		OnMatch:     emit,
		Checkpoint:  check,
		Accel:       rs.opts.accelOn(),
		Profile:     rs.profileOf(i),
		Faults:      rs.faults,
	})
	rs.collector.AddScans(1)
	rs.collector.AddBytes(int64(res.Symbols))
	rs.collector.AddMatches(res.Matches)
	rs.collector.AddAccelScan(res.AccelBytes)
	rs.collector.AddStrategyBytes(int(StrategyIMFAnt), int64(res.Symbols))
	if err := r.Err(); err != nil {
		return 0, err
	}
	rs.foldRuleHits(i, res.PerFSA)
	return res.Matches, nil
}

// segmentACGroup runs pure-AC group i segment-parallel: overlap windows
// instead of stitching (a match ending in a segment starts at most
// MaxPatternLen-1 bytes before it), exact by the AC suffix-closure.
func (rs *Ruleset) segmentACGroup(i int, input []byte, bounds []int,
	check func() error, emit func(fsa, end int)) (int64, error) {
	res, err := segment.ScanAC(rs.plan.ac[i].m, input, bounds, rs.opts.accelOn(), check, 0, emit)
	rs.collector.AddScans(1)
	rs.collector.AddBytes(res.ScannedBytes)
	rs.collector.AddMatches(res.Matches)
	rs.collector.AddStrategyBytes(int(StrategyAC), res.ScannedBytes)
	rs.collector.AddAccelScan(res.SkippedBytes)
	rs.collector.AddSegmentScan(int64(len(bounds)-1), 0, res.ScannedBytes, 0)
	if err != nil {
		return 0, err
	}
	if rs.prefEnabled {
		var distinct int64
		for _, n := range res.PerPattern {
			if n != 0 {
				distinct++
			}
		}
		rs.collector.AddPrefilterScan(1, distinct, 0, 0)
	}
	rs.foldRuleHits(i, res.PerPattern)
	return res.Matches, nil
}

// findAllSegmented is FindAll's segment-parallel path: collect every event
// with rule attribution, then impose the serial report order (end offset,
// then rule).
func (rs *Ruleset) findAllSegmented(ctx context.Context, input []byte, parts int) ([]Match, error) {
	var out []Match
	_, err := rs.scanSegmented(ctx, input, parts, func(automaton, fsa, end int) {
		r := rs.programs[automaton].Rules()[fsa]
		out = append(out, Match{Rule: r.RuleID, Pattern: r.Pattern, End: end})
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Rule < out[j].Rule
	})
	return out, nil
}
