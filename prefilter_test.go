package imfant

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// pfPatterns is a ruleset whose rules all carry a literal factor, split in
// two MFSA groups by MergeFactor, with factors disjoint enough that inputs
// can wake one group and not the other.
var pfPatterns = []string{
	"GET /admin[a-z]*",    // factor "GET /admin" (or a substring ≥ 3)
	"cmd\\.exe",           // factor "cmd.exe"
	"needle(x|y)+z",       // factor "needle"
	"(foo|bar)quux[0-9]?", // factor "quux"
}

// TestPrefilterResultsIdentical verifies the tentpole invariant: prefilter
// on, off, and auto produce byte-identical match sets on inputs that hit
// all, some, or none of the factors.
func TestPrefilterResultsIdentical(t *testing.T) {
	inputs := [][]byte{
		[]byte("GET /adminxx then cmd.exe and needlexyz plus fooquux7"),
		[]byte("only needlexz here"),
		[]byte("nothing relevant at all"),
		[]byte(""),
		bytes.Repeat([]byte("padding GET /admin padding "), 100),
	}
	for _, merge := range []int{0, 1, 2} {
		base := Options{MergeFactor: merge, Prefilter: PrefilterOff}
		off := MustCompile(pfPatterns, base)
		for _, mode := range []PrefilterMode{PrefilterAuto, PrefilterOn} {
			o := base
			o.Prefilter = mode
			rs := MustCompile(pfPatterns, o)
			if !rs.PrefilterActive() {
				t.Fatalf("merge=%d mode=%v: prefilter inactive on a fully filterable ruleset", merge, mode)
			}
			for _, in := range inputs {
				want := off.FindAll(in)
				got := rs.FindAll(in)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("merge=%d mode=%v input %q: prefiltered matches %v, unfiltered %v",
						merge, mode, in, got, want)
				}
				wantN, err := off.CountParallel(in, 2)
				if err != nil {
					t.Fatal(err)
				}
				gotN, err := rs.CountParallel(in, 2)
				if err != nil {
					t.Fatal(err)
				}
				if gotN != wantN {
					t.Fatalf("merge=%d mode=%v input %q: CountParallel %d, unfiltered %d",
						merge, mode, in, gotN, wantN)
				}
			}
		}
	}
}

// TestPrefilterSkipsAndStats verifies that a factor-free input skips every
// fully filterable group and that the skip is visible in Stats().Prefilter
// at ruleset and scanner scope, plus the prefilter_skip trace event.
func TestPrefilterSkipsAndStats(t *testing.T) {
	rs := MustCompile(pfPatterns, Options{MergeFactor: 2, TraceCapacity: 64})
	if !rs.PrefilterActive() {
		t.Fatal("prefilter inactive")
	}
	input := bytes.Repeat([]byte("irrelevant traffic "), 50)
	s := rs.NewScanner()
	if got := s.Count(input); got != 0 {
		t.Fatalf("Count = %d on factor-free input", got)
	}

	pf := rs.Stats().Prefilter
	if pf == nil {
		t.Fatal("Stats().Prefilter is nil on a gated ruleset")
	}
	if pf.Sweeps != 1 || pf.FactorHits != 0 {
		t.Fatalf("Sweeps = %d, FactorHits = %d; want 1, 0", pf.Sweeps, pf.FactorHits)
	}
	if pf.GroupsSkipped != int64(rs.NumAutomata()) {
		t.Fatalf("GroupsSkipped = %d, want all %d groups", pf.GroupsSkipped, rs.NumAutomata())
	}
	if want := int64(rs.NumAutomata()) * int64(len(input)); pf.BytesSaved != want {
		t.Fatalf("BytesSaved = %d, want %d", pf.BytesSaved, want)
	}
	if pf.FilterableRules != len(pfPatterns) || pf.Factors == 0 {
		t.Fatalf("FilterableRules = %d, Factors = %d", pf.FilterableRules, pf.Factors)
	}

	spf := s.Stats().Prefilter
	if spf == nil || spf.GroupsSkipped != pf.GroupsSkipped {
		t.Fatalf("scanner-scope prefilter stats %+v, ruleset-scope %+v", spf, pf)
	}

	skips := 0
	for _, ev := range rs.TraceEvents() {
		if ev.Kind == "prefilter_skip" {
			skips++
			if ev.Value != int64(len(input)) {
				t.Fatalf("prefilter_skip Value = %d, want input length %d", ev.Value, len(input))
			}
		}
	}
	if skips != rs.NumAutomata() {
		t.Fatalf("recorded %d prefilter_skip events, want %d", skips, rs.NumAutomata())
	}

	// The skipped executions must not inflate the scan counters.
	if st := rs.Stats(); st.BytesScanned != 0 || st.Scans != 0 {
		t.Fatalf("skipped groups still counted work: Scans = %d, BytesScanned = %d",
			st.Scans, st.BytesScanned)
	}
}

// TestPrefilterPartialWake verifies group granularity: an input containing
// only one group's factors runs that group and skips the other.
func TestPrefilterPartialWake(t *testing.T) {
	rs := MustCompile(pfPatterns, Options{MergeFactor: 2})
	input := []byte("a needlexz sails through") // factor of rule 2 only
	got := rs.FindAll(input)
	if len(got) != 1 || got[0].Rule != 2 {
		t.Fatalf("matches = %v, want exactly rule 2", got)
	}
	pf := rs.Stats().Prefilter
	if pf.GroupsSkipped == 0 || pf.GroupsSkipped >= int64(rs.NumAutomata()) {
		t.Fatalf("GroupsSkipped = %d of %d groups; want a strict subset skipped",
			pf.GroupsSkipped, rs.NumAutomata())
	}
	if pf.FactorHits == 0 {
		t.Fatal("FactorHits = 0 despite a factor occurring")
	}
}

// TestPrefilterAutoRequiresFilterableGroup verifies the auto rule: when no
// automaton is fully filterable the sweep cannot skip anything, so auto
// stays off while PrefilterOn (with grouping bias) still engages.
func TestPrefilterAutoRequiresFilterableGroup(t *testing.T) {
	mixed := []string{"needleone[a-z]*", "[ab]+", "needletwo[a-z]*", "[cd]+"}
	auto := MustCompile(mixed, Options{MergeFactor: 2})
	if auto.PrefilterActive() {
		t.Fatal("auto mode engaged although every group contains an unfilterable rule")
	}
	on := MustCompile(mixed, Options{MergeFactor: 2, Prefilter: PrefilterOn})
	if !on.PrefilterActive() {
		t.Fatal("PrefilterOn did not engage")
	}
	// Factor-aware grouping must have packed the two filterable rules into
	// one group, making it skippable on factor-free input.
	if _ = on.FindAll([]byte("zzzz")); on.Stats().Prefilter.GroupsSkipped == 0 {
		t.Fatal("PrefilterOn grouping produced no skippable group")
	}
	// And results still match the ungated compilation on a busy input.
	in := []byte("needleonex cd ab needletwoy")
	off := MustCompile(mixed, Options{MergeFactor: 2, Prefilter: PrefilterOff})
	if want, got := off.FindAll(in), on.FindAll(in); !reflect.DeepEqual(got, want) {
		t.Fatalf("PrefilterOn matches %v, PrefilterOff %v", got, want)
	}
}

// TestPrefilterCancellation verifies context cancellation is honored inside
// the prefilter sweep path as well as the engines.
func TestPrefilterCancellation(t *testing.T) {
	rs := MustCompile(pfPatterns, Options{MergeFactor: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	input := bytes.Repeat([]byte("GET /admin "), 4096)
	if _, err := rs.FindAllContext(ctx, input); !errors.Is(err, context.Canceled) {
		t.Fatalf("FindAllContext error = %v, want context.Canceled", err)
	}
	if _, err := rs.CountParallelContext(ctx, input, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("CountParallelContext error = %v, want context.Canceled", err)
	}
}

// TestPrefilterANMLRoundTrip verifies a ruleset reloaded from ANML rebuilds
// its gating plan from the serialized pattern sources.
func TestPrefilterANMLRoundTrip(t *testing.T) {
	rs := MustCompile(pfPatterns, Options{MergeFactor: 2})
	var buf bytes.Buffer
	if err := rs.WriteANML(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadANML(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.PrefilterActive() {
		t.Fatal("prefilter inactive after ANML round trip")
	}
	in := []byte("cmd.exe and fooquux")
	if want, got := rs.FindAll(in), loaded.FindAll(in); !reflect.DeepEqual(got, want) {
		t.Fatalf("reloaded matches %v, original %v", got, want)
	}
	if loaded.Count([]byte("factor-free")) != 0 || loaded.Stats().Prefilter.GroupsSkipped == 0 {
		t.Fatal("reloaded ruleset did not gate a factor-free input")
	}
}

// streamMatches feeds input to a StreamMatcher in the given chunk sizes and
// returns the collected matches plus the matcher for stats inspection.
func streamMatches(t *testing.T, rs *Ruleset, input []byte, chunk int) ([]Match, *StreamMatcher) {
	t.Helper()
	var got []Match
	sm := rs.NewStreamMatcher(func(m Match) { got = append(got, m) })
	for off := 0; off < len(input); off += chunk {
		end := off + chunk
		if end > len(input) {
			end = len(input)
		}
		if _, err := sm.Write(input[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	return got, sm
}

// TestPrefilterStreamSingleWrite verifies the streaming fast path: a
// one-Write stream of factor-free input skips every gated automaton
// entirely, and the stream's Stats record the skip.
func TestPrefilterStreamSingleWrite(t *testing.T) {
	rs := MustCompile(pfPatterns, Options{MergeFactor: 2})
	input := bytes.Repeat([]byte("benign payload "), 100)
	got, sm := streamMatches(t, rs, input, len(input))
	if len(got) != 0 {
		t.Fatalf("matches = %v on factor-free stream", got)
	}
	pf := sm.Stats().Prefilter
	if pf == nil || pf.GroupsSkipped != int64(rs.NumAutomata()) {
		t.Fatalf("stream prefilter stats = %+v, want all %d groups skipped", pf, rs.NumAutomata())
	}
	if want := int64(rs.NumAutomata()) * int64(len(input)); pf.BytesSaved != want {
		t.Fatalf("BytesSaved = %d, want %d", pf.BytesSaved, want)
	}
	if st := sm.Stats(); st.Scans != 0 || st.BytesScanned != 0 {
		t.Fatalf("skipped stream still counted work: %+v", st)
	}
}

// TestPrefilterStreamConformance verifies streamed results are
// byte-identical to FindAll and to an unfiltered stream across chunk sizes
// — including 1-byte chunks, factors split across chunk boundaries, and
// matches that start before the factor's first occurrence.
func TestPrefilterStreamConformance(t *testing.T) {
	inputs := [][]byte{
		[]byte("xxneedlexz then GET /adminq"),       // factors inside one input
		[]byte("no factors whatsoever in this one"), //
		[]byte("cmd.exe"),                           // exact single match
		bytes.Repeat([]byte("fooquux1 "), 40),       // many matches
	}
	off := MustCompile(pfPatterns, Options{MergeFactor: 2, Prefilter: PrefilterOff})
	on := MustCompile(pfPatterns, Options{MergeFactor: 2})
	if !on.PrefilterActive() {
		t.Fatal("prefilter inactive")
	}
	for _, in := range inputs {
		want := off.FindAll(in)
		for _, chunk := range []int{1, 3, 7, len(in) + 1} {
			got, _ := streamMatches(t, on, in, chunk)
			sortMatches(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("chunk=%d input %q: streamed %v, FindAll %v", chunk, in, got, want)
			}
		}
	}
}

// TestPrefilterStreamWakeReplay pins the mid-stream wake semantics: when a
// factor first appears in the second Write, gated automata replay the first
// chunk so a match spanning the boundary — or starting before the factor —
// is still found.
func TestPrefilterStreamWakeReplay(t *testing.T) {
	rs := MustCompile(pfPatterns, Options{MergeFactor: 2})
	// "needle" is split across the two writes; the match starts in chunk 1.
	chunks := [][]byte{[]byte("xxneed"), []byte("lexz and more")}
	var got []Match
	sm := rs.NewStreamMatcher(func(m Match) { got = append(got, m) })
	for _, c := range chunks {
		if _, err := sm.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	want := MustCompile(pfPatterns, Options{MergeFactor: 2, Prefilter: PrefilterOff}).
		FindAll(bytes.Join(chunks, nil))
	sortMatches(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("wake-replay streamed %v, want %v", got, want)
	}
	// Nothing may be reported skipped: every automaton ultimately ran.
	if pf := sm.Stats().Prefilter; pf == nil || pf.GroupsSkipped != 0 {
		t.Fatalf("prefilter stats = %+v, want zero skips after wake", pf)
	}
}

// TestQuickPrefilterConformance is the differential quickcheck of the
// prefilter across the full execution matrix: random inputs — over
// alphabets chosen so factors sometimes occur and sometimes cannot — run
// through FindAll, CountParallel, and randomly chunked StreamMatchers
// (including 1-byte writes), on both engines, with the prefilter on and
// off. Every combination must produce the identical match set.
func TestQuickPrefilterConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	engines := []Options{
		{},                  // iMFAnt, pop semantics
		{KeepOnMatch: true}, // auto → lazy-DFA
		{Engine: EngineIMFAnt, KeepOnMatch: true}, // keep semantics on iMFAnt
	}
	gatingLive := 0                             // configs where literal gating engaged; 0 would be vacuous
	alphabets := []string{"abcde", "cde", "de"} // from factor-rich to factor-free
	for _, base := range engines {
		for _, minLen := range []int{1, 2} {
			for _, merge := range []int{0, 2} {
				offOpts, onOpts := base, base
				offOpts.Prefilter, offOpts.MergeFactor = PrefilterOff, merge
				onOpts.Prefilter, onOpts.MergeFactor, onOpts.MinFactorLen = PrefilterOn, merge, minLen
				off := MustCompile(quickcheckPatterns, offOpts)
				on := MustCompile(quickcheckPatterns, onOpts)
				// A config may legitimately end up ungated: the planner can
				// route every factor-bearing rule to an AC or anchored
				// strategy, and a grouping with no fully-filterable group
				// compiles the sweep away as pure overhead. The differential
				// matrix runs either way; the cross-config tally below keeps
				// the whole test from going vacuous.
				if on.Stats().Prefilter != nil {
					gatingLive++
				}
				for trial := 0; trial < 25; trial++ {
					ab := alphabets[rng.Intn(len(alphabets))]
					in := make([]byte, rng.Intn(100))
					for i := range in {
						in[i] = ab[rng.Intn(len(ab))]
					}
					want := off.FindAll(in)
					if got := on.FindAll(in); !reflect.DeepEqual(got, want) {
						t.Fatalf("opts %+v minLen=%d input %q: FindAll %v, unfiltered %v",
							base, minLen, in, got, want)
					}
					wantN, _ := off.CountParallel(in, 2)
					if gotN, _ := on.CountParallel(in, 2); gotN != wantN {
						t.Fatalf("opts %+v minLen=%d input %q: CountParallel %d, unfiltered %d",
							base, minLen, in, gotN, wantN)
					}
					var got []Match
					sm := on.NewStreamMatcher(func(m Match) { got = append(got, m) })
					for written := 0; written < len(in); {
						n := 1
						if rng.Intn(3) > 0 {
							n = 1 + rng.Intn(len(in)-written)
						}
						if w, err := sm.Write(in[written : written+n]); err != nil || w != n {
							t.Fatalf("opts %+v: Write = (%d, %v)", base, w, err)
						}
						written += n
					}
					if err := sm.Close(); err != nil {
						t.Fatal(err)
					}
					sortMatches(got)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("opts %+v minLen=%d input %q: stream %v, unfiltered %v",
							base, minLen, in, got, want)
					}
				}
			}
		}
	}
	if gatingLive == 0 {
		t.Fatal("no configuration had literal gating live; the matrix was vacuous")
	}
}

// TestPrefilterMinFactorLen verifies the knob: a threshold longer than any
// extractable factor leaves every rule unfilterable, so auto mode stays off.
func TestPrefilterMinFactorLen(t *testing.T) {
	rs := MustCompile([]string{"abc[0-9]", "xyz[0-9]"}, Options{MinFactorLen: 10})
	if rs.PrefilterActive() {
		t.Fatal("prefilter engaged although MinFactorLen exceeds every literal run")
	}
	rs = MustCompile([]string{"abc[0-9]", "xyz[0-9]"}, Options{MinFactorLen: 3})
	if !rs.PrefilterActive() {
		t.Fatal("prefilter off although both rules have 3-byte factors")
	}
}
