package imfant

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/telemetry"
)

// RetryMode selects the lazy-DFA thrash-retry policy of the degradation
// ladder (see Options.ThrashRetry).
type RetryMode int

const (
	// RetryAuto (the zero value) enables the ladder: after a matching
	// context's lazy-DFA cache thrashes, its next scan retries once with
	// the cache cap doubled; a thrash at the grown cap pins the context to
	// the iMFAnt engine permanently. Results are identical on every rung.
	RetryAuto RetryMode = iota
	// RetryOn forces the ladder (currently identical to RetryAuto).
	RetryOn
	// RetryOff disables it: every thrash falls back for the rest of that
	// scan only, and the next scan starts over on a rebuilt cache at the
	// configured cap — the pre-ladder behaviour.
	RetryOff
)

// thrashRetryOn resolves the ThrashRetry knob: every mode but RetryOff
// enables the ladder.
func (o Options) thrashRetryOn() bool { return o.ThrashRetry != RetryOff }

// scanDeadline converts Options.ScanTimeout into an absolute cutoff,
// anchored at the moment the caller entered the scan path. Anchoring early
// matters: the same deadline must cover queue wait in scanGate.acquire AND
// the scan itself, so a saturated gate cannot stretch total latency past
// ScanTimeout (the budget used to arm only after a slot was acquired). The
// zero time means "no budget".
func scanDeadline(d time.Duration) time.Time {
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d)
}

// deadlineCheckpoint layers an absolute cutoff onto an engine checkpoint:
// the returned poll fails with ErrScanTimeout once deadline has passed,
// after first consulting the context-derived parent poll (whose error, e.g.
// a caller cancellation, takes precedence). A zero deadline returns parent
// unchanged, so timeout-free scans keep their nil-checkpoint fast path.
func deadlineCheckpoint(parent func() error, deadline time.Time) func() error {
	if deadline.IsZero() {
		return parent
	}
	return func() error {
		if parent != nil {
			if err := parent(); err != nil {
				return err
			}
		}
		if time.Now().After(deadline) {
			return ErrScanTimeout
		}
		return nil
	}
}

// timeoutCheckpoint is deadlineCheckpoint with the budget starting now —
// the form used by entry points with no queue in front of them.
func timeoutCheckpoint(parent func() error, d time.Duration) func() error {
	return deadlineCheckpoint(parent, scanDeadline(d))
}

// scanGate is the bounded work queue of overload shedding: a channel
// semaphore of MaxConcurrentScans slots plus a counter capping how many
// callers may block waiting for one. Admission beyond both bounds fails
// fast with ErrOverloaded — the shed path — instead of queueing without
// limit. A nil gate admits everything.
type scanGate struct {
	slots  chan struct{}
	queued atomic.Int64
	maxQ   int64
}

// newScanGate builds the gate from the Options knobs; concurrency <= 0
// (shedding off) returns nil.
func newScanGate(concurrency, queue int) *scanGate {
	if concurrency <= 0 {
		return nil
	}
	if queue < 0 {
		queue = 0
	}
	return &scanGate{slots: make(chan struct{}, concurrency), maxQ: int64(queue)}
}

// acquire claims a slot, waiting in the bounded queue if none is free.
// Waiting observes ctx and the absolute scan deadline — the SAME deadline
// the scan itself runs under, so queue wait is charged against the
// ScanTimeout budget rather than extending it. Returns ErrOverloaded when
// the queue is full, without blocking; ErrScanTimeout when the deadline
// passes before a slot frees up.
func (g *scanGate) acquire(ctx context.Context, deadline time.Time) error {
	if g == nil {
		return nil
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if g.queued.Add(1) > g.maxQ {
		g.queued.Add(-1)
		return ErrOverloaded
	}
	defer g.queued.Add(-1)
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	var timeoutC <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-done:
		return ctx.Err()
	case <-timeoutC:
		return ErrScanTimeout
	}
}

// release returns a slot. Safe on a nil gate.
func (g *scanGate) release() {
	if g != nil {
		<-g.slots
	}
}

// noteDegraded folds a scan failure into the Degraded telemetry section,
// walking joined errors (errors.Join from RunParallel) so every contained
// worker panic and timeout is accounted individually — the acceptance
// contract that Stats().Degraded misses no event.
func noteDegraded(c *telemetry.Collector, err error) {
	if err == nil {
		return
	}
	if j, ok := err.(interface{ Unwrap() []error }); ok {
		for _, sub := range j.Unwrap() {
			noteDegraded(c, sub)
		}
		return
	}
	var wp *engine.WorkerPanicError
	switch {
	case errors.As(err, &wp):
		c.AddWorkerPanics(1)
	case errors.Is(err, ErrScanTimeout):
		c.AddTimeouts(1)
	case errors.Is(err, ErrOverloaded):
		c.AddShed(1)
	}
}
