package imfant

// Repository-level benchmarks: one per table and figure of the paper's
// evaluation (§VI). Each benchmark drives the same code path as
// cmd/mfsabench but at a reduced scale so `go test -bench=.` completes in
// minutes on a laptop; run `mfsabench -all -paper` for the full-scale
// regeneration. Per-experiment details live in DESIGN.md and EXPERIMENTS.md.

import (
	"io"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/lazydfa"
	"repro/internal/pipeline"
	"repro/internal/similarity"
)

// benchOpts returns a scaled-down experiment configuration over a single
// dataset, to keep a benchmark iteration well-bounded.
func benchOpts(abbr string) experiments.Opts {
	o := experiments.Default()
	o.Datasets = []string{abbr}
	o.StreamSize = 32 << 10
	o.Reps = 1
	o.Ms = []int{1, 10, 0}
	o.Threads = []int{1, 2, 4}
	o.SimilaritySample = 60
	return o
}

func newRunner(b *testing.B, abbr string) *experiments.Runner {
	b.Helper()
	r, err := experiments.New(benchOpts(abbr))
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkFig1Indel measures the Fig. 1 computation: all-pairs normalized
// INDEL similarity of a ruleset (bit-parallel LCS underneath).
func BenchmarkFig1Indel(b *testing.B) {
	s, err := dataset.ByAbbr("BRO")
	if err != nil {
		b.Fatal(err)
	}
	pats := s.Patterns()[:60]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		similarity.DatasetSimilarity(pats)
	}
}

// BenchmarkTable1Characteristics measures the Table I pipeline: compiling a
// whole dataset to optimized standalone FSAs and aggregating its
// characteristics.
func BenchmarkTable1Characteristics(b *testing.B) {
	s, err := dataset.ByAbbr("PEN")
	if err != nil {
		b.Fatal(err)
	}
	pats := s.Patterns()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := pipeline.Compile(pats, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		states := 0
		for _, a := range out.FSAs {
			states += a.NumStates
		}
		if states == 0 {
			b.Fatal("no states")
		}
	}
}

// BenchmarkFig7Compression measures the Fig. 7 path: the full merge sweep
// plus compression accounting (dominated by Algorithm 1).
func BenchmarkFig7Compression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b, "BRO")
		if _, err := r.Fig7(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8CompilationStages measures the Fig. 8 path: repeated
// full-pipeline compilations with per-stage timing.
func BenchmarkFig8CompilationStages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b, "PEN")
		if _, err := r.Fig8(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Activity measures the Table II path: the fully merged MFSA
// traversal with activation-set statistics enabled.
func BenchmarkTable2Activity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b, "BRO")
		if _, err := r.Table2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9SingleThread measures the Fig. 9 path: the single-thread
// execution sweep across merging factors with throughput accounting.
func BenchmarkFig9SingleThread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b, "BRO")
		if _, err := r.Fig9(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10MultiThread measures the Fig. 10 path: the M × T sweep with
// the work-pool executor.
func BenchmarkFig10MultiThread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b, "BRO")
		if _, err := r.Fig10(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIMFAntThroughput isolates the engine hot loop — the per-byte
// cost of iMFAnt on a fully merged dataset MFSA — reporting bytes/s.
func BenchmarkIMFAntThroughput(b *testing.B) {
	s, err := dataset.ByAbbr("BRO")
	if err != nil {
		b.Fatal(err)
	}
	out, err := pipeline.Compile(s.Patterns(), 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	p := engine.NewProgram(out.MFSAs[0])
	in := s.Stream(64<<10, 0)
	runner := engine.NewRunner(p)
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.Run(in, engine.Config{})
	}
}

// BenchmarkIMFAntKeepThroughput is the keep-semantics (Eq. 6) variant of the
// hot loop — the apples-to-apples baseline for the lazy-DFA mode, which
// caches keep-mode transitions.
func BenchmarkIMFAntKeepThroughput(b *testing.B) {
	s, err := dataset.ByAbbr("BRO")
	if err != nil {
		b.Fatal(err)
	}
	out, err := pipeline.Compile(s.Patterns(), 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	p := engine.NewProgram(out.MFSAs[0])
	in := s.Stream(64<<10, 0)
	runner := engine.NewRunner(p)
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.Run(in, engine.Config{KeepOnMatch: true})
	}
}

// BenchmarkLazyDFAThroughput measures the lazy-DFA mode on the same merged
// MFSA and input as BenchmarkIMFAntKeepThroughput. The cache is warmed with
// one untimed scan; steady-state iterations then run almost entirely out of
// the byte-class-compressed transition table.
func BenchmarkLazyDFAThroughput(b *testing.B) {
	s, err := dataset.ByAbbr("BRO")
	if err != nil {
		b.Fatal(err)
	}
	out, err := pipeline.Compile(s.Patterns(), 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	p := engine.NewProgram(out.MFSAs[0])
	m := lazydfa.New(p)
	in := s.Stream(64<<10, 0)
	runner := lazydfa.NewRunner(m)
	cfg := lazydfa.Config{KeepOnMatch: true}
	res := runner.Run(in, cfg) // warm the cache
	if res.FellBack {
		b.Fatal("warm-up fell back to iMFAnt; raise MaxStates")
	}
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.Run(in, cfg)
	}
}

// BenchmarkINFAntBaseline isolates the baseline: the same ruleset executed
// as separate per-RE automata on one thread (the M=1 configuration the
// paper compares against).
func BenchmarkINFAntBaseline(b *testing.B) {
	s, err := dataset.ByAbbr("BRO")
	if err != nil {
		b.Fatal(err)
	}
	out, err := pipeline.Compile(s.Patterns(), 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	programs := make([]*engine.Program, len(out.MFSAs))
	for i, z := range out.MFSAs {
		programs[i] = engine.NewProgram(z)
	}
	in := s.Stream(64<<10, 0)
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.RunParallel(programs, in, 1, engine.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPICompile measures end-user compile latency through the
// public facade.
func BenchmarkPublicAPICompile(b *testing.B) {
	s, err := dataset.ByAbbr("PEN")
	if err != nil {
		b.Fatal(err)
	}
	pats := s.Patterns()[:60]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(pats, Options{MergeFactor: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMinSubPath measures the merge-heuristic ablation: the
// compression/run-time trade-off of the Merging Structure length threshold.
func BenchmarkAblationMinSubPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b, "PEN")
		if _, err := r.Ablation(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineSpectrum measures the NFA/MFSA/DFA/D2FA representation
// comparison (the §II spectrum study).
func BenchmarkBaselineSpectrum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b, "BRO")
		if _, err := r.Baseline(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStride2 measures the 2-stride experiment path (multi-striding,
// §VII related work).
func BenchmarkStride2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b, "BRO")
		if _, err := r.Stride(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLazyExperiment measures the lazy-DFA experiment path (hybrid
// execution mode, warm-cache comparison).
func BenchmarkLazyExperiment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b, "BRO")
		if _, err := r.Lazy(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCCRefine measures the partial CC-merging study (the §VI-A
// proposed improvement).
func BenchmarkCCRefine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b, "PRO")
		if _, err := r.CCRefine(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClustering measures the similarity-clustered grouping study
// (§VIII future work).
func BenchmarkClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b, "BRO")
		if _, err := r.Clustering(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompose measures the literal-prefilter decomposition study
// (Hyperscan-style related work [6]).
func BenchmarkDecompose(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b, "BRO")
		if _, err := r.Decompose(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
