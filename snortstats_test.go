package imfant

import (
	"math/rand"
	"os"
	"testing"

	"repro/internal/snort"
)

// TestSnortRulesetCacheTelemetry measures the lazy-DFA cache behaviour on
// the snort-derived web-attacks ruleset through the public telemetry API —
// the numbers recorded in EXPERIMENTS.md — and pins the qualitative
// properties: the warm cache fits the default cap, never flushes or falls
// back on HTTP-like traffic, and serves essentially every byte.
func TestSnortRulesetCacheTelemetry(t *testing.T) {
	f, err := os.Open("internal/snort/testdata/web-attacks.rules")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rules, _, err := snort.ParseRules(f)
	if err != nil {
		t.Fatal(err)
	}
	patterns := make([]string, 0, len(rules))
	for _, ru := range rules {
		patterns = append(patterns, ru.Pattern)
	}
	rs, ruleErrs, err := CompileLax(patterns, Options{Engine: EngineLazyDFA, KeepOnMatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumRules()-len(ruleErrs) < 10 {
		t.Fatalf("too few compilable snort rules: %d", rs.NumRules()-len(ruleErrs))
	}

	// HTTP-ish traffic salted with attack fragments, as in the
	// conformance suite.
	rng := rand.New(rand.NewSource(42))
	frags := []string{
		"GET /index.html HTTP/1.0\r\n", "Host: example.com\r\n",
		"User-Agent: Mozilla/5.0\r\n", "Accept: */*\r\n",
		"/etc/passwd", "cmd.exe", "<script>", "../..", "id=1 or 1=1",
	}
	var traffic []byte
	for len(traffic) < 256<<10 {
		if rng.Intn(4) == 0 {
			traffic = append(traffic, frags[4+rng.Intn(len(frags)-4)]...)
		} else {
			traffic = append(traffic, frags[rng.Intn(4)]...)
		}
	}

	sc := rs.NewScanner()
	sc.Count(traffic) // cold scan builds the cache
	cold := sc.Stats()
	for i := 0; i < 4; i++ {
		sc.Count(traffic)
	}
	st := sc.Stats()
	l := st.Lazy
	if l == nil {
		t.Fatal("no lazy section")
	}

	warmHits := l.Hits - cold.Lazy.Hits
	warmMisses := l.Misses - cold.Lazy.Misses
	warmRate := float64(warmHits) / float64(warmHits+warmMisses)
	t.Logf("snort web-attacks: %d rules, %d automaton(s), %d byte classes",
		rs.NumRules()-len(ruleErrs), rs.NumAutomata(), l.ByteClasses)
	t.Logf("cold scan: %.4f%% hit rate (%d misses over %d bytes), %d cached states (cap %d)",
		100*cold.Lazy.HitRate(), cold.Lazy.Misses, cold.BytesScanned, cold.Lazy.CachedStates, l.MaxStates)
	t.Logf("warm scans: %.4f%% hit rate, %d flushes, %d fallbacks", 100*warmRate, l.Flushes, l.Fallbacks)

	if l.Flushes != 0 || l.Fallbacks != 0 {
		t.Fatalf("default cache flushed (%d) or fell back (%d) on HTTP traffic", l.Flushes, l.Fallbacks)
	}
	if cold.Lazy.HitRate() < 0.95 {
		t.Fatalf("cold hit rate %.4f, want > 0.95", cold.Lazy.HitRate())
	}
	if warmRate < 0.9999 {
		t.Fatalf("warm hit rate %.6f, want ~1", warmRate)
	}
	if int(l.CachedStates) > l.MaxStates {
		t.Fatalf("cache overran cap: %d > %d", l.CachedStates, l.MaxStates)
	}
}
