package imfant

import (
	"context"
	"errors"
	"time"

	"repro/internal/engine"
	"repro/internal/telemetry"
)

// LatencyStats is the per-stage latency section of a stats snapshot
// (Options.Latency): one summarized wall-clock distribution, in
// nanoseconds, per pipeline stage that has recorded at least one
// observation. The stages, in pipeline order:
//
//   - "scan": one whole block scan or parallel count, end to end.
//   - "prefilter": one literal-factor Aho–Corasick sweep.
//   - "strategy_imfant", "strategy_lazydfa", "strategy_ac",
//     "strategy_anchored", "strategy_dfa": one automaton's dispatch under
//     that execution strategy — where a scan's time went, by strategy.
//   - "parallel": the multi-threaded engine fan-out of a CountParallel
//     call (wall clock over all default-strategy automata together).
//   - "stream_write": one StreamMatcher.Write chunk.
//   - "stream_flush": the end-of-stream flush inside Close.
//
// Percentiles come from log2 buckets and are within 2× of exact.
type LatencyStats struct {
	// Stages lists the active stages in pipeline order.
	Stages []StageLatency `json:"stages"`
}

// StageLatency is one stage's latency summary, in nanoseconds.
type StageLatency struct {
	// Stage is the stable stage name (see LatencyStats).
	Stage string `json:"stage"`
	HistStats
}

// stageStart opens a stage timer: the monotonic origin when latency
// attribution is on, the zero time — which stageEnd treats as "off" —
// otherwise. The nil check here is the whole cost of the disabled path.
func (rs *Ruleset) stageStart() time.Time {
	if rs.lat == nil {
		return time.Time{}
	}
	return time.Now()
}

// stageEnd closes a stage timer opened by stageStart, folding the elapsed
// wall clock into stage s's histogram; a zero origin records nothing.
func (rs *Ruleset) stageEnd(s telemetry.Stage, t0 time.Time) {
	if t0.IsZero() {
		return
	}
	rs.lat.Record(s, time.Since(t0).Nanoseconds())
}

// Degradation-cause bits of a scan_error trace event's Value: the cause
// chain of a failed or degraded scan, OR-combined because a joined error
// from a parallel scan can carry several at once.
const (
	// causeTimeout marks ErrScanTimeout (Options.ScanTimeout expiry).
	causeTimeout int64 = 1 << iota
	// causeShed marks ErrOverloaded (bounded work queue rejection).
	causeShed
	// causeCanceled marks a caller context cancellation or deadline.
	causeCanceled
	// causeWorkerPanic marks a contained engine.WorkerPanicError.
	causeWorkerPanic
)

// causeMask folds err's degradation-cause chain into the scan_error bit
// encoding, walking joined errors like noteDegraded does. ErrScanTimeout
// is tested before the generic context deadline because it wraps
// context.DeadlineExceeded — the specific rung wins over the generic one.
func causeMask(err error) int64 {
	if err == nil {
		return 0
	}
	if j, ok := err.(interface{ Unwrap() []error }); ok {
		var m int64
		for _, sub := range j.Unwrap() {
			m |= causeMask(sub)
		}
		return m
	}
	var wp *engine.WorkerPanicError
	switch {
	case errors.As(err, &wp):
		return causeWorkerPanic
	case errors.Is(err, ErrScanTimeout):
		return causeTimeout
	case errors.Is(err, ErrOverloaded):
		return causeShed
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return causeCanceled
	}
	return 0
}

// causeNames decodes a scan_error cause mask into its rung names, in bit
// order; a zero mask decodes to "unknown".
func causeNames(mask int64) []string {
	if mask == 0 {
		return []string{"unknown"}
	}
	var out []string
	for _, c := range []struct {
		bit  int64
		name string
	}{
		{causeTimeout, "timeout"},
		{causeShed, "shed"},
		{causeCanceled, "canceled"},
		{causeWorkerPanic, "worker_panic"},
	} {
		if mask&c.bit != 0 {
			out = append(out, c.name)
		}
	}
	if len(out) == 0 {
		return []string{"unknown"}
	}
	return out
}

// traceScanError records a scan_error span carrying err's degradation
// cause chain in Value; no-op when tracing is off.
func (rs *Ruleset) traceScanError(err error) {
	if rs.trace == nil || err == nil {
		return
	}
	rs.trace.Record(telemetry.Event{Kind: telemetry.EventScanError,
		Automaton: -1, Rule: -1, Offset: -1, Value: causeMask(err)})
}
