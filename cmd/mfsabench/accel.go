package main

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	imfant "repro"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

// accelRules is a snort-shaped web-attack ruleset sharing the '/' start
// byte — the hub shape of the hot-state study, where a single prefix state
// absorbed 11% of sampled visits. Every rule's merged group therefore has a
// one-byte live set at the restart state, the best case for state
// acceleration and the representative one for URI-anchored IDS rules.
var accelRules = []string{
	"/cgi-bin/phf", "/etc/passwd", "/bin/sh", "/usr/bin/id",
	"/admin/login", "/cmd\\.exe", "/scripts/.*\\.asp", "/wp-admin/",
	"/robots\\.txt", "/config\\.php", "/\\.git/HEAD", "/phpmyadmin",
	"/xmlrpc\\.php", "/cgi-bin/test-cgi", "/shell\\.php", "/dvwa/",
	"/\\.env", "/server-status", "/setup\\.cgi", "/horde/",
}

// accelRow is one (workload, engine) measurement of the Options.Accel study.
type accelRow struct {
	// Workload is "nomatch" (loop-dominated, the restart state holds for
	// the whole stream) or "dense" (URI-heavy traffic with planted rule
	// bodies, the match-dense regression guard).
	Workload string
	// Engine is "lazydfa" or "imfant".
	Engine string
	// OffTime and OnTime are single-thread whole-ruleset scan latencies
	// with Options.Accel off and on; Speedup is their ratio.
	OffTime, OnTime time.Duration
	Speedup         float64
	// SkippedFrac is accelerated-jump bytes over scanned bytes, in [0, 1].
	SkippedFrac float64
	// AccelStates is the accelerable cached-state gauge after the accel-on
	// runs (lazy engine only).
	AccelStates int64
	// Matches is the per-scan match count (identical on and off — checked).
	Matches int64
}

// accelStream builds the study's two traffic profiles. The no-match stream
// contains no '/' at all, so the automata never leave their restart states;
// the dense stream interleaves URI fragments and planted rule bodies, so
// acceleration engages only between matches.
func accelStream(size int, dense bool) []byte {
	rng := rand.New(rand.NewSource(0xACCE1))
	out := make([]byte, 0, size+64)
	if !dense {
		const filler = "GET index.html HTTP 1.1 Host: example.com Accept: text,html "
		for len(out) < size {
			out = append(out, filler...)
		}
		return out[:size]
	}
	frags := []string{
		"GET /etc/passwd HTTP/1.0\r\n", "POST /admin/login\r\n",
		"/cgi-bin/phf?Qalias=x", "/wp-admin/setup", "/robots.txt ",
		"Host: a/b/c.d\r\n", "/xmlrpc.php ", "/usr/bin/id;",
	}
	for len(out) < size {
		out = append(out, frags[rng.Intn(len(frags))]...)
	}
	return out[:size]
}

// runAccel measures Options.Accel on vs off on the production scan path:
// same ruleset compiled twice, scanned over a loop-dominated no-match stream
// (the headline case — the lazy engine should ride the skip kernel for the
// whole stream) and over match-dense traffic (the regression guard — jumps
// are short, the kernel must not cost more than it saves). The prefilter is
// off in every configuration so the study isolates acceleration.
func runAccel(w io.Writer, o experiments.Opts) ([]accelRow, error) {
	const mergeFactor = 10
	var rows []accelRow
	tb := metrics.NewTable("Accel — Options.Accel on vs off (M = 10, prefilter off, production scan path)",
		"Workload", "Engine", "Skipped", "AccelStates", "OffTime", "OnTime", "Speedup")
	for _, workload := range []string{"nomatch", "dense"} {
		in := accelStream(o.StreamSize, workload == "dense")
		for _, eng := range []struct {
			name string
			mode imfant.EngineMode
		}{
			{"lazydfa", imfant.EngineLazyDFA},
			{"imfant", imfant.EngineIMFAnt},
		} {
			base := imfant.Options{
				MergeFactor: mergeFactor, KeepOnMatch: true,
				Engine: eng.mode, Prefilter: imfant.PrefilterOff,
			}
			offOpts, onOpts := base, base
			offOpts.Accel = imfant.AccelOff
			onOpts.Accel = imfant.AccelOn
			off, err := imfant.Compile(accelRules, offOpts)
			if err != nil {
				return nil, err
			}
			on, err := imfant.Compile(accelRules, onOpts)
			if err != nil {
				return nil, err
			}

			offScan := off.NewScanner()
			var offMatches int64
			start := time.Now()
			for rep := 0; rep < o.Reps; rep++ {
				offMatches = offScan.Count(in)
			}
			offTime := time.Since(start) / time.Duration(o.Reps)

			onScan := on.NewScanner()
			var onMatches int64
			start = time.Now()
			for rep := 0; rep < o.Reps; rep++ {
				onMatches = onScan.Count(in)
			}
			onTime := time.Since(start) / time.Duration(o.Reps)

			if onMatches != offMatches {
				return nil, fmt.Errorf("accel %s/%s: %d matches on, %d off",
					workload, eng.name, onMatches, offMatches)
			}
			row := accelRow{
				Workload: workload, Engine: eng.name,
				OffTime: offTime, OnTime: onTime,
				Speedup: float64(offTime) / float64(onTime),
				Matches: onMatches,
			}
			if st := onScan.Stats(); st.Accel != nil && st.BytesScanned > 0 {
				row.SkippedFrac = float64(st.Accel.BytesSkipped) / float64(st.BytesScanned)
				row.AccelStates = st.Accel.AccelStates
			}
			rows = append(rows, row)
			tb.AddRow(row.Workload, row.Engine,
				fmt.Sprintf("%.1f%%", 100*row.SkippedFrac), row.AccelStates,
				row.OffTime, row.OnTime, row.Speedup)
		}
	}
	if w != nil {
		tb.Render(w)
	}
	return rows, nil
}
