// Command mfsabench regenerates the tables and figures of the paper's
// evaluation (§VI) over the synthetic benchmark datasets.
//
// Usage:
//
//	mfsabench -all                      # every table and figure, scaled-down
//	mfsabench -fig 7 -fig 9             # selected figures
//	mfsabench -table 2 -datasets BRO,DS9
//	mfsabench -all -paper               # the paper's full-scale configuration
//	mfsabench -fig 10 -size 262144 -reps 3 -threads 1,2,4,8
//
// Figures/tables: 1 (INDEL similarity), 7 (compression), 8 (compilation
// stages), 9 (single-thread execution), 10 (multi-thread scaling); tables:
// 1 (dataset characteristics), 2 (active FSAs). Flags -size, -reps, -ms,
// -threads and -datasets scale any run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

type intList []int

func (l *intList) String() string { return fmt.Sprint([]int(*l)) }
func (l *intList) Set(s string) error {
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "all" {
			*l = append(*l, 0)
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return fmt.Errorf("bad integer %q", part)
		}
		*l = append(*l, v)
	}
	return nil
}

type strList []string

func (l *strList) String() string { return strings.Join(*l, ",") }
func (l *strList) Set(s string) error {
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			*l = append(*l, strings.ToUpper(part))
		}
	}
	return nil
}

func main() {
	var (
		figs, tables intList
		ms, threads  intList
		datasets     strList
		all          = flag.Bool("all", false, "run every table and figure")
		ablation     = flag.Bool("ablation", false, "run the merge-heuristic ablation study")
		baseline     = flag.Bool("baseline", false, "run the NFA/MFSA/DFA/D2FA representation comparison")
		ccrefine     = flag.Bool("ccrefine", false, "run the partial CC-merging (alphabet refinement) study")
		stride       = flag.Bool("stride", false, "run the 2-stride iMFAnt comparison")
		lazy         = flag.Bool("lazy", false, "run the lazy-DFA execution-mode comparison")
		clustering   = flag.Bool("clustering", false, "run the similarity-clustered grouping study")
		decomp       = flag.Bool("decompose", false, "run the literal-prefilter decomposition comparison")
		prefilter    = flag.Bool("prefilter", false, "run the production Options.Prefilter study and write BENCH_prefilter.json")
		accel        = flag.Bool("accel", false, "run the production Options.Accel study and write BENCH_accel.json")
		strategy     = flag.Bool("strategy", false, "run the strategy-planner study and write BENCH_strategy.json")
		segmentStudy = flag.Bool("segment", false, "run the segment-parallel scaling study and write BENCH_segment.json")
		obsStudy     = flag.Bool("obs", false, "run the observability-overhead study and write BENCH_obs.json")
		obsBound     = flag.Float64("obs-bound", 0, "with -obs: fail when latency-attribution overhead exceeds this ratio (0 = report only)")
		paper        = flag.Bool("paper", false, "use the paper's full-scale configuration (1 MB, 15 reps)")
		size         = flag.Int("size", 0, "stream size in bytes (default 256 KiB, or 1 MiB with -paper)")
		reps         = flag.Int("reps", 0, "measurement repetitions")
		plots        = flag.String("plots", "", "also render the figures as SVG charts into this directory")
		jsonName     = flag.String("json", "", "run the engine comparison and write BENCH_<name>.json for regression tracking")
	)
	flag.Var(&figs, "fig", "figure to regenerate (1, 7, 8, 9, 10); repeatable or comma-separated")
	flag.Var(&tables, "table", "table to regenerate (1, 2); repeatable or comma-separated")
	flag.Var(&ms, "ms", "merging factors, e.g. 1,2,5,10,all")
	flag.Var(&threads, "threads", "thread counts for figure 10, e.g. 1,2,4,8")
	flag.Var(&datasets, "datasets", "dataset abbreviations, e.g. BRO,DS9")
	flag.Parse()

	o := experiments.Default()
	if *paper {
		o = experiments.Paper()
	}
	if *size > 0 {
		o.StreamSize = *size
	}
	if *reps > 0 {
		o.Reps = *reps
	}
	if len(ms) > 0 {
		o.Ms = ms
	}
	if len(threads) > 0 {
		o.Threads = threads
	}
	o.Datasets = datasets

	r, err := experiments.New(o)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout

	if *jsonName != "" {
		path, err := writeBenchJSON(r, o, *jsonName)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "benchmark results written to %s\n", path)
		if len(figs) == 0 && len(tables) == 0 && !*all && !*lazy {
			return
		}
	}

	extrasOnly := (*ablation || *baseline || *ccrefine || *stride || *lazy || *clustering || *decomp || *prefilter || *accel || *strategy || *segmentStudy || *obsStudy) && len(figs) == 0 && len(tables) == 0 && !*all
	if *ablation {
		if _, err := r.Ablation(w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if *baseline {
		if _, err := r.Baseline(w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if *ccrefine {
		if _, err := r.CCRefine(w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if *stride {
		if _, err := r.Stride(w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if *lazy {
		if _, err := r.Lazy(w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if *clustering {
		if _, err := r.Clustering(w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if *decomp {
		if _, err := r.Decompose(w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if *prefilter {
		rows, err := runPrefilter(w, o)
		if err != nil {
			fatal(err)
		}
		path, err := writePrefilterJSON(rows, o)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "prefilter results written to %s\n\n", path)
	}
	if *accel {
		rows, err := runAccel(w, o)
		if err != nil {
			fatal(err)
		}
		path, err := writeAccelJSON(rows, o)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "accel results written to %s\n\n", path)
	}
	if *strategy {
		rows, err := runStrategy(w, o)
		if err != nil {
			fatal(err)
		}
		path, err := writeStrategyJSON(rows, o)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "strategy results written to %s\n\n", path)
	}
	if *segmentStudy {
		rows, err := runSegment(w, o)
		if err != nil {
			fatal(err)
		}
		path, err := writeSegmentJSON(rows, o)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "segment results written to %s\n\n", path)
	}
	if *obsStudy {
		rows, err := runObs(w, o, *obsBound)
		if rows != nil {
			// Write the artifact even when the gate fails, so CI archives
			// the numbers that tripped it.
			if path, werr := writeObsJSON(rows, o); werr == nil {
				fmt.Fprintf(w, "obs results written to %s\n\n", path)
			} else if err == nil {
				err = werr
			}
		}
		if err != nil {
			fatal(err)
		}
	}
	if extrasOnly {
		return
	}
	if *plots != "" {
		if err := r.Plots(*plots); err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "SVG charts written to %s\n", *plots)
		if len(figs) == 0 && len(tables) == 0 && !*all {
			return
		}
	}
	if *all || (len(figs) == 0 && len(tables) == 0) {
		if err := r.All(w); err != nil {
			fatal(err)
		}
		return
	}
	run := func(name string, f func() error) {
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Fprintln(w)
	}
	for _, t := range tables {
		switch t {
		case 1:
			run("table 1", func() error { _, err := r.Table1(w); return err })
		case 2:
			run("table 2", func() error { _, err := r.Table2(w); return err })
		default:
			fatal(fmt.Errorf("unknown table %d (have 1, 2)", t))
		}
	}
	for _, f := range figs {
		switch f {
		case 1:
			run("fig 1", func() error { _, err := r.Fig1(w); return err })
		case 7:
			run("fig 7", func() error { _, err := r.Fig7(w); return err })
		case 8:
			run("fig 8", func() error { _, err := r.Fig8(w); return err })
		case 9:
			run("fig 9", func() error { _, err := r.Fig9(w); return err })
		case 10:
			run("fig 10", func() error { _, err := r.Fig10(w); return err })
		default:
			fatal(fmt.Errorf("unknown figure %d (have 1, 7, 8, 9, 10)", f))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
