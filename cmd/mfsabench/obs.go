package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	imfant "repro"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

// obsRow is one instrumentation configuration of the observability
// overhead study: the same ruleset and traffic scanned with telemetry
// features off and on.
type obsRow struct {
	// Config is "off", "latency" or "latency+trace".
	Config string
	// Matches is the per-scan match count — identical across configs
	// (checked): instrumentation must never change results.
	Matches int64
	// Time is the single-thread whole-ruleset scan latency; Overhead is
	// Time over the off-config's time (1.0 = free).
	Time     time.Duration
	Overhead float64
}

// obsConfigs enumerates the study's instrumentation levels.
func obsConfigs() []struct {
	name string
	opts imfant.Options
} {
	return []struct {
		name string
		opts imfant.Options
	}{
		{"off", imfant.Options{MergeFactor: 4}},
		{"latency", imfant.Options{MergeFactor: 4, Latency: true}},
		{"latency+trace", imfant.Options{MergeFactor: 4, Latency: true, TraceCapacity: 4096}},
	}
}

// runObs measures the cost of the observability plane on the production
// scan path: the strategy study's mixed workload (every strategy in play,
// so every stage timer fires) scanned with instrumentation off, with
// per-stage latency attribution on, and with latency plus the trace ring.
// bound > 0 turns the study into a gate: it fails when the latency
// config's overhead ratio exceeds bound — the CI pin for the "metrics off
// must stay one nil check per chunk" invariant.
func runObs(w io.Writer, o experiments.Opts, bound float64) ([]obsRow, error) {
	mixed := make([]string, 0, 13)
	mixed = append(mixed, strategyLiteralRules[:4]...)
	mixed = append(mixed, strategyAnchoredRules[:4]...)
	mixed = append(mixed, strategySmallRules[:4]...)
	mixed = append(mixed, strategyLargeRule)
	in := strategyTraffic(o.StreamSize, 0x0B5, []string{"/etc/passwd", "GET /cgi-bin/test-cgi", "%2e%2e/"})

	var rows []obsRow
	tb := metrics.NewTable("Observability — instrumentation overhead (mixed workload, production scan path)",
		"Config", "Matches", "Time", "Overhead")
	var offTime time.Duration
	var offMatches int64
	for i, cfg := range obsConfigs() {
		rs, err := imfant.Compile(mixed, cfg.opts)
		if err != nil {
			return nil, fmt.Errorf("obs %s: %w", cfg.name, err)
		}
		scan := rs.NewScanner()
		scan.Count(in) // warm caches outside the timed region
		var matches int64
		start := time.Now()
		for rep := 0; rep < o.Reps; rep++ {
			matches = scan.Count(in)
		}
		elapsed := time.Since(start) / time.Duration(max(1, o.Reps))
		if i == 0 {
			offTime, offMatches = elapsed, matches
		} else if matches != offMatches {
			return nil, fmt.Errorf("obs %s: %d matches, %d with instrumentation off — instrumentation changed results",
				cfg.name, matches, offMatches)
		}
		row := obsRow{Config: cfg.name, Matches: matches, Time: elapsed,
			Overhead: float64(elapsed) / float64(offTime)}
		rows = append(rows, row)
		tb.AddRow(row.Config, row.Matches, row.Time, fmt.Sprintf("%.3fx", row.Overhead))
	}
	if w != nil {
		tb.Render(w)
	}
	if bound > 0 {
		for _, row := range rows {
			if row.Config == "latency" && row.Overhead > bound {
				return rows, fmt.Errorf("obs: latency-attribution overhead %.3fx exceeds bound %.3fx",
					row.Overhead, bound)
			}
		}
	}
	return rows, nil
}

// obsEntry is one configuration's record in BENCH_obs.json.
type obsEntry struct {
	// Benchmark names the measurement: obs/<config>.
	Benchmark string `json:"benchmark"`
	// Matches is the per-scan match count, identical across configs.
	Matches int64 `json:"matches"`
	// NsPerOp is the whole-ruleset scan latency; BytesPerSec the
	// corresponding throughput; Overhead the ratio to the off config.
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerSec float64 `json:"bytes_per_sec"`
	Overhead    float64 `json:"overhead"`
}

// writeObsJSON records the instrumentation-overhead study as
// BENCH_obs.json, the artifact CI archives and gates on.
func writeObsJSON(rows []obsRow, o experiments.Opts) (string, error) {
	out := struct {
		Name    string      `json:"name"`
		Created string      `json:"created"`
		Go      string      `json:"go"`
		GOOS    string      `json:"goos"`
		GOARCH  string      `json:"goarch"`
		CPUs    int         `json:"cpus"`
		Config  benchConfig `json:"config"`
		Results []obsEntry  `json:"results"`
	}{
		Name:    "obs",
		Created: time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Config:  benchConfig{StreamSize: o.StreamSize, Reps: o.Reps},
	}
	for _, row := range rows {
		out.Results = append(out.Results, obsEntry{
			Benchmark:   fmt.Sprintf("obs/%s", row.Config),
			Matches:     row.Matches,
			NsPerOp:     row.Time.Nanoseconds(),
			BytesPerSec: float64(o.StreamSize) / row.Time.Seconds(),
			Overhead:    row.Overhead,
		})
	}
	path := "BENCH_obs.json"
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
