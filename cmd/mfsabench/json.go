package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

// benchFile is the machine-readable benchmark record written by -json:
// one entry per (dataset, engine) pair of the engine comparison, in a
// stable shape so successive runs diff cleanly and CI can archive them as
// artifacts for regression tracking.
type benchFile struct {
	Name    string       `json:"name"`
	Created string       `json:"created"`
	Go      string       `json:"go"`
	GOOS    string       `json:"goos"`
	GOARCH  string       `json:"goarch"`
	CPUs    int          `json:"cpus"`
	Config  benchConfig  `json:"config"`
	Results []benchEntry `json:"results"`
}

type benchConfig struct {
	StreamSize int `json:"stream_size"`
	Reps       int `json:"reps"`
}

type benchEntry struct {
	// Benchmark names the measurement: engines/<dataset>/<engine>.
	Benchmark string `json:"benchmark"`
	// NsPerOp is the average single-thread scan latency in nanoseconds.
	NsPerOp int64 `json:"ns_per_op"`
	// BytesPerSec is the corresponding scan throughput.
	BytesPerSec float64 `json:"bytes_per_sec"`
}

// writeBenchJSON runs the engine comparison (iMFAnt vs 2-stride vs warm
// lazy-DFA, M = all, keep semantics) and writes BENCH_<name>.json in the
// current directory.
func writeBenchJSON(r *experiments.Runner, o experiments.Opts, name string) (string, error) {
	rows, err := r.Lazy(nil)
	if err != nil {
		return "", err
	}
	bf := benchFile{
		Name:    name,
		Created: time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Config:  benchConfig{StreamSize: o.StreamSize, Reps: o.Reps},
	}
	add := func(abbr, engine string, d time.Duration) {
		if d <= 0 {
			return
		}
		bf.Results = append(bf.Results, benchEntry{
			Benchmark:   fmt.Sprintf("engines/%s/%s", abbr, engine),
			NsPerOp:     d.Nanoseconds(),
			BytesPerSec: float64(o.StreamSize) / d.Seconds(),
		})
	}
	for _, row := range rows {
		add(row.Abbr, "imfant", row.IMFAntTime)
		add(row.Abbr, "stride2", row.StrideTime)
		add(row.Abbr, "lazydfa", row.LazyTime)
	}
	path := "BENCH_" + name + ".json"
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// prefilterEntry is one (dataset, stream) measurement of the production
// Options.Prefilter study, with the gating context a regression tracker
// needs to interpret the speedup.
type prefilterEntry struct {
	// Benchmark names the measurement: prefilter/<dataset>/<hot|cold>.
	Benchmark string `json:"benchmark"`
	// Filterable / Rules is the factor coverage; Groups the MFSA count.
	Filterable int `json:"filterable"`
	Rules      int `json:"rules"`
	Groups     int `json:"groups"`
	// SkipRate is the fraction of (scan, group) executions elided.
	SkipRate float64 `json:"skip_rate"`
	// OffNsPerOp / OnNsPerOp are whole-ruleset scan latencies with the
	// prefilter off and on; Speedup is their ratio.
	OffNsPerOp int64   `json:"off_ns_per_op"`
	OnNsPerOp  int64   `json:"on_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// writePrefilterJSON records the Options.Prefilter on/off comparison as
// BENCH_prefilter.json, the regression-tracking artifact the CI run
// archives next to BENCH_ci.json.
func writePrefilterJSON(rows []prefilterRow, o experiments.Opts) (string, error) {
	out := struct {
		Name    string           `json:"name"`
		Created string           `json:"created"`
		Go      string           `json:"go"`
		GOOS    string           `json:"goos"`
		GOARCH  string           `json:"goarch"`
		CPUs    int              `json:"cpus"`
		Config  benchConfig      `json:"config"`
		Results []prefilterEntry `json:"results"`
	}{
		Name:    "prefilter",
		Created: time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Config:  benchConfig{StreamSize: o.StreamSize, Reps: o.Reps},
	}
	for _, row := range rows {
		stream := "cold"
		if row.HotStream {
			stream = "hot"
		}
		out.Results = append(out.Results, prefilterEntry{
			Benchmark:  fmt.Sprintf("prefilter/%s/%s", row.Abbr, stream),
			Filterable: row.Filterable,
			Rules:      row.Rules,
			Groups:     row.Groups,
			SkipRate:   row.SkipRate,
			OffNsPerOp: row.OffTime.Nanoseconds(),
			OnNsPerOp:  row.OnTime.Nanoseconds(),
			Speedup:    row.Speedup,
		})
	}
	path := "BENCH_prefilter.json"
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// accelEntry is one (workload, engine) measurement of the Options.Accel
// study, with the skip context a regression tracker needs to interpret the
// speedup.
type accelEntry struct {
	// Benchmark names the measurement: accel/<workload>/<engine>.
	Benchmark string `json:"benchmark"`
	// SkippedFrac is accelerated-jump bytes over scanned bytes, in [0, 1].
	SkippedFrac float64 `json:"skipped_frac"`
	// AccelStates is the accelerable cached-state gauge (lazy engine only).
	AccelStates int64 `json:"accel_states"`
	// Matches is the per-scan match count, identical accel on and off.
	Matches int64 `json:"matches"`
	// OffNsPerOp / OnNsPerOp are whole-ruleset scan latencies with
	// Options.Accel off and on; Speedup is their ratio.
	OffNsPerOp int64   `json:"off_ns_per_op"`
	OnNsPerOp  int64   `json:"on_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// strategyEntry is one workload measurement of the strategy-planner study,
// with the classification context a regression tracker needs to interpret
// the speedup.
type strategyEntry struct {
	// Benchmark names the measurement: strategy/<workload>.
	Benchmark string `json:"benchmark"`
	// Strategies is the planner's per-group assignment, in group order.
	Strategies string `json:"strategies"`
	// Groups is the MFSA count; Matches the per-scan match count,
	// identical planner-on and baseline.
	Groups  int   `json:"groups"`
	Matches int64 `json:"matches"`
	// LazyNsPerOp / PlanNsPerOp are whole-ruleset scan latencies under the
	// forced lazy-DFA baseline and under the planner; Speedup is their
	// ratio. The all-literal row's speedup is the acceptance number.
	LazyNsPerOp int64   `json:"lazy_ns_per_op"`
	PlanNsPerOp int64   `json:"plan_ns_per_op"`
	Speedup     float64 `json:"speedup"`
}

// segmentEntry is one (workload, workers) measurement of the segmentation
// scaling study. Speedup is bounded by the host's core count — interpret it
// against the record's "cpus" field.
type segmentEntry struct {
	// Benchmark names the measurement: segment/<workload>/<workers>.
	Benchmark string `json:"benchmark"`
	// Workers is the segment count per scan.
	Workers int `json:"workers"`
	// Matches is the per-scan match count, identical segmented and serial.
	Matches int64 `json:"matches"`
	// SerialNsPerOp / SegNsPerOp are whole-ruleset scan latencies with
	// Options.Segment off and on; Speedup is their ratio.
	SerialNsPerOp int64   `json:"serial_ns_per_op"`
	SegNsPerOp    int64   `json:"seg_ns_per_op"`
	Speedup       float64 `json:"speedup"`
	// StitchPct is boundary-stitch re-scan cost as a percentage of the
	// bytes scanned in segment workers.
	StitchPct float64 `json:"stitch_pct"`
}

// writeSegmentJSON records the segmentation scaling study as
// BENCH_segment.json, archived by CI next to the other study artifacts.
func writeSegmentJSON(rows []segmentRow, o experiments.Opts) (string, error) {
	out := struct {
		Name    string         `json:"name"`
		Created string         `json:"created"`
		Go      string         `json:"go"`
		GOOS    string         `json:"goos"`
		GOARCH  string         `json:"goarch"`
		CPUs    int            `json:"cpus"`
		Config  benchConfig    `json:"config"`
		Results []segmentEntry `json:"results"`
	}{
		Name:    "segment",
		Created: time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Config:  benchConfig{StreamSize: o.StreamSize, Reps: o.Reps},
	}
	for _, row := range rows {
		out.Results = append(out.Results, segmentEntry{
			Benchmark:     fmt.Sprintf("segment/%s/%d", row.Workload, row.Workers),
			Workers:       row.Workers,
			Matches:       row.Matches,
			SerialNsPerOp: row.SerialTime.Nanoseconds(),
			SegNsPerOp:    row.SegTime.Nanoseconds(),
			Speedup:       row.Speedup,
			StitchPct:     row.StitchPct,
		})
	}
	path := "BENCH_segment.json"
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// writeStrategyJSON records the planner-vs-lazy comparison as
// BENCH_strategy.json, archived by CI next to BENCH_accel.json.
func writeStrategyJSON(rows []strategyRow, o experiments.Opts) (string, error) {
	out := struct {
		Name    string          `json:"name"`
		Created string          `json:"created"`
		Go      string          `json:"go"`
		GOOS    string          `json:"goos"`
		GOARCH  string          `json:"goarch"`
		CPUs    int             `json:"cpus"`
		Config  benchConfig     `json:"config"`
		Results []strategyEntry `json:"results"`
	}{
		Name:    "strategy",
		Created: time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Config:  benchConfig{StreamSize: o.StreamSize, Reps: o.Reps},
	}
	for _, row := range rows {
		out.Results = append(out.Results, strategyEntry{
			Benchmark:   fmt.Sprintf("strategy/%s", row.Workload),
			Strategies:  row.Strategies,
			Groups:      row.Groups,
			Matches:     row.Matches,
			LazyNsPerOp: row.LazyTime.Nanoseconds(),
			PlanNsPerOp: row.PlanTime.Nanoseconds(),
			Speedup:     row.Speedup,
		})
	}
	path := "BENCH_strategy.json"
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// writeAccelJSON records the Options.Accel on/off comparison as
// BENCH_accel.json, archived by CI next to BENCH_prefilter.json.
func writeAccelJSON(rows []accelRow, o experiments.Opts) (string, error) {
	out := struct {
		Name    string       `json:"name"`
		Created string       `json:"created"`
		Go      string       `json:"go"`
		GOOS    string       `json:"goos"`
		GOARCH  string       `json:"goarch"`
		CPUs    int          `json:"cpus"`
		Config  benchConfig  `json:"config"`
		Results []accelEntry `json:"results"`
	}{
		Name:    "accel",
		Created: time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Config:  benchConfig{StreamSize: o.StreamSize, Reps: o.Reps},
	}
	for _, row := range rows {
		out.Results = append(out.Results, accelEntry{
			Benchmark:   fmt.Sprintf("accel/%s/%s", row.Workload, row.Engine),
			SkippedFrac: row.SkippedFrac,
			AccelStates: row.AccelStates,
			Matches:     row.Matches,
			OffNsPerOp:  row.OffTime.Nanoseconds(),
			OnNsPerOp:   row.OnTime.Nanoseconds(),
			Speedup:     row.Speedup,
		})
	}
	path := "BENCH_accel.json"
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
