package main

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	imfant "repro"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

// The strategy study's four workloads exercise one planner classification
// each. The literal and anchored rules are snort-derived: content strings
// and URI anchors lifted from the web-attacks ruleset shapes, the
// population the planner is meant to pull off the automata path entirely.
var (
	// strategyLiteralRules is an all-literal group: every rule is a plain
	// content string, so the planner routes the whole group to a single
	// Aho–Corasick scan (StrategyAC).
	strategyLiteralRules = []string{
		"/etc/passwd", "cmd\\.exe", "<script>", "\\.\\./\\.\\.",
		"/cgi-bin/phf", "/bin/sh", "/usr/bin/id", "xp_cmdshell",
		"/wp-admin/", "SELECT FROM", "/robots\\.txt", "union select",
		"/\\.git/HEAD", "etc/shadow", "/phpmyadmin", "document\\.cookie",
		"/xmlrpc\\.php", "boot\\.ini", "/server-status", "/\\.env",
	}
	// strategyAnchoredRules are anchored literals — request-line prefixes
	// and trailer suffixes — classified StrategyAnchored: O(pattern) work
	// per scan instead of an automaton pass.
	strategyAnchoredRules = []string{
		"^GET /etc/passwd", "^POST /admin/login", "^HEAD /cgi-bin/",
		"^OPTIONS \\*", "^GET /", "\r\n\r\n$", "HTTP/1\\.0$",
	}
	// strategySmallRules are small regexes whose merged NFA determinizes
	// under the eager-DFA budget (StrategyDFA): the group runs a
	// precompiled dense DFA instead of building one lazily per scan.
	strategySmallRules = []string{
		"/cgi-bin/(phf|test-cgi)", "id=[0-9]+ or ", "<scr+ipt>",
		"\\.(asp|php|cgi) ", "%2e%2e[/\\\\]",
	}
	// strategyLargeRule exceeds the eager-DFA state budget and stays on
	// the default engine — the mixed workload's control group.
	strategyLargeRule = "x[0-9]{200}y"
)

// strategyRow is one workload of the strategy-planner study: the same
// ruleset compiled with the planner on (EngineAuto) and with the forced
// lazy-DFA baseline, scanned over the workload's traffic.
type strategyRow struct {
	// Workload is "all-literal", "anchored", "small-group" or "mixed".
	Workload string
	// Strategies is the planner's per-group assignment, in group order.
	Strategies string
	// Groups is the MFSA count; Matches the per-scan match count
	// (identical planner-on and baseline — checked).
	Groups  int
	Matches int64
	// LazyTime and PlanTime are single-thread whole-ruleset scan
	// latencies under the forced lazy-DFA baseline and under the planner;
	// Speedup is their ratio.
	LazyTime, PlanTime time.Duration
	Speedup            float64
}

// strategyWorkload bundles a workload's rules, grouping, and traffic.
type strategyWorkload struct {
	name    string
	rules   []string
	merge   int
	traffic func(size int) []byte
}

// strategyTraffic builds benign HTTP filler with planted fragments mixed
// in at roughly one per kilobyte — enough hits that the match-equality
// check is meaningful, sparse enough that scanning, not match handling,
// dominates.
func strategyTraffic(size int, seed int64, plants []string) []byte {
	rng := rand.New(rand.NewSource(seed))
	benign := []string{
		"GET /index.html HTTP/1.1\r\n", "Host: example.com\r\n",
		"User-Agent: Mozilla/5.0\r\n", "Accept: text/html\r\n",
		"Connection: keep-alive\r\n", "Cache-Control: no-cache\r\n",
	}
	out := make([]byte, 0, size+64)
	for len(out) < size {
		if len(plants) > 0 && rng.Intn(40) == 0 {
			out = append(out, plants[rng.Intn(len(plants))]...)
		} else {
			out = append(out, benign[rng.Intn(len(benign))]...)
		}
	}
	return out[:size]
}

// strategyWorkloads enumerates the study. MergeFactor 0 ("M = all") gives
// the single-group workloads their one-strategy shape; the mixed workload
// orders rules so MergeFactor 4 yields homogeneous groups, one per
// strategy, plus the engine-bound control.
func strategyWorkloads() []strategyWorkload {
	mixed := make([]string, 0, 17)
	mixed = append(mixed, strategyLiteralRules[:4]...)
	mixed = append(mixed, strategyAnchoredRules[:4]...)
	mixed = append(mixed, strategySmallRules[:4]...)
	mixed = append(mixed, strategyLargeRule)
	return []strategyWorkload{
		{"all-literal", strategyLiteralRules, 0, func(size int) []byte {
			return strategyTraffic(size, 0x57A1, []string{"/etc/passwd", "cmd.exe", "/wp-admin/"})
		}},
		{"anchored", strategyAnchoredRules, 0, func(size int) []byte {
			return strategyTraffic(size, 0x57A2, nil) // "^GET /" matches the stream head
		}},
		{"small-group", strategySmallRules, 0, func(size int) []byte {
			return strategyTraffic(size, 0x57A3, []string{"/cgi-bin/phf?x", "id=1 or 1=1", "a.php b"})
		}},
		{"mixed", mixed, 4, func(size int) []byte {
			return strategyTraffic(size, 0x57A4, []string{"/etc/passwd", "GET /cgi-bin/test-cgi", "%2e%2e/"})
		}},
	}
}

// runStrategy measures the per-group strategy planner on the production
// scan path: each workload compiled with the planner (EngineAuto) and with
// the forced lazy-DFA baseline, match results identical in both. The
// prefilter is off in every configuration so the study isolates strategy
// dispatch — the all-literal row is the acceptance number (the AC scan
// must beat a lazy-DFA pass over the same merged group by ≥5x).
func runStrategy(w io.Writer, o experiments.Opts) ([]strategyRow, error) {
	var rows []strategyRow
	tb := metrics.NewTable("Strategy — planner (EngineAuto) vs forced lazy-DFA (prefilter off, production scan path)",
		"Workload", "Strategies", "Groups", "Matches", "LazyTime", "PlanTime", "Speedup")
	for _, wl := range strategyWorkloads() {
		base, err := imfant.Compile(wl.rules, imfant.Options{
			MergeFactor: wl.merge, Engine: imfant.EngineLazyDFA,
			Prefilter: imfant.PrefilterOff,
		})
		if err != nil {
			return nil, fmt.Errorf("strategy %s: baseline: %w", wl.name, err)
		}
		planned, err := imfant.Compile(wl.rules, imfant.Options{
			MergeFactor: wl.merge, Prefilter: imfant.PrefilterOff,
		})
		if err != nil {
			return nil, fmt.Errorf("strategy %s: planner: %w", wl.name, err)
		}
		in := wl.traffic(o.StreamSize)

		baseScan := base.NewScanner()
		var baseMatches int64
		start := time.Now()
		for rep := 0; rep < o.Reps; rep++ {
			baseMatches = baseScan.Count(in)
		}
		lazyTime := time.Since(start) / time.Duration(o.Reps)

		planScan := planned.NewScanner()
		var planMatches int64
		start = time.Now()
		for rep := 0; rep < o.Reps; rep++ {
			planMatches = planScan.Count(in)
		}
		planTime := time.Since(start) / time.Duration(o.Reps)

		if planMatches != baseMatches {
			return nil, fmt.Errorf("strategy %s: %d matches planned, %d baseline",
				wl.name, planMatches, baseMatches)
		}
		strats := make([]string, 0, planned.NumAutomata())
		for _, s := range planned.Strategies() {
			strats = append(strats, s.String())
		}
		row := strategyRow{
			Workload: wl.name, Strategies: strings.Join(strats, ","),
			Groups: planned.NumAutomata(), Matches: planMatches,
			LazyTime: lazyTime, PlanTime: planTime,
			Speedup: float64(lazyTime) / float64(planTime),
		}
		rows = append(rows, row)
		tb.AddRow(row.Workload, row.Strategies, row.Groups, row.Matches,
			row.LazyTime, row.PlanTime, row.Speedup)
	}
	if w != nil {
		tb.Render(w)
	}
	return rows, nil
}
