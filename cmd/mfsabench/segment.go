package main

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	imfant "repro"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

// The segment study's rules stay on the default engine strategy — general
// regexes the planner cannot route to AC, anchored, or eager-DFA groups —
// so the measured speedup is the segment-parallel scan path itself.
var segmentRules = []string{
	"needle[0-9]{1,6}x",
	"fra+gment",
	"x[qz]{2,8}y",
	"(alpha|beta)[a-z]{0,4}omega",
}

// segmentRow is one (workload, workers) cell of the segmentation scaling
// study: the same ruleset scanned serially (Segment off) and segmented at
// the given worker count, matches identical in both (checked).
type segmentRow struct {
	// Workload is "match-sparse" or "match-dense".
	Workload string
	// Workers is the segment count per scan.
	Workers int
	// Matches is the per-scan match count.
	Matches int64
	// SerialTime and SegTime are whole-ruleset scan latencies with
	// segmentation off and on; Speedup is their ratio.
	SerialTime, SegTime time.Duration
	Speedup             float64
	// StitchPct is the boundary-stitch re-scan cost as a percentage of the
	// bytes scanned in segment workers — the overhead the exact stitching
	// pays for its parallelism.
	StitchPct float64
}

// segmentTraffic builds filler with the study's fragments planted about
// every plantEvery bytes: sparse traffic keeps boundary carries dead (the
// stitch fast path), dense traffic keeps rules mid-match across boundaries.
func segmentTraffic(size int, seed int64, plantEvery int) []byte {
	rng := rand.New(rand.NewSource(seed))
	plants := []string{"needle42x ", "fraagment ", "xqzqy ", "alphaxomega "}
	filler := []byte("abcdefghijklmnop qrstuv ")
	out := make([]byte, 0, size+16)
	sincePlant := 0
	for len(out) < size {
		if plantEvery > 0 && sincePlant >= plantEvery {
			p := plants[rng.Intn(len(plants))]
			out = append(out, p...)
			sincePlant = 0
			continue
		}
		n := 8 + rng.Intn(16)
		for i := 0; i < n; i++ {
			out = append(out, filler[rng.Intn(len(filler))])
		}
		sincePlant += n
	}
	return out[:size]
}

// runSegment measures segment-parallel scanning on the production parallel
// scan path: serial (Segment off) versus segmented CountParallel at each
// worker count, on a match-sparse and a match-dense stream. Speedup above 1
// requires real cores — on a single-CPU host the study records ~1x plus the
// stitch overhead, honestly.
func runSegment(w io.Writer, o experiments.Opts) ([]segmentRow, error) {
	workloads := []struct {
		name string
		in   []byte
	}{
		{"match-sparse", segmentTraffic(o.StreamSize, 0x5E61, 4096)},
		{"match-dense", segmentTraffic(o.StreamSize, 0x5E62, 96)},
	}
	serialRS, err := imfant.Compile(segmentRules, imfant.Options{
		Engine: imfant.EngineIMFAnt, Segment: imfant.SegmentOff,
	})
	if err != nil {
		return nil, fmt.Errorf("segment: serial compile: %w", err)
	}
	var rows []segmentRow
	tb := metrics.NewTable("Segment-parallel scanning — serial vs segmented CountParallel (exact boundary stitching)",
		"Workload", "Workers", "Matches", "SerialTime", "SegTime", "Speedup", "Stitch%")
	for _, wl := range workloads {
		var serialMatches int64
		start := time.Now()
		for rep := 0; rep < o.Reps; rep++ {
			if serialMatches, err = serialRS.CountParallel(wl.in, 1); err != nil {
				return nil, fmt.Errorf("segment %s: serial scan: %w", wl.name, err)
			}
		}
		serialTime := time.Since(start) / time.Duration(o.Reps)

		for _, workers := range []int{2, 4, 8} {
			segRS, err := imfant.Compile(segmentRules, imfant.Options{
				Engine: imfant.EngineIMFAnt, Segment: imfant.SegmentOn,
			})
			if err != nil {
				return nil, fmt.Errorf("segment: segmented compile: %w", err)
			}
			var segMatches int64
			start = time.Now()
			for rep := 0; rep < o.Reps; rep++ {
				if segMatches, err = segRS.CountParallel(wl.in, workers); err != nil {
					return nil, fmt.Errorf("segment %s/%d: segmented scan: %w", wl.name, workers, err)
				}
			}
			segTime := time.Since(start) / time.Duration(o.Reps)
			if segMatches != serialMatches {
				return nil, fmt.Errorf("segment %s/%d: %d matches segmented, %d serial",
					wl.name, workers, segMatches, serialMatches)
			}
			st := segRS.Stats().Segment
			stitchPct := 0.0
			if st != nil && st.ParallelBytes > 0 {
				stitchPct = 100 * float64(st.StitchBytes) / float64(st.ParallelBytes)
			}
			row := segmentRow{
				Workload: wl.name, Workers: workers, Matches: segMatches,
				SerialTime: serialTime, SegTime: segTime,
				Speedup:   float64(serialTime) / float64(segTime),
				StitchPct: stitchPct,
			}
			rows = append(rows, row)
			tb.AddRow(row.Workload, row.Workers, row.Matches,
				row.SerialTime, row.SegTime, row.Speedup, row.StitchPct)
		}
	}
	if w != nil {
		tb.Render(w)
	}
	return rows, nil
}
