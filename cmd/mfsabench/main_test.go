package main

import (
	"reflect"
	"testing"
)

func TestIntListSet(t *testing.T) {
	var l intList
	if err := l.Set("1,2,all,50"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("100"); err != nil {
		t.Fatal(err)
	}
	want := intList{1, 2, 0, 50, 100}
	if !reflect.DeepEqual(l, want) {
		t.Fatalf("got %v, want %v", l, want)
	}
	if err := l.Set("x"); err == nil {
		t.Fatal("bad integer accepted")
	}
	if l.String() == "" {
		t.Fatal("empty String")
	}
}

func TestStrListSet(t *testing.T) {
	var l strList
	if err := l.Set("bro, ds9 ,PEN"); err != nil {
		t.Fatal(err)
	}
	want := strList{"BRO", "DS9", "PEN"}
	if !reflect.DeepEqual(l, want) {
		t.Fatalf("got %v, want %v", l, want)
	}
	if l.String() != "BRO,DS9,PEN" {
		t.Fatalf("String=%q", l.String())
	}
}
