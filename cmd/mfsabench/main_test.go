package main

import (
	"reflect"
	"testing"

	"repro/internal/experiments"
)

func TestIntListSet(t *testing.T) {
	var l intList
	if err := l.Set("1,2,all,50"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("100"); err != nil {
		t.Fatal(err)
	}
	want := intList{1, 2, 0, 50, 100}
	if !reflect.DeepEqual(l, want) {
		t.Fatalf("got %v, want %v", l, want)
	}
	if err := l.Set("x"); err == nil {
		t.Fatal("bad integer accepted")
	}
	if l.String() == "" {
		t.Fatal("empty String")
	}
}

func TestStrListSet(t *testing.T) {
	var l strList
	if err := l.Set("bro, ds9 ,PEN"); err != nil {
		t.Fatal(err)
	}
	want := strList{"BRO", "DS9", "PEN"}
	if !reflect.DeepEqual(l, want) {
		t.Fatalf("got %v, want %v", l, want)
	}
	if l.String() != "BRO,DS9,PEN" {
		t.Fatalf("String=%q", l.String())
	}
}

// TestRunStrategy smoke-tests the -strategy study at a small size: every
// workload must classify as designed (the speedup numbers themselves are
// CI artifacts, not test assertions — timing is machine-dependent).
func TestRunStrategy(t *testing.T) {
	o := experiments.Opts{StreamSize: 32 << 10, Reps: 1}
	rows, err := runStrategy(nil, o)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"all-literal": "ac",
		"anchored":    "anchored",
		"small-group": "dfa",
		"mixed":       "ac,anchored,dfa,imfant",
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		if row.Strategies != want[row.Workload] {
			t.Errorf("%s: classified %q, want %q", row.Workload, row.Strategies, want[row.Workload])
		}
		if row.PlanTime <= 0 || row.LazyTime <= 0 {
			t.Errorf("%s: non-positive timing %v / %v", row.Workload, row.LazyTime, row.PlanTime)
		}
	}
}

// TestRunSegment smoke-tests the -segment study at a small size: every
// (workload, workers) cell must report match counts identical to the serial
// scan (exactness is the study's precondition) and positive timings. The
// speedup numbers are CI artifacts, not test assertions — they depend on
// the host's core count.
func TestRunSegment(t *testing.T) {
	o := experiments.Opts{StreamSize: 32 << 10, Reps: 1}
	rows, err := runSegment(nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 2 workloads × workers {2, 4, 8}
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, row := range rows {
		if row.Matches <= 0 {
			t.Errorf("%s/%d: no matches — the workload is not exercising the rules", row.Workload, row.Workers)
		}
		if row.SerialTime <= 0 || row.SegTime <= 0 {
			t.Errorf("%s/%d: non-positive timing %v / %v", row.Workload, row.Workers, row.SerialTime, row.SegTime)
		}
		if row.Workload == "match-sparse" && row.StitchPct > 5 {
			t.Errorf("match-sparse/%d: stitch cost %.2f%%, want near zero (carries should die fast)",
				row.Workers, row.StitchPct)
		}
	}
}

// TestRunObs smoke-tests the -obs study at a small size: the three
// instrumentation configs must report identical matches (instrumentation
// never changes results) and positive timings. Overhead ratios are CI
// artifacts, not test assertions — timing is machine-dependent, so the
// gate runs unbounded here.
func TestRunObs(t *testing.T) {
	o := experiments.Opts{StreamSize: 32 << 10, Reps: 1}
	rows, err := runObs(nil, o, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, row := range rows {
		if row.Matches != rows[0].Matches {
			t.Errorf("%s: %d matches, off config had %d", row.Config, row.Matches, rows[0].Matches)
		}
		if row.Time <= 0 || row.Overhead <= 0 {
			t.Errorf("%s: non-positive timing %v / %.3f", row.Config, row.Time, row.Overhead)
		}
	}
}
