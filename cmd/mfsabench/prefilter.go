package main

import (
	"fmt"
	"io"
	"time"

	imfant "repro"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

// prefilterRow measures the production literal-factor prefilter
// (Options.Prefilter) on one dataset and one traffic profile. The study
// lives in the command rather than internal/experiments because it
// exercises the public package, which the experiments package cannot
// import (the repository-level benchmarks would form a cycle).
type prefilterRow struct {
	Abbr string
	// HotStream is true for the dataset's planted stream (factors occur)
	// and false for a cold stream of mismatching noise.
	HotStream bool
	// Filterable is the number of rules carrying a literal factor, out of
	// the dataset's rule count.
	Filterable, Rules int
	// Groups is the MFSA count; SkipRate is the fraction of (scan, group)
	// executions the prefilter elided.
	Groups   int
	SkipRate float64
	// OffTime and OnTime are single-thread whole-ruleset scan latencies
	// with the prefilter off and on.
	OffTime, OnTime time.Duration
	// Speedup is OffTime / OnTime.
	Speedup float64
}

// runPrefilter evaluates the production prefilter path end to end: the
// same rulesets compiled with Options.Prefilter off and on (factor-aware
// grouping, M = 10 so skipping has group granularity), scanned over the
// dataset's planted stream and over cold noise. Unlike the -decompose
// study — which benchmarks the per-rule confirmation baseline the paper
// argues against — this measures the shipped design: one Aho–Corasick
// sweep gating whole-MFSA executions, match results byte-identical in
// every mode.
func runPrefilter(w io.Writer, o experiments.Opts) ([]prefilterRow, error) {
	const mergeFactor = 10
	specs := dataset.Datasets()
	if len(o.Datasets) > 0 {
		specs = specs[:0]
		for _, abbr := range o.Datasets {
			s, err := dataset.ByAbbr(abbr)
			if err != nil {
				return nil, err
			}
			specs = append(specs, s)
		}
	}
	var rows []prefilterRow
	tb := metrics.NewTable("Prefilter — Options.Prefilter on vs off (M = 10, production scan path)",
		"Dataset", "Stream", "Filterable", "Groups", "SkipRate", "OffTime", "OnTime", "Speedup")
	for _, s := range specs {
		pats := s.Patterns()
		off, err := imfant.Compile(pats, imfant.Options{
			MergeFactor: mergeFactor, Prefilter: imfant.PrefilterOff,
		})
		if err != nil {
			return nil, err
		}
		on, err := imfant.Compile(pats, imfant.Options{
			MergeFactor: mergeFactor, Prefilter: imfant.PrefilterOn,
		})
		if err != nil {
			return nil, err
		}

		hotStream := s.Stream(o.StreamSize, 0)
		cold := make([]byte, o.StreamSize)
		for i := range cold {
			cold[i] = byte('A' + i%26) // uppercase: dataset rules are lowercase-heavy
		}
		for _, hot := range []bool{true, false} {
			in := cold
			if hot {
				in = hotStream
			}
			offScan := off.NewScanner()
			start := time.Now()
			for rep := 0; rep < o.Reps; rep++ {
				offScan.Count(in)
			}
			offTime := time.Since(start) / time.Duration(o.Reps)

			onScan := on.NewScanner()
			start = time.Now()
			for rep := 0; rep < o.Reps; rep++ {
				onScan.Count(in)
			}
			onTime := time.Since(start) / time.Duration(o.Reps)

			row := prefilterRow{
				Abbr: s.Abbr, HotStream: hot,
				Rules: on.NumRules(), Groups: on.NumAutomata(),
				OffTime: offTime, OnTime: onTime,
				Speedup: float64(offTime) / float64(onTime),
			}
			if st := onScan.Stats().Prefilter; st != nil {
				row.Filterable = st.FilterableRules
				row.SkipRate = float64(st.GroupsSkipped) /
					float64(st.Sweeps*int64(row.Groups))
			}
			rows = append(rows, row)
			name := "cold"
			if hot {
				name = "hot"
			}
			tb.AddRow(row.Abbr, name,
				fmt.Sprintf("%d/%d", row.Filterable, row.Rules), row.Groups,
				fmt.Sprintf("%.1f%%", 100*row.SkipRate), row.OffTime, row.OnTime, row.Speedup)
		}
	}
	if w != nil {
		tb.Render(w)
	}
	return rows, nil
}
