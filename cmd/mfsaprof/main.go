// Command mfsaprof profiles MFSA execution: it compiles (or loads) a
// ruleset with the sampling profiler enabled, scans a stream repeatedly,
// and reports where the automata spend their time — the hottest states
// with the rules sharing them, per-rule absorbed heat, scan-latency
// percentiles, and the active-set size distribution.
//
// Usage:
//
//	mfsaprof -patterns rules.txt -dataset BRO
//	mfsaprof -anml bro.anml -stream traffic.bin -reps 50 -top 20
//	mfsaprof -patterns rules.txt -dataset DS9 -dot heat.dot -svg latency.svg
//
// -dot writes a Graphviz heat map of one automaton (states shaded
// white→red by visit share); -svg writes the scan-latency histogram as a
// standalone SVG chart; -trace N retains the last N structured runtime
// events and prints the tail of the ring.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	imfant "repro"
	"repro/internal/dataset"
	"repro/internal/svgplot"
)

type config struct {
	patterns  string
	anml      string
	stream    string
	dsAbbr    string
	size      int
	merge     int
	engine    string
	keep      bool
	stride    int
	reps      int
	top       int
	dot       string
	automaton int
	svg       string
	trace     int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.patterns, "patterns", "", "pattern file, one POSIX ERE per line (# comments)")
	flag.StringVar(&cfg.anml, "anml", "", "extended-ANML file instead of -patterns")
	flag.StringVar(&cfg.stream, "stream", "", "input stream file")
	flag.StringVar(&cfg.dsAbbr, "dataset", "", "generate the stream of this synthetic dataset instead of -stream")
	flag.IntVar(&cfg.size, "size", 1<<20, "generated stream size in bytes (with -dataset)")
	flag.IntVar(&cfg.merge, "m", 0, "merging factor M (0 = all)")
	flag.StringVar(&cfg.engine, "engine", "auto", "execution engine: auto, imfant, lazydfa")
	flag.BoolVar(&cfg.keep, "keep-on-match", false, "disable the Eq. 5 pop (report longer matches too)")
	flag.IntVar(&cfg.stride, "stride", 0, "profiler sampling stride in bytes (0 = default 64)")
	flag.IntVar(&cfg.reps, "reps", 20, "scan repetitions")
	flag.IntVar(&cfg.top, "top", 10, "hot states/rules to list")
	flag.StringVar(&cfg.dot, "dot", "", "write a Graphviz heat map of one automaton to this file")
	flag.IntVar(&cfg.automaton, "automaton", 0, "automaton index for -dot")
	flag.StringVar(&cfg.svg, "svg", "", "write the scan-latency histogram as SVG to this file")
	flag.IntVar(&cfg.trace, "trace", 0, "retain the last N trace events and print the tail")
	flag.Parse()

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the whole profiling session and renders the report.
func run(cfg config, w io.Writer) error {
	rs, err := compileRuleset(cfg)
	if err != nil {
		return err
	}
	input, err := loadStream(cfg)
	if err != nil {
		return err
	}
	if cfg.reps < 1 {
		cfg.reps = 1
	}

	sc := rs.NewScanner()
	var matches int64
	start := time.Now()
	for rep := 0; rep < cfg.reps; rep++ {
		matches = sc.Count(input)
	}
	elapsed := time.Since(start)

	p := rs.Profile()
	if p == nil {
		return fmt.Errorf("mfsaprof: profiler did not initialize")
	}
	report(w, cfg, rs, p, len(input), matches, elapsed)

	if cfg.dot != "" {
		if err := writeFile(cfg.dot, func(f io.Writer) error {
			return rs.WriteProfileDOT(f, cfg.automaton)
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nheat map of automaton %d written to %s\n", cfg.automaton, cfg.dot)
	}
	if cfg.svg != "" {
		if err := writeFile(cfg.svg, func(f io.Writer) error {
			return latencySVG(f, p.ScanLatency)
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "scan-latency histogram written to %s\n", cfg.svg)
	}
	if cfg.trace > 0 {
		printTrace(w, rs, 20)
	}
	return nil
}

// compileRuleset builds the profiled ruleset from -patterns or -anml.
func compileRuleset(cfg config) (*imfant.Ruleset, error) {
	opts := imfant.Options{
		MergeFactor:   cfg.merge,
		KeepOnMatch:   cfg.keep,
		Profile:       true,
		ProfileStride: cfg.stride,
		TraceCapacity: cfg.trace,
		Latency:       true,
		// The profiler exists to observe automaton execution; letting the
		// literal-factor prefilter skip groups would blank the heat map on
		// factor-free traffic.
		Prefilter: imfant.PrefilterOff,
	}
	switch strings.ToLower(cfg.engine) {
	case "", "auto":
		opts.Engine = imfant.EngineAuto
	case "imfant":
		opts.Engine = imfant.EngineIMFAnt
	case "lazydfa", "lazy":
		opts.Engine = imfant.EngineLazyDFA
	default:
		return nil, fmt.Errorf("mfsaprof: unknown -engine %q (auto, imfant, lazydfa)", cfg.engine)
	}
	switch {
	case cfg.patterns != "" && cfg.anml != "":
		return nil, fmt.Errorf("mfsaprof: -patterns and -anml are mutually exclusive")
	case cfg.patterns != "":
		pats, err := loadPatterns(cfg.patterns)
		if err != nil {
			return nil, err
		}
		rs, ruleErrs, err := imfant.CompileLax(pats, opts)
		if err != nil {
			return nil, err
		}
		for _, re := range ruleErrs {
			fmt.Fprintf(os.Stderr, "mfsaprof: skipping rule %d: %v\n", re.Rule, re.Err)
		}
		return rs, nil
	case cfg.anml != "":
		f, err := os.Open(cfg.anml)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return imfant.LoadANML(f, opts)
	default:
		return nil, fmt.Errorf("mfsaprof: provide -patterns FILE or -anml FILE")
	}
}

// loadPatterns reads one pattern per line, skipping blanks and # comments.
func loadPatterns(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pats []string
	scan := bufio.NewScanner(f)
	scan.Buffer(make([]byte, 1<<20), 1<<20)
	for scan.Scan() {
		line := strings.TrimSpace(scan.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		pats = append(pats, line)
	}
	if err := scan.Err(); err != nil {
		return nil, err
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("mfsaprof: no patterns in %s", path)
	}
	return pats, nil
}

func loadStream(cfg config) ([]byte, error) {
	switch {
	case cfg.stream != "" && cfg.dsAbbr != "":
		return nil, fmt.Errorf("mfsaprof: -stream and -dataset are mutually exclusive")
	case cfg.stream != "":
		return os.ReadFile(cfg.stream)
	case cfg.dsAbbr != "":
		s, err := dataset.ByAbbr(cfg.dsAbbr)
		if err != nil {
			return nil, err
		}
		return s.Stream(cfg.size, 0), nil
	default:
		return nil, fmt.Errorf("mfsaprof: provide -stream FILE or -dataset ABBR")
	}
}

// report renders the text hotspot report.
func report(w io.Writer, cfg config, rs *imfant.Ruleset, p *imfant.ProfileReport,
	streamLen int, matches int64, elapsed time.Duration) {
	fmt.Fprintf(w, "mfsaprof — execution profile\n")
	fmt.Fprintf(w, "ruleset:  %d rules, %d automata, %d states (engine=%s, keep=%v, M=%d)\n",
		rs.NumRules(), rs.NumAutomata(), rs.States(), cfg.engine, cfg.keep, cfg.merge)
	fmt.Fprintf(w, "stream:   %d bytes × %d reps, %d matches/scan, %v total\n",
		streamLen, cfg.reps, matches, elapsed.Round(time.Microsecond))
	fmt.Fprintf(w, "sampling: stride %d bytes, %d samples, %d state visits\n\n",
		p.Stride, p.Samples, p.TotalVisits())

	fmt.Fprintf(w, "scan latency:  p50=%s p90=%s p99=%s max=%s mean=%s (%d scans)\n",
		ns(p.ScanLatency.Percentile(0.50)), ns(p.ScanLatency.Percentile(0.90)),
		ns(p.ScanLatency.Percentile(0.99)), ns(p.ScanLatency.Max()),
		ns(int64(p.ScanLatency.Mean())), p.ScanLatency.Count())
	if p.ChunkLatency.Count() > 0 {
		fmt.Fprintf(w, "chunk latency: p50=%s p99=%s max=%s (%d writes)\n",
			ns(p.ChunkLatency.Percentile(0.50)), ns(p.ChunkLatency.Percentile(0.99)),
			ns(p.ChunkLatency.Max()), p.ChunkLatency.Count())
	}
	fmt.Fprintf(w, "active set:    mean %.1f (state,FSA) pairs, p90=%d, max=%d\n\n",
		p.ActiveSet.Mean(), p.ActiveSet.Percentile(0.90), p.ActiveSet.Max())

	if lat := rs.Stats().Latency; lat != nil {
		fmt.Fprintf(w, "per-stage latency (wall clock, one observation per stage execution):\n")
		fmt.Fprintf(w, "  %-18s %10s %10s %10s %10s %10s\n",
			"stage", "count", "p50", "p90", "p99", "max")
		for _, st := range lat.Stages {
			fmt.Fprintf(w, "  %-18s %10d %10s %10s %10s %10s\n",
				st.Stage, st.Count, ns(st.P50), ns(st.P90), ns(st.P99), ns(st.Max))
		}
		fmt.Fprintln(w)
	}

	hot := p.HotStates(cfg.top)
	fmt.Fprintf(w, "top %d hot states (of %d visited):\n", len(hot), len(p.HotStates(0)))
	fmt.Fprintf(w, "  %4s  %-9s %-6s %10s %7s %7s  %s\n",
		"#", "automaton", "state", "visits", "share", "cum", "rules")
	var cum float64
	for i, h := range hot {
		cum += h.Share
		fmt.Fprintf(w, "  %4d  %-9d %-6d %10d %6.1f%% %6.1f%%  %s\n",
			i+1, h.Automaton, h.State, h.Visits, 100*h.Share, 100*cum, ruleList(h.Rules))
	}

	fmt.Fprintf(w, "\ntop rules by absorbed visits (shared states count for every sharer):\n")
	for _, rh := range p.HotRules(cfg.top) {
		pat := rh.Pattern
		if len(pat) > 48 {
			pat = pat[:45] + "..."
		}
		fmt.Fprintf(w, "  rule %-4d %5.1f%%  %q\n", rh.Rule, 100*rh.Share, pat)
	}
}

// ruleList renders a compact rule-id list, eliding long ones.
func ruleList(rules []int) string {
	var b strings.Builder
	for i, id := range rules {
		if i == 8 {
			fmt.Fprintf(&b, ",… (%d total)", len(rules))
			break
		}
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	return b.String()
}

// latencySVG renders the scan-latency distribution's log2 buckets.
func latencySVG(w io.Writer, d imfant.Distribution) error {
	bks := d.Buckets()
	if len(bks) == 0 {
		return fmt.Errorf("mfsaprof: empty latency distribution")
	}
	labels := make([]string, len(bks))
	counts := make([]float64, len(bks))
	for i, b := range bks {
		labels[i] = "≤" + ns(b.Hi)
		counts[i] = float64(b.Count)
	}
	return svgplot.Histogram("Scan latency distribution", "scans", labels, counts).Render(w)
}

// ns renders a nanosecond count as a rounded duration.
func ns(v int64) string {
	d := time.Duration(v)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", v)
	}
}

// printTrace prints the tail of the trace ring.
func printTrace(w io.Writer, rs *imfant.Ruleset, tail int) {
	evs := rs.TraceEvents()
	if len(evs) > tail {
		evs = evs[len(evs)-tail:]
	}
	fmt.Fprintf(w, "\nlast %d trace events:\n", len(evs))
	for _, ev := range evs {
		fmt.Fprintf(w, "  #%-6d %-13s automaton=%d rule=%d offset=%d value=%d\n",
			ev.Seq, ev.Kind, ev.Automaton, ev.Rule, ev.Offset, ev.Value)
	}
}

func writeFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
