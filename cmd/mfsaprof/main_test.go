package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writePatterns(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rules.txt")
	content := "# test rules\nGET /admin\ncmd\\.exe\n(GET|POST) /api\nxyz+\n\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReport(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		patterns:  writePatterns(t),
		dsAbbr:    "BRO",
		size:      32 << 10,
		reps:      3,
		top:       5,
		engine:    "auto",
		keep:      true,
		dot:       filepath.Join(dir, "heat.dot"),
		svg:       filepath.Join(dir, "latency.svg"),
		automaton: 0,
		trace:     64,
	}
	var out strings.Builder
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"execution profile", "scan latency:", "active set:",
		"hot states", "top rules by absorbed visits", "trace events",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	dot, err := os.ReadFile(cfg.dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dot), "digraph mfsa_heat") || !strings.Contains(string(dot), "fillcolor") {
		t.Errorf("heat DOT missing shading:\n%.400s", dot)
	}
	svg, err := os.ReadFile(cfg.svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Errorf("latency SVG not rendered:\n%.200s", svg)
	}
}

func TestRunRequiresInput(t *testing.T) {
	if err := run(config{}, &strings.Builder{}); err == nil {
		t.Fatal("run without -patterns/-anml should fail")
	}
	if err := run(config{patterns: writePatterns(t)}, &strings.Builder{}); err == nil {
		t.Fatal("run without -stream/-dataset should fail")
	}
}

func TestSharesSumToOne(t *testing.T) {
	cfg := config{
		patterns: writePatterns(t),
		dsAbbr:   "DS9",
		size:     16 << 10,
		reps:     2,
		top:      0,
		engine:   "imfant",
	}
	rs, err := compileRuleset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in, err := loadStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := rs.NewScanner()
	for rep := 0; rep < cfg.reps; rep++ {
		sc.Count(in)
	}
	p := rs.Profile()
	var sum float64
	for _, h := range p.HotStates(0) {
		sum += h.Share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("visit shares sum to %f, want ~1.0", sum)
	}
}
