// Command imfant executes MFSAs in extended-ANML form against an input
// stream with the iMFAnt algorithm (§V), in single- or multi-threaded
// configuration (§VI-C) — the Go analogue of the artifact's
// multithreaded_imfant binary.
//
// Usage:
//
//	imfant -anml bro.anml -stream traffic.bin -threads 4
//	imfant -anml bro.anml -dataset BRO -size 1048576 -threads 8 -reps 15
//
// It prints the matching time, match count and throughput; -stats adds the
// Table II active-FSA instrumentation plus a JSON telemetry snapshot
// (scan/byte/match totals and per-rule hit counts) in the same shape the
// library exports through Ruleset.StatsVar; -profile enables the sampling
// state profiler and prints the hottest states with rule attribution and
// per-repetition latency percentiles (see cmd/mfsaprof for the full
// report, heat maps, and SVG output).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	imfant "repro"
	"repro/internal/anml"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/hist"
	"repro/internal/metrics"
	"repro/internal/mfsa"
	"repro/internal/telemetry"
	"repro/obs"
)

func main() {
	var (
		anmlPath = flag.String("anml", "", "extended-ANML file (possibly concatenated documents)")
		stream   = flag.String("stream", "", "input stream file")
		dsAbbr   = flag.String("dataset", "", "generate the stream of this synthetic dataset instead of -stream")
		size     = flag.Int("size", 1<<20, "generated stream size in bytes (with -dataset)")
		threads  = flag.Int("threads", 1, "worker threads")
		reps     = flag.Int("reps", 1, "measurement repetitions (reported time is the average)")
		stats    = flag.Bool("stats", false, "collect active-FSA statistics (Table II)")
		keep     = flag.Bool("keep-on-match", false, "disable the Eq. 5 pop (report longer matches too)")
		profile  = flag.Bool("profile", false, "sample state heat and report the hottest states with rule attribution")
		stride   = flag.Int("stride", 0, "profiler sampling stride in bytes (0 = default 64)")
		serve    = flag.String("serve", "", "serve the obs admin surface (/metrics, /statusz, /tracez) on this address, rescanning the stream in the background")
	)
	flag.Parse()

	if *anmlPath == "" {
		fatal(fmt.Errorf("imfant: -anml is required"))
	}
	if *serve != "" {
		input, err := loadStream(*stream, *dsAbbr, *size)
		if err != nil {
			fatal(err)
		}
		fatal(serveAdmin(*serve, *anmlPath, input, *threads))
	}
	zs, err := loadANML(*anmlPath)
	if err != nil {
		fatal(err)
	}
	programs := make([]*engine.Program, len(zs))
	totalREs := 0
	for i, z := range zs {
		programs[i] = engine.NewProgram(z)
		totalREs += z.NumFSAs()
	}

	input, err := loadStream(*stream, *dsAbbr, *size)
	if err != nil {
		fatal(err)
	}

	cfg := engine.Config{Stats: *stats, KeepOnMatch: *keep}
	var profiles []*engine.Profile
	var repLat hist.Histogram
	if *profile {
		profiles = make([]*engine.Profile, len(programs))
		for i, p := range programs {
			profiles[i] = engine.NewProfile(p, *stride)
		}
		cfg.ProfileFor = func(i int) *engine.Profile { return profiles[i] }
	}
	var results []engine.Result
	var elapsed time.Duration
	for rep := 0; rep < max(1, *reps); rep++ {
		start := time.Now()
		var rpErr error
		results, rpErr = engine.RunParallel(programs, input, *threads, cfg)
		if rpErr != nil {
			fatal(rpErr)
		}
		repDur := time.Since(start)
		elapsed += repDur
		if *profile {
			repLat.Record(repDur.Nanoseconds())
		}
	}
	elapsed /= time.Duration(max(1, *reps))

	matches := engine.TotalMatches(results)
	fmt.Printf("automata:   %d MFSA(s), %d REs\n", len(programs), totalREs)
	fmt.Printf("stream:     %d bytes\n", len(input))
	fmt.Printf("threads:    %d\n", *threads)
	fmt.Printf("time:       %v (avg of %d reps)\n", elapsed, max(1, *reps))
	fmt.Printf("matches:    %d\n", matches)
	fmt.Printf("throughput: %.3g RE·B/s\n",
		metrics.Throughput(1, totalREs, len(input), elapsed))
	if *stats {
		var pairs int64
		maxAct := 0
		for _, r := range results {
			pairs += r.ActivePairsTotal
			if r.MaxActiveFSAs > maxAct {
				maxAct = r.MaxActiveFSAs
			}
		}
		fmt.Printf("avg active: %.2f (state,FSA) pairs per symbol\n", float64(pairs)/float64(len(input)))
		fmt.Printf("max active: %d distinct FSAs\n", maxAct)
		fmt.Printf("telemetry:  %s\n", snapshotJSON(programs, results))
	}
	if *profile {
		printProfile(programs, profiles, repLat.Snapshot())
	}
}

// serveAdmin runs the library-level admin surface: the ANML file becomes a
// Registry version with latency attribution and tracing on, a background
// goroutine keeps matching the stream so the endpoints show live numbers,
// and the obs handler serves /metrics, /statusz, and /tracez until the
// process is killed.
func serveAdmin(addr, anmlPath string, input []byte, threads int) error {
	f, err := os.Open(anmlPath)
	if err != nil {
		return err
	}
	rs, err := imfant.LoadANML(f, imfant.Options{
		Latency:       true,
		TraceCapacity: 1024,
	})
	f.Close()
	if err != nil {
		return err
	}
	reg := imfant.NewRegistryFrom(rs)
	go func() {
		for {
			if _, err := reg.CountParallel(input, threads); err != nil {
				fmt.Fprintln(os.Stderr, "background scan:", err)
			}
			time.Sleep(time.Second)
		}
	}()
	fmt.Printf("serving admin surface on %s (/metrics /statusz /tracez), %d rules, %d-byte stream\n",
		addr, rs.NumRules(), len(input))
	return http.ListenAndServe(addr, obs.Handler(reg))
}

// printProfile renders the sampled hot-state report: per-repetition scan
// latency percentiles and the ten hottest states across all automata,
// attributed to rule ids through the belonging sets.
func printProfile(programs []*engine.Program, profiles []*engine.Profile, lat hist.Snapshot) {
	fmt.Printf("rep latency: p50=%v p90=%v max=%v (%d reps)\n",
		time.Duration(lat.Percentile(0.50)), time.Duration(lat.Percentile(0.90)),
		time.Duration(lat.Max), lat.Count)
	type hot struct {
		automaton, state int
		visits           int64
	}
	var states []hot
	var total, samples int64
	for a, pr := range profiles {
		samples += pr.Samples()
		for q, v := range pr.Visits() {
			if v > 0 {
				states = append(states, hot{a, q, v})
				total += v
			}
		}
	}
	sort.Slice(states, func(i, j int) bool { return states[i].visits > states[j].visits })
	if len(states) > 10 {
		states = states[:10]
	}
	fmt.Printf("profile:     %d samples, %d state visits, top %d states:\n",
		samples, total, len(states))
	for i, h := range states {
		rules := programs[h.automaton].StateRules(h.state)
		fmt.Printf("  %2d. automaton %d state %-5d %8d visits (%5.1f%%)  rules %v\n",
			i+1, h.automaton, h.state, h.visits, 100*float64(h.visits)/float64(total), rules)
	}
}

// snapshotJSON folds the last repetition's results into a telemetry
// collector and renders its expvar JSON form.
func snapshotJSON(programs []*engine.Program, results []engine.Result) string {
	ruleMax := -1
	for _, p := range programs {
		for _, ri := range p.Rules() {
			if ri.RuleID > ruleMax {
				ruleMax = ri.RuleID
			}
		}
	}
	c := telemetry.NewCollector(ruleMax + 1)
	for i, res := range results {
		c.AddScans(1)
		c.AddBytes(int64(res.Symbols))
		c.AddMatches(res.Matches)
		for fsa, n := range res.PerFSA {
			if n != 0 {
				c.AddRuleHits(programs[i].Rules()[fsa].RuleID, n)
			}
		}
	}
	return c.String()
}

func loadANML(path string) ([]*mfsa.MFSA, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return anml.ReadAll(f)
}

func loadStream(path, abbr string, size int) ([]byte, error) {
	switch {
	case path != "" && abbr != "":
		return nil, fmt.Errorf("imfant: -stream and -dataset are mutually exclusive")
	case path != "":
		return os.ReadFile(path)
	case abbr != "":
		s, err := dataset.ByAbbr(abbr)
		if err != nil {
			return nil, err
		}
		return s.Stream(size, 0), nil
	default:
		return nil, fmt.Errorf("imfant: provide -stream FILE or -dataset ABBR")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
