package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/anml"
	"repro/internal/mfsa"
	"repro/internal/nfa"
)

func writeTestANML(t *testing.T, path string, patterns ...string) {
	t.Helper()
	fsas := make([]*nfa.NFA, len(patterns))
	for i, p := range patterns {
		n, err := nfa.Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		fsas[i] = n
	}
	z, err := mfsa.Merge(fsas)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := anml.Write(f, z); err != nil {
		t.Fatal(err)
	}
}

func TestLoadANML(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rules.anml")
	writeTestANML(t, path, "abc", "abd")
	zs, err := loadANML(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(zs) != 1 || zs[0].NumFSAs() != 2 {
		t.Fatalf("loaded %d documents, R=%d", len(zs), zs[0].NumFSAs())
	}
	if _, err := loadANML(filepath.Join(dir, "missing.anml")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadStream(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.bin")
	if err := os.WriteFile(path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	in, err := loadStream(path, "", 0)
	if err != nil || string(in) != "payload" {
		t.Fatalf("in=%q err=%v", in, err)
	}
	gen, err := loadStream("", "BRO", 4096)
	if err != nil || len(gen) != 4096 {
		t.Fatalf("generated len=%d err=%v", len(gen), err)
	}
	if _, err := loadStream(path, "BRO", 0); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := loadStream("", "", 0); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := loadStream("", "NOPE", 16); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
