// Command mfsac is the MFSA compiler: it runs the paper's multi-level
// compilation framework (§IV) over a ruleset of POSIX EREs — front-end
// analysis, Thompson construction, single-FSA optimization, merging with a
// chosen merging factor M, and extended-ANML generation — and reports the
// per-stage times and the compression achieved.
//
// Usage:
//
//	mfsac -rules rules.txt -m 50 -o out.anml
//	mfsac -dataset BRO -m 0 -o bro.anml        # synthetic benchmark ruleset
//
// The rules file holds one ERE per line; blank lines and lines starting
// with '#' are skipped. -m 0 merges the entire ruleset into one MFSA
// ("M = all"); -m 1 disables merging.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/anml"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/mfsa"
	"repro/internal/pipeline"
	"repro/internal/snort"
)

func main() {
	var (
		rulesPath = flag.String("rules", "", "file with one POSIX ERE per line")
		snortPath = flag.String("snort", "", "Snort rules file (content/pcre options are translated)")
		dsAbbr    = flag.String("dataset", "", "synthetic dataset abbreviation (BRO, DS9, PEN, PRO, RG1, TCP)")
		m         = flag.Int("m", 0, "merging factor M (0 = all, 1 = no merging)")
		outPath   = flag.String("o", "", "output extended-ANML path (default: stats only)")
		stePath   = flag.String("ste", "", "also emit homogeneous (STE) ANML to this path")
		dotPath   = flag.String("dot", "", "also emit a Graphviz rendering to this path")
		quiet     = flag.Bool("q", false, "suppress the stats report")
	)
	flag.Parse()

	patterns, err := loadRules(*rulesPath, *dsAbbr, *snortPath)
	if err != nil {
		fatal(err)
	}

	var sink *os.File
	if *outPath != "" {
		sink, err = os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer sink.Close()
	}

	var out *pipeline.Output
	if sink != nil {
		out, err = pipeline.Compile(patterns, *m, sink)
	} else {
		out, err = pipeline.Compile(patterns, *m, nil)
	}
	if err != nil {
		fatal(err)
	}

	if *stePath != "" {
		f, err := os.Create(*stePath)
		if err != nil {
			fatal(err)
		}
		for _, z := range out.MFSAs {
			if err := anml.WriteSTE(f, anml.Homogenize(z)); err != nil {
				f.Close()
				fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			fatal(err)
		}
		for _, z := range out.MFSAs {
			if err := mfsa.WriteDOT(f, z); err != nil {
				f.Close()
				fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *quiet {
		return
	}
	c := metrics.MeasureCompression(out.FSAs, out.MFSAs)
	fmt.Printf("rules:        %d\n", len(out.FSAs))
	fmt.Printf("merging M:    %s → %d MFSA(s)\n", mLabel(*m), len(out.MFSAs))
	fmt.Printf("states:       %d → %d  (%.2f%% compression)\n", c.StatesBefore, c.StatesAfter, c.StatesPct())
	fmt.Printf("transitions:  %d → %d  (%.2f%% compression)\n", c.TransBefore, c.TransAfter, c.TransPct())
	fmt.Printf("anml bytes:   %d\n", out.ANMLBytes)
	t := out.Times
	fmt.Printf("stages:       FE %v | AST→FSA %v | ME-single %v | ME-merging %v | BE %v | total %v\n",
		t.FrontEnd, t.ASTToFSA, t.SingleME, t.MergeME, t.BackEnd, t.Total())
}

func mLabel(m int) string {
	if m <= 0 {
		return "all"
	}
	return fmt.Sprintf("%d", m)
}

func loadRules(path, abbr, snortPath string) ([]string, error) {
	sources := 0
	for _, s := range []string{path, abbr, snortPath} {
		if s != "" {
			sources++
		}
	}
	if sources > 1 {
		return nil, fmt.Errorf("mfsac: -rules, -dataset and -snort are mutually exclusive")
	}
	switch {
	case snortPath != "":
		f, err := os.Open(snortPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rules, skipped, err := snort.ParseRules(f)
		if err != nil {
			return nil, err
		}
		if len(rules) == 0 {
			return nil, fmt.Errorf("mfsac: no translatable rules in %s", snortPath)
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "mfsac: skipped %d rules without content/pcre options\n", skipped)
		}
		out := make([]string, len(rules))
		for i, r := range rules {
			out[i] = r.Pattern
		}
		return out, nil
	case abbr != "":
		s, err := dataset.ByAbbr(abbr)
		if err != nil {
			return nil, err
		}
		return s.Patterns(), nil
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var out []string
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			out = append(out, line)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("mfsac: no rules in %s", path)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("mfsac: provide -rules FILE or -dataset ABBR")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
