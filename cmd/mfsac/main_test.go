package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadRulesFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rules.txt")
	content := "# comment\nGET /a\n\nGET /b\n  cmd\\.exe  \n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	rules, err := loadRules(path, "", "")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"GET /a", "GET /b", `cmd\.exe`}
	if len(rules) != len(want) {
		t.Fatalf("rules=%v", rules)
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("rule %d = %q, want %q", i, rules[i], want[i])
		}
	}
}

func TestLoadRulesDataset(t *testing.T) {
	rules, err := loadRules("", "BRO", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 217 {
		t.Fatalf("rules=%d", len(rules))
	}
}

func TestLoadRulesErrors(t *testing.T) {
	if _, err := loadRules("", "", ""); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := loadRules("x", "BRO", ""); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := loadRules("/nonexistent/rules", "", ""); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := loadRules("", "NOPE", ""); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("# only comments\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadRules(empty, "", ""); err == nil {
		t.Fatal("empty ruleset accepted")
	}
}

func TestMLabel(t *testing.T) {
	if mLabel(0) != "all" || mLabel(5) != "5" {
		t.Fatal("mLabel wrong")
	}
}

func TestLoadRulesSnort(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rules.snort")
	content := `# test ruleset
alert tcp any any -> any 80 (msg:"admin"; content:"GET /admin";)
alert tcp any any -> any any (pcre:"/cmd[0-9]+/";)
alert icmp any any -> any any (msg:"no pattern"; sid:9;)
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	rules, err := loadRules("", "", path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules=%v", rules)
	}
	if rules[0] != "GET /admin" || rules[1] != "cmd[0-9]+" {
		t.Fatalf("rules=%v", rules)
	}
	if _, err := loadRules("x", "", path); err == nil {
		t.Fatal("multiple sources accepted")
	}
}
