package imfant

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faultpoint"
)

// The chaos conformance suite drives scheduled fault storms through the
// production degradation machinery and asserts the suite-wide invariant:
// under ANY schedule, a scan returns either byte-identical matches to the
// fault-free oracle or a typed error — never silent truncation.

// chaosPatterns mixes factor-bearing rules (so the prefilter gates some
// automata), factor-less rules (so some always run), and lazy-cache
// churners (so tiny caches genuinely thrash).
var chaosPatterns = []string{
	"GET /admin",
	"cmd\\.exe",
	"needle[0-9]+",
	"a+b",
	"(ab|ba)+c",
	"end$",
}

// chaosInput builds a deterministic ~8 KiB payload spanning several engine
// checkpoints, with matches for every rule sprinkled through lazy-state
// churn.
func chaosInput() []byte {
	var b bytes.Buffer
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 400; i++ {
		for j := 0; j < 12; j++ {
			b.WriteByte("ab"[rng.Intn(2)])
		}
		switch i % 25 {
		case 3:
			b.WriteString(" GET /admin ")
		case 9:
			b.WriteString(" cmd.exe ")
		case 14:
			fmt.Fprintf(&b, " needle%03d ", rng.Intn(1000))
		case 19:
			b.WriteString(" abbac ")
		default:
			fmt.Fprintf(&b, " junk%04d ", rng.Intn(10000))
		}
	}
	b.WriteString("end")
	return b.Bytes()
}

type chaosConfig struct {
	name string
	opts Options
}

// chaosConfigs is the engine × prefilter × accel matrix, plus a tiny-cache
// lazy variant whose real thrash path interleaves with the injected one.
func chaosConfigs() []chaosConfig {
	engines := []struct {
		name string
		keep bool
		mode EngineMode
		cap  int
	}{
		{"imfant", false, EngineIMFAnt, 0},
		{"lazy", true, EngineLazyDFA, 0},
		{"lazy-tiny", true, EngineLazyDFA, 3},
	}
	prefs := []struct {
		name string
		m    PrefilterMode
	}{{"pf-on", PrefilterOn}, {"pf-off", PrefilterOff}}
	accels := []struct {
		name string
		m    AccelMode
	}{{"accel-on", AccelOn}, {"accel-off", AccelOff}}
	var out []chaosConfig
	for _, e := range engines {
		for _, p := range prefs {
			for _, a := range accels {
				out = append(out, chaosConfig{
					name: e.name + "/" + p.name + "/" + a.name,
					opts: Options{KeepOnMatch: e.keep, Engine: e.mode,
						LazyDFAMaxStates: e.cap, Prefilter: p.m, Accel: a.m},
				})
			}
		}
	}
	return out
}

// chaosSchedules is the storm catalog: single points, deterministic
// cadences, seeded randomized mixes, and a union storm.
func chaosSchedules() []struct {
	name  string
	sched faultpoint.Schedule
} {
	return []struct {
		name  string
		sched faultpoint.Schedule
	}{
		{"flush-storm", faultpoint.Every(faultpoint.LazyFlush, 1)},
		{"thrash-early", faultpoint.OnHit(faultpoint.LazyThrash, 1)},
		{"thrash-late", faultpoint.OnHit(faultpoint.LazyThrash, 3)},
		{"alloc-pressure", faultpoint.Every(faultpoint.AllocCap, 2)},
		{"spurious-wake", faultpoint.OnHit(faultpoint.PrefilterWake, 1)},
		{"random-mix", faultpoint.Random(42, map[faultpoint.Point]float64{
			faultpoint.LazyFlush:     0.3,
			faultpoint.LazyThrash:    0.1,
			faultpoint.AllocCap:      0.25,
			faultpoint.PrefilterWake: 0.5,
		})},
		{"union-storm", faultpoint.Union(
			faultpoint.Every(faultpoint.LazyFlush, 2),
			faultpoint.Every(faultpoint.AllocCap, 3),
			faultpoint.OnHit(faultpoint.LazyThrash, 5),
			faultpoint.OnHit(faultpoint.PrefilterWake, 1),
		)},
	}
}

// typedScanErr reports whether err belongs to the typed-failure contract: a
// degradation outcome a caller can program against, as opposed to silent
// corruption.
func typedScanErr(err error) bool {
	var wp *engine.WorkerPanicError
	return errors.Is(err, ErrScanTimeout) ||
		errors.Is(err, ErrOverloaded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.As(err, &wp)
}

// checkChaosBlock runs one faulted block scan and asserts the invariant.
func checkChaosBlock(t *testing.T, rs *Ruleset, input []byte, oracle []Match) {
	t.Helper()
	got, err := rs.FindAllContext(context.Background(), input)
	if err != nil {
		if !typedScanErr(err) {
			t.Fatalf("block scan failed with untyped error: %v", err)
		}
		return
	}
	if !reflect.DeepEqual(got, oracle) {
		t.Fatalf("block scan diverged under faults: %d matches, oracle %d",
			len(got), len(oracle))
	}
}

// checkChaosStream runs one faulted chunked stream and asserts the
// invariant.
func checkChaosStream(t *testing.T, rs *Ruleset, input []byte, oracle []Match, chunk int) {
	t.Helper()
	var got []Match
	sm := rs.NewStreamMatcher(func(m Match) { got = append(got, m) })
	rest := input
	for len(rest) > 0 {
		n := chunk
		if n > len(rest) {
			n = len(rest)
		}
		if _, err := sm.Write(rest[:n]); err != nil {
			if !typedScanErr(err) {
				t.Fatalf("stream write failed with untyped error: %v", err)
			}
			sm.Close()
			return
		}
		rest = rest[n:]
	}
	if err := sm.Close(); err != nil {
		if !typedScanErr(err) {
			t.Fatalf("stream close failed with untyped error: %v", err)
		}
		return
	}
	sortMatches(got)
	if !reflect.DeepEqual(got, oracle) {
		t.Fatalf("chunk=%d stream diverged under faults: %d matches, oracle %d",
			chunk, len(got), len(oracle))
	}
}

// TestChaosConformance is the suite core: every config in the engine ×
// prefilter × accel matrix, under every scheduled storm, must reproduce the
// fault-free oracle byte-identically (or fail typed) on both the block and
// the chunked-stream paths.
func TestChaosConformance(t *testing.T) {
	input := chaosInput()
	var totalFired int64
	for _, cfg := range chaosConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			rs := MustCompile(chaosPatterns, cfg.opts)
			oracle := rs.FindAll(input)
			if len(oracle) == 0 {
				t.Fatal("bad fixture: fault-free oracle found no matches")
			}
			for _, sc := range chaosSchedules() {
				in := faultpoint.New(sc.sched)
				rs.setFaultInjector(in)
				checkChaosBlock(t, rs, input, oracle)
				for _, chunk := range []int{1 << 20, 777, 64} {
					checkChaosStream(t, rs, input, oracle, chunk)
				}
				rs.setFaultInjector(nil)
				totalFired += in.TotalFired()
				if st := rs.Stats(); st.Degraded == nil {
					t.Fatalf("schedule %s: Stats().Degraded is nil", sc.name)
				}
			}
		})
	}
	// Potency guard: a storm catalog that never fires proves nothing.
	if totalFired == 0 {
		t.Fatal("no fault fired across the whole matrix; schedules are inert")
	}
}

// TestChaosWorkerPanic storms the parallel path: every CountParallel call
// either agrees with the oracle count or fails with the contained, typed
// *engine.WorkerPanicError — and every panic is accounted in
// Stats().Degraded.WorkerPanics.
func TestChaosWorkerPanic(t *testing.T) {
	input := chaosInput()
	rs := MustCompile(chaosPatterns, Options{Prefilter: PrefilterOff})
	want, err := rs.CountParallel(input, 4)
	if err != nil {
		t.Fatal(err)
	}
	in := faultpoint.New(faultpoint.Random(7, map[faultpoint.Point]float64{
		faultpoint.WorkerPanic: 0.25,
	}))
	rs.setFaultInjector(in)
	var failures int64
	for i := 0; i < 40; i++ {
		got, err := rs.CountParallel(input, 4)
		if err != nil {
			var wp *engine.WorkerPanicError
			if !errors.As(err, &wp) {
				t.Fatalf("iteration %d: untyped parallel error: %v", i, err)
			}
			failures++
			continue
		}
		if got != want {
			t.Fatalf("iteration %d: count %d, oracle %d (silent divergence)", i, got, want)
		}
	}
	rs.setFaultInjector(nil)
	if failures == 0 {
		t.Fatal("panic schedule never fired across 40 parallel scans")
	}
	if got := rs.Stats().Degraded.WorkerPanics; got < failures {
		t.Fatalf("Degraded.WorkerPanics = %d, want >= %d (joined panics counted individually)",
			got, failures)
	}
}

// TestChaosStallTimeout combines the ChunkStall fault with ScanTimeout: a
// wedged chunk must surface as the typed ErrScanTimeout (wrapping
// context.DeadlineExceeded), counted in Degraded.ScanTimeouts — the timeout
// rung of the ladder, driven deterministically.
func TestChaosStallTimeout(t *testing.T) {
	input := chaosInput()
	rs := MustCompile(chaosPatterns, Options{
		MergeFactor: 1, // several automata: the between-automata poll cuts off
		ScanTimeout: 20 * time.Millisecond,
	})
	rs.setFaultInjector(faultpoint.New(faultpoint.Every(faultpoint.ChunkStall, 1)).
		WithStall(30 * time.Millisecond))
	_, err := rs.FindAllContext(context.Background(), input)
	if !errors.Is(err, ErrScanTimeout) {
		t.Fatalf("stalled scan error = %v, want ErrScanTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("ErrScanTimeout must wrap context.DeadlineExceeded")
	}
	rs.setFaultInjector(nil)
	if got := rs.Stats().Degraded.ScanTimeouts; got < 1 {
		t.Fatalf("Degraded.ScanTimeouts = %d, want >= 1", got)
	}
	// The same stall without a timeout budget is only slow, never wrong.
	rs2 := MustCompile(chaosPatterns, Options{})
	oracle := rs2.FindAll(input)
	rs2.setFaultInjector(faultpoint.New(faultpoint.Every(faultpoint.ChunkStall, 3)).
		WithStall(time.Millisecond))
	got, err := rs2.FindAllContext(context.Background(), input)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, oracle) {
		t.Fatal("stalls without a budget changed the match set")
	}
}

// TestChaosHotSwap overlays fault storms on registry hot-swap: scans routed
// through a registry whose current version is swapped mid-traffic, with
// faults armed on both versions, must still land on exactly one version's
// oracle or fail typed.
func TestChaosHotSwap(t *testing.T) {
	input := chaosInput()
	opts := Options{KeepOnMatch: true, Engine: EngineLazyDFA, LazyDFAMaxStates: 3}
	rs1 := MustCompile(chaosPatterns, opts)
	rs2 := MustCompile(chaosPatterns[:4], opts)
	oracle1 := rs1.FindAll(input)
	oracle2 := rs2.FindAll(input)
	if reflect.DeepEqual(oracle1, oracle2) {
		t.Fatal("bad fixture: both versions match identically")
	}
	in := faultpoint.New(faultpoint.Random(13, map[faultpoint.Point]float64{
		faultpoint.LazyFlush:  0.3,
		faultpoint.LazyThrash: 0.15,
		faultpoint.AllocCap:   0.2,
	}))
	rs1.setFaultInjector(in)
	rs2.setFaultInjector(in)
	r := NewRegistryFrom(rs1)
	for i := 0; i < 20; i++ {
		if i%3 == 2 {
			if i%2 == 0 {
				r.Swap(rs2)
			} else {
				r.Swap(rs1)
			}
		}
		got, err := r.FindAllContext(context.Background(), input)
		if err != nil {
			if !typedScanErr(err) {
				t.Fatalf("iteration %d: untyped error: %v", i, err)
			}
			continue
		}
		if !reflect.DeepEqual(got, oracle1) && !reflect.DeepEqual(got, oracle2) {
			t.Fatalf("iteration %d: match list is neither version's oracle (%d matches)",
				i, len(got))
		}
	}
	if in.TotalFired() == 0 {
		t.Fatal("hot-swap storm never fired")
	}
	if err := r.DrainOld(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// FuzzFaultSchedule feeds arbitrary bytes through faultpoint.FromBytes and
// asserts the conformance invariant for whatever schedule falls out — the
// fuzzable face of the chaos suite.
func FuzzFaultSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1})
	f.Add([]byte{1, 1, 200})
	f.Add([]byte{2, 0, 2, 5, 1, 128, 0, 1, 255})
	f.Add([]byte{5, 0, 1, 1, 0, 1, 2, 0, 1})

	input := chaosInput()
	type fixture struct {
		rs     *Ruleset
		oracle []Match
	}
	var fixtures []fixture
	for _, opts := range []Options{
		{Engine: EngineIMFAnt, Prefilter: PrefilterOn},
		{KeepOnMatch: true, Engine: EngineLazyDFA, LazyDFAMaxStates: 3, Prefilter: PrefilterOn},
	} {
		rs := MustCompile(chaosPatterns, opts)
		fixtures = append(fixtures, fixture{rs: rs, oracle: rs.FindAll(input)})
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		sched := faultpoint.FromBytes(data)
		for _, fx := range fixtures {
			fx.rs.setFaultInjector(faultpoint.New(sched))
			got, err := fx.rs.FindAllContext(context.Background(), input)
			if err != nil {
				if !typedScanErr(err) {
					t.Fatalf("untyped error under fuzzed schedule %x: %v", data, err)
				}
			} else if !reflect.DeepEqual(got, fx.oracle) {
				t.Fatalf("fuzzed schedule %x diverged: %d matches, oracle %d",
					data, len(got), len(fx.oracle))
			}
			var streamed []Match
			sm := fx.rs.NewStreamMatcher(func(m Match) { streamed = append(streamed, m) })
			if _, err := sm.Write(input); err == nil {
				err = sm.Close()
				if err == nil {
					sortMatches(streamed)
					if !reflect.DeepEqual(streamed, fx.oracle) {
						t.Fatalf("fuzzed schedule %x diverged on stream: %d matches, oracle %d",
							data, len(streamed), len(fx.oracle))
					}
				}
			} else {
				sm.Close()
			}
			if err != nil && !typedScanErr(err) {
				t.Fatalf("untyped stream error under fuzzed schedule %x: %v", data, err)
			}
			fx.rs.setFaultInjector(nil)
		}
	})
}
