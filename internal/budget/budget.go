// Package budget defines the shared sentinel for resource-budget
// violations across the compilation pipeline. Every stage that enforces a
// limit — pattern length and nesting depth in the Front-End, state caps in
// loop expansion, the total-state cap in merging — wraps this sentinel, so
// callers can classify a failure as "input exceeded the configured budgets"
// (as opposed to a syntax error) with a single errors.Is check, regardless
// of which stage tripped.
package budget

import (
	"errors"
	"fmt"
)

// Err is the sentinel wrapped by every budget violation.
var Err = errors.New("resource budget exceeded")

// Errorf builds a budget-violation error: the formatted message, wrapping
// Err so that errors.Is(err, budget.Err) reports true.
func Errorf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, Err)...)
}

// Is reports whether err is (or wraps) a budget violation.
func Is(err error) bool { return errors.Is(err, Err) }
