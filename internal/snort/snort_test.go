package snort

import (
	"os"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/mfsa"
	"repro/internal/nfa"
)

func parseOne(t *testing.T, line string) Rule {
	t.Helper()
	rules, skipped, err := ParseRules(strings.NewReader(line))
	if err != nil {
		t.Fatalf("%s: %v", line, err)
	}
	if len(rules) != 1 || skipped != 0 {
		t.Fatalf("%s: rules=%d skipped=%d", line, len(rules), skipped)
	}
	return rules[0]
}

func TestContentRule(t *testing.T) {
	r := parseOne(t, `alert tcp any any -> any 80 (msg:"WEB admin"; content:"GET /admin"; sid:1;)`)
	if r.Msg != "WEB admin" {
		t.Fatalf("msg=%q", r.Msg)
	}
	if r.Pattern != "GET /admin" {
		t.Fatalf("pattern=%q", r.Pattern)
	}
}

func TestContentEscaping(t *testing.T) {
	r := parseOne(t, `alert tcp any any -> any any (content:"a.b(c)*";)`)
	if r.Pattern != `a\.b\(c\)\*` {
		t.Fatalf("pattern=%q", r.Pattern)
	}
	if _, err := nfa.Compile(r.Pattern); err != nil {
		t.Fatal(err)
	}
}

func TestHexBlocks(t *testing.T) {
	r := parseOne(t, `alert tcp any any -> any any (content:"|90 90|X|41|";)`)
	if r.Pattern != `\x90\x90X\x41` {
		t.Fatalf("pattern=%q", r.Pattern)
	}
}

func TestMultipleContentsGap(t *testing.T) {
	r := parseOne(t, `alert tcp any any -> any any (content:"GET"; content:"passwd";)`)
	if r.Pattern != "GET.*passwd" {
		t.Fatalf("pattern=%q", r.Pattern)
	}
}

func TestNocase(t *testing.T) {
	r := parseOne(t, `alert tcp any any -> any any (content:"Ab1"; nocase;)`)
	if r.Pattern != "[aA][bB]1" {
		t.Fatalf("pattern=%q", r.Pattern)
	}
}

func TestPcreRule(t *testing.T) {
	r := parseOne(t, `alert tcp any any -> any any (pcre:"/cmd[0-9]{1,3}/";)`)
	if r.Pattern != "cmd[0-9]{1,3}" {
		t.Fatalf("pattern=%q", r.Pattern)
	}
	if _, err := nfa.Compile(r.Pattern); err != nil {
		t.Fatal(err)
	}
}

func TestPcreCaseInsensitive(t *testing.T) {
	r := parseOne(t, `alert tcp any any -> any any (pcre:"/select[0-9]x/i";)`)
	want := "[sS][eE][lL][eE][cC][tT][0-9][xX]"
	if r.Pattern != want {
		t.Fatalf("pattern=%q want %q", r.Pattern, want)
	}
}

func TestContentPlusPcre(t *testing.T) {
	r := parseOne(t, `alert tcp any any -> any any (content:"POST"; pcre:"/user=[a-z]+/";)`)
	if r.Pattern != "POST.*user=[a-z]+" {
		t.Fatalf("pattern=%q", r.Pattern)
	}
}

func TestSkipsAndComments(t *testing.T) {
	src := `# comment
alert icmp any any -> any any (msg:"no content"; sid:2;)

alert tcp any any -> any any (content:"x1y2";)
`
	rules, skipped, err := ParseRules(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || skipped != 1 {
		t.Fatalf("rules=%d skipped=%d", len(rules), skipped)
	}
	if rules[0].Line != 4 {
		t.Fatalf("line=%d", rules[0].Line)
	}
}

func TestSemicolonInsideQuotes(t *testing.T) {
	r := parseOne(t, `alert tcp any any -> any any (msg:"a;b"; content:"x;y";)`)
	if r.Msg != "a;b" || r.Pattern != "x;y" {
		t.Fatalf("msg=%q pattern=%q", r.Msg, r.Pattern)
	}
}

func TestErrors(t *testing.T) {
	for _, line := range []string{
		`alert tcp any any -> any any (content:"|9|";)`,
		`alert tcp any any -> any any (content:"|90";)`,
		`alert tcp any any -> any any (content:"";)`,
		`alert tcp any any -> any any (pcre:"nope";)`,
		`alert tcp any any -> any any (pcre:"/x/Z";)`,
		`alert tcp any any -> any any (content:"unterminated)`,
	} {
		if _, _, err := ParseRules(strings.NewReader(line)); err == nil {
			t.Errorf("%s: no error", line)
		}
	}
}

func TestDefaultMsg(t *testing.T) {
	r := parseOne(t, `alert tcp any any -> any any (content:"abc";)`)
	if !strings.Contains(r.Msg, "rule@") {
		t.Fatalf("msg=%q", r.Msg)
	}
}

func TestTranslatedRulesetCompiles(t *testing.T) {
	src := `
alert tcp any any -> any 80 (msg:"scan 1"; content:"GET /cgi-bin/"; content:".sh"; nocase;)
alert tcp any any -> any 80 (msg:"scan 2"; pcre:"/User-Agent. (sqlmap|nikto)/";)
alert tcp any any -> any any (msg:"shell"; content:"|2f|bin|2f|sh";)
alert tcp any any -> any any (msg:"sled"; pcre:"/\x90{8,}/";)
`
	rules, _, err := ParseRules(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("rules=%d", len(rules))
	}
	for _, r := range rules {
		if _, err := nfa.Compile(r.Pattern); err != nil {
			t.Errorf("%s (%s): %v", r.Msg, r.Pattern, err)
		}
	}
}

func TestRealisticRulesetFixture(t *testing.T) {
	f, err := os.Open("testdata/web-attacks.rules")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rules, skipped, err := ParseRules(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 11 || skipped != 1 {
		t.Fatalf("rules=%d skipped=%d", len(rules), skipped)
	}
	// Every translated pattern must compile, merge, and match a witness.
	patterns := make([]string, len(rules))
	for i, r := range rules {
		patterns[i] = r.Pattern
	}
	fsas := make([]*nfa.NFA, len(patterns))
	for i, p := range patterns {
		n, err := nfa.Compile(p)
		if err != nil {
			t.Fatalf("%s (%s): %v", rules[i].Msg, p, err)
		}
		fsas[i] = n
	}
	z, err := mfsa.Merge(fsas)
	if err != nil {
		t.Fatal(err)
	}
	prog := engine.NewProgram(z)
	payload := []byte("GET /cgi-bin/phf?Q= HTTP/1.0\r\n" +
		"User-Agent: sqlmap\r\nid=1 UNION  SELECT pass FROM users\r\n" +
		"CMD.EXE \x90\x90\x90\x90\x90\x90\x90\x90\x90")
	res := engine.Run(prog, payload, engine.Config{})
	hit := map[int]bool{}
	for fsa, c := range res.PerFSA {
		if c > 0 {
			hit[fsa] = true
		}
	}
	for _, want := range []int{0, 2, 5, 8, 10} { // phf, cmd.exe, union, sled, scanner UA
		if !hit[want] {
			t.Errorf("rule %d (%s) did not fire", want, rules[want].Msg)
		}
	}
}
