// Package snort translates a practical subset of Snort rule syntax into the
// POSIX EREs this library compiles. The evaluation rulesets of the paper
// (Bro217, the TCP class) descend from exactly such IDS rules, so this
// front-end lets real rule files feed the MFSA pipeline.
//
// Supported per rule: any number of `content:"…";` options (hex blocks in
// |..| notation, optional `nocase`), `pcre:"/…/"` options (the expression
// is taken verbatim as an ERE; unsupported PCRE constructs surface as
// compile errors later), and the `msg:"…";` option for naming. Multiple
// content/pcre options concatenate in order with unbounded gaps (`.*`),
// matching Snort's ordered-match semantics. Other options and the rule
// header are ignored.
package snort

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Rule is one translated rule.
type Rule struct {
	// Msg is the rule's msg option, or a generated name.
	Msg string
	// Pattern is the equivalent POSIX ERE.
	Pattern string
	// Line is the 1-based source line.
	Line int
}

// ParseRules reads a Snort rule file and translates every alert/log/pass
// rule that carries at least one content or pcre option. Lines that are
// blank or comments are skipped; rules without matchable options are
// reported in the skipped count.
func ParseRules(r io.Reader) (rules []Rule, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, ok, perr := parseRule(line, lineNo)
		if perr != nil {
			return nil, 0, fmt.Errorf("snort: line %d: %w", lineNo, perr)
		}
		if !ok {
			skipped++
			continue
		}
		rules = append(rules, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return rules, skipped, nil
}

func parseRule(line string, lineNo int) (Rule, bool, error) {
	open := strings.IndexByte(line, '(')
	close_ := strings.LastIndexByte(line, ')')
	if open < 0 || close_ < open {
		return Rule{}, false, nil // headers without options carry no pattern
	}
	body := line[open+1 : close_]
	opts, err := splitOptions(body)
	if err != nil {
		return Rule{}, false, err
	}
	var parts []string
	msg := fmt.Sprintf("rule@%d", lineNo)
	nocasePending := -1
	for _, opt := range opts {
		key, val, hasVal := strings.Cut(opt, ":")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "msg":
			if hasVal {
				msg = strings.Trim(val, `"`)
			}
		case "content":
			if !hasVal {
				return Rule{}, false, fmt.Errorf("content without value")
			}
			pat, err := contentToERE(strings.Trim(val, `"`))
			if err != nil {
				return Rule{}, false, err
			}
			parts = append(parts, pat)
			nocasePending = len(parts) - 1
		case "nocase":
			if nocasePending >= 0 {
				parts[nocasePending] = caseFold(parts[nocasePending])
			}
		case "pcre":
			if !hasVal {
				return Rule{}, false, fmt.Errorf("pcre without value")
			}
			pat, err := pcreToERE(strings.Trim(val, `"`))
			if err != nil {
				return Rule{}, false, err
			}
			parts = append(parts, pat)
			nocasePending = -1
		}
	}
	if len(parts) == 0 {
		return Rule{}, false, nil
	}
	return Rule{Msg: msg, Pattern: strings.Join(parts, ".*"), Line: lineNo}, true, nil
}

// splitOptions cuts the option body at semicolons, honoring quotes.
func splitOptions(body string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(body):
			cur.WriteByte(c)
			i++
			cur.WriteByte(body[i])
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ';' && !inQuote:
			if s := strings.TrimSpace(cur.String()); s != "" {
				out = append(out, s)
			}
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote in options")
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		out = append(out, s)
	}
	return out, nil
}

// contentToERE converts a Snort content string — literal text with |HH HH|
// hex blocks — into an escaped ERE literal.
func contentToERE(s string) (string, error) {
	var out strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '|' {
			end := strings.IndexByte(s[i+1:], '|')
			if end < 0 {
				return "", fmt.Errorf("unterminated hex block in content %q", s)
			}
			hex := strings.Fields(s[i+1 : i+1+end])
			for _, h := range hex {
				if len(h) != 2 || !isHex(h[0]) || !isHex(h[1]) {
					return "", fmt.Errorf("bad hex byte %q in content %q", h, s)
				}
				out.WriteString(`\x` + strings.ToLower(h))
			}
			i += end + 1
			continue
		}
		if c == '\\' && i+1 < len(s) {
			i++
			c = s[i]
		}
		out.WriteString(escapeEREByte(c))
	}
	if out.Len() == 0 {
		return "", fmt.Errorf("empty content")
	}
	return out.String(), nil
}

// pcreToERE strips the /…/flags wrapper; the `i` flag case-folds literal
// letters. The expression body is otherwise passed through and validated by
// the downstream ERE parser.
func pcreToERE(s string) (string, error) {
	if len(s) < 2 || s[0] != '/' {
		return "", fmt.Errorf("pcre %q must be /…/", s)
	}
	end := strings.LastIndexByte(s, '/')
	if end <= 0 {
		return "", fmt.Errorf("pcre %q missing closing slash", s)
	}
	body := s[1:end]
	flags := s[end+1:]
	for _, f := range flags {
		switch f {
		case 'i':
			body = caseFold(body)
		case 's', 'm', 'U', 'R', 'B', 'P', 'H', 'D', 'M', 'C', 'K', 'S', 'Y':
			// Modifiers without an ERE equivalent are dropped; they
			// only loosen where the pattern applies.
		default:
			return "", fmt.Errorf("unsupported pcre flag %q", f)
		}
	}
	if body == "" {
		return "", fmt.Errorf("empty pcre body")
	}
	return body, nil
}

// caseFold rewrites unescaped ASCII letters outside bracket expressions as
// two-case classes: a → [aA].
func caseFold(p string) string {
	var out strings.Builder
	inClass := false
	for i := 0; i < len(p); i++ {
		c := p[i]
		switch {
		case c == '\\' && i+1 < len(p):
			out.WriteByte(c)
			i++
			out.WriteByte(p[i])
		case c == '[' && !inClass:
			inClass = true
			out.WriteByte(c)
		case c == ']' && inClass:
			inClass = false
			out.WriteByte(c)
		case !inClass && c >= 'a' && c <= 'z':
			out.WriteString("[" + string(c) + string(c-32) + "]")
		case !inClass && c >= 'A' && c <= 'Z':
			out.WriteString("[" + string(c+32) + string(c) + "]")
		default:
			out.WriteByte(c)
		}
	}
	return out.String()
}

func escapeEREByte(c byte) string {
	switch c {
	case '.', '*', '+', '?', '(', ')', '[', ']', '{', '}', '|', '^', '$', '\\':
		return "\\" + string(c)
	}
	if c < 0x20 || c >= 0x7f {
		return fmt.Sprintf(`\x%02x`, c)
	}
	return string(c)
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
