package engine

import (
	"testing"
)

// eventsOf collects the raw match events of one Run.
func eventsOf(p *Program, input string, cfg Config) []MatchEvent {
	return Matches(p, []byte(input), cfg)
}

// TestMatchEventsDeduped pins the per-symbol dedup contract: each
// (FSA, end) pair is reported exactly once even when several accepting
// states witness it on the same symbol. a{1,2}b expands to two accepting
// states, both reachable on the final b of "aab".
func TestMatchEventsDeduped(t *testing.T) {
	for _, keep := range []bool{false, true} {
		_, _, p := compileGroup(t, "a{1,2}b")
		events := eventsOf(p, "aab", Config{KeepOnMatch: keep})
		seen := map[MatchEvent]int{}
		for _, e := range events {
			seen[e]++
		}
		for e, n := range seen {
			if n > 1 {
				t.Fatalf("keep=%v: event %+v reported %d times", keep, e, n)
			}
		}
		if len(events) != 1 || events[0] != (MatchEvent{FSA: 0, End: 2}) {
			t.Fatalf("keep=%v: events %v, want exactly [{0 2}]", keep, events)
		}
	}
}

// TestMatchEventsDedupedWide is the same contract on a >64-rule program,
// exercising the multi-word (feedBody) loop rather than the W == 1
// specialization.
func TestMatchEventsDedupedWide(t *testing.T) {
	patterns := make([]string, 70)
	for i := range patterns {
		patterns[i] = "x" // pad the FSA count past one bitset word
	}
	patterns[68] = "a{1,2}b"
	_, _, p := compileGroup(t, patterns...)
	if p.Words() < 2 {
		t.Fatalf("want a multi-word program, got %d word(s)", p.Words())
	}
	events := eventsOf(p, "aab", Config{})
	seen := map[MatchEvent]int{}
	for _, e := range events {
		if seen[e]++; seen[e] > 1 {
			t.Fatalf("event %+v reported twice", e)
		}
	}
	if seen[MatchEvent{FSA: 68, End: 2}] != 1 {
		t.Fatalf("missing the a{1,2}b match: %v", events)
	}
}

// TestMatchCountsAgreePerRule verifies Result.Matches and PerFSA count
// distinct (FSA, end) pairs — the same totals the lazy-DFA engine reports.
func TestMatchCountsAgreePerRule(t *testing.T) {
	_, _, p := compileGroup(t, "a{1,3}b", "ab")
	res := Run(p, []byte("aaab aab ab"), Config{})
	distinct := DistinctEnds(Matches(p, []byte("aaab aab ab"), Config{}), p.NumFSAs())
	var want int64
	for fsa, ends := range distinct {
		want += int64(len(ends))
		if res.PerFSA[fsa] != int64(len(ends)) {
			t.Fatalf("PerFSA[%d] = %d, want %d distinct ends", fsa, res.PerFSA[fsa], len(ends))
		}
	}
	if res.Matches != want {
		t.Fatalf("Matches = %d, want %d distinct events", res.Matches, want)
	}
}
