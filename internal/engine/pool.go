package engine

import "sync"

// Pool executes a fixed set of programs repeatedly, reusing one Runner per
// program so repeated measurements (the 15–30 reps of §VI) do not pay
// per-run state-vector allocations. A Pool is safe for sequential reuse;
// concurrent Run calls on the same Pool are not allowed (the runners are
// shared).
type Pool struct {
	programs []*Program
	runners  []*Runner
}

// NewPool builds a reusable execution pool over programs.
func NewPool(programs []*Program) *Pool {
	p := &Pool{programs: programs, runners: make([]*Runner, len(programs))}
	for i, prog := range programs {
		p.runners[i] = NewRunner(prog)
	}
	return p
}

// Run executes every program over input on `threads` workers with the
// work-queue scheme of §VI-C2, returning per-program results. threads ≤ 0
// uses one worker per program.
func (p *Pool) Run(input []byte, threads int, cfg Config) []Result {
	n := len(p.programs)
	if n == 0 {
		return nil
	}
	if threads <= 0 || threads > n {
		threads = n
	}
	results := make([]Result, n)
	if threads == 1 {
		for i, r := range p.runners {
			results[i] = r.Run(input, cfg)
		}
		return results
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				results[i] = p.runners[i].Run(input, cfg)
			}
		}()
	}
	wg.Wait()
	return results
}
