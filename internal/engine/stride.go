package engine

import (
	"fmt"

	"repro/internal/charset"
	"repro/internal/mfsa"
)

// This file implements a 2-stride variant of iMFAnt — the multi-striding
// optimization of the paper's related work (§VII: Avalle et al. [28],
// Becchi & Crowley [40]): the automaton consumes two input symbols per
// traversal step by fusing pairs of adjacent transitions ahead of time. The
// activation-function algebra is applied twice per fused pair (a loop
// unrolling of Eqs. 4–6), so per-rule matching is unchanged; the paper's
// caveat that multi-stride complexity "comprises all the k-characters
// combinations of adjacent transitions" shows up here as the
// indeg×outdeg pair blow-up that NewStrideProgram bounds.

// stridePair is a fused transition pair q →L1 r →L2 s.
type stridePair struct {
	from, mid, to int32
	second        charset.Set
	bel1, bel2    int32 // transition indices into the base Program
}

// StrideProgram executes an MFSA two bytes per step. Build with
// NewStrideProgram; immutable and safe for concurrent StrideRunner use.
type StrideProgram struct {
	base  *Program
	pairs []stridePair
	// lists[c1] indexes pairs whose first label contains c1.
	lists [256][]int32
	// initLists[c] indexes base transitions leaving an initial state,
	// per enabling symbol — the mid-step rule-start pass.
	initLists [256][]int32
	// finalLists[c] indexes base transitions arriving at an accepting
	// state, per enabling symbol — the mid-step match-report pass (a
	// first-byte arrival must report even when no pair continues on the
	// second byte).
	finalLists [256][]int32
}

// maxStridePairs bounds the fused-pair table; beyond it the quadratic
// blow-up makes striding counterproductive.
const maxStridePairs = 1 << 22

// NewStrideProgram fuses the MFSA's adjacent transition pairs. It fails
// when the pair table would exceed maxStridePairs.
func NewStrideProgram(z *mfsa.MFSA) (*StrideProgram, error) {
	base := NewProgram(z)
	sp := &StrideProgram{base: base}
	// Adjacency by mid state.
	in := make([][]int32, base.numStates)
	out := make([][]int32, base.numStates)
	for i, t := range z.Trans {
		in[t.To] = append(in[t.To], int32(i))
		out[t.From] = append(out[t.From], int32(i))
	}
	for mid := 0; mid < base.numStates; mid++ {
		if len(in[mid])*len(out[mid]) == 0 {
			continue
		}
		if len(sp.pairs)+len(in[mid])*len(out[mid]) > maxStridePairs {
			return nil, fmt.Errorf("engine: 2-stride pair table exceeds %d entries", maxStridePairs)
		}
		for _, t1 := range in[mid] {
			for _, t2 := range out[mid] {
				pi := int32(len(sp.pairs))
				sp.pairs = append(sp.pairs, stridePair{
					from:   int32(z.Trans[t1].From),
					mid:    int32(mid),
					to:     int32(z.Trans[t2].To),
					second: z.Trans[t2].Label,
					bel1:   t1,
					bel2:   t2,
				})
				z.Trans[t1].Label.ForEach(func(c byte) {
					sp.lists[c] = append(sp.lists[c], pi)
				})
			}
		}
	}
	for i, t := range z.Trans {
		if base.hasInit[t.From] {
			t.Label.ForEach(func(c byte) {
				sp.initLists[c] = append(sp.initLists[c], int32(i))
			})
		}
		if z.FinalMask[t.To].Any() {
			t.Label.ForEach(func(c byte) {
				sp.finalLists[c] = append(sp.finalLists[c], int32(i))
			})
		}
	}
	return sp, nil
}

// NumPairs returns the fused-pair count, the §VII complexity metric.
func (sp *StrideProgram) NumPairs() int { return len(sp.pairs) }

// StrideRunner holds the scratch state for one goroutine's stride scans.
type StrideRunner struct {
	sp       *StrideProgram
	cur, nxt *vector
	tmp      []uint64
	emitted  []uint64
}

// NewStrideRunner returns an execution context for sp.
func NewStrideRunner(sp *StrideProgram) *StrideRunner {
	p := sp.base
	return &StrideRunner{
		sp:      sp,
		cur:     newVector(p.numStates, p.words),
		nxt:     newVector(p.numStates, p.words),
		tmp:     make([]uint64, p.words),
		emitted: make([]uint64, p.words),
	}
}

// Run scans input two bytes per step; a trailing odd byte is consumed by
// one base-algorithm step. Matching semantics equal the 1-stride engine's
// up to event multiplicity: the same (FSA, end) may be witnessed by several
// fused pairs, so compare DistinctEnds, not raw counts.
func (r *StrideRunner) Run(input []byte, cfg Config) Result {
	sp := r.sp
	p := sp.base
	W := p.words
	res := Result{PerFSA: make([]int64, p.numFSAs), Symbols: len(input)}
	r.cur.reset(W)
	r.nxt.reset(W)
	last := len(input) - 1

	emit := func(dstBase int, pos int, atEnd bool) (popped uint64) {
		matched := uint64(0)
		for w := 0; w < W; w++ {
			m := r.tmp[w] & p.finalMask[dstBase+w]
			if !atEnd {
				m &^= p.endAnchored[w]
			}
			r.emitted[w] = m
			matched |= m
		}
		if matched == 0 {
			return 0
		}
		for w := 0; w < W; w++ {
			m := r.emitted[w]
			for m != 0 {
				fsa := w*64 + trailingZeros(m&(-m))
				res.Matches++
				res.PerFSA[fsa]++
				if cfg.OnMatch != nil {
					cfg.OnMatch(fsa, pos)
				}
				m &= m - 1
			}
			if !cfg.KeepOnMatch {
				r.tmp[w] &^= r.emitted[w]
			}
		}
		return matched
	}
	activate := func(nxt *vector, to int32) {
		any := uint64(0)
		for w := 0; w < W; w++ {
			any |= r.tmp[w]
		}
		if any == 0 {
			return
		}
		base := int(to) * W
		if !nxt.member[to] {
			nxt.member[to] = true
			nxt.dirty = append(nxt.dirty, to)
		}
		for w := 0; w < W; w++ {
			nxt.j[base+w] |= r.tmp[w]
		}
	}

	pos := 0
	for ; pos+1 < len(input); pos += 2 {
		c1, c2 := input[pos], input[pos+1]
		cur, nxt := r.cur, r.nxt
		secondEnd := pos+1 == last

		// Pass A′: mid-byte match reports — a first-hop arrival at an
		// accepting state reports at pos whether or not any pair
		// continues on c2.
		for _, ti := range sp.finalLists[c1] {
			t := &p.trans[ti]
			srcBase := int(t.from) * W
			belBase := int(ti) * W
			any := uint64(0)
			for w := 0; w < W; w++ {
				v := cur.j[srcBase+w] | p.initAlways[srcBase+w]
				if pos == 0 {
					v |= p.initAtZero[srcBase+w]
				}
				v &= p.bel[belBase+w]
				r.tmp[w] = v
				any |= v
			}
			if any != 0 {
				emit(int(t.to)*W, pos, false)
			}
		}

		// Pass A: fused pairs from active or initial states.
		for _, pi := range sp.lists[c1] {
			pair := &sp.pairs[pi]
			if !pair.second.Contains(c2) {
				continue
			}
			srcBase := int(pair.from) * W
			bel1 := int(pair.bel1) * W
			any := uint64(0)
			for w := 0; w < W; w++ {
				v := cur.j[srcBase+w] | p.initAlways[srcBase+w]
				if pos == 0 {
					v |= p.initAtZero[srcBase+w]
				}
				v &= p.bel[bel1+w]
				r.tmp[w] = v
				any |= v
			}
			if any == 0 {
				continue
			}
			// Mid arrival: apply the Eq. 5 pop to the continuation
			// set without re-reporting (pass A′ already did).
			if !cfg.KeepOnMatch {
				for w := 0; w < W; w++ {
					m := r.tmp[w] & p.finalMask[int(pair.mid)*W+w]
					m &^= p.endAnchored[w]
					r.tmp[w] &^= m
				}
				any = 0
				for w := 0; w < W; w++ {
					any |= r.tmp[w]
				}
				if any == 0 {
					continue
				}
			}
			bel2 := int(pair.bel2) * W
			any = 0
			for w := 0; w < W; w++ {
				r.tmp[w] &= p.bel[bel2+w]
				any |= r.tmp[w]
			}
			if any == 0 {
				continue
			}
			emit(int(pair.to)*W, pos+1, secondEnd)
			activate(nxt, pair.to)
		}

		// Pass B: rules starting at the second byte of the step.
		for _, ti := range sp.initLists[c2] {
			t := &p.trans[ti]
			srcBase := int(t.from) * W
			belBase := int(ti) * W
			any := uint64(0)
			for w := 0; w < W; w++ {
				v := p.initAlways[srcBase+w] & p.bel[belBase+w]
				r.tmp[w] = v
				any |= v
			}
			if any == 0 {
				continue
			}
			emit(int(t.to)*W, pos+1, secondEnd)
			activate(nxt, t.to)
		}

		cur.reset(W)
		r.cur, r.nxt = nxt, cur
	}

	// Odd tail: one base-algorithm step.
	if pos < len(input) {
		c := input[pos]
		cur, nxt := r.cur, r.nxt
		for _, ti := range p.lists[c] {
			t := &p.trans[ti]
			srcBase := int(t.from) * W
			belBase := int(ti) * W
			any := uint64(0)
			for w := 0; w < W; w++ {
				v := cur.j[srcBase+w] | p.initAlways[srcBase+w]
				if pos == 0 {
					v |= p.initAtZero[srcBase+w]
				}
				v &= p.bel[belBase+w]
				r.tmp[w] = v
				any |= v
			}
			if any == 0 {
				continue
			}
			emit(int(t.to)*W, pos, true)
			activate(nxt, t.to)
		}
		cur.reset(W)
		r.cur, r.nxt = nxt, cur
	}
	return res
}
