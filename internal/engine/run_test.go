package engine

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/mfsa"
	"repro/internal/nfa"
)

func compileGroup(t testing.TB, patterns ...string) ([]*nfa.NFA, *mfsa.MFSA, *Program) {
	t.Helper()
	fsas := make([]*nfa.NFA, len(patterns))
	for i, p := range patterns {
		n, err := nfa.Compile(p)
		if err != nil {
			t.Fatalf("compile %q: %v", p, err)
		}
		n.ID = i
		fsas[i] = n
	}
	z, err := mfsa.Merge(fsas)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := mfsa.Validate(z, fsas); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return fsas, z, NewProgram(z)
}

func ends(t *testing.T, p *Program, input string, cfg Config) [][]int {
	t.Helper()
	return DistinctEnds(Matches(p, []byte(input), cfg), p.NumFSAs())
}

func TestPaperFigure6(t *testing.T) {
	// §V walk-through: merging (ad|cb)ab with a(b|c) and matching acbab
	// yields ac and ab for FSA 2 and cbab for FSA 1.
	_, _, p := compileGroup(t, "(ad|cb)ab", "a(b|c)")
	got := ends(t, p, "acbab", Config{})
	want := [][]int{{4}, {1, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("matches %v, want %v", got, want)
	}
}

func TestPaperFigure3(t *testing.T) {
	// §III-B walk-through: z from bcdegh and def. s1 = degh dies at the
	// branch (no match); s2 = bcdef matches def only.
	_, _, p := compileGroup(t, "bcdegh", "def")
	if got := ends(t, p, "degh", Config{}); len(got[0]) != 0 || len(got[1]) != 0 {
		t.Fatalf("degh matched: %v", got)
	}
	got := ends(t, p, "bcdef", Config{})
	want := [][]int{{}, {4}}
	if len(got[0]) != 0 || !reflect.DeepEqual(got[1], want[1]) {
		t.Fatalf("bcdef matches %v, want %v", got, want)
	}
	// The full a1 string matches both: bcdegh contains def? No: d,e,g —
	// def requires f. Only a1 matches.
	got = ends(t, p, "bcdegh", Config{})
	if !reflect.DeepEqual(got[0], []int{5}) || len(got[1]) != 0 {
		t.Fatalf("bcdegh matches %v", got)
	}
}

func TestNoFalseCrossLanguage(t *testing.T) {
	// §III-B: merging a[gj](lm|cd) and kja[gj]cd must not accept kjaglm.
	_, _, p := compileGroup(t, "a[gj](lm|cd)", "kja[gj]cd")
	got := ends(t, p, "kjaglm", Config{})
	// a1 matches "aglm" (ends at 5); a2 must NOT match.
	if len(got[1]) != 0 {
		t.Fatalf("FSA 2 false match: %v", got)
	}
	if !reflect.DeepEqual(got[0], []int{5}) {
		t.Fatalf("FSA 1 matches %v, want [5]", got[0])
	}
	// And the true a2 string still matches.
	got = ends(t, p, "kjagcd", Config{})
	if !reflect.DeepEqual(got[1], []int{5}) {
		t.Fatalf("kjagcd FSA 2 matches %v, want [5]", got[1])
	}
}

func TestScanRestartsAfterDeadPaths(t *testing.T) {
	_, _, p := compileGroup(t, "abc")
	got := ends(t, p, "ababcabc", Config{})
	if !reflect.DeepEqual(got[0], []int{4, 7}) {
		t.Fatalf("matches %v, want [4 7]", got[0])
	}
}

func TestOverlappingMatches(t *testing.T) {
	_, _, p := compileGroup(t, "aa")
	got := ends(t, p, "aaaa", Config{})
	if !reflect.DeepEqual(got[0], []int{1, 2, 3}) {
		t.Fatalf("matches %v, want [1 2 3]", got[0])
	}
}

func TestPopVsKeepSemantics(t *testing.T) {
	// ab*: with the Eq. 5 pop only the shortest match per start survives;
	// with KeepOnMatch every extension is reported.
	_, _, p := compileGroup(t, "ab*")
	pop := ends(t, p, "abb", Config{})
	if !reflect.DeepEqual(pop[0], []int{0}) {
		t.Fatalf("pop matches %v, want [0]", pop[0])
	}
	keep := ends(t, p, "abb", Config{KeepOnMatch: true})
	if !reflect.DeepEqual(keep[0], []int{0, 1, 2}) {
		t.Fatalf("keep matches %v, want [0 1 2]", keep[0])
	}
}

func TestAnchors(t *testing.T) {
	_, _, p := compileGroup(t, "^ab", "ab$", "ab")
	got := ends(t, p, "abxab", Config{})
	if !reflect.DeepEqual(got[0], []int{1}) { // ^ab only at the start
		t.Fatalf("^ab matches %v", got[0])
	}
	if !reflect.DeepEqual(got[1], []int{4}) { // ab$ only at the end
		t.Fatalf("ab$ matches %v", got[1])
	}
	if !reflect.DeepEqual(got[2], []int{1, 4}) {
		t.Fatalf("ab matches %v", got[2])
	}
}

func TestEmptyInput(t *testing.T) {
	_, _, p := compileGroup(t, "ab", "a*")
	res := Run(p, nil, Config{Stats: true})
	if res.Matches != 0 || res.Symbols != 0 {
		t.Fatalf("empty input result %+v", res)
	}
}

func TestPerFSACounts(t *testing.T) {
	_, _, p := compileGroup(t, "ab", "b")
	res := Run(p, []byte("abab"), Config{})
	if res.PerFSA[0] != 2 || res.PerFSA[1] != 2 {
		t.Fatalf("per-FSA %v", res.PerFSA)
	}
	if res.Matches != 4 {
		t.Fatalf("matches=%d", res.Matches)
	}
}

func TestStatsActivity(t *testing.T) {
	_, _, p := compileGroup(t, "a+b", "a+c")
	res := Run(p, []byte("aaaa"), Config{Stats: true})
	if res.ActivePairsTotal == 0 {
		t.Fatal("no activity recorded")
	}
	if res.MaxActiveFSAs != 2 {
		t.Fatalf("MaxActiveFSAs=%d, want 2", res.MaxActiveFSAs)
	}
	if res.AvgActive() <= 0 {
		t.Fatalf("AvgActive=%f", res.AvgActive())
	}
	// Without stats the counters stay zero.
	res = Run(p, []byte("aaaa"), Config{})
	if res.ActivePairsTotal != 0 || res.MaxActiveFSAs != 0 {
		t.Fatal("stats recorded when disabled")
	}
}

func TestRunnerReuse(t *testing.T) {
	_, _, p := compileGroup(t, "abc", "bcd")
	r := NewRunner(p)
	first := r.Run([]byte("abcd"), Config{})
	second := r.Run([]byte("abcd"), Config{})
	if first.Matches != second.Matches {
		t.Fatalf("runner not reusable: %d vs %d", first.Matches, second.Matches)
	}
	// State must not leak across runs.
	third := r.Run([]byte("zzz"), Config{})
	if third.Matches != 0 {
		t.Fatalf("state leaked: %d matches", third.Matches)
	}
}

func TestMatchesDeterministic(t *testing.T) {
	_, _, p := compileGroup(t, "ab", "a[bc]")
	a := Matches(p, []byte("abacab"), Config{})
	b := Matches(p, []byte("abacab"), Config{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("nondeterministic matches")
	}
}

// --- oracle equivalence ---

func randPattern(r *rand.Rand) string {
	frags := []string{"a", "b", "c", "ab", "bc", "a[bc]", "(ab|ba)", "a*", "b+", "c?", "a{2,3}", "[abc]"}
	s := ""
	for i, n := 0, 1+r.Intn(4); i < n; i++ {
		s += frags[r.Intn(len(frags))]
	}
	return s
}

func randInput(r *rand.Rand, n int) []byte {
	alpha := []byte("abc")
	in := make([]byte, n)
	for i := range in {
		in[i] = alpha[r.Intn(3)]
	}
	return in
}

func TestQuickIMFAntMatchesOracle(t *testing.T) {
	for _, keep := range []bool{false, true} {
		r := rand.New(rand.NewSource(21))
		f := func() bool {
			m := 1 + r.Intn(5)
			patterns := make([]string, m)
			for i := range patterns {
				patterns[i] = randPattern(r)
			}
			fsas := make([]*nfa.NFA, m)
			for i, pat := range patterns {
				n, err := nfa.Compile(pat)
				if err != nil {
					return false
				}
				fsas[i] = n
			}
			z, err := mfsa.Merge(fsas)
			if err != nil {
				return false
			}
			p := NewProgram(z)
			in := randInput(r, r.Intn(24))
			cfg := Config{KeepOnMatch: keep}
			got := DistinctEnds(Matches(p, in, cfg), m)
			want := ReferenceScanAll(fsas, in, keep)
			for j := range fsas {
				w := want[j]
				if w == nil {
					w = []int{}
				}
				if !reflect.DeepEqual(got[j], w) {
					t.Logf("keep=%v patterns=%v input=%q FSA %d: engine %v oracle %v",
						keep, patterns, in, j, got[j], w)
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("keep=%v: %v", keep, err)
		}
	}
}

func TestQuickMergedEqualsUnmerged(t *testing.T) {
	// The headline correctness claim: one MFSA reports exactly the same
	// per-RE matches as the standalone FSAs run one by one (M = 1).
	r := rand.New(rand.NewSource(22))
	f := func() bool {
		m := 2 + r.Intn(4)
		patterns := make([]string, m)
		fsas := make([]*nfa.NFA, m)
		for i := range patterns {
			patterns[i] = randPattern(r)
			n, err := nfa.Compile(patterns[i])
			if err != nil {
				return false
			}
			fsas[i] = n
		}
		z, err := mfsa.Merge(fsas)
		if err != nil {
			return false
		}
		merged := NewProgram(z)
		in := randInput(r, r.Intn(32))
		got := DistinctEnds(Matches(merged, in, Config{}), m)
		for j, a := range fsas {
			zj, err := mfsa.Merge([]*nfa.NFA{a})
			if err != nil {
				return false
			}
			single := NewProgram(zj)
			w := DistinctEnds(Matches(single, in, Config{}), 1)[0]
			if !reflect.DeepEqual(got[j], w) {
				t.Logf("patterns=%v input=%q FSA %d: merged %v single %v",
					patterns, in, j, got[j], w)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestListDensity(t *testing.T) {
	_, _, p := compileGroup(t, "[ab]c")
	// [ab] contributes to 2 symbol lists, c to 1: density 3/256.
	if got := p.ListDensity(); got != 3.0/256 {
		t.Fatalf("density=%f", got)
	}
}

func BenchmarkRunSingle(b *testing.B) {
	fsas := make([]*nfa.NFA, 1)
	n, err := nfa.Compile("(GET|POST) /[a-z]{1,8}/x")
	if err != nil {
		b.Fatal(err)
	}
	fsas[0] = n
	z, err := mfsa.Merge(fsas)
	if err != nil {
		b.Fatal(err)
	}
	p := NewProgram(z)
	in := make([]byte, 64<<10)
	rnd := rand.New(rand.NewSource(1))
	for i := range in {
		in[i] = byte('a' + rnd.Intn(26))
	}
	r := NewRunner(p)
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(in, Config{})
	}
}

// TestWideRulesetGenericPath forces the multi-word (W > 1) engine path with
// a ruleset of more than 64 rules and cross-checks it against the oracle —
// the W == 1 fast path and the generic loop must agree.
func TestWideRulesetGenericPath(t *testing.T) {
	var patterns []string
	for i := 0; i < 70; i++ {
		patterns = append(patterns, string(rune('a'+i%3))+string(rune('a'+(i/3)%3))+string(rune('a'+(i/9)%3)))
	}
	patterns = append(patterns, "ab*c", "^aa", "cc$")
	fsas := make([]*nfa.NFA, len(patterns))
	for i, pat := range patterns {
		n, err := nfa.Compile(pat)
		if err != nil {
			t.Fatal(err)
		}
		fsas[i] = n
	}
	z, err := mfsa.Merge(fsas)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProgram(z)
	if p.words < 2 {
		t.Fatalf("expected multi-word program, words=%d", p.words)
	}
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		in := make([]byte, r.Intn(64))
		for i := range in {
			in[i] = byte('a' + r.Intn(3))
		}
		for _, keep := range []bool{false, true} {
			cfg := Config{KeepOnMatch: keep}
			got := DistinctEnds(Matches(p, in, cfg), len(patterns))
			want := ReferenceScanAll(fsas, in, keep)
			for j := range fsas {
				w := want[j]
				if w == nil {
					w = []int{}
				}
				if !reflect.DeepEqual(got[j], w) {
					t.Fatalf("keep=%v input %q rule %d (%s): engine %v oracle %v",
						keep, in, j, patterns[j], got[j], w)
				}
			}
		}
	}
	// Stats path for W > 1.
	res := Run(p, []byte("aaabbbccc"), Config{Stats: true})
	if res.ActivePairsTotal <= 0 || res.MaxActiveFSAs <= 0 {
		t.Fatalf("stats %+v", res)
	}
}

func TestCheckpointDoesNotChangeMatches(t *testing.T) {
	_, _, p := compileGroup(t, "abc", "a[bc]+", "c+a", "xy$")
	rnd := rand.New(rand.NewSource(7))
	in := make([]byte, 40_000)
	for i := range in {
		in[i] = byte('a' + rnd.Intn(4))
	}
	want := Matches(p, in, Config{})
	// Tiny checkpoint blocks exercise the block-splitting path heavily;
	// the event stream must be byte-identical, including the final-block
	// $ anchor handling.
	polls := 0
	got := Matches(p, in, Config{
		Checkpoint:      func() error { polls++; return nil },
		CheckpointEvery: 17,
	})
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("checkpointed scan diverged: %d vs %d events", len(want), len(got))
	}
	if polls < len(in)/17 {
		t.Fatalf("checkpoint polled only %d times", polls)
	}
}

func TestCheckpointCancelStopsFeed(t *testing.T) {
	_, _, p := compileGroup(t, "ab")
	r := NewRunner(p)
	boom := errors.New("cancelled")
	fed := 0
	r.Begin(Config{
		Checkpoint: func() error {
			fed++
			if fed > 2 {
				return boom
			}
			return nil
		},
		CheckpointEvery: 8,
	})
	in := make([]byte, 1024)
	r.Feed(in, false)
	if r.Err() == nil {
		t.Fatal("cancelled runner reports no error")
	}
	sym := r.End().Symbols
	if sym >= len(in) {
		t.Fatalf("runner consumed the whole input despite cancellation (%d bytes)", sym)
	}
	// Further feeds are no-ops.
	r.Feed(in, true)
	if got := r.End().Symbols; got != sym {
		t.Fatalf("Feed after cancellation consumed input: %d -> %d", sym, got)
	}
	if !errors.Is(r.Err(), boom) {
		t.Fatalf("Err() = %v, want %v", r.Err(), boom)
	}
}
