package engine

// feedW1 is the Feed hot loop specialized for words == 1, i.e. MFSAs
// merging at most 64 rules — every M ≤ 64 configuration, and the whole
// M = 1 iNFAnt baseline. The per-transition bitset loops collapse to scalar
// word operations, roughly halving the per-byte cost.
func (r *Runner) feedW1(chunk []byte, final bool) {
	p := r.p
	cfg := r.cfg
	res := &r.res
	last := len(chunk) - 1
	endAnchored := p.endAnchored[0]
	noInits := cfg.NoInits
	accel := cfg.Accel && p.startAccel && !noInits
	// processed: the whole chunk, unless a NoInits scan's vector dies
	// mid-chunk (see feedBody).
	processed := len(chunk)

	for pos := 0; pos < len(chunk); pos++ {
		if noInits && len(r.cur.dirty) == 0 {
			processed = pos
			break
		}
		if accel && len(r.cur.dirty) == 0 && r.offset+pos > 0 {
			// Empty vector mid-stream: jump to the next start byte (see
			// the W>1 loop). Skipped bytes fire no transitions, so neither
			// activations nor match events can be lost.
			j := p.startFinder.Index(chunk[pos:])
			if j < 0 {
				res.AccelBytes += int64(len(chunk) - pos)
				break
			}
			res.AccelBytes += int64(j)
			pos += j
		}
		c := chunk[pos]
		cur, nxt := r.cur, r.nxt
		atEnd := final && pos == last
		// seen dedups per-symbol emissions: several transitions can reach
		// distinct accepting states for the same FSA on one symbol, and
		// each (FSA, end) pair must be reported exactly once.
		seen := uint64(0)
		// Select the init vector once per symbol: the ^-anchored inits
		// participate only in the stream's first step, and NoInits scans
		// carry activations without ever restarting.
		init := p.initAlways
		if noInits {
			init = r.noInit
		} else if r.offset == 0 && pos == 0 {
			init = p.initAll
		}
		for _, ti := range p.lists[c] {
			t := &p.trans[ti]
			src := int(t.from)

			v := (cur.j[src] | init[src]) & p.bel[ti]
			if v == 0 {
				continue
			}

			dst := int(t.to)
			m := v & p.finalMask[dst]
			if !atEnd {
				m &^= endAnchored
			}
			if m != 0 {
				e := m &^ seen
				seen |= m
				for e != 0 {
					fsa := trailingZeros(e & (-e))
					res.Matches++
					res.PerFSA[fsa]++
					if cfg.OnMatch != nil {
						cfg.OnMatch(fsa, r.offset+pos)
					}
					e &= e - 1
				}
				if !cfg.KeepOnMatch {
					v &^= m
					if v == 0 {
						continue
					}
				}
			}

			if !nxt.member[t.to] {
				nxt.member[t.to] = true
				nxt.dirty = append(nxt.dirty, t.to)
			}
			nxt.j[dst] |= v
		}

		if cfg.Stats {
			union := uint64(0)
			pairs := int64(0)
			for _, q := range nxt.dirty {
				v := nxt.j[q]
				pairs += int64(popcount(v))
				union |= v
			}
			res.ActivePairsTotal += pairs
			if d := popcount(union); d > res.MaxActiveFSAs {
				res.MaxActiveFSAs = d
			}
		}

		cur.reset(1)
		r.cur, r.nxt = nxt, cur
	}
	res.Symbols += processed
	r.offset += processed
}
