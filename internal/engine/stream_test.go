package engine

import (
	"math/rand"
	"reflect"
	"repro/internal/mfsa"
	"repro/internal/nfa"
	"testing"
	"testing/quick"
)

// chunkedMatches splits input at the given cut points and scans it through
// Begin/Feed/End, returning the match events with absolute offsets.
func chunkedMatches(p *Program, input []byte, cuts []int, cfg Config) []MatchEvent {
	var out []MatchEvent
	cfg.OnMatch = func(fsa, end int) {
		out = append(out, MatchEvent{FSA: fsa, End: end})
	}
	r := NewRunner(p)
	r.Begin(cfg)
	prev := 0
	for _, cut := range cuts {
		r.Feed(input[prev:cut], false)
		prev = cut
	}
	r.Feed(input[prev:], true)
	r.End()
	return out
}

func TestChunkingInvariance(t *testing.T) {
	_, _, p := compileGroup(t, "abc", "b+c", "a[bc]*d")
	input := []byte("xabcxbbbcxabbcdxabcd")
	want := Matches(p, input, Config{})
	for _, cuts := range [][]int{
		{},
		{1},
		{10},
		{len(input) - 1},
		{1, 2, 3},
		{5, 10, 15},
		{2, 2, 2}, // empty middle chunk
	} {
		got := chunkedMatches(p, input, cuts, Config{})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cuts %v: %v, want %v", cuts, got, want)
		}
	}
}

func TestChunkingAnchors(t *testing.T) {
	_, _, p := compileGroup(t, "^ab", "cd$")
	input := []byte("abxcd")
	want := Matches(p, input, Config{})
	// ^ must only fire on the true stream start, $ only on the true end,
	// regardless of chunking.
	got := chunkedMatches(p, input, []int{2, 4}, Config{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chunked %v, want %v", got, want)
	}
	// A non-final Feed ending exactly at "cd" must not fire the $ rule.
	r := NewRunner(p)
	var events []MatchEvent
	cfg := Config{OnMatch: func(fsa, end int) { events = append(events, MatchEvent{fsa, end}) }}
	r.Begin(cfg)
	r.Feed([]byte("abxcd"), false)
	for _, e := range events {
		if e.FSA == 1 {
			t.Fatalf("$ rule fired before stream end: %v", events)
		}
	}
	r.Feed(nil, true)
	r.End()
}

func TestChunkingMatchSpansBoundary(t *testing.T) {
	_, _, p := compileGroup(t, "hello")
	input := []byte("xxhelloxx")
	got := chunkedMatches(p, input, []int{4}, Config{}) // split inside "hello"
	if len(got) != 1 || got[0].End != 6 {
		t.Fatalf("boundary-spanning match lost: %v", got)
	}
}

func TestBeginResetsState(t *testing.T) {
	_, _, p := compileGroup(t, "ab")
	r := NewRunner(p)
	r.Begin(Config{})
	r.Feed([]byte("a"), false)
	// Restart: the pending 'a' must be forgotten.
	r.Begin(Config{})
	r.Feed([]byte("b"), true)
	if res := r.End(); res.Matches != 0 {
		t.Fatalf("state leaked across Begin: %d matches", res.Matches)
	}
}

func TestQuickChunkingEqualsWhole(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	f := func() bool {
		m := 1 + r.Intn(4)
		patterns := make([]string, m)
		for i := range patterns {
			patterns[i] = randPattern(r)
		}
		p, err := compilePatterns(patterns)
		if err != nil {
			return true
		}
		in := randInput(r, 1+r.Intn(48))
		want := Matches(p, in, Config{})
		// Random cut points.
		nCuts := r.Intn(4)
		cuts := make([]int, nCuts)
		for i := range cuts {
			cuts[i] = r.Intn(len(in) + 1)
		}
		// cuts must be nondecreasing
		for i := 1; i < len(cuts); i++ {
			if cuts[i] < cuts[i-1] {
				cuts[i] = cuts[i-1]
			}
		}
		got := chunkedMatches(p, in, cuts, Config{})
		if !reflect.DeepEqual(got, want) {
			t.Logf("patterns=%v input=%q cuts=%v: %v want %v", patterns, in, cuts, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// compilePatterns merges patterns into one Program without a testing.T, for
// property tests that skip invalid random inputs.
func compilePatterns(patterns []string) (*Program, error) {
	fsas := make([]*nfa.NFA, len(patterns))
	for i, pat := range patterns {
		n, err := nfa.Compile(pat)
		if err != nil {
			return nil, err
		}
		fsas[i] = n
	}
	z, err := mfsa.Merge(fsas)
	if err != nil {
		return nil, err
	}
	return NewProgram(z), nil
}
