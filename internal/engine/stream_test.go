package engine

import (
	"math/rand"
	"reflect"
	"repro/internal/mfsa"
	"repro/internal/nfa"
	"testing"
	"testing/quick"
)

// chunkedMatches splits input at the given cut points and scans it through
// Begin/Feed/End, returning the match events with absolute offsets.
func chunkedMatches(p *Program, input []byte, cuts []int, cfg Config) []MatchEvent {
	var out []MatchEvent
	cfg.OnMatch = func(fsa, end int) {
		out = append(out, MatchEvent{FSA: fsa, End: end})
	}
	r := NewRunner(p)
	r.Begin(cfg)
	prev := 0
	for _, cut := range cuts {
		r.Feed(input[prev:cut], false)
		prev = cut
	}
	r.Feed(input[prev:], true)
	r.End()
	return out
}

func TestChunkingInvariance(t *testing.T) {
	_, _, p := compileGroup(t, "abc", "b+c", "a[bc]*d")
	input := []byte("xabcxbbbcxabbcdxabcd")
	want := Matches(p, input, Config{})
	for _, cuts := range [][]int{
		{},
		{1},
		{10},
		{len(input) - 1},
		{1, 2, 3},
		{5, 10, 15},
		{2, 2, 2}, // empty middle chunk
	} {
		got := chunkedMatches(p, input, cuts, Config{})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cuts %v: %v, want %v", cuts, got, want)
		}
	}
}

func TestChunkingAnchors(t *testing.T) {
	_, _, p := compileGroup(t, "^ab", "cd$")
	input := []byte("abxcd")
	want := Matches(p, input, Config{})
	// ^ must only fire on the true stream start, $ only on the true end,
	// regardless of chunking.
	got := chunkedMatches(p, input, []int{2, 4}, Config{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chunked %v, want %v", got, want)
	}
	// A non-final Feed ending exactly at "cd" must not fire the $ rule.
	r := NewRunner(p)
	var events []MatchEvent
	cfg := Config{OnMatch: func(fsa, end int) { events = append(events, MatchEvent{fsa, end}) }}
	r.Begin(cfg)
	r.Feed([]byte("abxcd"), false)
	for _, e := range events {
		if e.FSA == 1 {
			t.Fatalf("$ rule fired before stream end: %v", events)
		}
	}
	r.Feed(nil, true)
	r.End()
}

func TestChunkingMatchSpansBoundary(t *testing.T) {
	_, _, p := compileGroup(t, "hello")
	input := []byte("xxhelloxx")
	got := chunkedMatches(p, input, []int{4}, Config{}) // split inside "hello"
	if len(got) != 1 || got[0].End != 6 {
		t.Fatalf("boundary-spanning match lost: %v", got)
	}
}

func TestBeginResetsState(t *testing.T) {
	_, _, p := compileGroup(t, "ab")
	r := NewRunner(p)
	r.Begin(Config{})
	r.Feed([]byte("a"), false)
	// Restart: the pending 'a' must be forgotten.
	r.Begin(Config{})
	r.Feed([]byte("b"), true)
	if res := r.End(); res.Matches != 0 {
		t.Fatalf("state leaked across Begin: %d matches", res.Matches)
	}
}

func TestQuickChunkingEqualsWhole(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	f := func() bool {
		m := 1 + r.Intn(4)
		patterns := make([]string, m)
		for i := range patterns {
			patterns[i] = randPattern(r)
		}
		p, err := compilePatterns(patterns)
		if err != nil {
			return true
		}
		in := randInput(r, 1+r.Intn(48))
		want := Matches(p, in, Config{})
		// Random cut points.
		nCuts := r.Intn(4)
		cuts := make([]int, nCuts)
		for i := range cuts {
			cuts[i] = r.Intn(len(in) + 1)
		}
		// cuts must be nondecreasing
		for i := 1; i < len(cuts); i++ {
			if cuts[i] < cuts[i-1] {
				cuts[i] = cuts[i-1]
			}
		}
		got := chunkedMatches(p, in, cuts, Config{})
		if !reflect.DeepEqual(got, want) {
			t.Logf("patterns=%v input=%q cuts=%v: %v want %v", patterns, in, cuts, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestEndAnnouncedAfterFact is the regression test for the held-byte fix:
// a chunked scan whose stream end is announced only after the last data
// byte — Feed(nil, true) after a non-final Feed, or a bare End() — must
// still report $-anchored accepts on the true last byte. Before the fix
// both shapes silently lost the "cd$" match.
func TestEndAnnouncedAfterFact(t *testing.T) {
	_, _, p := compileGroup(t, "^ab", "cd$")
	input := []byte("abxcd")
	want := Matches(p, input, Config{})
	if len(want) != 2 {
		t.Fatalf("single-shot reference unexpected: %v", want)
	}

	run := func(name string, drive func(r *Runner)) {
		var got []MatchEvent
		r := NewRunner(p)
		r.Begin(Config{OnMatch: func(fsa, end int) {
			got = append(got, MatchEvent{FSA: fsa, End: end})
		}})
		drive(r)
		r.End()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: %v, want %v", name, got, want)
		}
	}
	run("Feed(nil,true) after non-final data", func(r *Runner) {
		r.Feed(input, false)
		r.Feed(nil, true)
	})
	run("bare End after non-final data", func(r *Runner) {
		r.Feed(input, false)
	})
	run("empty non-final Feeds between", func(r *Runner) {
		r.Feed(input[:3], false)
		r.Feed(nil, false)
		r.Feed(input[3:], false)
		r.Feed(nil, false)
		r.Feed(nil, true)
	})
}

// TestFlushHeld checks the cancellation-path contract: the held byte is
// matched against as ordinary data (unanchored accepts fire) but the
// stream end is never observed, so $-anchored accepts must not.
func TestFlushHeld(t *testing.T) {
	_, _, p := compileGroup(t, "cd", "cd$")
	var got []MatchEvent
	r := NewRunner(p)
	r.Begin(Config{OnMatch: func(fsa, end int) {
		got = append(got, MatchEvent{FSA: fsa, End: end})
	}})
	r.Feed([]byte("xcd"), false) // 'd' is held back
	r.FlushHeld()
	want := []MatchEvent{{FSA: 0, End: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after FlushHeld: %v, want %v", got, want)
	}
	// FlushHeld is idempotent and End must not re-feed the byte (nor
	// observe a stream end that never happened for the $ rule).
	r.FlushHeld()
	r.End()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after End: %v, want %v", got, want)
	}
	if tot := r.Totals(); tot.Symbols != 3 {
		t.Fatalf("Totals.Symbols = %d, want 3", tot.Symbols)
	}
}

// TestRunnerTotals checks that the cumulative counters fold once per scan
// and include the live state of an in-progress one.
func TestRunnerTotals(t *testing.T) {
	_, _, p := compileGroup(t, "ab")
	r := NewRunner(p)
	input := []byte("xabxab")
	r.Run(input, Config{})
	r.Run(input, Config{})
	tot := r.Totals()
	if tot.Scans != 2 || tot.Symbols != 12 || tot.Matches != 4 {
		t.Fatalf("after two scans: %+v", tot)
	}
	// Double End must not double-fold.
	r.End()
	if tot2 := r.Totals(); tot2 != tot {
		t.Fatalf("double End changed totals: %+v vs %+v", tot2, tot)
	}
	// Live read mid-scan: Symbols/Matches include the in-progress scan,
	// Scans does not.
	r.Begin(Config{})
	r.Feed(input, false) // 5 fed, 1 held
	live := r.Totals()
	if live.Scans != 2 || live.Symbols != 17 || live.Matches != 5 {
		t.Fatalf("live totals: %+v", live)
	}
	r.End()
	final := r.Totals()
	if final.Scans != 3 || final.Symbols != 18 || final.Matches != 6 {
		t.Fatalf("final totals: %+v", final)
	}
}

// compilePatterns merges patterns into one Program without a testing.T, for
// property tests that skip invalid random inputs.
func compilePatterns(patterns []string) (*Program, error) {
	fsas := make([]*nfa.NFA, len(patterns))
	for i, pat := range patterns {
		n, err := nfa.Compile(pat)
		if err != nil {
			return nil, err
		}
		fsas[i] = n
	}
	z, err := mfsa.Merge(fsas)
	if err != nil {
		return nil, err
	}
	return NewProgram(z), nil
}
