package engine

import (
	"sync"
	"sync/atomic"
)

// RunParallel executes a pool of programs over the same input using the
// multi-threaded scheme of §VI-C2: a fixed pool of `threads` workers, each
// taking one automaton at a time from the remaining ones until all are
// executed. The returned results are indexed like programs; the caller
// measures wall-clock latency around this call, which corresponds to the
// paper's "latency to compute all the REs of a benchmark".
//
// threads ≤ 0 selects one worker per program.
func RunParallel(programs []*Program, input []byte, threads int, cfg Config) []Result {
	if len(programs) == 0 {
		return nil
	}
	if threads <= 0 || threads > len(programs) {
		threads = len(programs)
	}
	results := make([]Result, len(programs))
	if threads == 1 {
		for i, p := range programs {
			results[i] = Run(p, input, cfg)
		}
		return results
	}
	// Lock-free work queue: a single atomic counter hands out automaton
	// indices, so workers never contend on a mutex between executions.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(programs) {
					return
				}
				results[i] = Run(programs[i], input, cfg)
			}
		}()
	}
	wg.Wait()
	return results
}

// TotalMatches sums the match counts of a result set.
func TotalMatches(results []Result) int64 {
	var t int64
	for _, r := range results {
		t += r.Matches
	}
	return t
}
