package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/faultpoint"
)

// WorkerPanicError reports a panic recovered inside a RunParallel worker:
// the automaton being executed, the recovered value, and the worker's stack
// at the point of the panic. The panic is contained to the failing
// automaton — the other workers finish their automata normally.
type WorkerPanicError struct {
	// Automaton is the index of the program whose execution panicked.
	Automaton int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack trace at the panic.
	Stack []byte
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("engine: worker panic on automaton %d: %v", e.Automaton, e.Value)
}

// RunParallel executes a pool of programs over the same input using the
// multi-threaded scheme of §VI-C2: a fixed pool of `threads` workers, each
// taking one automaton at a time from the remaining ones until all are
// executed. The returned results are indexed like programs; the caller
// measures wall-clock latency around this call, which corresponds to the
// paper's "latency to compute all the REs of a benchmark".
//
// Fault containment: a panic inside a worker (e.g. from a user-supplied
// OnMatch callback) is recovered and converted into a *WorkerPanicError
// instead of aborting the process; the automaton's Result slot keeps the
// partial result accumulated before the panic — every match already
// delivered through OnMatch and every byte already counted stays visible,
// so aggregate telemetry remains consistent with what callers observed —
// and the remaining automata still execute. Checkpoint cancellations
// (Config.Checkpoint) surface the same way, one error per cancelled
// automaton. All failures are joined into the returned error.
//
// threads ≤ 0 selects min(len(programs), GOMAXPROCS) workers: one worker
// per program, capped at the scheduler's parallelism — a 10k-automaton
// ruleset must not launch 10k goroutines for a CPU-bound scan.
func RunParallel(programs []*Program, input []byte, threads int, cfg Config) ([]Result, error) {
	if len(programs) == 0 {
		return nil, nil
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > len(programs) {
		threads = len(programs)
	}
	results := make([]Result, len(programs))
	errs := make([]error, len(programs))
	if threads == 1 {
		for i, p := range programs {
			results[i], errs[i] = runOne(i, p, input, cfg)
		}
		return results, errors.Join(errs...)
	}
	// Lock-free work queue: a single atomic counter hands out automaton
	// indices, so workers never contend on a mutex between executions.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(programs) {
					return
				}
				results[i], errs[i] = runOne(i, programs[i], input, cfg)
			}
		}()
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// runOne executes a single automaton with panic containment. The execution
// runs under a pprof label carrying the automaton index, so CPU profiles of
// a parallel scan attribute samples to the MFSA that consumed them — the
// per-automaton view needed to decide which rule groups to reshard.
//
// Panic accounting rolls forward: the runner's partial Result at the point
// of the panic is returned alongside the *WorkerPanicError, because the
// matches it reports were already delivered through OnMatch and its byte
// counts were already observable through Totals — zeroing the slot would
// leave Stats() totals claiming work the returned results deny.
func runOne(i int, p *Program, input []byte, cfg Config) (res Result, err error) {
	var r *Runner
	defer func() {
		if v := recover(); v != nil {
			if r != nil {
				// Completed checkpoint blocks and delivered match events up
				// to the panic; the interrupted block's bytes were never
				// folded, so Symbols stays exact.
				res = r.res
			}
			err = &WorkerPanicError{Automaton: i, Value: v, Stack: debug.Stack()}
		}
	}()
	if cfg.ProfileFor != nil {
		cfg.Profile = cfg.ProfileFor(i)
	}
	if cfg.Faults != nil {
		if cfg.Faults.Hit(faultpoint.WorkerPanic) {
			panic("faultpoint: injected worker panic")
		}
		// Arm the mid-scan site too: every checkpoint poll consults the
		// schedule, so a WorkerPanic scheduled past the first hit fires
		// inside the traversal with partial state to salvage.
		faults, inner := cfg.Faults, cfg.Checkpoint
		cfg.Checkpoint = func() error {
			if faults.Hit(faultpoint.WorkerPanic) {
				panic("faultpoint: injected worker panic (mid-scan)")
			}
			if inner != nil {
				return inner()
			}
			return nil
		}
	}
	pprof.Do(context.Background(), pprof.Labels("mfsa_automaton", strconv.Itoa(i)), func(context.Context) {
		r = NewRunner(p)
		res = r.Run(input, cfg)
		err = r.Err()
	})
	return res, err
}

// TotalMatches sums the match counts of a result set.
func TotalMatches(results []Result) int64 {
	var t int64
	for _, r := range results {
		t += r.Matches
	}
	return t
}
