package engine

import (
	"sort"

	"repro/internal/nfa"
)

// ReferenceScan is the correctness oracle: a deliberately naive,
// implementation-independent scanner that runs one standalone FSA with the
// same semantics as iMFAnt — transitions from the initial state are always
// enabled (subject to a ^ anchor), a match is emitted whenever an enabled
// transition reaches a final state (subject to a $ anchor), and, unless
// keepOnMatch, the accepting arrival is not kept active (the Eq. 5 pop).
//
// It uses plain maps and per-FSA simulation, sharing no code with the
// bitset engine, so agreement between the two is meaningful evidence.
func ReferenceScan(a *nfa.NFA, input []byte, keepOnMatch bool) []int {
	type void = struct{}
	active := make(map[nfa.StateID]void)
	next := make(map[nfa.StateID]void)
	var ends []int
	last := len(input) - 1
	for pos := 0; pos < len(input); pos++ {
		c := input[pos]
		clearMap(next)
		matchedHere := false
		for _, t := range a.Trans {
			if !t.Label.Contains(c) {
				continue
			}
			_, srcActive := active[t.From]
			if !srcActive && t.From == a.Start {
				srcActive = !a.AnchorStart || pos == 0
			}
			if !srcActive {
				continue
			}
			if a.IsFinal(t.To) && (!a.AnchorEnd || pos == last) {
				if !matchedHere {
					ends = append(ends, pos)
					matchedHere = true
				}
				if !keepOnMatch {
					continue
				}
			}
			next[t.To] = void{}
		}
		active, next = next, active
	}
	return ends
}

func clearMap(m map[nfa.StateID]struct{}) {
	for k := range m {
		delete(m, k)
	}
}

// ReferenceScanAll runs ReferenceScan for every FSA in the group and
// returns, per FSA, the sorted list of distinct match end offsets.
func ReferenceScanAll(fsas []*nfa.NFA, input []byte, keepOnMatch bool) [][]int {
	out := make([][]int, len(fsas))
	for j, a := range fsas {
		out[j] = ReferenceScan(a, input, keepOnMatch)
	}
	return out
}

// DistinctEnds reduces engine match events to, per FSA, the sorted distinct
// end offsets — the comparable form against ReferenceScanAll. (The iMFAnt
// and lazy-DFA engines already emit each (FSA, end) exactly once; the
// reduction still groups, sorts, and guards against engines with
// per-witness multiplicity, such as the 2-stride variant.)
func DistinctEnds(events []MatchEvent, numFSAs int) [][]int {
	sets := make([]map[int]struct{}, numFSAs)
	for i := range sets {
		sets[i] = make(map[int]struct{})
	}
	for _, e := range events {
		sets[e.FSA][e.End] = struct{}{}
	}
	out := make([][]int, numFSAs)
	for i, s := range sets {
		ends := make([]int, 0, len(s))
		for e := range s {
			ends = append(ends, e)
		}
		sort.Ints(ends)
		out[i] = ends
	}
	return out
}
