package engine

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/mfsa"
	"repro/internal/nfa"
)

func strideEnds(t *testing.T, sp *StrideProgram, input []byte, cfg Config) [][]int {
	t.Helper()
	var events []MatchEvent
	cfg.OnMatch = func(fsa, end int) {
		events = append(events, MatchEvent{FSA: fsa, End: end})
	}
	NewStrideRunner(sp).Run(input, cfg)
	return DistinctEnds(events, sp.base.numFSAs)
}

func TestStrideBasics(t *testing.T) {
	_, z, p := compileGroup(t, "abc", "b")
	sp, err := NewStrideProgram(z)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []string{"abc", "xabc", "abcabc", "b", "bb", "", "a", "ab"} {
		want := DistinctEnds(Matches(p, []byte(in), Config{}), 2)
		got := strideEnds(t, sp, []byte(in), Config{})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("input %q: stride %v base %v", in, got, want)
		}
	}
}

func TestStrideMidMatchWithoutContinuation(t *testing.T) {
	// "ab" matches ending mid-step with nothing following: the mid-byte
	// report pass must still fire.
	_, z, p := compileGroup(t, "ab")
	sp, err := NewStrideProgram(z)
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("xabz") // match ends at offset 2 = first byte of step (2,3)
	want := DistinctEnds(Matches(p, in, Config{}), 1)
	got := strideEnds(t, sp, in, Config{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stride %v base %v", got, want)
	}
}

func TestStrideOddLength(t *testing.T) {
	_, z, p := compileGroup(t, "abc", "c")
	sp, err := NewStrideProgram(z)
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("xxabc") // 5 bytes: two pairs + tail
	want := DistinctEnds(Matches(p, in, Config{}), 2)
	got := strideEnds(t, sp, in, Config{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stride %v base %v", got, want)
	}
}

func TestStrideAnchors(t *testing.T) {
	_, z, p := compileGroup(t, "^ab", "cd$", "ab")
	sp, err := NewStrideProgram(z)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []string{"abxcd", "abxcde", "ab", "cd", "xabcd"} {
		want := DistinctEnds(Matches(p, []byte(in), Config{}), 3)
		got := strideEnds(t, sp, []byte(in), Config{})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("input %q: stride %v base %v", in, got, want)
		}
	}
}

func TestStridePairCount(t *testing.T) {
	_, z, _ := compileGroup(t, "abc")
	sp, err := NewStrideProgram(z)
	if err != nil {
		t.Fatal(err)
	}
	// Chain a→b→c: mid states with indeg×outdeg = 1 each → 2 pairs.
	if sp.NumPairs() != 2 {
		t.Fatalf("pairs=%d, want 2", sp.NumPairs())
	}
}

func TestQuickStrideEqualsBase(t *testing.T) {
	for _, keep := range []bool{false, true} {
		r := rand.New(rand.NewSource(41))
		f := func() bool {
			m := 1 + r.Intn(4)
			patterns := make([]string, m)
			for i := range patterns {
				patterns[i] = randPattern(r)
			}
			fsas := make([]*nfa.NFA, m)
			for i, pat := range patterns {
				n, err := nfa.Compile(pat)
				if err != nil {
					return false
				}
				fsas[i] = n
			}
			z, err := mfsa.Merge(fsas)
			if err != nil {
				return false
			}
			p := NewProgram(z)
			sp, err := NewStrideProgram(z)
			if err != nil {
				return false
			}
			in := randInput(r, r.Intn(32))
			cfg := Config{KeepOnMatch: keep}
			want := DistinctEnds(Matches(p, in, cfg), m)
			got := strideEnds(t, sp, in, cfg)
			for j := range want {
				if !reflect.DeepEqual(got[j], want[j]) {
					t.Logf("keep=%v patterns=%v input=%q rule %d: stride %v base %v",
						keep, patterns, in, j, got[j], want[j])
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("keep=%v: %v", keep, err)
		}
	}
}

func BenchmarkStrideVsBase(b *testing.B) {
	patterns := []string{"GET /abc", "GET /abd", "POST /xy", "cmd", "[ab]{3}z"}
	fsas := make([]*nfa.NFA, len(patterns))
	for i, pat := range patterns {
		n, err := nfa.Compile(pat)
		if err != nil {
			b.Fatal(err)
		}
		fsas[i] = n
	}
	z, err := mfsa.Merge(fsas)
	if err != nil {
		b.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(3))
	in := make([]byte, 64<<10)
	for i := range in {
		in[i] = byte('a' + rnd.Intn(26))
	}
	b.Run("base", func(b *testing.B) {
		p := NewProgram(z)
		runner := NewRunner(p)
		b.SetBytes(int64(len(in)))
		for i := 0; i < b.N; i++ {
			runner.Run(in, Config{})
		}
	})
	b.Run("stride2", func(b *testing.B) {
		sp, err := NewStrideProgram(z)
		if err != nil {
			b.Fatal(err)
		}
		runner := NewStrideRunner(sp)
		b.SetBytes(int64(len(in)))
		for i := 0; i < b.N; i++ {
			runner.Run(in, Config{})
		}
	})
}
