package engine

import (
	"math/bits"

	"repro/internal/faultpoint"
)

// Config tunes a Run. The zero value reproduces the paper's semantics.
type Config struct {
	// KeepOnMatch disables the Eq. 5 pop: after emitting a match for FSA
	// j at state q2, j stays active so longer matches of the same path
	// are also reported. The paper pops (zero value).
	KeepOnMatch bool
	// Stats enables the per-symbol active-FSA accounting of Table II at
	// a modest traversal overhead.
	Stats bool
	// Accel enables the empty-vector start-byte skip: whenever the
	// traversal vector is empty past stream offset 0 and the program's
	// start-byte set is small (Program.StartBytes), the scan jumps with a
	// bytescan kernel to the next byte that can begin a match instead of
	// stepping dead bytes one at a time. Results are byte-identical with
	// the skip on or off — a dead byte fires no transition, so skipping it
	// cannot lose activations or match events.
	Accel bool
	// NoInits runs the scan carry-only: no FSA is ever (re)activated from
	// an initial state, so the traversal propagates exactly the activations
	// seeded through Resume and dies permanently once the vector empties.
	// This is the boundary-stitching mode of segmented scanning: a runner
	// resumed from a segment-boundary carry reports precisely the events
	// that carry can still produce, and Feed returns as soon as the vector
	// is dead (Result.Symbols then counts only the bytes actually
	// traversed). Accel is ignored under NoInits — an empty vector is a
	// terminal state, not a skippable gap.
	NoInits bool
	// OnMatch, when non-nil, is invoked for every match with the FSA
	// identifier and the end offset of the match (inclusive). Each
	// (FSA, end offset) pair is reported exactly once, even when several
	// accepting states or transitions witness it on the same symbol.
	OnMatch func(fsa, end int)
	// Checkpoint, when non-nil, is polled about every CheckpointEvery
	// bytes during Feed. A non-nil return cancels the scan: the runner
	// stops consuming input, records the error (Runner.Err), and every
	// further Feed is a no-op. Wiring a context's Err here makes scans of
	// adversarial multi-megabyte inputs cancellable without slowing the
	// per-byte hot loop.
	Checkpoint func() error
	// CheckpointEvery is the polling granularity of Checkpoint in bytes;
	// 0 selects DefaultCheckpointEvery.
	CheckpointEvery int
	// Profile, when non-nil, enables the sampling state profiler: every
	// Profile.Stride() input symbols the live activation vector is folded
	// into the shared Profile. Sampling happens at stride-block
	// boundaries outside the per-byte loop; a nil Profile costs one
	// branch per fed chunk.
	Profile *Profile
	// ProfileFor, when non-nil, supplies RunParallel workers with the
	// per-automaton Profile (Profile itself is per-program). Ignored by
	// single-runner execution — set Profile directly there.
	ProfileFor func(automaton int) *Profile
	// Faults, when non-nil, arms the fault-injection sites of this
	// execution (stalled chunks here; worker panics in RunParallel) — the
	// chaos-testing substrate. Like Profile, a nil Faults costs one
	// predictable branch per fed chunk and nothing per byte. Injected
	// faults only force degradations the engine already implements
	// exactly; they never corrupt results.
	Faults *faultpoint.Injector
}

// DefaultCheckpointEvery is the default Checkpoint polling granularity. At
// iMFAnt's typical few-hundred-MB/s throughput, 4 KiB blocks bound the
// cancellation latency to tens of microseconds while keeping the poll cost
// far below one branch per byte.
const DefaultCheckpointEvery = 4096

// Result aggregates one Run.
type Result struct {
	// Matches is the total number of distinct (FSA, end-offset) match
	// events.
	Matches int64
	// PerFSA counts matches per merged-FSA identifier.
	PerFSA []int64
	// Symbols is the number of input bytes processed.
	Symbols int
	// AccelBytes counts the input bytes the start-byte skip jumped over
	// instead of stepping (Config.Accel). Skipped bytes still count in
	// Symbols — they were matched against, just in bulk.
	AccelBytes int64

	// ActivePairsTotal sums, over all input symbols, the number of
	// (active state, active FSA) pairs in the state vector — the paper's
	// "total number of active FSAs during MFSA traversal" (Table II).
	ActivePairsTotal int64
	// MaxActiveFSAs is the largest number of distinct FSAs
	// simultaneously active after any single symbol.
	MaxActiveFSAs int
}

// AvgActive returns the average number of active (state, FSA) pairs per
// input symbol, the Avg row of Table II.
func (r Result) AvgActive() float64 {
	if r.Symbols == 0 {
		return 0
	}
	return float64(r.ActivePairsTotal) / float64(r.Symbols)
}

// vector is a reusable iMFAnt state vector: the per-state activation sets
// J(q) plus the dirty list that lets two buffers swap without full clears.
type vector struct {
	j      []uint64 // numStates × words
	dirty  []int32  // states with any bit set
	member []bool   // member[q]: q is in dirty
}

func newVector(states, words int) *vector {
	return &vector{
		j:      make([]uint64, states*words),
		member: make([]bool, states),
		dirty:  make([]int32, 0, 64),
	}
}

func (v *vector) reset(words int) {
	for _, q := range v.dirty {
		base := int(q) * words
		for w := 0; w < words; w++ {
			v.j[base+w] = 0
		}
		v.member[q] = false
	}
	v.dirty = v.dirty[:0]
}

// Totals are cumulative counters over every scan a Runner has executed,
// including the one in progress. They are the engine-level feed of the
// telemetry layer: folded at scan granularity (End), never touched by the
// per-byte hot loop.
type Totals struct {
	// Scans counts completed scans (End calls).
	Scans int64
	// Symbols is the total number of input bytes processed.
	Symbols int64
	// Matches is the total number of match events.
	Matches int64
	// AccelBytes is the total number of input bytes jumped over by the
	// start-byte skip (Config.Accel), a subset of Symbols.
	AccelBytes int64
}

// Runner holds the reusable buffers for repeated executions of one Program.
// It is not safe for concurrent use; create one Runner per goroutine.
type Runner struct {
	p        *Program
	cur, nxt *vector
	tmp      []uint64
	emitted  []uint64
	// seen is the per-symbol dedup mask: FSAs already reported at the
	// current position. Several transitions can reach distinct accepting
	// states for the same FSA on one symbol; without the mask each arrival
	// would emit its own event for the same (FSA, end) pair. Cleared
	// lazily — only on positions that actually match.
	seen []uint64

	// Chunked-scan state (Begin/Feed/End).
	cfg    Config
	res    Result
	offset int
	stop   error // non-nil: scan cancelled by a Checkpoint failure

	// The runner owns the stream-end responsibility: the most recent byte
	// of every non-final Feed is held back so that, whenever the stream
	// end is announced — Feed(..., true) with or without new data, or End
	// without a final Feed — some byte is still available to carry the
	// $-anchored accepts of the true last position.
	held    [1]byte
	hasHeld bool

	ended    bool // End already folded this scan into totals
	profFill int  // symbols fed since the last profiler sample
	totals   Totals

	// noInit is the all-zero init vector selected under Config.NoInits,
	// allocated once on the first NoInits Begin.
	noInit []uint64
}

// NewRunner returns an execution context for p.
func NewRunner(p *Program) *Runner {
	return &Runner{
		p:       p,
		cur:     newVector(p.numStates, p.words),
		nxt:     newVector(p.numStates, p.words),
		tmp:     make([]uint64, p.words),
		emitted: make([]uint64, p.words),
		seen:    make([]uint64, p.words),
	}
}

// Run executes the iMFAnt algorithm over input (§V): for every input
// character, every transition enabled by that character is evaluated; a
// move is performed when the transition leaves an initial or active state
// and the activation-function update Jnew = (J(q1) ∪ inits(q1)) ∩ bel(t)
// (Eqs. 4 and 6) is non-empty; reaching a state final for an FSA in Jnew
// emits a match for it (Eq. 5). When no valid transition fires, the active
// paths die and matching restarts at the next character, as in iNFAnt.
func (r *Runner) Run(input []byte, cfg Config) Result {
	r.Begin(cfg)
	r.Feed(input, true)
	return r.End()
}

// Begin starts a (possibly chunked) scan, resetting all traversal state.
// Follow with any number of Feed calls and one End.
func (r *Runner) Begin(cfg Config) {
	W := r.p.words
	r.cfg = cfg
	r.res = Result{PerFSA: make([]int64, r.p.numFSAs)}
	r.offset = 0
	r.stop = nil
	r.hasHeld = false
	r.ended = false
	r.profFill = 0
	r.cur.reset(W)
	r.nxt.reset(W)
	if cfg.NoInits && r.noInit == nil {
		r.noInit = make([]uint64, r.p.numStates*W)
	}
}

// Feed consumes the next chunk of the stream. Set final on the last chunk
// so that $-anchored rules can match at the true stream end. Match offsets
// reported through Config.OnMatch are absolute stream offsets. Active paths
// carry across chunk boundaries, so splitting a stream into chunks never
// changes the reported matches.
//
// The runner holds back the most recent byte of every non-final Feed, so
// the stream end may be announced after the fact: Feed(nil, true) — or End
// with no final Feed at all — flushes that byte as the true last one, and
// $-anchored accepts on it are reported rather than silently lost.
//
// When Config.Checkpoint is set, Feed polls it between blocks of
// CheckpointEvery bytes; once it fails, the remaining input is dropped and
// Err returns the cause.
func (r *Runner) Feed(chunk []byte, final bool) {
	if r.stop != nil {
		return
	}
	if r.hasHeld && (len(chunk) > 0 || final) {
		r.hasHeld = false
		r.feedSplit(r.held[:], final && len(chunk) == 0)
		if r.stop != nil || (final && len(chunk) == 0) {
			return
		}
	}
	if len(chunk) == 0 {
		if final {
			r.feedSplit(nil, true)
		}
		return
	}
	if final {
		r.feedSplit(chunk, true)
		return
	}
	r.feedSplit(chunk[:len(chunk)-1], false)
	if r.stop == nil {
		r.held[0] = chunk[len(chunk)-1]
		r.hasHeld = true
	}
}

// FlushHeld feeds the held-back byte as ordinary (non-final) data. It is
// the cancellation-path companion of the held-byte contract: a caller that
// reported the byte as consumed but will never deliver a stream end (the
// scan is being abandoned mid-stream) flushes it so every consumed byte was
// actually matched against. $-anchored accepts do not fire — the true
// stream end was never observed.
func (r *Runner) FlushHeld() {
	if r.stop != nil || !r.hasHeld {
		return
	}
	r.hasHeld = false
	r.feedSplit(r.held[:], false)
}

// feedSplit runs chunk through feedChunk in Checkpoint-sized blocks.
func (r *Runner) feedSplit(chunk []byte, final bool) {
	if r.cfg.Checkpoint == nil {
		r.feedChunk(chunk, final)
		return
	}
	every := r.cfg.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	for off := 0; ; off += every {
		if err := r.cfg.Checkpoint(); err != nil {
			r.stop = err
			return
		}
		end := off + every
		if end >= len(chunk) {
			r.feedChunk(chunk[off:], final)
			return
		}
		r.feedChunk(chunk[off:end], false)
	}
}

// Err returns the Checkpoint error that cancelled the scan, if any.
func (r *Runner) Err() error { return r.stop }

// feedChunk is the uninterruptible Feed body. Profiled scans route through
// feedProfiled, which replays the same body in stride-sized blocks; with
// profiling off this is one predictable branch per chunk, leaving the
// per-byte loops untouched.
func (r *Runner) feedChunk(chunk []byte, final bool) {
	if r.cfg.Faults != nil {
		r.cfg.Faults.Stall()
	}
	if r.cfg.Profile != nil {
		r.feedProfiled(chunk, final)
		return
	}
	r.feedBody(chunk, final)
}

// feedBody dispatches to the word-width-specialized traversal loop.
func (r *Runner) feedBody(chunk []byte, final bool) {
	p := r.p
	W := p.words
	if W == 1 {
		r.feedW1(chunk, final)
		return
	}
	cfg := r.cfg
	res := &r.res
	last := len(chunk) - 1
	noInits := cfg.NoInits
	accel := cfg.Accel && p.startAccel && !noInits
	// processed is the number of bytes this call actually traversed: the
	// whole chunk, unless a NoInits scan's vector dies mid-chunk — the
	// remaining bytes provably produce nothing and are not consumed.
	processed := len(chunk)

	for pos := 0; pos < len(chunk); pos++ {
		if noInits && len(r.cur.dirty) == 0 {
			processed = pos
			break
		}
		if accel && len(r.cur.dirty) == 0 && r.offset+pos > 0 {
			// Empty vector mid-stream: only a start byte does anything.
			// Jump to the next one; every skipped byte provably fires no
			// transition and so cannot activate or emit — even at the
			// stream end.
			j := p.startFinder.Index(chunk[pos:])
			if j < 0 {
				res.AccelBytes += int64(len(chunk) - pos)
				break
			}
			res.AccelBytes += int64(j)
			pos += j
		}
		c := chunk[pos]
		cur, nxt := r.cur, r.nxt
		atEnd := final && pos == last
		seenHere := false // r.seen holds a stale position until cleared
		// The ^-anchored inits participate only in the stream's first
		// step; selecting the init vector here keeps the branch out of
		// the inner transition loop. NoInits scans select the all-zero
		// vector: activations carry, nothing restarts.
		init := p.initAlways
		if noInits {
			init = r.noInit
		} else if r.offset == 0 && pos == 0 {
			init = p.initAll
		}
		for _, ti := range p.lists[c] {
			t := &p.trans[ti]
			srcBase := int(t.from) * W
			belBase := int(ti) * W

			// Jnew = (J(q1) ∪ inits(q1)) ∩ bel(t).
			any := uint64(0)
			for w := 0; w < W; w++ {
				v := (cur.j[srcBase+w] | init[srcBase+w]) & p.bel[belBase+w]
				r.tmp[w] = v
				any |= v
			}
			if any == 0 {
				continue
			}

			dstBase := int(t.to) * W
			// Matches: FSAs in Jnew for which q2 is final, honoring
			// the $ anchor.
			matched := uint64(0)
			for w := 0; w < W; w++ {
				m := r.tmp[w] & p.finalMask[dstBase+w]
				if !atEnd {
					m &^= p.endAnchored[w]
				}
				r.emitted[w] = m
				matched |= m
			}
			if matched != 0 {
				if !seenHere {
					seenHere = true
					for w := 0; w < W; w++ {
						r.seen[w] = 0
					}
				}
				for w := 0; w < W; w++ {
					// Emit only FSAs not yet reported at this
					// position; the pop below still applies to every
					// accepting arrival.
					m := r.emitted[w] &^ r.seen[w]
					r.seen[w] |= r.emitted[w]
					for m != 0 {
						bit := m & (-m)
						fsa := w*64 + trailingZeros(bit)
						res.Matches++
						res.PerFSA[fsa]++
						if cfg.OnMatch != nil {
							cfg.OnMatch(fsa, r.offset+pos)
						}
						m &= m - 1
					}
					if !cfg.KeepOnMatch {
						r.tmp[w] &^= r.emitted[w] // Eq. 5 pop
					}
				}
			}

			// Activate q2 with the surviving set.
			any = 0
			for w := 0; w < W; w++ {
				any |= r.tmp[w]
			}
			if any == 0 {
				continue
			}
			if !nxt.member[t.to] {
				nxt.member[t.to] = true
				nxt.dirty = append(nxt.dirty, t.to)
			}
			for w := 0; w < W; w++ {
				nxt.j[dstBase+w] |= r.tmp[w]
			}
		}

		if cfg.Stats {
			var union [8]uint64 // enough for words ≤ 8, i.e. ≤ 512 FSAs
			var un []uint64
			if W > len(union) {
				un = make([]uint64, W)
			} else {
				un = union[:W:W]
			}
			pairs := int64(0)
			for _, q := range nxt.dirty {
				base := int(q) * W
				for w := 0; w < W; w++ {
					v := nxt.j[base+w]
					pairs += int64(popcount(v))
					un[w] |= v
				}
			}
			res.ActivePairsTotal += pairs
			distinct := 0
			for w := 0; w < W; w++ {
				distinct += popcount(un[w])
			}
			if distinct > res.MaxActiveFSAs {
				res.MaxActiveFSAs = distinct
			}
		}

		cur.reset(W)
		r.cur, r.nxt = nxt, cur
	}
	res.Symbols += processed
	r.offset += processed
}

// End finishes a chunked scan and returns the accumulated result. If no
// Feed announced the stream end, End flushes the held-back byte as the
// final one, so $-anchored accepts on the last byte fed are reported. End
// also folds the scan into the runner's cumulative Totals; calling it again
// before the next Begin is idempotent.
func (r *Runner) End() Result {
	if r.hasHeld && r.stop == nil {
		r.hasHeld = false
		r.feedSplit(r.held[:], true)
	}
	if !r.ended {
		r.ended = true
		r.totals.Scans++
		r.totals.Symbols += int64(r.res.Symbols)
		r.totals.Matches += r.res.Matches
		r.totals.AccelBytes += r.res.AccelBytes
	}
	return r.res
}

// Totals returns the runner's cumulative counters: every finished scan plus
// the live state of an in-progress one. Reading them costs nothing on the
// scan path — folding happens at End, never per byte.
func (r *Runner) Totals() Totals {
	t := r.totals
	if !r.ended {
		t.Symbols += int64(r.res.Symbols)
		t.Matches += r.res.Matches
		t.AccelBytes += r.res.AccelBytes
	}
	return t
}

// Run is the convenience single-shot entry point; it allocates a fresh
// Runner. Hot paths should reuse a Runner.
func Run(p *Program, input []byte, cfg Config) Result {
	return NewRunner(p).Run(input, cfg)
}

// Matches runs p over input and returns every (FSA id, end offset) match
// pair in traversal order. Intended for tests and examples on small inputs.
func Matches(p *Program, input []byte, cfg Config) []MatchEvent {
	var out []MatchEvent
	cfg.OnMatch = func(fsa, end int) {
		out = append(out, MatchEvent{FSA: fsa, End: end})
	}
	Run(p, input, cfg)
	return out
}

// MatchEvent is one match: FSA is the merged-FSA identifier within its
// MFSA; End is the offset of the last matched byte.
type MatchEvent struct {
	FSA int
	End int
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

func popcount(x uint64) int { return bits.OnesCount64(x) }
