package engine

import (
	"sync/atomic"

	"repro/internal/hist"
)

// DefaultProfileStride is the default symbol-sampling stride of the state
// profiler: one activation-vector sample per 64 input bytes. At that rate
// the sampling cost (a walk of the active set every stride) stays far
// below the per-byte traversal cost while visit counts on megabyte-scale
// streams still resolve sub-percent heat differences.
const DefaultProfileStride = 64

// Profile is a sampling execution profiler for one Program, shared by
// every Runner (iMFAnt or lazy-DFA) executing that program. Every stride
// input symbols, the executing runner samples its live activation vector:
// each active state's visit counter is incremented, each active (state,
// FSA) pair is attributed to its FSA, and the active-set size is recorded
// into a histogram. All counters are atomic, so concurrent scanners and
// stream matchers fold into one Profile without locks, and a snapshot can
// be taken mid-scan.
//
// Sampling is arranged by the runners so that the per-byte hot loops are
// untouched: a profiled Feed is split into stride-sized blocks outside
// the traversal loop, and the sample happens at block boundaries. With
// Profile disabled (Config.Profile == nil) the only added cost is one nil
// check per fed chunk.
type Profile struct {
	p       *Program
	stride  int
	samples atomic.Int64
	visits  []atomic.Int64 // per state: active occurrences at sample points
	fsa     []atomic.Int64 // per FSA: active (state, FSA) pairs at sample points
	pairs   hist.Histogram // active (state, FSA) pairs per sample
}

// NewProfile returns a profiler for p sampling every stride symbols;
// stride ≤ 0 selects DefaultProfileStride.
func NewProfile(p *Program, stride int) *Profile {
	if stride <= 0 {
		stride = DefaultProfileStride
	}
	return &Profile{
		p:      p,
		stride: stride,
		visits: make([]atomic.Int64, p.numStates),
		fsa:    make([]atomic.Int64, p.numFSAs),
	}
}

// Stride returns the sampling stride in input symbols.
func (pr *Profile) Stride() int { return pr.stride }

// Samples returns the number of activation-vector samples taken.
func (pr *Profile) Samples() int64 { return pr.samples.Load() }

// Visits returns a snapshot of the per-state visit counters, indexed by
// MFSA state.
func (pr *Profile) Visits() []int64 {
	out := make([]int64, len(pr.visits))
	for i := range pr.visits {
		out[i] = pr.visits[i].Load()
	}
	return out
}

// FSAActive returns a snapshot of the per-FSA activity counters: the
// number of sampled (state, FSA) pairs in which the FSA was active,
// indexed by merged-FSA identifier.
func (pr *Profile) FSAActive() []int64 {
	out := make([]int64, len(pr.fsa))
	for i := range pr.fsa {
		out[i] = pr.fsa[i].Load()
	}
	return out
}

// ActivePairs returns the distribution of active (state, FSA) pairs per
// sample — the sampled form of Table II's active-set size.
func (pr *Profile) ActivePairs() hist.Snapshot { return pr.pairs.Snapshot() }

// sampleVector folds one iMFAnt state-vector sample (the engine Runner's
// live vector) into the profile.
func (pr *Profile) sampleVector(v *vector, W int) {
	var pairs int64
	for _, q := range v.dirty {
		pr.visits[q].Add(1)
		base := int(q) * W
		for w := 0; w < W; w++ {
			m := v.j[base+w]
			pairs += int64(popcount(m))
			for ; m != 0; m &= m - 1 {
				pr.fsa[w<<6+trailingZeros(m)].Add(1)
			}
		}
	}
	pr.pairs.Record(pairs)
	pr.samples.Add(1)
}

// SampleActivations folds one canonical activation-vector sample (the
// lazy-DFA engine's current cached state) into the profile.
func (pr *Profile) SampleActivations(acts []Activation) {
	var pairs int64
	for _, a := range acts {
		pr.visits[a.State].Add(1)
		for w, m := range a.J {
			pairs += int64(popcount(m))
			for ; m != 0; m &= m - 1 {
				pr.fsa[w<<6+trailingZeros(m)].Add(1)
			}
		}
	}
	pr.pairs.Record(pairs)
	pr.samples.Add(1)
}

// SampleActivationsN folds n identical samples of one canonical activation
// vector in a single pass — the bulk catch-up of an accelerated jump. A
// lazy-DFA runner parked in an accelerable state consumes many bytes
// without the vector changing, so the k stride boundaries a jump crosses
// are semantically k samples of the same vector; recording them in bulk
// keeps heat shares and sample counts byte-comparable with an unaccelerated
// scan while doing the vector walk once.
func (pr *Profile) SampleActivationsN(acts []Activation, n int64) {
	if n <= 0 {
		return
	}
	var pairs int64
	for _, a := range acts {
		pr.visits[a.State].Add(n)
		for w, m := range a.J {
			pairs += int64(popcount(m))
			for ; m != 0; m &= m - 1 {
				pr.fsa[w<<6+trailingZeros(m)].Add(n)
			}
		}
	}
	pr.pairs.RecordN(pairs, n)
	pr.samples.Add(n)
}

// feedProfiled is the profiled form of feedChunk: it feeds chunk through
// the unmodified hot loop in stride-sized blocks and samples the live
// activation vector at each block boundary, so sampling adds no work to
// the per-byte path. Partial strides carry across chunks via profFill.
func (r *Runner) feedProfiled(chunk []byte, final bool) {
	pr := r.cfg.Profile
	for {
		n := pr.stride - r.profFill
		if n > len(chunk) {
			r.feedBody(chunk, final)
			r.profFill += len(chunk)
			return
		}
		blockFinal := final && n == len(chunk)
		r.feedBody(chunk[:n], blockFinal)
		if r.stop != nil {
			return
		}
		r.profFill = 0
		pr.sampleVector(r.cur, r.p.words)
		chunk = chunk[n:]
		if len(chunk) == 0 {
			return
		}
	}
}
