package engine

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/pipeline"
)

// profProgram compiles a small merged ruleset for profiler tests.
func profProgram(t *testing.T) *Program {
	t.Helper()
	out, _, err := pipeline.Run(pipeline.Request{
		Patterns: []string{"abc", "abd", "a[bx]e", "xyz+", "hello$"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.MFSAs) != 1 {
		t.Fatalf("want 1 MFSA, got %d", len(out.MFSAs))
	}
	return NewProgram(out.MFSAs[0])
}

func profInput(n int) []byte {
	rng := rand.New(rand.NewSource(3))
	words := []string{"abc", "abd", "abe", "xyzzz", "hello", "noise", " ", "ab", "xy"}
	var b bytes.Buffer
	for b.Len() < n {
		b.WriteString(words[rng.Intn(len(words))])
	}
	return b.Bytes()[:n]
}

// TestProfileInvariance pins the profiler's zero-interference contract:
// profiled and unprofiled runs report identical results and events, whole
// vs chunked feeding samples the same byte positions, and the sample count
// matches the stride arithmetic.
func TestProfileInvariance(t *testing.T) {
	p := profProgram(t)
	in := profInput(10_000)
	base := Matches(p, in, Config{KeepOnMatch: true})

	pr := NewProfile(p, 64)
	var got []MatchEvent
	r := NewRunner(p)
	r.Run(in, Config{KeepOnMatch: true, Profile: pr,
		OnMatch: func(fsa, end int) { got = append(got, MatchEvent{FSA: fsa, End: end}) }})
	if len(got) != len(base) {
		t.Fatalf("profiled run: %d events, unprofiled %d", len(got), len(base))
	}
	for i := range got {
		if got[i] != base[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, got[i], base[i])
		}
	}
	if want := int64(len(in) / 64); pr.Samples() != want {
		t.Fatalf("samples = %d, want %d", pr.Samples(), want)
	}
	var visits int64
	for _, v := range pr.Visits() {
		visits += v
	}
	if visits == 0 {
		t.Fatal("no state visits recorded on a matching input")
	}
	if pr.ActivePairs().Count != pr.Samples() {
		t.Fatalf("active-pairs histogram count %d != samples %d",
			pr.ActivePairs().Count, pr.Samples())
	}

	// Chunked feeding with ragged chunk sizes samples identically.
	pr2 := NewProfile(p, 64)
	r2 := NewRunner(p)
	r2.Begin(Config{KeepOnMatch: true, Profile: pr2})
	rng := rand.New(rand.NewSource(9))
	rest := in
	for len(rest) > 0 {
		n := 1 + rng.Intn(300)
		if n > len(rest) {
			n = len(rest)
		}
		r2.Feed(rest[:n], n == len(rest))
		rest = rest[n:]
	}
	r2.End()
	v1, v2 := pr.Visits(), pr2.Visits()
	for q := range v1 {
		if v1[q] != v2[q] {
			t.Fatalf("state %d: whole-feed visits %d != chunked visits %d", q, v1[q], v2[q])
		}
	}
}

// TestProfileRuleAttribution checks the bel/R ownership map: every state
// with sampled visits must be owned by at least one rule, and each owner
// list must be a subset of the compiled rule ids.
func TestProfileRuleAttribution(t *testing.T) {
	p := profProgram(t)
	in := profInput(8_192)
	pr := NewProfile(p, 32)
	NewRunner(p).Run(in, Config{KeepOnMatch: true, Profile: pr})

	valid := map[int]bool{}
	for _, ri := range p.Rules() {
		valid[ri.RuleID] = true
	}
	for q, v := range pr.Visits() {
		if v == 0 {
			continue
		}
		rules := p.StateRules(q)
		if len(rules) == 0 {
			t.Fatalf("visited state %d has no owning rules", q)
		}
		for _, id := range rules {
			if !valid[id] {
				t.Fatalf("state %d attributed to unknown rule %d", q, id)
			}
		}
	}
	// Per-FSA activity must be consistent with the visit mass: total FSA
	// activity counts (state, FSA) pairs, which is at least the visit
	// count of any single sample and equals the histogram's sum.
	var act int64
	for _, n := range pr.FSAActive() {
		act += n
	}
	if act != pr.ActivePairs().Sum {
		t.Fatalf("FSA activity %d != active-pairs histogram sum %d", act, pr.ActivePairs().Sum)
	}
}

// TestProfileStrideDefault checks stride resolution.
func TestProfileStrideDefault(t *testing.T) {
	p := profProgram(t)
	if got := NewProfile(p, 0).Stride(); got != DefaultProfileStride {
		t.Fatalf("stride = %d, want %d", got, DefaultProfileStride)
	}
	if got := NewProfile(p, 7).Stride(); got != 7 {
		t.Fatalf("stride = %d, want 7", got)
	}
}

// TestProfileParallel exercises ProfileFor: concurrent workers share
// per-automaton profiles without races and the visit mass lands on the
// right automaton's profile.
func TestProfileParallel(t *testing.T) {
	out, _, err := pipeline.Run(pipeline.Request{
		Patterns: []string{"abc", "abd", "xyz", "hello"},
		Merge:    2, // two automata
	})
	if err != nil {
		t.Fatal(err)
	}
	programs := make([]*Program, len(out.MFSAs))
	profs := make([]*Profile, len(out.MFSAs))
	for i, z := range out.MFSAs {
		programs[i] = NewProgram(z)
		profs[i] = NewProfile(programs[i], 16)
	}
	in := profInput(4_096)
	for rep := 0; rep < 4; rep++ {
		if _, err := RunParallel(programs, in, 2, Config{
			KeepOnMatch: true,
			ProfileFor:  func(i int) *Profile { return profs[i] },
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i, pr := range profs {
		if pr.Samples() != int64(4*len(in)/16) {
			t.Fatalf("automaton %d: samples = %d, want %d", i, pr.Samples(), 4*len(in)/16)
		}
	}
}
