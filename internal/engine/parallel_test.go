package engine

import (
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/mfsa"
	"repro/internal/nfa"
)

// checkNoGoroutineLeak asserts (at cleanup) that the goroutine count
// returns to its pre-test baseline: RunParallel must join every worker on
// every exit path — normal completion, checkpoint cancellation, and
// contained panics alike.
func checkNoGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d before, %d after\n%s",
			before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
	})
}

func buildPrograms(t testing.TB, m int, patterns []string) []*Program {
	t.Helper()
	fsas := make([]*nfa.NFA, len(patterns))
	for i, pat := range patterns {
		n, err := nfa.Compile(pat)
		if err != nil {
			t.Fatalf("compile %q: %v", pat, err)
		}
		n.ID = i
		fsas[i] = n
	}
	groups, err := mfsa.MergeGroups(fsas, m)
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]*Program, len(groups))
	for i, z := range groups {
		ps[i] = NewProgram(z)
	}
	return ps
}

func TestRunParallelMatchesSequential(t *testing.T) {
	patterns := []string{"abc", "abd", "bcd", "a[bc]d", "cc+", "(ab|cd)e", "xyz", "x+y"}
	rnd := rand.New(rand.NewSource(33))
	in := make([]byte, 4096)
	alpha := []byte("abcdexyz")
	for i := range in {
		in[i] = alpha[rnd.Intn(len(alpha))]
	}
	for _, m := range []int{1, 2, 4, 8} {
		ps := buildPrograms(t, m, patterns)
		seq, err := RunParallel(ps, in, 1, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{2, 3, 8, 16} {
			par, err := RunParallel(ps, in, threads, Config{})
			if err != nil {
				t.Fatal(err)
			}
			for i := range seq {
				if seq[i].Matches != par[i].Matches {
					t.Fatalf("M=%d T=%d program %d: %d vs %d matches",
						m, threads, i, seq[i].Matches, par[i].Matches)
				}
				if !reflect.DeepEqual(seq[i].PerFSA, par[i].PerFSA) {
					t.Fatalf("M=%d T=%d program %d: per-FSA mismatch", m, threads, i)
				}
			}
		}
	}
}

func TestRunParallelEmpty(t *testing.T) {
	got, err := RunParallel(nil, []byte("x"), 4, Config{})
	if got != nil || err != nil {
		t.Fatalf("got %v, err %v", got, err)
	}
}

func TestRunParallelThreadClamping(t *testing.T) {
	ps := buildPrograms(t, 1, []string{"ab", "cd"})
	res, err := RunParallel(ps, []byte("abcd"), 100, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results=%d", len(res))
	}
	if res[0].Matches != 1 || res[1].Matches != 1 {
		t.Fatalf("matches %d %d", res[0].Matches, res[1].Matches)
	}
	res, err = RunParallel(ps, []byte("abcd"), -1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if TotalMatches(res) != 2 {
		t.Fatalf("total=%d", TotalMatches(res))
	}
}

// TestRunParallelDefaultThreadsGoroutineBound pins the threads ≤ 0 clamp:
// the worker count is min(len(programs), GOMAXPROCS), never one goroutine
// per program. The regression this guards launched len(programs) workers
// for a CPU-bound scan — 64 goroutines here, thousands on a real ruleset.
func TestRunParallelDefaultThreadsGoroutineBound(t *testing.T) {
	checkNoGoroutineLeak(t)
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	patterns := make([]string, 64)
	for i := range patterns {
		patterns[i] = "x" + string(rune('a'+i%26)) + "y+"
	}
	ps := buildPrograms(t, 1, patterns)
	in := make([]byte, 16<<10)
	for i := range in {
		in[i] = byte('a' + i%3)
	}

	before := runtime.NumGoroutine()
	var peak atomic.Int64
	cfg := Config{
		// Every worker polls between 512-byte blocks, so the peak sample
		// observes the pool at full occupancy.
		Checkpoint: func() error {
			g := int64(runtime.NumGoroutine())
			for {
				p := peak.Load()
				if g <= p || peak.CompareAndSwap(p, g) {
					return nil
				}
			}
		},
		CheckpointEvery: 512,
	}
	for _, threads := range []int{0, -1} {
		peak.Store(0)
		if _, err := RunParallel(ps, in, threads, cfg); err != nil {
			t.Fatal(err)
		}
		// The pool adds at most GOMAXPROCS goroutines over the baseline;
		// allow a little slack for unrelated runtime goroutines, far below
		// the len(programs) = 64 a regression would launch.
		if got := peak.Load() - int64(before); got > 4+2 {
			t.Fatalf("threads=%d: observed %d extra goroutines, want <= GOMAXPROCS(4)", threads, got)
		}
	}
}

// TestRunOnePanicPartialAccounting pins the roll-forward contract of worker
// panic containment: the Result slot keeps everything accumulated before the
// panic — matches already delivered through OnMatch, bytes of completed
// checkpoint blocks — instead of being zeroed, so aggregate telemetry stays
// consistent with what callers observed.
func TestRunOnePanicPartialAccounting(t *testing.T) {
	checkNoGoroutineLeak(t)
	ps := buildPrograms(t, 1, []string{"ab"})
	in := make([]byte, 1<<10)
	for i := range in {
		if i%2 == 0 {
			in[i] = 'a'
		} else {
			in[i] = 'b'
		}
	}
	// WorkerPanic hit sites: runOne start (hit 1), then every checkpoint
	// poll — before the block at offset 0 (hit 2) and before the block at
	// offset 256 (hit 3). Firing on hit 3 panics mid-scan with exactly one
	// 256-byte block completed.
	inj := faultpoint.New(faultpoint.OnHit(faultpoint.WorkerPanic, 3))
	var delivered atomic.Int64
	cfg := Config{
		Faults:          inj,
		CheckpointEvery: 256,
		OnMatch:         func(fsa, end int) { delivered.Add(1) },
	}
	res, err := RunParallel(ps, in, 1, cfg)
	var wp *WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("want *WorkerPanicError, got %T: %v", err, err)
	}
	if wp.Automaton != 0 {
		t.Fatalf("panic attributed to automaton %d, want 0", wp.Automaton)
	}
	if res[0].Symbols != 256 {
		t.Fatalf("partial Symbols = %d, want 256 (one completed block)", res[0].Symbols)
	}
	// "ab" ends at every odd offset: 128 matches in the completed block,
	// every one already delivered through OnMatch before the panic.
	if res[0].Matches != 128 || delivered.Load() != res[0].Matches {
		t.Fatalf("partial Matches = %d (delivered %d), want 128 both",
			res[0].Matches, delivered.Load())
	}
	if inj.Fired(faultpoint.WorkerPanic) != 1 {
		t.Fatalf("WorkerPanic fired %d times, want 1", inj.Fired(faultpoint.WorkerPanic))
	}
}

func TestTotalMatches(t *testing.T) {
	rs := []Result{{Matches: 3}, {Matches: 4}}
	if TotalMatches(rs) != 7 {
		t.Fatal("TotalMatches wrong")
	}
}

func BenchmarkRunParallel(b *testing.B) {
	patterns := make([]string, 32)
	for i := range patterns {
		patterns[i] = "p" + string(rune('a'+i%26)) + "[xy]z+"
	}
	ps := buildPrograms(b, 4, patterns)
	in := make([]byte, 32<<10)
	rnd := rand.New(rand.NewSource(2))
	for i := range in {
		in[i] = byte('a' + rnd.Intn(26))
	}
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunParallel(ps, in, 4, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPoolMatchesRunParallel(t *testing.T) {
	patterns := []string{"abc", "bcd", "a[bc]", "c+"}
	ps := buildPrograms(t, 2, patterns)
	rnd := rand.New(rand.NewSource(44))
	in := make([]byte, 2048)
	for i := range in {
		in[i] = byte('a' + rnd.Intn(4))
	}
	want, err := RunParallel(ps, in, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(ps)
	for _, threads := range []int{1, 2, 4, -1} {
		got := pool.Run(in, threads, Config{})
		for i := range want {
			if got[i].Matches != want[i].Matches || !reflect.DeepEqual(got[i].PerFSA, want[i].PerFSA) {
				t.Fatalf("threads=%d program %d mismatch", threads, i)
			}
		}
	}
	// Repeated runs must not leak state.
	again := pool.Run(in, 2, Config{})
	for i := range want {
		if again[i].Matches != want[i].Matches {
			t.Fatalf("pool reuse leaked state at program %d", i)
		}
	}
}

func TestPoolEmpty(t *testing.T) {
	if got := NewPool(nil).Run([]byte("x"), 2, Config{}); got != nil {
		t.Fatalf("got %v", got)
	}
}

func TestRunParallelContainsWorkerPanic(t *testing.T) {
	checkNoGoroutineLeak(t)
	ps := buildPrograms(t, 1, []string{"ab", "cd", "ef"})
	in := []byte("abcdef")
	// A panicking user callback is the realistic in-worker crash: it must
	// surface as a typed error, not abort the process, and the automata
	// that did not panic must still report their matches.
	cfg := Config{OnMatch: func(fsa, end int) {
		if end == 3 { // the "cd" match
			panic("injected failure")
		}
	}}
	for _, threads := range []int{1, 2, 3} {
		res, err := RunParallel(ps, in, threads, cfg)
		if err == nil {
			t.Fatalf("threads=%d: panic not surfaced as error", threads)
		}
		var wp *WorkerPanicError
		if !errors.As(err, &wp) {
			t.Fatalf("threads=%d: want *WorkerPanicError, got %T: %v", threads, err, err)
		}
		if wp.Automaton != 1 || wp.Value != "injected failure" {
			t.Fatalf("threads=%d: wrong panic attribution: %+v", threads, wp)
		}
		if len(wp.Stack) == 0 {
			t.Fatalf("threads=%d: missing stack trace", threads)
		}
		if res[0].Matches != 1 || res[2].Matches != 1 {
			t.Fatalf("threads=%d: surviving automata lost matches: %+v", threads, res)
		}
	}
}

func TestRunParallelCheckpointCancel(t *testing.T) {
	checkNoGoroutineLeak(t)
	ps := buildPrograms(t, 1, []string{"ab", "cd"})
	in := make([]byte, 1<<20)
	wantErr := errors.New("deadline exceeded")
	var calls atomic.Int32
	cfg := Config{
		Checkpoint:      func() error { calls.Add(1); return wantErr },
		CheckpointEvery: 4096,
	}
	_, err := RunParallel(ps, in, 2, cfg)
	if !errors.Is(err, wantErr) {
		t.Fatalf("want checkpoint error, got %v", err)
	}
	if got := calls.Load(); got != 2 { // first poll of each automaton cancels it
		t.Fatalf("checkpoint polled %d times, want 2", got)
	}
}

// TestRunParallelInjectedPanic drives the WorkerPanic fault point through
// RunParallel's containment: the injected panic surfaces as a typed
// *WorkerPanicError, surviving automata keep their matches, workers are all
// joined (no goroutine leak), and the schedule's firing count matches the
// errors observed.
func TestRunParallelInjectedPanic(t *testing.T) {
	checkNoGoroutineLeak(t)
	ps := buildPrograms(t, 1, []string{"ab", "cd", "ef"})
	in := []byte("abcdef")
	inj := faultpoint.New(faultpoint.OnHit(faultpoint.WorkerPanic, 2))
	cfg := Config{Faults: inj}
	for threads := 1; threads <= 4; threads++ {
		res, err := RunParallel(ps, in, threads, cfg)
		if inj.Fired(faultpoint.WorkerPanic) == 0 {
			// The schedule fires once per injector lifetime; only the first
			// round can panic.
			if err != nil {
				t.Fatalf("threads=%d: error without a fired fault: %v", threads, err)
			}
			continue
		}
		if err != nil {
			var wp *WorkerPanicError
			if !errors.As(err, &wp) {
				t.Fatalf("threads=%d: want *WorkerPanicError, got %T: %v", threads, err, err)
			}
			var alive int64
			for _, r := range res {
				alive += r.Matches
			}
			if alive != 2 { // the two automata that did not panic
				t.Fatalf("threads=%d: surviving automata reported %d matches, want 2", threads, alive)
			}
		}
	}
	if inj.Fired(faultpoint.WorkerPanic) != 1 {
		t.Fatalf("WorkerPanic fired %d times, want exactly 1 (OnHit schedule)",
			inj.Fired(faultpoint.WorkerPanic))
	}
}
