package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mfsa"
	"repro/internal/nfa"
)

func buildPrograms(t testing.TB, m int, patterns []string) []*Program {
	t.Helper()
	fsas := make([]*nfa.NFA, len(patterns))
	for i, pat := range patterns {
		n, err := nfa.Compile(pat)
		if err != nil {
			t.Fatalf("compile %q: %v", pat, err)
		}
		n.ID = i
		fsas[i] = n
	}
	groups, err := mfsa.MergeGroups(fsas, m)
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]*Program, len(groups))
	for i, z := range groups {
		ps[i] = NewProgram(z)
	}
	return ps
}

func TestRunParallelMatchesSequential(t *testing.T) {
	patterns := []string{"abc", "abd", "bcd", "a[bc]d", "cc+", "(ab|cd)e", "xyz", "x+y"}
	rnd := rand.New(rand.NewSource(33))
	in := make([]byte, 4096)
	alpha := []byte("abcdexyz")
	for i := range in {
		in[i] = alpha[rnd.Intn(len(alpha))]
	}
	for _, m := range []int{1, 2, 4, 8} {
		ps := buildPrograms(t, m, patterns)
		seq := RunParallel(ps, in, 1, Config{})
		for _, threads := range []int{2, 3, 8, 16} {
			par := RunParallel(ps, in, threads, Config{})
			for i := range seq {
				if seq[i].Matches != par[i].Matches {
					t.Fatalf("M=%d T=%d program %d: %d vs %d matches",
						m, threads, i, seq[i].Matches, par[i].Matches)
				}
				if !reflect.DeepEqual(seq[i].PerFSA, par[i].PerFSA) {
					t.Fatalf("M=%d T=%d program %d: per-FSA mismatch", m, threads, i)
				}
			}
		}
	}
}

func TestRunParallelEmpty(t *testing.T) {
	if got := RunParallel(nil, []byte("x"), 4, Config{}); got != nil {
		t.Fatalf("got %v", got)
	}
}

func TestRunParallelThreadClamping(t *testing.T) {
	ps := buildPrograms(t, 1, []string{"ab", "cd"})
	res := RunParallel(ps, []byte("abcd"), 100, Config{})
	if len(res) != 2 {
		t.Fatalf("results=%d", len(res))
	}
	if res[0].Matches != 1 || res[1].Matches != 1 {
		t.Fatalf("matches %d %d", res[0].Matches, res[1].Matches)
	}
	res = RunParallel(ps, []byte("abcd"), -1, Config{})
	if TotalMatches(res) != 2 {
		t.Fatalf("total=%d", TotalMatches(res))
	}
}

func TestTotalMatches(t *testing.T) {
	rs := []Result{{Matches: 3}, {Matches: 4}}
	if TotalMatches(rs) != 7 {
		t.Fatal("TotalMatches wrong")
	}
}

func BenchmarkRunParallel(b *testing.B) {
	patterns := make([]string, 32)
	for i := range patterns {
		patterns[i] = "p" + string(rune('a'+i%26)) + "[xy]z+"
	}
	ps := buildPrograms(b, 4, patterns)
	in := make([]byte, 32<<10)
	rnd := rand.New(rand.NewSource(2))
	for i := range in {
		in[i] = byte('a' + rnd.Intn(26))
	}
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunParallel(ps, in, 4, Config{})
	}
}

func TestPoolMatchesRunParallel(t *testing.T) {
	patterns := []string{"abc", "bcd", "a[bc]", "c+"}
	ps := buildPrograms(t, 2, patterns)
	rnd := rand.New(rand.NewSource(44))
	in := make([]byte, 2048)
	for i := range in {
		in[i] = byte('a' + rnd.Intn(4))
	}
	want := RunParallel(ps, in, 1, Config{})
	pool := NewPool(ps)
	for _, threads := range []int{1, 2, 4, -1} {
		got := pool.Run(in, threads, Config{})
		for i := range want {
			if got[i].Matches != want[i].Matches || !reflect.DeepEqual(got[i].PerFSA, want[i].PerFSA) {
				t.Fatalf("threads=%d program %d mismatch", threads, i)
			}
		}
	}
	// Repeated runs must not leak state.
	again := pool.Run(in, 2, Config{})
	for i := range want {
		if again[i].Matches != want[i].Matches {
			t.Fatalf("pool reuse leaked state at program %d", i)
		}
	}
}

func TestPoolEmpty(t *testing.T) {
	if got := NewPool(nil).Run([]byte("x"), 2, Config{}); got != nil {
		t.Fatalf("got %v", got)
	}
}
