package engine

import "sort"

// Activation is one (state, J-set) entry of an iMFAnt state vector: J is the
// set of merged FSAs still valid on some path reaching State, one bitset
// word per 64 FSAs (Program.Words words). The full vector — a set of
// Activations — is the complete traversal state of the engine between two
// symbols, which makes it the natural state of a determinized view of the
// MFSA: the lazy-DFA engine treats each distinct vector as one DFA state.
type Activation struct {
	State int32
	J     []uint64
}

// Stepper evaluates single iMFAnt steps from explicit activation vectors —
// the step-function form of the Runner hot loop, reusable as the successor
// constructor of on-the-fly (lazy) determinization. It implements
// keep-on-match scan semantics (no Eq. 5 pop), under which the successor
// vector is a pure function of (vector, symbol): matched FSAs stay active,
// so no run-time emission decision feeds back into the traversal state.
//
// A Stepper owns scratch buffers sized for its Program and is not safe for
// concurrent use.
type Stepper struct {
	p        *Program
	cur, nxt *vector
	tmp      []uint64
}

// NewStepper returns a step evaluator for p.
func NewStepper(p *Program) *Stepper {
	return &Stepper{
		p:   p,
		cur: newVector(p.numStates, p.words),
		nxt: newVector(p.numStates, p.words),
		tmp: make([]uint64, p.words),
	}
}

// Step runs one iMFAnt transition step on symbol c from the given activation
// vector: every transition enabled by c is evaluated with the activation
// update Jnew = (J(q1) ∪ inits(q1)) ∩ bel(t) (Eqs. 4 and 6), with the
// ^-anchored inits participating only when streamStart is set. It returns
// the successor vector in canonical form (sorted by state, fresh slices) and
// the match masks of the step: accept has bit j set when FSA j matches on
// this symbol at any stream position, acceptAtEnd when it matches only if
// this symbol is the last of the stream ($-anchored FSAs).
func (s *Stepper) Step(acts []Activation, c byte, streamStart bool) (next []Activation, accept, acceptAtEnd []uint64) {
	p := s.p
	W := p.words
	for _, a := range acts {
		base := int(a.State) * W
		copy(s.cur.j[base:base+W], a.J)
		if !s.cur.member[a.State] {
			s.cur.member[a.State] = true
			s.cur.dirty = append(s.cur.dirty, a.State)
		}
	}
	init := p.initAlways
	if streamStart {
		init = p.initAll
	}
	for _, ti := range p.lists[c] {
		t := &p.trans[ti]
		srcBase := int(t.from) * W
		belBase := int(ti) * W
		any := uint64(0)
		for w := 0; w < W; w++ {
			v := (s.cur.j[srcBase+w] | init[srcBase+w]) & p.bel[belBase+w]
			s.tmp[w] = v
			any |= v
		}
		if any == 0 {
			continue
		}
		if !s.nxt.member[t.to] {
			s.nxt.member[t.to] = true
			s.nxt.dirty = append(s.nxt.dirty, t.to)
		}
		dstBase := int(t.to) * W
		for w := 0; w < W; w++ {
			s.nxt.j[dstBase+w] |= s.tmp[w]
		}
	}

	// Canonicalize the successor and derive the match masks. With keep
	// semantics the per-transition match sets union to J'(q2) ∩ F(q2), so
	// the masks depend on the successor vector alone.
	sort.Slice(s.nxt.dirty, func(i, j int) bool { return s.nxt.dirty[i] < s.nxt.dirty[j] })
	accept = make([]uint64, W)
	acceptAtEnd = make([]uint64, W)
	next = make([]Activation, 0, len(s.nxt.dirty))
	for _, q := range s.nxt.dirty {
		base := int(q) * W
		J := make([]uint64, W)
		copy(J, s.nxt.j[base:base+W])
		for w := 0; w < W; w++ {
			m := J[w] & p.finalMask[base+w]
			accept[w] |= m &^ p.endAnchored[w]
			acceptAtEnd[w] |= m & p.endAnchored[w]
		}
		next = append(next, Activation{State: q, J: J})
	}
	s.cur.reset(W)
	s.nxt.reset(W)
	return next, accept, acceptAtEnd
}

// Frontier returns the runner's current activation vector in canonical form
// (sorted by state, fresh slices): the complete traversal state after the
// bytes fed so far, suitable for seeding another runner via Resume. Call
// FlushHeld first — a held-back byte is not yet reflected in the vector.
// States whose activation set emptied (Eq. 5 pops) are omitted.
func (r *Runner) Frontier() []Activation {
	W := r.p.words
	dirty := append([]int32(nil), r.cur.dirty...)
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	out := make([]Activation, 0, len(dirty))
	for _, q := range dirty {
		base := int(q) * W
		any := uint64(0)
		for w := 0; w < W; w++ {
			any |= r.cur.j[base+w]
		}
		if any == 0 {
			continue
		}
		J := make([]uint64, W)
		copy(J, r.cur.j[base:base+W])
		out = append(out, Activation{State: q, J: J})
	}
	return out
}

// Resume begins a chunked scan mid-stream: the runner continues from the
// given activation vector as if it had already consumed offset bytes of the
// stream, so subsequent Feed calls report absolute offsets and never
// re-apply the ^-anchored inits. It is the hand-off path of the lazy-DFA
// engine when it abandons caching for a thrashing input, and the seeding
// path of segmented scanning's speculative workers and stitch runners.
func (r *Runner) Resume(cfg Config, acts []Activation, offset int) {
	r.Begin(cfg)
	r.offset = offset
	W := r.p.words
	for _, a := range acts {
		base := int(a.State) * W
		copy(r.cur.j[base:base+W], a.J)
		if !r.cur.member[a.State] {
			r.cur.member[a.State] = true
			r.cur.dirty = append(r.cur.dirty, a.State)
		}
	}
}
