package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mfsa"
	"repro/internal/nfa"
)

// TestStatsWideRuleset is the regression test for the Stats accounting with
// more than 512 merged FSAs (W > 8): the stack-array fast path used to be
// sliced to W words before the W > 8 guard, panicking with
// slice-bounds-out-of-range on any Stats run of such a program.
func TestStatsWideRuleset(t *testing.T) {
	var patterns []string
	for i := 0; len(patterns) < 520; i++ {
		patterns = append(patterns, fmt.Sprintf("%c%c%c",
			'a'+i%26, 'a'+(i/26)%26, 'a'+(i/676)%26))
	}
	fsas := make([]*nfa.NFA, len(patterns))
	for i, pat := range patterns {
		n, err := nfa.Compile(pat)
		if err != nil {
			t.Fatal(err)
		}
		n.ID = i
		fsas[i] = n
	}
	z, err := mfsa.Merge(fsas)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProgram(z)
	if p.words <= 8 {
		t.Fatalf("words=%d, want > 8 to exercise the heap-allocated union", p.words)
	}
	res := Run(p, []byte("abcqrsxyzaaa"), Config{Stats: true})
	if res.Matches == 0 || res.ActivePairsTotal == 0 || res.MaxActiveFSAs == 0 {
		t.Fatalf("stats run reported nothing: %+v", res)
	}
}

// stepAll drives a whole input through the Stepper, one symbol at a time,
// and collects the distinct (FSA, end) match sets — the lazy-determinization
// view of a scan, which must agree with the Runner in keep mode.
func stepAll(p *Program, in []byte) [][]int {
	s := NewStepper(p)
	var acts []Activation
	var events []MatchEvent
	last := len(in) - 1
	for pos, c := range in {
		next, accept, acceptEnd := s.Step(acts, c, pos == 0)
		for w, m := range accept {
			for ; m != 0; m &= m - 1 {
				events = append(events, MatchEvent{FSA: w*64 + trailingZeros(m&(-m)), End: pos})
			}
		}
		if pos == last {
			for w, m := range acceptEnd {
				for ; m != 0; m &= m - 1 {
					events = append(events, MatchEvent{FSA: w*64 + trailingZeros(m&(-m)), End: pos})
				}
			}
		}
		acts = next
	}
	return DistinctEnds(events, p.NumFSAs())
}

func TestStepperMatchesRunner(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		m := 1 + r.Intn(5)
		patterns := make([]string, m)
		for i := range patterns {
			patterns[i] = randPattern(r)
		}
		if trial%3 == 0 { // exercise the anchor paths too
			patterns[0] = "^" + patterns[0]
			patterns[m-1] = patterns[m-1] + "$"
		}
		fsas := make([]*nfa.NFA, m)
		ok := true
		for i, pat := range patterns {
			n, err := nfa.Compile(pat)
			if err != nil {
				ok = false
				break
			}
			fsas[i] = n
		}
		if !ok {
			continue
		}
		z, err := mfsa.Merge(fsas)
		if err != nil {
			t.Fatal(err)
		}
		p := NewProgram(z)
		in := randInput(r, r.Intn(32))
		got := stepAll(p, in)
		want := DistinctEnds(Matches(p, in, Config{KeepOnMatch: true}), m)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("patterns=%v input=%q: stepper %v runner %v", patterns, in, got, want)
		}
	}
}

func TestResumeContinuesMidStream(t *testing.T) {
	_, _, p := compileGroup(t, "abc", "bcd", "^ab", "cd$")
	in := []byte("xabcdxabcd")
	want := DistinctEnds(Matches(p, in, Config{KeepOnMatch: true}), 4)

	// Drive the first half through the Stepper, then Resume a Runner from
	// the mid-stream vector for the rest.
	split := 5
	s := NewStepper(p)
	var acts []Activation
	var events []MatchEvent
	for pos := 0; pos < split; pos++ {
		next, accept, _ := s.Step(acts, in[pos], pos == 0)
		for w, m := range accept {
			for ; m != 0; m &= m - 1 {
				events = append(events, MatchEvent{FSA: w*64 + trailingZeros(m&(-m)), End: pos})
			}
		}
		acts = next
	}
	r := NewRunner(p)
	r.Resume(Config{
		KeepOnMatch: true,
		OnMatch:     func(fsa, end int) { events = append(events, MatchEvent{FSA: fsa, End: end}) },
	}, acts, split)
	r.Feed(in[split:], true)
	r.End()

	if got := DistinctEnds(events, 4); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed scan %v, want %v", got, want)
	}
}
