// Package engine implements the execution layer of the paper (§V): the
// iNFAnt algorithm for plain NFAs and its extension iMFAnt for MFSAs, plus
// the multi-threaded executor used in the §VI-C evaluation and a naive
// reference matcher that serves as a correctness oracle in tests.
//
// Following iNFAnt, the pre-processing step links every symbol of the
// 256-character alphabet to the transitions it enables; execution keeps a
// state vector of active states. The iMFAnt extension stores, for each
// active state, the value of the activation function J — the set of merged
// FSAs still valid on some path reaching that state — and applies the
// update rules of Eqs. 4–6 on every move.
package engine

import (
	"repro/internal/bytescan"
	"repro/internal/charset"
	"repro/internal/mfsa"
)

// Program is the executable form of an MFSA: the iMFAnt-compliant structure
// produced from the extended-ANML representation during pre-processing.
// A Program is immutable and safe for concurrent Run calls.
type Program struct {
	numStates int
	numFSAs   int
	words     int // ⌈numFSAs/64⌉, the stride of every per-state bitset

	trans []progTrans
	// bel holds the flattened belonging sets, words per transition.
	bel []uint64
	// lists[c] indexes the transitions enabled by symbol c.
	lists [256][]int32

	// initAlways[q·words+w]: FSAs whose initial state is q and that may
	// start at any offset. initAtZero: same, for ^-anchored FSAs. initAll
	// is their union, the init vector of the stream's first symbol — the
	// hot loops select initAlways or initAll once per symbol instead of
	// testing for the stream start on every transition.
	initAlways []uint64
	initAtZero []uint64
	initAll    []uint64
	// finalMask[q·words+w]: FSAs for which q is accepting.
	finalMask []uint64
	// endAnchored: FSAs carrying a $ anchor (matches only at stream end).
	endAnchored []uint64

	hasInit []bool // quick test: any init bit at state q

	// owners[q·words+w]: FSAs whose compiled paths traverse state q — the
	// union of bel over the transitions incident to q plus q's init and
	// final memberships. This is the COO bel/R mapping the profiler uses
	// to attribute per-state heat back to rule ids.
	owners []uint64

	// classOf maps every input byte to its alphabet equivalence class:
	// bytes of one class are contained in exactly the same transition
	// labels, hence enable identical transition lists. numClasses is the
	// class count. The lazy-DFA engine keys its cached transition rows by
	// class, so rows are numClasses wide instead of 256.
	classOf    [256]uint8
	numClasses int

	// startBytes is the set of bytes that can begin a new unanchored match
	// mid-stream: the union of the labels of transitions t with
	// initAlways(from(t)) ∩ bel(t) ≠ ∅. When the traversal vector is empty
	// past stream offset 0, every byte outside this set provably leaves it
	// empty and emits nothing, so an accelerated scan may jump straight to
	// the next member. startFinder is the prepared skip kernel; startAccel
	// is true when the set is small enough to accelerate (≤
	// bytescan.MaxNeedles — including the empty set of an all-^-anchored
	// program, for which the kernel skips everything).
	startBytes  []byte
	startFinder bytescan.Finder
	startAccel  bool

	rules []RuleInfo
}

// progTrans is one transition in the executable layout.
type progTrans struct {
	from, to int32
}

// RuleInfo identifies one merged RE inside a Program.
type RuleInfo struct {
	FSA     int // identifier j within the MFSA
	RuleID  int // index within the whole ruleset
	Pattern string
}

// NewProgram lowers an MFSA into the iMFAnt executable structure. The cost
// is the algorithm pre-processing mentioned in §V and is excluded from the
// matching time, as in the paper.
func NewProgram(z *mfsa.MFSA) *Program {
	w := (z.NumFSAs() + 63) / 64
	if w == 0 {
		w = 1
	}
	p := &Program{
		numStates:   z.NumStates,
		numFSAs:     z.NumFSAs(),
		words:       w,
		trans:       make([]progTrans, len(z.Trans)),
		bel:         make([]uint64, len(z.Trans)*w),
		initAlways:  make([]uint64, z.NumStates*w),
		initAtZero:  make([]uint64, z.NumStates*w),
		finalMask:   make([]uint64, z.NumStates*w),
		endAnchored: make([]uint64, w),
		hasInit:     make([]bool, z.NumStates),
	}
	labels := make(map[charset.Set]struct{})
	for i, t := range z.Trans {
		p.trans[i] = progTrans{from: int32(t.From), to: int32(t.To)}
		copy(p.bel[i*w:(i+1)*w], z.Bel[i])
		t.Label.ForEach(func(c byte) {
			p.lists[c] = append(p.lists[c], int32(i))
		})
		labels[t.Label] = struct{}{}
	}
	distinct := make([]charset.Set, 0, len(labels))
	for l := range labels {
		distinct = append(distinct, l)
	}
	p.classOf, p.numClasses = charset.Partition(distinct)
	for q := 0; q < z.NumStates; q++ {
		copy(p.finalMask[q*w:(q+1)*w], z.FinalMask[q])
	}
	for _, info := range z.FSAs {
		word, bit := info.ID>>6, uint(info.ID)&63
		if info.AnchorStart {
			p.initAtZero[int(info.Init)*w+word] |= 1 << bit
		} else {
			p.initAlways[int(info.Init)*w+word] |= 1 << bit
		}
		p.hasInit[info.Init] = true
		if info.AnchorEnd {
			p.endAnchored[word] |= 1 << bit
		}
		p.rules = append(p.rules, RuleInfo{FSA: info.ID, RuleID: info.RuleID, Pattern: info.Pattern})
	}
	p.initAll = make([]uint64, len(p.initAlways))
	for i := range p.initAll {
		p.initAll[i] = p.initAlways[i] | p.initAtZero[i]
	}
	p.owners = make([]uint64, z.NumStates*w)
	for q := 0; q < z.NumStates; q++ {
		base := q * w
		for i := 0; i < w; i++ {
			p.owners[base+i] = p.initAll[base+i] | p.finalMask[base+i]
		}
	}
	for i := range p.trans {
		t := &p.trans[i]
		for w2 := 0; w2 < w; w2++ {
			b := p.bel[i*w+w2]
			p.owners[int(t.from)*w+w2] |= b
			p.owners[int(t.to)*w+w2] |= b
		}
	}
	// Start-byte extraction for the empty-vector skip: a transition can
	// wake an empty traversal only if an unanchored init at its source
	// belongs to it, so the union of those transitions' labels is exactly
	// the set of bytes that do anything mid-stream.
	var starts charset.Set
	for i, t := range z.Trans {
		from := int(p.trans[i].from)
		for w2 := 0; w2 < w; w2++ {
			if p.initAlways[from*w+w2]&p.bel[i*w+w2] != 0 {
				starts = starts.Union(t.Label)
				break
			}
		}
	}
	p.startBytes = starts.Bytes()
	if bs, ok := starts.FewBytes(bytescan.MaxNeedles); ok {
		if f, ok := bytescan.NewFinder(bs); ok {
			p.startFinder = f
			p.startAccel = true
		}
	}
	return p
}

// StateFSAMask returns the set of merged FSAs whose compiled paths
// traverse state q, as a Words-wide bitset: the union of the belonging
// sets of q's incident transitions plus q's init/final memberships. It is
// the static rule-attribution map of the profiler — a state hot at run
// time is shared by exactly these FSAs.
func (p *Program) StateFSAMask(q int) []uint64 {
	return p.owners[q*p.words : (q+1)*p.words]
}

// StateRules returns the rule ids attributed to state q (see
// StateFSAMask), in ascending FSA order.
func (p *Program) StateRules(q int) []int {
	var out []int
	for w, m := range p.StateFSAMask(q) {
		for ; m != 0; m &= m - 1 {
			fsa := w<<6 + trailingZeros(m)
			if fsa < len(p.rules) {
				out = append(out, p.rules[fsa].RuleID)
			}
		}
	}
	return out
}

// NumStates returns the number of automaton states.
func (p *Program) NumStates() int { return p.numStates }

// NumFSAs returns the number of merged FSAs (R).
func (p *Program) NumFSAs() int { return p.numFSAs }

// NumTrans returns the number of transitions.
func (p *Program) NumTrans() int { return len(p.trans) }

// Words returns the stride in 64-bit words of every per-state bitset,
// ⌈NumFSAs/64⌉ (at least 1).
func (p *Program) Words() int { return p.words }

// ByteClasses returns the alphabet equivalence classes of the program: a
// byte-to-class map and the class count. Bytes of one class are contained in
// exactly the same transition labels and are interchangeable for execution.
func (p *Program) ByteClasses() (classOf [256]uint8, n int) {
	return p.classOf, p.numClasses
}

// Rules returns the per-FSA rule metadata, indexed by FSA identifier.
func (p *Program) Rules() []RuleInfo { return p.rules }

// StartBytes returns the set of bytes that can begin a new unanchored
// match past stream offset 0 (in increasing order), and whether the set is
// small enough for the empty-vector skip to accelerate on it (see
// Config.Accel). The empty set with accel true means every byte is dead
// mid-stream: the program is entirely ^-anchored.
func (p *Program) StartBytes() ([]byte, bool) { return p.startBytes, p.startAccel }

// ListDensity returns the average number of transitions enabled per symbol,
// a proxy for the per-byte traversal cost of iNFAnt-family algorithms.
func (p *Program) ListDensity() float64 {
	t := 0
	for c := 0; c < 256; c++ {
		t += len(p.lists[c])
	}
	return float64(t) / 256
}
