package mfsa

import (
	"fmt"
	"sort"

	"repro/internal/budget"
	"repro/internal/charset"
	"repro/internal/nfa"
)

// Merge folds a group of optimized FSAs into a single MFSA, implementing
// Algorithm 1 (MERGE_MULTI) of §III-A. The first automaton is copied as-is;
// each subsequent automaton a is compared against the evolving MFSA z: the
// search for common sub-paths yields Merging Structures — partial
// isomorphisms between sub-paths of a and of z with identical labels — which
// are combined into one injective relabeling ρ. States of a involved in a
// Merging Structure are relabeled to the matching MFSA states, the remaining
// ones receive fresh non-overlapping labels, and every transition of a
// either extends the belonging set of the identical MFSA transition or is
// appended.
//
// The resulting MFSA satisfies the invariant that, for every j, the
// sub-automaton restricted to transitions belonging to j is isomorphic to
// the input FSA j (witnessed by FSAInfo.Embed and checked by Validate), so
// no transition is removed nor changed and the initial morphologies are
// preserved.
//
// Inputs must be ε-free with no pending loops (run nfa.Optimize first).
func Merge(fsas []*nfa.NFA) (*MFSA, error) {
	return MergeWith(fsas, MergeOptions{})
}

// MergeOptions tunes the Merging Structure search. The zero value is the
// default configuration used by Merge.
type MergeOptions struct {
	// MinSubPath is the minimum number of consecutive equally-labeled
	// transitions a Merging Structure must cover to be applied (default
	// minSubPathLen). 1 merges isolated same-label arcs too, maximizing
	// compression at the cost of conflating unrelated rules into a dense
	// core; larger values merge only longer shared sub-patterns. The
	// ablation benchmarks sweep this knob.
	MinSubPath int
	// MaxStates caps the MFSA's state count, checked after each input
	// automaton is folded in so an over-budget ruleset fails during the
	// merge rather than after materializing the whole automaton. 0
	// disables the check. Violations satisfy errors.Is(err, budget.Err).
	MaxStates int
}

// MergeWith is Merge with explicit search options.
func MergeWith(fsas []*nfa.NFA, opts MergeOptions) (*MFSA, error) {
	if opts.MinSubPath <= 0 {
		opts.MinSubPath = minSubPathLen
	}
	if len(fsas) == 0 {
		return nil, fmt.Errorf("mfsa: cannot merge an empty FSA group")
	}
	if len(fsas) > maxMergedFSAs {
		return nil, fmt.Errorf("mfsa: merging factor %d exceeds limit %d", len(fsas), maxMergedFSAs)
	}
	for _, a := range fsas {
		if len(a.Eps) > 0 {
			return nil, fmt.Errorf("mfsa: FSA %q still has ε-arcs; run the single-FSA optimization first", a.Pattern)
		}
		if len(a.Loops) > 0 {
			return nil, fmt.Errorf("mfsa: FSA %q still has pending loops; run the single-FSA optimization first", a.Pattern)
		}
	}
	z := &MFSA{byKey: make(map[transKey]int)}
	capFSAs := len(fsas)
	for j, a := range fsas {
		var rho map[StateID]StateID
		if j == 0 {
			rho = make(map[StateID]StateID) // line 3: copy first automaton
		} else {
			rho = findMapping(z, a, opts.MinSubPath) // lines 4–19: MS search
		}
		z.apply(a, rho, j, capFSAs) // lines 20–21: relabel + generateNew
		if opts.MaxStates > 0 && z.NumStates > opts.MaxStates {
			return nil, budget.Errorf("mfsa: merge exceeds state budget %d after folding rule %q (%d states)",
				opts.MaxStates, a.Pattern, z.NumStates)
		}
	}
	z.sortCOO()
	return z, nil
}

// maxMergedFSAs bounds a single group's merging factor; BelongSet and the
// engines scale linearly in it, and published rulesets stay ≤ 300 REs.
const maxMergedFSAs = 1 << 16

// GroupOptions tunes MergeGroupsWith beyond the per-group MergeOptions.
type GroupOptions struct {
	// Merge is applied to every group's Merge call. Its MaxStates field is
	// ignored; use MaxTotalStates.
	Merge MergeOptions
	// MaxTotalStates caps the state count summed over all produced MFSAs —
	// the ruleset-level memory budget of the compiled automata. Each
	// group's merge runs under the budget remaining after the groups
	// already built. 0 disables the check. Violations satisfy
	// errors.Is(err, budget.Err).
	MaxTotalStates int
	// KeepRuleIDs preserves each input automaton's own ID as its RuleID
	// instead of renumbering by position in fsas. Partial (lax)
	// compilation relies on this: surviving rules keep their indices in
	// the original ruleset even when earlier rules were dropped.
	KeepRuleIDs bool
}

// MergeGroups splits the ruleset into ⌈N/M⌉ sequentially-sampled groups of
// merging factor m and merges each, reproducing the K = ⌈N/M⌉ MFSAs of
// Fig. 4. m ≤ 0 (the paper's "M = all") merges the whole set into one MFSA.
func MergeGroups(fsas []*nfa.NFA, m int) ([]*MFSA, error) {
	return MergeGroupsWith(fsas, m, GroupOptions{})
}

// MergeGroupsWith is MergeGroups under explicit options.
func MergeGroupsWith(fsas []*nfa.NFA, m int, opts GroupOptions) ([]*MFSA, error) {
	if m <= 0 || m > len(fsas) {
		m = len(fsas)
	}
	out := make([]*MFSA, 0, (len(fsas)+m-1)/m)
	total := 0
	for i := 0; i < len(fsas); i += m {
		end := i + m
		if end > len(fsas) {
			end = len(fsas)
		}
		mo := opts.Merge
		if opts.MaxTotalStates > 0 {
			mo.MaxStates = opts.MaxTotalStates - total
			if mo.MaxStates <= 0 {
				return nil, budget.Errorf("mfsa: ruleset exceeds total state budget %d (%d states before group %d)",
					opts.MaxTotalStates, total, len(out))
			}
		} else {
			mo.MaxStates = 0
		}
		z, err := MergeWith(fsas[i:end], mo)
		if err != nil {
			return nil, err
		}
		total += z.NumStates
		// Re-number rule ids to their position in the full ruleset, or —
		// under KeepRuleIDs — to the id the input automaton carries.
		for k := range z.FSAs {
			if opts.KeepRuleIDs {
				z.FSAs[k].RuleID = fsas[i+k].ID
			} else {
				z.FSAs[k].RuleID = i + k
			}
		}
		out = append(out, z)
	}
	return out, nil
}

// minSubPathLen is the minimum number of consecutive equally-labeled
// transitions a Merging Structure must cover to be applied. Algorithm 1
// merges common sub-paths — runs of transitions describing identical
// sub-languages — not isolated same-label arcs between unrelated REs;
// requiring two keeps the compression in line with the paper's §VI-A
// results (an unrestricted single-arc merge collapses almost the whole
// ruleset onto an alphabet-sized core).
const minSubPathLen = 2

// findMapping searches z and a for common sub-paths (the Merging Structure
// loop of Algorithm 1, lines 5–19) and combines all the non-conflicting
// structures into one injective partial relabeling ρ : states(a) →
// states(z).
//
// Every pair of equally-labeled transitions (sets X for single characters
// and Y for character classes — the label comparison is exact set equality
// in both cases, Eq. 1) seeds a candidate Merging Structure; each seed is
// extended forward transition-by-transition while subsequent labels keep
// matching (lines 11–16) and the pairs stay consistent with ρ and with its
// inverse (the relabeling must not overlap existing MFSA states, outcome
// (a) of §III-A). A structure is applied only when it covers at least
// minSubPathLen transitions.
func findMapping(z *MFSA, a *nfa.NFA, minSubPath int) map[StateID]StateID {
	// Bucket the MFSA transitions by label for O(1) candidate lookup.
	buckets := make(map[charset.Set][]int32, len(z.Trans))
	for i, t := range z.Trans {
		buckets[t.Label] = append(buckets[t.Label], int32(i))
	}
	zOut := z.OutTrans()
	aOut := make([][]int32, a.NumStates)
	for i, t := range a.Trans {
		aOut[t.From] = append(aOut[t.From], int32(i))
	}

	rho := make(map[StateID]StateID)
	rhoInv := make(map[StateID]StateID)
	// trial holds the Merging Structure being explored, overlaying rho.
	trial := make(map[StateID]StateID)
	trialInv := make(map[StateID]StateID)
	trialTrans := 0

	// canPair reports whether mapping ap→zp is consistent with both the
	// committed and the trial mapping, and whether it is new.
	canPair := func(ap, zp StateID) (ok, fresh bool) {
		if cur, mapped := rho[ap]; mapped {
			return cur == zp, false
		}
		if cur, mapped := trial[ap]; mapped {
			return cur == zp, false
		}
		if _, taken := rhoInv[zp]; taken {
			return false, false
		}
		if _, taken := trialInv[zp]; taken {
			return false, false
		}
		return true, true
	}
	propose := func(ap, zp StateID) {
		trial[ap] = zp
		trialInv[zp] = ap
	}

	// extend grows the trial structure forward from a paired state,
	// pairing outgoing transitions with identical labels (the while loop
	// of lines 11–16, generalized to branching paths).
	var extend func(ap, zp StateID)
	extend = func(ap, zp StateID) {
		for _, ai := range aOut[ap] {
			ta := a.Trans[ai]
			for _, zi := range zOut[zp] {
				tz := z.Trans[zi]
				if !tz.Label.Equal(ta.Label) {
					continue
				}
				ok, fresh := canPair(ta.To, tz.To)
				if !ok {
					continue
				}
				if fresh {
					propose(ta.To, tz.To)
					trialTrans++
					extend(ta.To, tz.To)
				} else {
					trialTrans++
				}
				break // first consistent continuation per a-transition
			}
		}
	}

	// Deterministic seed order: iterate a's transitions in COO order, and
	// the matching MFSA transitions in index order.
	order := make([]int, len(a.Trans))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		p, q := a.Trans[order[x]], a.Trans[order[y]]
		if p.From != q.From {
			return p.From < q.From
		}
		return p.To < q.To
	})
	for _, ai := range order {
		ta := a.Trans[ai]
		if _, done := rho[ta.From]; done {
			if _, done2 := rho[ta.To]; done2 {
				continue
			}
		}
		for _, zi := range buckets[ta.Label] {
			tz := z.Trans[zi]
			okF, freshF := canPair(ta.From, tz.From)
			if !okF {
				continue
			}
			okT, _ := canPair(ta.To, tz.To)
			if !okT || (ta.From == ta.To) != (tz.From == tz.To) {
				continue
			}
			// Explore a trial Merging Structure from this seed.
			if freshF {
				propose(ta.From, tz.From)
			}
			if _, mapped := trial[ta.To]; !mapped {
				if _, mapped := rho[ta.To]; !mapped && ta.To != ta.From {
					propose(ta.To, tz.To)
				}
			}
			trialTrans = 1
			extend(ta.To, tz.To)
			if trialTrans >= minSubPath {
				for ap, zp := range trial {
					rho[ap] = zp
					rhoInv[zp] = ap
				}
			}
			clear(trial)
			clear(trialInv)
			trialTrans = 0
			if _, done := rho[ta.From]; done {
				break
			}
		}
	}
	return rho
}

// apply relabels a through ρ (fresh labels for unmapped states) and updates
// the MFSA with a's states, transitions, initial and final sets, recording
// the embedding witness.
func (z *MFSA) apply(a *nfa.NFA, rho map[StateID]StateID, j, capFSAs int) {
	embed := make([]StateID, a.NumStates)
	for q := StateID(0); q < StateID(a.NumStates); q++ {
		if zq, ok := rho[q]; ok {
			embed[q] = zq
		} else {
			embed[q] = z.newState()
		}
	}
	z.ensureMaskCapacity(capFSAs)
	for _, t := range a.Trans {
		z.addTransition(embed[t.From], embed[t.To], t.Label, j, capFSAs)
	}
	info := FSAInfo{
		ID:          j,
		RuleID:      a.ID,
		Pattern:     a.Pattern,
		Init:        embed[a.Start],
		AnchorStart: a.AnchorStart,
		AnchorEnd:   a.AnchorEnd,
		NumStates:   a.NumStates,
		NumTrans:    len(a.Trans),
		Embed:       embed,
	}
	z.InitMask[info.Init].Set(j)
	for _, f := range a.Finals {
		zf := embed[f]
		info.Finals = append(info.Finals, zf)
		z.FinalMask[zf].Set(j)
	}
	sort.Slice(info.Finals, func(x, y int) bool { return info.Finals[x] < info.Finals[y] })
	z.FSAs = append(z.FSAs, info)
}

// MergeGrouped merges explicit rule groups — each a list of indices into
// fsas — producing one MFSA per group. It supports grouping policies beyond
// the paper's sequential sampling, such as the similarity clustering of the
// future-work section. Rule ids are set to the original ruleset indices.
func MergeGrouped(fsas []*nfa.NFA, groups [][]int) ([]*MFSA, error) {
	out := make([]*MFSA, 0, len(groups))
	for gi, group := range groups {
		sel := make([]*nfa.NFA, len(group))
		for k, idx := range group {
			if idx < 0 || idx >= len(fsas) {
				return nil, fmt.Errorf("mfsa: group %d references rule %d of %d", gi, idx, len(fsas))
			}
			sel[k] = fsas[idx]
		}
		z, err := Merge(sel)
		if err != nil {
			return nil, err
		}
		for k := range z.FSAs {
			z.FSAs[k].RuleID = group[k]
		}
		out = append(out, z)
	}
	return out, nil
}
