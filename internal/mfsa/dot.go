package mfsa

import (
	"fmt"
	"io"
)

// WriteDOT renders the MFSA as a Graphviz digraph for inspection: initial
// states are drawn as diamonds (labeled with the rules they start),
// accepting states as double circles, and every edge carries its symbol set
// and belonging vector — the visual analogue of Fig. 2's bel annotations.
// Shared transitions (belonging to more than one rule) are drawn bold.
func WriteDOT(w io.Writer, z *MFSA) error {
	if _, err := fmt.Fprintf(w, "digraph mfsa {\n  rankdir=LR;\n  node [fontsize=10];\n  edge [fontsize=9];\n"); err != nil {
		return err
	}
	for q := 0; q < z.NumStates; q++ {
		attrs := "shape=circle"
		label := fmt.Sprintf("%d", q)
		if z.FinalMask[q].Any() {
			attrs = "shape=doublecircle"
		}
		if z.InitMask[q].Any() {
			attrs = "shape=diamond"
			label += "\\nstart " + z.InitMask[q].String()
		}
		if z.FinalMask[q].Any() {
			label += "\\naccept " + z.FinalMask[q].String()
		}
		if _, err := fmt.Fprintf(w, "  n%d [%s, label=\"%s\"];\n", q, attrs, label); err != nil {
			return err
		}
	}
	for i, t := range z.Trans {
		style := ""
		if z.Bel[i].Count() > 1 {
			style = ", penwidth=2"
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"%s %s\"%s];\n",
			t.From, t.To, escapeDOT(t.Label.String()), z.Bel[i].String(), style); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteDOTHeat renders the MFSA as a Graphviz digraph shaded by execution
// heat: visits[q] is the profiler's sampled visit count for state q, and
// each state is filled on a white→red ramp proportional to its share of
// the hottest state's visits. State labels carry the absolute visit count
// and the share of all visits, so the picture answers "where does the
// automaton spend its time" at a glance. A nil or all-zero visits slice
// degrades to an unshaded graph.
func WriteDOTHeat(w io.Writer, z *MFSA, visits []int64) error {
	var peak, total int64
	for q := 0; q < z.NumStates && q < len(visits); q++ {
		if visits[q] > peak {
			peak = visits[q]
		}
		total += visits[q]
	}
	if _, err := fmt.Fprintf(w, "digraph mfsa_heat {\n  rankdir=LR;\n  node [fontsize=10, style=filled];\n  edge [fontsize=9];\n"); err != nil {
		return err
	}
	for q := 0; q < z.NumStates; q++ {
		shape := "circle"
		if z.FinalMask[q].Any() {
			shape = "doublecircle"
		} else if z.InitMask[q].Any() {
			shape = "diamond"
		}
		var v int64
		if q < len(visits) {
			v = visits[q]
		}
		label := fmt.Sprintf("%d", q)
		fill := "#ffffff"
		if peak > 0 && v > 0 {
			// White→red ramp: the green/blue channels fade with heat.
			cool := 255 - int(v*255/peak)
			fill = fmt.Sprintf("#ff%02x%02x", cool, cool)
			label += fmt.Sprintf("\\n%d (%.1f%%)", v, 100*float64(v)/float64(total))
		}
		font := "black"
		if peak > 0 && v*2 > peak {
			font = "white" // keep labels readable on the hottest fills
		}
		if _, err := fmt.Fprintf(w, "  n%d [shape=%s, fillcolor=\"%s\", fontcolor=%s, label=\"%s\"];\n",
			q, shape, fill, font, label); err != nil {
			return err
		}
	}
	for i, t := range z.Trans {
		style := ""
		if z.Bel[i].Count() > 1 {
			style = ", penwidth=2"
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"%s\"%s];\n",
			t.From, t.To, escapeDOT(t.Label.String()), style); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func escapeDOT(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"', '\\':
			out = append(out, '\\')
		}
		out = append(out, s[i])
	}
	return string(out)
}
