package mfsa

import (
	"fmt"
	"io"
)

// WriteDOT renders the MFSA as a Graphviz digraph for inspection: initial
// states are drawn as diamonds (labeled with the rules they start),
// accepting states as double circles, and every edge carries its symbol set
// and belonging vector — the visual analogue of Fig. 2's bel annotations.
// Shared transitions (belonging to more than one rule) are drawn bold.
func WriteDOT(w io.Writer, z *MFSA) error {
	if _, err := fmt.Fprintf(w, "digraph mfsa {\n  rankdir=LR;\n  node [fontsize=10];\n  edge [fontsize=9];\n"); err != nil {
		return err
	}
	for q := 0; q < z.NumStates; q++ {
		attrs := "shape=circle"
		label := fmt.Sprintf("%d", q)
		if z.FinalMask[q].Any() {
			attrs = "shape=doublecircle"
		}
		if z.InitMask[q].Any() {
			attrs = "shape=diamond"
			label += "\\nstart " + z.InitMask[q].String()
		}
		if z.FinalMask[q].Any() {
			label += "\\naccept " + z.FinalMask[q].String()
		}
		if _, err := fmt.Fprintf(w, "  n%d [%s, label=\"%s\"];\n", q, attrs, label); err != nil {
			return err
		}
	}
	for i, t := range z.Trans {
		style := ""
		if z.Bel[i].Count() > 1 {
			style = ", penwidth=2"
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"%s %s\"%s];\n",
			t.From, t.To, escapeDOT(t.Label.String()), z.Bel[i].String(), style); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func escapeDOT(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"', '\\':
			out = append(out, '\\')
		}
		out = append(out, s[i])
	}
	return string(out)
}
