package mfsa

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	z, _ := mustMerge(t, "^abc", "abd")
	var buf bytes.Buffer
	if err := WriteDOT(&buf, z); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph mfsa", "rankdir=LR", "doublecircle", "diamond",
		"start", "accept", "penwidth=2", "->",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output lacks %q", want)
		}
	}
	// Every transition appears as an edge line.
	if got := strings.Count(out, "->"); got != z.NumTrans() {
		t.Fatalf("edges=%d, want %d", got, z.NumTrans())
	}
}

func TestWriteDOTEscaping(t *testing.T) {
	z, _ := mustMerge(t, `\\x`)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, z); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `\\\\`) {
		t.Fatalf("backslash not escaped: %s", buf.String())
	}
}
