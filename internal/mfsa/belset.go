package mfsa

import (
	"math/bits"
	"strconv"
	"strings"
)

// BelongSet is a set over merged-FSA identifiers R = {0, …, NumFSAs−1},
// stored as a bitmap. It implements both the per-transition belonging vector
// (bel in Fig. 2) and the activation-function values J(q) manipulated by the
// iMFAnt engine (§III-B, §V). The zero-length set is empty.
type BelongSet []uint64

// NewBelongSet returns an empty set able to hold n identifiers.
func NewBelongSet(n int) BelongSet {
	return make(BelongSet, (n+63)/64)
}

// SingleBelong returns a set of capacity n containing only id.
func SingleBelong(n, id int) BelongSet {
	s := NewBelongSet(n)
	s.Set(id)
	return s
}

// Set inserts id.
func (s BelongSet) Set(id int) { s[id>>6] |= 1 << (uint(id) & 63) }

// Unset removes id.
func (s BelongSet) Unset(id int) { s[id>>6] &^= 1 << (uint(id) & 63) }

// Has reports whether id is in the set.
func (s BelongSet) Has(id int) bool { return s[id>>6]&(1<<(uint(id)&63)) != 0 }

// Any reports whether the set is non-empty.
func (s BelongSet) Any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of identifiers in the set.
func (s BelongSet) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clear empties the set in place.
func (s BelongSet) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Clone returns an independent copy.
func (s BelongSet) Clone() BelongSet {
	c := make(BelongSet, len(s))
	copy(c, s)
	return c
}

// OrInto sets dst = dst ∪ s. dst must have the same capacity.
func (s BelongSet) OrInto(dst BelongSet) {
	for i, w := range s {
		dst[i] |= w
	}
}

// AndInto sets dst = dst ∩ s.
func (s BelongSet) AndInto(dst BelongSet) {
	for i := range dst {
		dst[i] &= s[i]
	}
}

// IntersectsWith reports whether s ∩ t ≠ ∅ without allocating — the
// J(q1) ∩ J(q2) ≠ ∅ validity test of §III-B.
func (s BelongSet) IntersectsWith(t BelongSet) bool {
	for i, w := range s {
		if w&t[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain the same identifiers.
func (s BelongSet) Equal(t BelongSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i, w := range s {
		if w != t[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn with every identifier in increasing order.
func (s BelongSet) ForEach(fn func(id int)) {
	for i, w := range s {
		for w != 0 {
			fn(i*64 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// IDs returns the identifiers in increasing order.
func (s BelongSet) IDs() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(id int) { out = append(out, id) })
	return out
}

// String renders the set as {i,j,…} with 1-based identifiers, matching the
// paper's FSA numbering.
func (s BelongSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.ForEach(func(id int) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(strconv.Itoa(id + 1))
	})
	sb.WriteByte('}')
	return sb.String()
}
