package mfsa

import (
	"strings"
	"testing"

	"repro/internal/charset"
	"repro/internal/nfa"
)

// corrupt applies fn to a freshly merged MFSA and asserts Validate fails
// with a message containing want.
func corrupt(t *testing.T, want string, fn func(z *MFSA)) {
	t.Helper()
	fsas := compileAll(t, "abc", "abd")
	z, err := Merge(fsas)
	if err != nil {
		t.Fatal(err)
	}
	fn(z)
	err = Validate(z, fsas)
	if err == nil {
		t.Fatalf("corruption %q not detected", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	corrupt(t, "originals", func(z *MFSA) { z.FSAs = z.FSAs[:1] })
	corrupt(t, "embedding covers", func(z *MFSA) { z.FSAs[0].Embed = z.FSAs[0].Embed[:1] })
	corrupt(t, "out of range", func(z *MFSA) { z.FSAs[0].Embed[0] = 999 })
	corrupt(t, "both embed", func(z *MFSA) { z.FSAs[0].Embed[1] = z.FSAs[0].Embed[0] })
	corrupt(t, "lost in merge", func(z *MFSA) {
		// Change a transition's label so the lookup fails.
		z.Trans[0].Label = charset.Single(0xEE)
		z.sortCOO()
	})
	corrupt(t, "lacks belonging", func(z *MFSA) {
		for i := range z.Bel {
			if z.Bel[i].Has(0) && z.Bel[i].Count() == 1 {
				z.Bel[i].Unset(0)
				z.Bel[i].Set(1)
				break
			}
		}
	})
	corrupt(t, "belonging transitions", func(z *MFSA) {
		// Grant FSA 0 an extra transition it does not own.
		for i := range z.Bel {
			if !z.Bel[i].Has(0) {
				z.Bel[i].Set(0)
				break
			}
		}
	})
	corrupt(t, "init", func(z *MFSA) { z.FSAs[0].Init++ })
	corrupt(t, "init mask", func(z *MFSA) { z.InitMask[z.FSAs[0].Init].Unset(0) })
	corrupt(t, "final", func(z *MFSA) { z.FSAs[0].Finals = nil })
	corrupt(t, "final mask", func(z *MFSA) { z.FinalMask[z.FSAs[0].Finals[0]].Unset(0) })
	corrupt(t, "duplicate init", func(z *MFSA) { z.InitMask[z.FSAs[0].Finals[0]].Set(0) })
	corrupt(t, "spurious final mark", func(z *MFSA) { z.FinalMask[z.FSAs[0].Init].Set(0) })
	corrupt(t, "anchor", func(z *MFSA) { z.FSAs[0].AnchorStart = true })
}

func TestValidateSpuriousFinalState(t *testing.T) {
	fsas := compileAll(t, "abc", "abd")
	z, err := Merge(fsas)
	if err != nil {
		t.Fatal(err)
	}
	z.FSAs[0].Finals = append(z.FSAs[0].Finals, z.FSAs[0].Init)
	if err := Validate(z, fsas); err == nil {
		t.Fatal("spurious final accepted")
	}
}

func TestExtractFSAErrors(t *testing.T) {
	z, _ := mustMerge(t, "abc")
	if _, err := ExtractFSA(z, 5); err == nil {
		t.Fatal("out-of-range FSA accepted")
	}
	if _, err := ExtractFSA(z, -1); err == nil {
		t.Fatal("negative FSA accepted")
	}
	// A belonging bit outside the embedding must be caught.
	z.Bel[0].Set(0) // no-op; now corrupt embed
	z.FSAs[0].Embed[z.Trans[0].From] = z.FSAs[0].Embed[z.Trans[0].To]
	if _, err := ExtractFSA(z, 0); err == nil {
		t.Skip("embedding corruption produced a still-consistent map")
	}
}

func TestAssembleErrors(t *testing.T) {
	mk := func() (int, []Transition, []BelongSet, []FSAInfo) {
		trans := []Transition{{From: 0, To: 1, Label: charset.Single('a')}}
		bel := []BelongSet{SingleBelong(1, 0)}
		fsas := []FSAInfo{{ID: 0, Init: 0, Finals: []StateID{1}, NumStates: 2, NumTrans: 1}}
		return 2, trans, bel, fsas
	}
	if _, err := Assemble(2, nil, []BelongSet{SingleBelong(1, 0)}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	n, tr, bel, fs := mk()
	if _, err := Assemble(n, tr, bel, nil); err == nil {
		t.Fatal("no FSAs accepted")
	}
	n, tr, bel, fs = mk()
	bel[0] = NewBelongSet(1)
	if _, err := Assemble(n, tr, bel, fs); err == nil {
		t.Fatal("empty belonging accepted")
	}
	n, tr, bel, fs = mk()
	bel[0] = SingleBelong(8, 5)
	if _, err := Assemble(n, tr, bel, fs); err == nil {
		t.Fatal("out-of-range belonging accepted")
	}
	n, tr, bel, fs = mk()
	tr[0].To = 9
	if _, err := Assemble(n, tr, bel, fs); err == nil {
		t.Fatal("state out of range accepted")
	}
	n, tr, bel, fs = mk()
	tr[0].Label = charset.Set{}
	if _, err := Assemble(n, tr, bel, fs); err == nil {
		t.Fatal("empty label accepted")
	}
	n, tr, bel, fs = mk()
	fs[0].ID = 3
	if _, err := Assemble(n, tr, bel, fs); err == nil {
		t.Fatal("misnumbered FSA accepted")
	}
	n, tr, bel, fs = mk()
	fs[0].Init = 7
	if _, err := Assemble(n, tr, bel, fs); err == nil {
		t.Fatal("init out of range accepted")
	}
	n, tr, bel, fs = mk()
	fs[0].Finals = []StateID{9}
	if _, err := Assemble(n, tr, bel, fs); err == nil {
		t.Fatal("final out of range accepted")
	}
	// And the happy path still assembles.
	n, tr, bel, fs = mk()
	z, err := Assemble(n, tr, bel, fs)
	if err != nil {
		t.Fatal(err)
	}
	if z.NumStates != 2 || z.NumTrans() != 1 {
		t.Fatalf("assembled %v", z)
	}
}

func TestMergeGroupsTooMany(t *testing.T) {
	// maxMergedFSAs guard: construct synthetic count without compiling
	// 65k rules — use MergeWith directly on a fabricated slice bound.
	if maxMergedFSAs < 300 {
		t.Fatal("limit too small for the evaluation datasets")
	}
}

func TestMFSAStringer(t *testing.T) {
	z, _ := mustMerge(t, "ab")
	if s := z.String(); !strings.Contains(s, "MFSA") {
		t.Fatalf("String=%q", s)
	}
}

func TestCCLenMFSA(t *testing.T) {
	z, _ := mustMerge(t, "[abc]xz", "[abc]xw")
	if z.CCLen() != 3 { // the shared two-arc prefix merges [abc] once
		t.Fatalf("CCLen=%d", z.CCLen())
	}
	zdot, _ := mustMerge(t, "a.b")
	if zdot.CCLen() != 0 { // dot-like labels excluded
		t.Fatalf("dot CCLen=%d", zdot.CCLen())
	}
}

// ensure nfa import is used even if cases above change.
var _ = nfa.Transition{}
