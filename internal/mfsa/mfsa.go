// Package mfsa implements the paper's primary contribution: the Multi-RE
// Finite State Automaton model z = (Q, Σ, Δ, I, F, J, R) of §III-B and the
// merging-based optimization procedure (Algorithm 1, §III-A) that folds a
// set of standard FSAs sharing morphologically identical sub-paths into a
// single MFSA.
package mfsa

import (
	"fmt"
	"sort"

	"repro/internal/charset"
	"repro/internal/nfa"
)

// StateID identifies a state of the MFSA.
type StateID = nfa.StateID

// Transition is one labeled MFSA arc. Its belonging set lives in the
// parallel Bel slice of the MFSA (the bel vector of Fig. 2).
type Transition struct {
	From, To StateID
	Label    charset.Set
}

// FSAInfo records the per-merged-FSA metadata the activation function needs:
// where FSA j starts and accepts inside the MFSA, its anchors, and its
// provenance.
type FSAInfo struct {
	ID          int    // index within the merged group (identifier j ∈ R)
	RuleID      int    // index of the RE within the whole ruleset
	Pattern     string // source RE
	Init        StateID
	Finals      []StateID
	AnchorStart bool
	AnchorEnd   bool
	NumStates   int // states of the standalone optimized FSA
	NumTrans    int // transitions of the standalone optimized FSA
	// Embed maps every state of the standalone FSA to its MFSA state,
	// i.e. the relabeling ρ applied when the FSA was merged in. It is the
	// witness of the isomorphic-embedding invariant checked by Validate.
	Embed []StateID
}

// MFSA is a Multi-RE finite state automaton. Build one with Merge; the zero
// value is not useful.
//
// The transition storage is the COO adjacency layout of Fig. 2: Trans[i]
// holds (row, col, idx) and Bel[i] the belonging vector entry. InitMask and
// FinalMask fold the per-FSA I and F sets into per-state bitmaps so that the
// iMFAnt engine can evaluate the activation-function update rules
// (Eqs. 4–6) with word operations.
type MFSA struct {
	NumStates int
	Trans     []Transition
	Bel       []BelongSet // parallel to Trans
	FSAs      []FSAInfo   // the merged-FSA identifier set R

	// InitMask[q] has bit j set when q is the initial state of FSA j.
	InitMask []BelongSet
	// FinalMask[q] has bit j set when q is a final state of FSA j.
	FinalMask []BelongSet

	// byKey indexes transitions by (from, to, label) during construction.
	byKey map[transKey]int
}

type transKey struct {
	from, to StateID
	label    charset.Set
}

// NumFSAs returns |R|, the number of merged FSAs (the merging factor M of
// the group).
func (z *MFSA) NumFSAs() int { return len(z.FSAs) }

// NumTrans returns the number of distinct transitions.
func (z *MFSA) NumTrans() int { return len(z.Trans) }

// CCLen returns the total character-class length over proper CC-labeled
// transitions, the Table I metric (dot-like labels wider than half the
// alphabet are excluded, as in nfa.CCLen).
func (z *MFSA) CCLen() int {
	t := 0
	for _, tr := range z.Trans {
		if l := tr.Label.Len(); l > 1 && l <= 128 {
			t += l
		}
	}
	return t
}

// String summarizes the automaton.
func (z *MFSA) String() string {
	return fmt.Sprintf("MFSA{R=%d states=%d trans=%d}", z.NumFSAs(), z.NumStates, len(z.Trans))
}

func (z *MFSA) newState() StateID {
	id := StateID(z.NumStates)
	z.NumStates++
	return id
}

// ensureMaskCapacity grows the per-state masks to cover all current states
// with word capacity for n FSAs.
func (z *MFSA) ensureMaskCapacity(n int) {
	for len(z.InitMask) < z.NumStates {
		z.InitMask = append(z.InitMask, NewBelongSet(n))
		z.FinalMask = append(z.FinalMask, NewBelongSet(n))
	}
}

// addTransition inserts (from → to on label) for FSA j, either extending the
// belonging of the identical existing transition or appending a new one —
// the update step of Algorithm 1 (line 21).
func (z *MFSA) addTransition(from, to StateID, label charset.Set, j, capFSAs int) {
	k := transKey{from, to, label}
	if i, ok := z.byKey[k]; ok {
		z.Bel[i].Set(j)
		return
	}
	z.byKey[k] = len(z.Trans)
	z.Trans = append(z.Trans, Transition{from, to, label})
	z.Bel = append(z.Bel, SingleBelong(capFSAs, j))
}

// sortCOO orders transitions row-major and rebuilds the index, yielding the
// canonical COO layout.
func (z *MFSA) sortCOO() {
	idx := make([]int, len(z.Trans))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		x, y := z.Trans[idx[a]], z.Trans[idx[b]]
		if x.From != y.From {
			return x.From < y.From
		}
		if x.To != y.To {
			return x.To < y.To
		}
		return x.Label.Min() < y.Label.Min()
	})
	trans := make([]Transition, len(z.Trans))
	bel := make([]BelongSet, len(z.Bel))
	for newI, oldI := range idx {
		trans[newI] = z.Trans[oldI]
		bel[newI] = z.Bel[oldI]
	}
	z.Trans, z.Bel = trans, bel
	z.byKey = make(map[transKey]int, len(trans))
	for i, t := range trans {
		z.byKey[transKey{t.From, t.To, t.Label}] = i
	}
}

// OutTrans returns, for every state, the indices of its outgoing
// transitions. Used by the merge search and the engines' preprocessing.
func (z *MFSA) OutTrans() [][]int32 {
	out := make([][]int32, z.NumStates)
	for i, t := range z.Trans {
		out[t.From] = append(out[t.From], int32(i))
	}
	return out
}
