package mfsa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nfa"
	"repro/internal/rex"
)

func compileAll(t testing.TB, patterns ...string) []*nfa.NFA {
	t.Helper()
	out := make([]*nfa.NFA, len(patterns))
	for i, p := range patterns {
		n, err := nfa.Compile(p)
		if err != nil {
			t.Fatalf("compile %q: %v", p, err)
		}
		n.ID = i
		out[i] = n
	}
	return out
}

func mustMerge(t testing.TB, patterns ...string) (*MFSA, []*nfa.NFA) {
	t.Helper()
	fsas := compileAll(t, patterns...)
	z, err := Merge(fsas)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := Validate(z, fsas); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return z, fsas
}

func totalStates(fsas []*nfa.NFA) int {
	t := 0
	for _, a := range fsas {
		t += a.NumStates
	}
	return t
}

func totalTrans(fsas []*nfa.NFA) int {
	t := 0
	for _, a := range fsas {
		t += len(a.Trans)
	}
	return t
}

func TestMergeSingle(t *testing.T) {
	z, fsas := mustMerge(t, "abc")
	if z.NumFSAs() != 1 {
		t.Fatalf("R=%d", z.NumFSAs())
	}
	if z.NumStates != fsas[0].NumStates || z.NumTrans() != len(fsas[0].Trans) {
		t.Fatalf("single merge changed shape: %v vs %v", z, fsas[0])
	}
	for i := range z.Trans {
		if !z.Bel[i].Has(0) || z.Bel[i].Count() != 1 {
			t.Fatalf("bel[%d]=%v", i, z.Bel[i])
		}
	}
}

func TestMergeIdentical(t *testing.T) {
	// Outcome (c) of §III-A: identical FSAs fully overlap; the MFSA keeps
	// one copy with both belongings.
	z, fsas := mustMerge(t, "abcd", "abcd")
	if z.NumStates != fsas[0].NumStates {
		t.Fatalf("states=%d, want %d", z.NumStates, fsas[0].NumStates)
	}
	if z.NumTrans() != len(fsas[0].Trans) {
		t.Fatalf("trans=%d, want %d", z.NumTrans(), len(fsas[0].Trans))
	}
	for i := range z.Trans {
		if z.Bel[i].Count() != 2 {
			t.Fatalf("bel[%d]=%v, want both FSAs", i, z.Bel[i])
		}
	}
}

func TestMergeDisjoint(t *testing.T) {
	// Outcome (a): no common sub-REs; the incoming FSA is copied entirely
	// with disjoint state labels.
	z, fsas := mustMerge(t, "abc", "xyz")
	if z.NumStates != totalStates(fsas) {
		t.Fatalf("states=%d, want %d", z.NumStates, totalStates(fsas))
	}
	if z.NumTrans() != totalTrans(fsas) {
		t.Fatalf("trans=%d, want %d", z.NumTrans(), totalTrans(fsas))
	}
}

func TestMergeSharedPrefix(t *testing.T) {
	// Outcome (b): "abcx" and "abcy" share the 3-transition prefix.
	z, fsas := mustMerge(t, "abcx", "abcy")
	// 5 + 5 states standalone; shared a,b,c path saves 4 states.
	wantStates := totalStates(fsas) - 4
	if z.NumStates != wantStates {
		t.Fatalf("states=%d, want %d", z.NumStates, wantStates)
	}
	wantTrans := totalTrans(fsas) - 3
	if z.NumTrans() != wantTrans {
		t.Fatalf("trans=%d, want %d", z.NumTrans(), wantTrans)
	}
	shared := 0
	for i := range z.Trans {
		if z.Bel[i].Count() == 2 {
			shared++
		}
	}
	if shared != 3 {
		t.Fatalf("shared transitions=%d, want 3", shared)
	}
}

func TestMergePaperFigure2(t *testing.T) {
	// Fig. 2 merges a1 = a[gj](lm|cd) with a2 = kja[gj]cd: the common
	// sub-path a·[gj]·(c·d) must be shared.
	z, _ := mustMerge(t, "a[gj](lm|cd)", "kja[gj]cd")
	shared := 0
	for i := range z.Trans {
		if z.Bel[i].Count() == 2 {
			shared++
		}
	}
	// a, [gj], c, d are shareable: 4 transitions.
	if shared < 4 {
		t.Fatalf("shared=%d, want ≥ 4", shared)
	}
}

func TestMergeCharClassExactEquality(t *testing.T) {
	// CCs merge only when identical (set Y, Eq. 1): [kh] and k must not
	// merge (Fig. 5b), while [kh] and [hk] must.
	z, _ := mustMerge(t, "[kh]bc", "kfd")
	for i := range z.Trans {
		if z.Bel[i].Count() == 2 {
			t.Fatalf("transition %d shared between [kh]bc and kfd", i)
		}
	}
	z2, _ := mustMerge(t, "[kh]b", "[hk]b")
	shared := 0
	for i := range z2.Trans {
		if z2.Bel[i].Count() == 2 {
			shared++
		}
	}
	if shared != 2 {
		t.Fatalf("[kh]b/[hk]b shared=%d, want 2", shared)
	}
}

func TestMergeFigure5bNoFalseLanguage(t *testing.T) {
	// After the multiplicity pre-transformation, merging (k|h)bc with kfd
	// must not create an MFSA accepting hfd for FSA 2.
	z, fsas := mustMerge(t, "(k|h)bc", "kfd")
	if err := Validate(z, fsas); err != nil {
		t.Fatal(err)
	}
	ex, err := ExtractFSA(z, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mustAccepts(t, ex, []byte("hfd")) {
		t.Fatal("belonging-2 sub-automaton accepts hfd")
	}
	if !mustAccepts(t, ex, []byte("kfd")) {
		t.Fatal("belonging-2 sub-automaton rejects kfd")
	}
}

func TestMergeThreeWay(t *testing.T) {
	z, fsas := mustMerge(t, "GET /index", "GET /image", "GET /admin")
	if z.NumStates >= totalStates(fsas) {
		t.Fatalf("no compression: %d vs %d", z.NumStates, totalStates(fsas))
	}
	// The "GET /" prefix (5 transitions + i/a continuations) is shared by
	// all three.
	all3 := 0
	for i := range z.Trans {
		if z.Bel[i].Count() == 3 {
			all3++
		}
	}
	if all3 < 5 {
		t.Fatalf("triple-shared transitions=%d, want ≥ 5", all3)
	}
}

func TestExtractRoundTrip(t *testing.T) {
	patterns := []string{"ab(c|d)e", "abce", "xy[cd]z", "ab", "(ab){2,3}"}
	z, fsas := mustMerge(t, patterns...)
	inputs := []string{"", "ab", "abce", "abde", "xycz", "xydz", "abab", "ababab", "abc", "e"}
	for j, a := range fsas {
		ex, err := ExtractFSA(z, j)
		if err != nil {
			t.Fatalf("extract %d: %v", j, err)
		}
		for _, in := range inputs {
			if got, want := mustAccepts(t, ex, []byte(in)), mustAccepts(t, a, []byte(in)); got != want {
				t.Errorf("FSA %d (%s) input %q: extracted=%v original=%v", j, patterns[j], in, got, want)
			}
		}
	}
}

func TestMergeGroups(t *testing.T) {
	patterns := []string{"aa", "ab", "ac", "ad", "ae", "af", "ag"}
	fsas := compileAll(t, patterns...)
	zs, err := MergeGroups(fsas, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(zs) != 3 { // ⌈7/3⌉
		t.Fatalf("groups=%d, want 3", len(zs))
	}
	if zs[0].NumFSAs() != 3 || zs[1].NumFSAs() != 3 || zs[2].NumFSAs() != 1 {
		t.Fatalf("group sizes: %d %d %d", zs[0].NumFSAs(), zs[1].NumFSAs(), zs[2].NumFSAs())
	}
	// Rule ids must index into the original ruleset.
	if zs[1].FSAs[0].RuleID != 3 || zs[2].FSAs[0].RuleID != 6 {
		t.Fatalf("rule ids: %d %d", zs[1].FSAs[0].RuleID, zs[2].FSAs[0].RuleID)
	}
	// M = all.
	zall, err := MergeGroups(fsas, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(zall) != 1 || zall[0].NumFSAs() != 7 {
		t.Fatalf("M=all groups=%d R=%d", len(zall), zall[0].NumFSAs())
	}
}

func TestMergeRejectsUnoptimized(t *testing.T) {
	ast := rex.MustParse("a|bb")
	raw, err := nfa.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge([]*nfa.NFA{raw}); err == nil {
		t.Fatal("merge accepted an ε-NFA")
	}
	ast2 := rex.MustParse("a{2,5}")
	raw2, err := nfa.Build(ast2)
	if err != nil {
		t.Fatal(err)
	}
	raw2.Eps = nil
	if _, err := Merge([]*nfa.NFA{raw2}); err == nil {
		t.Fatal("merge accepted pending loops")
	}
	if _, err := Merge(nil); err == nil {
		t.Fatal("merge accepted empty group")
	}
}

func TestMergeCompressionMonotonicSimilarRules(t *testing.T) {
	// Rules drawn from a shared template must compress substantially.
	patterns := []string{
		"GET /cgi-bin/test",
		"GET /cgi-bin/tool",
		"GET /cgi-bin/temp",
		"GET /cgi-bin/go",
	}
	z, fsas := mustMerge(t, patterns...)
	tot := totalStates(fsas)
	if float64(z.NumStates) > 0.7*float64(tot) {
		t.Fatalf("weak compression: %d of %d states", z.NumStates, tot)
	}
}

func TestActivationMasksDistinct(t *testing.T) {
	z, _ := mustMerge(t, "ab", "ab", "cd")
	initsSeen := NewBelongSet(3)
	for q := 0; q < z.NumStates; q++ {
		z.InitMask[q].OrInto(initsSeen)
	}
	if initsSeen.Count() != 3 {
		t.Fatalf("init marks for %d FSAs, want 3", initsSeen.Count())
	}
	// "ab" and "ab" share states, so their init must be the same state.
	if z.FSAs[0].Init != z.FSAs[1].Init {
		t.Fatal("identical FSAs have different init states")
	}
	if z.FSAs[0].Init == z.FSAs[2].Init {
		t.Fatal("disjoint FSAs share an init state")
	}
}

// randEREPattern builds random patterns biased toward shared fragments so
// that merges exercise both overlap and fresh-copy paths.
func randEREPattern(r *rand.Rand) string {
	frags := []string{"ab", "bc", "cd", "a[xy]", "(p|qq)", "k{2,3}", "z*", "w+"}
	n := 1 + r.Intn(4)
	s := ""
	for i := 0; i < n; i++ {
		s += frags[r.Intn(len(frags))]
	}
	return s
}

func TestQuickMergePreservesEveryLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		m := 2 + r.Intn(4)
		patterns := make([]string, m)
		for i := range patterns {
			patterns[i] = randEREPattern(r)
		}
		fsas := compileAll(t, patterns...)
		z, err := Merge(fsas)
		if err != nil {
			t.Logf("merge %v: %v", patterns, err)
			return false
		}
		if err := Validate(z, fsas); err != nil {
			t.Logf("validate %v: %v", patterns, err)
			return false
		}
		// Language check per FSA on random strings over the pattern
		// alphabet.
		alpha := []byte("abcdpqkzwxy")
		for j, a := range fsas {
			ex, err := ExtractFSA(z, j)
			if err != nil {
				t.Logf("extract: %v", err)
				return false
			}
			for k := 0; k < 10; k++ {
				in := make([]byte, r.Intn(7))
				for i := range in {
					in[i] = alpha[r.Intn(len(alpha))]
				}
				if mustAccepts(t, ex, in) != mustAccepts(t, a, in) {
					t.Logf("patterns %v FSA %d input %q disagree", patterns, j, in)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeNeverInflates(t *testing.T) {
	// The MFSA can never have more states or transitions than the sum of
	// its parts.
	r := rand.New(rand.NewSource(12))
	f := func() bool {
		m := 2 + r.Intn(5)
		patterns := make([]string, m)
		for i := range patterns {
			patterns[i] = randEREPattern(r)
		}
		fsas := compileAll(t, patterns...)
		z, err := Merge(fsas)
		if err != nil {
			return false
		}
		return z.NumStates <= totalStates(fsas) && z.NumTrans() <= totalTrans(fsas)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBelongSetOps(t *testing.T) {
	s := NewBelongSet(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if s.Count() != 3 || !s.Has(64) || s.Has(63) {
		t.Fatalf("set state: %v", s.IDs())
	}
	s.Unset(64)
	if s.Has(64) || s.Count() != 2 {
		t.Fatal("unset failed")
	}
	u := SingleBelong(130, 5)
	u.OrInto(s)
	if !s.Has(5) {
		t.Fatal("or failed")
	}
	mask := NewBelongSet(130)
	mask.Set(5)
	mask.AndInto(s)
	if s.Count() != 1 || !s.Has(5) {
		t.Fatalf("and failed: %v", s.IDs())
	}
	if !s.IntersectsWith(mask) {
		t.Fatal("intersects failed")
	}
	empty := NewBelongSet(130)
	if s.IntersectsWith(empty) || empty.Any() {
		t.Fatal("empty set misbehaves")
	}
	if got := SingleBelong(8, 2).String(); got != "{3}" {
		t.Fatalf("String=%q", got)
	}
	c := s.Clone()
	c.Set(100)
	if s.Has(100) {
		t.Fatal("clone shares storage")
	}
	if !s.Equal(s.Clone()) || s.Equal(empty) {
		t.Fatal("Equal misbehaves")
	}
	s.Clear()
	if s.Any() {
		t.Fatal("clear failed")
	}
}

func BenchmarkMerge50SharedPrefix(b *testing.B) {
	patterns := make([]string, 50)
	for i := range patterns {
		patterns[i] = "GET /cgi-bin/app" + string(rune('a'+i%26)) + "/run"
	}
	fsas := compileAll(b, patterns...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Merge(fsas); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMergeWithMinSubPath(t *testing.T) {
	// "axc" and "ayc" share only isolated arcs ('a' and 'c' between
	// different contexts): MinSubPath 1 merges them, the default doesn't.
	fsas := compileAll(t, "axc", "ayc")
	loose, err := MergeWith(fsas, MergeOptions{MinSubPath: 1})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := MergeWith(fsas, MergeOptions{MinSubPath: 2})
	if err != nil {
		t.Fatal(err)
	}
	if loose.NumStates >= strict.NumStates {
		t.Fatalf("MinSubPath=1 states %d should be < MinSubPath=2 states %d",
			loose.NumStates, strict.NumStates)
	}
	if err := Validate(loose, fsas); err != nil {
		t.Fatalf("loose merge invalid: %v", err)
	}
	if err := Validate(strict, fsas); err != nil {
		t.Fatalf("strict merge invalid: %v", err)
	}
}

func TestMergeWithMinSubPathMonotone(t *testing.T) {
	patterns := []string{"GET /abc", "GET /abd", "POST /xy", "qqrstu", "qqrsvw"}
	fsas := compileAll(t, patterns...)
	prev := -1
	for _, minLen := range []int{1, 2, 3, 4, 8} {
		z, err := MergeWith(fsas, MergeOptions{MinSubPath: minLen})
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(z, fsas); err != nil {
			t.Fatalf("minLen=%d: %v", minLen, err)
		}
		if z.NumStates < prev {
			t.Fatalf("minLen=%d: states %d decreased below %d — larger thresholds must merge less",
				minLen, z.NumStates, prev)
		}
		prev = z.NumStates
	}
}

func TestMergeGrouped(t *testing.T) {
	patterns := []string{"aa", "bb", "ab", "ba"}
	fsas := compileAll(t, patterns...)
	zs, err := MergeGrouped(fsas, [][]int{{0, 2}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(zs) != 2 {
		t.Fatalf("groups=%d", len(zs))
	}
	if zs[0].FSAs[0].RuleID != 0 || zs[0].FSAs[1].RuleID != 2 {
		t.Fatalf("rule ids: %+v", zs[0].FSAs)
	}
	if zs[1].FSAs[1].RuleID != 3 {
		t.Fatalf("rule ids: %+v", zs[1].FSAs)
	}
	if _, err := MergeGrouped(fsas, [][]int{{0, 9}}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// mustAccepts is nfa.Accepts for automata known to be fully expanded; it
// fails the test on error.
func mustAccepts(tb testing.TB, n *nfa.NFA, input []byte) bool {
	tb.Helper()
	ok, err := nfa.Accepts(n, input)
	if err != nil {
		tb.Fatalf("Accepts: %v", err)
	}
	return ok
}
