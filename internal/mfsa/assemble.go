package mfsa

import (
	"fmt"
	"sort"
)

// Assemble reconstructs an MFSA from its serialized parts: the state count,
// the COO transition list with per-transition belonging sets, and the
// per-FSA metadata. It rebuilds the derived structures (initial/final masks
// and the transition index) and checks basic well-formedness. It is the
// entry point used by the extended-ANML reader (§IV-E).
func Assemble(numStates int, trans []Transition, bel []BelongSet, fsas []FSAInfo) (*MFSA, error) {
	if len(trans) != len(bel) {
		return nil, fmt.Errorf("mfsa: %d transitions but %d belonging sets", len(trans), len(bel))
	}
	if len(fsas) == 0 {
		return nil, fmt.Errorf("mfsa: no FSAs")
	}
	n := len(fsas)
	z := &MFSA{
		NumStates: numStates,
		Trans:     append([]Transition(nil), trans...),
		Bel:       make([]BelongSet, len(bel)),
		FSAs:      append([]FSAInfo(nil), fsas...),
		byKey:     make(map[transKey]int, len(trans)),
	}
	words := (n + 63) / 64
	for i, b := range bel {
		if !b.Any() {
			return nil, fmt.Errorf("mfsa: transition %d belongs to no FSA", i)
		}
		nb := make(BelongSet, words)
		copy(nb, b)
		if max := maxID(b); max >= n {
			return nil, fmt.Errorf("mfsa: transition %d belongs to FSA %d, only %d merged", i, max, n)
		}
		z.Bel[i] = nb
	}
	for i, t := range z.Trans {
		if err := checkState(numStates, t.From); err != nil {
			return nil, fmt.Errorf("mfsa: transition %d: %v", i, err)
		}
		if err := checkState(numStates, t.To); err != nil {
			return nil, fmt.Errorf("mfsa: transition %d: %v", i, err)
		}
		if t.Label.IsEmpty() {
			return nil, fmt.Errorf("mfsa: transition %d has an empty label", i)
		}
		z.byKey[transKey{t.From, t.To, t.Label}] = i
	}
	z.ensureMaskCapacity(n)
	for j := range z.FSAs {
		info := &z.FSAs[j]
		if info.ID != j {
			return nil, fmt.Errorf("mfsa: FSA at position %d has identifier %d", j, info.ID)
		}
		if err := checkState(numStates, info.Init); err != nil {
			return nil, fmt.Errorf("mfsa: FSA %d init: %v", j, err)
		}
		z.InitMask[info.Init].Set(j)
		sort.Slice(info.Finals, func(x, y int) bool { return info.Finals[x] < info.Finals[y] })
		for _, f := range info.Finals {
			if err := checkState(numStates, f); err != nil {
				return nil, fmt.Errorf("mfsa: FSA %d final: %v", j, err)
			}
			z.FinalMask[f].Set(j)
		}
	}
	z.sortCOO()
	return z, nil
}

func checkState(numStates int, q StateID) error {
	if q < 0 || int(q) >= numStates {
		return fmt.Errorf("state %d out of range [0,%d)", q, numStates)
	}
	return nil
}

func maxID(b BelongSet) int {
	max := -1
	b.ForEach(func(id int) { max = id })
	return max
}
