package mfsa

import (
	"fmt"
	"sort"

	"repro/internal/nfa"
)

// Validate checks the structural correctness invariants of an MFSA against
// the FSA group it was merged from (§III-A: "the morphology of initial FSAs
// is respected, and no transition is removed nor changed"):
//
//  1. every embedding ρ_j is injective;
//  2. for every transition (p →c q) of FSA j, the MFSA contains
//     (ρ_j(p) →c ρ_j(q)) with j in its belonging set;
//  3. the MFSA has no belonging-j transition outside the image of ρ_j;
//  4. initial and final masks agree with ρ_j applied to FSA j's start and
//     final states, and anchors are preserved.
//
// Together these guarantee that the belonging-j sub-automaton recognizes
// exactly L(a_j), which is the property the activation function relies on.
func Validate(z *MFSA, originals []*nfa.NFA) error {
	if len(originals) != len(z.FSAs) {
		return fmt.Errorf("mfsa: validate: %d originals vs %d merged FSAs", len(originals), len(z.FSAs))
	}
	perFSACount := make([]int, len(z.FSAs))
	for i := range z.Trans {
		z.Bel[i].ForEach(func(j int) { perFSACount[j]++ })
	}
	for j, a := range originals {
		info := z.FSAs[j]
		if len(info.Embed) != a.NumStates {
			return fmt.Errorf("mfsa: FSA %d: embedding covers %d states, original has %d", j, len(info.Embed), a.NumStates)
		}
		// (1) injectivity.
		seen := make(map[StateID]StateID, a.NumStates)
		for q, zq := range info.Embed {
			if zq < 0 || int(zq) >= z.NumStates {
				return fmt.Errorf("mfsa: FSA %d: state %d embedded out of range (%d)", j, q, zq)
			}
			if prev, dup := seen[zq]; dup {
				return fmt.Errorf("mfsa: FSA %d: states %d and %d both embed to %d", j, prev, q, zq)
			}
			seen[zq] = StateID(q)
		}
		// (2) every original transition present with belonging j.
		for _, t := range a.Trans {
			k := transKey{info.Embed[t.From], info.Embed[t.To], t.Label}
			i, ok := z.byKey[k]
			if !ok {
				return fmt.Errorf("mfsa: FSA %d: transition %d→%d lost in merge", j, t.From, t.To)
			}
			if !z.Bel[i].Has(j) {
				return fmt.Errorf("mfsa: FSA %d: transition %d→%d lacks belonging", j, t.From, t.To)
			}
		}
		// (3) no extra belonging-j transitions.
		if perFSACount[j] != len(a.Trans) {
			return fmt.Errorf("mfsa: FSA %d: %d belonging transitions, original has %d", j, perFSACount[j], len(a.Trans))
		}
		// (4) initial/final masks and anchors.
		if info.Init != info.Embed[a.Start] {
			return fmt.Errorf("mfsa: FSA %d: init %d, embed(start)=%d", j, info.Init, info.Embed[a.Start])
		}
		if !z.InitMask[info.Init].Has(j) {
			return fmt.Errorf("mfsa: FSA %d: init mask missing at state %d", j, info.Init)
		}
		finals := make(map[StateID]bool, len(a.Finals))
		for _, f := range a.Finals {
			finals[info.Embed[f]] = true
		}
		if len(finals) != len(info.Finals) {
			return fmt.Errorf("mfsa: FSA %d: %d final states recorded, want %d", j, len(info.Finals), len(finals))
		}
		for _, zf := range info.Finals {
			if !finals[zf] {
				return fmt.Errorf("mfsa: FSA %d: spurious final state %d", j, zf)
			}
			if !z.FinalMask[zf].Has(j) {
				return fmt.Errorf("mfsa: FSA %d: final mask missing at state %d", j, zf)
			}
		}
		for q := 0; q < z.NumStates; q++ {
			if z.InitMask[q].Has(j) && StateID(q) != info.Init {
				return fmt.Errorf("mfsa: FSA %d: duplicate init mark at state %d", j, q)
			}
			if z.FinalMask[q].Has(j) && !finals[StateID(q)] {
				return fmt.Errorf("mfsa: FSA %d: spurious final mark at state %d", j, q)
			}
		}
		if info.AnchorStart != a.AnchorStart || info.AnchorEnd != a.AnchorEnd {
			return fmt.Errorf("mfsa: FSA %d: anchor flags not preserved", j)
		}
	}
	return nil
}

// ExtractFSA reconstructs the standalone FSA j from the MFSA by restricting
// it to belonging-j transitions and renaming states through the inverse
// embedding. The result is isomorphic (and, after Validate, identical up to
// state numbering) to the FSA that was merged in; it is used by tests and by
// the compression accounting.
func ExtractFSA(z *MFSA, j int) (*nfa.NFA, error) {
	if j < 0 || j >= len(z.FSAs) {
		return nil, fmt.Errorf("mfsa: no FSA %d in MFSA with R=%d", j, len(z.FSAs))
	}
	info := z.FSAs[j]
	inv := make(map[StateID]StateID, len(info.Embed))
	for q, zq := range info.Embed {
		inv[zq] = StateID(q)
	}
	out := &nfa.NFA{
		ID:          info.RuleID,
		Pattern:     info.Pattern,
		NumStates:   info.NumStates,
		Start:       inv[info.Init],
		AnchorStart: info.AnchorStart,
		AnchorEnd:   info.AnchorEnd,
	}
	var finals []StateID
	for _, zf := range info.Finals {
		finals = append(finals, inv[zf])
	}
	sort.Slice(finals, func(x, y int) bool { return finals[x] < finals[y] })
	out.Finals = finals
	for i, t := range z.Trans {
		if !z.Bel[i].Has(j) {
			continue
		}
		from, okF := inv[t.From]
		to, okT := inv[t.To]
		if !okF || !okT {
			return nil, fmt.Errorf("mfsa: belonging-%d transition %d→%d escapes the embedding", j, t.From, t.To)
		}
		out.Trans = append(out.Trans, nfa.Transition{From: from, To: to, Label: t.Label})
	}
	return out, nil
}
