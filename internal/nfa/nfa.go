// Package nfa implements the Middle-End automata of the compilation
// framework (§IV-B, §IV-C of the paper): the Thompson-like construction from
// ASTs to non-deterministic finite state automata, and the three single-FSA
// optimizations that precede merging — loop expansion, ε-arc removal, and
// the simplification of multiplicity-greater-than-one arcs into character
// classes.
package nfa

import (
	"fmt"
	"sort"

	"repro/internal/charset"
	"repro/internal/rex"
)

// StateID identifies a state within one automaton. States are dense indices
// in [0, NumStates).
type StateID = int32

// Transition is a labeled arc: From reads any byte in Label and moves to To.
type Transition struct {
	From, To StateID
	Label    charset.Set
}

// EpsTransition is an ε-arc, present only between construction and the
// ε-removal pass (ANML does not support ε-moves, §IV-C).
type EpsTransition struct {
	From, To StateID
}

// Loop records a counted repetition ({m,n} or {m,}) saved during FSA
// generation, per §IV-C(2): the sub-RE is kept symbolic and materialized by
// the loop-expansion pass. Until expansion, Entry and Exit are connected by
// nothing, so an NFA with pending loops is an incomplete IR.
type Loop struct {
	Entry, Exit StateID
	Min, Max    int // Max == rex.Inf for {m,}
	Body        *rex.Node
}

// NFA is a non-deterministic finite automaton over the byte alphabet. The
// zero value is not useful; construct with Build.
type NFA struct {
	ID        int    // identifier of the RE within its ruleset (1-based in the paper)
	Pattern   string // source regular expression, for diagnostics
	NumStates int
	Start     StateID
	Finals    []StateID // sorted, no duplicates
	Trans     []Transition
	Eps       []EpsTransition
	Loops     []Loop

	// AnchorStart/AnchorEnd record a leading ^ / trailing $: the engines
	// then restrict initial activation to stream offset 0 and match
	// emission to the final stream byte.
	AnchorStart bool
	AnchorEnd   bool
}

// newState appends a fresh state and returns its id.
func (n *NFA) newState() StateID {
	id := StateID(n.NumStates)
	n.NumStates++
	return id
}

// IsFinal reports whether q is an accepting state.
func (n *NFA) IsFinal(q StateID) bool {
	i := sort.Search(len(n.Finals), func(i int) bool { return n.Finals[i] >= q })
	return i < len(n.Finals) && n.Finals[i] == q
}

func (n *NFA) setFinals(fs []StateID) {
	sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	out := fs[:0]
	var prev StateID = -1
	for _, f := range fs {
		if f != prev {
			out = append(out, f)
		}
		prev = f
	}
	n.Finals = out
}

// CCLen returns the total character-class length: the sum of Label.Len()
// over proper character-class transitions (Table I metric). Labels wider
// than half the alphabet — the ERE dot and negated classes — are not
// counted, matching the workload convention (Dotstar09's dot-heavy rules
// report only ~2k CC characters in Table I).
func (n *NFA) CCLen() int {
	t := 0
	for _, tr := range n.Trans {
		if l := tr.Label.Len(); l > 1 && l <= 128 {
			t += l
		}
	}
	return t
}

// Clone returns a deep copy of the automaton.
func (n *NFA) Clone() *NFA {
	c := *n
	c.Finals = append([]StateID(nil), n.Finals...)
	c.Trans = append([]Transition(nil), n.Trans...)
	c.Eps = append([]EpsTransition(nil), n.Eps...)
	c.Loops = append([]Loop(nil), n.Loops...)
	return &c
}

// String summarizes the automaton for debugging.
func (n *NFA) String() string {
	return fmt.Sprintf("NFA{id=%d states=%d trans=%d eps=%d loops=%d finals=%v}",
		n.ID, n.NumStates, len(n.Trans), len(n.Eps), len(n.Loops), n.Finals)
}

// frag is a Thompson fragment with one entry and one exit state.
type frag struct {
	start, end StateID
}

// Build converts an AST into an ε-NFA using the Thompson-like construction
// of §IV-B: a depth-first traversal encodes atomic sub-expressions as
// two-state sub-FSAs and wires operator structures around them. Counted
// repetitions are saved as Loop records for the expansion pass. Anchors are
// accepted only as a leading ^ or trailing $.
func Build(ast *rex.Node) (*NFA, error) {
	n := &NFA{}
	root, anchorStart, anchorEnd, err := stripAnchors(ast)
	if err != nil {
		return nil, err
	}
	n.AnchorStart, n.AnchorEnd = anchorStart, anchorEnd
	f, err := n.build(root)
	if err != nil {
		return nil, err
	}
	n.Start = f.start
	n.setFinals([]StateID{f.end})
	return n, nil
}

// stripAnchors removes a leading '^' and a trailing '$' from the top-level
// concatenation and rejects anchors anywhere else.
func stripAnchors(ast *rex.Node) (root *rex.Node, start, end bool, err error) {
	subs := []*rex.Node{ast}
	if ast.Op == rex.OpConcat {
		subs = append([]*rex.Node(nil), ast.Subs...)
	}
	if len(subs) > 0 && subs[0].Op == rex.OpAnchor && subs[0].Atom == '^' {
		start = true
		subs = subs[1:]
	}
	if len(subs) > 0 && subs[len(subs)-1].Op == rex.OpAnchor && subs[len(subs)-1].Atom == '$' {
		end = true
		subs = subs[:len(subs)-1]
	}
	root = rex.Concat(subs...)
	bad := false
	root.Walk(func(m *rex.Node) {
		if m.Op == rex.OpAnchor {
			bad = true
		}
	})
	if bad {
		return nil, false, false, fmt.Errorf("nfa: anchors are supported only at the pattern boundaries")
	}
	return root, start, end, nil
}

func (n *NFA) build(node *rex.Node) (frag, error) {
	switch node.Op {
	case rex.OpEmpty:
		s, f := n.newState(), n.newState()
		n.Eps = append(n.Eps, EpsTransition{s, f})
		return frag{s, f}, nil
	case rex.OpLit:
		if node.Set.IsEmpty() {
			return frag{}, fmt.Errorf("nfa: empty character class matches nothing")
		}
		s, f := n.newState(), n.newState()
		n.Trans = append(n.Trans, Transition{s, f, node.Set})
		return frag{s, f}, nil
	case rex.OpConcat:
		cur, err := n.build(node.Subs[0])
		if err != nil {
			return frag{}, err
		}
		for _, sub := range node.Subs[1:] {
			next, err := n.build(sub)
			if err != nil {
				return frag{}, err
			}
			n.Eps = append(n.Eps, EpsTransition{cur.end, next.start})
			cur = frag{cur.start, next.end}
		}
		return cur, nil
	case rex.OpAlt:
		// Single-characters alternation is an arc with multiplicity > 1
		// (§IV-C(3)): encode it directly as one CC-labeled transition so
		// the merge cannot produce the incorrect paths of Fig. 5b.
		if lits, ok := allLiterals(node.Subs); ok {
			s, f := n.newState(), n.newState()
			n.Trans = append(n.Trans, Transition{s, f, lits})
			return frag{s, f}, nil
		}
		s, f := n.newState(), n.newState()
		for _, sub := range node.Subs {
			sf, err := n.build(sub)
			if err != nil {
				return frag{}, err
			}
			n.Eps = append(n.Eps, EpsTransition{s, sf.start}, EpsTransition{sf.end, f})
		}
		return frag{s, f}, nil
	case rex.OpRepeat:
		return n.buildRepeat(node)
	default:
		return frag{}, fmt.Errorf("nfa: cannot build %v node", node.Op)
	}
}

// allLiterals reports whether every node is an OpLit leaf, returning the
// union of their symbol sets.
func allLiterals(subs []*rex.Node) (charset.Set, bool) {
	var u charset.Set
	for _, s := range subs {
		if s.Op != rex.OpLit {
			return charset.Set{}, false
		}
		u = u.Union(s.Set)
	}
	return u, !u.IsEmpty()
}

func (n *NFA) buildRepeat(node *rex.Node) (frag, error) {
	min, max := node.Min, node.Max
	switch {
	case min == 0 && max == rex.Inf: // X*
		s, f := n.newState(), n.newState()
		sf, err := n.build(node.Subs[0])
		if err != nil {
			return frag{}, err
		}
		n.Eps = append(n.Eps,
			EpsTransition{s, sf.start},
			EpsTransition{sf.end, f},
			EpsTransition{s, f},
			EpsTransition{sf.end, sf.start})
		return frag{s, f}, nil
	case min == 1 && max == rex.Inf: // X+
		sf, err := n.build(node.Subs[0])
		if err != nil {
			return frag{}, err
		}
		n.Eps = append(n.Eps, EpsTransition{sf.end, sf.start})
		return sf, nil
	case min == 0 && max == 1: // X?
		sf, err := n.build(node.Subs[0])
		if err != nil {
			return frag{}, err
		}
		n.Eps = append(n.Eps, EpsTransition{sf.start, sf.end})
		return sf, nil
	default:
		// Counted repetition: record the loop, leave Entry..Exit
		// unconnected until ExpandLoops materializes it (§IV-C(2)).
		s, f := n.newState(), n.newState()
		n.Loops = append(n.Loops, Loop{Entry: s, Exit: f, Min: min, Max: max, Body: node.Subs[0]})
		return frag{s, f}, nil
	}
}

// sortTrans orders transitions row-major (From, then To, then label min),
// the COO layout of Fig. 2.
func (n *NFA) sortTrans() {
	sort.Slice(n.Trans, func(i, j int) bool {
		a, b := n.Trans[i], n.Trans[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Label.Min() < b.Label.Min()
	})
}

// OutDegree returns, for each state, the number of outgoing labeled
// transitions. Used by tests and by the merge heuristic.
func (n *NFA) OutDegree() []int {
	deg := make([]int, n.NumStates)
	for _, t := range n.Trans {
		deg[t.From]++
	}
	return deg
}
