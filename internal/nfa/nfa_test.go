package nfa

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/charset"
	"repro/internal/rex"
)

func mustBuild(t *testing.T, pattern string) *NFA {
	t.Helper()
	ast, err := rex.Parse(pattern)
	if err != nil {
		t.Fatalf("parse %q: %v", pattern, err)
	}
	n, err := Build(ast)
	if err != nil {
		t.Fatalf("build %q: %v", pattern, err)
	}
	n.Pattern = pattern
	return n
}

func mustCompile(t *testing.T, pattern string) *NFA {
	t.Helper()
	n, err := Compile(pattern)
	if err != nil {
		t.Fatalf("compile %q: %v", pattern, err)
	}
	return n
}

func TestBuildLiteral(t *testing.T) {
	n := mustBuild(t, "a")
	if n.NumStates != 2 || len(n.Trans) != 1 || len(n.Eps) != 0 {
		t.Fatalf("unexpected shape: %v", n)
	}
	tr := n.Trans[0]
	if tr.From != n.Start || !n.IsFinal(tr.To) {
		t.Fatal("transition does not link start to final")
	}
	if b, ok := tr.Label.IsSingle(); !ok || b != 'a' {
		t.Fatalf("label %v", tr.Label)
	}
}

func TestBuildCountedRepeatDeferred(t *testing.T) {
	n := mustBuild(t, "a{2,4}")
	if len(n.Loops) != 1 {
		t.Fatalf("loops=%d, want 1", len(n.Loops))
	}
	lp := n.Loops[0]
	if lp.Min != 2 || lp.Max != 4 {
		t.Fatalf("bounds %d,%d", lp.Min, lp.Max)
	}
	if err := ExpandLoops(n); err != nil {
		t.Fatal(err)
	}
	if len(n.Loops) != 0 {
		t.Fatal("loops not consumed")
	}
}

func TestAnchorFlags(t *testing.T) {
	n := mustBuild(t, "^abc$")
	if !n.AnchorStart || !n.AnchorEnd {
		t.Fatalf("anchors: start=%v end=%v", n.AnchorStart, n.AnchorEnd)
	}
	n = mustBuild(t, "abc")
	if n.AnchorStart || n.AnchorEnd {
		t.Fatal("spurious anchors")
	}
	ast := rex.MustParse("a^b")
	if _, err := Build(ast); err == nil {
		t.Fatal("interior anchor accepted")
	}
}

func TestAcceptsBasics(t *testing.T) {
	cases := []struct {
		pattern string
		yes, no []string
	}{
		{"abc", []string{"abc"}, []string{"", "ab", "abcd", "abd"}},
		{"a|b", []string{"a", "b"}, []string{"", "c", "ab"}},
		{"a*", []string{"", "a", "aaaa"}, []string{"b", "ab"}},
		{"a+", []string{"a", "aa"}, []string{"", "b"}},
		{"a?b", []string{"b", "ab"}, []string{"", "aab"}},
		{"(ab)+", []string{"ab", "abab"}, []string{"", "a", "aba"}},
		{"a{2,3}", []string{"aa", "aaa"}, []string{"", "a", "aaaa"}},
		{"a{2,}", []string{"aa", "aaa", "aaaaaa"}, []string{"a", ""}},
		{"a{3}", []string{"aaa"}, []string{"aa", "aaaa"}},
		{"[a-c]x", []string{"ax", "bx", "cx"}, []string{"dx", "x"}},
		{"[^a]", []string{"b", "z", "\n"}, []string{"a", ""}},
		{".", []string{"a", "z", " "}, []string{"", "\n", "ab"}},
		{"a.c", []string{"abc", "axc"}, []string{"ac", "a\nc"}},
		{"(a|bc)d(e|f){1,2}", []string{"ade", "bcdf", "adef", "bcdee"}, []string{"ad", "adx", "adeee"}},
		{"", []string{""}, []string{"a"}},
		{"()|a", []string{"", "a"}, []string{"b"}},
	}
	for _, c := range cases {
		raw := mustBuild(t, c.pattern)
		if err := ExpandLoops(raw); err != nil {
			t.Fatalf("%s: %v", c.pattern, err)
		}
		opt := mustCompile(t, c.pattern)
		for _, s := range c.yes {
			if !mustAccepts(t, raw, []byte(s)) {
				t.Errorf("%s: raw rejects %q", c.pattern, s)
			}
			if !mustAccepts(t, opt, []byte(s)) {
				t.Errorf("%s: optimized rejects %q", c.pattern, s)
			}
		}
		for _, s := range c.no {
			if mustAccepts(t, raw, []byte(s)) {
				t.Errorf("%s: raw accepts %q", c.pattern, s)
			}
			if mustAccepts(t, opt, []byte(s)) {
				t.Errorf("%s: optimized accepts %q", c.pattern, s)
			}
		}
	}
}

func TestOptimizeRemovesEpsilon(t *testing.T) {
	n := mustCompile(t, "(a|b)*c{2,3}(d|ef)+")
	if len(n.Eps) != 0 {
		t.Fatalf("eps remain: %d", len(n.Eps))
	}
	if len(n.Loops) != 0 {
		t.Fatal("loops remain")
	}
}

func TestMergeParallel(t *testing.T) {
	// a|b|c between the same states: after optimization there must be no
	// two transitions sharing (from, to).
	n := mustCompile(t, "(a|b|c)x")
	type pair struct{ f, to StateID }
	seen := map[pair]bool{}
	for _, tr := range n.Trans {
		p := pair{tr.From, tr.To}
		if seen[p] {
			t.Fatalf("parallel arcs remain between %d and %d", tr.From, tr.To)
		}
		seen[p] = true
	}
	// The union class must cover a, b, c.
	found := false
	for _, tr := range n.Trans {
		if tr.Label.Contains('a') && tr.Label.Contains('b') && tr.Label.Contains('c') {
			found = true
		}
	}
	if !found {
		t.Fatal("no merged [abc] class transition")
	}
}

func TestMergeParallelDirect(t *testing.T) {
	n := &NFA{NumStates: 2, Start: 0, Finals: []StateID{1}}
	n.Trans = []Transition{
		{0, 1, charset.Single('a')},
		{0, 1, charset.Single('b')},
		{0, 1, charset.Single('k')},
	}
	MergeParallel(n)
	if len(n.Trans) != 1 {
		t.Fatalf("trans=%d, want 1", len(n.Trans))
	}
	if n.Trans[0].Label.Len() != 3 {
		t.Fatalf("label %v", n.Trans[0].Label)
	}
}

func TestTrimUnreachable(t *testing.T) {
	n := &NFA{NumStates: 4, Start: 0, Finals: []StateID{1}}
	n.Trans = []Transition{
		{0, 1, charset.Single('a')},
		{2, 3, charset.Single('b')}, // unreachable island
		{1, 2, charset.Single('c')}, // 2 reachable but dead (cannot reach final 1? 2->3 dead)
	}
	n.trim()
	if n.NumStates != 2 {
		t.Fatalf("states=%d, want 2", n.NumStates)
	}
	if len(n.Trans) != 1 {
		t.Fatalf("trans=%d, want 1", len(n.Trans))
	}
}

func TestTrimKeepsEmptyLanguageStart(t *testing.T) {
	n := &NFA{NumStates: 2, Start: 0}
	n.Trans = []Transition{{0, 1, charset.Single('a')}}
	n.trim()
	if n.NumStates != 1 || n.Start != 0 {
		t.Fatalf("states=%d start=%d", n.NumStates, n.Start)
	}
}

func TestExpansionCounts(t *testing.T) {
	// a{3} must produce a 3-transition chain after optimization.
	n := mustCompile(t, "a{3}")
	if len(n.Trans) != 3 || n.NumStates != 4 {
		t.Fatalf("a{3}: states=%d trans=%d", n.NumStates, len(n.Trans))
	}
	// a{2,4}: chain of 4 with early exits; 4 transitions, finals at depth 2,3,4.
	n = mustCompile(t, "a{2,4}")
	if len(n.Trans) != 4 {
		t.Fatalf("a{2,4}: trans=%d, want 4", len(n.Trans))
	}
	if len(n.Finals) != 3 {
		t.Fatalf("a{2,4}: finals=%v, want 3 accepting depths", n.Finals)
	}
}

func TestNestedCountedRepeat(t *testing.T) {
	n := mustCompile(t, "(a{2}){2,3}")
	for _, s := range []string{"aaaa", "aaaaaa"} {
		if !mustAccepts(t, n, []byte(s)) {
			t.Errorf("rejects %q", s)
		}
	}
	for _, s := range []string{"", "aa", "aaa", "aaaaa", "aaaaaaa"} {
		if mustAccepts(t, n, []byte(s)) {
			t.Errorf("accepts %q", s)
		}
	}
}

func TestCCLen(t *testing.T) {
	n := mustCompile(t, "[abc]x[de]")
	if got := n.CCLen(); got != 5 {
		t.Fatalf("CCLen=%d, want 5", got)
	}
	n = mustCompile(t, "abc")
	if got := n.CCLen(); got != 0 {
		t.Fatalf("CCLen=%d, want 0", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	n := mustCompile(t, "ab[cd]")
	c := n.Clone()
	c.Trans[0].Label = charset.Single('z')
	c.Finals[0] = 99
	if n.Trans[0].Label.Contains('z') {
		t.Fatal("clone shares Trans")
	}
	if n.Finals[0] == 99 {
		t.Fatal("clone shares Finals")
	}
}

func TestEmptyClassRejected(t *testing.T) {
	// [^\x00-\xff] would be an empty class; construct via AST directly.
	ast := rex.Literal(charset.Set{})
	if _, err := Build(ast); err == nil {
		t.Fatal("empty class accepted")
	}
}

// --- randomized equivalence against the stdlib regexp engine ---

func randPattern(r *rand.Rand, depth int) string {
	if depth <= 0 {
		atoms := []string{"a", "b", "c", "ab", "[a-c]", "[bc]", "[^ab]", "."}
		return atoms[r.Intn(len(atoms))]
	}
	switch r.Intn(7) {
	case 0, 1:
		return randPattern(r, depth-1) + randPattern(r, depth-1)
	case 2:
		return "(" + randPattern(r, depth-1) + "|" + randPattern(r, depth-1) + ")"
	case 3:
		return "(" + randPattern(r, depth-1) + ")*"
	case 4:
		return "(" + randPattern(r, depth-1) + ")?"
	case 5:
		return "(" + randPattern(r, depth-1) + "){1,3}"
	default:
		return "(" + randPattern(r, depth-1) + ")+"
	}
}

func randInput(r *rand.Rand, n int) []byte {
	alpha := []byte("abcd")
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[r.Intn(len(alpha))]
	}
	return b
}

func TestQuickAcceptsMatchesStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		pat := randPattern(r, 3)
		re, err := regexp.Compile("\\A(?:" + pat + ")\\z")
		if err != nil {
			return true // not an RE2 pattern; skip
		}
		n, err := Compile(pat)
		if err != nil {
			t.Logf("compile %q: %v", pat, err)
			return false
		}
		for k := 0; k < 12; k++ {
			in := randInput(r, r.Intn(8))
			got := mustAccepts(t, n, in)
			want := re.Match(in)
			if got != want {
				t.Logf("pattern %q input %q: nfa=%v stdlib=%v", pat, in, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOptimizationPreservesLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	f := func() bool {
		pat := randPattern(r, 3)
		raw, err := Compile(pat) // fully optimized
		if err != nil {
			t.Logf("compile %q: %v", pat, err)
			return false
		}
		ast := rex.MustParse(pat)
		eps, err := Build(ast)
		if err != nil {
			return false
		}
		if err := ExpandLoops(eps); err != nil {
			return false
		}
		for k := 0; k < 12; k++ {
			in := randInput(r, r.Intn(8))
			if mustAccepts(t, eps, in) != mustAccepts(t, raw, in) {
				t.Logf("pattern %q input %q disagree", pat, in)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNoParallelArcsAfterOptimize(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	f := func() bool {
		pat := randPattern(r, 3)
		n, err := Compile(pat)
		if err != nil {
			return false
		}
		type pair struct{ f, t StateID }
		seen := map[pair]bool{}
		for _, tr := range n.Trans {
			p := pair{tr.From, tr.To}
			if seen[p] {
				t.Logf("pattern %q has parallel arcs", pat)
				return false
			}
			seen[p] = true
		}
		return len(n.Eps) == 0 && len(n.Loops) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestOutDegree(t *testing.T) {
	n := mustCompile(t, "a(b|c)")
	deg := n.OutDegree()
	total := 0
	for _, d := range deg {
		total += d
	}
	if total != len(n.Trans) {
		t.Fatalf("degree sum %d != trans %d", total, len(n.Trans))
	}
}

func TestRealisticRulesCompile(t *testing.T) {
	rules := []string{
		`^GET /[a-z0-9_]{1,16}\.php`,
		`User-Agent: [Mm]ozilla`,
		`\x90{8,}`,
		`(GET|POST|HEAD) /admin`,
		`cmd\.exe(\?|/c)`,
		`[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}`,
		`SELECT.{1,64}FROM`,
		`[ACGT]{10,20}TATA`,
	}
	for _, rule := range rules {
		n, err := Compile(rule)
		if err != nil {
			t.Errorf("%s: %v", rule, err)
			continue
		}
		if n.NumStates == 0 || len(n.Trans) == 0 {
			t.Errorf("%s: degenerate automaton %v", rule, n)
		}
	}
}

func TestAcceptsLongChain(t *testing.T) {
	pat := strings.Repeat("ab", 50)
	n := mustCompile(t, pat)
	if !mustAccepts(t, n, []byte(pat)) {
		t.Fatal("rejects own literal")
	}
	if n.NumStates != 101 {
		t.Fatalf("states=%d, want 101", n.NumStates)
	}
}

func BenchmarkCompile(b *testing.B) {
	pat := `(GET|POST) /[a-z0-9/_-]{1,24}\.(php|html) HTTP/1\.[01]`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(pat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccepts(b *testing.B) {
	n, err := Compile("(a|b)*abb")
	if err != nil {
		b.Fatal(err)
	}
	in := []byte(strings.Repeat("ab", 100) + "abb")
	b.SetBytes(int64(len(in)))
	for i := 0; i < b.N; i++ {
		mustAccepts(b, n, in)
	}
}

// mustAccepts is Accepts for automata known to be fully expanded; it fails
// the test on error.
func mustAccepts(tb testing.TB, n *NFA, input []byte) bool {
	tb.Helper()
	ok, err := Accepts(n, input)
	if err != nil {
		tb.Fatalf("Accepts: %v", err)
	}
	return ok
}
