package nfa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/charset"
)

func TestRefineAlphabetPaperExample(t *testing.T) {
	// §VI-A: [abce] and [bcd] should expose a shared [bc] block.
	a := mustCompile(t, "[abce]")
	b := mustCompile(t, "[bcd]")
	refined := RefineAlphabet([]*NFA{a, b})

	findLabels := func(n *NFA) map[string]bool {
		out := map[string]bool{}
		for _, tr := range n.Trans {
			out[tr.Label.String()] = true
		}
		return out
	}
	la, lb := findLabels(refined[0]), findLabels(refined[1])
	if !la["[bc]"] || !lb["[bc]"] {
		t.Fatalf("shared [bc] block missing: %v / %v", la, lb)
	}
	if !la["[ae]"] {
		t.Fatalf("private [ae] block missing: %v", la)
	}
	if !lb["d"] {
		t.Fatalf("private d block missing: %v", lb)
	}
}

func TestRefineAlphabetPreservesLanguage(t *testing.T) {
	patterns := []string{"[abce]x", "[bcd]x", "a[0-9]{2}", "q(w|[er])ty"}
	fsas := make([]*NFA, len(patterns))
	for i, p := range patterns {
		fsas[i] = mustCompile(t, p)
	}
	refined := RefineAlphabet(fsas)
	inputs := []string{"ax", "bx", "cx", "dx", "ex", "a12", "qwty", "qety", "qrty", "", "zz"}
	for i := range fsas {
		if refined[i].NumStates != fsas[i].NumStates {
			t.Fatalf("FSA %d: states changed %d → %d", i, fsas[i].NumStates, refined[i].NumStates)
		}
		for _, in := range inputs {
			if got, want := mustAccepts(t, refined[i], []byte(in)), mustAccepts(t, fsas[i], []byte(in)); got != want {
				t.Errorf("FSA %d input %q: refined=%v original=%v", i, in, got, want)
			}
		}
	}
}

func TestRefineAlphabetDoesNotMutateInput(t *testing.T) {
	a := mustCompile(t, "[abce]")
	before := len(a.Trans)
	RefineAlphabet([]*NFA{a, mustCompile(t, "[bcd]")})
	if len(a.Trans) != before {
		t.Fatal("input mutated")
	}
}

func TestRefineAlphabetBlocksDisjoint(t *testing.T) {
	fsas := []*NFA{mustCompile(t, "[a-m]x"), mustCompile(t, "[h-z]y"), mustCompile(t, ".")}
	refined := RefineAlphabet(fsas)
	// Within one refined automaton, any two distinct labels between the
	// same states must be disjoint, and all labels must come from one
	// global partition: any two labels anywhere are equal or disjoint.
	var all []charset.Set
	for _, n := range refined {
		for _, tr := range n.Trans {
			all = append(all, tr.Label)
		}
	}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if all[i].Equal(all[j]) {
				continue
			}
			if all[i].Overlaps(all[j]) {
				t.Fatalf("labels %v and %v overlap without being equal", all[i], all[j])
			}
		}
	}
}

func TestQuickRefinePreservesLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	f := func() bool {
		m := 2 + r.Intn(3)
		fsas := make([]*NFA, m)
		for i := range fsas {
			// Random class-heavy patterns.
			lo1 := byte('a') + byte(r.Intn(6))
			hi1 := lo1 + byte(1+r.Intn(6))
			lo2 := byte('c') + byte(r.Intn(8))
			hi2 := lo2 + byte(1+r.Intn(5))
			pat := "[" + string(lo1) + "-" + string(hi1) + "][" + string(lo2) + "-" + string(hi2) + "]?x*"
			n, err := Compile(pat)
			if err != nil {
				t.Logf("compile %q: %v", pat, err)
				return false
			}
			fsas[i] = n
		}
		refined := RefineAlphabet(fsas)
		for i := range fsas {
			for k := 0; k < 8; k++ {
				in := make([]byte, r.Intn(4))
				for b := range in {
					in[b] = byte('a' + r.Intn(20))
				}
				if mustAccepts(t, refined[i], in) != mustAccepts(t, fsas[i], in) {
					t.Logf("FSA %d input %q disagree", i, in)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineAlphabetEmptyGroup(t *testing.T) {
	if got := RefineAlphabet(nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func BenchmarkRefineAlphabet(b *testing.B) {
	fsas := make([]*NFA, 0, 20)
	for i := 0; i < 20; i++ {
		lo := byte('a' + i%10)
		n, err := Compile("[" + string(lo) + "-z]key[0-9]")
		if err != nil {
			b.Fatal(err)
		}
		fsas = append(fsas, n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RefineAlphabet(fsas)
	}
}
