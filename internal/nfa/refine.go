package nfa

import (
	"repro/internal/charset"
)

// RefineAlphabet implements the character-class merging improvement the
// paper leaves as future work (§VI-A): Algorithm 1 merges CC transitions
// only when the classes are byte-identical, so [abce] and [bcd] never
// share their common [bc]. RefineAlphabet computes the partition of the
// byte alphabet induced by every transition label across the group — two
// bytes are equivalent iff they appear in exactly the same set of labels —
// and rewrites each transition as parallel transitions over the partition
// blocks it covers. Every label becomes a disjoint union of group-wide
// canonical blocks, so the merge's exact-equality comparison now unifies
// partial CC overlaps block by block.
//
// The transform preserves each automaton's language exactly (the union of
// the blocks is the original label) and its state set; only the transition
// multiplicity grows. The returned automata are deep copies; inputs are not
// modified.
func RefineAlphabet(fsas []*NFA) []*NFA {
	// Signature of a byte = the set of distinct labels containing it.
	// Two bytes with equal signatures always travel together, so they
	// can share a block.
	labels := make(map[charset.Set]int) // label → bit index
	for _, a := range fsas {
		for _, t := range a.Trans {
			if _, ok := labels[t.Label]; !ok {
				labels[t.Label] = len(labels)
			}
		}
	}
	words := (len(labels) + 63) / 64
	if words == 0 {
		words = 1
	}
	sig := make([][]uint64, 256)
	for c := range sig {
		sig[c] = make([]uint64, words)
	}
	for label, bit := range labels {
		label.ForEach(func(c byte) {
			sig[c][bit>>6] |= 1 << (uint(bit) & 63)
		})
	}
	// Group bytes by signature into blocks.
	type blockKey string
	blockOf := make(map[blockKey]*charset.Set)
	var blocks []*charset.Set
	byteBlock := make([]int, 256)
	for c := 0; c < 256; c++ {
		k := make([]byte, 0, words*8)
		for _, w := range sig[c] {
			for i := 0; i < 8; i++ {
				k = append(k, byte(w>>(8*i)))
			}
		}
		key := blockKey(k)
		blk, ok := blockOf[key]
		if !ok {
			blk = &charset.Set{}
			blockOf[key] = blk
			blocks = append(blocks, blk)
		}
		blk.Add(byte(c))
		byteBlock[c] = indexOf(blocks, blk)
	}

	// Rewrite every transition as one arc per covered block.
	out := make([]*NFA, len(fsas))
	for i, a := range fsas {
		c := a.Clone()
		var trans []Transition
		for _, t := range c.Trans {
			covered := make(map[int]bool)
			t.Label.ForEach(func(ch byte) {
				covered[byteBlock[ch]] = true
			})
			for bi := range covered {
				trans = append(trans, Transition{From: t.From, To: t.To, Label: *blocks[bi]})
			}
		}
		c.Trans = trans
		c.sortTrans()
		out[i] = c
	}
	return out
}

func indexOf(blocks []*charset.Set, b *charset.Set) int {
	for i := range blocks {
		if blocks[i] == b {
			return i
		}
	}
	return -1
}
