package nfa

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/charset"
	"repro/internal/rex"
)

// Limits bounds the single-FSA optimization stage. The zero value selects
// the package defaults; negative values disable the corresponding check.
type Limits struct {
	// MaxStates caps the automaton's state count during and after loop
	// expansion — the pass where counted repetitions can blow an automaton
	// up combinatorially (nested {m,n} bounds multiply). The check runs
	// after every materialized loop body, so memory consumption is bounded
	// by the budget plus one body copy, not by the fully expanded size.
	MaxStates int
}

// DefaultMaxStates is the default per-FSA state budget of loop expansion.
// The largest published per-RE automata stay in the low thousands of
// states; a quarter-million leaves two orders of magnitude of headroom
// while still catching adversarial nested repetitions early.
const DefaultMaxStates = 1 << 18

func (l Limits) maxStates() int {
	if l.MaxStates == 0 {
		return DefaultMaxStates
	}
	return l.MaxStates
}

// ExpandLoops materializes every pending Loop record, per §IV-C(2):
// a counted repetition X{m,n} becomes m chained copies of X followed by
// n−m optional copies, and X{m,} becomes m copies followed by a Kleene tail.
// Expansion maximizes the mergeable transitions (Fig. 5a) at the cost of
// duplicated sub-FSAs. Nested counted repetitions expand recursively.
// The default state budget applies; ExpandLoopsWith overrides it.
func ExpandLoops(n *NFA) error {
	return ExpandLoopsWith(n, Limits{})
}

// ExpandLoopsWith is ExpandLoops under explicit budgets. Violations satisfy
// errors.Is(err, budget.Err).
func ExpandLoopsWith(n *NFA, lim Limits) error {
	max := lim.maxStates()
	for len(n.Loops) > 0 {
		loops := n.Loops
		n.Loops = nil
		for _, lp := range loops {
			if err := expandOne(n, lp, max); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkStates enforces the expansion state budget.
func checkStates(n *NFA, max int) error {
	if max > 0 && n.NumStates > max {
		return budget.Errorf("nfa: loop expansion of %q exceeds state budget %d (%d states so far)",
			n.Pattern, max, n.NumStates)
	}
	return nil
}

func expandOne(n *NFA, lp Loop, max int) error {
	cur := lp.Entry
	for i := 0; i < lp.Min; i++ {
		f, err := n.build(lp.Body)
		if err != nil {
			return err
		}
		if err := checkStates(n, max); err != nil {
			return err
		}
		n.Eps = append(n.Eps, EpsTransition{cur, f.start})
		cur = f.end
	}
	if lp.Max == rex.Inf {
		// Kleene tail: cur (X* ) Exit.
		f, err := n.build(lp.Body)
		if err != nil {
			return err
		}
		if err := checkStates(n, max); err != nil {
			return err
		}
		n.Eps = append(n.Eps,
			EpsTransition{cur, f.start},
			EpsTransition{f.end, f.start},
			EpsTransition{f.end, lp.Exit},
			EpsTransition{cur, lp.Exit})
		return nil
	}
	for i := lp.Min; i < lp.Max; i++ {
		f, err := n.build(lp.Body)
		if err != nil {
			return err
		}
		if err := checkStates(n, max); err != nil {
			return err
		}
		n.Eps = append(n.Eps,
			EpsTransition{cur, lp.Exit}, // stop after i repetitions
			EpsTransition{cur, f.start})
		cur = f.end
	}
	n.Eps = append(n.Eps, EpsTransition{cur, lp.Exit})
	return nil
}

// RemoveEpsilon eliminates every ε-arc (§IV-C(1)): for each state q and each
// state p in its ε-closure, the labeled transitions of p are re-rooted at q,
// and q becomes final when its closure contains a final state. Unreachable
// and dead (non-co-accessible) states are then trimmed and ids compacted.
// ANML does not support ε-moves, so this pass must run before the Back-End.
func RemoveEpsilon(n *NFA) error {
	if len(n.Loops) > 0 {
		return fmt.Errorf("nfa: ε-removal requires loop expansion first (%d pending loops)", len(n.Loops))
	}
	// ε-adjacency.
	eadj := make([][]StateID, n.NumStates)
	for _, e := range n.Eps {
		eadj[e.From] = append(eadj[e.From], e.To)
	}
	// Labeled adjacency.
	tadj := make([][]Transition, n.NumStates)
	for _, t := range n.Trans {
		tadj[t.From] = append(tadj[t.From], t)
	}
	isFinal := make([]bool, n.NumStates)
	for _, f := range n.Finals {
		isFinal[f] = true
	}

	type key struct {
		from, to StateID
		label    charset.Set
	}
	seen := make(map[key]struct{}, len(n.Trans)*2)
	var newTrans []Transition
	var newFinals []StateID

	mark := make([]int32, n.NumStates)
	for i := range mark {
		mark[i] = -1
	}
	stack := make([]StateID, 0, 16)
	for q := StateID(0); q < StateID(n.NumStates); q++ {
		// DFS ε-closure of q.
		stack = stack[:0]
		stack = append(stack, q)
		mark[q] = q
		final := false
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if isFinal[p] {
				final = true
			}
			for _, t := range tadj[p] {
				k := key{q, t.To, t.Label}
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					newTrans = append(newTrans, Transition{q, t.To, t.Label})
				}
			}
			for _, r := range eadj[p] {
				if mark[r] != q {
					mark[r] = q
					stack = append(stack, r)
				}
			}
		}
		if final {
			newFinals = append(newFinals, q)
		}
	}
	n.Trans = newTrans
	n.Eps = nil
	n.setFinals(newFinals)
	n.trim()
	return nil
}

// trim removes states not reachable from Start or unable to reach a final
// state, compacting ids. The start state is always kept so that an automaton
// with the empty language remains well-formed.
func (n *NFA) trim() {
	fwd := make([][]StateID, n.NumStates)
	bwd := make([][]StateID, n.NumStates)
	for _, t := range n.Trans {
		fwd[t.From] = append(fwd[t.From], t.To)
		bwd[t.To] = append(bwd[t.To], t.From)
	}
	reach := bfs(fwd, []StateID{n.Start}, n.NumStates)
	coreach := bfs(bwd, n.Finals, n.NumStates)

	remap := make([]StateID, n.NumStates)
	for i := range remap {
		remap[i] = -1
	}
	next := StateID(0)
	for q := StateID(0); q < StateID(n.NumStates); q++ {
		if (reach[q] && coreach[q]) || q == n.Start {
			remap[q] = next
			next++
		}
	}
	var trans []Transition
	for _, t := range n.Trans {
		if remap[t.From] >= 0 && remap[t.To] >= 0 {
			trans = append(trans, Transition{remap[t.From], remap[t.To], t.Label})
		}
	}
	var finals []StateID
	for _, f := range n.Finals {
		if remap[f] >= 0 {
			finals = append(finals, remap[f])
		}
	}
	n.Trans = trans
	n.Start = remap[n.Start]
	n.NumStates = int(next)
	n.setFinals(finals)
}

func bfs(adj [][]StateID, seeds []StateID, numStates int) []bool {
	vis := make([]bool, numStates)
	queue := make([]StateID, 0, len(seeds))
	for _, s := range seeds {
		if !vis[s] {
			vis[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for _, r := range adj[q] {
			if !vis[r] {
				vis[r] = true
				queue = append(queue, r)
			}
		}
	}
	return vis
}

// MergeParallel rewrites arcs with multiplicity greater than one (§IV-C(3)):
// all parallel transitions between the same state pair are combined into one
// transition labeled by the union character class, preventing the incorrect
// cross-product merges of Fig. 5b.
func MergeParallel(n *NFA) {
	type pair struct{ from, to StateID }
	acc := make(map[pair]charset.Set, len(n.Trans))
	order := make([]pair, 0, len(n.Trans))
	for _, t := range n.Trans {
		p := pair{t.From, t.To}
		if _, ok := acc[p]; !ok {
			order = append(order, p)
		}
		acc[p] = acc[p].Union(t.Label)
	}
	out := n.Trans[:0]
	for _, p := range order {
		out = append(out, Transition{p.from, p.to, acc[p]})
	}
	n.Trans = out
	n.sortTrans()
}

// Optimize runs the complete single-FSA optimization stage of the Middle-End
// (§IV-C) in order: loop expansion, ε-removal (with trimming), and parallel-
// arc simplification. The result is an ε-free NFA in COO order, ready for
// merging. The default Limits apply; OptimizeWith overrides them.
func Optimize(n *NFA) error {
	return OptimizeWith(n, Limits{})
}

// OptimizeWith is Optimize under explicit budgets. Violations satisfy
// errors.Is(err, budget.Err).
func OptimizeWith(n *NFA, lim Limits) error {
	if err := ExpandLoopsWith(n, lim); err != nil {
		return err
	}
	if err := RemoveEpsilon(n); err != nil {
		return err
	}
	MergeParallel(n)
	return nil
}

// Compile is the convenience composition Parse → Build → Optimize used by
// tests, tools, and the dataset generators.
func Compile(pattern string) (*NFA, error) {
	ast, err := rex.Parse(pattern)
	if err != nil {
		return nil, err
	}
	n, err := Build(ast)
	if err != nil {
		return nil, err
	}
	n.Pattern = pattern
	if err := Optimize(n); err != nil {
		return nil, err
	}
	return n, nil
}

// Accepts reports whether the automaton accepts exactly the whole input, the
// classical acceptance relation ⊢* of §II. It handles ε-arcs so it can be
// used to check language preservation across optimization passes. Pending
// loops must be expanded first; calling Accepts on an incomplete IR is an
// error, not a panic.
func Accepts(n *NFA, input []byte) (bool, error) {
	if len(n.Loops) > 0 {
		return false, fmt.Errorf("nfa: Accepts called with %d pending loops; run ExpandLoops first", len(n.Loops))
	}
	eadj := make([][]StateID, n.NumStates)
	for _, e := range n.Eps {
		eadj[e.From] = append(eadj[e.From], e.To)
	}
	tadj := make([][]Transition, n.NumStates)
	for _, t := range n.Trans {
		tadj[t.From] = append(tadj[t.From], t)
	}
	cur := closure(map[StateID]struct{}{n.Start: {}}, eadj)
	for _, c := range input {
		next := make(map[StateID]struct{})
		for q := range cur {
			for _, t := range tadj[q] {
				if t.Label.Contains(c) {
					next[t.To] = struct{}{}
				}
			}
		}
		if len(next) == 0 {
			return false, nil
		}
		cur = closure(next, eadj)
	}
	for q := range cur {
		if n.IsFinal(q) {
			return true, nil
		}
	}
	return false, nil
}

func closure(set map[StateID]struct{}, eadj [][]StateID) map[StateID]struct{} {
	stack := make([]StateID, 0, len(set))
	for q := range set {
		stack = append(stack, q)
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range eadj[q] {
			if _, ok := set[r]; !ok {
				set[r] = struct{}{}
				stack = append(stack, r)
			}
		}
	}
	return set
}
