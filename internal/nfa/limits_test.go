package nfa

import (
	"errors"
	"testing"

	"repro/internal/budget"
	"repro/internal/rex"
)

// buildFor parses and constructs the raw ε-NFA without optimizing, so tests
// can drive the expansion pass with explicit budgets.
func buildFor(t *testing.T, pattern string) *NFA {
	t.Helper()
	ast, err := rex.Parse(pattern)
	if err != nil {
		t.Fatalf("parse %q: %v", pattern, err)
	}
	n, err := Build(ast)
	if err != nil {
		t.Fatalf("build %q: %v", pattern, err)
	}
	n.Pattern = pattern
	return n
}

func TestExpandLoopsStateBudget(t *testing.T) {
	// (a{500}){500} wants ~250k states plus wiring — over the default cap.
	n := buildFor(t, "(a{500}){500}")
	err := ExpandLoops(n)
	if err == nil {
		t.Fatalf("expected state-budget error, got %d states", n.NumStates)
	}
	if !errors.Is(err, budget.Err) {
		t.Fatalf("expansion error should wrap budget.Err, got %v", err)
	}

	// The same pattern expands under an explicit unlimited budget.
	n = buildFor(t, "(a{500}){500}")
	if err := ExpandLoopsWith(n, Limits{MaxStates: -1}); err != nil {
		t.Fatalf("unlimited expansion: %v", err)
	}
	if n.NumStates < 500*500 {
		t.Fatalf("unlimited expansion produced only %d states", n.NumStates)
	}
}

func TestExpandLoopsBudgetIsIncremental(t *testing.T) {
	// With a tiny budget the pass must stop almost immediately: the state
	// count at failure is bounded by budget + one body copy, not by the
	// full expansion size.
	n := buildFor(t, "(a{100}){100}")
	err := ExpandLoopsWith(n, Limits{MaxStates: 1000})
	if !errors.Is(err, budget.Err) {
		t.Fatalf("want budget.Err, got %v", err)
	}
	if n.NumStates > 1000+250 {
		t.Fatalf("budget enforced too late: %d states materialized", n.NumStates)
	}
}

func TestOptimizeWithBudgetOK(t *testing.T) {
	n := buildFor(t, "a{2,5}b")
	if err := OptimizeWith(n, Limits{MaxStates: 100}); err != nil {
		t.Fatalf("small pattern within budget: %v", err)
	}
	for _, want := range []string{"aab", "aaaaab"} {
		if ok := mustAccepts(t, n, []byte(want)); !ok {
			t.Fatalf("optimized NFA rejects %q", want)
		}
	}
}

func TestAcceptsPendingLoopsError(t *testing.T) {
	n := buildFor(t, "a{2,4}")
	if len(n.Loops) == 0 {
		t.Fatal("expected pending loops before expansion")
	}
	ok, err := Accepts(n, []byte("aa"))
	if err == nil {
		t.Fatal("Accepts on pending loops should error, not panic or succeed")
	}
	if ok {
		t.Fatal("Accepts returned true alongside an error")
	}
}
