// Package dataset synthesizes the six evaluation rulesets of §VI (Table I).
//
// The paper evaluates on Bro217, Dotstar09, PowerEN, Protomata, Ranges1 and
// TCP (from Becchi et al.'s workload and ANMLZoo). Those rule files are not
// redistributable here, so each dataset is replaced by a deterministic,
// seeded generator that reproduces its published shape: the number of REs,
// the rough per-RE state/transition counts after single-FSA optimization,
// the character-class volume, and — crucially for this paper — the
// intra-dataset morphological similarity, obtained by drawing rules from
// shared sub-pattern pools. See DESIGN.md ("Substitutions") for the
// rationale; EXPERIMENTS.md records measured-vs-published characteristics.
package dataset

import (
	"fmt"
	"math/rand"
)

// Spec describes one synthetic dataset.
type Spec struct {
	Name string // full name, e.g. "Bro217"
	Abbr string // the paper's abbreviation, e.g. "BRO"
	// NumREs matches Table I.
	NumREs int
	// Seed fixes the generator; same Spec → same ruleset, always.
	Seed int64
	// StreamAlphabet is the byte population of the stream background.
	StreamAlphabet []byte
	// gen produces one rule given the dataset's shared fragment pools.
	gen func(r *rand.Rand, p *pools) string
}

// Datasets returns the six benchmark dataset specs in the paper's order.
func Datasets() []Spec {
	return []Spec{
		{Name: "Bro217", Abbr: "BRO", NumREs: 217, Seed: 0xB20, StreamAlphabet: printable(), gen: genBro},
		{Name: "Dotstar09", Abbr: "DS9", NumREs: 299, Seed: 0xD59, StreamAlphabet: printable(), gen: genDotstar},
		{Name: "PowerEN", Abbr: "PEN", NumREs: 300, Seed: 0x9E4, StreamAlphabet: printable(), gen: genPowerEN},
		{Name: "Protomata", Abbr: "PRO", NumREs: 300, Seed: 0x960, StreamAlphabet: []byte(aminoAlphabet), gen: genProtomata},
		{Name: "Ranges1", Abbr: "RG1", NumREs: 299, Seed: 0x261, StreamAlphabet: printable(), gen: genRanges},
		{Name: "ExactMatch/TCP", Abbr: "TCP", NumREs: 300, Seed: 0x7C9, StreamAlphabet: bytesAll(), gen: genTCP},
	}
}

// ByAbbr returns the dataset with the given abbreviation.
func ByAbbr(abbr string) (Spec, error) {
	for _, s := range Datasets() {
		if s.Abbr == abbr {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown abbreviation %q", abbr)
}

// Patterns generates the dataset's rules, deterministically.
func (s Spec) Patterns() []string {
	r := rand.New(rand.NewSource(s.Seed))
	p := newPools(r)
	out := make([]string, s.NumREs)
	for i := range out {
		out[i] = s.gen(r, p)
	}
	return out
}

const aminoAlphabet = "ACDEFGHIKLMNPQRSTVWY"

func printable() []byte {
	out := make([]byte, 0, 95)
	for c := byte(0x20); c <= 0x7e; c++ {
		out = append(out, c)
	}
	return out
}

func bytesAll() []byte {
	out := make([]byte, 256)
	for i := range out {
		out[i] = byte(i)
	}
	return out
}

// pools holds the shared fragments each dataset draws from; sharing is what
// produces the INDEL similarity of Fig. 1 and the mergeable sub-paths the
// MFSA exploits.
type pools struct {
	httpPrefixes []string
	broWords     []string
	words        []string
	longWords    []string
	suffixes     []string
	motifs       []string
	hexRuns      []string
}

// wordAlphabet deliberately contains no ERE metacharacters, so pool words
// are literal patterns.
const wordAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789_"

func newPools(r *rand.Rand) *pools {
	p := &pools{
		httpPrefixes: []string{
			"GET /", "POST /", "HEAD /", "GET /cgi-bin/", "GET /scripts/",
			"User-Agent: ", "Host: ", "Cookie: ", "Referer: ", "POST /cgi-bin/",
			"Content-Type: ", "GET /admin/",
		},
		suffixes: []string{
			"\\.php", "\\.cgi", "\\.exe", "\\.dll", "\\.asp", "\\.jsp",
			" HTTP", "\\.\\./", "%00", "id=",
		},
	}
	// Word pools are themselves randomly generated once per dataset, so
	// rules share them heavily; the pool size tunes the intra-dataset
	// similarity of Fig. 1.
	p.broWords = randWords(r, 40, 4, 8, wordAlphabet)
	p.words = randWords(r, 28, 4, 9, wordAlphabet)
	p.longWords = randWords(r, 18, 10, 20, wordAlphabet+"/")
	p.motifs = randWords(r, 56, 3, 6, aminoAlphabet)
	p.hexRuns = randWords(r, 24, 3, 7, "") // filled below with \xHH runs
	for i := range p.hexRuns {
		n := 2 + r.Intn(4)
		s := ""
		for k := 0; k < n; k++ {
			s += fmt.Sprintf("\\x%02x", r.Intn(256))
		}
		p.hexRuns[i] = s
	}
	return p
}

func randWords(r *rand.Rand, count, minLen, maxLen int, alphabet string) []string {
	out := make([]string, count)
	for i := range out {
		if alphabet == "" {
			continue
		}
		n := minLen + r.Intn(maxLen-minLen+1)
		b := make([]byte, n)
		for k := range b {
			b[k] = alphabet[r.Intn(len(alphabet))]
		}
		out[i] = string(b)
	}
	return out
}

func pick(r *rand.Rand, xs []string) string { return xs[r.Intn(len(xs))] }

// fresh returns a rule-unique literal word of length in [min, max]. Every
// generator plants one so that no two rules are entirely pool-composed —
// real rulesets always carry rule-specific content, which is what keeps the
// paper's compression below total collapse.
func fresh(r *rand.Rand, min, max int) string {
	n := min + r.Intn(max-min+1)
	b := make([]byte, n)
	for i := range b {
		b[i] = wordAlphabet[r.Intn(len(wordAlphabet))]
	}
	return string(b)
}

// genBro emulates Bro217: short HTTP signature rules (~12 optimized states)
// with heavily shared prefixes — the most self-similar dataset in Fig. 1.
func genBro(r *rand.Rand, p *pools) string {
	// Skew toward the GET-family prefixes so rule pairs share long runs,
	// reproducing BRO's position as the most self-similar dataset.
	var s string
	if r.Intn(100) < 70 {
		s = p.httpPrefixes[r.Intn(4)]
	} else {
		s = pick(r, p.httpPrefixes)
	}
	if r.Intn(2) == 0 {
		s += pick(r, p.broWords)
	} else {
		s += fresh(r, 4, 8)
	}
	if r.Intn(100) < 60 {
		s += p.suffixes[r.Intn(len(p.suffixes))]
	}
	// Keep the optimized automaton near 13 states, but retain at least
	// one rule-specific atom beyond the shared prefix so rules stay
	// distinct.
	return clipPattern(s, 13+r.Intn(5))
}

// genDotstar emulates Dotstar09: pairs of literals joined by an unbounded
// gap (the classic `lit1.*lit2` DPI shape), ~43 optimized states, CCs only
// from the dot.
func genDotstar(r *rand.Rand, p *pools) string {
	a := pick(r, p.longWords) + fresh(r, 4, 9)
	b := pick(r, p.longWords)
	if r.Intn(2) == 0 {
		b = fresh(r, 8, 14)
	}
	s := a + ".*" + b
	if r.Intn(100) < 30 {
		s += ".*" + pick(r, p.words)
	}
	return s
}

// genPowerEN emulates PowerEN: mid-length mostly-literal rules (~15 states)
// with almost no character classes (Table I: 152 total CC chars).
func genPowerEN(r *rand.Rand, p *pools) string {
	s := clipPattern(pick(r, p.words)+fresh(r, 4, 7)+pick(r, p.words), 13+r.Intn(4))
	if r.Intn(100) < 12 {
		s += "[0-9]"
	}
	return s
}

// genProtomata emulates Protomata: PROSITE-style protein motifs over the
// 20-letter amino alphabet — short automata (~12 states) but very CC-heavy
// (Table I: 11905 total CC chars), which drives the high run-time active
// counts of Table II.
func genProtomata(r *rand.Rand, p *pools) string {
	s := pick(r, p.motifs)
	// PROSITE motifs vary widely in length; the length spread keeps the
	// average pairwise normalized similarity near the Fig. 1 band.
	elems := 1 + r.Intn(6)
	for e := 0; e < elems; e++ {
		switch r.Intn(4) {
		case 0: // x — any amino acid (20-char class)
			s += "[" + aminoAlphabet + "]"
			if r.Intn(2) == 0 {
				s += fmt.Sprintf("{%d,%d}", 1+r.Intn(2), 2+r.Intn(2))
			}
		case 1: // small alternative class
			k := 2 + r.Intn(4)
			perm := r.Perm(len(aminoAlphabet))[:k]
			cls := "["
			for _, i := range perm {
				cls += string(aminoAlphabet[i])
			}
			s += cls + "]"
		case 2: // rule-specific residue run
			n := 2 + r.Intn(4)
			b := make([]byte, n)
			for i := range b {
				b[i] = aminoAlphabet[r.Intn(len(aminoAlphabet))]
			}
			s += string(b)
		default:
			s += pick(r, p.motifs)
		}
	}
	return s
}

// genRanges emulates Ranges1: long mostly-literal rules (~42 states) with a
// sprinkle of short ranges (Table I: ~5.6 CC chars per rule).
func genRanges(r *rand.Rand, p *pools) string {
	s := pick(r, p.longWords) + fresh(r, 6, 12)
	lo := byte('a') + byte(r.Intn(10))
	span := byte(3 + r.Intn(4))
	s += fmt.Sprintf("[%c-%c]", lo, lo+span)
	s += pick(r, p.longWords)
	if r.Intn(2) == 0 {
		s += fresh(r, 4, 9)
	}
	return s
}

// genTCP emulates the TCP/ExactMatch class: binary header signatures mixing
// hex-escaped literal runs, short classes and bounded repetitions
// (~30 states, ~8 CC chars per rule).
func genTCP(r *rand.Rand, p *pools) string {
	// ExactMatch-class signatures: mostly exact literal strings with a
	// sprinkle of hex runs, short classes, and bounded repetitions. Fresh
	// per-rule words keep the similarity moderate; the shared pools and
	// hex runs provide the mergeable sub-paths.
	freshWord := func() string {
		n := 4 + r.Intn(8)
		b := make([]byte, n)
		for k := range b {
			b[k] = wordAlphabet[r.Intn(len(wordAlphabet))]
		}
		return string(b)
	}
	s := freshWord()
	blocks := 2 + r.Intn(3)
	for b := 0; b < blocks; b++ {
		switch r.Intn(6) {
		case 0:
			s += fmt.Sprintf("[\\x%02x-\\x%02x]", 0x20+r.Intn(64), 0x60+r.Intn(64))
		case 1:
			s += pick(r, p.hexRuns) + fmt.Sprintf("{%d,%d}", 1+r.Intn(2), 2+r.Intn(3))
		case 2, 3:
			s += pick(r, p.words)
		default:
			s += freshWord()
		}
	}
	s += pick(r, p.hexRuns)
	return s
}

// clipPattern truncates a pattern to roughly maxAtoms literal atoms without
// splitting an escape sequence.
func clipPattern(s string, maxAtoms int) string {
	atoms, i := 0, 0
	for i < len(s) && atoms < maxAtoms {
		if s[i] == '\\' {
			if i+1 < len(s) && s[i+1] == 'x' {
				i += 4
			} else {
				i += 2
			}
		} else {
			i++
		}
		atoms++
	}
	if i > len(s) {
		i = len(s)
	}
	return s[:i]
}
