package dataset

import (
	"math/rand"

	"repro/internal/rex"
)

// SampleString generates a string accepted by the expression rooted at ast,
// choosing alternation branches and repetition counts at random. Unbounded
// repetitions are sampled with at most two extra iterations. Anchor nodes
// contribute nothing (the caller decides where to plant the sample).
func SampleString(r *rand.Rand, ast *rex.Node) []byte {
	var out []byte
	var walk func(n *rex.Node)
	walk = func(n *rex.Node) {
		switch n.Op {
		case rex.OpLit:
			bs := n.Set.Bytes()
			out = append(out, bs[r.Intn(len(bs))])
		case rex.OpConcat:
			for _, s := range n.Subs {
				walk(s)
			}
		case rex.OpAlt:
			walk(n.Subs[r.Intn(len(n.Subs))])
		case rex.OpRepeat:
			max := n.Max
			if max == rex.Inf {
				max = n.Min + 2
			}
			k := n.Min
			if max > n.Min {
				k += r.Intn(max - n.Min + 1)
			}
			for i := 0; i < k; i++ {
				walk(n.Subs[0])
			}
		}
	}
	walk(ast)
	return out
}

// Stream synthesizes an input stream of the given size for the dataset:
// background bytes drawn from the dataset's alphabet, with substrings
// sampled from randomly chosen rules planted at random offsets so that the
// traversal produces non-trivial match and active-set behaviour (the 1 MB
// data input of §VI-C). plantEvery controls the average gap between planted
// samples; 0 selects the default of 512 bytes. Anchored rules are skipped
// when planting (their samples would rarely be valid mid-stream).
//
// The result is deterministic for a given spec, size and seed offset.
func (s Spec) Stream(size, plantEvery int) []byte {
	if plantEvery <= 0 {
		plantEvery = 512
	}
	r := rand.New(rand.NewSource(s.Seed ^ 0x57_12_EA_4D))
	patterns := s.Patterns()
	asts := make([]*rex.Node, 0, len(patterns))
	for _, p := range patterns {
		ast, err := rex.Parse(p)
		if err != nil {
			continue // generators only emit valid patterns; be safe anyway
		}
		hasAnchor := false
		ast.Walk(func(n *rex.Node) {
			if n.Op == rex.OpAnchor {
				hasAnchor = true
			}
		})
		if !hasAnchor {
			asts = append(asts, ast)
		}
	}
	out := make([]byte, 0, size+64)
	for len(out) < size {
		gap := plantEvery/2 + r.Intn(plantEvery)
		for i := 0; i < gap && len(out) < size; i++ {
			out = append(out, s.StreamAlphabet[r.Intn(len(s.StreamAlphabet))])
		}
		if len(asts) > 0 && len(out) < size {
			out = append(out, SampleString(r, asts[r.Intn(len(asts))])...)
		}
	}
	return out[:size]
}
