package dataset

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/nfa"
	"repro/internal/rex"
	"repro/internal/similarity"
)

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) != 6 {
		t.Fatalf("datasets=%d, want 6", len(ds))
	}
	wantREs := map[string]int{"BRO": 217, "DS9": 299, "PEN": 300, "PRO": 300, "RG1": 299, "TCP": 300}
	for _, s := range ds {
		if wantREs[s.Abbr] != s.NumREs {
			t.Errorf("%s: NumREs=%d, want %d (Table I)", s.Abbr, s.NumREs, wantREs[s.Abbr])
		}
		if len(s.StreamAlphabet) == 0 {
			t.Errorf("%s: empty stream alphabet", s.Abbr)
		}
	}
	if _, err := ByAbbr("BRO"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByAbbr("NOPE"); err == nil {
		t.Fatal("unknown abbr accepted")
	}
}

func TestPatternsDeterministic(t *testing.T) {
	for _, s := range Datasets() {
		a := s.Patterns()
		b := s.Patterns()
		if len(a) != s.NumREs {
			t.Fatalf("%s: %d patterns, want %d", s.Abbr, len(a), s.NumREs)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic pattern %d", s.Abbr, i)
			}
		}
	}
}

func TestAllPatternsCompile(t *testing.T) {
	for _, s := range Datasets() {
		for i, p := range s.Patterns() {
			n, err := nfa.Compile(p)
			if err != nil {
				t.Errorf("%s rule %d %q: %v", s.Abbr, i, p, err)
				continue
			}
			if n.NumStates < 2 {
				t.Errorf("%s rule %d %q: degenerate (%d states)", s.Abbr, i, p, n.NumStates)
			}
		}
	}
}

// TestShapeNearTableI loosely checks that each synthetic dataset lands in
// the neighbourhood of its published Table I characteristics (±40% on avg
// states; CC volume ordering PRO ≫ others, PEN ≈ 0).
func TestShapeNearTableI(t *testing.T) {
	wantAvgStates := map[string]float64{
		"BRO": 13.19, "DS9": 43.08, "PEN": 15.75, "PRO": 12.34, "RG1": 43.18, "TCP": 30.35,
	}
	ccTotal := map[string]int{}
	for _, s := range Datasets() {
		states, trans, cc := 0, 0, 0
		pats := s.Patterns()
		for _, p := range pats {
			n, err := nfa.Compile(p)
			if err != nil {
				t.Fatalf("%s: %v", s.Abbr, err)
			}
			states += n.NumStates
			trans += len(n.Trans)
			cc += n.CCLen()
		}
		ccTotal[s.Abbr] = cc
		avg := float64(states) / float64(len(pats))
		want := wantAvgStates[s.Abbr]
		if avg < want*0.6 || avg > want*1.4 {
			t.Errorf("%s: avg states %.2f outside ±40%% of Table I %.2f", s.Abbr, avg, want)
		}
		if trans == 0 {
			t.Errorf("%s: no transitions", s.Abbr)
		}
		t.Logf("%s: avg states %.2f (paper %.2f), total trans %d, total CC %d",
			s.Abbr, avg, want, trans, cc)
	}
	if !(ccTotal["PRO"] > 3*ccTotal["DS9"]) {
		t.Errorf("PRO CC volume (%d) should dominate DS9 (%d) as in Table I", ccTotal["PRO"], ccTotal["DS9"])
	}
	if ccTotal["PEN"] > 1000 {
		t.Errorf("PEN CC volume %d should be near zero (Table I: 152)", ccTotal["PEN"])
	}
}

// TestSimilarityBand checks the Fig. 1 property the merging exploits: every
// dataset exhibits substantial intra-dataset morphological similarity, with
// the cross-dataset average near the paper's 0.34. (The exact per-dataset
// ranking is attenuated in the synthetic sets — PRO's 20-letter alphabet
// raises its random-baseline LCS — see EXPERIMENTS.md.)
func TestSimilarityBand(t *testing.T) {
	total := 0.0
	for _, s := range Datasets() {
		pats := s.Patterns()
		// Subsample pairs for speed: first 80 patterns.
		if len(pats) > 80 {
			pats = pats[:80]
		}
		sim := similarity.DatasetSimilarity(pats)
		total += sim
		if sim < 0.2 || sim > 0.6 {
			t.Errorf("%s: similarity %.3f outside the plausible Fig. 1 band", s.Abbr, sim)
		}
		t.Logf("%s: normalized INDEL similarity %.3f", s.Abbr, sim)
	}
	avg := total / 6
	if avg < 0.25 || avg > 0.45 {
		t.Errorf("cross-dataset average %.3f, paper reports 0.34", avg)
	}
}

func TestStreamDeterministicAndSized(t *testing.T) {
	s, _ := ByAbbr("BRO")
	a := s.Stream(8192, 0)
	b := s.Stream(8192, 0)
	if len(a) != 8192 {
		t.Fatalf("size=%d", len(a))
	}
	if !bytes.Equal(a, b) {
		t.Fatal("stream not deterministic")
	}
	c := s.Stream(8192, 128)
	if bytes.Equal(a, c) {
		t.Fatal("plantEvery has no effect")
	}
}

func TestStreamContainsPlantedMatches(t *testing.T) {
	// Planted samples must make the ruleset actually fire: scan a small
	// stream with the first rules of each dataset and require matches.
	for _, s := range Datasets() {
		in := s.Stream(16384, 256)
		var total int
		for _, p := range s.Patterns()[:40] {
			n, err := nfa.Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			total += len(engine.ReferenceScan(n, in, false))
		}
		if total == 0 {
			t.Errorf("%s: no rule matches in a planted stream", s.Abbr)
		}
	}
}

func TestSampleStringAccepted(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for _, s := range Datasets() {
		for _, p := range s.Patterns()[:25] {
			ast := rex.MustParse(p)
			n, err := nfa.Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 4; k++ {
				sample := SampleString(r, ast)
				if !mustAccepts(t, n, sample) {
					t.Fatalf("%s: sample %q of %q rejected", s.Abbr, sample, p)
				}
			}
		}
	}
}

func TestSampleStringRepeats(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ast := rex.MustParse("a{2,4}b*")
	for i := 0; i < 20; i++ {
		got := SampleString(r, ast)
		n := 0
		for n < len(got) && got[n] == 'a' {
			n++
		}
		if n < 2 || n > 4 {
			t.Fatalf("sample %q violates {2,4}", got)
		}
	}
}

func BenchmarkPatterns(b *testing.B) {
	s, _ := ByAbbr("DS9")
	for i := 0; i < b.N; i++ {
		s.Patterns()
	}
}

func BenchmarkStream1MB(b *testing.B) {
	s, _ := ByAbbr("BRO")
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		s.Stream(1<<20, 0)
	}
}

// mustAccepts is nfa.Accepts for automata known to be fully expanded; it
// fails the test on error.
func mustAccepts(tb testing.TB, n *nfa.NFA, input []byte) bool {
	tb.Helper()
	ok, err := nfa.Accepts(n, input)
	if err != nil {
		tb.Fatalf("Accepts: %v", err)
	}
	return ok
}
