package dfa

import (
	"math/bits"

	"repro/internal/mfsa"
)

// D2FA is a default-transition-compressed DFA in the spirit of the paper's
// related work (§II, §VII; Kumar et al. [48], Ficara et al. [39]): a state
// stores explicitly only the transitions that differ from its default
// state's, and resolution follows the default chain until an explicit entry
// is found. Since under scan semantics most rows mostly agree with the
// restart row, chains here have depth ≤ 2 by construction (state → BFS
// parent → root), bounding the per-byte work.
type D2FA struct {
	NumStates int
	Start     int32
	Accept    []mfsa.BelongSet
	// Default[q] is the state q defers to, or -1 (root only).
	Default []int32
	// Explicit transitions per state: a 256-bit presence bitmap plus the
	// packed successor array in byte order.
	bitmap [][4]uint64
	packed [][]int32
	// NumRules is carried over from the source DFA.
	NumRules int
}

// Compress builds a D2FA from a dense DFA. Each non-root state picks as
// default whichever of {root, BFS parent} shares more row entries, and
// stores only the differing entries.
func Compress(d *DFA) *D2FA {
	c := &D2FA{
		NumStates: d.NumStates,
		Start:     d.Start,
		Accept:    d.Accept,
		Default:   make([]int32, d.NumStates),
		bitmap:    make([][4]uint64, d.NumStates),
		packed:    make([][]int32, d.NumStates),
		NumRules:  d.NumRules,
	}
	// BFS parents from the root.
	parent := make([]int32, d.NumStates)
	for i := range parent {
		parent[i] = -1
	}
	queue := []int32{d.Start}
	seen := make([]bool, d.NumStates)
	seen[d.Start] = true
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		row := d.Next[int(q)*256 : int(q)*256+256]
		for _, to := range row {
			if !seen[to] {
				seen[to] = true
				parent[to] = q
				queue = append(queue, to)
			}
		}
	}

	overlap := func(q, ref int32) int {
		a := d.Next[int(q)*256 : int(q)*256+256]
		b := d.Next[int(ref)*256 : int(ref)*256+256]
		n := 0
		for i := range a {
			if a[i] == b[i] {
				n++
			}
		}
		return n
	}

	for q := int32(0); q < int32(d.NumStates); q++ {
		if q == d.Start {
			// Root: fully explicit, no default.
			c.Default[q] = -1
			c.storeRow(q, d, -1)
			continue
		}
		def := d.Start
		best := overlap(q, d.Start)
		if p := parent[q]; p >= 0 && p != q {
			if po := overlap(q, p); po > best {
				best, def = po, p
			}
		}
		// A parent default could itself default to the root, so chains
		// are ≤ 2 long; no cycles since parent edges form a tree rooted
		// at Start and Start defers to nothing.
		c.Default[q] = def
		c.storeRow(q, d, def)
	}
	return c
}

// storeRow records the entries of q's dense row that differ from the
// default state's row (all of them when def < 0).
func (c *D2FA) storeRow(q int32, d *DFA, def int32) {
	row := d.Next[int(q)*256 : int(q)*256+256]
	var refRow []int32
	if def >= 0 {
		refRow = d.Next[int(def)*256 : int(def)*256+256]
	}
	var bm [4]uint64
	var packed []int32
	for ch := 0; ch < 256; ch++ {
		if refRow != nil && row[ch] == refRow[ch] {
			continue
		}
		bm[ch>>6] |= 1 << (uint(ch) & 63)
		packed = append(packed, row[ch])
	}
	c.bitmap[q] = bm
	c.packed[q] = packed
}

// StoredTransitions returns the number of explicitly stored transitions
// plus one default pointer per state — the compressed footprint to compare
// against the dense DFA's TableEntries.
func (c *D2FA) StoredTransitions() int {
	n := 0
	for _, p := range c.packed {
		n += len(p)
	}
	return n + c.NumStates
}

// next resolves the successor of q on byte ch, following the default chain.
func (c *D2FA) next(q int32, ch byte) int32 {
	for {
		bm := &c.bitmap[q]
		w, b := ch>>6, uint(ch)&63
		if bm[w]&(1<<b) != 0 {
			// Rank of ch among the set bits.
			idx := bits.OnesCount64(bm[w] & ((1 << b) - 1))
			for i := byte(0); i < w; i++ {
				idx += bits.OnesCount64(bm[i])
			}
			return c.packed[q][idx]
		}
		q = c.Default[q]
	}
}

// Match scans input exactly like DFA.Match, resolving transitions through
// the default chains.
func (c *D2FA) Match(input []byte, onMatch func(rule, end int)) int64 {
	var matches int64
	q := c.Start
	for pos := 0; pos < len(input); pos++ {
		q = c.next(q, input[pos])
		if acc := c.Accept[q]; acc != nil {
			acc.ForEach(func(r int) {
				matches++
				if onMatch != nil {
					onMatch(r, pos)
				}
			})
		}
	}
	return matches
}

// MaxChainDepth returns the longest default chain, a latency metric for
// default-compressed DFAs (bounded by 2 for this construction).
func (c *D2FA) MaxChainDepth() int {
	max := 0
	for q := int32(0); q < int32(c.NumStates); q++ {
		depth := 0
		for cur := c.Default[q]; cur >= 0; cur = c.Default[cur] {
			depth++
		}
		if depth > max {
			max = depth
		}
	}
	return max
}
