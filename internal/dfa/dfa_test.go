package dfa

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/mfsa"
	"repro/internal/nfa"
)

func compileAll(t testing.TB, patterns ...string) []*nfa.NFA {
	t.Helper()
	out := make([]*nfa.NFA, len(patterns))
	for i, p := range patterns {
		n, err := nfa.Compile(p)
		if err != nil {
			t.Fatalf("compile %q: %v", p, err)
		}
		n.ID = i
		out[i] = n
	}
	return out
}

func dfaEnds(d interface {
	Match([]byte, func(int, int)) int64
}, input []byte, numRules int) [][]int {
	sets := make([]map[int]struct{}, numRules)
	for i := range sets {
		sets[i] = map[int]struct{}{}
	}
	d.Match(input, func(r, end int) { sets[r][end] = struct{}{} })
	out := make([][]int, numRules)
	for i, s := range sets {
		ends := make([]int, 0, len(s))
		for e := range s {
			ends = append(ends, e)
		}
		sort.Ints(ends)
		out[i] = ends
	}
	return out
}

func TestDFAMatchesLiteral(t *testing.T) {
	fsas := compileAll(t, "abc")
	d, err := FromNFAs(fsas, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := dfaEnds(d, []byte("xxabcabcx"), 1)
	want := [][]int{{4, 7}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ends %v, want %v", got, want)
	}
}

func TestDFAOverlappingRules(t *testing.T) {
	fsas := compileAll(t, "ab", "b")
	d, err := FromNFAs(fsas, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := dfaEnds(d, []byte("abab"), 2)
	want := [][]int{{1, 3}, {1, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ends %v, want %v", got, want)
	}
}

func TestDFARejectsAnchoredAndRaw(t *testing.T) {
	fsas := compileAll(t, "^ab")
	if _, err := FromNFAs(fsas, 0); err == nil {
		t.Fatal("anchored rule accepted")
	}
	if _, err := FromNFAs(nil, 0); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestDFAStateExplosion(t *testing.T) {
	// The §II motivation: dotstar patterns explode under determinization.
	patterns := []string{
		"aa.*bb", "cc.*dd", "ee.*ff", "gg.*hh", "ii.*jj",
		"kk.*ll", "mm.*nn", "oo.*pp", "qq.*rr", "ss.*tt",
	}
	fsas := compileAll(t, patterns...)
	if _, err := FromNFAs(fsas, 200); err == nil {
		t.Fatal("expected state explosion under a tight budget")
	} else if _, ok := err.(*ErrStateExplosion); !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	// The equivalent NFA/MFSA representation stays small.
	z, err := mfsa.Merge(fsas)
	if err != nil {
		t.Fatal(err)
	}
	if z.NumStates > 100 {
		t.Fatalf("MFSA states=%d, expected compact", z.NumStates)
	}
}

// TestQuickDFAMatchesIMFAnt checks the deterministic baseline against the
// iMFAnt engine in KeepOnMatch mode (the DFA reports every accepting entry,
// with no pop).
func TestQuickDFAMatchesIMFAnt(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	frags := []string{"a", "b", "ab", "bc", "a[bc]", "c?", "(ab|ba)", "b+"}
	f := func() bool {
		m := 1 + r.Intn(4)
		patterns := make([]string, m)
		for i := range patterns {
			patterns[i] = frags[r.Intn(len(frags))] + frags[r.Intn(len(frags))]
		}
		fsas := compileAll(t, patterns...)
		d, err := FromNFAs(fsas, 1<<14)
		if err != nil {
			t.Logf("dfa %v: %v", patterns, err)
			return false
		}
		z, err := mfsa.Merge(fsas)
		if err != nil {
			return false
		}
		p := engine.NewProgram(z)
		in := make([]byte, r.Intn(40))
		for i := range in {
			in[i] = byte('a' + r.Intn(3))
		}
		got := dfaEnds(d, in, m)
		want := engine.DistinctEnds(engine.Matches(p, in, engine.Config{KeepOnMatch: true}), m)
		for j := range want {
			w := want[j]
			if w == nil {
				w = []int{}
			}
			if !reflect.DeepEqual(got[j], w) {
				t.Logf("patterns=%v input=%q rule %d: dfa %v imfant %v", patterns, in, j, got[j], w)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestD2FAEquivalentToDFA(t *testing.T) {
	fsas := compileAll(t, "GET /a", "GET /b", "cmd", "x[yz]+w")
	d, err := FromNFAs(fsas, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := Compress(d)
	r := rand.New(rand.NewSource(17))
	in := make([]byte, 4096)
	alpha := []byte("GET /abcmdxyzw ")
	for i := range in {
		in[i] = alpha[r.Intn(len(alpha))]
	}
	if !reflect.DeepEqual(dfaEnds(d, in, 4), dfaEnds(c, in, 4)) {
		t.Fatal("D2FA and DFA disagree")
	}
}

func TestD2FACompresses(t *testing.T) {
	s, err := dataset.ByAbbr("BRO")
	if err != nil {
		t.Fatal(err)
	}
	fsas := compileAll(t, s.Patterns()[:40]...)
	d, err := FromNFAs(fsas, 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	c := Compress(d)
	dense := d.TableEntries()
	stored := c.StoredTransitions()
	if stored >= dense/2 {
		t.Fatalf("weak compression: %d of %d dense entries", stored, dense)
	}
	if depth := c.MaxChainDepth(); depth > 2 {
		t.Fatalf("default chain depth %d, want ≤ 2", depth)
	}
	t.Logf("dense %d entries → %d stored (%.1f%%), chain depth %d",
		dense, stored, 100*float64(stored)/float64(dense), c.MaxChainDepth())
}

func TestQuickD2FAEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	frags := []string{"ab", "bc", "ca", "a+", "[ab]c"}
	f := func() bool {
		m := 1 + r.Intn(3)
		patterns := make([]string, m)
		for i := range patterns {
			patterns[i] = frags[r.Intn(len(frags))] + frags[r.Intn(len(frags))]
		}
		fsas := compileAll(t, patterns...)
		d, err := FromNFAs(fsas, 1<<14)
		if err != nil {
			return false
		}
		c := Compress(d)
		in := make([]byte, r.Intn(64))
		for i := range in {
			in[i] = byte('a' + r.Intn(3))
		}
		return reflect.DeepEqual(dfaEnds(d, in, m), dfaEnds(c, in, m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDFAMatch(b *testing.B) {
	s, _ := dataset.ByAbbr("BRO")
	fsas := compileAll(b, s.Patterns()[:40]...)
	d, err := FromNFAs(fsas, 1<<15)
	if err != nil {
		b.Fatal(err)
	}
	in := s.Stream(64<<10, 0)
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Match(in, nil)
	}
}

func BenchmarkD2FAMatch(b *testing.B) {
	s, _ := dataset.ByAbbr("BRO")
	fsas := compileAll(b, s.Patterns()[:40]...)
	d, err := FromNFAs(fsas, 1<<15)
	if err != nil {
		b.Fatal(err)
	}
	c := Compress(d)
	in := s.Stream(64<<10, 0)
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Match(in, nil)
	}
}
