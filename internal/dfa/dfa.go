// Package dfa implements the deterministic baseline the paper positions
// MFSAs against (§II, §VII): subset-construction DFAs with their
// state-explosion behaviour, a dense-table matcher with one transition per
// input byte, and the default-transition compression of the D²FA line of
// work (Kumar et al., the paper's [48]) that trades table size for
// default-chain traversals.
//
// The DFA is built for scan semantics — the rule start states are treated
// as always active, the classic DPI "prefix-closed" determinization — so
// match events (rule, end offset) are directly comparable with the iMFAnt
// engine in KeepOnMatch mode.
package dfa

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/mfsa"
	"repro/internal/nfa"
)

// DFA is a deterministic automaton over the byte alphabet with a dense
// 256-way transition table and per-state rule-acceptance sets. Under scan
// semantics every entry is live (the worst case is "only the restart
// states survive"), so traversal is exactly one table lookup per byte.
type DFA struct {
	NumStates int
	Start     int32
	// Next holds NumStates×256 entries; Next[q*256+c] is the successor
	// of q on byte c.
	Next []int32
	// Accept[q] is the set of rules whose match ends when q is entered
	// (nil for non-accepting states).
	Accept []mfsa.BelongSet
	// NumRules is the number of rules the automaton recognizes.
	NumRules int
}

// ErrStateExplosion reports that subset construction exceeded the state
// budget — the exponential blow-up of §II that motivates NFA-based engines.
type ErrStateExplosion struct {
	Limit int
}

func (e *ErrStateExplosion) Error() string {
	return fmt.Sprintf("dfa: subset construction exceeded %d states", e.Limit)
}

// FromNFAs determinizes a group of optimized NFAs into one scan DFA,
// failing with ErrStateExplosion if more than maxStates subsets arise.
// Anchored rules are rejected (the scan determinization has no notion of
// stream boundaries).
func FromNFAs(fsas []*nfa.NFA, maxStates int) (*DFA, error) {
	if len(fsas) == 0 {
		return nil, fmt.Errorf("dfa: empty rule group")
	}
	if maxStates <= 0 {
		maxStates = 1 << 16
	}
	// Combine the NFAs into one automaton over a shared global state
	// space, with per-rule state offsets.
	type gtrans struct {
		to    int32
		label [4]uint64
	}
	var offset []int32
	total := int32(0)
	for _, a := range fsas {
		if a.AnchorStart || a.AnchorEnd {
			return nil, fmt.Errorf("dfa: anchored rule %q not supported by scan determinization", a.Pattern)
		}
		if len(a.Eps) > 0 || len(a.Loops) > 0 {
			return nil, fmt.Errorf("dfa: rule %q is not optimized", a.Pattern)
		}
		offset = append(offset, total)
		total += int32(a.NumStates)
	}
	adj := make([][]int32, total)
	var trans []gtrans
	acceptRule := make([]int, total)
	for i := range acceptRule {
		acceptRule[i] = -1
	}
	starts := make([]int32, len(fsas))
	for r, a := range fsas {
		for _, t := range a.Trans {
			gt := gtrans{to: offset[r] + t.To}
			for c := 0; c < 256; c++ {
				if t.Label.Contains(byte(c)) {
					gt.label[c>>6] |= 1 << (uint(c) & 63)
				}
			}
			adj[offset[r]+t.From] = append(adj[offset[r]+t.From], int32(len(trans)))
			trans = append(trans, gt)
		}
		for _, f := range a.Finals {
			acceptRule[offset[r]+f] = r
		}
		starts[r] = offset[r] + a.Start
	}

	key := func(ss []int32) string {
		b := make([]byte, 0, len(ss)*4)
		for _, s := range ss {
			b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
		}
		return string(b)
	}
	canon := func(set map[int32]struct{}) []int32 {
		out := make([]int32, 0, len(set))
		for s := range set {
			out = append(out, s)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	startSet := make(map[int32]struct{}, len(starts))
	for _, s := range starts {
		startSet[s] = struct{}{}
	}
	startStates := canon(startSet)

	// A DFA state is a (closure subset, acceptance) pair: acceptance is
	// computed from the states actually reached by a transition, before
	// the scan closure re-injects the start states — otherwise a rule
	// whose NFA start is final (it accepts ε) would fire on every byte,
	// while the match semantics report matches only on transition
	// arrivals (empty matches are never reported).
	fullKey := func(states []int32, acc mfsa.BelongSet) string {
		k := key(states)
		if acc != nil {
			b := []byte(k)
			for _, w := range acc {
				for i := 0; i < 8; i++ {
					b = append(b, byte(w>>(8*i)))
				}
			}
			k = string(b)
		}
		return k
	}

	index := map[string]int32{fullKey(startStates, nil): 0}
	subsets := [][]int32{startStates}
	d := &DFA{Start: 0, NumRules: len(fsas)}
	// No input consumed yet: the start state accepts nothing.
	d.Accept = append(d.Accept, nil)

	for head := 0; head < len(subsets); head++ {
		cur := subsets[head]
		var succ [256]map[int32]struct{}
		for _, q := range cur {
			for _, ti := range adj[q] {
				t := &trans[ti]
				for w := 0; w < 4; w++ {
					word := t.label[w]
					for word != 0 {
						c := w*64 + bits.TrailingZeros64(word)
						if succ[c] == nil {
							succ[c] = make(map[int32]struct{}, 4)
						}
						succ[c][t.to] = struct{}{}
						word &= word - 1
					}
				}
			}
		}
		row := make([]int32, 256)
		for c := 0; c < 256; c++ {
			var states []int32
			var acc mfsa.BelongSet
			if succ[c] == nil {
				states = startStates // scan restart only, no arrival
			} else {
				acc = acceptSet(canon(succ[c]), acceptRule, len(fsas))
				for _, s := range starts {
					succ[c][s] = struct{}{}
				}
				states = canon(succ[c])
			}
			k := fullKey(states, acc)
			id, ok := index[k]
			if !ok {
				id = int32(len(subsets))
				if int(id) >= maxStates {
					return nil, &ErrStateExplosion{Limit: maxStates}
				}
				index[k] = id
				subsets = append(subsets, states)
				d.Accept = append(d.Accept, acc)
			}
			row[c] = id
		}
		d.Next = append(d.Next, row...)
	}
	d.NumStates = len(subsets)
	return d, nil
}

func acceptSet(states []int32, acceptRule []int, numRules int) mfsa.BelongSet {
	var set mfsa.BelongSet
	for _, q := range states {
		if r := acceptRule[q]; r >= 0 {
			if set == nil {
				set = mfsa.NewBelongSet(numRules)
			}
			set.Set(r)
		}
	}
	return set
}

// TableEntries returns the dense-table size in transitions (states × 256),
// the memory-footprint metric default-transition compression attacks.
func (d *DFA) TableEntries() int { return d.NumStates * 256 }

// Match scans input and calls onMatch for every (rule, end offset) event:
// whenever the automaton enters a state accepting rule r after consuming
// the byte at offset end. It returns the total event count. One table
// lookup per byte — the §II upper-bound traversal cost that makes DFAs
// attractive despite their size.
func (d *DFA) Match(input []byte, onMatch func(rule, end int)) int64 {
	var matches int64
	q := d.Start
	for pos := 0; pos < len(input); pos++ {
		q = d.Next[int(q)<<8|int(input[pos])]
		if acc := d.Accept[q]; acc != nil {
			acc.ForEach(func(r int) {
				matches++
				if onMatch != nil {
					onMatch(r, pos)
				}
			})
		}
	}
	return matches
}
