package dfa

import (
	"repro/internal/faultpoint"
)

// DefaultCheckpointEvery mirrors the iMFAnt engine's checkpoint cadence:
// cancellation and deadlines are observed about every 4 KiB.
const DefaultCheckpointEvery = 4096

// Config parameterizes one scan or stream on a Runner, mirroring
// engine.Config for the parts an eager DFA needs. The DFA is built for
// unanchored scan semantics only, so there is no held-byte or stream-end
// machinery: every fed byte is consumed immediately.
type Config struct {
	// OnMatch receives every (rule, end offset) match event; end offsets
	// are absolute across Feeds. nil counts only.
	OnMatch func(rule, end int)
	// Checkpoint, when non-nil, is polled every CheckpointEvery bytes; a
	// non-nil return cancels the scan (sticky, see Err).
	Checkpoint func() error
	// CheckpointEvery overrides the polling cadence; 0 selects
	// DefaultCheckpointEvery.
	CheckpointEvery int
	// Faults arms the chunk-stall injection site, like the engines'.
	Faults *faultpoint.Injector
}

// Result summarizes one completed scan.
type Result struct {
	Matches int64
	Symbols int64
	// PerRule counts matches per rule index within the group.
	PerRule []int64
}

// Totals are cumulative counters over every scan a Runner has executed,
// including the one in progress — the telemetry feed, folded at scan
// granularity like engine.Totals.
type Totals struct {
	Scans   int64
	Symbols int64
	Matches int64
}

// Runner executes one DFA with resumable state: Feed consumes chunks of a
// stream (the current DFA state and the absolute offset carry across calls)
// and End completes the scan. Not safe for concurrent use.
type Runner struct {
	d      *DFA
	cfg    Config
	q      int32
	base   int64 // absolute offset of the next byte
	stop   error
	res    Result
	totals Totals
	began  bool
}

// NewRunner returns a reusable matching context for the DFA.
func NewRunner(d *DFA) *Runner { return &Runner{d: d} }

// Begin starts a scan. Calling Begin while one is in progress abandons it
// without folding totals.
func (r *Runner) Begin(cfg Config) {
	r.cfg = cfg
	r.q = r.d.Start
	r.base = 0
	r.stop = nil
	r.res = Result{PerRule: make([]int64, r.d.NumRules)}
	r.began = true
}

// Feed consumes the next chunk. A cancelled runner ignores further input.
func (r *Runner) Feed(chunk []byte) {
	if r.stop != nil {
		return
	}
	every := r.cfg.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	if r.cfg.Checkpoint == nil {
		r.feedChunk(chunk)
		return
	}
	for off := 0; ; off += every {
		if err := r.cfg.Checkpoint(); err != nil {
			r.stop = err
			return
		}
		end := off + every
		if end >= len(chunk) {
			r.feedChunk(chunk[off:])
			return
		}
		r.feedChunk(chunk[off:end])
	}
}

// feedChunk is the uninterruptible Feed body: one table lookup per byte.
func (r *Runner) feedChunk(chunk []byte) {
	if r.cfg.Faults != nil {
		r.cfg.Faults.Stall()
	}
	d := r.d
	q := r.q
	base := r.base
	onMatch := r.cfg.OnMatch
	for pos := 0; pos < len(chunk); pos++ {
		q = d.Next[int(q)<<8|int(chunk[pos])]
		if acc := d.Accept[q]; acc != nil {
			end := int(base) + pos
			acc.ForEach(func(rule int) {
				r.res.Matches++
				r.res.PerRule[rule]++
				if onMatch != nil {
					onMatch(rule, end)
				}
			})
		}
	}
	r.q = q
	r.base = base + int64(len(chunk))
	r.res.Symbols = r.base
}

// End completes the scan, folds it into the cumulative Totals, and returns
// its Result. Calling End again without a Begin returns an empty Result.
func (r *Runner) End() Result {
	if !r.began {
		return Result{}
	}
	r.began = false
	res := r.res
	r.totals.Scans++
	r.totals.Symbols += res.Symbols
	r.totals.Matches += res.Matches
	return res
}

// Err returns the Checkpoint error that cancelled the scan, if any.
func (r *Runner) Err() error { return r.stop }

// Totals returns the cumulative counters, including a scan in progress.
func (r *Runner) Totals() Totals {
	t := r.totals
	if r.began {
		t.Symbols += r.res.Symbols
		t.Matches += r.res.Matches
	}
	return t
}

// Run executes one whole-input scan: Begin, Feed, End.
func (r *Runner) Run(input []byte, cfg Config) Result {
	r.Begin(cfg)
	r.Feed(input)
	return r.End()
}
