// Package obs renders the engine's telemetry in the OpenMetrics /
// Prometheus text exposition format, with zero dependencies: a small
// metric-family model, an encoder (Write), the mapping from a telemetry
// snapshot to stable metric names (StatsFamilies), and a minimal parser
// used by tests to validate the output (Parse).
//
// Naming follows the Prometheus conventions: every metric is prefixed
// "imfant_", counters expose a "_total" sample, histograms expose
// "_bucket"/"_sum"/"_count", and byte/second units are spelled out in the
// name. The names emitted here are a stable interface — dashboards and
// alerts hang off them — so renames are breaking changes; see DESIGN.md's
// "Stats & metrics reference".
package obs

import (
	"fmt"
	"sort"

	"repro/internal/hist"
	"repro/internal/telemetry"
)

// Kind is a metric family's type.
type Kind uint8

const (
	// Counter is a monotonically non-decreasing cumulative value; its one
	// sample carries the "_total" suffix.
	Counter Kind = iota
	// Gauge is a point-in-time value that can go up or down.
	Gauge
	// HistogramKind is a cumulative-bucket distribution rendered as
	// "_bucket{le=...}", "_sum", and "_count" samples.
	HistogramKind
)

// String returns the exposition-format type keyword.
func (k Kind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	case HistogramKind:
		return "histogram"
	}
	return "untyped"
}

// Label is one name=value metric label.
type Label struct {
	Name, Value string
}

// Sample is one time series of a family: a label set plus either a scalar
// value (counters, gauges) or a histogram snapshot.
type Sample struct {
	Labels []Label
	Value  float64
	// Hist carries the full bucket distribution for HistogramKind
	// families; values are nanoseconds and are rendered in seconds (the
	// Prometheus base unit) by the encoder when Seconds is set.
	Hist *hist.Snapshot
	// Seconds converts the histogram's nanosecond observations to seconds
	// on output (bounds and sum divided by 1e9).
	Seconds bool
}

// Family is one metric family: the base name (no "_total"/"_bucket"
// suffix), help text, kind, and its samples.
type Family struct {
	Name    string
	Help    string
	Kind    Kind
	Samples []Sample
}

// CounterFamily builds a single-sample counter family.
func CounterFamily(name, help string, v float64) Family {
	return Family{Name: name, Help: help, Kind: Counter, Samples: []Sample{{Value: v}}}
}

// GaugeFamily builds a single-sample gauge family.
func GaugeFamily(name, help string, v float64) Family {
	return Family{Name: name, Help: help, Kind: Gauge, Samples: []Sample{{Value: v}}}
}

// StatsFamilies maps a telemetry snapshot (plus, when latency attribution
// is on, the raw per-stage histograms) to metric families with stable
// names. Sections absent from the snapshot are omitted; zero-valued
// per-rule counters are skipped to keep rule-heavy rulesets scrapeable.
func StatsFamilies(s telemetry.Stats, lat *telemetry.Latency) []Family {
	fams := []Family{
		CounterFamily("imfant_scans", "Completed automaton executions.", float64(s.Scans)),
		CounterFamily("imfant_bytes_scanned", "Input bytes matched against, per automaton.", float64(s.BytesScanned)),
		CounterFamily("imfant_matches", "Reported match events.", float64(s.Matches)),
	}
	if f, ok := ruleHitsFamily(s.RuleHits); ok {
		fams = append(fams, f)
	}
	if l := s.Lazy; l != nil {
		fams = append(fams,
			GaugeFamily("imfant_lazy_automata", "Automata running on the lazy-DFA engine.", float64(l.Automata)),
			GaugeFamily("imfant_lazy_cached_states", "Cached DFA states across automata.", float64(l.CachedStates)),
			GaugeFamily("imfant_lazy_max_states", "Per-automaton transition-cache capacity.", float64(l.MaxStates)),
			GaugeFamily("imfant_lazy_byte_classes", "Total byte-class count across automata.", float64(l.ByteClasses)),
			CounterFamily("imfant_lazy_hits", "Input bytes served by a cached transition.", float64(l.Hits)),
			CounterFamily("imfant_lazy_misses", "Transitions computed on demand.", float64(l.Misses)),
			CounterFamily("imfant_lazy_flushes", "Whole-cache resets forced by the capacity limit.", float64(l.Flushes)),
			CounterFamily("imfant_lazy_fallbacks", "Scans that abandoned the cache for iMFAnt after thrashing.", float64(l.Fallbacks)),
		)
	}
	if p := s.Prefilter; p != nil {
		fams = append(fams,
			GaugeFamily("imfant_prefilter_filterable_rules", "Rules carrying a literal factor.", float64(p.FilterableRules)),
			GaugeFamily("imfant_prefilter_factors", "Distinct factor strings swept for.", float64(p.Factors)),
			CounterFamily("imfant_prefilter_sweeps", "Aho-Corasick factor sweeps.", float64(p.Sweeps)),
			CounterFamily("imfant_prefilter_factor_hits", "Distinct factors found, summed over sweeps.", float64(p.FactorHits)),
			CounterFamily("imfant_prefilter_groups_skipped", "Whole MFSA executions elided by the prefilter.", float64(p.GroupsSkipped)),
			CounterFamily("imfant_prefilter_bytes_saved", "Input bytes the skipped executions never scanned.", float64(p.BytesSaved)),
		)
	}
	if a := s.Accel; a != nil {
		fams = append(fams,
			GaugeFamily("imfant_accel_automata", "Automata with byte-skipping acceleration on.", float64(a.Automata)),
			GaugeFamily("imfant_accel_states", "Lazy-DFA cached states classified accelerable.", float64(a.AccelStates)),
			CounterFamily("imfant_accel_bytes_skipped", "Input bytes consumed by accelerated jumps.", float64(a.BytesSkipped)),
		)
	}
	if st := s.Strategy; st != nil {
		planned := 0.0
		if st.Planned {
			planned = 1
		}
		groups := Family{Name: "imfant_strategy_groups", Kind: Gauge,
			Help: "Automaton groups per execution strategy."}
		bytes := Family{Name: "imfant_strategy_bytes", Kind: Counter,
			Help: "Input bytes matched against, per execution strategy."}
		for _, g := range st.Groups {
			lbl := []Label{{Name: "strategy", Value: g.Strategy}}
			groups.Samples = append(groups.Samples, Sample{Labels: lbl, Value: float64(g.Groups)})
			bytes.Samples = append(bytes.Samples, Sample{Labels: lbl, Value: float64(g.Bytes)})
		}
		fams = append(fams,
			GaugeFamily("imfant_strategy_planned", "1 when the planner classified groups individually.", planned),
			groups, bytes,
			CounterFamily("imfant_strategy_sweeps_disabled", "Factor sweeps elided by the effectiveness tracker.", float64(st.SweepsDisabled)),
			CounterFamily("imfant_strategy_sweep_probes", "Sweeps re-run as re-enable probes.", float64(st.SweepProbes)),
			GaugeFamily("imfant_strategy_groups_ungated", "Gated groups whose factor gate is disabled.", float64(st.GroupsUngated)),
		)
	}
	if sg := s.Segment; sg != nil {
		segBytes := Family{Name: "imfant_segment_bytes", Kind: Counter,
			Help: "Input bytes by segment-parallel scan path; paths partition imfant_bytes_scanned."}
		for _, p := range []struct {
			path string
			v    int64
		}{
			{"parallel", sg.ParallelBytes},
			{"stitch", sg.StitchBytes},
			{"serial", sg.SerialBytes},
		} {
			segBytes.Samples = append(segBytes.Samples, Sample{
				Labels: []Label{{Name: "path", Value: p.path}}, Value: float64(p.v)})
		}
		fams = append(fams,
			CounterFamily("imfant_segment_scans", "Automaton-group executions run segment-parallel.", float64(sg.SegmentedScans)),
			CounterFamily("imfant_segment_segments", "Segments executed across segmented scans.", float64(sg.Segments)),
			CounterFamily("imfant_segment_fallbacks", "Segmented scans whose boundary frontier exceeded the budget.", float64(sg.Fallbacks)),
			segBytes,
		)
	}
	if p := s.Profile; p != nil {
		fams = append(fams,
			CounterFamily("imfant_profile_samples", "Profiler sampling points taken.", float64(p.Samples)))
	}
	if d := s.Degraded; d != nil {
		deg := Family{Name: "imfant_degraded", Kind: Counter,
			Help: "Scans completed below full service, by degradation rung."}
		for _, r := range []struct {
			reason string
			v      int64
		}{
			{"scan_timeout", d.ScanTimeouts},
			{"shed", d.Shed},
			{"worker_panic", d.WorkerPanics},
			{"thrash_fallback", d.ThrashFallbacks},
			{"cache_grow", d.CacheGrows},
			{"pinned_scan", d.PinnedScans},
		} {
			deg.Samples = append(deg.Samples, Sample{
				Labels: []Label{{Name: "reason", Value: r.reason}}, Value: float64(r.v)})
		}
		fams = append(fams, deg)
	}
	if lat != nil {
		f := Family{Name: "imfant_stage_latency_seconds", Kind: HistogramKind,
			Help: "Per-stage wall-clock latency of the scan pipeline."}
		for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
			snap := lat.Snapshot(st)
			if snap.Count == 0 {
				continue
			}
			sc := snap
			f.Samples = append(f.Samples, Sample{
				Labels:  []Label{{Name: "stage", Value: st.String()}},
				Hist:    &sc,
				Seconds: true,
			})
		}
		if len(f.Samples) > 0 {
			fams = append(fams, f)
		}
	}
	return fams
}

// ruleHitsFamily builds the per-rule hit counter, skipping zero rows; ok
// is false when no rule has matched yet (the family is omitted entirely
// rather than exploding into N zero series).
func ruleHitsFamily(hits []int64) (Family, bool) {
	f := Family{Name: "imfant_rule_hits", Kind: Counter,
		Help: "Match events per rule id (zero rows omitted)."}
	for i, n := range hits {
		if n == 0 {
			continue
		}
		f.Samples = append(f.Samples, Sample{
			Labels: []Label{{Name: "rule", Value: fmt.Sprint(i)}}, Value: float64(n)})
	}
	return f, len(f.Samples) > 0
}

// sortLabels orders a label set by name for deterministic output.
func sortLabels(ls []Label) []Label {
	out := append([]Label(nil), ls...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
