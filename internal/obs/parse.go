package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParsedSample is one sample line as seen by the validator.
type ParsedSample struct {
	Name   string // full sample name, including _total/_bucket/... suffix
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family recovered from exposition text.
type ParsedFamily struct {
	Name    string // base family name from the TYPE line
	Kind    string // counter | gauge | histogram | untyped
	Samples []ParsedSample
}

// Parse reads OpenMetrics/Prometheus text and validates the structural
// rules the encoder promises:
//
//   - every sample line parses as name[{labels}] value;
//   - a family's TYPE line precedes its samples, and appears once;
//   - counter samples carry the _total suffix on the family name;
//   - histogram samples use only _bucket/_sum/_count suffixes, bucket
//     cumulative counts are non-decreasing in le order with le itself
//     strictly increasing and ending at +Inf, and the +Inf count equals
//     the _count sample per series;
//   - the stream ends with exactly one "# EOF" line and nothing after it.
//
// It returns the families keyed by base name. It is a test aid, not a
// general scrape parser: exotic escapes and exemplars are out of scope.
func Parse(r io.Reader) (map[string]*ParsedFamily, error) {
	fams := map[string]*ParsedFamily{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	sawEOF := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if sawEOF {
			return nil, fmt.Errorf("obs: line %d: content after # EOF", lineNo)
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			switch {
			case line == "# EOF":
				sawEOF = true
			case strings.HasPrefix(line, "# TYPE "):
				parts := strings.Fields(line)
				if len(parts) != 4 {
					return nil, fmt.Errorf("obs: line %d: malformed TYPE line %q", lineNo, line)
				}
				name, kind := parts[2], parts[3]
				switch kind {
				case "counter", "gauge", "histogram", "untyped":
				default:
					return nil, fmt.Errorf("obs: line %d: unknown type %q", lineNo, kind)
				}
				if _, dup := fams[name]; dup {
					return nil, fmt.Errorf("obs: line %d: duplicate TYPE for %s", lineNo, name)
				}
				fams[name] = &ParsedFamily{Name: name, Kind: kind}
			case strings.HasPrefix(line, "# HELP "):
				// Help text is free-form; nothing to validate.
			default:
				return nil, fmt.Errorf("obs: line %d: unknown comment %q", lineNo, line)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", lineNo, err)
		}
		fam := familyOf(fams, s.Name)
		if fam == nil {
			return nil, fmt.Errorf("obs: line %d: sample %s before its TYPE line", lineNo, s.Name)
		}
		if err := checkSuffix(fam, s); err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", lineNo, err)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEOF {
		return nil, fmt.Errorf("obs: missing # EOF terminator")
	}
	for _, fam := range fams {
		if fam.Kind == "histogram" {
			if err := checkHistogram(fam); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// familyOf resolves the family a sample belongs to: exact base-name match
// first, then the histogram/counter suffix forms.
func familyOf(fams map[string]*ParsedFamily, sample string) *ParsedFamily {
	if f, ok := fams[sample]; ok {
		return f
	}
	for _, suf := range []string{"_total", "_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suf); ok {
			if f, ok := fams[base]; ok {
				return f
			}
		}
	}
	return nil
}

// checkSuffix enforces the per-kind sample-name rules.
func checkSuffix(fam *ParsedFamily, s ParsedSample) error {
	switch fam.Kind {
	case "counter":
		if s.Name != fam.Name+"_total" {
			return fmt.Errorf("counter %s has sample %s (want %s_total)", fam.Name, s.Name, fam.Name)
		}
	case "gauge":
		if s.Name != fam.Name {
			return fmt.Errorf("gauge %s has suffixed sample %s", fam.Name, s.Name)
		}
	case "histogram":
		switch s.Name {
		case fam.Name + "_bucket", fam.Name + "_sum", fam.Name + "_count":
		default:
			return fmt.Errorf("histogram %s has unexpected sample %s", fam.Name, s.Name)
		}
		if s.Name == fam.Name+"_bucket" {
			if _, ok := s.Labels["le"]; !ok {
				return fmt.Errorf("histogram %s bucket without le label", fam.Name)
			}
		}
	}
	return nil
}

// checkHistogram validates each series' cumulative-bucket invariants.
func checkHistogram(fam *ParsedFamily) error {
	type series struct {
		lastLe    float64
		lastCum   float64
		infCount  float64
		sawInf    bool
		count     float64
		sawCount  bool
		anyBucket bool
	}
	byKey := map[string]*series{}
	get := func(labels map[string]string) *series {
		key := seriesKey(labels)
		st, ok := byKey[key]
		if !ok {
			st = &series{lastLe: -1}
			byKey[key] = st
		}
		return st
	}
	for _, s := range fam.Samples {
		switch s.Name {
		case fam.Name + "_bucket":
			st := get(s.Labels)
			leStr := s.Labels["le"]
			if leStr == "+Inf" {
				st.sawInf = true
				st.infCount = s.Value
				if st.anyBucket && s.Value < st.lastCum {
					return fmt.Errorf("obs: histogram %s: +Inf count %v below prior cumulative %v",
						fam.Name, s.Value, st.lastCum)
				}
				continue
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("obs: histogram %s: bad le %q", fam.Name, leStr)
			}
			if st.sawInf {
				return fmt.Errorf("obs: histogram %s: bucket after +Inf", fam.Name)
			}
			if le <= st.lastLe {
				return fmt.Errorf("obs: histogram %s: le %v not increasing past %v", fam.Name, le, st.lastLe)
			}
			if st.anyBucket && s.Value < st.lastCum {
				return fmt.Errorf("obs: histogram %s: cumulative count decreased at le=%v", fam.Name, le)
			}
			st.lastLe, st.lastCum, st.anyBucket = le, s.Value, true
		case fam.Name + "_count":
			st := get(s.Labels)
			st.count, st.sawCount = s.Value, true
		}
	}
	for key, st := range byKey {
		if !st.sawInf {
			return fmt.Errorf("obs: histogram %s{%s}: missing +Inf bucket", fam.Name, key)
		}
		if !st.sawCount {
			return fmt.Errorf("obs: histogram %s{%s}: missing _count", fam.Name, key)
		}
		if st.infCount != st.count {
			return fmt.Errorf("obs: histogram %s{%s}: +Inf bucket %v != count %v",
				fam.Name, key, st.infCount, st.count)
		}
	}
	return nil
}

// seriesKey identifies a histogram series: its labels minus le, in sorted
// order (the encoder sorts labels, so concatenation is stable).
func seriesKey(labels map[string]string) string {
	var parts []string
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, k+"="+v)
	}
	// Insertion-order independence: selection-sort the few label pairs.
	for i := 0; i < len(parts); i++ {
		for j := i + 1; j < len(parts); j++ {
			if parts[j] < parts[i] {
				parts[i], parts[j] = parts[j], parts[i]
			}
		}
	}
	return strings.Join(parts, ",")
}

// parseSample parses one sample line: name[{labels}] value.
func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.IndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unclosed label set in %q", line)
		}
		if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	if s.Name == "" || !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name in %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `a="x",b="y"` into dst. Values may contain the
// encoder's escapes (\\, \", \n).
func parseLabels(body string, dst map[string]string) error {
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", body)
		}
		name := body[i : i+eq]
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return fmt.Errorf("label %s value not quoted in %q", name, body)
		}
		i++
		var val strings.Builder
		for i < len(body) && body[i] != '"' {
			if body[i] == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(body[i])
				}
			} else {
				val.WriteByte(body[i])
			}
			i++
		}
		if i >= len(body) {
			return fmt.Errorf("unterminated label value in %q", body)
		}
		i++ // closing quote
		dst[name] = val.String()
		if i < len(body) {
			if body[i] != ',' {
				return fmt.Errorf("expected ',' between labels in %q", body)
			}
			i++
		}
	}
	return nil
}

// validMetricName checks the [a-zA-Z_:][a-zA-Z0-9_:]* rule.
func validMetricName(s string) bool {
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}
