package obs

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// fullStats synthesizes a snapshot with every section populated.
func fullStats() (telemetry.Stats, *telemetry.Latency) {
	c := telemetry.NewCollector(3)
	c.AddScans(10)
	c.AddBytes(4096)
	c.AddMatch(0)
	c.AddMatch(2)
	c.AddMatch(2)
	c.EnableLazy(2, 512, 17)
	c.AddLazyScan(100, 7, 1, 0)
	c.EnablePrefilter(2, 2)
	c.AddPrefilterScan(3, 5, 2, 2048)
	c.EnableAccel(2)
	c.AddAccelScan(333)
	c.EnableStrategy(true, []string{"imfant", "lazydfa", "ac"}, []int{1, 2, 0})
	c.AddStrategyBytes(0, 100)
	c.AddStrategyBytes(1, 200)
	c.AddTimeouts(1)
	c.AddShed(2)
	lat := c.EnableLatency()
	lat.Record(telemetry.StageScan, 1500)
	lat.Record(telemetry.StageScan, 90000)
	lat.Record(telemetry.StagePrefilter, 400)
	return c.Snapshot(), lat
}

func TestWriteParsesAsOpenMetrics(t *testing.T) {
	s, lat := fullStats()
	var b strings.Builder
	if err := Write(&b, StatsFamilies(s, lat)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("output does not end with # EOF:\n%s", out)
	}
	fams, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("Parse rejected encoder output: %v\n%s", err, out)
	}
	for _, want := range []string{
		"imfant_scans", "imfant_bytes_scanned", "imfant_matches",
		"imfant_rule_hits", "imfant_lazy_hits", "imfant_lazy_cached_states",
		"imfant_prefilter_sweeps", "imfant_prefilter_bytes_saved",
		"imfant_accel_bytes_skipped", "imfant_strategy_groups",
		"imfant_strategy_bytes", "imfant_degraded",
		"imfant_stage_latency_seconds",
	} {
		if _, ok := fams[want]; !ok {
			t.Errorf("family %s missing from exposition", want)
		}
	}
	if f := fams["imfant_scans"]; f.Kind != "counter" || f.Samples[0].Name != "imfant_scans_total" {
		t.Errorf("imfant_scans: got kind=%s sample=%s", f.Kind, f.Samples[0].Name)
	}
	if f := fams["imfant_scans"]; f.Samples[0].Value != 10 {
		t.Errorf("imfant_scans_total = %v, want 10", f.Samples[0].Value)
	}
}

func TestRuleHitsSkipsZeroRows(t *testing.T) {
	s, lat := fullStats()
	var b strings.Builder
	if err := Write(&b, StatsFamilies(s, lat)); err != nil {
		t.Fatal(err)
	}
	fams, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	f := fams["imfant_rule_hits"]
	if f == nil {
		t.Fatal("imfant_rule_hits missing")
	}
	// Rules 0 and 2 hit; rule 1 (zero) must be omitted.
	if len(f.Samples) != 2 {
		t.Fatalf("rule_hits samples = %d, want 2", len(f.Samples))
	}
	got := map[string]float64{}
	for _, smp := range f.Samples {
		got[smp.Labels["rule"]] = smp.Value
	}
	if got["0"] != 1 || got["2"] != 2 {
		t.Errorf("rule_hits = %v, want rule 0→1, rule 2→2", got)
	}
}

func TestDegradedReasons(t *testing.T) {
	s, lat := fullStats()
	var b strings.Builder
	if err := Write(&b, StatsFamilies(s, lat)); err != nil {
		t.Fatal(err)
	}
	fams, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	f := fams["imfant_degraded"]
	got := map[string]float64{}
	for _, smp := range f.Samples {
		got[smp.Labels["reason"]] = smp.Value
	}
	want := map[string]float64{
		"scan_timeout": 1, "shed": 2, "worker_panic": 0,
		"thrash_fallback": 0, "cache_grow": 0, "pinned_scan": 0,
	}
	for reason, v := range want {
		have, ok := got[reason]
		if !ok {
			t.Errorf("degraded reason %q missing", reason)
		} else if have != v {
			t.Errorf("degraded{reason=%q} = %v, want %v", reason, have, v)
		}
	}
}

func TestHistogramSecondsConversion(t *testing.T) {
	s, lat := fullStats()
	var b strings.Builder
	if err := Write(&b, StatsFamilies(s, lat)); err != nil {
		t.Fatal(err)
	}
	fams, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	f := fams["imfant_stage_latency_seconds"]
	if f == nil || f.Kind != "histogram" {
		t.Fatalf("stage latency family missing or mistyped: %+v", f)
	}
	var sum, count float64
	sawScan := false
	for _, smp := range f.Samples {
		if smp.Labels["stage"] != "scan" {
			continue
		}
		sawScan = true
		switch smp.Name {
		case "imfant_stage_latency_seconds_sum":
			sum = smp.Value
		case "imfant_stage_latency_seconds_count":
			count = smp.Value
		case "imfant_stage_latency_seconds_bucket":
			if le := smp.Labels["le"]; le != "+Inf" {
				// All finite bounds must be sub-second for these samples
				// (the raw values are ≤ 90 µs in nanoseconds).
				v, err := strconv.ParseFloat(le, 64)
				if err != nil || v >= 1 {
					t.Errorf("le %q not converted to seconds", le)
				}
			}
		}
	}
	if !sawScan {
		t.Fatal("no scan-stage series")
	}
	if count != 2 {
		t.Errorf("scan count = %v, want 2", count)
	}
	wantSum := (1500.0 + 90000.0) / 1e9
	if diff := sum - wantSum; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("scan sum = %v, want %v", sum, wantSum)
	}
}

func TestStrategyLabels(t *testing.T) {
	s, lat := fullStats()
	var b strings.Builder
	if err := Write(&b, StatsFamilies(s, lat)); err != nil {
		t.Fatal(err)
	}
	fams, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string]float64{}
	for _, smp := range fams["imfant_strategy_groups"].Samples {
		groups[smp.Labels["strategy"]] = smp.Value
	}
	if groups["imfant"] != 1 || groups["lazydfa"] != 2 {
		t.Errorf("strategy groups = %v, want imfant→1 lazydfa→2", groups)
	}
	if _, ok := groups["ac"]; ok {
		t.Error("zero-group strategy 'ac' should be omitted from the snapshot")
	}
}

func TestLabelEscaping(t *testing.T) {
	f := Family{Name: "x", Kind: Gauge, Help: "line\nbreak", Samples: []Sample{{
		Labels: []Label{{Name: "v", Value: "a\"b\\c\nd"}}, Value: 1,
	}}}
	var b strings.Builder
	if err := Write(&b, []Family{f}); err != nil {
		t.Fatal(err)
	}
	fams, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, b.String())
	}
	got := fams["x"].Samples[0].Labels["v"]
	if got != "a\"b\\c\nd" {
		t.Errorf("label round-trip = %q", got)
	}
}

func TestParseRejections(t *testing.T) {
	cases := map[string]string{
		"missing EOF":        "# TYPE a counter\na_total 1\n",
		"sample before TYPE": "a_total 1\n# TYPE a counter\n# EOF\n",
		"counter no _total":  "# TYPE a counter\na 1\n# EOF\n",
		"content after EOF":  "# EOF\n# TYPE a counter\n",
		"duplicate TYPE":     "# TYPE a counter\n# TYPE a counter\n# EOF\n",
		"bad value":          "# TYPE a gauge\na xyz\n# EOF\n",
		"le not increasing": "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\n" +
			"h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n# EOF\n",
		"cumulative decreases": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 3\nh_count 5\n# EOF\n",
		"inf below cumulative": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 3\nh_count 3\n# EOF\n",
		"missing inf bucket": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 3\nh_count 5\n# EOF\n",
		"inf != count": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 3\nh_count 6\n# EOF\n",
	}
	for name, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: Parse accepted invalid input:\n%s", name, text)
		}
	}
}

func TestParseAcceptsMultiSeriesHistogram(t *testing.T) {
	text := "# TYPE h histogram\n" +
		"h_bucket{le=\"1\",stage=\"a\"} 1\nh_bucket{le=\"+Inf\",stage=\"a\"} 2\n" +
		"h_sum{stage=\"a\"} 3\nh_count{stage=\"a\"} 2\n" +
		"h_bucket{le=\"4\",stage=\"b\"} 7\nh_bucket{le=\"+Inf\",stage=\"b\"} 7\n" +
		"h_sum{stage=\"b\"} 9\nh_count{stage=\"b\"} 7\n# EOF\n"
	if _, err := Parse(strings.NewReader(text)); err != nil {
		t.Fatalf("multi-series histogram rejected: %v", err)
	}
}

func TestOmittedSections(t *testing.T) {
	c := telemetry.NewCollector(0)
	c.AddScans(1)
	var b strings.Builder
	if err := Write(&b, StatsFamilies(c.Snapshot(), nil)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, absent := range []string{"imfant_lazy", "imfant_prefilter", "imfant_accel",
		"imfant_strategy", "imfant_rule_hits", "imfant_stage_latency"} {
		if strings.Contains(out, absent) {
			t.Errorf("disabled section %s leaked into exposition:\n%s", absent, out)
		}
	}
	if _, err := Parse(strings.NewReader(out)); err != nil {
		t.Errorf("minimal exposition invalid: %v", err)
	}
}
