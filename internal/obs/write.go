package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/hist"
)

// Write renders the families in the OpenMetrics text exposition format
// (which Prometheus also accepts): per family a HELP and TYPE line on the
// base name, then one sample line per series — "<name>_total" for
// counters, the bare name for gauges, and the cumulative
// "_bucket{le=...}"/"_sum"/"_count" triple for histograms — terminated by
// the mandatory "# EOF" line. Output is deterministic: families are
// written in input order, labels sorted by name.
func Write(w io.Writer, fams []Family) error {
	for _, f := range fams {
		if len(f.Samples) == 0 {
			continue
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Samples {
			if err := writeSample(w, f, s); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// writeSample renders one series of f.
func writeSample(w io.Writer, f Family, s Sample) error {
	switch f.Kind {
	case Counter:
		_, err := fmt.Fprintf(w, "%s_total%s %s\n", f.Name, labelString(s.Labels, "", 0), fmtFloat(s.Value))
		return err
	case Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, labelString(s.Labels, "", 0), fmtFloat(s.Value))
		return err
	case HistogramKind:
		if s.Hist == nil {
			return fmt.Errorf("obs: histogram sample of %s has no snapshot", f.Name)
		}
		return writeHist(w, f.Name, s)
	}
	return fmt.Errorf("obs: unknown kind %d for %s", f.Kind, f.Name)
}

// writeHist renders one histogram series: cumulative le buckets up to the
// highest non-empty one, the +Inf bucket, then _sum and _count. The
// snapshot's log2 buckets become the le bounds; with Seconds set the
// nanosecond bounds and sum are converted to seconds.
func writeHist(w io.Writer, name string, s Sample) error {
	snap := s.Hist
	top := -1
	for i := hist.NumBuckets - 1; i >= 0; i-- {
		if snap.Buckets[i] != 0 {
			top = i
			break
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += snap.Buckets[i]
		_, hi := hist.BucketBounds(i)
		le := float64(hi)
		if s.Seconds {
			le /= 1e9
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, labelString(s.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		name, labelStringInf(s.Labels), snap.Count); err != nil {
		return err
	}
	sum := float64(snap.Sum)
	if s.Seconds {
		sum /= 1e9
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(s.Labels, "", 0), fmtFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(s.Labels, "", 0), snap.Count)
	return err
}

// labelString renders the sorted label set, with an optional numeric "le"
// label appended (leName == "le"), as "{a=\"1\",le=\"0.5\"}"; empty sets
// render as "".
func labelString(ls []Label, leName string, le float64) string {
	if len(ls) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sortLabels(ls) {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	if leName != "" {
		if len(ls) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		b.WriteString(fmtFloat(le))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// labelStringInf is labelString with le="+Inf".
func labelStringInf(ls []Label) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sortLabels(ls) {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	if len(ls) > 0 {
		b.WriteByte(',')
	}
	b.WriteString(`le="+Inf"}`)
	return b.String()
}

// fmtFloat renders a sample value the shortest way that round-trips.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes help text per the exposition format.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
