package segment

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/ahocorasick"
	"repro/internal/engine"
	"repro/internal/faultpoint"
	"repro/internal/lazydfa"
	"repro/internal/mfsa"
	"repro/internal/nfa"
)

func compile(t testing.TB, patterns ...string) *engine.Program {
	t.Helper()
	fsas := make([]*nfa.NFA, len(patterns))
	for i, pat := range patterns {
		n, err := nfa.Compile(pat)
		if err != nil {
			t.Fatalf("compile %q: %v", pat, err)
		}
		n.ID = i
		fsas[i] = n
	}
	z, err := mfsa.Merge(fsas)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return engine.NewProgram(z)
}

func serialEvents(p *engine.Program, input []byte, cfg engine.Config) []Event {
	var out []Event
	cfg.OnMatch = func(fsa, end int) { out = append(out, Event{FSA: fsa, End: end}) }
	engine.Run(p, input, cfg)
	SortEvents(out)
	return out
}

func scanEvents(t *testing.T, g Group, input []byte, parts int) ([]Event, Result) {
	t.Helper()
	var out []Event
	res, err := Scan(g, input, Boundaries(len(input), parts), func(fsa, end int) {
		out = append(out, Event{FSA: fsa, End: end})
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	SortEvents(out)
	return out, res
}

func TestBoundaries(t *testing.T) {
	for _, tc := range []struct{ n, parts, wantSegs int }{
		{100, 4, 4}, {7, 3, 3}, {3, 8, 3}, {1, 1, 1}, {0, 4, 1}, {10, 0, 1},
	} {
		b := Boundaries(tc.n, tc.parts)
		if len(b)-1 != tc.wantSegs {
			t.Fatalf("Boundaries(%d,%d)=%v: %d segments, want %d",
				tc.n, tc.parts, b, len(b)-1, tc.wantSegs)
		}
		if b[0] != 0 || b[len(b)-1] != tc.n {
			t.Fatalf("Boundaries(%d,%d)=%v does not cover input", tc.n, tc.parts, b)
		}
		for i := 1; i < len(b); i++ {
			if tc.n > 0 && b[i] <= b[i-1] {
				t.Fatalf("Boundaries(%d,%d)=%v has an empty segment", tc.n, tc.parts, b)
			}
		}
	}
}

// TestScanEquivalence is the core exactness check: segment-parallel scans
// report the byte-identical event set of a serial scan, across engines,
// match semantics, acceleration, and segment counts.
func TestScanEquivalence(t *testing.T) {
	patterns := [][]string{
		{"abc", "bcd"},
		{"a[bc]*d", "xyz"},
		{"^start", "end$", "mid"},
		{"ab", "abab", "b+c"},
		{"[a-d]x[a-d]", "dd"},
	}
	rng := rand.New(rand.NewSource(7))
	alphabet := []byte("abcdxyz ")
	inputs := [][]byte{
		[]byte(""),
		[]byte("a"),
		[]byte("startabcdmidabababcdend"),
		randomInput(rng, alphabet, 257),
		randomInput(rng, alphabet, 4096),
	}
	for pi, pats := range patterns {
		p := compile(t, pats...)
		lz := lazydfa.New(p)
		for ii, input := range inputs {
			for _, keep := range []bool{false, true} {
				for _, accel := range []bool{false, true} {
					want := serialEvents(p, input, engine.Config{KeepOnMatch: keep, Accel: accel})
					for _, parts := range []int{1, 2, 3, 7, 16} {
						g := Group{Program: p, Cfg: engine.Config{KeepOnMatch: keep, Accel: accel}}
						got, res := scanEvents(t, g, input, parts)
						if !sameEvents(got, want) {
							t.Fatalf("pats=%v input#%d keep=%v accel=%v parts=%d (engine):\ngot  %v\nwant %v",
								pats, ii, keep, accel, parts, got, want)
						}
						if res.Matches != int64(len(want)) {
							t.Fatalf("Matches=%d, want %d", res.Matches, len(want))
						}
						if res.ParallelBytes != int64(len(input)) {
							t.Fatalf("ParallelBytes=%d, want %d", res.ParallelBytes, len(input))
						}
						if keep {
							// Lazy-DFA workers (cached determinization needs keep).
							gl := Group{Program: p, Lazy: lz,
								LazyCfg: lazydfa.Config{KeepOnMatch: true, Accel: accel}}
							got, _ := scanEvents(t, gl, input, parts)
							if !sameEvents(got, want) {
								t.Fatalf("pats=%v input#%d accel=%v parts=%d (lazy):\ngot  %v\nwant %v",
									pats, ii, accel, parts, got, want)
							}
						}
					}
				}
			}
		}
		_ = pi
	}
}

// TestStitchCarriesBoundaryMatch pins the stitch path itself: a match
// spanning a segment boundary is invisible to both adjacent workers and must
// arrive via the carry runner.
func TestStitchCarriesBoundaryMatch(t *testing.T) {
	p := compile(t, "abcdef")
	input := []byte("xxxabcdefxxx")
	bounds := []int{0, 6, len(input)} // cuts "abcdef" at "abc|def"
	var got []Event
	res, err := Scan(Group{Program: p, Cfg: engine.Config{}}, input, bounds,
		func(fsa, end int) { got = append(got, Event{FSA: fsa, End: end}) })
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	want := []Event{{FSA: 0, End: 8}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("events %v, want %v", got, want)
	}
	if res.StitchBytes == 0 {
		t.Fatal("StitchBytes = 0; the boundary match must have been stitched")
	}
	if res.MaxFrontier == 0 {
		t.Fatal("MaxFrontier = 0; the partial match must survive the boundary")
	}
}

// TestStitchBytesSparse pins the match-sparse fast path: when no activation
// survives a boundary, stitching costs nothing.
func TestStitchBytesSparse(t *testing.T) {
	p := compile(t, "needle")
	input := make([]byte, 1<<14)
	for i := range input {
		input[i] = 'x'
	}
	_, res := scanEvents(t, Group{Program: p, Cfg: engine.Config{}}, input, 8)
	if res.StitchBytes != 0 {
		t.Fatalf("StitchBytes=%d on a dead-carry input, want 0", res.StitchBytes)
	}
	if res.Matches != 0 {
		t.Fatalf("Matches=%d, want 0", res.Matches)
	}
}

// TestFrontierBudget: an always-live carry (a .* rule keeps its activation
// alive at every boundary) exceeds a tiny budget and flags FellBack, while
// the results stay exact.
func TestFrontierBudget(t *testing.T) {
	p := compile(t, "a.*b", "ab")
	input := []byte("a xxxx xxxx xxxx b xxxx ab xxxx")
	want := serialEvents(p, input, engine.Config{})
	g := Group{Program: p, Cfg: engine.Config{}, MaxFrontier: 0}
	got, res := scanEvents(t, g, input, 4)
	if !sameEvents(got, want) {
		t.Fatalf("events %v, want %v", got, want)
	}
	if res.FellBack {
		t.Fatal("FellBack with no budget set")
	}
	if res.MaxFrontier == 0 {
		t.Fatal("MaxFrontier = 0 for an always-live carry")
	}
	gTight := g
	gTight.MaxFrontier = res.MaxFrontier - 1
	if gTight.MaxFrontier < 1 {
		t.Skipf("frontier too small to tighten (%d)", res.MaxFrontier)
	}
	got, res = scanEvents(t, gTight, input, 4)
	if !sameEvents(got, want) {
		t.Fatalf("FellBack scan inexact: %v, want %v", got, want)
	}
	if !res.FellBack {
		t.Fatalf("budget %d not flagged with MaxFrontier %d", gTight.MaxFrontier, res.MaxFrontier)
	}
}

// TestScanWorkerPanic: an injected worker panic is contained and surfaces as
// *engine.WorkerPanicError carrying the group's automaton index.
func TestScanWorkerPanic(t *testing.T) {
	p := compile(t, "abc")
	inj := faultpoint.New(faultpoint.OnHit(faultpoint.WorkerPanic, 1))
	g := Group{Automaton: 3, Program: p, Cfg: engine.Config{Faults: inj}}
	_, err := Scan(g, []byte("xxabcxx"), Boundaries(7, 2), nil)
	var wp *engine.WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("err = %v, want *engine.WorkerPanicError", err)
	}
	if wp.Automaton != 3 {
		t.Fatalf("Automaton = %d, want 3", wp.Automaton)
	}
}

// TestScanCheckpointCancel: a failing checkpoint cancels the scan and
// surfaces its error.
func TestScanCheckpointCancel(t *testing.T) {
	p := compile(t, "abc")
	boom := errors.New("deadline")
	g := Group{Program: p, Cfg: engine.Config{
		Checkpoint:      func() error { return boom },
		CheckpointEvery: 16,
	}}
	input := make([]byte, 4096)
	_, err := Scan(g, input, Boundaries(len(input), 4), nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestScanACEquivalence(t *testing.T) {
	pats := [][]byte{[]byte("abc"), []byte("bca"), []byte("aa"), []byte("cabcab")}
	m, err := ahocorasick.New(pats)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 63, 1024} {
		input := randomInput(rng, []byte("abc"), n)
		var want []Event
		m.Scan(input, func(pat, end int) { want = append(want, Event{FSA: pat, End: end}) })
		SortEvents(want)
		for _, parts := range []int{1, 2, 5} {
			for _, accel := range []bool{false, true} {
				var got []Event
				res, err := ScanAC(m, input, Boundaries(len(input), parts), accel, nil, 0,
					func(pat, end int) { got = append(got, Event{FSA: pat, End: end}) })
				if err != nil {
					t.Fatalf("ScanAC: %v", err)
				}
				SortEvents(got)
				if !sameEvents(got, want) {
					t.Fatalf("n=%d parts=%d accel=%v:\ngot  %v\nwant %v", n, parts, accel, got, want)
				}
				if res.Matches != int64(len(want)) {
					t.Fatalf("Matches=%d, want %d", res.Matches, len(want))
				}
				if res.ScannedBytes < int64(len(input)) && len(input) > 0 {
					t.Fatalf("ScannedBytes=%d < input %d", res.ScannedBytes, len(input))
				}
			}
		}
	}
}

func TestOrderByHeat(t *testing.T) {
	got := OrderByHeat([]int64{3, 9, 1, 9, 5})
	want := []int{1, 3, 4, 0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("OrderByHeat = %v, want %v", got, want)
	}
}

func TestBalanceLPT(t *testing.T) {
	weights := []int64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	shards := BalanceLPT(weights, 3)
	if len(shards) != 3 {
		t.Fatalf("%d shards, want 3", len(shards))
	}
	seen := make(map[int]bool)
	var loads []int64
	for _, shard := range shards {
		var load int64
		for _, i := range shard {
			if seen[i] {
				t.Fatalf("item %d assigned twice", i)
			}
			seen[i] = true
			load += weights[i]
		}
		loads = append(loads, load)
	}
	if len(seen) != len(weights) {
		t.Fatalf("%d items assigned, want %d", len(seen), len(weights))
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i] < loads[j] })
	// Total 55 over 3 shards: LPT lands within one small item of even.
	if loads[2]-loads[0] > 3 {
		t.Fatalf("shard loads %v too uneven for LPT", loads)
	}
	// Degenerate shapes.
	if got := BalanceLPT(nil, 2); len(got) != 2 {
		t.Fatalf("BalanceLPT(nil,2) = %v", got)
	}
	if got := BalanceLPT([]int64{5}, 0); len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("BalanceLPT clamp = %v", got)
	}
}

func randomInput(rng *rand.Rand, alphabet []byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return out
}

func sameEvents(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
