package segment

import (
	"errors"
	"sort"
)

// joinErrs collapses a worker error list into one error.
func joinErrs(errs []error) error { return errors.Join(errs...) }

// OrderByHeat returns item indices in descending weight order (ties by
// ascending index, so the order is deterministic). Feeding a shared
// work-stealing queue — engine.RunParallel's atomic counter — in this order
// approximates the longest-processing-time schedule: the heaviest automata
// start first and the light tail levels the workers out.
func OrderByHeat(weight []int64) []int {
	order := make([]int, len(weight))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weight[order[a]] > weight[order[b]]
	})
	return order
}

// BalanceLPT partitions items into k shards by the longest-processing-time
// greedy heuristic: items in descending weight order, each assigned to the
// currently lightest shard. LPT is a 4/3-approximation of the optimal
// makespan — good enough to keep per-shard absorbed time within a few
// percent of even on the skewed heat distributions real rulesets show.
// Shards are returned with their item lists in ascending index order; k is
// clamped to [1, max(len(weight), 1)]. Empty shards are possible only when
// k > len(weight).
func BalanceLPT(weight []int64, k int) [][]int {
	if k < 1 {
		k = 1
	}
	shards := make([][]int, k)
	loads := make([]int64, k)
	for _, i := range OrderByHeat(weight) {
		lightest := 0
		for s := 1; s < k; s++ {
			if loads[s] < loads[lightest] {
				lightest = s
			}
		}
		shards[lightest] = append(shards[lightest], i)
		loads[lightest] += weight[i]
	}
	for s := range shards {
		sort.Ints(shards[s])
	}
	return shards
}
