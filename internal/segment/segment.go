// Package segment implements segment-parallel scanning of a single input
// buffer: the input is cut into P contiguous segments, each scanned by its
// own worker, and the segment boundaries are stitched exactly so the emitted
// event set is byte-identical to a serial scan.
//
// The construction rests on the union-linearity of the iMFAnt update: per
// transition, Jnew = (J(q1) ∪ inits(q1)) ∩ bel(t) distributes over unions of
// activation vectors, and both the emitted set Jnew ∩ F ∩ endGate and the
// Eq. 5 pop survivor Jnew &^ (F ∩ endGate) are masked by J-independent
// masks, so they distribute too. The serial vector at any point of segment k
// therefore decomposes into a *local* component — activations born at or
// after the segment start, exactly what a fresh worker starting there
// computes — and a *carry* component — activations alive at the boundary,
// propagated without ever re-initializing. Serial events over segment k are
// the union of the two components' events.
//
// Workers run the local component of every segment in parallel (segment 0's
// local component is the whole serial scan of segment 0, since its carry is
// empty). A sequential stitch pass then replays only the carry components:
// at each boundary, a carry-only runner (engine Config.NoInits) is resumed
// from the merged boundary frontier and run until its vector dies — on
// match-sparse inputs that is a few bytes. Events the carry produces that
// the local worker also produced are deduplicated by recomputing the local
// event set over exactly the bytes the carry run traversed.
package segment

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"

	"repro/internal/ahocorasick"
	"repro/internal/engine"
	"repro/internal/faultpoint"
	"repro/internal/lazydfa"
)

// Event is one match event: the merged-FSA identifier and the absolute end
// offset of the match (inclusive).
type Event struct {
	FSA int
	End int
}

// Group describes one automaton group to scan segment-parallel.
type Group struct {
	// Automaton is the group's index in its ruleset, used to attribute
	// worker panics (engine.WorkerPanicError.Automaton).
	Automaton int
	// Program is the group's compiled MFSA.
	Program *engine.Program
	// Lazy, when non-nil, runs the segment workers on the lazy-DFA engine
	// (configured by LazyCfg) instead of the iMFAnt engine. Stitch runners
	// always use the iMFAnt engine — their windows are short and the event
	// sets of the two engines are identical.
	Lazy    *lazydfa.Matcher
	LazyCfg lazydfa.Config
	// Cfg configures the iMFAnt workers and the stitch runners. OnMatch is
	// ignored — events surface through Scan's emit callback.
	Cfg engine.Config
	// MaxFrontier, when > 0, is the speculative-frontier budget: a boundary
	// carry with more active states marks the scan FellBack. The scan still
	// completes exactly — the budget is a planning signal (pin the group
	// serial for future scans), not a correctness limit.
	MaxFrontier int
}

// Result aggregates one segment-parallel group scan.
type Result struct {
	// Matches is the number of distinct (FSA, end offset) events — exactly
	// what a serial scan of the group would report.
	Matches int64
	// PerFSA counts events per merged-FSA identifier.
	PerFSA []int64
	// Segments is the number of segments executed.
	Segments int
	// ParallelBytes is the number of input bytes scanned inside the segment
	// workers; the segments partition the input, so this equals the input
	// length.
	ParallelBytes int64
	// StitchBytes is the number of bytes re-scanned by boundary stitching:
	// the carry runners' traversals plus the local recomputation windows.
	// On match-sparse inputs carries die within a few bytes and this stays
	// near zero.
	StitchBytes int64
	// AccelBytes counts bytes jumped by byte-skipping acceleration across
	// workers and stitch recomputation.
	AccelBytes int64
	// MaxFrontier is the largest boundary carry observed, in active states.
	MaxFrontier int
	// FellBack reports that some boundary carry exceeded Group.MaxFrontier.
	// The scan's results are still exact; the flag advises the caller to
	// run this group serially on future scans.
	FellBack bool

	// Lazy-DFA worker counters, summed across workers (zero for iMFAnt
	// groups).
	CacheHits, CacheMisses int64
	Flushes                int64
	Thrashes               int64
}

// Boundaries cuts n bytes into parts near-equal contiguous segments and
// returns the parts+1 cut offsets (first 0, last n). parts is clamped to
// [1, max(n, 1)] so every segment is non-empty.
func Boundaries(n, parts int) []int {
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	if parts < 1 {
		return []int{0, n} // n == 0
	}
	bounds := make([]int, parts+1)
	base, rem := n/parts, n%parts
	off := 0
	for i := 0; i < parts; i++ {
		bounds[i] = off
		off += base
		if i < rem {
			off++
		}
	}
	bounds[parts] = n
	return bounds
}

// workerOut is the per-segment worker result collected before stitching.
type workerOut struct {
	events   []Event
	symbols  int
	accel    int64
	frontier []engine.Activation

	hits, misses int64
	flushes      int
	thrashed     bool

	err error
}

// Scan runs one group over input segment-parallel: one worker per segment
// (bounds as produced by Boundaries), then a sequential stitch pass over the
// boundaries. emit, when non-nil, receives every event; events are grouped
// by segment but not globally sorted. The emitted set is byte-identical to a
// serial scan of the group under the same Config.
//
// A worker panic is contained and surfaces as *engine.WorkerPanicError; a
// Checkpoint cancellation surfaces as its error. On error no events are
// emitted, but the byte counters still reflect the work performed.
func Scan(g Group, input []byte, bounds []int, emit func(fsa, end int)) (Result, error) {
	res := Result{PerFSA: make([]int64, g.Program.NumFSAs())}
	if err := checkBounds(bounds, len(input)); err != nil {
		return res, err
	}
	parts := len(bounds) - 1
	res.Segments = parts

	outs := make([]workerOut, parts)
	if parts == 1 {
		outs[0] = g.runWorker(input, bounds[0], bounds[1], true)
	} else {
		var wg sync.WaitGroup
		wg.Add(parts)
		for k := 0; k < parts; k++ {
			go func(k int) {
				defer wg.Done()
				outs[k] = g.runWorker(input, bounds[k], bounds[k+1], k == parts-1)
			}(k)
		}
		wg.Wait()
	}
	var errs []error
	for k := range outs {
		res.ParallelBytes += int64(outs[k].symbols)
		res.AccelBytes += outs[k].accel
		res.CacheHits += outs[k].hits
		res.CacheMisses += outs[k].misses
		res.Flushes += int64(outs[k].flushes)
		if outs[k].thrashed {
			res.Thrashes++
		}
		if outs[k].err != nil {
			errs = append(errs, outs[k].err)
		}
	}
	if len(errs) > 0 {
		return res, joinErrs(errs)
	}

	deliver := func(events []Event) {
		for _, e := range events {
			res.Matches++
			res.PerFSA[e.FSA]++
			if emit != nil {
				emit(e.FSA, e.End)
			}
		}
	}

	deliver(outs[0].events)
	// prev carries the stitch survivors of the previous boundary into the
	// next one: the serial carry component crosses every boundary it
	// outlives, so boundary k's carry is the union of worker k-1's local
	// frontier and the previous stitch run's own frontier.
	var prev []engine.Activation
	for k := 1; k < parts; k++ {
		carry := mergeActivations(prev, outs[k-1].frontier, g.Program.Words())
		prev = nil
		if len(carry) > res.MaxFrontier {
			res.MaxFrontier = len(carry)
		}
		if g.MaxFrontier > 0 && len(carry) > g.MaxFrontier {
			res.FellBack = true
		}
		if len(carry) > 0 {
			st, err := g.stitch(carry, input, bounds[k], bounds[k+1], k == parts-1)
			res.StitchBytes += st.bytes
			res.AccelBytes += st.accel
			if err != nil {
				return res, err
			}
			deliver(st.events)
			prev = st.frontier
		}
		deliver(outs[k].events)
	}
	return res, nil
}

func checkBounds(bounds []int, n int) error {
	if len(bounds) < 2 || bounds[0] != 0 || bounds[len(bounds)-1] != n {
		return fmt.Errorf("segment: bounds %v do not cover [0, %d)", bounds, n)
	}
	if n == 0 {
		if len(bounds) != 2 {
			return fmt.Errorf("segment: bounds %v for empty input, want [0 0]", bounds)
		}
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return fmt.Errorf("segment: bounds %v not strictly increasing", bounds)
		}
	}
	return nil
}

// runWorker scans the local component of one segment: a fresh scan starting
// at the segment's first byte, with the stream-start (^) inits suppressed
// automatically by the non-zero resume offset (segment 0 resumes at offset
// 0, where they apply — its local component is the full serial prefix).
func (g *Group) runWorker(input []byte, start, end int, final bool) (out workerOut) {
	defer func() {
		if v := recover(); v != nil {
			out.err = &engine.WorkerPanicError{Automaton: g.Automaton, Value: v, Stack: debug.Stack()}
		}
	}()
	if f := g.faults(); f != nil && f.Hit(faultpoint.WorkerPanic) {
		panic("faultpoint: injected worker panic (segment)")
	}
	collect := func(fsa, endOff int) { out.events = append(out.events, Event{FSA: fsa, End: endOff}) }
	if g.Lazy != nil {
		r := lazydfa.NewRunner(g.Lazy)
		cfg := g.LazyCfg
		cfg.OnMatch = collect
		r.BeginAt(cfg, start)
		r.Feed(input[start:end], final)
		if !final {
			r.FlushHeld()
			out.frontier = r.Frontier()
		}
		res := r.End()
		out.symbols, out.accel = res.Symbols, res.AccelBytes
		out.hits, out.misses = res.CacheHits, res.CacheMisses
		out.flushes, out.thrashed = res.Flushes, res.Thrashed
		out.err = r.Err()
		return out
	}
	r := engine.NewRunner(g.Program)
	cfg := g.Cfg
	cfg.OnMatch = collect
	r.Resume(cfg, nil, start)
	r.Feed(input[start:end], final)
	if !final {
		r.FlushHeld()
		out.frontier = r.Frontier()
	}
	res := r.End()
	out.symbols, out.accel = res.Symbols, res.AccelBytes
	out.err = r.Err()
	return out
}

func (g *Group) faults() *faultpoint.Injector {
	if g.Lazy != nil {
		return g.LazyCfg.Faults
	}
	return g.Cfg.Faults
}

// stitchOut is the result of stitching one boundary.
type stitchOut struct {
	// events are the carried-in events the local worker could not have
	// produced — exactly the serial events missing from the worker pass.
	events []Event
	// frontier is the carry's surviving activations at the segment end
	// (empty when the carry died mid-segment).
	frontier []engine.Activation
	// bytes is the stitch cost: the carry traversal plus, when the carry
	// matched, the local recomputation window.
	bytes int64
	accel int64
}

// stitch replays the carry component of one boundary. A carry-only runner
// (NoInits) resumed from the merged frontier reports every event the carry
// can still produce and dies as soon as its vector empties — Symbols then
// counts exactly the traversed window. If it emitted nothing, every worker
// event stands and stitching this boundary is done (the match-sparse fast
// path). Otherwise the local event set over exactly that window is recomputed
// with a fresh runner and subtracted, leaving the carried-in events the
// serial scan would have reported but the worker could not.
func (g *Group) stitch(carry []engine.Activation, input []byte, segStart, segEnd int, final bool) (out stitchOut, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &engine.WorkerPanicError{Automaton: g.Automaton, Value: v, Stack: debug.Stack()}
		}
	}()
	win := input[segStart:segEnd]

	acfg := g.Cfg
	acfg.NoInits = true
	var aEvents []Event
	acfg.OnMatch = func(fsa, end int) { aEvents = append(aEvents, Event{FSA: fsa, End: end}) }
	ra := engine.NewRunner(g.Program)
	ra.Resume(acfg, carry, segStart)
	ra.Feed(win, final)
	ra.FlushHeld()
	front := ra.Frontier()
	ares := ra.End()
	out.bytes = int64(ares.Symbols)
	if err := ra.Err(); err != nil {
		return out, err
	}
	// window: the bytes the carry actually traversed. Beyond it the carry
	// is provably dead, so its frontier is empty and no event needs
	// deduplication past segStart+window.
	window := ares.Symbols
	out.frontier = front
	if len(aEvents) == 0 {
		return out, nil
	}

	bcfg := g.Cfg
	bcfg.NoInits = false
	local := make(map[Event]struct{}, len(aEvents))
	bcfg.OnMatch = func(fsa, end int) { local[Event{FSA: fsa, End: end}] = struct{}{} }
	rb := engine.NewRunner(g.Program)
	rb.Resume(bcfg, nil, segStart)
	// The local recomputation sees the true stream end only if this is the
	// last segment and the carry survived to it — the same $-gate the
	// worker applied at these positions.
	bFinal := final && window == len(win)
	rb.Feed(win[:window], bFinal)
	if !bFinal {
		rb.FlushHeld()
	}
	bres := rb.End()
	out.bytes += int64(bres.Symbols)
	out.accel = bres.AccelBytes
	if err := rb.Err(); err != nil {
		return out, err
	}
	for _, e := range aEvents {
		if _, dup := local[e]; !dup {
			out.events = append(out.events, e)
		}
	}
	return out, nil
}

// mergeActivations unions two canonical activation vectors (sorted by state,
// as produced by Frontier), OR-ing the J sets of shared states.
func mergeActivations(a, b []engine.Activation, words int) []engine.Activation {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]engine.Activation, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].State < b[j].State:
			out = append(out, a[i])
			i++
		case a[i].State > b[j].State:
			out = append(out, b[j])
			j++
		default:
			J := make([]uint64, words)
			copy(J, a[i].J)
			for w := 0; w < words && w < len(b[j].J); w++ {
				J[w] |= b[j].J[w]
			}
			out = append(out, engine.Activation{State: a[i].State, J: J})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// SortEvents orders events by (end offset, FSA) in place — the order a
// single left-to-right serial scan reports them in.
func SortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		if events[i].End != events[j].End {
			return events[i].End < events[j].End
		}
		return events[i].FSA < events[j].FSA
	})
}

// ACResult aggregates one segment-parallel Aho–Corasick scan.
type ACResult struct {
	// Matches is the number of pattern occurrences, identical to a serial
	// Matcher.Scan.
	Matches int64
	// PerPattern counts occurrences per pattern id.
	PerPattern []int64
	// ScannedBytes is the total bytes scanned across workers: the input
	// plus the overlap windows (at most (parts-1)·(MaxPatternLen-1) extra).
	ScannedBytes int64
	// SkippedBytes counts bytes jumped by root-state acceleration.
	SkippedBytes int64
}

// ScanAC runs an Aho–Corasick matcher segment-parallel. AC needs no
// stitching: a match ending in segment k starts at most MaxPatternLen-1
// bytes earlier, so worker k scans its segment plus that much left context
// from a reset automaton and reports only matches ending inside its own
// segment — exact by the suffix-closure of the AC state. check, when
// non-nil, is polled between blocks of every bytes (≤ 0 selects the engine
// checkpoint default) on each worker and must be safe for concurrent use.
func ScanAC(m *ahocorasick.Matcher, input []byte, bounds []int, accel bool,
	check func() error, every int, emit func(pattern, end int)) (ACResult, error) {
	res := ACResult{PerPattern: make([]int64, m.NumPatterns())}
	if err := checkBounds(bounds, len(input)); err != nil {
		return res, err
	}
	parts := len(bounds) - 1
	if every <= 0 {
		every = engine.DefaultCheckpointEvery
	}
	overlap := m.MaxPatternLen() - 1

	type acOut struct {
		events  []Event // FSA field holds the pattern id
		scanned int64
		skipped int64
		err     error
	}
	outs := make([]acOut, parts)
	run := func(k int) (out acOut) {
		defer func() {
			if v := recover(); v != nil {
				out.err = &engine.WorkerPanicError{Automaton: -1, Value: v, Stack: debug.Stack()}
			}
		}()
		lo, hi := bounds[k], bounds[k+1]
		wstart := lo - overlap
		if wstart < 0 {
			wstart = 0
		}
		s := m.NewStreamScanner()
		s.SetAccel(accel)
		for off := wstart; off < hi; off += every {
			if check != nil {
				if err := check(); err != nil {
					out.err = err
					return out
				}
			}
			stop := off + every
			if stop > hi {
				stop = hi
			}
			base := off
			s.Scan(input[off:stop], func(pat, end int) {
				if abs := base + end; abs >= lo {
					out.events = append(out.events, Event{FSA: pat, End: abs})
				}
			})
			out.scanned += int64(stop - off)
		}
		out.skipped = s.Skipped()
		return out
	}
	if parts == 1 {
		outs[0] = run(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(parts)
		for k := 0; k < parts; k++ {
			go func(k int) {
				defer wg.Done()
				outs[k] = run(k)
			}(k)
		}
		wg.Wait()
	}
	var errs []error
	for k := range outs {
		res.ScannedBytes += outs[k].scanned
		res.SkippedBytes += outs[k].skipped
		if outs[k].err != nil {
			errs = append(errs, outs[k].err)
			continue
		}
	}
	if len(errs) > 0 {
		return res, joinErrs(errs)
	}
	for k := range outs {
		for _, e := range outs[k].events {
			res.Matches++
			res.PerPattern[e.FSA]++
			if emit != nil {
				emit(e.FSA, e.End)
			}
		}
	}
	return res, nil
}
