package bytescan

import (
	"bytes"
	"math/rand"
	"testing"
)

// The correctness invariant under test: every kernel returns exactly the
// index of the first haystack byte belonging to the needle set, or -1 when
// no such byte occurs — the same answer as the naive byte-at-a-time loop
// below. A violation would make an accelerated engine jump over a byte the
// automaton reacts to, silently dropping matches, so the property is
// checked against random inputs across every set size the kernels
// specialize (1–4), against pinned edge cases, and via a fuzz target.

// naiveIndex is the reference loop: first index of any needle byte in h.
func naiveIndex(h []byte, needles []byte) int {
	for i, b := range h {
		for _, n := range needles {
			if b == n {
				return i
			}
		}
	}
	return -1
}

// genHaystack builds a haystack over a small alphabet so that needles both
// occur and are absent with useful probability. Unaligned slicing is
// exercised by the callers cutting random windows out of it.
func genHaystack(rng *rand.Rand, n int) []byte {
	h := make([]byte, n)
	for i := range h {
		h[i] = byte(rng.Intn(8)) // 0..7, dense collisions with small needle sets
	}
	return h
}

// genNeedles draws k distinct bytes from the haystack alphabet plus a few
// never-occurring values, so "not found" paths are exercised too.
func genNeedles(rng *rand.Rand, k int) []byte {
	pool := []byte{0, 1, 2, 3, 4, 5, 6, 7, 0xAA, 0xBB, 0xFF}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool[:k]
}

// TestFinderQuickcheck cross-checks Finder.Index against the naive loop on
// random haystacks, all set sizes 1–4, including empty, short, and
// unaligned windows.
func TestFinderQuickcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 5000; iter++ {
		k := 1 + rng.Intn(MaxNeedles)
		needles := genNeedles(rng, k)
		f, ok := NewFinder(needles)
		if !ok {
			t.Fatalf("NewFinder(%v) rejected a %d-byte set", needles, k)
		}
		if f.Len() != k {
			t.Fatalf("NewFinder(%v): Len = %d, want %d", needles, f.Len(), k)
		}
		h := genHaystack(rng, rng.Intn(200))
		// Random unaligned window, possibly empty.
		lo := 0
		if len(h) > 0 {
			lo = rng.Intn(len(h) + 1)
		}
		hi := lo
		if lo < len(h) {
			hi = lo + rng.Intn(len(h)-lo+1)
		}
		win := h[lo:hi]
		want := naiveIndex(win, needles)
		if got := f.Index(win); got != want {
			t.Fatalf("Finder(%v).Index(%v) = %d, want %d", needles, win, got, want)
		}
		if got := IndexAny(win, needles); got != want {
			t.Fatalf("IndexAny(%v, %v) = %d, want %d", win, needles, got, want)
		}
	}
}

// TestKernelsAgainstReference pins the specialized kernels on the same
// property with direct random windows (no Finder construction in the way).
func TestKernelsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 5000; iter++ {
		h := genHaystack(rng, rng.Intn(128))
		b0, b1 := byte(rng.Intn(10)), byte(rng.Intn(10))
		if got, want := IndexByte(h, b0), naiveIndex(h, []byte{b0}); got != want {
			t.Fatalf("IndexByte(%v, %d) = %d, want %d", h, b0, got, want)
		}
		if got, want := IndexPair(h, b0, b1), naiveIndex(h, []byte{b0, b1}); got != want {
			t.Fatalf("IndexPair(%v, %d, %d) = %d, want %d", h, b0, b1, got, want)
		}
	}
}

// TestFinderEdgeCases pins the boundary behaviour: empty sets, empty and
// one-byte haystacks, duplicates, oversized sets, needle at every position.
func TestFinderEdgeCases(t *testing.T) {
	var zero Finder
	if got := zero.Index([]byte("anything")); got != -1 {
		t.Errorf("zero Finder.Index = %d, want -1 (empty set matches nothing)", got)
	}
	if f, ok := NewFinder(nil); !ok || f.Index([]byte("xyz")) != -1 {
		t.Errorf("NewFinder(nil): ok=%v, Index=%d; want ok with always -1", ok, f.Index([]byte("xyz")))
	}
	if f, ok := NewFinder([]byte{'a', 'a', 'a'}); !ok || f.Len() != 1 {
		t.Errorf("duplicate needles not collapsed: ok=%v len=%d", ok, f.Len())
	}
	if _, ok := NewFinder([]byte{1, 2, 3, 4, 5}); ok {
		t.Error("NewFinder accepted a 5-byte set; MaxNeedles is 4")
	}
	// Dups beyond MaxNeedles positions still collapse to an accepted set.
	if f, ok := NewFinder([]byte{1, 2, 1, 2, 1, 2}); !ok || f.Len() != 2 {
		t.Errorf("NewFinder with repeats: ok=%v len=%d, want ok len 2", ok, f.Len())
	}
	f, _ := NewFinder([]byte{'x', 'y'})
	if got := f.Index(nil); got != -1 {
		t.Errorf("Index(nil) = %d, want -1", got)
	}
	if got := f.Index([]byte{}); got != -1 {
		t.Errorf("Index(empty) = %d, want -1", got)
	}
	if got := f.Index([]byte{'x'}); got != 0 {
		t.Errorf("Index single hit = %d, want 0", got)
	}
	if got := f.Index([]byte{'z'}); got != -1 {
		t.Errorf("Index single miss = %d, want -1", got)
	}
	h := bytes.Repeat([]byte{'.'}, 64)
	for pos := 0; pos < len(h); pos++ {
		h2 := append([]byte(nil), h...)
		h2[pos] = 'y'
		if got := f.Index(h2); got != pos {
			t.Fatalf("needle at %d: Index = %d", pos, got)
		}
	}
}

// TestFinderProbeOrder checks the rarest-first invariant: needles come out
// ordered by non-decreasing Rank regardless of input order.
func TestFinderProbeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 1000; iter++ {
		set := make([]byte, 1+rng.Intn(MaxNeedles))
		for i := range set {
			set[i] = byte(rng.Intn(256))
		}
		f, ok := NewFinder(set)
		if !ok {
			t.Fatalf("NewFinder(%v) rejected", set)
		}
		ns := f.Needles()
		for i := 1; i < len(ns); i++ {
			if Rank(ns[i]) < Rank(ns[i-1]) {
				t.Fatalf("needles %v not rarest-first: Rank(%d)=%d < Rank(%d)=%d",
					ns, ns[i], Rank(ns[i]), ns[i-1], Rank(ns[i-1]))
			}
		}
	}
}

// FuzzIndexAny fuzzes the reference property with arbitrary haystacks and
// needle sets: any disagreement with the naive loop is an engine-corrupting
// bug (a jump over a live byte).
func FuzzIndexAny(f *testing.F) {
	f.Add([]byte("hello world"), []byte("lo"))
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{0, 0, 0, 1}, []byte{1, 2, 3, 4})
	f.Add(bytes.Repeat([]byte{'/'}, 100), []byte("/"))
	f.Add([]byte("GET /admin HTTP/1.1"), []byte("G/"))
	f.Fuzz(func(t *testing.T, h []byte, needles []byte) {
		if len(h) > 1<<16 {
			t.Skip()
		}
		want := naiveIndex(h, needles)
		if got := IndexAny(h, needles); got != want {
			t.Fatalf("IndexAny(%v, %v) = %d, want %d", h, needles, got, want)
		}
		fd, ok := NewFinder(needles)
		if !ok {
			return // > MaxNeedles distinct bytes: Finder declines, by design
		}
		if got := fd.Index(h); got != want {
			t.Fatalf("Finder(%v).Index(%v) = %d, want %d", needles, h, got, want)
		}
	})
}
