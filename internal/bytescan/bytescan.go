// Package bytescan provides the byte-skipping substrate of the execution
// engines: allocation-free kernels that find the next occurrence of a small
// ("sparse") set of candidate bytes in a haystack, so a caller parked in an
// automaton state that only reacts to a few bytes can jump directly to the
// next reactive position instead of stepping the transition table once per
// byte. This is the memchr-class acceleration of Hyperscan and the rust
// regex engine, built on Go's assembler-optimized bytes.IndexByte.
//
// All kernels answer the same question — the index of the first byte of the
// haystack that belongs to the needle set — and differ only in the set size
// they are specialized for. A Finder packages a prepared set of up to
// MaxNeedles bytes; its Index method dispatches to the fastest applicable
// kernel. Multi-needle searches run rarest-first (see Rank): probing the
// least frequent byte first shrinks the remaining search window fastest on
// typical traffic.
package bytescan

import "bytes"

// MaxNeedles is the largest byte-set size the kernels accelerate. Beyond
// four needles the per-window bookkeeping outweighs the vectorized scans
// and callers should step byte-at-a-time instead.
const MaxNeedles = 4

// IndexByte returns the index of the first occurrence of b in h, or -1.
// It is bytes.IndexByte, re-exported so engine code has a single import
// for every skip kernel.
func IndexByte(h []byte, b byte) int {
	return bytes.IndexByte(h, b)
}

// IndexPair returns the index of the first occurrence of either b0 or b1
// in h, or -1. The second probe runs only over the prefix the first one
// has not already beaten.
func IndexPair(h []byte, b0, b1 byte) int {
	i := bytes.IndexByte(h, b0)
	if i >= 0 {
		h = h[:i]
	}
	if j := bytes.IndexByte(h, b1); j >= 0 {
		return j
	}
	return i
}

// IndexAny returns the index of the first byte of h that occurs in needles,
// or -1. Needles beyond MaxNeedles are still honored (the kernel is exact
// for any set size), but callers wanting the acceleration guarantee should
// build a Finder, which enforces the bound and orders probes rarest-first.
func IndexAny(h []byte, needles []byte) int {
	best := -1
	for _, b := range needles {
		if i := bytes.IndexByte(h, b); i >= 0 {
			best = i
			h = h[:i]
		}
	}
	return best
}

// Finder is a prepared sparse-set scanner: up to MaxNeedles distinct bytes,
// probe order fixed at construction (rarest first). The zero value is the
// empty set, whose Index always returns -1 — a caller treating -1 as "skip
// the whole window" therefore gets the correct behaviour for automaton
// states with no live bytes at all.
type Finder struct {
	needles [MaxNeedles]byte
	n       int
}

// NewFinder prepares a finder over set. Duplicates are removed; ok is
// false when more than MaxNeedles distinct bytes remain, in which case the
// finder is unusable and the caller should not accelerate.
func NewFinder(set []byte) (Finder, bool) {
	var f Finder
	for _, b := range set {
		dup := false
		for i := 0; i < f.n; i++ {
			if f.needles[i] == b {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if f.n == MaxNeedles {
			return Finder{}, false
		}
		f.needles[f.n] = b
		f.n++
	}
	// Probe rarest-first: a rare byte's first occurrence is far away on
	// typical traffic, so the remaining windows of the later (more common)
	// probes shrink the most. Insertion sort — n ≤ 4.
	for i := 1; i < f.n; i++ {
		for j := i; j > 0 && Rank(f.needles[j]) < Rank(f.needles[j-1]); j-- {
			f.needles[j], f.needles[j-1] = f.needles[j-1], f.needles[j]
		}
	}
	return f, true
}

// Len returns the number of needles.
func (f *Finder) Len() int { return f.n }

// Needles returns the needle bytes in probe order.
func (f *Finder) Needles() []byte {
	return f.needles[:f.n]
}

// Index returns the index of the first byte of h that belongs to the
// finder's set, or -1 when none occurs — in particular, always -1 for the
// empty set. Allocation-free.
func (f *Finder) Index(h []byte) int {
	switch f.n {
	case 0:
		return -1
	case 1:
		return bytes.IndexByte(h, f.needles[0])
	case 2:
		return IndexPair(h, f.needles[0], f.needles[1])
	}
	best := -1
	for i := 0; i < f.n; i++ {
		if j := bytes.IndexByte(h, f.needles[i]); j >= 0 {
			best = j
			h = h[:j]
		}
	}
	return best
}

// Rank is the byte-frequency heuristic behind rarest-first probe ordering:
// a relative commonness score in [0, 255], higher meaning more frequent in
// the mixed text/protocol/binary traffic the engines scan. The ordering is
// what matters, not the absolute values — ties are fine. The table follows
// the shape used by memchr-style literal optimizers: whitespace and lower-
// case letters dominate text, NUL dominates padded binary, control bytes
// and most high bytes are rare.
func Rank(b byte) int {
	switch {
	case b == ' ':
		return 255
	case b == 'e' || b == 't' || b == 'a' || b == 'o' || b == 'i' || b == 'n':
		return 245
	case b >= 'a' && b <= 'z':
		return 220
	case b == 0x00:
		return 210 // zero padding dominates binary traffic
	case b >= '0' && b <= '9':
		return 200
	case b == '\n' || b == '\r' || b == '\t':
		return 190
	case b >= 'A' && b <= 'Z':
		return 180
	case b == '.' || b == ',' || b == '/' || b == '-' || b == '_' || b == ':' || b == '=':
		return 170
	case b > 0x20 && b < 0x7f:
		return 140 // remaining printable ASCII
	case b == 0xff:
		return 120
	case b >= 0x80:
		return 90 // high half: UTF-8 continuations, binary
	default:
		return 30 // control bytes other than the common whitespace
	}
}
