package rex

import (
	"fmt"
	"strings"

	"repro/internal/charset"
)

// Pattern renders the AST back into a POSIX ERE that parses to an
// equivalent tree. It is used by tooling that rewrites rules (e.g. the
// loop-expansion and refinement passes) to report what they produced, and
// round-trips: Parse(n.Pattern()) recognizes the same language as n.
func (n *Node) Pattern() string {
	var sb strings.Builder
	n.render(&sb, precAlt)
	return sb.String()
}

// Operator precedence levels, loosest to tightest.
const (
	precAlt = iota
	precConcat
	precRepeat
)

func (n *Node) render(sb *strings.Builder, outer int) {
	switch n.Op {
	case OpEmpty:
		sb.WriteString("()")
	case OpLit:
		sb.WriteString(renderSet(n.Set))
	case OpAnchor:
		sb.WriteByte(n.Atom)
	case OpConcat:
		if outer > precConcat {
			sb.WriteByte('(')
		}
		for _, s := range n.Subs {
			s.render(sb, precConcat)
		}
		if outer > precConcat {
			sb.WriteByte(')')
		}
	case OpAlt:
		if outer > precAlt {
			sb.WriteByte('(')
		}
		for i, s := range n.Subs {
			if i > 0 {
				sb.WriteByte('|')
			}
			s.render(sb, precConcat)
		}
		if outer > precAlt {
			sb.WriteByte(')')
		}
	case OpRepeat:
		// A repeat directly under another repeat must be wrapped:
		// "a+?" would re-parse as a non-greedy plus, not (a+)?.
		if outer > precRepeat {
			sb.WriteByte('(')
			defer sb.WriteByte(')')
		}
		n.Subs[0].render(sb, precRepeat+1)
		switch {
		case n.Min == 0 && n.Max == Inf:
			sb.WriteByte('*')
		case n.Min == 1 && n.Max == Inf:
			sb.WriteByte('+')
		case n.Min == 0 && n.Max == 1:
			sb.WriteByte('?')
		case n.Max == Inf:
			fmt.Fprintf(sb, "{%d,}", n.Min)
		case n.Min == n.Max:
			fmt.Fprintf(sb, "{%d}", n.Min)
		default:
			fmt.Fprintf(sb, "{%d,%d}", n.Min, n.Max)
		}
	}
}

// renderSet writes a set as a single escaped character or a bracket
// expression that the lexer parses back to the same set.
func renderSet(s charset.Set) string {
	if b, ok := s.IsSingle(); ok {
		return escapeLit(b)
	}
	if s.Equal(charset.AnyNoNL()) {
		return "."
	}
	// charset.Set.String already emits a lexer-compatible bracket form
	// for multi-byte sets.
	return s.String()
}

// escapeLit escapes a literal byte so it parses back to itself outside a
// bracket expression.
func escapeLit(b byte) string {
	switch b {
	case '.', '*', '+', '?', '(', ')', '[', ']', '{', '}', '|', '^', '$', '\\':
		return "\\" + string(b)
	case '\n':
		return `\n`
	case '\t':
		return `\t`
	case '\r':
		return `\r`
	}
	if b < 0x20 || b >= 0x7f {
		return fmt.Sprintf(`\x%02x`, b)
	}
	return string(b)
}
