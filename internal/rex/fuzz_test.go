package rex

import (
	"testing"
)

// FuzzParse checks that the front-end never panics and that every accepted
// pattern round-trips through the printer into an identical AST. Run the
// seeds as ordinary tests, or explore with `go test -fuzz=FuzzParse`.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"", "a", "ab|cd", "(a|b)*c+", "a{2,5}", "[a-f]", "[^xyz]",
		`\x41\n`, "^anchor$", "a**", "((((", "a{999}", `[\d-]`,
		"[[:alpha:]]", `GET /[a-z]{1,8}\.php`, "\x00\xff", "a|", "|a",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, pattern string) {
		n, err := Parse(pattern)
		if err != nil {
			return // rejection is fine; panics are not
		}
		p := n.Pattern()
		m, err := Parse(p)
		if err != nil {
			t.Fatalf("printer output %q (from %q) does not re-parse: %v", p, pattern, err)
		}
		if m.String() != n.String() {
			t.Fatalf("round trip %q → %q changed the AST:\n%s\n%s", pattern, p, n, m)
		}
	})
}
