package rex

import (
	"strings"
	"testing"

	"repro/internal/charset"
)

func kinds(ts []Token) []TokenKind {
	ks := make([]TokenKind, len(ts))
	for i, t := range ts {
		ks[i] = t.Kind
	}
	return ks
}

func TestLexSimple(t *testing.T) {
	ts, err := Tokens("ab|c*")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokChar, TokChar, TokAlt, TokChar, TokStar}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if ts[0].Ch != 'a' || ts[1].Ch != 'b' || ts[3].Ch != 'c' {
		t.Fatal("wrong chars")
	}
}

func TestLexMeta(t *testing.T) {
	ts, err := Tokens("(.)+?^$")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokLParen, TokDot, TokRParen, TokPlus, TokQuest, TokCaret, TokDollar}
	got := kinds(ts)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexRepeat(t *testing.T) {
	cases := []struct {
		in       string
		min, max int
	}{
		{"{3}", 3, 3},
		{"{2,5}", 2, 5},
		{"{4,}", 4, Inf},
		{"{0,1}", 0, 1},
	}
	for _, c := range cases {
		ts, err := Tokens(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if len(ts) != 1 || ts[0].Kind != TokRepeat {
			t.Fatalf("%s: tokens %v", c.in, kinds(ts))
		}
		if ts[0].Min != c.min || ts[0].Max != c.max {
			t.Fatalf("%s: bounds %d,%d want %d,%d", c.in, ts[0].Min, ts[0].Max, c.min, c.max)
		}
	}
}

func TestLexLiteralBrace(t *testing.T) {
	// Braces that do not form a valid bound are literal characters.
	for _, in := range []string{"{", "{a}", "{,3}", "{1x}"} {
		ts, err := Tokens(in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if ts[0].Kind != TokChar || ts[0].Ch != '{' {
			t.Fatalf("%s: first token %v, want literal brace", in, ts[0].Kind)
		}
	}
}

func TestLexRepeatErrors(t *testing.T) {
	if _, err := Tokens("{5,2}"); err == nil {
		t.Fatal("max<min accepted")
	}
	if _, err := Tokens("{2000}"); err == nil {
		t.Fatal("huge bound accepted")
	}
}

func TestLexEscapes(t *testing.T) {
	cases := map[string]byte{
		`\n`:   '\n',
		`\t`:   '\t',
		`\r`:   '\r',
		`\\`:   '\\',
		`\.`:   '.',
		`\*`:   '*',
		`\x41`: 'A',
		`\xff`: 0xff,
		`\x00`: 0x00,
		`\0`:   0,
	}
	for in, want := range cases {
		ts, err := Tokens(in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if len(ts) != 1 || ts[0].Kind != TokChar || ts[0].Ch != want {
			t.Fatalf("%s: got %+v, want char %d", in, ts[0], want)
		}
	}
}

func TestLexEscapeErrors(t *testing.T) {
	for _, in := range []string{`\`, `\x4`, `\xg1`, `\x`} {
		if _, err := Tokens(in); err == nil {
			t.Fatalf("%q: no error", in)
		}
	}
}

func TestLexShorthand(t *testing.T) {
	ts, err := Tokens(`\d\w\s\D\W\S`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 6 {
		t.Fatalf("got %d tokens", len(ts))
	}
	digit := charset.Range('0', '9')
	if !ts[0].Set.Equal(digit) {
		t.Fatal(`\d mismatch`)
	}
	if !ts[3].Set.Equal(digit.Complement()) {
		t.Fatal(`\D mismatch`)
	}
	word, _ := charset.Posix("word")
	if !ts[1].Set.Equal(word) || !ts[4].Set.Equal(word.Complement()) {
		t.Fatal(`\w/\W mismatch`)
	}
}

func TestLexBracket(t *testing.T) {
	cases := []struct {
		in   string
		want charset.Set
	}{
		{"[abc]", charset.Of('a', 'b', 'c')},
		{"[a-c]", charset.Range('a', 'c')},
		{"[a-cx-z]", charset.Range('a', 'c').Union(charset.Range('x', 'z'))},
		{"[^a]", charset.Single('a').Complement()},
		{"[]]", charset.Single(']')},
		{"[^]]", charset.Single(']').Complement()},
		{"[a-]", charset.Of('a', '-')},
		{"[-a]", charset.Of('a', '-')},
		{"[[:digit:]]", charset.Range('0', '9')},
		{"[[:upper:][:digit:]]", charset.Range('A', 'Z').Union(charset.Range('0', '9'))},
		{`[\n\t]`, charset.Of('\n', '\t')},
		{`[\x41-\x43]`, charset.Range('A', 'C')},
		{`[\d]`, charset.Range('0', '9')},
		{`[\]]`, charset.Single(']')},
	}
	for _, c := range cases {
		ts, err := Tokens(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if len(ts) != 1 || ts[0].Kind != TokClass {
			t.Fatalf("%s: tokens %v", c.in, kinds(ts))
		}
		if !ts[0].Set.Equal(c.want) {
			t.Fatalf("%s: set %v, want %v", c.in, ts[0].Set, c.want)
		}
	}
}

func TestLexBracketErrors(t *testing.T) {
	for _, in := range []string{"[abc", "[", "[z-a]", "[[:nope:]]", "[[:digit]", `[a-\d]`} {
		if _, err := Tokens(in); err == nil {
			t.Fatalf("%q: no error", in)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Tokens("ab[cd")
	if err == nil {
		t.Fatal("no error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Pos != 2 {
		t.Fatalf("pos=%d, want 2", se.Pos)
	}
	if !strings.Contains(se.Error(), "offset 2") {
		t.Fatalf("message %q", se.Error())
	}
}
