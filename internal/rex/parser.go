package rex

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/charset"
)

// Default Front-End budgets, applied by Parse. Hostile rulesets can weaponize
// the parser itself — a multi-megabyte pattern or a `(((...)))` tower deep
// enough to exhaust the goroutine stack — so both dimensions are bounded
// before any recursion happens. ParseOpts overrides them per call.
const (
	// DefaultMaxLen bounds the pattern length in bytes. Published DPI
	// rulesets top out well under 4 KiB per rule.
	DefaultMaxLen = 64 << 10
	// DefaultMaxDepth bounds the group-nesting depth, which bounds the
	// parser's recursion. Real rules rarely nest beyond a few dozen levels.
	DefaultMaxDepth = 250
)

// ParseOptions tunes the Front-End budgets. For each field, zero selects the
// package default and a negative value disables the check.
type ParseOptions struct {
	// MaxLen is the maximum pattern length in bytes.
	MaxLen int
	// MaxDepth is the maximum '(' nesting depth.
	MaxDepth int
}

func (o ParseOptions) maxLen() int {
	if o.MaxLen == 0 {
		return DefaultMaxLen
	}
	return o.MaxLen
}

func (o ParseOptions) maxDepth() int {
	if o.MaxDepth == 0 {
		return DefaultMaxDepth
	}
	return o.MaxDepth
}

// Parser builds an AST from the token stream using the ERE grammar
//
//	alternation   = branch { '|' branch }
//	branch        = { piece }
//	piece         = atom { quantifier }
//	quantifier    = '*' | '+' | '?' | '{m[,n]}' [ '?' ]
//	atom          = char | class | '.' | '(' alternation ')' | '^' | '$'
//
// Anchors are accepted anywhere a POSIX ERE allows them. A leading '^'
// anchors the expression; a trailing '$' requires end of a line. The
// automaton engines implement scan semantics, so anchors are compiled to
// explicit markers consumed by the NFA builder.
type Parser struct {
	lex      *Lexer
	tok      Token
	src      string
	prev     error
	depth    int
	maxDepth int
}

// Parse analyses pattern and returns its AST root, or a *SyntaxError. The
// default budgets of ParseOptions apply; they guarantee Parse returns an
// error — never panics or exhausts the stack — on any input.
func Parse(pattern string) (*Node, error) {
	return ParseOpts(pattern, ParseOptions{})
}

// ParseOpts is Parse with explicit Front-End budgets. Budget violations
// satisfy errors.Is(err, budget.Err).
func ParseOpts(pattern string, opts ParseOptions) (*Node, error) {
	if max := opts.maxLen(); max > 0 && len(pattern) > max {
		return nil, &SyntaxError{
			Pattern: truncatePattern(pattern),
			Pos:     max,
			Msg:     fmt.Sprintf("pattern length %d exceeds budget %d", len(pattern), max),
			Err:     budget.Err,
		}
	}
	p := &Parser{lex: NewLexer(pattern), src: pattern, maxDepth: opts.maxDepth()}
	p.advance()
	if p.prev != nil {
		return nil, p.prev
	}
	n, err := p.alternation()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, &SyntaxError{Pattern: pattern, Pos: p.tok.Pos, Msg: "unexpected " + p.tok.Kind.String()}
	}
	return n, nil
}

// truncatePattern keeps diagnostics for over-long patterns bounded.
func truncatePattern(pattern string) string {
	const keep = 256
	if len(pattern) <= keep {
		return pattern
	}
	return pattern[:keep] + "..."
}

// MustParse is Parse for patterns known to be valid (generators, tests).
// It panics on error.
func MustParse(pattern string) *Node {
	n, err := Parse(pattern)
	if err != nil {
		panic(err)
	}
	return n
}

func (p *Parser) advance() {
	t, err := p.lex.Next()
	if err != nil {
		p.prev = err
		p.tok = Token{Kind: TokEOF, Pos: len(p.src)}
		return
	}
	p.tok = t
}

func (p *Parser) errf(msg string) error {
	return &SyntaxError{Pattern: p.src, Pos: p.tok.Pos, Msg: msg}
}

func (p *Parser) alternation() (*Node, error) {
	first, err := p.branch()
	if err != nil {
		return nil, err
	}
	subs := []*Node{first}
	for p.tok.Kind == TokAlt {
		p.advance()
		if p.prev != nil {
			return nil, p.prev
		}
		b, err := p.branch()
		if err != nil {
			return nil, err
		}
		subs = append(subs, b)
	}
	if len(subs) == 1 {
		return first, nil
	}
	return Alt(subs...), nil
}

func (p *Parser) branch() (*Node, error) {
	var subs []*Node
	for {
		switch p.tok.Kind {
		case TokEOF, TokAlt, TokRParen:
			return Concat(subs...), nil
		}
		piece, err := p.piece()
		if err != nil {
			return nil, err
		}
		subs = append(subs, piece)
	}
}

func (p *Parser) piece() (*Node, error) {
	atom, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		var min, max int
		switch p.tok.Kind {
		case TokStar:
			min, max = 0, Inf
		case TokPlus:
			min, max = 1, Inf
		case TokQuest:
			min, max = 0, 1
		case TokRepeat:
			min, max = p.tok.Min, p.tok.Max
		default:
			return atom, nil
		}
		if atom.Op == OpAnchor {
			return nil, p.errf("quantifier applied to anchor")
		}
		p.advance()
		if p.prev != nil {
			return nil, p.prev
		}
		// Swallow a non-greedy suffix: automata semantics report every
		// match, so greediness is irrelevant.
		if p.tok.Kind == TokQuest {
			p.advance()
			if p.prev != nil {
				return nil, p.prev
			}
		}
		atom = Repeat(atom, min, max)
	}
}

func (p *Parser) atom() (*Node, error) {
	t := p.tok
	switch t.Kind {
	case TokChar:
		p.advance()
		return Literal(charset.Single(t.Ch)), p.prev
	case TokClass:
		p.advance()
		return Literal(t.Set), p.prev
	case TokDot:
		p.advance()
		return Literal(charset.AnyNoNL()), p.prev
	case TokCaret:
		p.advance()
		return &Node{Op: OpAnchor, Atom: '^'}, p.prev
	case TokDollar:
		p.advance()
		return &Node{Op: OpAnchor, Atom: '$'}, p.prev
	case TokLParen:
		p.depth++
		if p.maxDepth > 0 && p.depth > p.maxDepth {
			return nil, &SyntaxError{
				Pattern: truncatePattern(p.src),
				Pos:     t.Pos,
				Msg:     fmt.Sprintf("group nesting exceeds depth budget %d", p.maxDepth),
				Err:     budget.Err,
			}
		}
		p.advance()
		if p.prev != nil {
			return nil, p.prev
		}
		inner, err := p.alternation()
		if err != nil {
			return nil, err
		}
		p.depth--
		if p.tok.Kind != TokRParen {
			return nil, p.errf("missing closing parenthesis")
		}
		p.advance()
		return inner, p.prev
	case TokRepeat:
		return nil, p.errf("repetition with nothing to repeat")
	case TokStar, TokPlus, TokQuest:
		return nil, p.errf("quantifier with nothing to repeat")
	case TokRParen:
		return nil, p.errf("unmatched closing parenthesis")
	default:
		return nil, p.errf("unexpected " + t.Kind.String())
	}
}
