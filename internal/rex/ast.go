// Package rex implements the compilation framework's Front-End (§IV-A of the
// paper): lexical and syntactic analysis of POSIX Extended Regular
// Expressions into an Abstract Syntax Tree.
//
// The accepted language is POSIX ERE plus the pragmatic extensions common in
// DPI rulesets: \xHH byte escapes, the \d \D \w \W \s \S shorthand classes,
// and non-greedy quantifier suffixes (parsed and ignored, since automata
// semantics report all matches).
package rex

import (
	"fmt"
	"strings"

	"repro/internal/charset"
)

// Op identifies the kind of an AST node.
type Op int

// AST node operators. Each maps to a well-defined sub-FSA structure in the
// Thompson-like construction (§IV-B).
const (
	OpEmpty  Op = iota // matches the empty string
	OpLit              // a symbol set (single char or CC)
	OpConcat           // subexpressions in sequence
	OpAlt              // alternation of subexpressions
	OpRepeat           // bounded or unbounded repetition {min,max}
	OpAnchor           // ^ or $, kept for diagnostics
)

// Inf marks an unbounded repetition upper limit ({n,}, *, +).
const Inf = -1

// Node is an AST node. Leaves carry a symbol Set; interior nodes carry
// children and, for OpRepeat, the loop bounds that the Middle-End loop
// expansion (§IV-C) consumes.
type Node struct {
	Op   Op
	Set  charset.Set // OpLit
	Subs []*Node     // OpConcat, OpAlt, OpRepeat (one child)
	Min  int         // OpRepeat
	Max  int         // OpRepeat, Inf when unbounded
	Atom byte        // OpAnchor: '^' or '$'
}

func (op Op) String() string {
	switch op {
	case OpEmpty:
		return "Empty"
	case OpLit:
		return "Lit"
	case OpConcat:
		return "Concat"
	case OpAlt:
		return "Alt"
	case OpRepeat:
		return "Repeat"
	case OpAnchor:
		return "Anchor"
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// String renders the node as an s-expression, for tests and debugging.
func (n *Node) String() string {
	var sb strings.Builder
	n.write(&sb)
	return sb.String()
}

func (n *Node) write(sb *strings.Builder) {
	switch n.Op {
	case OpEmpty:
		sb.WriteString("ε")
	case OpLit:
		sb.WriteString(n.Set.String())
	case OpAnchor:
		sb.WriteByte(n.Atom)
	case OpConcat:
		sb.WriteString("(cat")
		for _, s := range n.Subs {
			sb.WriteByte(' ')
			s.write(sb)
		}
		sb.WriteByte(')')
	case OpAlt:
		sb.WriteString("(alt")
		for _, s := range n.Subs {
			sb.WriteByte(' ')
			s.write(sb)
		}
		sb.WriteByte(')')
	case OpRepeat:
		if n.Max == Inf {
			fmt.Fprintf(sb, "(rep{%d,∞} ", n.Min)
		} else {
			fmt.Fprintf(sb, "(rep{%d,%d} ", n.Min, n.Max)
		}
		n.Subs[0].write(sb)
		sb.WriteByte(')')
	}
}

// Walk calls fn for n and every descendant in depth-first preorder.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, s := range n.Subs {
		s.Walk(fn)
	}
}

// CountLits returns the number of literal (symbol-set) leaves, a size proxy
// used by the dataset generators to calibrate per-RE state counts.
func (n *Node) CountLits() int {
	c := 0
	n.Walk(func(m *Node) {
		if m.Op == OpLit {
			c++
		}
	})
	return c
}

// MinMatchLen returns the length of the shortest string the expression can
// match, with repetition bounds applied. Anchors contribute zero length.
func (n *Node) MinMatchLen() int {
	switch n.Op {
	case OpLit:
		return 1
	case OpConcat:
		t := 0
		for _, s := range n.Subs {
			t += s.MinMatchLen()
		}
		return t
	case OpAlt:
		best := -1
		for _, s := range n.Subs {
			if l := s.MinMatchLen(); best < 0 || l < best {
				best = l
			}
		}
		if best < 0 {
			return 0
		}
		return best
	case OpRepeat:
		return n.Min * n.Subs[0].MinMatchLen()
	default:
		return 0
	}
}

// Literal builds an OpLit node for set s.
func Literal(s charset.Set) *Node { return &Node{Op: OpLit, Set: s} }

// Concat builds a concatenation node, flattening nested concatenations.
func Concat(subs ...*Node) *Node {
	flat := make([]*Node, 0, len(subs))
	for _, s := range subs {
		if s.Op == OpConcat {
			flat = append(flat, s.Subs...)
		} else if s.Op != OpEmpty {
			flat = append(flat, s)
		}
	}
	switch len(flat) {
	case 0:
		return &Node{Op: OpEmpty}
	case 1:
		return flat[0]
	}
	return &Node{Op: OpConcat, Subs: flat}
}

// Alt builds an alternation node, flattening nested alternations.
func Alt(subs ...*Node) *Node {
	flat := make([]*Node, 0, len(subs))
	for _, s := range subs {
		if s.Op == OpAlt {
			flat = append(flat, s.Subs...)
		} else {
			flat = append(flat, s)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Node{Op: OpAlt, Subs: flat}
}

// Repeat builds a repetition node with the given bounds.
func Repeat(sub *Node, min, max int) *Node {
	return &Node{Op: OpRepeat, Subs: []*Node{sub}, Min: min, Max: max}
}
