package rex

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPatternSimple(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc", "abc"},
		{"a|b", "a|b"},
		{"(a|b)c", "(a|b)c"},
		{"a*", "a*"},
		{"a+", "a+"},
		{"a?", "a?"},
		{"a{2,4}", "a{2,4}"},
		{"a{3}", "a{3}"},
		{"a{2,}", "a{2,}"},
		{"[a-c]", "[a-c]"},
		{".", "."},
		{`\.`, `\.`},
		{`\n`, `\n`},
		{"^ab$", "^ab$"},
		{"(ab)+", "(ab)+"},
		{"a(b|c)d", "a(b|c)d"},
	}
	for _, c := range cases {
		n := MustParse(c.in)
		if got := n.Pattern(); got != c.want {
			t.Errorf("Pattern(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPatternRoundTripReparses(t *testing.T) {
	// Pattern must re-parse to the identical AST shape for a broad set.
	for _, in := range []string{
		"abc", "a|bc|d", "(a|b)*c+d?", "a{2,5}(xy){3}", "[^a-f]z",
		`GET /[a-z]{1,8}\.php`, `\x00\xff`, "a(b(c(d)))e", "x**",
	} {
		n := MustParse(in)
		p := n.Pattern()
		m, err := Parse(p)
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", p, in, err)
		}
		if m.String() != n.String() {
			t.Errorf("round trip %q → %q: AST %s vs %s", in, p, m.String(), n.String())
		}
	}
}

func TestQuickPatternRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	f := func() bool {
		in := randPattern(r, 4)
		n, err := Parse(in)
		if err != nil {
			return true
		}
		p := n.Pattern()
		m, err := Parse(p)
		if err != nil {
			t.Logf("reparse %q (from %q): %v", p, in, err)
			return false
		}
		if m.String() != n.String() {
			t.Logf("%q → %q: %s vs %s", in, p, m.String(), n.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
