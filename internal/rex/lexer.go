package rex

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/charset"
)

// TokenKind classifies lexical tokens of the ERE grammar.
type TokenKind int

// Token kinds produced by the lexer.
const (
	TokEOF    TokenKind = iota
	TokChar             // a literal byte (possibly from an escape)
	TokClass            // a complete bracket expression or shorthand class
	TokDot              // .
	TokStar             // *
	TokPlus             // +
	TokQuest            // ?
	TokLParen           // (
	TokRParen           // )
	TokAlt              // |
	TokLBrace           // { opening a repetition bound
	TokCaret            // ^
	TokDollar           // $
	TokRepeat           // a full {m}, {m,}, {m,n} bound
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokChar:
		return "char"
	case TokClass:
		return "class"
	case TokDot:
		return "."
	case TokStar:
		return "*"
	case TokPlus:
		return "+"
	case TokQuest:
		return "?"
	case TokLParen:
		return "("
	case TokRParen:
		return ")"
	case TokAlt:
		return "|"
	case TokLBrace:
		return "{"
	case TokCaret:
		return "^"
	case TokDollar:
		return "$"
	case TokRepeat:
		return "repeat"
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is a lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Ch   byte        // TokChar
	Set  charset.Set // TokClass
	Min  int         // TokRepeat
	Max  int         // TokRepeat (Inf when open)
	Pos  int
}

// SyntaxError reports a lexical or syntactic violation of the POSIX ERE
// grammar, with the byte offset where it was detected. Err, when non-nil,
// classifies the failure (budget.Err for resource-budget violations) and is
// exposed through Unwrap for errors.Is.
type SyntaxError struct {
	Pattern string
	Pos     int
	Msg     string
	Err     error
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("regex syntax error at offset %d in %q: %s", e.Pos, e.Pattern, e.Msg)
}

// Unwrap exposes the classifying sentinel, if any.
func (e *SyntaxError) Unwrap() error { return e.Err }

// Lexer tokenizes a POSIX ERE pattern. It resolves escapes, bracket
// expressions (including POSIX named classes and negation) and repetition
// bounds into single tokens so that the parser deals only with grammar
// structure.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over pattern.
func NewLexer(pattern string) *Lexer {
	return &Lexer{src: pattern}
}

func (l *Lexer) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pattern: l.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Next returns the next token. After the end of input it keeps returning
// TokEOF.
func (l *Lexer) Next() (Token, error) {
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	l.pos++
	switch c {
	case '.':
		return Token{Kind: TokDot, Pos: start}, nil
	case '*':
		return Token{Kind: TokStar, Pos: start}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: start}, nil
	case '?':
		return Token{Kind: TokQuest, Pos: start}, nil
	case '(':
		return Token{Kind: TokLParen, Pos: start}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: start}, nil
	case '|':
		return Token{Kind: TokAlt, Pos: start}, nil
	case '^':
		return Token{Kind: TokCaret, Pos: start}, nil
	case '$':
		return Token{Kind: TokDollar, Pos: start}, nil
	case '{':
		return l.lexRepeat(start)
	case '[':
		set, err := l.lexBracket(start)
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: TokClass, Set: set, Pos: start}, nil
	case '\\':
		return l.lexEscape(start)
	default:
		return Token{Kind: TokChar, Ch: c, Pos: start}, nil
	}
}

// lexRepeat scans a {m}, {m,} or {m,n} bound. A '{' not followed by a valid
// bound is a literal brace, matching common ruleset practice (and PCRE).
func (l *Lexer) lexRepeat(start int) (Token, error) {
	save := l.pos
	min, ok := l.scanInt()
	if !ok {
		l.pos = save
		return Token{Kind: TokChar, Ch: '{', Pos: start}, nil
	}
	max := min
	if l.pos < len(l.src) && l.src[l.pos] == ',' {
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '}' {
			max = Inf
		} else {
			m, ok := l.scanInt()
			if !ok {
				l.pos = save
				return Token{Kind: TokChar, Ch: '{', Pos: start}, nil
			}
			max = m
		}
	}
	if l.pos >= len(l.src) || l.src[l.pos] != '}' {
		l.pos = save
		return Token{Kind: TokChar, Ch: '{', Pos: start}, nil
	}
	l.pos++
	if max != Inf && max < min {
		return Token{}, l.errf(start, "repetition bound {%d,%d} has max < min", min, max)
	}
	if min > maxRepeatBound || (max != Inf && max > maxRepeatBound) {
		return Token{}, &SyntaxError{
			Pattern: l.src, Pos: start,
			Msg: fmt.Sprintf("repetition bound exceeds limit %d", maxRepeatBound),
			Err: budget.Err,
		}
	}
	return Token{Kind: TokRepeat, Min: min, Max: max, Pos: start}, nil
}

// maxRepeatBound caps counted repetitions so that loop expansion (§IV-C)
// cannot blow up the automaton; POSIX requires at least 255.
const maxRepeatBound = 1000

func (l *Lexer) scanInt() (int, bool) {
	begin := l.pos
	v := 0
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		v = v*10 + int(l.src[l.pos]-'0')
		if v > 1<<20 {
			return 0, false
		}
		l.pos++
	}
	return v, l.pos > begin
}

// lexEscape resolves a backslash escape into a literal byte or a shorthand
// class token.
func (l *Lexer) lexEscape(start int) (Token, error) {
	if l.pos >= len(l.src) {
		return Token{}, l.errf(start, "trailing backslash")
	}
	c := l.src[l.pos]
	l.pos++
	switch c {
	case 'n':
		return Token{Kind: TokChar, Ch: '\n', Pos: start}, nil
	case 't':
		return Token{Kind: TokChar, Ch: '\t', Pos: start}, nil
	case 'r':
		return Token{Kind: TokChar, Ch: '\r', Pos: start}, nil
	case 'f':
		return Token{Kind: TokChar, Ch: '\f', Pos: start}, nil
	case 'v':
		return Token{Kind: TokChar, Ch: '\v', Pos: start}, nil
	case 'a':
		return Token{Kind: TokChar, Ch: '\a', Pos: start}, nil
	case '0':
		return Token{Kind: TokChar, Ch: 0, Pos: start}, nil
	case 'x':
		b, err := l.scanHexByte(start)
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: TokChar, Ch: b, Pos: start}, nil
	case 'd', 'D', 'w', 'W', 's', 'S':
		set := shorthandClass(c)
		return Token{Kind: TokClass, Set: set, Pos: start}, nil
	default:
		// POSIX: a backslash escapes any special (and, pragmatically,
		// any) character to its literal self.
		return Token{Kind: TokChar, Ch: c, Pos: start}, nil
	}
}

func shorthandClass(c byte) charset.Set {
	var s charset.Set
	switch c {
	case 'd', 'D':
		s = charset.Range('0', '9')
	case 'w', 'W':
		s, _ = charset.Posix("word")
	case 's', 'S':
		s, _ = charset.Posix("space")
	}
	if c == 'D' || c == 'W' || c == 'S' {
		s = s.Complement()
	}
	return s
}

func (l *Lexer) scanHexByte(start int) (byte, error) {
	if l.pos+2 > len(l.src) {
		return 0, l.errf(start, `\x escape needs two hex digits`)
	}
	hi, ok1 := hexVal(l.src[l.pos])
	lo, ok2 := hexVal(l.src[l.pos+1])
	if !ok1 || !ok2 {
		return 0, l.errf(start, `invalid \x escape %q`, l.src[start:l.pos+2])
	}
	l.pos += 2
	return hi<<4 | lo, nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// lexBracket scans a complete bracket expression; the opening '[' has been
// consumed. It supports negation, ranges, POSIX [:name:] classes, escapes,
// and the POSIX rules that ']' first and '-' first/last are literals.
func (l *Lexer) lexBracket(start int) (charset.Set, error) {
	var set charset.Set
	negate := false
	if l.pos < len(l.src) && l.src[l.pos] == '^' {
		negate = true
		l.pos++
	}
	first := true
	for {
		if l.pos >= len(l.src) {
			return set, l.errf(start, "unterminated bracket expression")
		}
		c := l.src[l.pos]
		if c == ']' && !first {
			l.pos++
			break
		}
		first = false
		var lo byte
		switch {
		case c == '[' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ':':
			name, err := l.scanPosixName(start)
			if err != nil {
				return set, err
			}
			cls, ok := charset.Posix(name)
			if !ok {
				return set, l.errf(start, "unknown POSIX class [:%s:]", name)
			}
			set = set.Union(cls)
			continue
		case c == '\\':
			l.pos++
			tok, err := l.lexEscape(l.pos - 1)
			if err != nil {
				return set, err
			}
			if tok.Kind == TokClass {
				set = set.Union(tok.Set)
				continue
			}
			lo = tok.Ch
		default:
			lo = c
			l.pos++
		}
		// Possible range lo-hi.
		if l.pos+1 < len(l.src) && l.src[l.pos] == '-' && l.src[l.pos+1] != ']' {
			l.pos++
			hc := l.src[l.pos]
			var hi byte
			if hc == '\\' {
				l.pos++
				tok, err := l.lexEscape(l.pos - 1)
				if err != nil {
					return set, err
				}
				if tok.Kind != TokChar {
					return set, l.errf(start, "class shorthand cannot end a range")
				}
				hi = tok.Ch
			} else {
				hi = hc
				l.pos++
			}
			if hi < lo {
				return set, l.errf(start, "inverted range %q-%q in bracket expression", lo, hi)
			}
			set = set.Union(charset.Range(lo, hi))
			continue
		}
		set.Add(lo)
	}
	if negate {
		set = set.Complement()
	}
	if set.IsEmpty() {
		return set, l.errf(start, "empty bracket expression")
	}
	return set, nil
}

func (l *Lexer) scanPosixName(start int) (string, error) {
	// l.pos is at '['; expect "[:name:]".
	p := l.pos + 2
	begin := p
	for p < len(l.src) && l.src[p] != ':' {
		p++
	}
	if p+1 >= len(l.src) || l.src[p] != ':' || l.src[p+1] != ']' {
		return "", l.errf(start, "unterminated POSIX class")
	}
	name := l.src[begin:p]
	l.pos = p + 2
	return name, nil
}

// Tokens runs the lexer to completion, returning all tokens up to and
// excluding EOF. It is a convenience for tests.
func Tokens(pattern string) ([]Token, error) {
	l := NewLexer(pattern)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return out, nil
		}
		out = append(out, t)
	}
}
