package rex

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/budget"
)

func TestParseShapes(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"a", "a"},
		{"ab", "(cat a b)"},
		{"a|b", "(alt a b)"},
		{"a|b|c", "(alt a b c)"},
		{"ab|cd", "(alt (cat a b) (cat c d))"},
		{"a*", "(rep{0,∞} a)"},
		{"a+", "(rep{1,∞} a)"},
		{"a?", "(rep{0,1} a)"},
		{"a{2,4}", "(rep{2,4} a)"},
		{"a{3}", "(rep{3,3} a)"},
		{"a{2,}", "(rep{2,∞} a)"},
		{"(ab)+", "(rep{1,∞} (cat a b))"},
		{"(a|b)c", "(cat (alt a b) c)"},
		{".", `[\x00-\t\x0b-\xff]`},
		{"[abc]", "[a-c]"},
		{"a**", "(rep{0,∞} (rep{0,∞} a))"},
		{"a+?", "(rep{1,∞} a)"}, // non-greedy suffix swallowed
		{"()", "ε"},
		{"(|a)", "(alt ε a)"},
		{"^ab$", "(cat ^ a b $)"},
		{"a(bc(d|e))f", "(cat a b c (alt d e) f)"},
	}
	for _, c := range cases {
		n, err := Parse(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if got := n.String(); got != c.want {
			t.Errorf("%s: AST %s, want %s", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"(", ")", "(a", "a)", "*", "+a", "?", "a(b", "{2}", "a{2,1}",
		"(^)*", "[", `a\`,
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("%q: expected syntax error", in)
		}
	}
}

func TestParseEmptyPattern(t *testing.T) {
	n, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != OpEmpty {
		t.Fatalf("op=%v, want OpEmpty", n.Op)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("(")
}

func TestMinMatchLen(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"abc", 3},
		{"a|bc", 1},
		{"a*", 0},
		{"a+", 1},
		{"a{3,7}", 3},
		{"(ab){2}c", 5},
		{"^a$", 1},
		{"", 0},
	}
	for _, c := range cases {
		n := MustParse(c.in)
		if got := n.MinMatchLen(); got != c.want {
			t.Errorf("%s: MinMatchLen=%d, want %d", c.in, got, c.want)
		}
	}
}

func TestCountLits(t *testing.T) {
	if got := MustParse("ab(c|d)e{2,3}").CountLits(); got != 5 {
		t.Fatalf("CountLits=%d, want 5", got)
	}
}

func TestWalkVisitsAll(t *testing.T) {
	n := MustParse("a(b|c)*d")
	count := 0
	n.Walk(func(*Node) { count++ })
	// cat(a, rep(alt(b,c)), d): 1 cat + 3 lits + 1 rep + 1 alt = 7 nodes.
	if count != 7 {
		t.Fatalf("Walk visited %d nodes, want 7", count)
	}
}

// randPattern produces a random valid ERE using a small grammar, for the
// parse-never-crashes property test.
func randPattern(r *rand.Rand, depth int) string {
	if depth <= 0 {
		atoms := []string{"a", "b", "c", "x", `\n`, `\x41`, "[a-f]", "[^xyz]", ".", `\d`}
		return atoms[r.Intn(len(atoms))]
	}
	switch r.Intn(6) {
	case 0:
		return randPattern(r, depth-1) + randPattern(r, depth-1)
	case 1:
		return "(" + randPattern(r, depth-1) + "|" + randPattern(r, depth-1) + ")"
	case 2:
		return "(" + randPattern(r, depth-1) + ")*"
	case 3:
		return "(" + randPattern(r, depth-1) + ")+"
	case 4:
		return "(" + randPattern(r, depth-1) + ")?"
	default:
		return "(" + randPattern(r, depth-1) + "){1,3}"
	}
}

func TestQuickParseValidPatterns(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		p := randPattern(r, 4)
		n, err := Parse(p)
		if err != nil {
			t.Logf("pattern %q: %v", p, err)
			return false
		}
		return n != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	alphabet := `ab|(){}[]*+?.\^$-,0123xdn`
	f := func() bool {
		var sb strings.Builder
		n := r.Intn(20)
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		// Either outcome is fine; the property is "no panic".
		_, _ = Parse(sb.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParse(b *testing.B) {
	pat := `^GET\s+/[a-z0-9_/]{1,32}\.(php|html?|aspx?)\s+HTTP/1\.[01]$`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(pat); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParseDepthBudget(t *testing.T) {
	deep := strings.Repeat("(", 5000) + "a" + strings.Repeat(")", 5000)
	_, err := Parse(deep)
	if err == nil {
		t.Fatal("expected depth-budget error for 5000-deep nesting")
	}
	if !errors.Is(err, budget.Err) {
		t.Fatalf("depth error should wrap budget.Err, got %v", err)
	}
	// Within an explicit larger budget the same pattern parses.
	if _, err := ParseOpts(deep, ParseOptions{MaxDepth: 6000}); err != nil {
		t.Fatalf("deep pattern within budget: %v", err)
	}
	// A negative budget disables the check.
	if _, err := ParseOpts(deep, ParseOptions{MaxDepth: -1}); err != nil {
		t.Fatalf("deep pattern with disabled budget: %v", err)
	}
	// Just inside the default budget is fine.
	ok := strings.Repeat("(", DefaultMaxDepth) + "a" + strings.Repeat(")", DefaultMaxDepth)
	if _, err := Parse(ok); err != nil {
		t.Fatalf("pattern at default depth budget: %v", err)
	}
}

func TestParseLengthBudget(t *testing.T) {
	long := strings.Repeat("a", DefaultMaxLen+1)
	_, err := Parse(long)
	if !errors.Is(err, budget.Err) {
		t.Fatalf("expected budget.Err for over-long pattern, got %v", err)
	}
	var serr *SyntaxError
	if !errors.As(err, &serr) {
		t.Fatalf("length error should be a *SyntaxError, got %T", err)
	}
	if len(serr.Pattern) > 300 {
		t.Fatalf("diagnostic pattern not truncated: %d bytes", len(serr.Pattern))
	}
	if _, err := ParseOpts(long, ParseOptions{MaxLen: -1}); err != nil {
		t.Fatalf("over-long pattern with disabled budget: %v", err)
	}
	if _, err := ParseOpts("abc", ParseOptions{MaxLen: 2}); !errors.Is(err, budget.Err) {
		t.Fatalf("explicit small MaxLen: want budget.Err, got %v", err)
	}
}

func TestRepeatBoundBudgetClassified(t *testing.T) {
	_, err := Parse("a{1,100000}")
	if err == nil {
		t.Fatal("expected error for huge repetition bound")
	}
	if !errors.Is(err, budget.Err) {
		t.Fatalf("repetition-bound error should wrap budget.Err, got %v", err)
	}
}
