// Package charset implements fixed-size 256-bit symbol sets.
//
// A Set is the label of an automaton transition: the set of input bytes that
// enable the transition. Single-character transitions are singleton sets;
// character classes (CCs, §IV-C of the paper) are arbitrary sets. Sets are
// value types (four machine words) and compare with ==, which is exactly the
// label-equality test Algorithm 1 performs when searching mergeable
// sub-paths.
package charset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a set of byte values in [0, 255], represented as a 256-bit bitmap.
// The zero value is the empty set and is ready to use.
type Set struct {
	w [4]uint64
}

// Single returns the singleton set {b}.
func Single(b byte) Set {
	var s Set
	s.Add(b)
	return s
}

// Range returns the set of all bytes in [lo, hi]. It returns the empty set
// when lo > hi.
func Range(lo, hi byte) Set {
	var s Set
	for c := int(lo); c <= int(hi); c++ {
		s.Add(byte(c))
	}
	return s
}

// Any returns the set of all 256 byte values.
func Any() Set {
	return Set{w: [4]uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}}
}

// AnyNoNL returns the set matched by the ERE dot: every byte except '\n'.
func AnyNoNL() Set {
	s := Any()
	s.Remove('\n')
	return s
}

// Of returns the set containing exactly the given bytes.
func Of(bs ...byte) Set {
	var s Set
	for _, b := range bs {
		s.Add(b)
	}
	return s
}

// FromString returns the set of bytes occurring in str.
func FromString(str string) Set {
	var s Set
	for i := 0; i < len(str); i++ {
		s.Add(str[i])
	}
	return s
}

// Add inserts b into the set.
func (s *Set) Add(b byte) {
	s.w[b>>6] |= 1 << (b & 63)
}

// Remove deletes b from the set.
func (s *Set) Remove(b byte) {
	s.w[b>>6] &^= 1 << (b & 63)
}

// Contains reports whether b is in the set.
func (s Set) Contains(b byte) bool {
	return s.w[b>>6]&(1<<(b&63)) != 0
}

// IsEmpty reports whether the set has no elements.
func (s Set) IsEmpty() bool {
	return s.w == [4]uint64{}
}

// Len returns the number of bytes in the set. The paper's Table I reports
// the total CC length of a dataset as the sum of Len over all CC-labeled
// transitions.
func (s Set) Len() int {
	return bits.OnesCount64(s.w[0]) + bits.OnesCount64(s.w[1]) +
		bits.OnesCount64(s.w[2]) + bits.OnesCount64(s.w[3])
}

// IsSingle reports whether the set is a singleton, returning its element.
func (s Set) IsSingle() (byte, bool) {
	if s.Len() != 1 {
		return 0, false
	}
	return s.Min(), true
}

// Min returns the smallest byte in the set; it returns 0 for the empty set.
func (s Set) Min() byte {
	for i, w := range s.w {
		if w != 0 {
			return byte(i*64 + bits.TrailingZeros64(w))
		}
	}
	return 0
}

// Max returns the largest byte in the set; it returns 0 for the empty set.
func (s Set) Max() byte {
	for i := 3; i >= 0; i-- {
		if s.w[i] != 0 {
			return byte(i*64 + 63 - bits.LeadingZeros64(s.w[i]))
		}
	}
	return 0
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	return Set{w: [4]uint64{s.w[0] | t.w[0], s.w[1] | t.w[1], s.w[2] | t.w[2], s.w[3] | t.w[3]}}
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	return Set{w: [4]uint64{s.w[0] & t.w[0], s.w[1] & t.w[1], s.w[2] & t.w[2], s.w[3] & t.w[3]}}
}

// Diff returns s \ t.
func (s Set) Diff(t Set) Set {
	return Set{w: [4]uint64{s.w[0] &^ t.w[0], s.w[1] &^ t.w[1], s.w[2] &^ t.w[2], s.w[3] &^ t.w[3]}}
}

// Complement returns the set of bytes not in s.
func (s Set) Complement() Set {
	return Any().Diff(s)
}

// Equal reports whether s and t contain exactly the same bytes. Algorithm 1
// merges CC transitions only when their classes are identical (set Y, Eq. 1).
func (s Set) Equal(t Set) bool {
	return s.w == t.w
}

// Overlaps reports whether s ∩ t is non-empty.
func (s Set) Overlaps(t Set) bool {
	return !s.Intersect(t).IsEmpty()
}

// Bytes returns the elements of the set in increasing order.
func (s Set) Bytes() []byte {
	out := make([]byte, 0, s.Len())
	s.ForEach(func(b byte) { out = append(out, b) })
	return out
}

// FewBytes returns the set's elements when it holds at most max of them —
// the live-byte extraction query of the byte-skipping acceleration layer,
// which only accelerates automaton states whose outgoing labels union to a
// handful of bytes. ok is false (with a nil slice) for larger sets, so the
// common dense-label case costs one popcount and no allocation.
func (s Set) FewBytes(max int) ([]byte, bool) {
	if s.Len() > max {
		return nil, false
	}
	return s.Bytes(), true
}

// ForEach calls fn for every byte in the set, in increasing order.
func (s Set) ForEach(fn func(byte)) {
	for i, w := range s.w {
		for w != 0 {
			b := byte(i*64 + bits.TrailingZeros64(w))
			fn(b)
			w &= w - 1
		}
	}
}

// Hash returns a 64-bit mixing hash of the set, usable to bucket transition
// labels during the merge search.
func (s Set) Hash() uint64 {
	const m = 0x9e3779b97f4a7c15
	h := uint64(0)
	for _, w := range s.w {
		h ^= w
		h *= m
		h ^= h >> 29
	}
	return h
}

// String renders the set as an ERE-compatible bracket expression, or as the
// bare character for singletons. It is used by the ANML writer and debug
// output.
func (s Set) String() string {
	if s.IsEmpty() {
		return "[]"
	}
	if s.Equal(Any()) {
		return "[\\x00-\\xff]"
	}
	if b, ok := s.IsSingle(); ok {
		return escapeByte(b)
	}
	var sb strings.Builder
	sb.WriteByte('[')
	// Emit maximal runs as ranges.
	bs := s.Bytes()
	for i := 0; i < len(bs); {
		j := i
		for j+1 < len(bs) && bs[j+1] == bs[j]+1 {
			j++
		}
		switch {
		case j == i:
			sb.WriteString(escapeByte(bs[i]))
		case j == i+1:
			sb.WriteString(escapeByte(bs[i]))
			sb.WriteString(escapeByte(bs[j]))
		default:
			sb.WriteString(escapeByte(bs[i]))
			sb.WriteByte('-')
			sb.WriteString(escapeByte(bs[j]))
		}
		i = j + 1
	}
	sb.WriteByte(']')
	return sb.String()
}

func escapeByte(b byte) string {
	switch b {
	case '\\', ']', '[', '-', '^':
		return "\\" + string(b)
	case '\n':
		return `\n`
	case '\r':
		return `\r`
	case '\t':
		return `\t`
	}
	if b < 0x20 || b >= 0x7f {
		return fmt.Sprintf("\\x%02x", b)
	}
	return string(b)
}

// Posix returns the named POSIX character class ([:alpha:] etc.). The second
// result is false for unknown names.
func Posix(name string) (Set, bool) {
	switch name {
	case "alpha":
		return Range('A', 'Z').Union(Range('a', 'z')), true
	case "digit":
		return Range('0', '9'), true
	case "alnum":
		return Range('0', '9').Union(Range('A', 'Z')).Union(Range('a', 'z')), true
	case "upper":
		return Range('A', 'Z'), true
	case "lower":
		return Range('a', 'z'), true
	case "space":
		return Of(' ', '\t', '\n', '\v', '\f', '\r'), true
	case "blank":
		return Of(' ', '\t'), true
	case "punct":
		return Range('!', '/').Union(Range(':', '@')).Union(Range('[', '`')).Union(Range('{', '~')), true
	case "print":
		return Range(0x20, 0x7e), true
	case "graph":
		return Range(0x21, 0x7e), true
	case "cntrl":
		return Range(0x00, 0x1f).Union(Single(0x7f)), true
	case "xdigit":
		return Range('0', '9').Union(Range('A', 'F')).Union(Range('a', 'f')), true
	case "word":
		return Range('0', '9').Union(Range('A', 'Z')).Union(Range('a', 'z')).Union(Single('_')), true
	}
	return Set{}, false
}
