package charset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var s Set
	if !s.IsEmpty() {
		t.Fatal("zero Set must be empty")
	}
	if s.Len() != 0 {
		t.Fatalf("Len of empty = %d, want 0", s.Len())
	}
	for c := 0; c < 256; c++ {
		if s.Contains(byte(c)) {
			t.Fatalf("empty set contains %d", c)
		}
	}
}

func TestAddRemoveContains(t *testing.T) {
	var s Set
	for _, b := range []byte{0, 1, 63, 64, 127, 128, 200, 255} {
		s.Add(b)
		if !s.Contains(b) {
			t.Fatalf("after Add(%d), Contains=false", b)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len=%d, want 8", s.Len())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Remove(64) did not remove")
	}
	if s.Len() != 7 {
		t.Fatalf("Len=%d, want 7", s.Len())
	}
}

func TestSingle(t *testing.T) {
	for c := 0; c < 256; c++ {
		s := Single(byte(c))
		got, ok := s.IsSingle()
		if !ok || got != byte(c) {
			t.Fatalf("Single(%d).IsSingle() = %d,%v", c, got, ok)
		}
		if s.Len() != 1 {
			t.Fatalf("Single(%d).Len() = %d", c, s.Len())
		}
	}
}

func TestRange(t *testing.T) {
	s := Range('a', 'f')
	if s.Len() != 6 {
		t.Fatalf("Len=%d, want 6", s.Len())
	}
	for c := byte('a'); c <= 'f'; c++ {
		if !s.Contains(c) {
			t.Fatalf("missing %c", c)
		}
	}
	if s.Contains('g') || s.Contains('`') {
		t.Fatal("range contains out-of-range byte")
	}
	if !Range(5, 4).IsEmpty() {
		t.Fatal("inverted range must be empty")
	}
	full := Range(0, 255)
	if !full.Equal(Any()) {
		t.Fatal("Range(0,255) != Any()")
	}
}

func TestAnyNoNL(t *testing.T) {
	s := AnyNoNL()
	if s.Contains('\n') {
		t.Fatal("AnyNoNL contains newline")
	}
	if s.Len() != 255 {
		t.Fatalf("Len=%d, want 255", s.Len())
	}
}

func TestMinMax(t *testing.T) {
	s := Of(10, 200, 42)
	if s.Min() != 10 {
		t.Fatalf("Min=%d", s.Min())
	}
	if s.Max() != 200 {
		t.Fatalf("Max=%d", s.Max())
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Range('a', 'm')
	b := Range('h', 'z')
	u := a.Union(b)
	if u.Len() != 26 {
		t.Fatalf("union len=%d, want 26", u.Len())
	}
	i := a.Intersect(b)
	if !i.Equal(Range('h', 'm')) {
		t.Fatalf("intersect = %v", i)
	}
	d := a.Diff(b)
	if !d.Equal(Range('a', 'g')) {
		t.Fatalf("diff = %v", d)
	}
	if !a.Overlaps(b) {
		t.Fatal("a should overlap b")
	}
	if a.Overlaps(Range('n', 'z')) {
		t.Fatal("disjoint sets reported overlapping")
	}
	c := a.Complement()
	if c.Len() != 256-13 {
		t.Fatalf("complement len=%d", c.Len())
	}
	if !c.Union(a).Equal(Any()) {
		t.Fatal("s ∪ ¬s != Any")
	}
}

func TestBytesOrdered(t *testing.T) {
	s := Of(200, 3, 77, 3)
	bs := s.Bytes()
	want := []byte{3, 77, 200}
	if len(bs) != len(want) {
		t.Fatalf("Bytes=%v", bs)
	}
	for i := range want {
		if bs[i] != want[i] {
			t.Fatalf("Bytes=%v, want %v", bs, want)
		}
	}
}

func TestFromString(t *testing.T) {
	s := FromString("hello")
	if s.Len() != 4 { // h e l o
		t.Fatalf("Len=%d, want 4", s.Len())
	}
	for _, c := range []byte("helo") {
		if !s.Contains(c) {
			t.Fatalf("missing %c", c)
		}
	}
}

func TestStringRoundTrips(t *testing.T) {
	cases := []struct {
		s    Set
		want string
	}{
		{Single('a'), "a"},
		{Single('\n'), `\n`},
		{Single(0x00), `\x00`},
		{Of('a', 'b', 'c'), "[a-c]"},
		{Of('a', 'c'), "[ac]"},
		{Of('a', 'b'), "[ab]"},
		{Set{}, "[]"},
		{Any(), "[\\x00-\\xff]"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("String(%v bytes) = %q, want %q", c.s.Bytes(), got, c.want)
		}
	}
}

func TestPosixClasses(t *testing.T) {
	digit, ok := Posix("digit")
	if !ok || digit.Len() != 10 {
		t.Fatalf("digit: ok=%v len=%d", ok, digit.Len())
	}
	alnum, _ := Posix("alnum")
	if alnum.Len() != 62 {
		t.Fatalf("alnum len=%d, want 62", alnum.Len())
	}
	word, _ := Posix("word")
	if word.Len() != 63 || !word.Contains('_') {
		t.Fatalf("word len=%d", word.Len())
	}
	space, _ := Posix("space")
	if space.Len() != 6 {
		t.Fatalf("space len=%d", space.Len())
	}
	if _, ok := Posix("nope"); ok {
		t.Fatal("unknown class accepted")
	}
	// alpha ∪ digit == alnum
	alpha, _ := Posix("alpha")
	if !alpha.Union(digit).Equal(alnum) {
		t.Fatal("alpha ∪ digit != alnum")
	}
	// print = graph ∪ {space char}
	print_, _ := Posix("print")
	graph, _ := Posix("graph")
	if !graph.Union(Single(' ')).Equal(print_) {
		t.Fatal("graph ∪ ' ' != print")
	}
}

func randomSet(r *rand.Rand) Set {
	var s Set
	n := r.Intn(64)
	for i := 0; i < n; i++ {
		s.Add(byte(r.Intn(256)))
	}
	return s
}

func TestQuickUnionCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randomSet(r), randomSet(r)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := randomSet(r), randomSet(r)
		lhs := a.Union(b).Complement()
		rhs := a.Complement().Intersect(b.Complement())
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLenMatchesContains(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		s := randomSet(r)
		n := 0
		for c := 0; c < 256; c++ {
			if s.Contains(byte(c)) {
				n++
			}
		}
		return n == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHashEqualSets(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		s := randomSet(r)
		u := s.Union(Set{}) // copy
		return s.Hash() == u.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickForEachOrdered(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		s := randomSet(r)
		prev := -1
		ok := true
		s.ForEach(func(b byte) {
			if int(b) <= prev {
				ok = false
			}
			prev = int(b)
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetUnion(b *testing.B) {
	x := Range('a', 'z')
	y := Range('0', '9')
	for i := 0; i < b.N; i++ {
		x = x.Union(y)
	}
	_ = x
}

func BenchmarkSetContains(b *testing.B) {
	s := Range('a', 'z')
	for i := 0; i < b.N; i++ {
		_ = s.Contains(byte(i))
	}
}

func TestMinMaxEmpty(t *testing.T) {
	var s Set
	if s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty set Min/Max must be 0")
	}
	hi := Single(250)
	if hi.Min() != 250 || hi.Max() != 250 {
		t.Fatal("high-byte Min/Max")
	}
}

func TestEscapeByteForms(t *testing.T) {
	cases := map[byte]string{
		'\\': `\\`, ']': `\]`, '[': `\[`, '-': `\-`, '^': `\^`,
		'\r': `\r`, '\t': `\t`, 0x7f: `\x7f`, 0x1f: `\x1f`, 'A': "A",
	}
	for b, want := range cases {
		if got := Single(b).String(); got != want {
			t.Errorf("Single(%d).String() = %q, want %q", b, got, want)
		}
	}
}

func TestPosixRemainingClasses(t *testing.T) {
	for name, wantLen := range map[string]int{
		"upper": 26, "lower": 26, "blank": 2, "punct": 32,
		"print": 95, "graph": 94, "cntrl": 33, "xdigit": 22,
	} {
		s, ok := Posix(name)
		if !ok {
			t.Errorf("Posix(%q) unknown", name)
			continue
		}
		if s.Len() != wantLen {
			t.Errorf("Posix(%q).Len() = %d, want %d", name, s.Len(), wantLen)
		}
	}
}
