package charset

import "testing"

// signature returns the membership fingerprint of byte b across sets.
func signature(sets []Set, b byte) string {
	sig := make([]byte, len(sets))
	for i, s := range sets {
		if s.Contains(b) {
			sig[i] = 1
		}
	}
	return string(sig)
}

func checkPartition(t *testing.T, sets []Set) (int, [256]uint8) {
	t.Helper()
	classOf, n := Partition(sets)
	// Exactness: same class ⇔ same membership signature.
	bySig := map[string]uint8{}
	distinct := map[uint8]bool{}
	for b := 0; b < 256; b++ {
		sig := signature(sets, byte(b))
		if cls, ok := bySig[sig]; ok {
			if classOf[b] != cls {
				t.Fatalf("byte %#x: class %d, want %d (same signature)", b, classOf[b], cls)
			}
		} else {
			if distinct[classOf[b]] {
				t.Fatalf("byte %#x: class %d reused across signatures", b, classOf[b])
			}
			bySig[sig] = classOf[b]
		}
		distinct[classOf[b]] = true
	}
	if n != len(distinct) || n != len(bySig) {
		t.Fatalf("n=%d, distinct ids=%d, distinct signatures=%d", n, len(distinct), len(bySig))
	}
	return n, classOf
}

func TestPartitionNoSets(t *testing.T) {
	n, classOf := checkPartition(t, nil)
	if n != 1 || classOf[0] != 0 || classOf[255] != 0 {
		t.Fatalf("empty partition: n=%d", n)
	}
}

func TestPartitionKnownClasses(t *testing.T) {
	// Labels of an automaton for [a-c]x: classes {a-c}, {x}, rest.
	n, classOf := checkPartition(t, []Set{Range('a', 'c'), Single('x')})
	if n != 3 {
		t.Fatalf("n=%d, want 3", n)
	}
	if classOf['a'] != classOf['b'] || classOf['b'] != classOf['c'] {
		t.Fatal("a,b,c split")
	}
	if classOf['a'] == classOf['x'] || classOf['x'] == classOf['z'] || classOf['a'] == classOf['z'] {
		t.Fatal("classes not distinct")
	}
}

func TestPartitionOverlappingSets(t *testing.T) {
	// Overlap splits three ways: [a-m] ∩ [h-z] = {h-m}.
	n, _ := checkPartition(t, []Set{Range('a', 'm'), Range('h', 'z')})
	if n != 4 { // a-g, h-m, n-z, rest
		t.Fatalf("n=%d, want 4", n)
	}
}

func TestPartitionDegenerateSets(t *testing.T) {
	// Empty and full sets cut nothing.
	if n, _ := checkPartition(t, []Set{{}, Any()}); n != 1 {
		t.Fatalf("n=%d, want 1", n)
	}
}

func TestPartitionFullyRefined(t *testing.T) {
	// 256 singletons: every byte its own class.
	sets := make([]Set, 256)
	for i := range sets {
		sets[i] = Single(byte(i))
	}
	if n, _ := checkPartition(t, sets); n != 256 {
		t.Fatalf("n=%d, want 256", n)
	}
}
