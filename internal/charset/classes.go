package charset

// Partition computes the coarsest partition of the 256-byte alphabet into
// equivalence classes with respect to the given sets: two bytes land in the
// same class exactly when they are members of the same subset of sets. When
// the sets are the transition labels of an automaton, bytes of one class
// enable identical transition lists and are therefore interchangeable for
// execution — the byte-class compression used by the lazy-DFA engine to
// shrink cached transition rows from 256 entries to one per class.
//
// Classes are numbered in order of first appearance scanning bytes 0..255,
// so classOf[0] == 0 always. n is the number of classes (1 ≤ n ≤ 256).
func Partition(sets []Set) (classOf [256]uint8, n int) {
	// Iterative refinement: start with one class and split every class by
	// membership in each set. A class splits only when the set cuts it, so
	// the result is the coarsest such partition; cost is O(256·len(sets)).
	n = 1
	for _, s := range sets {
		if s.IsEmpty() || s.Equal(Any()) {
			continue // cuts nothing
		}
		type cell struct {
			oldClass uint8
			member   bool
		}
		seen := make(map[cell]uint8, n+1)
		next := uint8(0)
		wrapped := false
		var refined [256]uint8
		for b := 0; b < 256; b++ {
			k := cell{classOf[b], s.Contains(byte(b))}
			id, ok := seen[k]
			if !ok {
				id = next
				seen[k] = id
				next++
				if next == 0 { // 256 classes: ids exhausted, fully refined
					wrapped = true
				}
			}
			refined[b] = id
		}
		classOf = refined
		if wrapped {
			return classOf, 256
		}
		n = int(next)
	}
	return classOf, n
}
