package svgplot

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

// wellFormed parses the output as XML and counts elements by name.
func wellFormed(t *testing.T, svg []byte) map[string]int {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(svg))
	counts := map[string]int{}
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("malformed SVG: %v", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			counts[se.Name.Local]++
		}
	}
	return counts
}

func TestBarChartRender(t *testing.T) {
	c := &BarChart{
		Title:      "Fig. 7 — compression",
		YLabel:     "% compression",
		Categories: []string{"BRO", "DS9", "PEN"},
		Series: []Series{
			{Name: "M=10", Values: []float64{45, 37, 21}},
			{Name: "M=all", Values: []float64{83, 93, 84}},
		},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	counts := wellFormed(t, buf.Bytes())
	if counts["svg"] != 1 {
		t.Fatalf("svg elements: %d", counts["svg"])
	}
	// 3 categories × 2 series bars + background + frame + 2 legend swatches.
	if counts["rect"] != 3*2+2+2 {
		t.Fatalf("rect elements: %d", counts["rect"])
	}
	if !strings.Contains(buf.String(), "Fig. 7") {
		t.Fatal("title missing")
	}
}

func TestLineChartRender(t *testing.T) {
	c := &LineChart{
		Title:   "Fig. 10 — BRO",
		XLabel:  "#Threads",
		YLabel:  "time (ms)",
		XLabels: []string{"1", "2", "4", "8"},
		LogY:    true,
		Series: []Series{
			{Name: "M=1", Values: []float64{120, 65, 40, 30}},
			{Name: "M=all", Values: []float64{12, 12, 12, 12}},
		},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	counts := wellFormed(t, buf.Bytes())
	if counts["polyline"] != 2 {
		t.Fatalf("polylines: %d", counts["polyline"])
	}
	if counts["circle"] != 8 {
		t.Fatalf("markers: %d", counts["circle"])
	}
	if !strings.Contains(buf.String(), "1e") {
		t.Fatal("log ticks missing")
	}
}

func TestRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (&BarChart{Title: "x"}).Render(&buf); err == nil {
		t.Fatal("empty bar chart accepted")
	}
	bc := &BarChart{Categories: []string{"a"}, Series: []Series{{Name: "s", Values: []float64{1, 2}}}}
	if err := bc.Render(&buf); err == nil {
		t.Fatal("length mismatch accepted")
	}
	lc := &LineChart{XLabels: []string{"1"}, LogY: true,
		Series: []Series{{Name: "s", Values: []float64{0}}}}
	if err := lc.Render(&buf); err == nil {
		t.Fatal("non-positive log value accepted")
	}
	if err := (&LineChart{}).Render(&buf); err == nil {
		t.Fatal("empty line chart accepted")
	}
}

func TestEscaping(t *testing.T) {
	c := &BarChart{
		Title:      `a<b & "c"`,
		Categories: []string{"x>y"},
		Series:     []Series{{Name: "s&t", Values: []float64{1}}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes()) // would fail on unescaped characters
}

func TestNiceCeil(t *testing.T) {
	cases := map[float64]float64{
		0.7: 1, 1: 1, 1.2: 2, 3: 5, 7: 10, 12: 20, 50: 50, 51: 100, 0: 1,
	}
	for in, want := range cases {
		if got := niceCeil(in); got != want {
			t.Errorf("niceCeil(%v)=%v, want %v", in, got, want)
		}
	}
}

func TestZeroValuesBarChart(t *testing.T) {
	c := &BarChart{
		Categories: []string{"a"},
		Series:     []Series{{Name: "s", Values: []float64{0}}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
}
