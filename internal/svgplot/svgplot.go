// Package svgplot renders the experiment results as standalone SVG charts,
// mirroring the paper artifact's plot generation (its scripts emit PDF
// charts for Figs. 7–10). Only grouped bar charts and multi-series line
// charts are needed; both are hand-rendered SVG with axes, ticks and a
// legend, using no dependencies.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named data series.
type Series struct {
	Name   string
	Values []float64
}

// palette holds the series colors (colorblind-safe Okabe–Ito subset).
var palette = []string{
	"#0072B2", "#E69F00", "#009E73", "#CC79A7", "#56B4E9", "#D55E00",
	"#F0E442", "#999999",
}

const (
	width      = 760
	height     = 420
	marginL    = 70
	marginR    = 20
	marginT    = 40
	marginB    = 70
	plotW      = width - marginL - marginR
	plotH      = height - marginT - marginB
	fontFamily = "sans-serif"
)

// BarChart is a grouped bar chart: one group per category, one bar per
// series within each group.
type BarChart struct {
	Title      string
	YLabel     string
	Categories []string
	Series     []Series
}

// Render writes the chart as a standalone SVG document.
func (c *BarChart) Render(w io.Writer) error {
	if len(c.Categories) == 0 || len(c.Series) == 0 {
		return fmt.Errorf("svgplot: empty chart %q", c.Title)
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.Categories) {
			return fmt.Errorf("svgplot: series %q has %d values for %d categories",
				s.Name, len(s.Values), len(c.Categories))
		}
	}
	maxV := 0.0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	maxV = niceCeil(maxV)

	var b strings.Builder
	header(&b, c.Title)
	yAxis(&b, 0, maxV, false, c.YLabel)

	groupW := float64(plotW) / float64(len(c.Categories))
	barW := groupW * 0.8 / float64(len(c.Series))
	for gi, cat := range c.Categories {
		gx := float64(marginL) + groupW*float64(gi)
		// Category label.
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="%s" font-size="11" text-anchor="middle">%s</text>`+"\n",
			gx+groupW/2, height-marginB+16, fontFamily, esc(cat))
		for si, s := range c.Series {
			v := s.Values[gi]
			h := float64(plotH) * v / maxV
			x := gx + groupW*0.1 + barW*float64(si)
			y := float64(marginT+plotH) - h
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, barW*0.92, h, palette[si%len(palette)])
		}
	}
	legend(&b, c.Series)
	footer(&b)
	_, err := io.WriteString(w, b.String())
	return err
}

// Histogram builds a single-series bar chart from pre-bucketed counts —
// the rendering used for the profiler's latency distributions, where the
// buckets are log2 value ranges.
func Histogram(title, yLabel string, labels []string, counts []float64) *BarChart {
	return &BarChart{
		Title:      title,
		YLabel:     yLabel,
		Categories: labels,
		Series:     []Series{{Name: "count", Values: counts}},
	}
}

// LineChart is a multi-series line chart over shared x positions.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	// XLabels name the shared x positions (categorical axis, e.g. thread
	// counts).
	XLabels []string
	Series  []Series
	// LogY plots the y axis in log10 (all values must be positive).
	LogY bool
}

// Render writes the chart as a standalone SVG document.
func (c *LineChart) Render(w io.Writer) error {
	if len(c.XLabels) == 0 || len(c.Series) == 0 {
		return fmt.Errorf("svgplot: empty chart %q", c.Title)
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.Values) != len(c.XLabels) {
			return fmt.Errorf("svgplot: series %q has %d values for %d x positions",
				s.Name, len(s.Values), len(c.XLabels))
		}
		for _, v := range s.Values {
			if c.LogY && v <= 0 {
				return fmt.Errorf("svgplot: non-positive value on log axis in %q", s.Name)
			}
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	lo, hi := 0.0, niceCeil(maxV)
	if c.LogY {
		lo = math.Floor(math.Log10(minV))
		hi = math.Ceil(math.Log10(maxV))
		if hi == lo {
			hi = lo + 1
		}
	}

	var b strings.Builder
	header(&b, c.Title)
	yAxis(&b, lo, hi, c.LogY, c.YLabel)

	xStep := float64(plotW) / float64(len(c.XLabels))
	xAt := func(i int) float64 { return float64(marginL) + xStep*(float64(i)+0.5) }
	yAt := func(v float64) float64 {
		t := 0.0
		if c.LogY {
			t = (math.Log10(v) - lo) / (hi - lo)
		} else {
			t = v / hi
		}
		return float64(marginT+plotH) - float64(plotH)*t
	}
	for i, lbl := range c.XLabels {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="%s" font-size="11" text-anchor="middle">%s</text>`+"\n",
			xAt(i), height-marginB+16, fontFamily, esc(lbl))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="%s" font-size="12" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW/2, height-marginB+38, fontFamily, esc(c.XLabel))
	}
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i, v := range s.Values {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xAt(i), yAt(v)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i, v := range s.Values {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", xAt(i), yAt(v), color)
		}
	}
	legend(&b, c.Series)
	footer(&b)
	_, err := io.WriteString(w, b.String())
	return err
}

func header(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<?xml version="1.0" encoding="UTF-8"?>`+"\n")
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(b, `<text x="%d" y="22" font-family="%s" font-size="15" text-anchor="middle">%s</text>`+"\n",
		width/2, fontFamily, esc(title))
	// Plot frame.
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#444"/>`+"\n",
		marginL, marginT, plotW, plotH)
}

// yAxis draws ticks and grid lines; for log axes lo/hi are exponents.
func yAxis(b *strings.Builder, lo, hi float64, log bool, label string) {
	const ticks = 5
	for i := 0; i <= ticks; i++ {
		t := float64(i) / ticks
		y := float64(marginT+plotH) - float64(plotH)*t
		v := lo + (hi-lo)*t
		text := trimFloat(v)
		if log {
			text = fmt.Sprintf("1e%d", int(v))
		}
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-family="%s" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+4, fontFamily, text)
	}
	if label != "" {
		fmt.Fprintf(b, `<text x="18" y="%d" font-family="%s" font-size="12" text-anchor="middle" transform="rotate(-90 18 %d)">%s</text>`+"\n",
			marginT+plotH/2, fontFamily, marginT+plotH/2, esc(label))
	}
}

func legend(b *strings.Builder, series []Series) {
	x := marginL + 8
	y := marginT + 10
	for si, s := range series {
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			x, y-9, palette[si%len(palette)])
		fmt.Fprintf(b, `<text x="%d" y="%d" font-family="%s" font-size="11">%s</text>`+"\n",
			x+14, y, fontFamily, esc(s.Name))
		x += 14 + 8*len(s.Name) + 16
		if x > width-marginR-100 {
			x = marginL + 8
			y += 16
		}
	}
}

func footer(b *strings.Builder) { b.WriteString("</svg>\n") }

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// niceCeil rounds v up to 1/2/5 × 10^k.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	exp := math.Floor(math.Log10(v))
	base := math.Pow(10, exp)
	for _, m := range []float64{1, 2, 5, 10} {
		if v <= m*base {
			return m * base
		}
	}
	return 10 * base
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
