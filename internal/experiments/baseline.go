package experiments

import (
	"errors"
	"io"
	"time"

	"repro/internal/dfa"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/mfsa"
	"repro/internal/nfa"
	"repro/internal/pipeline"
)

// BaselineRow compares the automata representations on one dataset slice.
type BaselineRow struct {
	Abbr  string
	Rules int
	// Sizes: states and stored transitions per representation. DFA
	// entries are ~0 when determinization explodes past the budget.
	NFAStates, NFATrans   int
	MFSAStates, MFSATrans int
	DFAStates, DFATrans   int
	D2FATrans             int
	DFAExploded           bool
	// Scan times over the dataset stream (single thread).
	NFATime, MFSATime, DFATime, D2FATime time.Duration
}

// Baseline contrasts the MFSA against the §II representation spectrum:
// per-rule NFAs (iNFAnt), the subset-construction scan DFA with its
// state-explosion risk, and the default-transition-compressed D²FA. It uses
// the first 40 rules of each dataset so the DFA has a chance to fit its
// state budget, and reports sizes plus single-thread scan times.
func (r *Runner) Baseline(w io.Writer) ([]BaselineRow, error) {
	const rules = 40
	const dfaBudget = 1 << 15
	var rows []BaselineRow
	tb := metrics.NewTable("Baseline — representation spectrum (first 40 rules per dataset)",
		"Dataset", "Repr", "States", "Trans", "ScanTime")
	for _, s := range r.specs {
		pats := s.Patterns()
		if len(pats) > rules {
			pats = pats[:rules]
		}
		out, err := pipeline.Compile(pats, 1, nil)
		if err != nil {
			return nil, err
		}
		in := r.stream(s)
		row := BaselineRow{Abbr: s.Abbr, Rules: len(pats)}

		// Per-rule NFAs (the M = 1 iNFAnt configuration).
		var nfaPrograms []*engine.Program
		for _, a := range out.FSAs {
			row.NFAStates += a.NumStates
			row.NFATrans += len(a.Trans)
			z, err := mfsa.Merge([]*nfa.NFA{a})
			if err != nil {
				return nil, err
			}
			nfaPrograms = append(nfaPrograms, engine.NewProgram(z))
		}
		start := time.Now()
		if _, err := engine.RunParallel(nfaPrograms, in, 1, engine.Config{KeepOnMatch: true}); err != nil {
			return nil, err
		}
		row.NFATime = time.Since(start)

		// MFSA (M = all over the slice).
		z, err := mfsa.Merge(out.FSAs)
		if err != nil {
			return nil, err
		}
		row.MFSAStates = z.NumStates
		row.MFSATrans = z.NumTrans()
		p := engine.NewProgram(z)
		start = time.Now()
		engine.Run(p, in, engine.Config{KeepOnMatch: true})
		row.MFSATime = time.Since(start)

		// Dense DFA and D²FA.
		d, err := dfa.FromNFAs(out.FSAs, dfaBudget)
		var explosion *dfa.ErrStateExplosion
		switch {
		case err == nil:
			row.DFAStates = d.NumStates
			row.DFATrans = d.TableEntries()
			start = time.Now()
			d.Match(in, nil)
			row.DFATime = time.Since(start)
			c := dfa.Compress(d)
			row.D2FATrans = c.StoredTransitions()
			start = time.Now()
			c.Match(in, nil)
			row.D2FATime = time.Since(start)
		case errors.As(err, &explosion):
			row.DFAExploded = true
		default:
			return nil, err
		}

		rows = append(rows, row)
		tb.AddRow(row.Abbr, "NFAs (M=1)", row.NFAStates, row.NFATrans, row.NFATime)
		tb.AddRow("", "MFSA (M=all)", row.MFSAStates, row.MFSATrans, row.MFSATime)
		if row.DFAExploded {
			tb.AddRow("", "DFA", "explodes", ">"+itoa(dfaBudget), "-")
		} else {
			tb.AddRow("", "DFA (dense)", row.DFAStates, row.DFATrans, row.DFATime)
			tb.AddRow("", "D2FA", row.DFAStates, row.D2FATrans, row.D2FATime)
		}
	}
	if w != nil {
		tb.Render(w)
	}
	return rows, nil
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
