package experiments

import (
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
)

// StrideRow compares 1-stride and 2-stride iMFAnt on one dataset.
type StrideRow struct {
	Abbr string
	// Pairs is the fused-pair table size (§VII's k-combinations cost).
	Pairs int
	// Trans is the base MFSA transition count for comparison.
	Trans int
	// BaseTime and StrideTime are single-thread scan latencies (M = all).
	BaseTime, StrideTime time.Duration
	// Speedup is BaseTime / StrideTime.
	Speedup float64
	// Skipped is set when the pair table exceeds its bound.
	Skipped bool
}

// Stride evaluates the multi-striding optimization of the related work
// (§VII): executing the fully merged MFSA two symbols per step with fused
// transition pairs, versus the baseline iMFAnt. It reports the pair-table
// blow-up alongside the speedup — the §VII trade-off.
func (r *Runner) Stride(w io.Writer) ([]StrideRow, error) {
	var rows []StrideRow
	tb := metrics.NewTable("Multi-stride — 2-stride iMFAnt vs baseline (M = all)",
		"Dataset", "Trans", "Pairs", "BaseTime", "StrideTime", "Speedup")
	for _, s := range r.specs {
		out, err := r.compiled(s, 0)
		if err != nil {
			return nil, err
		}
		z := out.MFSAs[0]
		in := r.stream(s)
		row := StrideRow{Abbr: s.Abbr, Trans: z.NumTrans()}

		p := engine.NewProgram(z)
		runner := engine.NewRunner(p)
		start := time.Now()
		for rep := 0; rep < r.o.Reps; rep++ {
			runner.Run(in, engine.Config{})
		}
		row.BaseTime = time.Since(start) / time.Duration(r.o.Reps)

		sp, err := engine.NewStrideProgram(z)
		if err != nil {
			row.Skipped = true
			rows = append(rows, row)
			tb.AddRow(row.Abbr, row.Trans, "blow-up", row.BaseTime, "-", "-")
			continue
		}
		row.Pairs = sp.NumPairs()
		srunner := engine.NewStrideRunner(sp)
		start = time.Now()
		for rep := 0; rep < r.o.Reps; rep++ {
			srunner.Run(in, engine.Config{})
		}
		row.StrideTime = time.Since(start) / time.Duration(r.o.Reps)
		row.Speedup = float64(row.BaseTime) / float64(row.StrideTime)
		rows = append(rows, row)
		tb.AddRow(row.Abbr, row.Trans, row.Pairs, row.BaseTime, row.StrideTime, row.Speedup)
	}
	if w != nil {
		tb.Render(w)
	}
	return rows, nil
}
