package experiments

import (
	"io"
	"time"

	"repro/internal/decompose"
	"repro/internal/engine"
	"repro/internal/metrics"
)

// DecomposeRow compares the decomposition baseline with iMFAnt on one
// dataset and one traffic profile.
type DecomposeRow struct {
	Abbr string
	// HotStream is true for the dataset's planted stream (factors hit
	// often) and false for a cold stream of mismatching noise.
	HotStream bool
	// Filterable is the number of rules with a prefilter factor.
	Filterable int
	// Triggered is how many filterable rules actually ran.
	Triggered int
	// DecompTime and MFSATime are single-thread scan latencies.
	DecompTime, MFSATime time.Duration
}

// Decompose evaluates the Hyperscan-style decomposition baseline ([6],
// §I/§VII): literal-factor prefiltering with Aho–Corasick plus per-rule
// confirmation, against the M = all MFSA. Both a hot stream (the dataset's
// planted stream, where most factors occur) and a cold stream (noise from a
// disjoint alphabet) are scanned — decomposition's advantage is confined to
// low-hit traffic, which is the trade-off the MFSA approach avoids.
func (r *Runner) Decompose(w io.Writer) ([]DecomposeRow, error) {
	var rows []DecomposeRow
	tb := metrics.NewTable("Decomposition — AC prefilter + confirm vs MFSA (M = all)",
		"Dataset", "Stream", "Filterable", "Triggered", "DecompTime", "MFSATime")
	for _, s := range r.specs {
		pats := s.Patterns()
		dm, err := decompose.New(pats, false)
		if err != nil {
			return nil, err
		}
		out, err := r.compiled(s, 0)
		if err != nil {
			return nil, err
		}
		p := engine.NewProgram(out.MFSAs[0])
		runner := engine.NewRunner(p)

		cold := make([]byte, r.o.StreamSize)
		for i := range cold {
			cold[i] = byte('A' + i%26) // uppercase: dataset rules are lowercase-heavy
		}
		for _, hot := range []bool{true, false} {
			in := cold
			if hot {
				in = r.stream(s)
			}
			start := time.Now()
			var st decompose.Stats
			for rep := 0; rep < r.o.Reps; rep++ {
				st = dm.Scan(in, nil)
			}
			decompTime := time.Since(start) / time.Duration(r.o.Reps)
			start = time.Now()
			for rep := 0; rep < r.o.Reps; rep++ {
				runner.Run(in, engine.Config{})
			}
			mfsaTime := time.Since(start) / time.Duration(r.o.Reps)
			row := DecomposeRow{
				Abbr: s.Abbr, HotStream: hot,
				Filterable: dm.NumFilterable(), Triggered: st.Triggered,
				DecompTime: decompTime, MFSATime: mfsaTime,
			}
			rows = append(rows, row)
			name := "cold"
			if hot {
				name = "hot"
			}
			tb.AddRow(row.Abbr, name, row.Filterable, row.Triggered, row.DecompTime, row.MFSATime)
		}
	}
	if w != nil {
		tb.Render(w)
	}
	return rows, nil
}
