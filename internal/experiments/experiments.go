// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): Fig. 1 (dataset similarity), Table I (dataset
// characteristics), Fig. 7 (compression vs merging factor), Fig. 8
// (compilation stage times), Table II (run-time active FSAs), Fig. 9
// (single-thread execution time and throughput) and Fig. 10 (multi-thread
// scaling). The cmd/mfsabench tool and the repository-level benchmarks are
// thin wrappers over this package.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/similarity"
)

// Opts scales the experiments. The paper's full configuration (1 MB
// streams, 15–30 reps, threads to 128) takes hours; the defaults reproduce
// every trend in minutes.
type Opts struct {
	// Datasets restricts the run to these abbreviations; nil = all six.
	Datasets []string
	// Ms are the merging factors; 0 denotes the paper's "all".
	Ms []int
	// Threads is the Fig. 10 thread sweep.
	Threads []int
	// StreamSize is the matched input size in bytes (paper: 1 MB).
	StreamSize int
	// Reps averages repeated measurements (paper: 30 for compilation,
	// 15 for execution).
	Reps int
	// SimilaritySample caps the patterns per dataset used for the
	// O(n²)-pairs Fig. 1 computation; 0 = all.
	SimilaritySample int
}

// Default returns the scaled-down configuration used by the CLI unless
// overridden: every trend of the paper at a laptop-friendly cost.
func Default() Opts {
	return Opts{
		Ms:               []int{1, 2, 5, 10, 20, 50, 100, 0},
		Threads:          []int{1, 2, 4, 8, 16, 32, 64, 128},
		StreamSize:       256 << 10,
		Reps:             3,
		SimilaritySample: 120,
	}
}

// Paper returns the paper's full-scale configuration.
func Paper() Opts {
	o := Default()
	o.StreamSize = 1 << 20
	o.Reps = 15
	o.SimilaritySample = 0
	return o
}

// Runner caches compiled rulesets and input streams across experiments.
type Runner struct {
	o       Opts
	specs   []dataset.Spec
	outputs map[string]*pipeline.Output // key: abbr/M
	streams map[string][]byte
}

// New builds a Runner for the given options.
func New(o Opts) (*Runner, error) {
	if len(o.Ms) == 0 {
		o.Ms = Default().Ms
	}
	if len(o.Threads) == 0 {
		o.Threads = Default().Threads
	}
	if o.StreamSize <= 0 {
		o.StreamSize = Default().StreamSize
	}
	if o.Reps <= 0 {
		o.Reps = 1
	}
	r := &Runner{
		o:       o,
		outputs: make(map[string]*pipeline.Output),
		streams: make(map[string][]byte),
	}
	if len(o.Datasets) == 0 {
		r.specs = dataset.Datasets()
	} else {
		for _, abbr := range o.Datasets {
			s, err := dataset.ByAbbr(abbr)
			if err != nil {
				return nil, err
			}
			r.specs = append(r.specs, s)
		}
	}
	return r, nil
}

// mLabel renders a merging factor the way the paper does.
func mLabel(m int) string {
	if m <= 0 {
		return "all"
	}
	return fmt.Sprintf("%d", m)
}

func (r *Runner) compiled(s dataset.Spec, m int) (*pipeline.Output, error) {
	key := fmt.Sprintf("%s/%d", s.Abbr, m)
	if out, ok := r.outputs[key]; ok {
		return out, nil
	}
	out, err := pipeline.Compile(s.Patterns(), m, nil)
	if err != nil {
		return nil, fmt.Errorf("%s (M=%s): %w", s.Abbr, mLabel(m), err)
	}
	r.outputs[key] = out
	return out, nil
}

func (r *Runner) stream(s dataset.Spec) []byte {
	if in, ok := r.streams[s.Abbr]; ok {
		return in
	}
	in := s.Stream(r.o.StreamSize, 0)
	r.streams[s.Abbr] = in
	return in
}

func (r *Runner) programs(s dataset.Spec, m int) ([]*engine.Program, error) {
	out, err := r.compiled(s, m)
	if err != nil {
		return nil, err
	}
	ps := make([]*engine.Program, len(out.MFSAs))
	for i, z := range out.MFSAs {
		ps[i] = engine.NewProgram(z)
	}
	return ps, nil
}

// Fig1Row is one bar of Fig. 1.
type Fig1Row struct {
	Abbr       string
	Similarity float64
}

// Fig1 computes the average normalized INDEL similarity per dataset.
func (r *Runner) Fig1(w io.Writer) ([]Fig1Row, error) {
	rows := make([]Fig1Row, 0, len(r.specs))
	tb := metrics.NewTable("Fig. 1 — average normalized INDEL similarity per dataset",
		"Dataset", "Similarity")
	for _, s := range r.specs {
		pats := s.Patterns()
		if n := r.o.SimilaritySample; n > 0 && len(pats) > n {
			pats = pats[:n]
		}
		sim := similarity.DatasetSimilarity(pats)
		rows = append(rows, Fig1Row{Abbr: s.Abbr, Similarity: sim})
		tb.AddRow(s.Abbr, sim)
	}
	if w != nil {
		tb.Render(w)
	}
	return rows, nil
}

// Table1Row is one dataset's characteristics (Table I).
type Table1Row struct {
	Abbr                string
	NumREs              int
	TotStates, TotTrans int
	TotCC               int
	AvgStates, AvgTrans float64
}

// Table1 measures the post-optimization FSA characteristics per dataset.
func (r *Runner) Table1(w io.Writer) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(r.specs))
	tb := metrics.NewTable("Table I — dataset characteristics (optimized single FSAs)",
		"Dataset", "REs", "TotStates", "TotTrans", "TotCC", "AvgStates", "AvgTrans")
	for _, s := range r.specs {
		out, err := r.compiled(s, 1)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Abbr: s.Abbr, NumREs: len(out.FSAs)}
		for _, a := range out.FSAs {
			row.TotStates += a.NumStates
			row.TotTrans += len(a.Trans)
			row.TotCC += a.CCLen()
		}
		row.AvgStates = float64(row.TotStates) / float64(row.NumREs)
		row.AvgTrans = float64(row.TotTrans) / float64(row.NumREs)
		rows = append(rows, row)
		tb.AddRow(row.Abbr, row.NumREs, row.TotStates, row.TotTrans, row.TotCC, row.AvgStates, row.AvgTrans)
	}
	if w != nil {
		tb.Render(w)
	}
	return rows, nil
}

// Fig7Row is one dataset/M compression point.
type Fig7Row struct {
	Abbr      string
	M         int
	StatesPct float64
	TransPct  float64
}

// Fig7 computes state and transition compression for every merging factor.
func (r *Runner) Fig7(w io.Writer) ([]Fig7Row, error) {
	var rows []Fig7Row
	tb := metrics.NewTable("Fig. 7 — compression vs merging factor (higher is better)",
		"Dataset", "M", "States%", "Trans%")
	for _, s := range r.specs {
		for _, m := range r.o.Ms {
			if m == 1 {
				continue // M = 1 is the baseline: 0% by definition
			}
			out, err := r.compiled(s, m)
			if err != nil {
				return nil, err
			}
			c := metrics.MeasureCompression(out.FSAs, out.MFSAs)
			row := Fig7Row{Abbr: s.Abbr, M: m, StatesPct: c.StatesPct(), TransPct: c.TransPct()}
			rows = append(rows, row)
			tb.AddRow(s.Abbr, mLabel(m), row.StatesPct, row.TransPct)
		}
	}
	if w != nil {
		tb.Render(w)
	}
	return rows, nil
}

// Fig8Row is one dataset/M stage-time measurement.
type Fig8Row struct {
	Abbr  string
	M     int
	Times pipeline.StageTimes
}

// Fig8 measures the per-stage compilation time, averaged over Reps runs.
func (r *Runner) Fig8(w io.Writer) ([]Fig8Row, error) {
	var rows []Fig8Row
	tb := metrics.NewTable("Fig. 8 — compilation stage times (lower is better)",
		"Dataset", "M", "FE", "AST→FSA", "ME-single", "ME-merging", "BE", "Total")
	for _, s := range r.specs {
		pats := s.Patterns()
		for _, m := range r.o.Ms {
			var acc pipeline.StageTimes
			for rep := 0; rep < r.o.Reps; rep++ {
				out, err := pipeline.Compile(pats, m, nil)
				if err != nil {
					return nil, fmt.Errorf("%s (M=%s): %w", s.Abbr, mLabel(m), err)
				}
				acc.Add(out.Times)
			}
			avg := acc.Scale(r.o.Reps)
			rows = append(rows, Fig8Row{Abbr: s.Abbr, M: m, Times: avg})
			tb.AddRow(s.Abbr, mLabel(m), avg.FrontEnd, avg.ASTToFSA, avg.SingleME, avg.MergeME, avg.BackEnd, avg.Total())
		}
	}
	if w != nil {
		tb.Render(w)
	}
	return rows, nil
}

// Table2Row is one dataset's run-time activity (Table II, M = all).
type Table2Row struct {
	Abbr      string
	AvgActive float64
	MaxActive int
}

// Table2 measures the average and maximum number of active FSAs during the
// traversal of the fully merged MFSA.
func (r *Runner) Table2(w io.Writer) ([]Table2Row, error) {
	rows := make([]Table2Row, 0, len(r.specs))
	tb := metrics.NewTable("Table II — active FSAs during MFSA traversal (M = all)",
		"Dataset", "AvgActive", "MaxActive")
	for _, s := range r.specs {
		ps, err := r.programs(s, 0)
		if err != nil {
			return nil, err
		}
		in := r.stream(s)
		var pairs int64
		max := 0
		for _, p := range ps {
			res := engine.Run(p, in, engine.Config{Stats: true})
			pairs += res.ActivePairsTotal
			if res.MaxActiveFSAs > max {
				max = res.MaxActiveFSAs
			}
		}
		row := Table2Row{Abbr: s.Abbr, AvgActive: float64(pairs) / float64(len(in)), MaxActive: max}
		rows = append(rows, row)
		tb.AddRow(row.Abbr, row.AvgActive, row.MaxActive)
	}
	if w != nil {
		tb.Render(w)
	}
	return rows, nil
}

// Fig9Row is one dataset/M single-thread execution point.
type Fig9Row struct {
	Abbr string
	M    int
	// ExeTime is the total single-thread latency to execute all the
	// MFSAs of the configuration over the stream.
	ExeTime time.Duration
	// Throughput is #MFSA·M·Dsize/ExeTime in RE·bytes/s.
	Throughput float64
	// Improvement is Throughput relative to the M=1 configuration.
	Improvement float64
}

// Fig9 measures single-threaded execution time and throughput improvement
// across merging factors.
func (r *Runner) Fig9(w io.Writer) ([]Fig9Row, error) {
	var rows []Fig9Row
	tb := metrics.NewTable("Fig. 9 — single-thread execution (1 thread, stream scan)",
		"Dataset", "M", "ExeTime", "Throughput(RE·B/s)", "Improvement")
	for _, s := range r.specs {
		in := r.stream(s)
		base := -1.0
		for _, m := range r.o.Ms {
			ps, err := r.programs(s, m)
			if err != nil {
				return nil, err
			}
			elapsed := r.timeSequential(ps, in)
			mEff := m
			if mEff <= 0 {
				mEff = len(s.Patterns())
			}
			th := metrics.Throughput(len(ps), mEff, len(in), elapsed)
			row := Fig9Row{Abbr: s.Abbr, M: m, ExeTime: elapsed, Throughput: th}
			if m == 1 {
				base = th
			}
			if base > 0 {
				row.Improvement = th / base
			}
			rows = append(rows, row)
			tb.AddRow(s.Abbr, mLabel(m), row.ExeTime, fmt.Sprintf("%.3g", row.Throughput), row.Improvement)
		}
	}
	if w != nil {
		tb.Render(w)
		r.renderFig9Summary(w, rows)
	}
	return rows, nil
}

func (r *Runner) renderFig9Summary(w io.Writer, rows []Fig9Row) {
	// Geomean improvement per M, and best-configuration geomean — the
	// headline 5.99× of the paper.
	perM := map[int][]float64{}
	best := map[string]float64{}
	for _, row := range rows {
		if row.M != 1 {
			perM[row.M] = append(perM[row.M], row.Improvement)
		}
		if row.Improvement > best[row.Abbr] {
			best[row.Abbr] = row.Improvement
		}
	}
	tb := metrics.NewTable("Fig. 9 summary — geomean throughput improvement vs M=1",
		"M", "Geomean")
	for _, m := range r.o.Ms {
		if vals, ok := perM[m]; ok {
			tb.AddRow(mLabel(m), metrics.GeoMean(vals))
		}
	}
	var bests []float64
	for _, v := range best {
		bests = append(bests, v)
	}
	tb.AddRow("best", metrics.GeoMean(bests))
	tb.Render(w)
}

// timeSequential runs every program over the input on one goroutine,
// averaged over Reps, returning the total latency. Runner state is reused
// across reps, as the paper's repeated measurements would.
func (r *Runner) timeSequential(ps []*engine.Program, in []byte) time.Duration {
	pool := engine.NewPool(ps)
	var total time.Duration
	for rep := 0; rep < r.o.Reps; rep++ {
		start := time.Now()
		pool.Run(in, 1, engine.Config{})
		total += time.Since(start)
	}
	return total / time.Duration(r.o.Reps)
}

// Fig10Row is one dataset/M/T multi-thread execution point.
type Fig10Row struct {
	Abbr    string
	M       int
	Threads int
	ExeTime time.Duration
}

// Fig10 sweeps merging factors × thread counts with the work-pool executor
// and prints the per-dataset best-configuration speedup summary (the
// paper's 4.05× geomean) and the thread-utilization highlight.
func (r *Runner) Fig10(w io.Writer) ([]Fig10Row, error) {
	var rows []Fig10Row
	tb := metrics.NewTable("Fig. 10 — multi-thread execution time",
		"Dataset", "M", "T", "ExeTime")
	for _, s := range r.specs {
		in := r.stream(s)
		for _, m := range r.o.Ms {
			ps, err := r.programs(s, m)
			if err != nil {
				return nil, err
			}
			pool := engine.NewPool(ps)
			for _, t := range r.o.Threads {
				var total time.Duration
				for rep := 0; rep < r.o.Reps; rep++ {
					start := time.Now()
					pool.Run(in, t, engine.Config{})
					total += time.Since(start)
				}
				elapsed := total / time.Duration(r.o.Reps)
				rows = append(rows, Fig10Row{Abbr: s.Abbr, M: m, Threads: t, ExeTime: elapsed})
				tb.AddRow(s.Abbr, mLabel(m), t, elapsed)
			}
		}
	}
	if w != nil {
		tb.Render(w)
		renderFig10Summary(w, rows)
	}
	return rows, nil
}

func renderFig10Summary(w io.Writer, rows []Fig10Row) {
	type best struct {
		time  time.Duration
		m, t  int
		found bool
	}
	baseline := map[string]best{} // best M=1 config per dataset
	merged := map[string]best{}   // best M>1 config per dataset
	for _, row := range rows {
		tgt := merged
		if row.M == 1 {
			tgt = baseline
		} else if row.M == 1 {
			continue
		}
		b := tgt[row.Abbr]
		if !b.found || row.ExeTime < b.time {
			tgt[row.Abbr] = best{time: row.ExeTime, m: row.M, t: row.Threads, found: true}
		}
	}
	tb := metrics.NewTable("Fig. 10 summary — best multi-thread MFSA vs best multi-thread FSAs",
		"Dataset", "Best M=1", "Best M>1", "Speedup", "LeastThreads≤M=1")
	var speedups []float64
	for abbr, b1 := range baseline {
		bm, ok := merged[abbr]
		if !ok {
			continue
		}
		speedup := float64(b1.time) / float64(bm.time)
		speedups = append(speedups, speedup)
		// Thread-utilization: least-thread merged config at least as
		// fast as the best M=1 config.
		leastT := -1
		for _, row := range rows {
			if row.Abbr != abbr || row.M == 1 {
				continue
			}
			if row.ExeTime <= b1.time && (leastT < 0 || row.Threads < leastT) {
				leastT = row.Threads
			}
		}
		tb.AddRow(abbr,
			fmt.Sprintf("T=%d %v", b1.t, b1.time.Round(time.Microsecond)),
			fmt.Sprintf("M=%s T=%d %v", mLabel(bm.m), bm.t, bm.time.Round(time.Microsecond)),
			speedup,
			leastT)
	}
	tb.AddRow("geomean", "", "", metrics.GeoMean(speedups), "")
	tb.Render(w)
}

// All runs every experiment in paper order.
func (r *Runner) All(w io.Writer) error {
	steps := []func(io.Writer) error{
		func(w io.Writer) error { _, err := r.Fig1(w); return err },
		func(w io.Writer) error { _, err := r.Table1(w); return err },
		func(w io.Writer) error { _, err := r.Fig7(w); return err },
		func(w io.Writer) error { _, err := r.Fig8(w); return err },
		func(w io.Writer) error { _, err := r.Table2(w); return err },
		func(w io.Writer) error { _, err := r.Fig9(w); return err },
		func(w io.Writer) error { _, err := r.Fig10(w); return err },
	}
	for i, step := range steps {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := step(w); err != nil {
			return err
		}
	}
	return nil
}
