package experiments

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rex"
)

// tinyOpts keeps experiment tests fast: one dataset, small streams, the
// short M/T lists.
func tinyOpts() Opts {
	o := Default()
	o.Datasets = []string{"BRO"}
	o.StreamSize = 8 << 10
	o.Reps = 1
	o.Ms = []int{1, 10, 0}
	o.Threads = []int{1, 2}
	o.SimilaritySample = 40
	return o
}

func newTestRunner(t *testing.T, o Opts) *Runner {
	t.Helper()
	r, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	o := Default()
	o.Datasets = []string{"NOPE"}
	if _, err := New(o); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	// Zero-valued options get defaults.
	r, err := New(Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.specs) != 6 {
		t.Fatalf("specs=%d, want all six", len(r.specs))
	}
	if r.o.Reps != 1 || r.o.StreamSize <= 0 || len(r.o.Ms) == 0 {
		t.Fatalf("defaults not applied: %+v", r.o)
	}
}

func TestPaperOptsScale(t *testing.T) {
	p := Paper()
	d := Default()
	if p.StreamSize <= d.StreamSize || p.Reps <= d.Reps {
		t.Fatal("Paper() must scale up Default()")
	}
	if p.SimilaritySample != 0 {
		t.Fatal("Paper() must use all patterns for Fig. 1")
	}
}

func TestFig1(t *testing.T) {
	r := newTestRunner(t, tinyOpts())
	rows, err := r.Fig1(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Abbr != "BRO" {
		t.Fatalf("rows=%v", rows)
	}
	if rows[0].Similarity <= 0 || rows[0].Similarity >= 1 {
		t.Fatalf("similarity=%f", rows[0].Similarity)
	}
}

func TestTable1(t *testing.T) {
	r := newTestRunner(t, tinyOpts())
	rows, err := r.Table1(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	if row.NumREs != 217 {
		t.Fatalf("REs=%d", row.NumREs)
	}
	if row.AvgStates <= 0 || row.TotStates < row.NumREs {
		t.Fatalf("row=%+v", row)
	}
}

func TestFig7(t *testing.T) {
	r := newTestRunner(t, tinyOpts())
	rows, err := r.Fig7(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// M=1 is skipped; 10 and all remain.
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	if !(rows[1].StatesPct > rows[0].StatesPct) {
		t.Fatalf("compression must grow with M: %v", rows)
	}
	for _, row := range rows {
		if row.StatesPct < row.TransPct {
			t.Fatalf("states%% should dominate trans%%: %+v", row)
		}
	}
}

func TestFig8(t *testing.T) {
	r := newTestRunner(t, tinyOpts())
	rows, err := r.Fig8(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, row := range rows {
		if row.Times.Total() <= 0 {
			t.Fatalf("no time for M=%d", row.M)
		}
	}
}

func TestTable2(t *testing.T) {
	r := newTestRunner(t, tinyOpts())
	rows, err := r.Table2(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].AvgActive <= 0 || rows[0].MaxActive <= 0 {
		t.Fatalf("activity=%+v", rows[0])
	}
}

func TestFig9(t *testing.T) {
	r := newTestRunner(t, tinyOpts())
	var buf bytes.Buffer
	rows, err := r.Fig9(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	if rows[0].M != 1 || rows[0].Improvement != 1 {
		t.Fatalf("baseline row=%+v", rows[0])
	}
	for _, row := range rows[1:] {
		if row.Improvement <= 1 {
			t.Fatalf("merging should improve throughput: %+v", row)
		}
	}
	if !strings.Contains(buf.String(), "geomean") {
		t.Fatal("summary missing")
	}
}

func TestFig10(t *testing.T) {
	r := newTestRunner(t, tinyOpts())
	var buf bytes.Buffer
	rows, err := r.Fig10(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*2 { // Ms × Threads
		t.Fatalf("rows=%d", len(rows))
	}
	if !strings.Contains(buf.String(), "Speedup") {
		t.Fatal("summary missing")
	}
}

func TestAblation(t *testing.T) {
	r := newTestRunner(t, tinyOpts())
	rows, err := r.Ablation(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows=%d", len(rows))
	}
	// Compression must not increase with the threshold.
	for i := 1; i < len(rows); i++ {
		if rows[i].StatesPct > rows[i-1].StatesPct+1e-9 {
			t.Fatalf("states%% increased from MinSubPath %d to %d", rows[i-1].MinSubPath, rows[i].MinSubPath)
		}
	}
}

func TestBaseline(t *testing.T) {
	r := newTestRunner(t, tinyOpts())
	rows, err := r.Baseline(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	if row.MFSAStates >= row.NFAStates {
		t.Fatalf("MFSA should compress states: %+v", row)
	}
	if !row.DFAExploded && row.DFATrans <= row.MFSATrans {
		t.Fatalf("dense DFA table should dwarf the MFSA: %+v", row)
	}
	if !row.DFAExploded && row.D2FATrans >= row.DFATrans {
		t.Fatalf("D2FA should compress the dense table: %+v", row)
	}
}

func TestAllRendersEverything(t *testing.T) {
	o := tinyOpts()
	o.StreamSize = 4 << 10
	r := newTestRunner(t, o)
	var buf bytes.Buffer
	if err := r.All(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 1", "Table I", "Fig. 7", "Fig. 8", "Table II", "Fig. 9", "Fig. 10"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("All output lacks %q", want)
		}
	}
}

func TestMLabel(t *testing.T) {
	if mLabel(0) != "all" || mLabel(-3) != "all" || mLabel(7) != "7" {
		t.Fatal("mLabel wrong")
	}
}

func TestRunnerCaching(t *testing.T) {
	r := newTestRunner(t, tinyOpts())
	if _, err := r.Table1(io.Discard); err != nil {
		t.Fatal(err)
	}
	if len(r.outputs) == 0 {
		t.Fatal("no compile cached")
	}
	before := len(r.outputs)
	if _, err := r.Table1(io.Discard); err != nil {
		t.Fatal(err)
	}
	if len(r.outputs) != before {
		t.Fatal("cache miss on repeat")
	}
}

func TestStreamMatchesSpec(t *testing.T) {
	r := newTestRunner(t, tinyOpts())
	in := r.stream(r.specs[0])
	if len(in) != r.o.StreamSize {
		t.Fatalf("stream size %d", len(in))
	}
	// Sanity: dataset patterns parse (guards generator drift).
	for _, p := range r.specs[0].Patterns()[:10] {
		if _, err := rex.Parse(p); err != nil {
			t.Fatalf("pattern %q: %v", p, err)
		}
	}
}

func TestCCRefine(t *testing.T) {
	r := newTestRunner(t, tinyOpts())
	rows, err := r.CCRefine(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Refined || !rows[1].Refined {
		t.Fatalf("rows=%+v", rows)
	}
	if rows[1].States > rows[0].States {
		t.Fatalf("refinement should not increase states: %+v", rows)
	}
}

func TestStrideExperiment(t *testing.T) {
	r := newTestRunner(t, tinyOpts())
	rows, err := r.Stride(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	if row.Skipped {
		t.Fatalf("BRO stride skipped: %+v", row)
	}
	if row.Pairs <= 0 || row.BaseTime <= 0 || row.StrideTime <= 0 {
		t.Fatalf("row=%+v", row)
	}
}

func TestClusteringExperiment(t *testing.T) {
	o := tinyOpts()
	o.StreamSize = 4 << 10
	r := newTestRunner(t, o)
	rows, err := r.Clustering(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 Ms × 2 policies
		t.Fatalf("rows=%d", len(rows))
	}
	// Clustered grouping must not compress worse at the same M.
	for i := 0; i+1 < len(rows); i += 2 {
		seq, clu := rows[i], rows[i+1]
		if clu.StatesPct < seq.StatesPct-1.0 {
			t.Fatalf("M=%d clustered %.2f%% worse than sequential %.2f%%", seq.M, clu.StatesPct, seq.StatesPct)
		}
	}
}

func TestDecomposeExperiment(t *testing.T) {
	o := tinyOpts()
	o.StreamSize = 4 << 10
	r := newTestRunner(t, o)
	rows, err := r.Decompose(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	hot, cold := rows[0], rows[1]
	if !hot.HotStream || cold.HotStream {
		t.Fatalf("row order: %+v", rows)
	}
	if cold.Triggered > hot.Triggered {
		t.Fatalf("cold stream triggered more rules (%d) than hot (%d)", cold.Triggered, hot.Triggered)
	}
	if hot.Filterable == 0 {
		t.Fatal("no filterable rules in BRO")
	}
}

func TestPlots(t *testing.T) {
	o := tinyOpts()
	o.StreamSize = 4 << 10
	r := newTestRunner(t, o)
	dir := t.TempDir()
	if err := r.Plots(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig1.svg", "fig7-states.svg", "fig7-trans.svg", "fig8.svg",
		"fig9.svg", "fig10-BRO.svg",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(string(data), "<svg") {
			t.Fatalf("%s is not SVG", name)
		}
	}
}
