package experiments

import (
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/mfsa"
	"repro/internal/pipeline"
)

// ClusterRow compares sequential and similarity-clustered grouping at one
// merging factor.
type ClusterRow struct {
	Abbr      string
	M         int
	Clustered bool
	StatesPct float64
	TransPct  float64
	ExeTime   time.Duration
}

// Clustering evaluates the future-work grouping policy (§VIII): instead of
// sampling the M-sized merge groups sequentially from the dataset, rules
// are clustered by normalized INDEL similarity first, so each group merges
// the most morphologically similar rules. For each dataset and mid-range M
// it reports compression and single-thread execution time for both
// policies.
func (r *Runner) Clustering(w io.Writer) ([]ClusterRow, error) {
	ms := []int{10, 50}
	var rows []ClusterRow
	tb := metrics.NewTable("Clustering — sequential vs similarity-clustered merge groups (§VIII future work)",
		"Dataset", "M", "Grouping", "States%", "Trans%", "ExeTime")
	for _, s := range r.specs {
		pats := s.Patterns()
		base, err := pipeline.Compile(pats, 1, nil)
		if err != nil {
			return nil, err
		}
		in := r.stream(s)
		for _, m := range ms {
			for _, clustered := range []bool{false, true} {
				var groups [][]int
				if clustered {
					groups = cluster.GroupBySimilarity(pats, m)
				} else {
					for i := 0; i < len(pats); i += m {
						end := i + m
						if end > len(pats) {
							end = len(pats)
						}
						g := make([]int, 0, end-i)
						for k := i; k < end; k++ {
							g = append(g, k)
						}
						groups = append(groups, g)
					}
				}
				zs, err := mfsa.MergeGrouped(base.FSAs, groups)
				if err != nil {
					return nil, err
				}
				c := metrics.MeasureCompression(base.FSAs, zs)
				ps := make([]*engine.Program, len(zs))
				for i, z := range zs {
					ps[i] = engine.NewProgram(z)
				}
				elapsed := r.timeSequential(ps, in)
				row := ClusterRow{
					Abbr: s.Abbr, M: m, Clustered: clustered,
					StatesPct: c.StatesPct(), TransPct: c.TransPct(),
					ExeTime: elapsed,
				}
				rows = append(rows, row)
				name := "sequential"
				if clustered {
					name = "clustered"
				}
				tb.AddRow(row.Abbr, m, name, row.StatesPct, row.TransPct, row.ExeTime)
			}
		}
	}
	if w != nil {
		tb.Render(w)
	}
	return rows, nil
}
