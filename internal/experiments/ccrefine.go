package experiments

import (
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/mfsa"
	"repro/internal/nfa"
	"repro/internal/pipeline"
)

// CCRefineRow compares merging with and without alphabet refinement.
type CCRefineRow struct {
	Abbr    string
	Refined bool
	// States/Trans of the M = all MFSA; the baseline states are the same
	// either way (refinement never changes state sets).
	States, Trans int
	StatesPct     float64
	MergeTime     time.Duration
	ExeTime       time.Duration
}

// CCRefine evaluates the partial character-class merging the paper proposes
// as a possible improvement in §VI-A: refining the group alphabet into
// canonical blocks (nfa.RefineAlphabet) before Algorithm 1, so that
// overlapping-but-unequal CCs share their common bytes. For each dataset it
// merges M = all with and without refinement and reports the MFSA size, the
// state compression against the unrefined standalone FSAs, and merge and
// scan times.
func (r *Runner) CCRefine(w io.Writer) ([]CCRefineRow, error) {
	var rows []CCRefineRow
	tb := metrics.NewTable("CC refinement — partial character-class merging (M = all, §VI-A improvement)",
		"Dataset", "Refined", "States", "Trans", "States%", "MergeTime", "ExeTime")
	for _, s := range r.specs {
		base, err := pipeline.Compile(s.Patterns(), 1, nil)
		if err != nil {
			return nil, err
		}
		baseStates := 0
		for _, a := range base.FSAs {
			baseStates += a.NumStates
		}
		in := r.stream(s)
		for _, refined := range []bool{false, true} {
			fsas := base.FSAs
			if refined {
				fsas = nfa.RefineAlphabet(fsas)
			}
			start := time.Now()
			z, err := mfsa.Merge(fsas)
			if err != nil {
				return nil, err
			}
			mergeTime := time.Since(start)
			p := engine.NewProgram(z)
			runner := engine.NewRunner(p)
			start = time.Now()
			for rep := 0; rep < r.o.Reps; rep++ {
				runner.Run(in, engine.Config{})
			}
			exeTime := time.Since(start) / time.Duration(r.o.Reps)
			row := CCRefineRow{
				Abbr: s.Abbr, Refined: refined,
				States: z.NumStates, Trans: z.NumTrans(),
				StatesPct: 100 * float64(baseStates-z.NumStates) / float64(baseStates),
				MergeTime: mergeTime, ExeTime: exeTime,
			}
			rows = append(rows, row)
			tb.AddRow(row.Abbr, row.Refined, row.States, row.Trans, row.StatesPct, row.MergeTime, row.ExeTime)
		}
	}
	if w != nil {
		tb.Render(w)
	}
	return rows, nil
}
