package experiments

import (
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/lazydfa"
	"repro/internal/metrics"
)

// LazyRow compares the lazy-DFA execution mode against iMFAnt (and 2-stride
// where buildable) on one dataset, fully merged (M = all), keep semantics.
type LazyRow struct {
	Abbr string
	// Classes is the byte-class alphabet width; cached rows are this wide
	// instead of 256.
	Classes int
	// States and Flushes describe the cache after the timed scans.
	States, Flushes int
	// FellBack reports whether any scan abandoned the cache for iMFAnt.
	FellBack bool
	// IMFAntTime, StrideTime and LazyTime are single-thread scan latencies.
	// LazyTime is measured warm: one untimed scan populates the cache first,
	// matching the steady state of a long-lived Scanner/StreamMatcher.
	IMFAntTime, StrideTime, LazyTime time.Duration
	// SpeedupIMFAnt is IMFAntTime / LazyTime; SpeedupStride likewise (0 when
	// the 2-stride table blew up).
	SpeedupIMFAnt, SpeedupStride float64
}

// Lazy evaluates the hybrid lazy-DFA execution mode: on-the-fly subset
// construction over iMFAnt activation vectors with a byte-class-compressed
// bounded transition cache. It reports the cache footprint next to the
// speedup over the interpreted engines — the DFA-speed-at-MFSA-size
// trade-off the mode is built for.
func (r *Runner) Lazy(w io.Writer) ([]LazyRow, error) {
	var rows []LazyRow
	tb := metrics.NewTable("Lazy DFA — warm-cache vs iMFAnt and 2-stride (M = all, keep)",
		"Dataset", "Classes", "States", "Flushes", "IMFAntTime", "StrideTime", "LazyTime", "vs iMFAnt", "vs 2-stride")
	for _, s := range r.specs {
		out, err := r.compiled(s, 0)
		if err != nil {
			return nil, err
		}
		z := out.MFSAs[0]
		in := r.stream(s)
		cfg := engine.Config{KeepOnMatch: true}

		p := engine.NewProgram(z)
		runner := engine.NewRunner(p)
		start := time.Now()
		for rep := 0; rep < r.o.Reps; rep++ {
			runner.Run(in, cfg)
		}
		row := LazyRow{Abbr: s.Abbr}
		row.IMFAntTime = time.Since(start) / time.Duration(r.o.Reps)

		strideCell := any("-")
		if sp, err := engine.NewStrideProgram(z); err == nil {
			srunner := engine.NewStrideRunner(sp)
			start = time.Now()
			for rep := 0; rep < r.o.Reps; rep++ {
				srunner.Run(in, cfg)
			}
			row.StrideTime = time.Since(start) / time.Duration(r.o.Reps)
			strideCell = row.StrideTime
		}

		m := lazydfa.New(p)
		row.Classes = m.NumClasses()
		lrunner := lazydfa.NewRunner(m)
		lcfg := lazydfa.Config{KeepOnMatch: true}
		lrunner.Run(in, lcfg) // warm the cache
		start = time.Now()
		var res lazydfa.Result
		for rep := 0; rep < r.o.Reps; rep++ {
			res = lrunner.Run(in, lcfg)
		}
		row.LazyTime = time.Since(start) / time.Duration(r.o.Reps)
		row.States = res.CachedStates
		row.Flushes = res.Flushes
		row.FellBack = res.FellBack
		row.SpeedupIMFAnt = float64(row.IMFAntTime) / float64(row.LazyTime)
		strideSpeed := any("-")
		if row.StrideTime > 0 {
			row.SpeedupStride = float64(row.StrideTime) / float64(row.LazyTime)
			strideSpeed = row.SpeedupStride
		}
		rows = append(rows, row)
		tb.AddRow(row.Abbr, row.Classes, row.States, row.Flushes,
			row.IMFAntTime, strideCell, row.LazyTime,
			row.SpeedupIMFAnt, strideSpeed)
	}
	if w != nil {
		tb.Render(w)
	}
	return rows, nil
}
