package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/svgplot"
)

// Plots regenerates the paper's figures as SVG charts in dir (the artifact
// scripts' PDF-plot analogue): fig1.svg, fig7.svg, fig8.svg, fig9.svg and
// one fig10-<dataset>.svg per dataset. The experiments run with the
// Runner's options; results are cached across figures.
func (r *Runner) Plots(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, render func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return fmt.Errorf("experiments: plot %s: %w", name, err)
		}
		return f.Close()
	}

	// Fig. 1 — similarity bars.
	fig1, err := r.Fig1(nil)
	if err != nil {
		return err
	}
	c1 := &svgplot.BarChart{
		Title:  "Fig. 1 — average normalized INDEL similarity",
		YLabel: "similarity [0,1]",
		Series: []svgplot.Series{{Name: "similarity"}},
	}
	for _, row := range fig1 {
		c1.Categories = append(c1.Categories, row.Abbr)
		c1.Series[0].Values = append(c1.Series[0].Values, row.Similarity)
	}
	if err := write("fig1.svg", func(f *os.File) error { return c1.Render(f) }); err != nil {
		return err
	}

	// Fig. 7 — grouped compression bars (states and transitions charts).
	fig7, err := r.Fig7(nil)
	if err != nil {
		return err
	}
	for _, metric := range []struct {
		name  string
		value func(Fig7Row) float64
		title string
	}{
		{"fig7-states.svg", func(x Fig7Row) float64 { return x.StatesPct }, "Fig. 7 — state compression"},
		{"fig7-trans.svg", func(x Fig7Row) float64 { return x.TransPct }, "Fig. 7 — transition compression"},
	} {
		chart := &svgplot.BarChart{Title: metric.title, YLabel: "% compression"}
		seriesIdx := map[int]int{}
		catIdx := map[string]int{}
		for _, row := range fig7 {
			if _, ok := catIdx[row.Abbr]; !ok {
				catIdx[row.Abbr] = len(chart.Categories)
				chart.Categories = append(chart.Categories, row.Abbr)
			}
			if _, ok := seriesIdx[row.M]; !ok {
				seriesIdx[row.M] = len(chart.Series)
				chart.Series = append(chart.Series, svgplot.Series{Name: "M=" + mLabel(row.M)})
			}
		}
		for i := range chart.Series {
			chart.Series[i].Values = make([]float64, len(chart.Categories))
		}
		for _, row := range fig7 {
			chart.Series[seriesIdx[row.M]].Values[catIdx[row.Abbr]] = metric.value(row)
		}
		if err := write(metric.name, func(f *os.File) error { return chart.Render(f) }); err != nil {
			return err
		}
	}

	// Fig. 8 — total compilation time by M, log scale.
	fig8, err := r.Fig8(nil)
	if err != nil {
		return err
	}
	c8 := &svgplot.LineChart{
		Title:  "Fig. 8 — total compilation time",
		XLabel: "merging factor M",
		YLabel: "time (ms)",
		LogY:   true,
	}
	sIdx := map[string]int{}
	xIdx := map[int]int{}
	for _, row := range fig8 {
		if _, ok := xIdx[row.M]; !ok {
			xIdx[row.M] = len(c8.XLabels)
			c8.XLabels = append(c8.XLabels, mLabel(row.M))
		}
		if _, ok := sIdx[row.Abbr]; !ok {
			sIdx[row.Abbr] = len(c8.Series)
			c8.Series = append(c8.Series, svgplot.Series{Name: row.Abbr})
		}
	}
	for i := range c8.Series {
		c8.Series[i].Values = make([]float64, len(c8.XLabels))
	}
	for _, row := range fig8 {
		ms := float64(row.Times.Total().Microseconds()) / 1000
		if ms <= 0 {
			ms = 0.001
		}
		c8.Series[sIdx[row.Abbr]].Values[xIdx[row.M]] = ms
	}
	if err := write("fig8.svg", func(f *os.File) error { return c8.Render(f) }); err != nil {
		return err
	}

	// Fig. 9 — throughput improvement bars.
	fig9, err := r.Fig9(nil)
	if err != nil {
		return err
	}
	c9 := &svgplot.BarChart{
		Title:  "Fig. 9 — throughput improvement vs M=1",
		YLabel: "improvement (×)",
	}
	sIdx9 := map[int]int{}
	cIdx9 := map[string]int{}
	for _, row := range fig9 {
		if row.M == 1 {
			continue
		}
		if _, ok := cIdx9[row.Abbr]; !ok {
			cIdx9[row.Abbr] = len(c9.Categories)
			c9.Categories = append(c9.Categories, row.Abbr)
		}
		if _, ok := sIdx9[row.M]; !ok {
			sIdx9[row.M] = len(c9.Series)
			c9.Series = append(c9.Series, svgplot.Series{Name: "M=" + mLabel(row.M)})
		}
	}
	for i := range c9.Series {
		c9.Series[i].Values = make([]float64, len(c9.Categories))
	}
	for _, row := range fig9 {
		if row.M == 1 {
			continue
		}
		c9.Series[sIdx9[row.M]].Values[cIdx9[row.Abbr]] = row.Improvement
	}
	if err := write("fig9.svg", func(f *os.File) error { return c9.Render(f) }); err != nil {
		return err
	}

	// Fig. 10 — per-dataset execution-time lines over the thread sweep.
	fig10, err := r.Fig10(nil)
	if err != nil {
		return err
	}
	perDataset := map[string][]Fig10Row{}
	for _, row := range fig10 {
		perDataset[row.Abbr] = append(perDataset[row.Abbr], row)
	}
	for abbr, rows := range perDataset {
		chart := &svgplot.LineChart{
			Title:  "Fig. 10 — " + abbr + " execution time",
			XLabel: "#threads",
			YLabel: "time (ms)",
			LogY:   true,
		}
		tIdx := map[int]int{}
		mIdx := map[int]int{}
		for _, row := range rows {
			if _, ok := tIdx[row.Threads]; !ok {
				tIdx[row.Threads] = len(chart.XLabels)
				chart.XLabels = append(chart.XLabels, fmt.Sprintf("%d", row.Threads))
			}
			if _, ok := mIdx[row.M]; !ok {
				mIdx[row.M] = len(chart.Series)
				chart.Series = append(chart.Series, svgplot.Series{Name: "M=" + mLabel(row.M)})
			}
		}
		for i := range chart.Series {
			chart.Series[i].Values = make([]float64, len(chart.XLabels))
		}
		for _, row := range rows {
			ms := float64(row.ExeTime.Microseconds()) / 1000
			if ms <= 0 {
				ms = 0.001
			}
			chart.Series[mIdx[row.M]].Values[tIdx[row.Threads]] = ms
		}
		name := "fig10-" + abbr + ".svg"
		if err := write(name, func(f *os.File) error { return chart.Render(f) }); err != nil {
			return err
		}
	}
	return nil
}
