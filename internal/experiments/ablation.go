package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/mfsa"
	"repro/internal/pipeline"
)

// AblationRow is one point of the merge-heuristic ablation study.
type AblationRow struct {
	Abbr string
	// MinSubPath is the Merging Structure length threshold under test.
	MinSubPath int
	StatesPct  float64
	TransPct   float64
	MergeTime  time.Duration
	ExeTime    time.Duration
}

// Ablation studies the design choice DESIGN.md calls out: how long must a
// common sub-path be before Algorithm 1 merges it? MinSubPath = 1 merges
// isolated same-label arcs (maximal compression, densest MFSA); larger
// thresholds merge only substantial shared sub-patterns. For each setting
// it reports the M = all compression, the merge time, and the single-thread
// execution time over the dataset stream — exposing the compression/
// run-time trade-off behind the default of 2.
func (r *Runner) Ablation(w io.Writer) ([]AblationRow, error) {
	var rows []AblationRow
	tb := metrics.NewTable("Ablation — Merging Structure minimum sub-path length (M = all)",
		"Dataset", "MinSubPath", "States%", "Trans%", "MergeTime", "ExeTime")
	for _, s := range r.specs {
		// Stage 1–3 once per dataset; the ablation only re-runs merging.
		base, err := pipeline.Compile(s.Patterns(), 1, nil)
		if err != nil {
			return nil, err
		}
		in := r.stream(s)
		for _, minLen := range []int{1, 2, 3, 4} {
			start := time.Now()
			z, err := mfsa.MergeWith(base.FSAs, mfsa.MergeOptions{MinSubPath: minLen})
			if err != nil {
				return nil, fmt.Errorf("%s minLen=%d: %w", s.Abbr, minLen, err)
			}
			mergeTime := time.Since(start)
			c := metrics.MeasureCompression(base.FSAs, []*mfsa.MFSA{z})
			p := engine.NewProgram(z)
			runner := engine.NewRunner(p)
			start = time.Now()
			for rep := 0; rep < r.o.Reps; rep++ {
				runner.Run(in, engine.Config{})
			}
			exeTime := time.Since(start) / time.Duration(r.o.Reps)
			row := AblationRow{
				Abbr: s.Abbr, MinSubPath: minLen,
				StatesPct: c.StatesPct(), TransPct: c.TransPct(),
				MergeTime: mergeTime, ExeTime: exeTime,
			}
			rows = append(rows, row)
			tb.AddRow(row.Abbr, minLen, row.StatesPct, row.TransPct, row.MergeTime, row.ExeTime)
		}
	}
	if w != nil {
		tb.Render(w)
	}
	return rows, nil
}
