package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGroupBySimilarityBasics(t *testing.T) {
	patterns := []string{
		"GET /aaa", "xyzxyzxy", "GET /aab", "xyzxyzxx", "GET /aac", "qqqq",
	}
	groups := GroupBySimilarity(patterns, 3)
	if len(groups) != 2 {
		t.Fatalf("groups=%v", groups)
	}
	// The GET rules must cluster together.
	find := func(idx int) int {
		for g, group := range groups {
			for _, i := range group {
				if i == idx {
					return g
				}
			}
		}
		return -1
	}
	if find(0) != find(2) || find(0) != find(4) {
		t.Fatalf("GET rules split: %v", groups)
	}
	if find(1) != find(3) {
		t.Fatalf("xyz rules split: %v", groups)
	}
}

func TestGroupBySimilarityEdgeCases(t *testing.T) {
	if got := GroupBySimilarity(nil, 5); got != nil {
		t.Fatalf("empty: %v", got)
	}
	one := GroupBySimilarity([]string{"a"}, 5)
	if len(one) != 1 || len(one[0]) != 1 {
		t.Fatalf("singleton: %v", one)
	}
	all := GroupBySimilarity([]string{"a", "b", "c"}, 0)
	if len(all) != 1 || len(all[0]) != 3 {
		t.Fatalf("m=0: %v", all)
	}
}

func TestQuickGroupsPartition(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	f := func() bool {
		n := 1 + r.Intn(24)
		m := 1 + r.Intn(8)
		patterns := make([]string, n)
		for i := range patterns {
			b := make([]byte, 2+r.Intn(8))
			for k := range b {
				b[k] = byte('a' + r.Intn(4))
			}
			patterns[i] = string(b)
		}
		groups := GroupBySimilarity(patterns, m)
		seen := make([]bool, n)
		for _, group := range groups {
			if len(group) == 0 || len(group) > m {
				t.Logf("bad group size %d (m=%d)", len(group), m)
				return false
			}
			for _, i := range group {
				if seen[i] {
					t.Logf("rule %d assigned twice", i)
					return false
				}
				seen[i] = true
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Logf("rule %d unassigned", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestClusteringImprovesIntraSimilarity(t *testing.T) {
	// Interleave two very different families; sequential grouping mixes
	// them, clustering must not.
	var patterns []string
	for i := 0; i < 12; i++ {
		if i%2 == 0 {
			patterns = append(patterns, "GET /page"+string(rune('a'+i)))
		} else {
			patterns = append(patterns, "zqwk"+string(rune('a'+i))+"mvnx")
		}
	}
	seq := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}}
	_, seqSim := IntraSimilarity(patterns, seq)
	clustered := GroupBySimilarity(patterns, 4)
	_, cluSim := IntraSimilarity(patterns, clustered)
	if cluSim <= seqSim {
		t.Fatalf("clustered similarity %.3f not better than sequential %.3f", cluSim, seqSim)
	}
}

func TestIntraSimilarityDegenerate(t *testing.T) {
	per, overall := IntraSimilarity([]string{"a"}, [][]int{{0}})
	if per[0] != 0 || overall != 0 {
		t.Fatal("singleton group similarity must be 0")
	}
}

func BenchmarkGroupBySimilarity(b *testing.B) {
	patterns := make([]string, 120)
	r := rand.New(rand.NewSource(5))
	for i := range patterns {
		bs := make([]byte, 10+r.Intn(20))
		for k := range bs {
			bs[k] = byte('a' + r.Intn(26))
		}
		patterns[i] = string(bs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GroupBySimilarity(patterns, 10)
	}
}
