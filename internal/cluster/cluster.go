// Package cluster implements the similarity-driven RE grouping the paper
// lists as future work (§VIII: "we plan to devise a systematic similarity
// RE analysis for possible clustering techniques"). Instead of sampling the
// input REs sequentially into M-sized groups (§VI), rules are grouped
// greedily by normalized INDEL similarity so that each MFSA merges the
// rules most likely to share sub-paths.
package cluster

import (
	"sort"

	"repro/internal/similarity"
)

// GroupBySimilarity partitions rule indices into groups of at most m,
// greedily: the lowest-index unassigned rule seeds a group and pulls in the
// m−1 unassigned rules most similar to it (ties broken by index, so the
// result is deterministic). m ≤ 0 yields one group with every rule.
//
// The cost is the all-pairs similarity matrix, O(n²) INDEL computations —
// the analysis cost the paper's future-work clustering would pay.
func GroupBySimilarity(patterns []string, m int) [][]int {
	n := len(patterns)
	if n == 0 {
		return nil
	}
	if m <= 0 || m >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return [][]int{all}
	}
	// Similarity matrix (symmetric, zero diagonal).
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := similarity.Similarity(patterns[i], patterns[j])
			sim[i][j], sim[j][i] = s, s
		}
	}
	assigned := make([]bool, n)
	var groups [][]int
	for seed := 0; seed < n; seed++ {
		if assigned[seed] {
			continue
		}
		assigned[seed] = true
		group := []int{seed}
		// Candidates: unassigned rules by descending similarity to
		// the seed.
		var cands []int
		for j := 0; j < n; j++ {
			if !assigned[j] {
				cands = append(cands, j)
			}
		}
		sort.SliceStable(cands, func(a, b int) bool {
			return sim[seed][cands[a]] > sim[seed][cands[b]]
		})
		for _, j := range cands {
			if len(group) >= m {
				break
			}
			assigned[j] = true
			group = append(group, j)
		}
		sort.Ints(group)
		groups = append(groups, group)
	}
	return groups
}

// IntraSimilarity returns the average pairwise similarity within each group
// and overall — the quality metric clustering optimizes.
func IntraSimilarity(patterns []string, groups [][]int) (perGroup []float64, overall float64) {
	perGroup = make([]float64, len(groups))
	var total float64
	var pairs int64
	for g, group := range groups {
		var sum float64
		var cnt int64
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				s := similarity.Similarity(patterns[group[i]], patterns[group[j]])
				sum += s
				cnt++
			}
		}
		if cnt > 0 {
			perGroup[g] = sum / float64(cnt)
		}
		total += sum
		pairs += cnt
	}
	if pairs > 0 {
		overall = total / float64(pairs)
	}
	return perGroup, overall
}
