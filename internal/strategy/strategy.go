// Package strategy classifies rule ASTs into execution-shape classes for the
// per-group strategy planner. The planner's premise (Bille's algorithm-per-
// shape observation, and the coregex meta-engine) is that many DPI rules do
// not need an automaton at all: a pure literal is a string-search problem,
// and a `^prefix.*suffix$` rule is two bounded memcmps plus a byte-class
// check. Classification is purely syntactic — it runs once at compile time
// over the Front-End's AST, and a rule that does not match a fast shape
// simply stays on the general engines, so misclassification is impossible by
// construction (there is no "almost literal" shape, only exact ones).
package strategy

import (
	"repro/internal/bytescan"
	"repro/internal/charset"
	"repro/internal/rex"
)

// Kind is the execution-shape class of one rule.
type Kind uint8

const (
	// KindGeneral is every rule that needs an automaton.
	KindGeneral Kind = iota
	// KindLiteral is an unanchored literal byte string: every match is an
	// occurrence of Literal, so Aho–Corasick over the group's literals
	// reproduces the engines' match events exactly.
	KindLiteral
	// KindAnchored is the anchored-literal family — `^lit$`, `^lit`,
	// `lit$`, and `^prefix<mid>*suffix$` where <mid> is a byte class whose
	// complement has at most bytescan.MaxNeedles bytes (`.` excludes only
	// \n). Each admits an O(1)-ish decision per scan: bounded prefix/suffix
	// compares plus, for the middle, a vectorized hunt for a violating
	// byte.
	KindAnchored
)

func (k Kind) String() string {
	switch k {
	case KindLiteral:
		return "literal"
	case KindAnchored:
		return "anchored"
	default:
		return "general"
	}
}

// maxExpand bounds how many copies an exact repetition of a literal byte is
// expanded to during classification (mirroring the Middle-End's loop
// expansion, which the shapes bypass).
const maxExpand = 64

// Shape is the classification result for one rule.
type Shape struct {
	Kind Kind
	// Literal is the KindLiteral byte string.
	Literal []byte
	// Prefix/Suffix are the KindAnchored literal halves; either may be
	// empty when HasMiddle is set.
	Prefix, Suffix []byte
	// AnchorStart/AnchorEnd record which anchors the rule carries.
	AnchorStart, AnchorEnd bool
	// HasMiddle reports a `<set>*`/`<set>{n,}` between Prefix and Suffix.
	HasMiddle bool
	// MinMiddle is the middle repetition's minimum length (0 for `*`).
	MinMiddle int
	// MiddleExcluded lists the bytes the middle set cannot consume (the
	// set's complement); empty means the middle accepts every byte. At
	// most bytescan.MaxNeedles entries — larger complements fail
	// classification.
	MiddleExcluded []byte
}

// MinLen returns the shortest input length the shape can match.
func (sh *Shape) MinLen() int {
	switch sh.Kind {
	case KindLiteral:
		return len(sh.Literal)
	case KindAnchored:
		return len(sh.Prefix) + len(sh.Suffix) + sh.MinMiddle
	}
	return 0
}

// BadFinder returns a prepared hunter for the middle's excluded bytes and
// whether a hunt is needed at all (false when the middle accepts any byte or
// there is no middle).
func (sh *Shape) BadFinder() (bytescan.Finder, bool) {
	if !sh.HasMiddle || len(sh.MiddleExcluded) == 0 {
		return bytescan.Finder{}, false
	}
	f, ok := bytescan.NewFinder(sh.MiddleExcluded)
	return f, ok
}

// part is one element of the flattened rule spine.
type part struct {
	anchor byte // '^' or '$', else 0
	lit    byte // single literal byte when set == single
	isLit  bool
	mid    charset.Set // repeat{min,inf} middle set
	isMid  bool
	minMid int
}

// flatten linearizes the AST into spine parts; ok is false as soon as a
// construct outside the shape grammar appears (alternation, bounded repeats
// of classes, multi-byte sets outside the middle, nested anchors...).
func flatten(n *rex.Node, out []part) ([]part, bool) {
	switch n.Op {
	case rex.OpEmpty:
		return out, true
	case rex.OpAnchor:
		return append(out, part{anchor: n.Atom}), true
	case rex.OpLit:
		b, single := n.Set.IsSingle()
		if !single {
			return out, false
		}
		return append(out, part{lit: b, isLit: true}), true
	case rex.OpConcat:
		ok := true
		for _, s := range n.Subs {
			if out, ok = flatten(s, out); !ok {
				return out, false
			}
		}
		return out, true
	case rex.OpRepeat:
		sub := n.Subs[0]
		if sub.Op != rex.OpLit {
			return out, false
		}
		if n.Max == rex.Inf {
			// A candidate middle: any byte class, unbounded.
			return append(out, part{mid: sub.Set, isMid: true, minMid: n.Min}), true
		}
		// Exact small repetition of a single literal byte expands into the
		// literal spine, mirroring loop expansion.
		b, single := sub.Set.IsSingle()
		if !single || n.Min != n.Max || n.Max > maxExpand {
			return out, false
		}
		for i := 0; i < n.Min; i++ {
			out = append(out, part{lit: b, isLit: true})
		}
		return out, true
	default:
		return out, false
	}
}

// Classify reduces a rule AST to its execution shape. Rules outside the
// literal and anchored-literal grammars come back KindGeneral.
func Classify(ast *rex.Node) Shape {
	parts, ok := flatten(ast, nil)
	if !ok {
		return Shape{}
	}
	sh := Shape{}
	// Split the spine: [^]? pre... [mid]? suf... [$]?
	i := 0
	if i < len(parts) && parts[i].anchor == '^' {
		sh.AnchorStart = true
		i++
	}
	for i < len(parts) && parts[i].isLit {
		sh.Prefix = append(sh.Prefix, parts[i].lit)
		i++
	}
	if i < len(parts) && parts[i].isMid {
		sh.HasMiddle = true
		sh.MinMiddle = parts[i].minMid
		comp := parts[i].mid.Complement()
		if comp.Len() > bytescan.MaxNeedles {
			return Shape{}
		}
		sh.MiddleExcluded = comp.Bytes()
		i++
	}
	for i < len(parts) && parts[i].isLit {
		sh.Suffix = append(sh.Suffix, parts[i].lit)
		i++
	}
	if i < len(parts) && parts[i].anchor == '$' {
		sh.AnchorEnd = true
		i++
	}
	if i != len(parts) {
		// Leftover structure (second middle, interior anchor, ...).
		return Shape{}
	}

	switch {
	case !sh.AnchorStart && !sh.AnchorEnd && !sh.HasMiddle:
		// Unanchored literal. (Suffix is necessarily empty here.)
		if len(sh.Prefix) == 0 {
			return Shape{}
		}
		return Shape{Kind: KindLiteral, Literal: sh.Prefix}
	case sh.AnchorStart && sh.AnchorEnd:
		// `^lit$` or `^prefix<mid>suffix$`. A fully empty shape (`^$`)
		// could only match the empty input, on which the engines report
		// nothing (matches fire on byte arrivals only) — not worth a class.
		if len(sh.Prefix)+len(sh.Suffix)+boolInt(sh.HasMiddle) == 0 {
			return Shape{}
		}
		sh.Kind = KindAnchored
		return sh
	case sh.AnchorStart && !sh.AnchorEnd && !sh.HasMiddle && len(sh.Prefix) > 0:
		// `^lit`: one event at len(lit)-1 iff the input starts with lit.
		// (With a trailing middle but no $ the event multiplicity depends
		// on KeepOnMatch, so that form stays general.)
		sh.Kind = KindAnchored
		return sh
	case !sh.AnchorStart && sh.AnchorEnd && !sh.HasMiddle:
		// `lit$`: one event at the last byte iff the input ends with lit.
		// The spine put the bytes in Prefix; they are really a suffix.
		if len(sh.Prefix) == 0 {
			return Shape{}
		}
		sh.Suffix, sh.Prefix = sh.Prefix, nil
		sh.Kind = KindAnchored
		return sh
	default:
		return Shape{}
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
