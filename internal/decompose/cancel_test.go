package decompose

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/engine"
)

// TestScanWithCancellation verifies the baseline honors engine checkpoints:
// a checkpoint that fails mid-scan stops the run promptly and surfaces the
// error, so a hostile input cannot wedge an experiment.
func TestScanWithCancellation(t *testing.T) {
	m, err := New([]string{"needle[a-z]+x", "ab"}, false)
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte("needleabab"), 8<<10) // ~80 KiB, many checkpoints

	boom := errors.New("cancelled")
	calls := 0
	cfg := engine.Config{Checkpoint: func() error {
		calls++
		if calls > 2 {
			return boom
		}
		return nil
	}}
	st, err := m.ScanWith(input, cfg, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("ScanWith error = %v, want the checkpoint error", err)
	}
	if calls > 8 {
		t.Fatalf("checkpoint polled %d times after failing; scan did not stop promptly", calls)
	}
	// The cancelled scan must not have completed: a full run of this input
	// reports matches for every "ab"; the partial one stops far short.
	full := m.Scan(input, nil)
	if st.Matches >= full.Matches {
		t.Fatalf("cancelled scan reported %d matches, full scan %d — cancellation did nothing",
			st.Matches, full.Matches)
	}
}

// TestScanWithHealthyCheckpoint verifies a passing checkpoint leaves the
// results identical to a plain Scan.
func TestScanWithHealthyCheckpoint(t *testing.T) {
	m, err := New([]string{"needle", "ab+c"}, false)
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte("xxneedleyyabbc"), 1000)
	want := m.Scan(input, nil)
	got, err := m.ScanWith(input, engine.Config{Checkpoint: func() error { return nil }}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("checked scan stats %+v, plain scan %+v", got, want)
	}
}
