package decompose

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/mfsa"
	"repro/internal/nfa"
	"repro/internal/rex"
)

func TestFactorExtraction(t *testing.T) {
	cases := []struct {
		pattern string
		want    string
		ok      bool
	}{
		{"GET /admin", "GET /admin", true},
		{"abc|def", "", false},        // alternation: no common factor
		{"(abc|def)ghi", "ghi", true}, // mandatory suffix survives
		{"xy[0-9]longest", "longest", true},
		{"a*needle", "needle", true},
		{"nee(d|D)le", "nee", true},
		{"ab", "", false}, // below MinFactorLen
		{"x{5}", "xxxxx", true},
		{"(ab){3}", "ababab", true},
		{"(ab){2,5}", "abab", true}, // min copies guaranteed contiguous
		{"a?bcd", "bcd", true},
		{"^prefix", "prefix", true},
		{"[abc]+", "", false},
		{"lit1.*lit2extra", "lit2extra", true},
	}
	for _, c := range cases {
		ast := rex.MustParse(c.pattern)
		got, ok := Factor(ast, MinFactorLen)
		if ok != c.ok || got != c.want {
			t.Errorf("Factor(%q) = %q,%v want %q,%v", c.pattern, got, ok, c.want, c.ok)
		}
	}
}

func TestFactorIsRequired(t *testing.T) {
	// Property: every accepted sample of the rule contains its factor.
	r := rand.New(rand.NewSource(71))
	for _, pattern := range []string{
		"GET /[a-z]{1,8}index", "a+needleb*", "(x|y)required(p|q)",
		"pre{2,4}post", "lit1.*lit2",
	} {
		ast := rex.MustParse(pattern)
		f, ok := Factor(ast, 1)
		if !ok {
			t.Fatalf("%s: no factor", pattern)
		}
		for k := 0; k < 40; k++ {
			sample := dataset.SampleString(r, ast)
			if !contains(sample, f) {
				t.Fatalf("%s: sample %q lacks factor %q", pattern, sample, f)
			}
		}
	}
}

func contains(hay []byte, needle string) bool {
	for i := 0; i+len(needle) <= len(hay); i++ {
		if string(hay[i:i+len(needle)]) == needle {
			return true
		}
	}
	return false
}

func TestMatcherEquivalence(t *testing.T) {
	patterns := []string{
		"GET /admin", "cmd[0-9]exe", "abc|xyz", "no(d|D)e", "a+filter",
	}
	m, err := New(patterns, false)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []string{
		"GET /admin and cmd7exe",
		"nothing relevant at all",
		"abc then aafilter",
		"noDe xyz",
		"",
	}
	for _, in := range inputs {
		type ev struct{ rule, end int }
		var got []ev
		m.Scan([]byte(in), func(rule, end int) { got = append(got, ev{rule, end}) })
		// Reference: run every rule unconditionally.
		var want []ev
		for rule, pat := range patterns {
			a, err := nfa.Compile(pat)
			if err != nil {
				t.Fatal(err)
			}
			z, err := mfsa.Merge([]*nfa.NFA{a})
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range engine.Matches(engine.NewProgram(z), []byte(in), engine.Config{}) {
				want = append(want, ev{rule, e.End})
			}
		}
		sortEvs := func(es []ev) {
			sort.Slice(es, func(i, j int) bool {
				if es[i].rule != es[j].rule {
					return es[i].rule < es[j].rule
				}
				return es[i].end < es[j].end
			})
		}
		sortEvs(got)
		sortEvs(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("input %q: %v want %v", in, got, want)
		}
	}
}

func TestMatcherSkipsUntriggered(t *testing.T) {
	patterns := []string{"needleone", "needletwo", "needlethree"}
	m, err := New(patterns, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFilterable() != 3 {
		t.Fatalf("filterable=%d", m.NumFilterable())
	}
	st := m.Scan([]byte("entirely unrelated haystack content"), nil)
	if st.Skipped != 3 || st.Triggered != 0 || st.Matches != 0 {
		t.Fatalf("stats %+v", st)
	}
	st = m.Scan([]byte("xx needletwo xx"), nil)
	if st.Triggered != 1 || st.Skipped != 2 || st.Matches != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMatcherUnfilterableAlwaysRuns(t *testing.T) {
	m, err := New([]string{"[0-9]+"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFilterable() != 0 {
		t.Fatal("class-only rule reported filterable")
	}
	st := m.Scan([]byte("a7b"), nil)
	if st.Matches != 1 {
		t.Fatalf("matches=%d", st.Matches)
	}
}

func TestNewRejectsBadRule(t *testing.T) {
	if _, err := New([]string{"("}, false); err == nil {
		t.Fatal("bad rule accepted")
	}
}

func BenchmarkDecomposedVsFull(b *testing.B) {
	s, _ := dataset.ByAbbr("BRO")
	patterns := s.Patterns()[:60]
	in := make([]byte, 64<<10)
	r := rand.New(rand.NewSource(8))
	for i := range in {
		in[i] = byte('A' + r.Intn(26)) // uppercase noise: factors rarely hit
	}
	b.Run("decomposed", func(b *testing.B) {
		m, err := New(patterns, false)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(in)))
		for i := 0; i < b.N; i++ {
			m.Scan(in, nil)
		}
	})
	b.Run("imfant-all", func(b *testing.B) {
		fsas := make([]*nfa.NFA, len(patterns))
		for i, pat := range patterns {
			n, err := nfa.Compile(pat)
			if err != nil {
				b.Fatal(err)
			}
			fsas[i] = n
		}
		z, err := mfsa.Merge(fsas)
		if err != nil {
			b.Fatal(err)
		}
		runner := engine.NewRunner(engine.NewProgram(z))
		b.SetBytes(int64(len(in)))
		for i := 0; i < b.N; i++ {
			runner.Run(in, engine.Config{})
		}
	})
}
