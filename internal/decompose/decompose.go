// Package decompose implements the regex-decomposition baseline of the
// paper's related work (§I, §VII — Wang et al.'s Hyperscan [6]): each RE is
// analyzed for a required literal factor, a string that must occur in every
// match; the factors of the whole ruleset are matched in one pass with an
// Aho–Corasick automaton, and the full automaton of a rule is executed only
// when its factor actually appears in the input ("delaying FSA execution
// until the string matching analysis is required"). Rules without a usable
// factor always run their automaton.
package decompose

import (
	"fmt"

	"repro/internal/ahocorasick"
	"repro/internal/engine"
	"repro/internal/mfsa"
	"repro/internal/nfa"
	"repro/internal/rex"
)

// Factor returns the longest literal string guaranteed to occur in every
// match of the expression, or ok=false when no factor of at least minLen
// bytes exists. Only the mandatory concatenation spine contributes:
// alternations, optional parts (min-0 repeats) and character classes break
// factors, while counted repeats of literals extend them.
func Factor(ast *rex.Node, minLen int) (string, bool) {
	best := ""
	cur := make([]byte, 0, 32)
	flush := func() {
		if len(cur) > len(best) {
			best = string(cur)
		}
		cur = cur[:0]
	}
	var walk func(n *rex.Node)
	walk = func(n *rex.Node) {
		switch n.Op {
		case rex.OpLit:
			if b, ok := n.Set.IsSingle(); ok {
				cur = append(cur, b)
				return
			}
			flush()
		case rex.OpConcat:
			for _, s := range n.Subs {
				walk(s)
			}
		case rex.OpRepeat:
			if n.Min == 0 {
				flush()
				return
			}
			// The body occurs at least Min times consecutively; a
			// literal body extends the run Min times, then breaks
			// the run unless the repetition is exact.
			if lit, ok := literalString(n.Subs[0]); ok {
				for i := 0; i < n.Min; i++ {
					cur = append(cur, lit...)
				}
				if n.Max != n.Min {
					flush()
				}
				return
			}
			// Non-literal mandatory body: contributes its own
			// factors but breaks the surrounding run.
			flush()
			walk(n.Subs[0])
			flush()
		case rex.OpAlt, rex.OpAnchor, rex.OpEmpty:
			flush()
		}
	}
	walk(ast)
	flush()
	if len(best) >= minLen {
		return best, true
	}
	return "", false
}

func literalString(n *rex.Node) (string, bool) {
	switch n.Op {
	case rex.OpLit:
		if b, ok := n.Set.IsSingle(); ok {
			return string(b), true
		}
	case rex.OpConcat:
		out := make([]byte, 0, len(n.Subs))
		for _, s := range n.Subs {
			b, ok := s.Set.IsSingle()
			if s.Op != rex.OpLit || !ok {
				return "", false
			}
			out = append(out, b)
		}
		return string(out), true
	}
	return "", false
}

// Matcher is a decomposed ruleset: an Aho–Corasick prefilter over the
// extracted factors plus one compiled automaton per rule for confirmation.
type Matcher struct {
	patterns []string
	programs []*engine.Program
	// factorOf[rule] is the prefilter pattern index, or -1 when the rule
	// has no usable factor and always runs.
	factorOf []int
	ac       *ahocorasick.Matcher
	// alwaysRun lists rules without factors.
	alwaysRun []int
	keep      bool
}

// MinFactorLen is the shortest literal factor worth prefiltering; shorter
// strings hit too often to skip any work.
const MinFactorLen = 3

// New compiles a decomposed matcher. keepOnMatch selects the engine's match
// semantics, as in engine.Config.
func New(patterns []string, keepOnMatch bool) (*Matcher, error) {
	m := &Matcher{
		patterns: patterns,
		programs: make([]*engine.Program, len(patterns)),
		factorOf: make([]int, len(patterns)),
		keep:     keepOnMatch,
	}
	var factors [][]byte
	for i, pat := range patterns {
		ast, err := rex.Parse(pat)
		if err != nil {
			return nil, fmt.Errorf("decompose: rule %d: %w", i, err)
		}
		a, err := nfa.Build(ast)
		if err != nil {
			return nil, fmt.Errorf("decompose: rule %d: %w", i, err)
		}
		a.ID = i
		a.Pattern = pat
		if err := nfa.Optimize(a); err != nil {
			return nil, fmt.Errorf("decompose: rule %d: %w", i, err)
		}
		z, err := mfsa.Merge([]*nfa.NFA{a})
		if err != nil {
			return nil, err
		}
		m.programs[i] = engine.NewProgram(z)
		if f, ok := Factor(ast, MinFactorLen); ok {
			m.factorOf[i] = len(factors)
			factors = append(factors, []byte(f))
		} else {
			m.factorOf[i] = -1
			m.alwaysRun = append(m.alwaysRun, i)
		}
	}
	if len(factors) > 0 {
		ac, err := ahocorasick.New(factors)
		if err != nil {
			return nil, err
		}
		m.ac = ac
	}
	return m, nil
}

// NumFilterable returns how many rules carry a prefilter factor.
func (m *Matcher) NumFilterable() int {
	return len(m.patterns) - len(m.alwaysRun)
}

// Stats of one decomposed scan.
type Stats struct {
	// Matches is the total engine match-event count.
	Matches int64
	// Triggered is the number of filterable rules whose factor occurred
	// (and whose automaton therefore ran).
	Triggered int
	// Skipped is the number of filterable rules whose automaton was
	// skipped entirely.
	Skipped int
}

// Scan prefilters input and runs only the triggered (or unfilterable)
// rules' automata over it.
func (m *Matcher) Scan(input []byte, onMatch func(rule, end int)) Stats {
	var st Stats
	run := func(rule int) {
		cfg := engine.Config{KeepOnMatch: m.keep}
		if onMatch != nil {
			cfg.OnMatch = func(_, end int) { onMatch(rule, end) }
		}
		st.Matches += engine.Run(m.programs[rule], input, cfg).Matches
	}
	var hits []bool
	if m.ac != nil {
		hits = m.ac.Hits(input)
	}
	for rule, fi := range m.factorOf {
		switch {
		case fi < 0:
			run(rule)
		case hits[fi]:
			st.Triggered++
			run(rule)
		default:
			st.Skipped++
		}
	}
	return st
}
