// Package decompose implements the regex-decomposition baseline of the
// paper's related work (§I, §VII — Wang et al.'s Hyperscan [6]): each RE is
// analyzed for a required literal factor, a string that must occur in every
// match; the factors of the whole ruleset are matched in one pass with an
// Aho–Corasick automaton, and the full automaton of a rule is executed only
// when its factor actually appears in the input ("delaying FSA execution
// until the string matching analysis is required"). Rules without a usable
// factor always run their automaton.
package decompose

import (
	"fmt"

	"repro/internal/ahocorasick"
	"repro/internal/engine"
	"repro/internal/factor"
	"repro/internal/mfsa"
	"repro/internal/nfa"
	"repro/internal/rex"
)

// Factor returns the longest literal string guaranteed to occur in every
// match of the expression, or ok=false when no factor of at least minLen
// bytes exists (see factor.Extract, which holds the implementation so the
// compilation pipeline can use it without importing the engine).
func Factor(ast *rex.Node, minLen int) (string, bool) {
	return factor.Extract(ast, minLen)
}

// Matcher is a decomposed ruleset: an Aho–Corasick prefilter over the
// extracted factors plus one compiled automaton per rule for confirmation.
type Matcher struct {
	patterns []string
	programs []*engine.Program
	// factorOf[rule] is the prefilter pattern index, or -1 when the rule
	// has no usable factor and always runs.
	factorOf []int
	ac       *ahocorasick.Matcher
	// alwaysRun lists rules without factors.
	alwaysRun []int
	keep      bool
}

// MinFactorLen is the shortest literal factor worth prefiltering; shorter
// strings hit too often to skip any work.
const MinFactorLen = factor.MinLen

// New compiles a decomposed matcher. keepOnMatch selects the engine's match
// semantics, as in engine.Config.
func New(patterns []string, keepOnMatch bool) (*Matcher, error) {
	m := &Matcher{
		patterns: patterns,
		programs: make([]*engine.Program, len(patterns)),
		factorOf: make([]int, len(patterns)),
		keep:     keepOnMatch,
	}
	var factors [][]byte
	for i, pat := range patterns {
		ast, err := rex.Parse(pat)
		if err != nil {
			return nil, fmt.Errorf("decompose: rule %d: %w", i, err)
		}
		a, err := nfa.Build(ast)
		if err != nil {
			return nil, fmt.Errorf("decompose: rule %d: %w", i, err)
		}
		a.ID = i
		a.Pattern = pat
		if err := nfa.Optimize(a); err != nil {
			return nil, fmt.Errorf("decompose: rule %d: %w", i, err)
		}
		z, err := mfsa.Merge([]*nfa.NFA{a})
		if err != nil {
			return nil, err
		}
		m.programs[i] = engine.NewProgram(z)
		if f, ok := Factor(ast, MinFactorLen); ok {
			m.factorOf[i] = len(factors)
			factors = append(factors, []byte(f))
		} else {
			m.factorOf[i] = -1
			m.alwaysRun = append(m.alwaysRun, i)
		}
	}
	if len(factors) > 0 {
		ac, err := ahocorasick.New(factors)
		if err != nil {
			return nil, err
		}
		m.ac = ac
	}
	return m, nil
}

// NumFilterable returns how many rules carry a prefilter factor.
func (m *Matcher) NumFilterable() int {
	return len(m.patterns) - len(m.alwaysRun)
}

// Stats of one decomposed scan.
type Stats struct {
	// Matches is the total engine match-event count.
	Matches int64
	// Triggered is the number of filterable rules whose factor occurred
	// (and whose automaton therefore ran).
	Triggered int
	// Skipped is the number of filterable rules whose automaton was
	// skipped entirely.
	Skipped int
}

// Scan prefilters input and runs only the triggered (or unfilterable)
// rules' automata over it.
func (m *Matcher) Scan(input []byte, onMatch func(rule, end int)) Stats {
	st, _ := m.ScanWith(input, engine.Config{}, onMatch)
	return st
}

// ScanWith is Scan under an execution Config: the Checkpoint (and
// CheckpointEvery) fields are threaded through both the Aho–Corasick
// prefilter sweep and every confirming automaton run, so a hostile input
// cannot wedge the baseline — the scan stops at the next checkpoint and
// returns the checkpoint's error together with the partial stats.
// cfg.KeepOnMatch and cfg.OnMatch are owned by the Matcher and ignored.
func (m *Matcher) ScanWith(input []byte, cfg engine.Config, onMatch func(rule, end int)) (Stats, error) {
	var st Stats
	cfg.KeepOnMatch = m.keep
	var hits []bool
	if m.ac != nil {
		sw := m.ac.NewSweeper()
		every := cfg.CheckpointEvery
		if every <= 0 {
			every = engine.DefaultCheckpointEvery
		}
		for off := 0; off < len(input) && !sw.Done(); off += every {
			if cfg.Checkpoint != nil {
				if err := cfg.Checkpoint(); err != nil {
					return st, err
				}
			}
			end := off + every
			if end > len(input) {
				end = len(input)
			}
			sw.Sweep(input[off:end])
		}
		hits = sw.Hits()
	}
	run := func(rule int) error {
		rcfg := cfg
		rcfg.OnMatch = nil
		if onMatch != nil {
			rcfg.OnMatch = func(_, end int) { onMatch(rule, end) }
		}
		runner := engine.NewRunner(m.programs[rule])
		st.Matches += runner.Run(input, rcfg).Matches
		return runner.Err()
	}
	for rule, fi := range m.factorOf {
		switch {
		case fi < 0:
			if err := run(rule); err != nil {
				return st, err
			}
		case hits[fi]:
			st.Triggered++
			if err := run(rule); err != nil {
				return st, err
			}
		default:
			st.Skipped++
		}
	}
	return st, nil
}
