// Package conformance differentially tests every matcher implementation in
// the repository against the same random rulesets and inputs: the iMFAnt
// bitset engine (1-word and multi-word paths), the 2-stride engine, the
// chunked/streaming path, the subset-construction DFA, the D²FA, the
// decomposition prefilter matcher, and the naive reference oracle. Any
// disagreement on the distinct (rule, end-offset) match sets is a bug in at
// least one of them.
package conformance

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/decompose"
	"repro/internal/dfa"
	"repro/internal/engine"
	"repro/internal/lazydfa"
	"repro/internal/mfsa"
	"repro/internal/nfa"
)

// ends normalizes a match-event list to sorted distinct end offsets per
// rule, with empty (not nil) slices.
func norm(out [][]int) [][]int {
	for i := range out {
		if out[i] == nil {
			out[i] = []int{}
		}
	}
	return out
}

func randPattern(r *rand.Rand) string {
	frags := []string{"a", "b", "c", "ab", "bc", "ca", "a[bc]", "(ab|ba)", "b+", "c?", "a{2,3}", "[abc]c"}
	s := ""
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		s += frags[r.Intn(len(frags))]
	}
	return s
}

func TestQuickAllEnginesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	f := func() bool {
		m := 1 + r.Intn(5)
		patterns := make([]string, m)
		fsas := make([]*nfa.NFA, m)
		for i := range patterns {
			patterns[i] = randPattern(r)
			n, err := nfa.Compile(patterns[i])
			if err != nil {
				return false
			}
			n.ID = i
			fsas[i] = n
		}
		z, err := mfsa.Merge(fsas)
		if err != nil {
			return false
		}
		in := make([]byte, r.Intn(40))
		for i := range in {
			in[i] = byte('a' + r.Intn(3))
		}
		cfg := engine.Config{KeepOnMatch: true}

		// 1. Reference oracle.
		want := norm(engine.ReferenceScanAll(fsas, in, true))

		results := map[string][][]int{}

		// 2. iMFAnt (merged).
		p := engine.NewProgram(z)
		results["imfant"] = norm(engine.DistinctEnds(engine.Matches(p, in, cfg), m))

		// 3. iMFAnt chunked.
		{
			var events []engine.MatchEvent
			c := cfg
			c.OnMatch = func(fsa, end int) { events = append(events, engine.MatchEvent{FSA: fsa, End: end}) }
			runner := engine.NewRunner(p)
			runner.Begin(c)
			for i := 0; i < len(in); i += 3 {
				end := i + 3
				if end > len(in) {
					end = len(in)
				}
				runner.Feed(in[i:end], end == len(in))
			}
			if len(in) == 0 {
				runner.Feed(nil, true)
			}
			runner.End()
			results["chunked"] = norm(engine.DistinctEnds(events, m))
		}

		// 4. 2-stride.
		if sp, err := engine.NewStrideProgram(z); err == nil {
			var events []engine.MatchEvent
			c := cfg
			c.OnMatch = func(fsa, end int) { events = append(events, engine.MatchEvent{FSA: fsa, End: end}) }
			engine.NewStrideRunner(sp).Run(in, c)
			results["stride2"] = norm(engine.DistinctEnds(events, m))
		}

		// 5. DFA and D²FA.
		if d, err := dfa.FromNFAs(fsas, 1<<14); err == nil {
			results["dfa"] = norm(dfaEnds(d.Match, in, m))
			c := dfa.Compress(d)
			results["d2fa"] = norm(dfaEnds(c.Match, in, m))
		}

		// 6. Lazy DFA: warm default cache, plus a tiny cache that forces
		// flushes and the iMFAnt fallback on nearly every input.
		{
			lm := lazydfa.New(p)
			results["lazydfa"] = norm(engine.DistinctEnds(
				lazydfa.Matches(lm, in, lazydfa.Config{KeepOnMatch: true}), m))
			results["lazydfa-tiny"] = norm(engine.DistinctEnds(
				lazydfa.Matches(lm, in, lazydfa.Config{KeepOnMatch: true, MaxStates: 4, MaxFlushes: 1}), m))
		}

		// 7. Decomposition matcher.
		if dm, err := decompose.New(patterns, true); err == nil {
			sets := make([]map[int]struct{}, m)
			for i := range sets {
				sets[i] = map[int]struct{}{}
			}
			dm.Scan(in, func(rule, end int) { sets[rule][end] = struct{}{} })
			out := make([][]int, m)
			for i, s := range sets {
				for e := range s {
					out[i] = append(out[i], e)
				}
				sort.Ints(out[i])
			}
			results["decompose"] = norm(out)
		}

		for name, got := range results {
			if !reflect.DeepEqual(got, want) {
				t.Logf("%s disagrees with oracle\npatterns=%v input=%q\n%s=%v\noracle=%v",
					name, patterns, in, name, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func dfaEnds(match func([]byte, func(int, int)) int64, in []byte, m int) [][]int {
	sets := make([]map[int]struct{}, m)
	for i := range sets {
		sets[i] = map[int]struct{}{}
	}
	match(in, func(rule, end int) { sets[rule][end] = struct{}{} })
	out := make([][]int, m)
	for i, s := range sets {
		for e := range s {
			out[i] = append(out[i], e)
		}
		sort.Ints(out[i])
	}
	return out
}

// TestQuickPopSemanticsEnginesAgree covers the Eq. 5 pop mode for the
// engines that implement it (DFA-family and decomposition use keep
// semantics by construction).
func TestQuickPopSemanticsEnginesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(2025))
	f := func() bool {
		m := 1 + r.Intn(4)
		patterns := make([]string, m)
		fsas := make([]*nfa.NFA, m)
		for i := range patterns {
			patterns[i] = randPattern(r)
			n, err := nfa.Compile(patterns[i])
			if err != nil {
				return false
			}
			fsas[i] = n
		}
		z, err := mfsa.Merge(fsas)
		if err != nil {
			return false
		}
		in := make([]byte, r.Intn(32))
		for i := range in {
			in[i] = byte('a' + r.Intn(3))
		}
		cfg := engine.Config{}
		want := norm(engine.ReferenceScanAll(fsas, in, false))
		p := engine.NewProgram(z)
		if got := norm(engine.DistinctEnds(engine.Matches(p, in, cfg), m)); !reflect.DeepEqual(got, want) {
			t.Logf("imfant pop: patterns=%v input=%q %v want %v", patterns, in, got, want)
			return false
		}
		if got := norm(engine.DistinctEnds(lazydfa.Matches(lazydfa.New(p), in, lazydfa.Config{}), m)); !reflect.DeepEqual(got, want) {
			t.Logf("lazydfa pop: patterns=%v input=%q %v want %v", patterns, in, got, want)
			return false
		}
		sp, err := engine.NewStrideProgram(z)
		if err != nil {
			return true
		}
		var events []engine.MatchEvent
		c := cfg
		c.OnMatch = func(fsa, end int) { events = append(events, engine.MatchEvent{FSA: fsa, End: end}) }
		engine.NewStrideRunner(sp).Run(in, c)
		if got := norm(engine.DistinctEnds(events, m)); !reflect.DeepEqual(got, want) {
			t.Logf("stride pop: patterns=%v input=%q %v want %v", patterns, in, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}
