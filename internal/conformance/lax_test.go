package conformance

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/pipeline"
)

// TestQuickLaxCompileAgrees is the fault-isolation differential: random
// rulesets are salted with hostile rules (syntax errors, budget blowups)
// and compiled in lax mode; the surviving rules must produce exactly the
// match events of compiling them alone — same automata, same (rule, end)
// sets modulo the original ruleset indices.
func TestQuickLaxCompileAgrees(t *testing.T) {
	r := rand.New(rand.NewSource(2025))
	hostile := []string{
		"(",
		"[",
		"a{2,1}",
		"a{1,100000}",
		"(a{500}){500}",
		strings.Repeat("(", 300) + "a",
	}
	f := func() bool {
		m := 1 + r.Intn(5)
		good := make([]string, m)
		for i := range good {
			good[i] = randPattern(r)
		}
		// Interleave hostile rules at random positions, remembering where
		// each good rule lands in the mixed ruleset.
		var mixed []string
		origIdx := make([]int, m)
		for i, g := range good {
			for r.Intn(2) == 0 {
				mixed = append(mixed, hostile[r.Intn(len(hostile))])
			}
			origIdx[i] = len(mixed)
			mixed = append(mixed, g)
		}

		laxOut, ruleErrs, err := pipeline.Run(pipeline.Request{Patterns: mixed, Lax: true})
		if err != nil {
			return false
		}
		if len(ruleErrs) != len(mixed)-m {
			t.Logf("mixed=%v: want %d rule errors, got %v", mixed, len(mixed)-m, ruleErrs)
			return false
		}
		aloneOut, _, err := pipeline.Run(pipeline.Request{Patterns: good})
		if err != nil {
			return false
		}

		in := make([]byte, r.Intn(40))
		for i := range in {
			in[i] = byte('a' + r.Intn(3))
		}
		cfg := engine.Config{KeepOnMatch: true}

		// Collect distinct (rule, end) events keyed by original index.
		events := func(out *pipeline.Output, remap []int) map[[2]int]struct{} {
			set := map[[2]int]struct{}{}
			for _, z := range out.MFSAs {
				p := engine.NewProgram(z)
				rules := p.Rules()
				for _, ev := range engine.Matches(p, in, cfg) {
					rule := rules[ev.FSA].RuleID
					if remap != nil {
						rule = remap[rule]
					}
					set[[2]int{rule, ev.End}] = struct{}{}
				}
			}
			return set
		}
		laxEvents := events(laxOut, nil)
		aloneEvents := events(aloneOut, origIdx)
		if !reflect.DeepEqual(laxEvents, aloneEvents) {
			t.Logf("lax survivors diverge\nmixed=%v input=%q\nlax=%v\nalone=%v",
				mixed, in, laxEvents, aloneEvents)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
