package conformance

import (
	"math/rand"
	"os"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/lazydfa"
	"repro/internal/mfsa"
	"repro/internal/nfa"
	"repro/internal/snort"
)

// TestSnortRulesetLazyConformance compiles the snort-derived web-attacks
// ruleset and checks that the lazy-DFA engine — at the default cache size
// and at caps small enough to force flushing and the iMFAnt fallback —
// reports exactly the same distinct (rule, end) sets as the iMFAnt engine
// and the reference oracle, over inputs seeded with real rule fragments.
func TestSnortRulesetLazyConformance(t *testing.T) {
	f, err := os.Open("../snort/testdata/web-attacks.rules")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rules, _, err := snort.ParseRules(f)
	if err != nil {
		t.Fatal(err)
	}
	var fsas []*nfa.NFA
	var patterns []string
	for _, ru := range rules {
		n, err := nfa.Compile(ru.Pattern)
		if err != nil {
			continue // unsupported PCRE constructs: out of scope here
		}
		n.ID = len(fsas)
		fsas = append(fsas, n)
		patterns = append(patterns, ru.Pattern)
	}
	if len(fsas) < 10 {
		t.Fatalf("too few compilable snort rules: %d", len(fsas))
	}
	z, err := mfsa.Merge(fsas)
	if err != nil {
		t.Fatal(err)
	}
	p := engine.NewProgram(z)
	lm := lazydfa.New(p)
	m := len(fsas)

	// Inputs: benign HTTP-ish noise salted with literal fragments lifted
	// from the patterns themselves, so a fair share of rules fire.
	r := rand.New(rand.NewSource(42))
	frags := []string{"/etc/passwd", "cmd.exe", "<script>", "../..", "id=", "GET /index.html HTTP/1.0\r\n"}
	for _, pat := range patterns {
		lit := ""
		for _, c := range pat {
			if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '/' || c == '.' || c == '_' {
				lit += string(c)
			} else if len(lit) >= 4 {
				break
			} else {
				lit = ""
			}
		}
		if len(lit) >= 4 {
			frags = append(frags, lit)
		}
	}
	for trial := 0; trial < 25; trial++ {
		var in []byte
		for len(in) < 200+r.Intn(400) {
			if r.Intn(2) == 0 {
				in = append(in, frags[r.Intn(len(frags))]...)
			} else {
				for i, n := 0, 1+r.Intn(8); i < n; i++ {
					in = append(in, byte(' '+r.Intn(95)))
				}
			}
		}
		want := norm(engine.ReferenceScanAll(fsas, in, true))
		got := norm(engine.DistinctEnds(engine.Matches(p, in, engine.Config{KeepOnMatch: true}), m))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: imfant disagrees with oracle on %q", trial, in)
		}
		for _, cfg := range []lazydfa.Config{
			{KeepOnMatch: true},
			{KeepOnMatch: true, MaxStates: 16},
			{KeepOnMatch: true, MaxStates: 4, MaxFlushes: 1},
			{KeepOnMatch: true, MaxStates: 4, MaxFlushes: -1},
		} {
			lg := norm(engine.DistinctEnds(lazydfa.Matches(lm, in, cfg), m))
			if !reflect.DeepEqual(lg, want) {
				t.Fatalf("trial %d cfg=%+v: lazydfa disagrees with oracle on %q:\ngot  %v\nwant %v",
					trial, cfg, in, lg, want)
			}
		}
	}
}
