package pipeline

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/mfsa"
)

// TestFullDatasetValidation is the heavyweight structural check: every
// synthetic dataset is compiled end-to-end at several merging factors and
// every resulting MFSA is validated against its source FSAs (isomorphic
// per-rule embedding, exact initial/final masks). Run with -short to skip.
func TestFullDatasetValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-dataset validation is slow")
	}
	for _, s := range dataset.Datasets() {
		pats := s.Patterns()
		for _, m := range []int{10, 0} {
			out, err := Compile(pats, m, nil)
			if err != nil {
				t.Fatalf("%s M=%d: %v", s.Abbr, m, err)
			}
			groupSize := m
			if groupSize <= 0 {
				groupSize = len(pats)
			}
			for i, z := range out.MFSAs {
				lo := i * groupSize
				hi := lo + z.NumFSAs()
				if err := mfsa.Validate(z, out.FSAs[lo:hi]); err != nil {
					t.Fatalf("%s M=%d group %d: %v", s.Abbr, m, i, err)
				}
			}
		}
	}
}

// TestFullDatasetMatchParity cross-checks, for a slice of each dataset,
// that the merged MFSA and the per-rule automata report identical distinct
// match offsets on a planted stream — the end-to-end version of the
// merged-equals-unmerged property.
func TestFullDatasetMatchParity(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, s := range dataset.Datasets() {
		pats := s.Patterns()[:25]
		in := s.Stream(8192, 256)
		merged, err := Compile(pats, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		p := engine.NewProgram(merged.MFSAs[0])
		got := engine.DistinctEnds(engine.Matches(p, in, engine.Config{}), len(pats))
		want := engine.ReferenceScanAll(merged.FSAs, in, false)
		for j := range pats {
			w := want[j]
			g := got[j]
			if len(w) != len(g) {
				t.Fatalf("%s rule %d (%s): %d vs %d match offsets", s.Abbr, j, pats[j], len(g), len(w))
			}
			for k := range w {
				if w[k] != g[k] {
					t.Fatalf("%s rule %d: offset %d vs %d", s.Abbr, j, g[k], w[k])
				}
			}
		}
	}
}
