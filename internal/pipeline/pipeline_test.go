package pipeline

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/anml"
	"repro/internal/budget"
	"repro/internal/dataset"
	"repro/internal/mfsa"
)

func TestCompileEndToEnd(t *testing.T) {
	patterns := []string{"GET /a", "GET /b", "POST /c", "x[yz]+"}
	out, err := Compile(patterns, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.FSAs) != 4 {
		t.Fatalf("FSAs=%d", len(out.FSAs))
	}
	if len(out.MFSAs) != 2 {
		t.Fatalf("MFSAs=%d, want ⌈4/2⌉=2", len(out.MFSAs))
	}
	for i, z := range out.MFSAs {
		lo, hi := i*2, i*2+2
		if err := mfsa.Validate(z, out.FSAs[lo:hi]); err != nil {
			t.Fatalf("group %d: %v", i, err)
		}
	}
	if out.ANMLBytes == 0 {
		t.Fatal("no ANML produced")
	}
	if out.Times.Total() <= 0 {
		t.Fatal("no time recorded")
	}
}

func TestCompileMAll(t *testing.T) {
	patterns := []string{"ab", "ac", "ad"}
	out, err := Compile(patterns, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.MFSAs) != 1 || out.MFSAs[0].NumFSAs() != 3 {
		t.Fatalf("M=all: %d MFSAs, R=%d", len(out.MFSAs), out.MFSAs[0].NumFSAs())
	}
}

func TestCompileSinkReceivesANML(t *testing.T) {
	var buf bytes.Buffer
	out, err := Compile([]string{"ab", "cd"}, 1, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() != out.ANMLBytes {
		t.Fatalf("sink has %d bytes, counted %d", buf.Len(), out.ANMLBytes)
	}
	// Two MFSAs → two concatenated documents; the first must parse.
	dec := strings.Index(buf.String()[1:], "<?xml")
	if dec < 0 {
		t.Fatal("expected two XML documents")
	}
	z, err := anml.Read(strings.NewReader(buf.String()[:dec+1]))
	if err != nil {
		t.Fatal(err)
	}
	if z.NumFSAs() != 1 {
		t.Fatalf("R=%d", z.NumFSAs())
	}
}

func TestCompileBadRule(t *testing.T) {
	if _, err := Compile([]string{"ab", "("}, 1, nil); err == nil {
		t.Fatal("bad rule accepted")
	}
	if err, want := func() error {
		_, err := Compile([]string{"a^b"}, 1, nil)
		return err
	}(), "anchors"; err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("err=%v, want mention of %q", err, want)
	}
}

func TestStageTimesArithmetic(t *testing.T) {
	a := StageTimes{FrontEnd: 10, ASTToFSA: 20, SingleME: 30, MergeME: 40, BackEnd: 50}
	b := a
	a.Add(b)
	if a.Total() != 300 {
		t.Fatalf("total=%d", a.Total())
	}
	avg := a.Scale(2)
	if avg != b {
		t.Fatalf("scale: %+v", avg)
	}
	if b.Scale(1) != b || b.Scale(0) != b {
		t.Fatal("scale by ≤1 must be identity")
	}
}

func TestCompileDatasetSubset(t *testing.T) {
	// A realistic smoke test over a slice of each synthetic dataset.
	for _, s := range dataset.Datasets() {
		pats := s.Patterns()[:30]
		out, err := Compile(pats, 10, nil)
		if err != nil {
			t.Fatalf("%s: %v", s.Abbr, err)
		}
		if len(out.MFSAs) != 3 {
			t.Fatalf("%s: MFSAs=%d", s.Abbr, len(out.MFSAs))
		}
		for i, z := range out.MFSAs {
			if err := mfsa.Validate(z, out.FSAs[i*10:(i+1)*10]); err != nil {
				t.Fatalf("%s group %d: %v", s.Abbr, i, err)
			}
		}
	}
}

func BenchmarkCompileBRO30M10(b *testing.B) {
	s, _ := dataset.ByAbbr("BRO")
	pats := s.Patterns()[:30]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(pats, 10, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunStrictReturnsTypedRuleError(t *testing.T) {
	_, ruleErrs, err := Run(Request{Patterns: []string{"ab", "(", "cd"}, Merge: 1})
	if err == nil {
		t.Fatal("strict mode accepted a malformed rule")
	}
	if ruleErrs != nil {
		t.Fatalf("strict mode should not collect rule errors, got %d", len(ruleErrs))
	}
	var re *RuleError
	if !errors.As(err, &re) {
		t.Fatalf("strict failure should be a *RuleError, got %T: %v", err, err)
	}
	if re.Rule != 1 || re.Pattern != "(" || re.Stage != StageFrontEnd {
		t.Fatalf("RuleError fields: %+v", re)
	}
}

func TestRunLaxIsolatesBadRules(t *testing.T) {
	pats := []string{"ab+", "(", "a{1,100000}", "cd"}
	out, ruleErrs, err := Run(Request{Patterns: pats, Merge: 0, Lax: true})
	if err != nil {
		t.Fatalf("lax run: %v", err)
	}
	if len(ruleErrs) != 2 {
		t.Fatalf("want 2 rule errors, got %d: %v", len(ruleErrs), ruleErrs)
	}
	if ruleErrs[0].Rule != 1 || ruleErrs[0].Stage != StageFrontEnd {
		t.Fatalf("first rule error: %+v", ruleErrs[0])
	}
	if ruleErrs[1].Rule != 2 || !budget.Is(ruleErrs[1]) {
		t.Fatalf("second rule error should be rule 2 budget violation: %+v", ruleErrs[1])
	}
	// Survivors keep their original ruleset indices.
	if len(out.FSAs) != 2 || out.FSAs[0].ID != 0 || out.FSAs[1].ID != 3 {
		t.Fatalf("survivor ids: %v", []int{out.FSAs[0].ID, out.FSAs[1].ID})
	}
	var ids []int
	for _, z := range out.MFSAs {
		for _, info := range z.FSAs {
			ids = append(ids, info.RuleID)
		}
	}
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 3 {
		t.Fatalf("MFSA rule ids: %v", ids)
	}
}

func TestRunLaxAllRulesFail(t *testing.T) {
	_, ruleErrs, err := Run(Request{Patterns: []string{"(", ")"}, Lax: true})
	if err == nil {
		t.Fatal("expected error when no rule survives")
	}
	if len(ruleErrs) != 2 {
		t.Fatalf("want 2 rule errors, got %d", len(ruleErrs))
	}
}

func TestRunNFAStateBudgetAttribution(t *testing.T) {
	// Within the lexer's repeat bound but over a small expansion budget.
	_, _, err := Run(Request{
		Patterns: []string{"(a{500}){500}"},
		Limits:   Limits{MaxNFAStates: 10_000},
	})
	var re *RuleError
	if !errors.As(err, &re) || re.Stage != StageSingleFSA {
		t.Fatalf("want single-fsa-opt RuleError, got %v", err)
	}
	if !budget.Is(err) {
		t.Fatalf("state-budget violation should wrap budget.Err: %v", err)
	}
}

func TestRunMFSAStateBudget(t *testing.T) {
	pats := []string{"abcdefgh", "ijklmnop", "qrstuvwx"}
	_, _, err := Run(Request{Patterns: pats, Limits: Limits{MaxMFSAStates: 5}})
	if err == nil || !budget.Is(err) {
		t.Fatalf("want ruleset-level budget violation, got %v", err)
	}
	// The same ruleset compiles with the default budget.
	if _, _, err := Run(Request{Patterns: pats}); err != nil {
		t.Fatalf("default budget: %v", err)
	}
}

func TestRunLimitsDisabled(t *testing.T) {
	// Negative limits disable the checks entirely.
	out, _, err := Run(Request{
		Patterns: []string{"(a{500}){500}"},
		Limits:   Limits{MaxNFAStates: -1, MaxMFSAStates: -1},
	})
	if err != nil {
		t.Fatalf("disabled limits: %v", err)
	}
	if out.MFSAs[0].NumStates < 250_000 {
		t.Fatalf("expected full expansion, got %d states", out.MFSAs[0].NumStates)
	}
}
