// Package pipeline composes the five compilation steps of the framework
// (§IV, Fig. 4): (1) lexical and syntactical analysis, (2) AST-to-FSA
// conversion, (3) single-FSA optimization, (4) merging, and (5) ANML
// generation — recording the wall-clock cost of each stage, which is the
// quantity plotted in Fig. 8.
//
// Every stage runs under a resource budget (Limits): the Front-End bounds
// pattern length and nesting depth before any recursion happens, loop
// expansion bounds the per-rule state count as copies materialize, and
// merging bounds the total MFSA state count as automata fold in. Failures
// are typed (RuleError carries the rule index, pattern, and stage) and —
// in lax mode — per-rule failures in stages 1–3 are isolated: the bad rule
// is dropped, reported, and the surviving rules compile exactly as if the
// ruleset had never contained it.
package pipeline

import (
	"fmt"
	"io"
	"time"

	"repro/internal/anml"
	"repro/internal/budget"
	"repro/internal/factor"
	"repro/internal/mfsa"
	"repro/internal/nfa"
	"repro/internal/rex"
	"repro/internal/strategy"
)

// Stage names one of the five compilation stages of §IV, used to attribute
// failures to the pipeline checkpoint that raised them.
type Stage string

// The five stages of Fig. 4.
const (
	StageFrontEnd  Stage = "front-end"      // §IV-A lexical + syntactic analysis
	StageASTToFSA  Stage = "ast-to-fsa"     // §IV-B Thompson-like construction
	StageSingleFSA Stage = "single-fsa-opt" // §IV-C ε-removal, loop expansion, multiplicity
	StageMerge     Stage = "merge"          // §IV-D Algorithm 1
	StageBackEnd   Stage = "anml"           // §IV-E ANML generation
)

// Limits is the compile-side resource budget, enforced stage by stage. For
// each field, zero selects the documented default and a negative value
// disables the check. Violations satisfy errors.Is(err, budget.Err).
type Limits struct {
	// MaxPatternLen bounds each pattern's length in bytes, checked by the
	// Front-End before lexing (default rex.DefaultMaxLen).
	MaxPatternLen int
	// MaxDepth bounds each pattern's group-nesting depth, checked during
	// parsing so the parser's recursion is bounded too (default
	// rex.DefaultMaxDepth).
	MaxDepth int
	// MaxNFAStates bounds each rule's automaton during loop expansion
	// (default nfa.DefaultMaxStates).
	MaxNFAStates int
	// MaxMFSAStates bounds the state count summed over all merged MFSAs —
	// the memory budget of the compiled ruleset (default
	// DefaultMaxMFSAStates).
	MaxMFSAStates int
}

// DefaultMaxMFSAStates is the default ruleset-level state budget: the sum
// of states over all produced MFSAs. The paper's largest benchmark MFSAs
// stay well under 10^5 states; two million bounds the compiled automata to
// tens of megabytes while leaving ample headroom.
const DefaultMaxMFSAStates = 2 << 20

func (l Limits) maxMFSAStates() int {
	if l.MaxMFSAStates == 0 {
		return DefaultMaxMFSAStates
	}
	return l.MaxMFSAStates
}

// RuleError is a compilation failure attributed to its pipeline stage. For
// per-rule failures (stages 1–3) Rule is the rule's index in the original
// ruleset and Pattern its source; ruleset-level failures (merging, ANML
// generation) carry Rule == -1.
type RuleError struct {
	Rule    int
	Pattern string
	Stage   Stage
	Err     error
}

func (e *RuleError) Error() string {
	if e.Rule < 0 {
		return fmt.Sprintf("ruleset failed in %s: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("rule %d (%q) failed in %s: %v", e.Rule, e.Pattern, e.Stage, e.Err)
}

// Unwrap exposes the underlying stage error for errors.Is / errors.As.
func (e *RuleError) Unwrap() error { return e.Err }

// Request configures one compilation run.
type Request struct {
	// Patterns is the ruleset source.
	Patterns []string
	// Merge is the paper's merging factor M (≤ 0 means M = all).
	Merge int
	// Sink receives the generated ANML when non-nil; stage 5 runs either
	// way so its time is measured.
	Sink io.Writer
	// Limits is the stage-by-stage resource budget (zero value: defaults).
	Limits Limits
	// Lax isolates per-rule failures of stages 1–3: failing rules are
	// dropped and reported instead of aborting the run. Ruleset-level
	// failures (merging, the total-MFSA budget, ANML generation) still
	// abort. Surviving rules keep their original indices as rule ids.
	Lax bool
	// FactorMinLen, when positive, extracts each rule's required literal
	// factor (factor.Extract, at least FactorMinLen bytes) during the
	// Front-End and reports the results in Output.Factors — the compile-time
	// half of the execution-side literal prefilter.
	FactorMinLen int
	// FactorGroup biases the merging stage for prefiltering: the surviving
	// automata are stably partitioned so factor-bearing rules share groups
	// and factor-less rules are packed together, maximizing the number of
	// whole MFSAs the prefilter can skip. Rule ids are unaffected
	// (KeepRuleIDs); only the rule-to-group assignment changes. Ignored
	// unless FactorMinLen is positive.
	FactorGroup bool
	// Shapes classifies every rule's execution shape (strategy.Classify)
	// during the Front-End and reports the results in Output.Shapes — the
	// compile-time half of the per-group strategy planner.
	Shapes bool
}

// Output is the result of one full compilation.
type Output struct {
	// FSAs are the optimized standalone automata (after stage 3); their
	// totals are the compression baseline of §VI-A. In lax mode they are
	// the surviving rules only, each carrying its original ruleset index
	// in ID.
	FSAs []*nfa.NFA
	// MFSAs are the ⌈N/M⌉ merged automata (after stage 4).
	MFSAs []*mfsa.MFSA
	// Times are the per-stage costs of this run.
	Times StageTimes
	// ANMLBytes is the total size of the generated ANML output.
	ANMLBytes int
	// Factors holds, per original rule index, the rule's required literal
	// factor — the string every match of the rule must contain — or "" when
	// the rule has no factor of at least Request.FactorMinLen bytes (or
	// failed compilation in lax mode). Nil unless FactorMinLen is positive.
	Factors []string
	// Shapes holds, per original rule index, the rule's execution-shape
	// classification (KindGeneral for rules that failed compilation in lax
	// mode). Nil unless Request.Shapes is set.
	Shapes []strategy.Shape
}

// StageTimes holds the per-stage compilation cost of one run.
type StageTimes struct {
	FrontEnd time.Duration // FE: lexical + syntactic analysis
	ASTToFSA time.Duration // Thompson-like construction
	SingleME time.Duration // ME-single: ε-removal, loop expansion, multiplicity
	MergeME  time.Duration // ME-merging: Algorithm 1
	BackEnd  time.Duration // BE: ANML generation
}

// Total returns the end-to-end compilation time.
func (st StageTimes) Total() time.Duration {
	return st.FrontEnd + st.ASTToFSA + st.SingleME + st.MergeME + st.BackEnd
}

// Add accumulates another run's stage times (used when averaging reps).
func (st *StageTimes) Add(o StageTimes) {
	st.FrontEnd += o.FrontEnd
	st.ASTToFSA += o.ASTToFSA
	st.SingleME += o.SingleME
	st.MergeME += o.MergeME
	st.BackEnd += o.BackEnd
}

// Scale divides every stage by n (averaging helper).
func (st StageTimes) Scale(n int) StageTimes {
	if n <= 1 {
		return st
	}
	d := time.Duration(n)
	return StageTimes{
		FrontEnd: st.FrontEnd / d,
		ASTToFSA: st.ASTToFSA / d,
		SingleME: st.SingleME / d,
		MergeME:  st.MergeME / d,
		BackEnd:  st.BackEnd / d,
	}
}

// Compile runs the full framework over the ruleset with merging factor m
// (m ≤ 0 means M = all) under the default Limits. ANML output is written to
// sink when non-nil and discarded otherwise; stage 5 runs either way so its
// time is measured. The first failing rule aborts the run; use Run with
// Request.Lax to isolate per-rule failures instead.
func Compile(patterns []string, m int, sink io.Writer) (*Output, error) {
	out, _, err := Run(Request{Patterns: patterns, Merge: m, Sink: sink})
	return out, err
}

// Run executes one compilation request. In strict mode (Lax == false) the
// first per-rule failure is returned as a *RuleError and ruleErrs is nil.
// In lax mode every per-rule failure of stages 1–3 is collected into
// ruleErrs, the survivors compile, and err is non-nil only for
// ruleset-level failures — including the case that no rule survived.
func Run(req Request) (out *Output, ruleErrs []*RuleError, err error) {
	patterns := req.Patterns
	lim := req.Limits
	out = &Output{}

	fail := func(rule int, stage Stage, cause error) error {
		re := &RuleError{Rule: rule, Pattern: patterns[rule], Stage: stage, Err: cause}
		if req.Lax {
			ruleErrs = append(ruleErrs, re)
			return nil
		}
		return re
	}

	// Stage 1 — Front-End. alive tracks the surviving rules; every later
	// per-rule stage iterates it, so a rule dropped here costs nothing
	// downstream.
	start := time.Now()
	parseOpts := rex.ParseOptions{MaxLen: lim.MaxPatternLen, MaxDepth: lim.MaxDepth}
	type ruled struct {
		rule int
		ast  *rex.Node
	}
	alive := make([]ruled, 0, len(patterns))
	if req.FactorMinLen > 0 {
		out.Factors = make([]string, len(patterns))
	}
	if req.Shapes {
		out.Shapes = make([]strategy.Shape, len(patterns))
	}
	for i, p := range patterns {
		ast, perr := rex.ParseOpts(p, parseOpts)
		if perr != nil {
			if e := fail(i, StageFrontEnd, perr); e != nil {
				return nil, nil, e
			}
			continue
		}
		if req.FactorMinLen > 0 {
			if f, ok := factor.Extract(ast, req.FactorMinLen); ok {
				out.Factors[i] = f
			}
		}
		if req.Shapes {
			out.Shapes[i] = strategy.Classify(ast)
		}
		alive = append(alive, ruled{rule: i, ast: ast})
	}
	out.Times.FrontEnd = time.Since(start)

	// Stage 2 — conversion from AST to FSA.
	start = time.Now()
	out.FSAs = make([]*nfa.NFA, 0, len(alive))
	for _, r := range alive {
		a, berr := nfa.Build(r.ast)
		if berr != nil {
			if e := fail(r.rule, StageASTToFSA, berr); e != nil {
				return nil, nil, e
			}
			continue
		}
		a.ID = r.rule
		a.Pattern = patterns[r.rule]
		out.FSAs = append(out.FSAs, a)
	}
	out.Times.ASTToFSA = time.Since(start)

	// Stage 3 — single-FSA optimization, under the per-rule state budget.
	start = time.Now()
	nfaLim := nfa.Limits{MaxStates: lim.MaxNFAStates}
	kept := out.FSAs[:0]
	for _, a := range out.FSAs {
		if oerr := nfa.OptimizeWith(a, nfaLim); oerr != nil {
			if e := fail(a.ID, StageSingleFSA, oerr); e != nil {
				return nil, nil, e
			}
			continue
		}
		kept = append(kept, a)
	}
	out.FSAs = kept
	out.Times.SingleME = time.Since(start)

	if len(out.FSAs) == 0 {
		return nil, ruleErrs, fmt.Errorf("pipeline: no rule survived compilation (%d failed)", len(ruleErrs))
	}

	// Stage 4 — merging, under the ruleset-level state budget. Rule ids
	// follow the automata (KeepRuleIDs) so lax survivors keep their
	// original ruleset indices. Factor-aware grouping stably partitions the
	// automata — factor-bearing rules first — so the sequential groups
	// cluster filterable rules together and whole MFSAs become skippable.
	if req.FactorGroup && req.FactorMinLen > 0 {
		part := make([]*nfa.NFA, 0, len(out.FSAs))
		for _, a := range out.FSAs {
			if out.Factors[a.ID] != "" {
				part = append(part, a)
			}
		}
		for _, a := range out.FSAs {
			if out.Factors[a.ID] == "" {
				part = append(part, a)
			}
		}
		out.FSAs = part
	}
	start = time.Now()
	zs, merr := mfsa.MergeGroupsWith(out.FSAs, req.Merge, mfsa.GroupOptions{
		MaxTotalStates: lim.maxMFSAStates(),
		KeepRuleIDs:    true,
	})
	if merr != nil {
		return nil, ruleErrs, &RuleError{Rule: -1, Stage: StageMerge, Err: merr}
	}
	out.MFSAs = zs
	out.Times.MergeME = time.Since(start)

	// Stage 5 — ANML generation.
	start = time.Now()
	cw := &countWriter{w: req.Sink}
	for _, z := range zs {
		if aerr := anml.Write(cw, z); aerr != nil {
			return nil, ruleErrs, &RuleError{Rule: -1, Stage: StageBackEnd, Err: aerr}
		}
	}
	out.Times.BackEnd = time.Since(start)
	out.ANMLBytes = cw.n
	return out, ruleErrs, nil
}

// IsBudget reports whether err is (or wraps) a resource-budget violation.
func IsBudget(err error) bool { return budget.Is(err) }

// countWriter counts bytes, forwarding to w when non-nil.
type countWriter struct {
	w io.Writer
	n int
}

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	if c.w == nil {
		return len(p), nil
	}
	return c.w.Write(p)
}
