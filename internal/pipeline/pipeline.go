// Package pipeline composes the five compilation steps of the framework
// (§IV, Fig. 4): (1) lexical and syntactical analysis, (2) AST-to-FSA
// conversion, (3) single-FSA optimization, (4) merging, and (5) ANML
// generation — recording the wall-clock cost of each stage, which is the
// quantity plotted in Fig. 8.
package pipeline

import (
	"fmt"
	"io"
	"time"

	"repro/internal/anml"
	"repro/internal/mfsa"
	"repro/internal/nfa"
	"repro/internal/rex"
)

// StageTimes holds the per-stage compilation cost of one run.
type StageTimes struct {
	FrontEnd time.Duration // FE: lexical + syntactic analysis
	ASTToFSA time.Duration // Thompson-like construction
	SingleME time.Duration // ME-single: ε-removal, loop expansion, multiplicity
	MergeME  time.Duration // ME-merging: Algorithm 1
	BackEnd  time.Duration // BE: ANML generation
}

// Total returns the end-to-end compilation time.
func (st StageTimes) Total() time.Duration {
	return st.FrontEnd + st.ASTToFSA + st.SingleME + st.MergeME + st.BackEnd
}

// Add accumulates another run's stage times (used when averaging reps).
func (st *StageTimes) Add(o StageTimes) {
	st.FrontEnd += o.FrontEnd
	st.ASTToFSA += o.ASTToFSA
	st.SingleME += o.SingleME
	st.MergeME += o.MergeME
	st.BackEnd += o.BackEnd
}

// Scale divides every stage by n (averaging helper).
func (st StageTimes) Scale(n int) StageTimes {
	if n <= 1 {
		return st
	}
	d := time.Duration(n)
	return StageTimes{
		FrontEnd: st.FrontEnd / d,
		ASTToFSA: st.ASTToFSA / d,
		SingleME: st.SingleME / d,
		MergeME:  st.MergeME / d,
		BackEnd:  st.BackEnd / d,
	}
}

// Output is the result of one full compilation.
type Output struct {
	// FSAs are the optimized standalone automata (after stage 3); their
	// totals are the compression baseline of §VI-A.
	FSAs []*nfa.NFA
	// MFSAs are the ⌈N/M⌉ merged automata (after stage 4).
	MFSAs []*mfsa.MFSA
	// Times are the per-stage costs of this run.
	Times StageTimes
	// ANMLBytes is the total size of the generated ANML output.
	ANMLBytes int
}

// Compile runs the full framework over the ruleset with merging factor m
// (m ≤ 0 means M = all). ANML output is written to sink when non-nil and
// discarded otherwise; stage 5 runs either way so its time is measured.
func Compile(patterns []string, m int, sink io.Writer) (*Output, error) {
	out := &Output{}

	// Stage 1 — Front-End.
	start := time.Now()
	asts := make([]*rex.Node, len(patterns))
	for i, p := range patterns {
		ast, err := rex.Parse(p)
		if err != nil {
			return nil, fmt.Errorf("pipeline: rule %d: %w", i, err)
		}
		asts[i] = ast
	}
	out.Times.FrontEnd = time.Since(start)

	// Stage 2 — conversion from AST to FSA.
	start = time.Now()
	out.FSAs = make([]*nfa.NFA, len(asts))
	for i, ast := range asts {
		a, err := nfa.Build(ast)
		if err != nil {
			return nil, fmt.Errorf("pipeline: rule %d (%q): %w", i, patterns[i], err)
		}
		a.ID = i
		a.Pattern = patterns[i]
		out.FSAs[i] = a
	}
	out.Times.ASTToFSA = time.Since(start)

	// Stage 3 — single-FSA optimization.
	start = time.Now()
	for i, a := range out.FSAs {
		if err := nfa.Optimize(a); err != nil {
			return nil, fmt.Errorf("pipeline: rule %d (%q): %w", i, patterns[i], err)
		}
	}
	out.Times.SingleME = time.Since(start)

	// Stage 4 — merging.
	start = time.Now()
	zs, err := mfsa.MergeGroups(out.FSAs, m)
	if err != nil {
		return nil, fmt.Errorf("pipeline: merge: %w", err)
	}
	out.MFSAs = zs
	out.Times.MergeME = time.Since(start)

	// Stage 5 — ANML generation.
	start = time.Now()
	cw := &countWriter{w: sink}
	for _, z := range zs {
		if err := anml.Write(cw, z); err != nil {
			return nil, fmt.Errorf("pipeline: anml: %w", err)
		}
	}
	out.Times.BackEnd = time.Since(start)
	out.ANMLBytes = cw.n
	return out, nil
}

// countWriter counts bytes, forwarding to w when non-nil.
type countWriter struct {
	w io.Writer
	n int
}

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	if c.w == nil {
		return len(p), nil
	}
	return c.w.Write(p)
}
