// Package metrics computes the evaluation quantities of §VI — compression
// percentages, throughput, speedups and geometric means — and renders
// aligned text tables for the experiment harness.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/mfsa"
	"repro/internal/nfa"
)

// Compression aggregates the state/transition counts before and after
// merging (§VI-A).
type Compression struct {
	StatesBefore, StatesAfter int
	TransBefore, TransAfter   int
}

// StatesPct returns the state compression percentage
// (Σ#states_a − Σ#states_z) / Σ#states_a · 100.
func (c Compression) StatesPct() float64 {
	if c.StatesBefore == 0 {
		return 0
	}
	return float64(c.StatesBefore-c.StatesAfter) / float64(c.StatesBefore) * 100
}

// TransPct returns the transition compression percentage.
func (c Compression) TransPct() float64 {
	if c.TransBefore == 0 {
		return 0
	}
	return float64(c.TransBefore-c.TransAfter) / float64(c.TransBefore) * 100
}

// MeasureCompression compares a set of standalone FSAs with the MFSAs they
// were merged into.
func MeasureCompression(fsas []*nfa.NFA, zs []*mfsa.MFSA) Compression {
	var c Compression
	for _, a := range fsas {
		c.StatesBefore += a.NumStates
		c.TransBefore += len(a.Trans)
	}
	for _, z := range zs {
		c.StatesAfter += z.NumStates
		c.TransAfter += z.NumTrans()
	}
	return c
}

// Throughput computes the §VI-C metric
//
//	th = #MFSA · M · Dsize / Exe_time
//
// in RE·bytes per second: the number of REs processed against the whole
// input, per unit time.
func Throughput(numMFSA, m, dataSize int, exeTime time.Duration) float64 {
	if exeTime <= 0 {
		return 0
	}
	return float64(numMFSA) * float64(m) * float64(dataSize) / exeTime.Seconds()
}

// GeoMean returns the geometric mean of strictly positive values; zero or
// negative entries are skipped. It returns 0 for an empty input.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Table accumulates rows and renders them with aligned columns, echoing the
// row/series layout of the paper's tables and figures.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; each cell is formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = formatDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	var sb strings.Builder
	for i, h := range t.Headers {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], h)
	}
	line := strings.TrimRight(sb.String(), " ")
	fmt.Fprintln(w, line)
	fmt.Fprintln(w, strings.Repeat("-", len(line)))
	for _, row := range t.rows {
		sb.Reset()
		for i, c := range row {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}
