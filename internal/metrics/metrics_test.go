package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/mfsa"
	"repro/internal/nfa"
)

func TestCompressionPct(t *testing.T) {
	c := Compression{StatesBefore: 200, StatesAfter: 50, TransBefore: 100, TransAfter: 75}
	if got := c.StatesPct(); got != 75 {
		t.Fatalf("states pct %f", got)
	}
	if got := c.TransPct(); got != 25 {
		t.Fatalf("trans pct %f", got)
	}
	var zero Compression
	if zero.StatesPct() != 0 || zero.TransPct() != 0 {
		t.Fatal("zero baseline must yield 0")
	}
}

func TestMeasureCompression(t *testing.T) {
	a, err := nfa.Compile("abcx")
	if err != nil {
		t.Fatal(err)
	}
	b, err := nfa.Compile("abcy")
	if err != nil {
		t.Fatal(err)
	}
	z, err := mfsa.Merge([]*nfa.NFA{a, b})
	if err != nil {
		t.Fatal(err)
	}
	c := MeasureCompression([]*nfa.NFA{a, b}, []*mfsa.MFSA{z})
	if c.StatesBefore != a.NumStates+b.NumStates || c.StatesAfter != z.NumStates {
		t.Fatalf("compression %+v", c)
	}
	if c.StatesPct() <= 0 {
		t.Fatalf("shared-prefix merge should compress, got %f%%", c.StatesPct())
	}
}

func TestThroughput(t *testing.T) {
	// 2 MFSAs × M=5 × 1000 bytes in 1s → 10000 RE·B/s.
	if got := Throughput(2, 5, 1000, time.Second); got != 10000 {
		t.Fatalf("throughput %f", got)
	}
	if Throughput(1, 1, 1, 0) != 0 {
		t.Fatal("zero time must yield 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("geomean %f, want 4", got)
	}
	if got := GeoMean([]float64{3, 0, -1}); math.Abs(got-3) > 1e-12 {
		t.Fatalf("geomean with skips %f, want 3", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean must be 0")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Fig. X", "Dataset", "Value", "Time")
	tb.AddRow("BRO", 71.95, 1500*time.Millisecond)
	tb.AddRow("DS9", 3.0, 250*time.Microsecond)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Fig. X", "Dataset", "BRO", "71.95", "1.500s", "250.0µs", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines=%d:\n%s", len(lines), out)
	}
}

func TestTableDurationFormats(t *testing.T) {
	tb := NewTable("", "d")
	tb.AddRow(2 * time.Millisecond)
	var buf bytes.Buffer
	tb.Render(&buf)
	if !strings.Contains(buf.String(), "2.000ms") {
		t.Fatalf("got %q", buf.String())
	}
}
