package lazydfa

import (
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/mfsa"
	"repro/internal/nfa"
)

// FuzzCacheLimits drives the lazy engine over arbitrary inputs with
// fuzzer-chosen cache caps and flush budgets — exercising the flush and
// fallback paths at every possible trigger point — and demands the exact
// event stream of the unconstrained run and the distinct (FSA, end) sets of
// the iMFAnt engine in keep mode.
func FuzzCacheLimits(f *testing.F) {
	patterns := []string{"a+b", "b+a", "ab+a", "aa", "bb", "^ab", "ba$", "a[ab]b"}
	fsas := make([]*nfa.NFA, len(patterns))
	for i, pat := range patterns {
		n, err := nfa.Compile(pat)
		if err != nil {
			f.Fatal(err)
		}
		n.ID = i
		fsas[i] = n
	}
	z, err := mfsa.Merge(fsas)
	if err != nil {
		f.Fatal(err)
	}
	p := engine.NewProgram(z)
	m := New(p)

	f.Add([]byte("abbaabab"), uint8(0), uint8(0), uint8(4))
	f.Add([]byte("aabbaabbaabb"), uint8(3), uint8(1), uint8(1))
	f.Add([]byte("abababababab"), uint8(4), uint8(0), uint8(7))
	f.Add([]byte(""), uint8(5), uint8(2), uint8(3))

	f.Fuzz(func(t *testing.T, in []byte, maxStates, maxFlushes, chunk uint8) {
		if len(in) > 1<<12 {
			return
		}
		cfg := Config{
			KeepOnMatch: true,
			MaxStates:   int(maxStates), // 0 → default; small values force flushes
			MaxFlushes:  int(maxFlushes),
		}
		want := Matches(m, in, Config{KeepOnMatch: true})

		var got []engine.MatchEvent
		c := cfg
		c.OnMatch = func(fsa, end int) { got = append(got, engine.MatchEvent{FSA: fsa, End: end}) }
		r := NewRunner(m)
		r.Begin(c)
		step := int(chunk)%8 + 1
		for i := 0; i < len(in); i += step {
			end := i + step
			if end > len(in) {
				end = len(in)
			}
			r.Feed(in[i:end], end == len(in))
		}
		if len(in) == 0 {
			r.Feed(nil, true)
		}
		res := r.End()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cfg=%+v chunk=%d: %d events, want %d (res=%+v)",
				cfg, step, len(got), len(want), res)
		}
		wantSets := engine.DistinctEnds(engine.Matches(p, in, engine.Config{KeepOnMatch: true}), len(patterns))
		gotSets := engine.DistinctEnds(got, len(patterns))
		if !reflect.DeepEqual(gotSets, wantSets) {
			t.Fatalf("distinct sets diverged from iMFAnt: %v vs %v", gotSets, wantSets)
		}
	})
}
