package lazydfa

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/mfsa"
	"repro/internal/nfa"
)

func compile(t testing.TB, patterns ...string) ([]*nfa.NFA, *Matcher) {
	t.Helper()
	fsas := make([]*nfa.NFA, len(patterns))
	for i, pat := range patterns {
		n, err := nfa.Compile(pat)
		if err != nil {
			t.Fatalf("compile %q: %v", pat, err)
		}
		n.ID = i
		fsas[i] = n
	}
	z, err := mfsa.Merge(fsas)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return fsas, New(engine.NewProgram(z))
}

func lazyEnds(m *Matcher, in []byte, cfg Config) [][]int {
	return engine.DistinctEnds(Matches(m, in, cfg), m.p.NumFSAs())
}

func engineEnds(m *Matcher, in []byte) [][]int {
	return engine.DistinctEnds(engine.Matches(m.p, in, engine.Config{KeepOnMatch: true}), m.p.NumFSAs())
}

// TestRowWidthEqualsClasses validates the byte-class compression: every
// cached transition row is exactly NumClasses entries wide, and the class
// count is the true number of alphabet equivalence classes of the ruleset.
func TestRowWidthEqualsClasses(t *testing.T) {
	_, m := compile(t, "[a-c]x", "yz")
	// Labels: [a-c], x, y, z → classes {a-c}, {x}, {y}, {z}, rest.
	if m.NumClasses() != 5 {
		t.Fatalf("NumClasses=%d, want 5", m.NumClasses())
	}
	r := NewRunner(m)
	r.Run([]byte("abxyzyzcx"), Config{KeepOnMatch: true})
	if len(r.states) == 0 {
		t.Fatal("no states cached")
	}
	if got, want := len(r.rows), len(r.states)*m.NumClasses(); got != want {
		t.Fatalf("row table %d entries for %d states, want %d (= states × classes)",
			got, len(r.states), want)
	}
	if len(r.startRow) != m.NumClasses() {
		t.Fatalf("start row %d entries, want %d", len(r.startRow), m.NumClasses())
	}
}

func TestMatchesEngineKeepMode(t *testing.T) {
	_, m := compile(t, "ab", "a[bc]d", "b+c", "^ab", "cd$")
	for _, in := range []string{"", "abcdabcd", "abdbbbcabd", "xxabcdxx", "ab"} {
		got := lazyEnds(m, []byte(in), Config{KeepOnMatch: true})
		want := engineEnds(m, []byte(in))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("input %q: lazy %v engine %v", in, got, want)
		}
	}
}

func TestMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	frags := []string{"a", "b", "c", "ab", "bc", "a[bc]", "(ab|ba)", "b+", "c?", "a{2,3}"}
	for trial := 0; trial < 150; trial++ {
		n := 1 + r.Intn(5)
		patterns := make([]string, n)
		for i := range patterns {
			s := ""
			for j, k := 0, 1+r.Intn(3); j < k; j++ {
				s += frags[r.Intn(len(frags))]
			}
			patterns[i] = s
		}
		fsas, m := compile(t, patterns...)
		in := make([]byte, r.Intn(40))
		for i := range in {
			in[i] = byte('a' + r.Intn(3))
		}
		got := lazyEnds(m, in, Config{KeepOnMatch: true})
		want := engine.ReferenceScanAll(fsas, in, true)
		for j := range fsas {
			w := want[j]
			if w == nil {
				w = []int{}
			}
			if !reflect.DeepEqual(got[j], w) {
				t.Fatalf("patterns=%v input=%q FSA %d: lazy %v oracle %v",
					patterns, in, j, got[j], w)
			}
		}
	}
}

// TestFlushAndFallback forces both cache-exhaustion paths with a tiny cap
// and checks the event stream stays byte-identical to the unconstrained run.
func TestFlushAndFallback(t *testing.T) {
	_, m := compile(t, "a+b", "b+a", "ab+a", "ba+b", "aa", "bb")
	r := rand.New(rand.NewSource(11))
	in := make([]byte, 4096)
	for i := range in {
		in[i] = byte('a' + r.Intn(2))
	}
	want := Matches(m, in, Config{KeepOnMatch: true})

	// Small cap, generous flush budget: flushes must occur, and events
	// must not change.
	flushRunner := NewRunner(m)
	var gotFlush []engine.MatchEvent
	res := flushRunner.Run(in, Config{
		KeepOnMatch: true, MaxStates: 4, MaxFlushes: 1 << 30,
		OnMatch: func(fsa, end int) { gotFlush = append(gotFlush, engine.MatchEvent{FSA: fsa, End: end}) },
	})
	if res.Flushes == 0 {
		t.Fatal("cap 4 run never flushed")
	}
	if res.FellBack {
		t.Fatal("unlimited flush budget fell back")
	}
	if len(flushRunner.states) > 4 {
		t.Fatalf("cache overran its cap: %d states", len(flushRunner.states))
	}
	if !reflect.DeepEqual(gotFlush, want) {
		t.Fatalf("flush run diverged: %d events vs %d", len(gotFlush), len(want))
	}

	// Small cap, tiny flush budget: fallback must occur, events must not
	// change.
	var gotFB []engine.MatchEvent
	res = NewRunner(m).Run(in, Config{
		KeepOnMatch: true, MaxStates: 4, MaxFlushes: 2,
		OnMatch: func(fsa, end int) { gotFB = append(gotFB, engine.MatchEvent{FSA: fsa, End: end}) },
	})
	if !res.FellBack {
		t.Fatal("flush budget 2 with cap 4 never fell back")
	}
	if res.Flushes != 2 {
		t.Fatalf("Flushes=%d, want 2", res.Flushes)
	}
	if !reflect.DeepEqual(gotFB, want) {
		t.Fatalf("fallback run diverged: %d events vs %d", len(gotFB), len(want))
	}

	// Negative flush budget: fall back on the first full cache.
	res = NewRunner(m).Run(in, Config{KeepOnMatch: true, MaxStates: 4, MaxFlushes: -1})
	if !res.FellBack || res.Flushes != 0 {
		t.Fatalf("MaxFlushes<0: FellBack=%v Flushes=%d", res.FellBack, res.Flushes)
	}
}

// TestChunkedFeed checks that splitting a stream into chunks of any size —
// across flushes and fallback — never changes the reported events.
func TestChunkedFeed(t *testing.T) {
	_, m := compile(t, "abc", "c+a", "^ab", "bc$", "abca")
	r := rand.New(rand.NewSource(3))
	in := make([]byte, 512)
	for i := range in {
		in[i] = byte('a' + r.Intn(3))
	}
	want := Matches(m, in, Config{KeepOnMatch: true})
	for _, cfg := range []Config{
		{KeepOnMatch: true},
		{KeepOnMatch: true, MaxStates: 4, MaxFlushes: 1 << 30},
		{KeepOnMatch: true, MaxStates: 4, MaxFlushes: 1},
	} {
		for _, chunk := range []int{1, 3, 7, 100} {
			var got []engine.MatchEvent
			c := cfg
			c.OnMatch = func(fsa, end int) { got = append(got, engine.MatchEvent{FSA: fsa, End: end}) }
			runner := NewRunner(m)
			runner.Begin(c)
			for i := 0; i < len(in); i += chunk {
				end := i + chunk
				if end > len(in) {
					end = len(in)
				}
				runner.Feed(in[i:end], end == len(in))
			}
			runner.End()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cfg=%+v chunk=%d diverged: %d events vs %d", cfg, chunk, len(got), len(want))
			}
		}
	}
}

// TestPopSemanticsDelegates checks the transparent fallback for the Eq. 5
// pop mode: the whole stream runs on the iMFAnt engine with its exact
// semantics.
func TestPopSemanticsDelegates(t *testing.T) {
	_, m := compile(t, "ab*", "a+")
	in := []byte("abbaab")
	var got []engine.MatchEvent
	res := NewRunner(m).Run(in, Config{
		OnMatch: func(fsa, end int) { got = append(got, engine.MatchEvent{FSA: fsa, End: end}) },
	})
	if !res.FellBack {
		t.Fatal("pop mode did not delegate")
	}
	want := engine.Matches(m.p, in, engine.Config{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pop events %v, want %v", got, want)
	}
	if res.Matches != int64(len(want)) {
		t.Fatalf("Matches=%d, want %d", res.Matches, len(want))
	}
}

// TestRunnerReuseWarmCache checks that the cache persists across scans and
// that a reused runner reports identical results.
func TestRunnerReuseWarmCache(t *testing.T) {
	_, m := compile(t, "abc", "bca", "ca+b")
	in := []byte("abcabcaabcbcacab")
	r := NewRunner(m)
	first := r.Run(in, Config{KeepOnMatch: true})
	if first.CachedStates == 0 {
		t.Fatal("no states cached")
	}
	second := r.Run(in, Config{KeepOnMatch: true})
	if second.CachedStates != first.CachedStates {
		t.Fatalf("cache not warm: %d then %d states", first.CachedStates, second.CachedStates)
	}
	if first.Matches != second.Matches {
		t.Fatalf("reuse changed matches: %d vs %d", first.Matches, second.Matches)
	}
	// State from one scan must not leak into the next.
	third := r.Run([]byte("zzzz"), Config{KeepOnMatch: true})
	if third.Matches != 0 {
		t.Fatalf("state leaked: %d matches", third.Matches)
	}
	// Changing the cap rebuilds the cache rather than violating it.
	fourth := r.Run(in, Config{KeepOnMatch: true, MaxStates: 3, MaxFlushes: 1 << 30})
	if fourth.Matches != first.Matches {
		t.Fatalf("cap change broke matches: %d vs %d", fourth.Matches, first.Matches)
	}
	if fourth.CachedStates > 3 {
		t.Fatalf("cache overran new cap: %d", fourth.CachedStates)
	}
}

// TestAnchors covers ^ and $ through the cached path, including the
// dedicated stream-start row.
func TestAnchors(t *testing.T) {
	_, m := compile(t, "^ab", "ab$", "ab")
	got := lazyEnds(m, []byte("abxab"), Config{KeepOnMatch: true})
	want := [][]int{{1}, {4}, {1, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("anchors: %v, want %v", got, want)
	}
}

func TestPerFSACounts(t *testing.T) {
	_, m := compile(t, "ab", "b")
	res := NewRunner(m).Run([]byte("abab"), Config{KeepOnMatch: true})
	if res.PerFSA[0] != 2 || res.PerFSA[1] != 2 || res.Matches != 4 {
		t.Fatalf("counts %+v", res)
	}
	if res.Symbols != 4 {
		t.Fatalf("Symbols=%d", res.Symbols)
	}
}

// TestEndAnnouncedAfterFactLazy is the lazy-engine half of the held-byte
// regression: a stream end announced only after the last data byte — via
// Feed(nil, true) or a bare End — must report the same events as the
// single-shot scan, on the cached path, across a fallback, and in pop mode.
func TestEndAnnouncedAfterFactLazy(t *testing.T) {
	_, m := compile(t, "^ab", "bc$", "abc", "c+a")
	in := []byte("abcabcca abc")
	for _, cfg := range []Config{
		{KeepOnMatch: true},
		{KeepOnMatch: true, MaxStates: 4, MaxFlushes: 1},
		{}, // pop mode: delegated wholesale to iMFAnt
	} {
		var want []engine.MatchEvent
		ref := cfg
		ref.OnMatch = func(fsa, end int) { want = append(want, engine.MatchEvent{FSA: fsa, End: end}) }
		NewRunner(m).Run(in, ref)

		for name, drive := range map[string]func(r *Runner){
			"Feed(nil,true)": func(r *Runner) { r.Feed(in, false); r.Feed(nil, true) },
			"bare End":       func(r *Runner) { r.Feed(in, false) },
			"split + empty":  func(r *Runner) { r.Feed(in[:5], false); r.Feed(nil, false); r.Feed(in[5:], false); r.Feed(nil, true) },
		} {
			var got []engine.MatchEvent
			c := cfg
			c.OnMatch = func(fsa, end int) { got = append(got, engine.MatchEvent{FSA: fsa, End: end}) }
			r := NewRunner(m)
			r.Begin(c)
			drive(r)
			r.End()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("cfg=%+v %s: %v, want %v", cfg, name, got, want)
			}
		}
	}
}

// TestWarmCacheConfigInvariance is the regression test for the stale-cache
// fix: reusing a runner across scans — including immediately after a scan
// that thrashed the cache and fell back, and across KeepOnMatch/MaxFlushes
// changes — must never change the (FSA, end) event set versus a fresh
// runner with the same config.
func TestWarmCacheConfigInvariance(t *testing.T) {
	_, m := compile(t, "a+b", "b+a", "ab+a", "ba+b", "aa", "bb")
	rng := rand.New(rand.NewSource(17))
	in := make([]byte, 2048)
	for i := range in {
		in[i] = byte('a' + rng.Intn(2))
	}
	configs := []Config{
		{KeepOnMatch: true, MaxStates: 4, MaxFlushes: 2},       // thrash → fallback
		{KeepOnMatch: true, MaxStates: 4, MaxFlushes: 1 << 30}, // right after thrash
		{KeepOnMatch: true},                                    // default cap
		{},                                                     // pop delegation
		{KeepOnMatch: true, MaxStates: 4, MaxFlushes: -1},      // immediate fallback
		{KeepOnMatch: true},                                    // and back to cached
	}
	r := NewRunner(m)
	for step, cfg := range configs {
		var want []engine.MatchEvent
		ref := cfg
		ref.OnMatch = func(fsa, end int) { want = append(want, engine.MatchEvent{FSA: fsa, End: end}) }
		NewRunner(m).Run(in, ref)

		var got []engine.MatchEvent
		c := cfg
		c.OnMatch = func(fsa, end int) { got = append(got, engine.MatchEvent{FSA: fsa, End: end}) }
		res := r.Run(in, c)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d cfg=%+v: warm runner diverged (%d events vs %d)",
				step, cfg, len(got), len(want))
		}
		if step == 1 && res.FellBack {
			t.Fatal("generous flush budget fell back on the scan after a thrash — stale table kept")
		}
	}
}

// TestCacheCounters checks the hit/miss accounting and the cumulative
// runner totals: hits + misses cover exactly the cached portion of the
// scan, a warm re-scan is all hits, and totals fold once per End.
func TestCacheCounters(t *testing.T) {
	_, m := compile(t, "abc", "bca")
	in := []byte("abcabcabcbcabca")
	r := NewRunner(m)

	first := r.Run(in, Config{KeepOnMatch: true})
	if first.CacheMisses == 0 {
		t.Fatal("cold scan reported no misses")
	}
	if first.CacheHits+first.CacheMisses != int64(first.Symbols) {
		t.Fatalf("hits %d + misses %d != symbols %d", first.CacheHits, first.CacheMisses, first.Symbols)
	}

	second := r.Run(in, Config{KeepOnMatch: true})
	if second.CacheMisses != 0 {
		t.Fatalf("warm scan missed %d times", second.CacheMisses)
	}
	if second.CacheHits != int64(second.Symbols) {
		t.Fatalf("warm scan: hits %d, symbols %d", second.CacheHits, second.Symbols)
	}

	tot := r.Totals()
	if tot.Scans != 2 ||
		tot.Symbols != int64(first.Symbols+second.Symbols) ||
		tot.CacheHits != first.CacheHits+second.CacheHits ||
		tot.CacheMisses != first.CacheMisses+second.CacheMisses {
		t.Fatalf("totals %+v after %+v and %+v", tot, first, second)
	}
	r.End() // double End must not double-fold
	if tot2 := r.Totals(); tot2 != tot {
		t.Fatalf("double End changed totals: %+v vs %+v", tot2, tot)
	}

	// A thrashing scan counts one fallback; the pre-thrash bytes stay in
	// the hit/miss accounting, the delegated remainder counts in neither.
	_, m2 := compile(t, "a+b", "b+a", "ab+a", "ba+b", "aa", "bb")
	rng := rand.New(rand.NewSource(23))
	big := make([]byte, 2048)
	for i := range big {
		big[i] = byte('a' + rng.Intn(2))
	}
	r2 := NewRunner(m2)
	res := r2.Run(big, Config{KeepOnMatch: true, MaxStates: 4, MaxFlushes: 1})
	if !res.Thrashed {
		t.Fatal("expected a thrashing run")
	}
	if res.CacheHits+res.CacheMisses >= int64(res.Symbols) {
		t.Fatalf("delegated bytes leaked into cache counters: hits %d misses %d symbols %d",
			res.CacheHits, res.CacheMisses, res.Symbols)
	}
	if tot := r2.Totals(); tot.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", tot.Fallbacks)
	}

	// Pop-mode delegation is a configuration choice, not a cache defeat.
	r3 := NewRunner(m)
	if res := r3.Run(in, Config{}); !res.FellBack || res.Thrashed {
		t.Fatalf("pop mode: FellBack=%v Thrashed=%v", res.FellBack, res.Thrashed)
	}
	if tot := r3.Totals(); tot.Fallbacks != 0 {
		t.Fatalf("pop delegation counted as fallback: %+v", tot)
	}
}
