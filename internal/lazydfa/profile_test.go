package lazydfa

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/engine"
)

// TestProfileInvarianceLazy pins the profiler's zero-interference contract
// on the cached path: profiled and unprofiled runs report identical events,
// the sample count follows the stride arithmetic, and visits land on
// genuine MFSA states.
func TestProfileInvarianceLazy(t *testing.T) {
	_, m := compile(t, "abc", "abd", "xy+z", "hello")
	rng := rand.New(rand.NewSource(5))
	frags := []string{"abc", "abd", "xyz", "xyyyz", "hello", "noise "}
	var in []byte
	for len(in) < 8192 {
		in = append(in, frags[rng.Intn(len(frags))]...)
	}
	in = in[:8192]

	want := Matches(m, in, Config{KeepOnMatch: true})
	pr := engine.NewProfile(m.Program(), 64)
	var got []engine.MatchEvent
	res := NewRunner(m).Run(in, Config{
		KeepOnMatch: true, Profile: pr,
		OnMatch: func(fsa, end int) { got = append(got, engine.MatchEvent{FSA: fsa, End: end}) },
	})
	if res.FellBack {
		t.Fatal("unexpected fallback on a cache-friendly input")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("profiled run diverged: %d events vs %d", len(got), len(want))
	}
	if wantS := int64(len(in) / 64); pr.Samples() != wantS {
		t.Fatalf("samples = %d, want %d", pr.Samples(), wantS)
	}
	var visits int64
	for q, v := range pr.Visits() {
		if v < 0 {
			t.Fatalf("negative visits at state %d", q)
		}
		visits += v
	}
	if visits == 0 {
		t.Fatal("no state visits recorded")
	}
}

// TestProfileAcrossFallback checks that a scan that thrashes the cache and
// falls back to the iMFAnt engine keeps profiling end to end: events stay
// byte-identical and the sample count covers the whole stream.
func TestProfileAcrossFallback(t *testing.T) {
	_, m := compile(t, "a+b", "b+a", "ab+a", "ba+b", "aa", "bb")
	rng := rand.New(rand.NewSource(11))
	in := make([]byte, 4096)
	for i := range in {
		in[i] = byte('a' + rng.Intn(2))
	}
	want := Matches(m, in, Config{KeepOnMatch: true})

	pr := engine.NewProfile(m.Program(), 32)
	var got []engine.MatchEvent
	res := NewRunner(m).Run(in, Config{
		KeepOnMatch: true, MaxStates: 4, MaxFlushes: 2, Profile: pr,
		OnMatch: func(fsa, end int) { got = append(got, engine.MatchEvent{FSA: fsa, End: end}) },
	})
	if !res.Thrashed {
		t.Fatal("input did not thrash the tiny cache")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("profiled fallback run diverged: %d events vs %d", len(got), len(want))
	}
	// The cached prefix and the engine tail sample on the same stride, so
	// the total is within one stride's rounding of the whole stream.
	minSamples := int64(len(in)/32) - 2
	if pr.Samples() < minSamples {
		t.Fatalf("samples = %d, want ≥ %d (whole stream covered)", pr.Samples(), minSamples)
	}
}

// TestProfilePopDelegates checks that pop-mode scans (delegated to the
// engine outright) still profile.
func TestProfilePopDelegates(t *testing.T) {
	_, m := compile(t, "ab", "abc")
	in := []byte("zabcabczzabz")
	pr := engine.NewProfile(m.Program(), 4)
	res := NewRunner(m).Run(in, Config{KeepOnMatch: false, Profile: pr})
	if !res.FellBack {
		t.Fatal("pop mode did not delegate")
	}
	if pr.Samples() != int64(len(in)/4) {
		t.Fatalf("samples = %d, want %d", pr.Samples(), len(in)/4)
	}
}
