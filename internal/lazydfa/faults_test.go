package lazydfa

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/faultpoint"
)

// thrashy returns a matcher and an input that thrash a MaxStates-4 cache
// (reused from TestFlushAndFallback's setup).
func thrashy(t *testing.T) (*Matcher, []byte) {
	t.Helper()
	_, m := compile(t, "a+b", "b+a", "ab+a", "ba+b", "aa", "bb")
	r := rand.New(rand.NewSource(11))
	in := make([]byte, 4096)
	for i := range in {
		in[i] = byte('a' + r.Intn(2))
	}
	return m, in
}

// TestThrashRetryLadder walks the full degradation ladder: thrash → one-shot
// grow → thrash at the grown cap → permanent pin to the iMFAnt engine. Events
// stay byte-identical on every rung.
func TestThrashRetryLadder(t *testing.T) {
	m, in := thrashy(t)
	want := Matches(m, in, Config{KeepOnMatch: true})
	collect := func(sink *[]engine.MatchEvent) func(int, int) {
		*sink = nil
		return func(fsa, end int) { *sink = append(*sink, engine.MatchEvent{FSA: fsa, End: end}) }
	}
	// This ruleset reaches 7 distinct lazy states on this input; cap 3 and
	// its grown double 6 both overflow, and the negative flush budget turns
	// the first full cache into a thrash.
	cfg := Config{KeepOnMatch: true, MaxStates: 3, MaxFlushes: -1, ThrashRetry: true}
	r := NewRunner(m)

	var got []engine.MatchEvent
	cfg.OnMatch = collect(&got)
	res := r.Run(in, cfg)
	if !res.Thrashed || res.Grew || res.Pinned {
		t.Fatalf("scan 1: Thrashed=%v Grew=%v Pinned=%v, want thrash only", res.Thrashed, res.Grew, res.Pinned)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("scan 1 diverged")
	}

	cfg.OnMatch = collect(&got)
	res = r.Run(in, cfg)
	if !res.Grew || res.Pinned {
		t.Fatalf("scan 2: Grew=%v Pinned=%v, want grown retry", res.Grew, res.Pinned)
	}
	if r.MaxStates() != 6 {
		t.Fatalf("scan 2 ran with cap %d, want doubled 6", r.MaxStates())
	}
	if !res.Thrashed {
		t.Fatal("scan 2: cap 6 should still thrash this input")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("scan 2 diverged")
	}

	cfg.OnMatch = collect(&got)
	res = r.Run(in, cfg)
	if !res.Pinned || !res.FellBack {
		t.Fatalf("scan 3: Pinned=%v FellBack=%v, want permanent pin", res.Pinned, res.FellBack)
	}
	if res.Thrashed || res.Flushes != 0 || res.CacheMisses != 0 {
		t.Fatalf("scan 3 touched the cache: Thrashed=%v Flushes=%d Misses=%d",
			res.Thrashed, res.Flushes, res.CacheMisses)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("scan 3 diverged")
	}

	// Pin is permanent: scan 4 delegates again.
	if res = r.Run(in, cfg); !res.Pinned {
		t.Fatal("scan 4 not pinned")
	}
	tot := r.Totals()
	if tot.Grows != 1 || tot.Pins != 2 || tot.Fallbacks != 2 {
		t.Fatalf("totals Grows=%d Pins=%d Fallbacks=%d, want 1/2/2", tot.Grows, tot.Pins, tot.Fallbacks)
	}
}

// TestThrashRetrySucceedsAtGrownCap checks the recovery rung: when the grown
// cache holds the traffic, the runner stays on the cached path and never pins.
func TestThrashRetrySucceedsAtGrownCap(t *testing.T) {
	m, in := thrashy(t)
	r := NewRunner(m)
	// Cap 4 overflows this ruleset's 7 lazy states and the negative budget
	// turns that into a thrash; the doubled cap 8 holds the full state set.
	cfg := Config{KeepOnMatch: true, MaxStates: 4, MaxFlushes: -1, ThrashRetry: true}
	res := r.Run(in, cfg)
	if !res.Thrashed {
		t.Fatalf("cap 4 did not thrash (cached %d states)", res.CachedStates)
	}
	res = r.Run(in, cfg)
	if !res.Grew {
		t.Fatal("scan 2 did not grow")
	}
	if res.Thrashed || res.FellBack {
		t.Fatalf("grown cap %d still fell back (%d states)", r.MaxStates(), res.CachedStates)
	}
	for i := 0; i < 2; i++ {
		if res = r.Run(in, cfg); res.Pinned || res.FellBack {
			t.Fatalf("healthy grown runner degraded on scan %d", i+3)
		}
	}
	if tot := r.Totals(); tot.Grows != 1 || tot.Pins != 0 {
		t.Fatalf("totals Grows=%d Pins=%d, want 1/0", tot.Grows, tot.Pins)
	}
}

// TestInjectedFaultsPreserveEvents drives every cache fault point through the
// cached path and asserts the oracle invariant: the event stream is
// byte-identical to the fault-free run.
func TestInjectedFaultsPreserveEvents(t *testing.T) {
	m, in := thrashy(t)
	want := Matches(m, in, Config{KeepOnMatch: true})
	scheds := map[string]faultpoint.Schedule{
		"thrash-first-chunk": faultpoint.OnHit(faultpoint.LazyThrash, 1),
		"thrash-mid":         faultpoint.OnHit(faultpoint.LazyThrash, 3),
		"flush-storm":        faultpoint.Every(faultpoint.LazyFlush, 1),
		"alloc-cap":          faultpoint.Every(faultpoint.AllocCap, 2),
		"random-mix": faultpoint.Random(42, map[faultpoint.Point]float64{
			faultpoint.LazyFlush:  0.3,
			faultpoint.LazyThrash: 0.05,
			faultpoint.AllocCap:   0.3,
		}),
	}
	for name, sched := range scheds {
		t.Run(name, func(t *testing.T) {
			in2 := faultpoint.New(sched)
			var got []engine.MatchEvent
			r := NewRunner(m)
			r.Begin(Config{KeepOnMatch: true, Faults: in2,
				Checkpoint: func() error { return nil }, CheckpointEvery: 256,
				OnMatch: func(fsa, end int) { got = append(got, engine.MatchEvent{FSA: fsa, End: end}) }})
			for off := 0; off < len(in); off += 777 {
				end := off + 777
				if end > len(in) {
					end = len(in)
				}
				r.Feed(in[off:end], end == len(in))
			}
			res := r.End()
			if in2.TotalFired() == 0 {
				t.Fatal("schedule never fired")
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("events diverged under %s: %d vs %d", name, len(got), len(want))
			}
			if res.Symbols != len(in) {
				t.Fatalf("Symbols=%d, want %d", res.Symbols, len(in))
			}
		})
	}
}

// TestInjectedThrashAtStreamStart pins the offset-0 soundness argument:
// a forced fallback before any byte ran resumes the empty vector at offset 0,
// which must behave exactly like a fresh engine run (^-anchored inits fire).
func TestInjectedThrashAtStreamStart(t *testing.T) {
	_, m := compile(t, "^ab", "ab", "b$")
	in := []byte("abab")
	want := Matches(m, in, Config{KeepOnMatch: true})
	var got []engine.MatchEvent
	res := NewRunner(m).Run(in, Config{KeepOnMatch: true,
		Faults: faultpoint.New(faultpoint.OnHit(faultpoint.LazyThrash, 1)),
		OnMatch: func(fsa, end int) { got = append(got, engine.MatchEvent{FSA: fsa, End: end}) }})
	if !res.Thrashed {
		t.Fatal("injected thrash did not fire")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("offset-0 fallback diverged: got %v want %v", got, want)
	}
}
