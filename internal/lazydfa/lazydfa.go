// Package lazydfa executes an MFSA program by on-the-fly (lazy)
// determinization of the iMFAnt traversal.
//
// iMFAnt's per-byte cost grows with the symbol-indexed transition-list
// density of the program (§V of the paper), while a determinized scan pays
// one indexed load per byte — but offline subset construction over a merged
// MFSA explodes (§II). This engine takes the middle road, in the tradition
// of RE2's bounded-cache DFA and the simultaneous-automata line of work:
// each distinct iMFAnt state vector — the set of (state, J-set) activation
// pairs — is one lazy-DFA state; successors are computed on demand by
// running a single iMFAnt step (engine.Stepper) and cached in a bounded
// transition table. Rows are keyed by a compressed byte-class alphabet
// (equivalence classes of Σ under the program's transition labels), so a
// cached row is NumClasses entries wide instead of 256. Match metadata —
// the per-FSA accept mask and the $-anchored accept-at-end mask — is
// attached to each cached state, so the hot loop is one load plus an
// occasional accept emission.
//
// When the cache fills, the whole table is flushed (RE2-style) and rebuilt
// from the current vector; inputs that keep flushing fall back transparently
// to the iMFAnt engine.Runner for the rest of the stream, resumed from the
// exact mid-stream activation vector. Configurations the cache cannot
// represent at all — the Eq. 5 pop (KeepOnMatch == false), under which the
// successor vector is no longer a pure function of (vector, symbol) at the
// stream end — delegate to the engine from the first byte.
//
// Match events are reported at most once per (FSA, end offset): the cached
// accept mask is the union over the accepting paths of a step, so the
// per-final-state multiplicity of raw iMFAnt events collapses. The distinct
// (FSA, end) sets are identical to the iMFAnt engine's in keep mode,
// regardless of cache size, flushes, or fallback.
package lazydfa

import (
	"math/bits"

	"repro/internal/bytescan"
	"repro/internal/engine"
	"repro/internal/faultpoint"
)

// Defaults for Config fields left zero.
const (
	// DefaultMaxStates bounds the cached DFA states per runner. With a
	// 256-class worst-case alphabet this caps the transition table at
	// 4 MiB of row storage.
	DefaultMaxStates = 4096
	// DefaultMaxFlushes is the number of cache flushes tolerated per
	// stream before the runner concludes the input thrashes the cache and
	// falls back to the iMFAnt engine.
	DefaultMaxFlushes = 8
	// minStates is the smallest usable cap: the restart state, the
	// current state preserved across a flush, and one successor.
	minStates = 3
	// maxAccelActs bounds the activation-vector width of states considered
	// for acceleration. Wide vectors are never quiet loop hubs — they carry
	// many live paths, hence many live bytes — so rejecting them up front
	// avoids paying a per-class Step probe for states that would fail
	// classification anyway.
	maxAccelActs = 4
)

// Config tunes one lazy-DFA scan.
type Config struct {
	// MaxStates caps the cached DFA states; 0 selects DefaultMaxStates,
	// values below the structural minimum of 3 are raised to it.
	MaxStates int
	// MaxFlushes caps whole-cache flushes per stream before falling back
	// to the iMFAnt engine; 0 selects DefaultMaxFlushes, negative values
	// disable flushing (fallback on the first full cache).
	MaxFlushes int
	// KeepOnMatch mirrors engine.Config.KeepOnMatch. Only keep semantics
	// (true) are cacheable; pop semantics delegate the whole stream to
	// the iMFAnt engine, preserving its exact event stream.
	KeepOnMatch bool
	// OnMatch, when non-nil, receives every match with the FSA identifier
	// and the end offset (inclusive, absolute within the stream).
	OnMatch func(fsa, end int)
	// Checkpoint, when non-nil, is polled about every CheckpointEvery
	// bytes during Feed (on both the cached path and the iMFAnt
	// fallback). A non-nil return cancels the scan: the runner stops
	// consuming input, every further Feed is a no-op, and Err reports the
	// cause.
	Checkpoint func() error
	// CheckpointEvery is the polling granularity of Checkpoint in bytes;
	// 0 selects engine.DefaultCheckpointEvery.
	CheckpointEvery int
	// Accel enables state acceleration: every cached DFA state is
	// classified at construction time, and a state whose live outgoing
	// byte set is small (≤ 4 distinct bytes; every other byte provably
	// self-loops back to it without emitting) lets the run loop jump with
	// a bytescan kernel straight to the next live byte instead of stepping
	// the transition table once per byte. Results are byte-identical with
	// acceleration on or off; toggling it between scans rebuilds the cache
	// (classification is part of a cached state). The iMFAnt fallback
	// inherits the setting as its own start-byte skip.
	Accel bool
	// Profile, when non-nil, enables the sampling state profiler: every
	// Profile.Stride() input symbols the current cached state's
	// activation vector is folded into the shared Profile, attributing
	// heat to the underlying MFSA states. The iMFAnt fallback (and the
	// pop-mode delegate) inherit the Profile, so a scan is profiled end
	// to end regardless of which engine finishes it. Sampling happens at
	// stride-block boundaries outside the per-byte loop; a nil Profile
	// costs one branch per fed chunk.
	Profile *engine.Profile
	// ThrashRetry enables the degradation ladder across scans of this
	// Runner: the first thrash fallback doubles the cache cap for the
	// next scan (one-shot retry-with-larger-cache), and a thrash at the
	// grown cap pins the runner to the iMFAnt engine permanently —
	// bounded backoff instead of rebuild-thrash-rebuild churn on traffic
	// the cache cannot hold. Result.Grew/Pinned and Totals.Grows/Pins
	// record the rungs taken.
	ThrashRetry bool
	// Faults, when non-nil, arms this scan's fault-injection sites
	// (flush storms, forced thrash, allocation caps, stalled chunks) and
	// is inherited by the iMFAnt fallback and delegates. Like Profile, a
	// nil Faults costs one predictable branch per fed chunk. Injected
	// faults only force transitions the runner already implements
	// exactly; they never change the reported matches.
	Faults *faultpoint.Injector
}

// Result aggregates one scan.
type Result struct {
	// Matches counts the reported match events. In keep (cached) mode an
	// event is one distinct (FSA, end offset); in pop mode the engine's
	// per-final-state multiplicity is preserved.
	Matches int64
	// PerFSA counts events per merged-FSA identifier.
	PerFSA []int64
	// Symbols is the number of input bytes processed.
	Symbols int
	// CachedStates is the number of distinct DFA states cached at stream
	// end (after the last flush, if any).
	CachedStates int
	// Flushes counts whole-cache flushes during the scan.
	Flushes int
	// FellBack reports that the scan finished on the iMFAnt engine.
	FellBack bool
	// Thrashed reports that the fallback was forced by cache thrash (the
	// flush budget ran out), as opposed to pop-mode delegation, which is
	// a configuration choice. Thrashed implies FellBack.
	Thrashed bool
	// CacheHits counts input bytes served by a cached transition row;
	// CacheMisses counts bytes whose successor had to be computed by an
	// iMFAnt step. Both cover only the cached portion of the scan — bytes
	// executed on the iMFAnt fallback (or the pop-mode delegate) perform
	// no cache lookups and count in neither. Hits are derived at chunk
	// granularity (cached bytes minus misses), so the per-byte hot loop
	// carries no counter update.
	CacheHits, CacheMisses int64
	// AccelBytes counts input bytes jumped over by state acceleration
	// (Config.Accel) rather than stepped one at a time — on the cached
	// path and, via the start-byte skip, on the iMFAnt fallback. Jumped
	// bytes still count in Symbols and as cache hits: they were matched
	// against, just in bulk.
	AccelBytes int64
	// AccelStates is the number of currently cached states classified as
	// accelerable (a gauge over the live cache, like CachedStates).
	AccelStates int
	// Grew reports that this scan ran with the cache cap doubled by the
	// ThrashRetry ladder after the previous scan thrashed.
	Grew bool
	// Pinned reports that this scan was delegated whole to the iMFAnt
	// engine because the ladder is out of rungs: the traffic thrashed the
	// grown cache too. Pinned implies FellBack (but not Thrashed — the
	// defeat happened on an earlier scan).
	Pinned bool
}

// Totals are cumulative counters over every scan a Runner has executed,
// including the one in progress — the promoted, runner-lifetime form of the
// per-scan Result counters, folded at End and read by the telemetry layer.
type Totals struct {
	// Scans counts completed scans (End calls).
	Scans int64
	// Symbols is the total number of input bytes processed.
	Symbols int64
	// Matches is the total number of match events.
	Matches int64
	// CacheHits and CacheMisses aggregate the per-scan cache counters.
	// Their ratio is the primary cache-sizing signal: a low hit rate on
	// steady traffic means MaxStates is too small for the ruleset.
	CacheHits, CacheMisses int64
	// Flushes counts whole-cache flushes.
	Flushes int64
	// Fallbacks counts scans abandoned to the iMFAnt engine because the
	// input thrashed the cache. Pop-mode delegation (a configuration
	// choice, not a cache defeat) is not counted.
	Fallbacks int64
	// AccelBytes aggregates the per-scan accelerated-jump byte counters.
	AccelBytes int64
	// Grows counts scans retried with a doubled cache cap after a thrash
	// (Config.ThrashRetry); at most 1 per Runner lifetime — the ladder
	// has one grow rung.
	Grows int64
	// Pins counts scans delegated whole to the iMFAnt engine because the
	// ladder bottomed out (thrash at the grown cap).
	Pins int64
}

// Matcher is the immutable, shareable lazy-DFA form of one engine.Program:
// the program plus its compressed byte-class alphabet. Create per-goroutine
// Runners from it; the Matcher itself is safe for concurrent use.
type Matcher struct {
	p       *engine.Program
	classOf [256]uint8
	nc      int
	rep     []byte // representative input byte per class
	// classBytes[c] lists the input bytes of class c in increasing order —
	// the live-byte expansion of state-acceleration classification: a
	// class probed live contributes exactly these bytes to the state's
	// hunt set.
	classBytes [][]byte
}

// New builds a Matcher over p.
func New(p *engine.Program) *Matcher {
	classOf, nc := p.ByteClasses()
	m := &Matcher{p: p, classOf: classOf, nc: nc, rep: make([]byte, nc),
		classBytes: make([][]byte, nc)}
	seen := make([]bool, nc)
	for b := 0; b < 256; b++ {
		c := classOf[b]
		if !seen[c] {
			seen[c] = true
			m.rep[c] = byte(b)
		}
		m.classBytes[c] = append(m.classBytes[c], byte(b))
	}
	return m
}

// NumClasses returns the number of byte equivalence classes — the width of
// every cached transition row.
func (m *Matcher) NumClasses() int { return m.nc }

// Program returns the underlying program.
func (m *Matcher) Program() *engine.Program { return m.p }

// state is one cached lazy-DFA state: a canonical iMFAnt activation vector
// with the match metadata of every step arriving at it.
type state struct {
	acts []engine.Activation
	// accept: FSAs matching on any arrival at this state. acceptEnd:
	// $-anchored FSAs matching only when the arriving symbol ends the
	// stream. Both are NumFSAs-wide bitsets (Words words).
	accept, acceptEnd       []uint64
	hasAccept, hasAcceptEnd bool
	// accel is the prepared skip kernel of an accelerable state (accelOK):
	// every byte outside its needle set steps the state back to itself
	// without emitting, so the run loop may jump to the next needle
	// occurrence. Classified once, when the state is cached (see classify).
	accel   bytescan.Finder
	accelOK bool
}

// Runner executes scans over one Matcher. The transition cache persists
// across scans (Begin does not clear it), so repeated scans of similar
// traffic run warm. A Runner is not safe for concurrent use; create one per
// goroutine.
type Runner struct {
	m       *Matcher
	stepper *engine.Stepper

	cfg        Config
	res        Result
	offset     int
	maxStates  int
	maxFlushes int
	stop       error // non-nil: scan cancelled by a Checkpoint failure
	// accelOn mirrors the Config.Accel the cache was built under; a toggle
	// rebuilds the cache so every cached state is (re)classified, keeping
	// classification a pure function of (vector, program, accelOn).
	accelOn bool
	// accelStates counts currently cached accelerable states (gauge).
	accelStates int

	states   []state
	rows     []int32 // len(states)·nc successor ids, -1 = not computed
	index    map[string]int32
	startRow []int32 // per-class successor of the stream-start step
	cur      int32
	keyBuf   []byte

	// Fallback state: fb non-nil routes everything to the iMFAnt engine.
	fb        *engine.Runner
	fbSeenEnd int
	fbSeen    []uint64

	// Cold state below: touched at chunk boundaries and scan edges only,
	// kept after the hot cache fields so it does not displace them.

	// Held-byte stream-end handling, mirroring engine.Runner: the most
	// recent byte of every non-final Feed is held back so a stream end
	// announced later (Feed(nil, true) or End) still has a byte to carry
	// the $-anchored accepts.
	held    [1]byte
	hasHeld bool

	// thrashed records that this scan's fallback was a cache defeat (as
	// opposed to pop-mode delegation). Begin then rebuilds the cache: the
	// table is at capacity with traffic that defeated it, so the next
	// scan would flush on its first miss anyway — a clean rebuild is
	// cheaper and leaves no half-stale table behind.
	thrashed bool
	// Degradation-ladder state (Config.ThrashRetry), runner lifetime:
	// grown records the one-shot cache grow has been spent (grownCap is
	// the doubled cap it selected); permanent pins every further scan to
	// the iMFAnt engine.
	grown     bool
	grownCap  int
	permanent bool
	ended    bool // End already folded this scan into totals
	profFill int  // symbols fed since the last profiler sample
	// cachedSymbols counts bytes executed through the cached hot loop
	// this scan (chunk granularity); CacheHits = cachedSymbols − misses.
	cachedSymbols int64
	totals        Totals
}

// NewRunner returns an execution context with an empty cache.
func NewRunner(m *Matcher) *Runner {
	r := &Runner{
		m:         m,
		stepper:   engine.NewStepper(m.p),
		index:     make(map[string]int32),
		startRow:  make([]int32, m.nc),
		fbSeen:    make([]uint64, m.p.Words()),
		fbSeenEnd: -1,
	}
	r.resetCache()
	return r
}

// Run scans input as one whole stream.
func (r *Runner) Run(input []byte, cfg Config) Result {
	r.Begin(cfg)
	r.Feed(input, true)
	return r.End()
}

// Begin starts a (possibly chunked) scan. The transition cache survives
// from previous scans unless the configured MaxStates changed or the
// previous scan ended in a thrash fallback, both of which rebuild it.
func (r *Runner) Begin(cfg Config) {
	cfg.MaxStates = ResolveMaxStates(cfg.MaxStates)
	switch {
	case cfg.MaxFlushes == 0:
		cfg.MaxFlushes = DefaultMaxFlushes
	case cfg.MaxFlushes < 0:
		cfg.MaxFlushes = 0
	}
	// Degradation ladder: a thrash on the previous scan spends the
	// one-shot grow rung (double the cap and retry the cached path); a
	// thrash at the grown cap pins the runner to the iMFAnt engine — the
	// traffic has defeated both caps, so rebuilding the cache every scan
	// would only add churn on top of the fallback it always ends in.
	var grew, pinned bool
	if cfg.ThrashRetry && cfg.KeepOnMatch {
		if r.thrashed && !r.permanent {
			if !r.grown {
				r.grown = true
				r.grownCap = 2 * cfg.MaxStates
				grew = true
			} else {
				r.permanent = true
			}
		}
		if r.grown && !r.permanent {
			cfg.MaxStates = r.grownCap
		}
		pinned = r.permanent
	}
	rebuild := (cfg.MaxStates != r.maxStates && r.maxStates != 0) ||
		r.thrashed || cfg.Accel != r.accelOn
	r.accelOn = cfg.Accel // before resetCache, so state 0 is classified
	if rebuild {
		r.resetCache() // cache shaped by the old cap/accel mode or thrashed
	}
	r.thrashed = false
	r.maxStates = cfg.MaxStates
	r.maxFlushes = cfg.MaxFlushes
	r.cfg = cfg
	r.res = Result{PerFSA: make([]int64, r.m.p.NumFSAs()), Grew: grew}
	r.offset = 0
	r.cur = 0
	r.stop = nil
	r.hasHeld = false
	r.ended = false
	r.cachedSymbols = 0
	r.profFill = 0
	r.fb = nil
	r.fbSeenEnd = -1
	for i := range r.fbSeen {
		r.fbSeen[i] = 0
	}
	if !cfg.KeepOnMatch {
		// Pop semantics: the successor vector depends on what was
		// emitted at the stream end, so it cannot be cached. Delegate
		// the whole stream, preserving iMFAnt's exact event stream
		// (per-final-state multiplicity included).
		r.res.FellBack = true
		r.fb = engine.NewRunner(r.m.p)
		r.fb.Begin(engine.Config{KeepOnMatch: false, OnMatch: r.emitOne,
			Profile: cfg.Profile, Accel: cfg.Accel, Faults: cfg.Faults})
		return
	}
	if pinned {
		// Ladder bottom: delegate the whole stream to the iMFAnt engine,
		// deduplicated to the cached path's exact event semantics (one
		// event per (FSA, end), ascending FSA order).
		r.res.FellBack = true
		r.res.Pinned = true
		r.fb = engine.NewRunner(r.m.p)
		r.fb.Begin(engine.Config{KeepOnMatch: true, OnMatch: r.emitDedup,
			Profile: cfg.Profile, Accel: cfg.Accel, Faults: cfg.Faults})
	}
}

// BeginAt starts a chunked scan mid-stream: like Begin, but the scan's
// first byte sits at absolute stream offset. The ^-anchored inits never
// fire (they belong to offset 0), reported match offsets are absolute, and
// the cached path keys its first step off the ordinary transition rows
// instead of the stream-start row — a fresh scan that simply is not at the
// head of the stream. This is the speculative-worker entry point of
// segmented scanning. BeginAt(cfg, 0) is identical to Begin(cfg).
func (r *Runner) BeginAt(cfg Config, offset int) {
	r.Begin(cfg)
	if offset == 0 {
		return
	}
	r.offset = offset
	if r.fb != nil {
		// Begin started the delegate (pop-mode or ladder-pinned) at offset
		// 0; re-resume it at the true offset with the same emission wiring
		// Begin chose. The delegate carries no Checkpoint — this runner's
		// feedSplit polls it.
		ecfg := engine.Config{KeepOnMatch: true, OnMatch: r.emitDedup,
			Profile: cfg.Profile, Accel: cfg.Accel, Faults: cfg.Faults}
		if !cfg.KeepOnMatch {
			ecfg = engine.Config{KeepOnMatch: false, OnMatch: r.emitOne,
				Profile: cfg.Profile, Accel: cfg.Accel, Faults: cfg.Faults}
		}
		r.fb.Resume(ecfg, nil, offset)
	}
}

// Frontier returns the scan's current activation vector in canonical form
// (sorted by state, fresh slices): the complete traversal state after the
// bytes fed so far, suitable for seeding a continuation via
// engine.Runner.Resume. Call FlushHeld first — a held-back byte is not yet
// reflected in the vector. On an engine fallback (thrash, pop-mode
// delegation, or a ladder pin) the fallback runner's vector is returned.
func (r *Runner) Frontier() []engine.Activation {
	if r.fb != nil {
		return r.fb.Frontier()
	}
	acts := r.states[r.cur].acts
	out := make([]engine.Activation, len(acts))
	for i, a := range acts {
		J := make([]uint64, len(a.J))
		copy(J, a.J)
		out[i] = engine.Activation{State: a.State, J: J}
	}
	return out
}

// Feed consumes the next chunk of the stream. Set final on the last chunk so
// $-anchored rules can match on the true last byte; splitting a stream into
// chunks never changes the reported matches.
//
// Like engine.Runner, the runner holds back the most recent byte of every
// non-final Feed, so a stream end announced after the fact — Feed(nil,
// true), or End with no final Feed — still reports the $-anchored accepts
// of the true last byte.
//
// When Config.Checkpoint is set, Feed polls it between blocks of
// CheckpointEvery bytes; once it fails, the remaining input is dropped and
// Err returns the cause.
func (r *Runner) Feed(chunk []byte, final bool) {
	if r.stop != nil {
		return
	}
	if r.hasHeld && (len(chunk) > 0 || final) {
		r.hasHeld = false
		r.feedSplit(r.held[:], final && len(chunk) == 0)
		if r.stop != nil || (final && len(chunk) == 0) {
			return
		}
	}
	if len(chunk) == 0 {
		if final {
			r.feedSplit(nil, true)
		}
		return
	}
	if final {
		r.feedSplit(chunk, true)
		return
	}
	r.feedSplit(chunk[:len(chunk)-1], false)
	if r.stop == nil {
		r.held[0] = chunk[len(chunk)-1]
		r.hasHeld = true
	}
}

// FlushHeld feeds the held-back byte as ordinary (non-final) data — the
// cancellation-path companion of the held-byte contract (see
// engine.Runner.FlushHeld). It also drains the fallback engine's own held
// byte and any buffered dedup events, so every byte a caller reported as
// consumed has been matched against.
func (r *Runner) FlushHeld() {
	if r.stop != nil {
		return
	}
	if r.hasHeld {
		r.hasHeld = false
		r.feedSplit(r.held[:], false)
	}
	if r.fb != nil {
		r.fb.FlushHeld()
		r.flushPending()
	}
}

// feedSplit runs chunk through feedChunk in Checkpoint-sized blocks.
func (r *Runner) feedSplit(chunk []byte, final bool) {
	if r.cfg.Checkpoint == nil {
		r.feedChunk(chunk, final)
		return
	}
	every := r.cfg.CheckpointEvery
	if every <= 0 {
		every = engine.DefaultCheckpointEvery
	}
	for off := 0; ; off += every {
		if err := r.cfg.Checkpoint(); err != nil {
			r.stop = err
			return
		}
		end := off + every
		if end >= len(chunk) {
			r.feedChunk(chunk[off:], final)
			return
		}
		r.feedChunk(chunk[off:end], false)
	}
}

// Err returns the Checkpoint error that cancelled the scan, if any.
func (r *Runner) Err() error { return r.stop }

// feedChunk is the uninterruptible Feed body. Profiled scans on the cached
// path route through feedProfiled, which replays the same body in
// stride-sized blocks; once the scan is on an engine fallback the fallback
// runner profiles itself (its Config carries the same Profile).
func (r *Runner) feedChunk(chunk []byte, final bool) {
	if r.cfg.Faults != nil && r.fb == nil {
		// Once on a fallback the engine runner (armed with the same
		// injector) stalls its own chunks; stalling here too would count
		// the site twice per chunk.
		r.cfg.Faults.Stall()
	}
	if r.cfg.Profile != nil && r.fb == nil {
		r.feedProfiled(chunk, final)
		return
	}
	r.feedBody(chunk, final)
}

// feedProfiled feeds chunk through the unmodified hot loop in stride-sized
// blocks and samples the current cached state's activation vector at each
// block boundary, attributing heat to the underlying MFSA states. Partial
// strides carry across chunks via profFill.
func (r *Runner) feedProfiled(chunk []byte, final bool) {
	pr := r.cfg.Profile
	stride := pr.Stride()
	for {
		// An accelerable parked state jumps over the whole remaining chunk
		// before block-splitting, then settles the sampling debt in bulk:
		// the vector is constant across the jump, so the k stride
		// boundaries crossed are exactly k samples of the parked state, and
		// the partial-stride fill advances by the bytes consumed. Heat
		// shares and sample counts therefore stay byte-comparable with
		// acceleration off, while jumps are no longer capped at one
		// stride-block.
		if r.accelOn && r.offset > 0 {
			jumpEnd := len(chunk)
			if final {
				jumpEnd-- // the true last byte always steps normally
			}
			if jumpEnd > 0 {
				if st := &r.states[r.cur]; st.accelOK {
					j := st.accel.Index(chunk[:jumpEnd])
					if j < 0 {
						j = jumpEnd
					}
					if j > 0 {
						pr.SampleActivationsN(st.acts, int64((r.profFill+j)/stride))
						r.profFill = (r.profFill + j) % stride
						r.res.AccelBytes += int64(j)
						r.res.Symbols += j
						r.cachedSymbols += int64(j)
						r.offset += j
						chunk = chunk[j:]
					}
				}
			}
		}
		n := stride - r.profFill
		if n > len(chunk) {
			r.feedBody(chunk, final)
			r.profFill += len(chunk)
			return
		}
		blockFinal := final && n == len(chunk)
		r.feedBody(chunk[:n], blockFinal)
		chunk = chunk[n:]
		if r.stop != nil {
			return
		}
		if r.fb != nil {
			// Fell back mid-block: the engine runner profiles the rest.
			r.feedBody(chunk, final)
			return
		}
		r.profFill = 0
		pr.SampleActivations(r.states[r.cur].acts)
		if len(chunk) == 0 {
			return
		}
	}
}

// feedBody executes one chunk on the cached path (or relays it to the
// engine fallback).
func (r *Runner) feedBody(chunk []byte, final bool) {
	r.res.Symbols += len(chunk)
	if r.fb != nil {
		r.fb.Feed(chunk, final)
		r.flushPending()
		r.offset += len(chunk)
		return
	}
	if in := r.cfg.Faults; in != nil {
		// Injected cache faults, at chunk granularity like the natural
		// ones' observable effects. A forced thrash takes the ordinary
		// fallback path from the current vector (sound even at offset 0:
		// Resume of the empty vector at 0 is a fresh stream start); a
		// forced flush spends the ordinary flush budget and falls back
		// once the budget is gone, exactly like a storm of real flushes.
		if in.Hit(faultpoint.LazyThrash) {
			r.fallback(chunk, 0, final)
			return
		}
		if in.Hit(faultpoint.LazyFlush) {
			if r.res.Flushes >= r.maxFlushes {
				r.fallback(chunk, 0, final)
				return
			}
			r.flush()
		}
	}
	nc := r.m.nc
	classOf := &r.m.classOf
	base := r.offset
	last := len(chunk) - 1
	// jumpEnd bounds accelerated jumps: the true last byte of the stream is
	// always stepped normally, so a parked state's $-anchored accepts
	// (acceptEnd) still fire on it — a jump may not cross the stream-end
	// bookkeeping.
	jumpEnd := len(chunk)
	if final {
		jumpEnd--
	}
	pos := 0
	if r.accelOn && base > 0 && jumpEnd > 0 {
		// The state parked across the chunk boundary may be accelerable:
		// hunt its live bytes from the first byte of the chunk. Stream
		// byte 0 is exempt (base > 0) — its step also enables the
		// ^-anchored inits, which classification does not model.
		if st := &r.states[r.cur]; st.accelOK {
			j := st.accel.Index(chunk[:jumpEnd])
			if j < 0 {
				j = jumpEnd
			}
			r.res.AccelBytes += int64(j)
			pos = j
		}
	}
	for ; pos < len(chunk); pos++ {
		cls := int(classOf[chunk[pos]])
		var next int32
		if base+pos == 0 {
			// The stream's first step also enables the ^-anchored
			// inits; its successors live in a dedicated row.
			if next = r.startRow[cls]; next < 0 {
				next = r.miss(cls, true)
			}
		} else if next = r.rows[int(r.cur)*nc+cls]; next < 0 {
			next = r.miss(cls, false)
		}
		if next < 0 {
			// Cache thrash: hand the rest of the stream to iMFAnt,
			// resumed from the current activation vector. Only the
			// bytes before the thrashing one ran out of the cache.
			r.cachedSymbols += int64(pos)
			r.fallback(chunk, pos, final)
			return
		}
		st := &r.states[next]
		if st.hasAccept {
			r.emitMask(st.accept, base+pos)
		}
		if final && pos == last && st.hasAcceptEnd {
			r.emitMask(st.acceptEnd, base+pos)
		}
		r.cur = next
		if st.accelOK && pos+1 < jumpEnd {
			// Arrived in an accelerable state: every byte outside its
			// needle set self-loops without emitting, so jump straight to
			// the next needle (or the jump bound). Skipped bytes count as
			// cache hits — they were matched, in bulk.
			rest := chunk[pos+1 : jumpEnd]
			j := st.accel.Index(rest)
			if j < 0 {
				j = len(rest)
			}
			r.res.AccelBytes += int64(j)
			pos += j
		}
	}
	r.cachedSymbols += int64(len(chunk))
	r.offset += len(chunk)
}

// End finishes the scan and returns the accumulated result. If no Feed
// announced the stream end, End flushes the held-back byte as the final
// one. End also folds the scan into the runner's cumulative Totals; calling
// it again before the next Begin is idempotent.
func (r *Runner) End() Result {
	if r.hasHeld && r.stop == nil {
		r.hasHeld = false
		r.feedSplit(r.held[:], true)
	}
	if r.fb != nil {
		r.fb.End()
		r.flushPending()
	}
	r.res.CachedStates = len(r.states)
	r.res.AccelStates = r.accelStates
	r.res.CacheHits = r.cachedSymbols - r.res.CacheMisses
	if !r.ended {
		r.ended = true
		if r.fb != nil {
			// The fallback's own start-byte skips belong to this scan;
			// folded once here (End is idempotent).
			r.res.AccelBytes += r.fb.Totals().AccelBytes
		}
		r.totals.Scans++
		r.totals.Symbols += int64(r.res.Symbols)
		r.totals.Matches += r.res.Matches
		r.totals.CacheHits += r.res.CacheHits
		r.totals.CacheMisses += r.res.CacheMisses
		r.totals.Flushes += int64(r.res.Flushes)
		r.totals.AccelBytes += r.res.AccelBytes
		if r.thrashed {
			r.totals.Fallbacks++
		}
		if r.res.Grew {
			r.totals.Grows++
		}
		if r.res.Pinned {
			r.totals.Pins++
		}
	}
	return r.res
}

// Totals returns the runner's cumulative counters: every finished scan plus
// the live state of an in-progress one. Folding happens at End and chunk
// boundaries — reading Totals adds no per-byte cost.
func (r *Runner) Totals() Totals {
	t := r.totals
	if !r.ended {
		t.Symbols += int64(r.res.Symbols)
		t.Matches += r.res.Matches
		t.CacheMisses += r.res.CacheMisses
		t.CacheHits += r.cachedSymbols - r.res.CacheMisses
		t.Flushes += int64(r.res.Flushes)
		t.AccelBytes += r.res.AccelBytes
		if r.fb != nil {
			t.AccelBytes += r.fb.Totals().AccelBytes
		}
		if r.thrashed {
			t.Fallbacks++
		}
		if r.res.Grew {
			t.Grows++
		}
		if r.res.Pinned {
			t.Pins++
		}
	}
	return t
}

// CachedStates returns the current number of cached DFA states — the live
// size of the transition table, bounded by MaxStates.
func (r *Runner) CachedStates() int { return len(r.states) }

// AccelStates returns the number of currently cached states classified as
// accelerable — like CachedStates, a gauge over the live transition table.
func (r *Runner) AccelStates() int { return r.accelStates }

// MaxStates returns the resolved cache cap of the current (or most recent)
// scan; 0 before the first Begin.
func (r *Runner) MaxStates() int { return r.maxStates }

// ResolveMaxStates normalizes a Config.MaxStates value to the cap a scan
// actually runs with: 0 (or negative) selects DefaultMaxStates and values
// below the structural minimum are raised to it.
func ResolveMaxStates(n int) int {
	if n <= 0 {
		return DefaultMaxStates
	}
	if n < minStates {
		return minStates
	}
	return n
}

// miss computes the uncached successor of the current state (or of the
// stream-start pseudo-state) on byte class cls, caching and returning its
// id. It returns -1 when the cache is full and the flush budget is spent —
// the caller must fall back.
func (r *Runner) miss(cls int, streamStart bool) int32 {
	var src []engine.Activation
	if !streamStart {
		src = r.states[r.cur].acts
	}
	next, accept, acceptEnd := r.stepper.Step(src, r.m.rep[cls], streamStart)
	key := r.key(next)
	id, ok := r.index[key]
	if !ok {
		// AllocCap injection: the next insertion behaves as if the state
		// cap had been reached (allocation pressure) without the cache
		// actually being full — the flush-or-fallback path verbatim.
		if len(r.states) >= r.maxStates || r.cfg.Faults.Hit(faultpoint.AllocCap) {
			if r.res.Flushes >= r.maxFlushes {
				return -1
			}
			r.flush()
		}
		id = r.add(next, accept, acceptEnd)
	}
	r.res.CacheMisses++
	if streamStart {
		r.startRow[cls] = id
	} else {
		r.rows[int(r.cur)*r.m.nc+cls] = id
	}
	return id
}

// flush drops the whole cache (RE2-style) and reseeds it with the restart
// state and the current state, so the scan continues without replay.
func (r *Runner) flush() {
	r.res.Flushes++
	cur := r.states[r.cur]
	r.resetCache()
	if len(cur.acts) > 0 {
		r.cur = r.add(cur.acts, cur.accept, cur.acceptEnd)
	} else {
		r.cur = 0
	}
}

// resetCache empties the transition table and re-inserts state 0, the
// restart state (the empty activation vector).
func (r *Runner) resetCache() {
	r.states = r.states[:0]
	r.rows = r.rows[:0]
	clear(r.index)
	for i := range r.startRow {
		r.startRow[i] = -1
	}
	r.accelStates = 0
	r.add(nil, nil, nil)
	r.cur = 0
}

// add caches a state and returns its id, growing the row table by one
// uncomputed row.
func (r *Runner) add(acts []engine.Activation, accept, acceptEnd []uint64) int32 {
	id := int32(len(r.states))
	st := state{acts: acts, accept: accept, acceptEnd: acceptEnd}
	for _, w := range accept {
		st.hasAccept = st.hasAccept || w != 0
	}
	for _, w := range acceptEnd {
		st.hasAcceptEnd = st.hasAcceptEnd || w != 0
	}
	r.states = append(r.states, st)
	r.index[r.key(acts)] = id
	for i := 0; i < r.m.nc; i++ {
		r.rows = append(r.rows, -1)
	}
	r.classify(id)
	return id
}

// classify decides, once, whether the freshly cached state id is accelerable:
// a state with no unconditional accepts whose live outgoing byte set — the
// bytes whose step leaves the activation vector — fits a bytescan.Finder
// (≤ bytescan.MaxNeedles distinct bytes). Every other byte provably steps
// the vector back to itself; since the state has no accepts, those arrivals
// emit nothing (the self-loop successor's accept mask equals the state's
// own, which is zero), so the run loop may jump straight to the next live
// byte. $-anchored accepts need no gate here: the jump bound in feedBody
// keeps the stream's true last byte on the stepped path. Probing is valid
// per byte class because all bytes of a class enable identical transition
// lists. Dead-class successor rows are prefilled as a side effect — the
// Step that proved them self-loops already paid for them.
func (r *Runner) classify(id int32) {
	st := &r.states[id]
	if !r.accelOn || st.hasAccept || len(st.acts) > maxAccelActs {
		return
	}
	var live [bytescan.MaxNeedles]byte
	n := 0
	rowBase := int(id) * r.m.nc
	for cls := 0; cls < r.m.nc; cls++ {
		next, _, _ := r.stepper.Step(st.acts, r.m.rep[cls], false)
		if sameVector(next, st.acts) {
			r.rows[rowBase+cls] = id
			continue
		}
		bs := r.m.classBytes[cls]
		if n+len(bs) > bytescan.MaxNeedles {
			return
		}
		n += copy(live[n:], bs)
	}
	if f, ok := bytescan.NewFinder(live[:n]); ok {
		st.accel = f
		st.accelOK = true
		r.accelStates++
	}
}

// sameVector reports whether two canonical activation vectors are equal.
func sameVector(a, b []engine.Activation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].State != b[i].State {
			return false
		}
		for w := range a[i].J {
			if a[i].J[w] != b[i].J[w] {
				return false
			}
		}
	}
	return true
}

// key renders an activation vector (already canonical: sorted by state) as
// the cache lookup key.
func (r *Runner) key(acts []engine.Activation) string {
	b := r.keyBuf[:0]
	for _, a := range acts {
		b = append(b, byte(a.State), byte(a.State>>8), byte(a.State>>16), byte(a.State>>24))
		for _, w := range a.J {
			b = append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
				byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
		}
	}
	r.keyBuf = b
	return string(b)
}

// fallback resumes the iMFAnt engine from the current activation vector at
// absolute offset and feeds it the unconsumed tail of the chunk. Emission
// goes through a per-offset dedup so the event stream stays byte-identical
// to the cached path's.
func (r *Runner) fallback(chunk []byte, pos int, final bool) {
	r.res.FellBack = true
	r.res.Thrashed = true
	r.thrashed = true
	r.fb = engine.NewRunner(r.m.p)
	r.fb.Resume(engine.Config{KeepOnMatch: true, OnMatch: r.emitDedup, Profile: r.cfg.Profile,
		Accel: r.cfg.Accel, Faults: r.cfg.Faults}, r.states[r.cur].acts, r.offset+pos)
	r.fb.Feed(chunk[pos:], final)
	r.flushPending()
	r.offset += len(chunk)
}

// emitDedup buffers engine events into a per-offset mask, collapsing the
// per-final-state multiplicity of raw iMFAnt events to one event per
// (FSA, end) and restoring ascending-FSA emission order — the cached
// path's exact semantics. flushPending emits the buffered offset.
func (r *Runner) emitDedup(fsa, end int) {
	if end != r.fbSeenEnd {
		r.flushPending()
		r.fbSeenEnd = end
	}
	r.fbSeen[fsa>>6] |= 1 << (uint(fsa) & 63)
}

func (r *Runner) flushPending() {
	if r.fbSeenEnd < 0 {
		return
	}
	r.emitMask(r.fbSeen, r.fbSeenEnd)
	for i := range r.fbSeen {
		r.fbSeen[i] = 0
	}
	r.fbSeenEnd = -1
}

func (r *Runner) emitMask(mask []uint64, end int) {
	for w, m := range mask {
		for ; m != 0; m &= m - 1 {
			r.emitOne(w<<6+bits.TrailingZeros64(m), end)
		}
	}
}

func (r *Runner) emitOne(fsa, end int) {
	r.res.Matches++
	r.res.PerFSA[fsa]++
	if r.cfg.OnMatch != nil {
		r.cfg.OnMatch(fsa, end)
	}
}

// Matches runs m over input and returns every (FSA, end offset) event in
// traversal order. Intended for tests and examples on small inputs.
func Matches(m *Matcher, input []byte, cfg Config) []engine.MatchEvent {
	var out []engine.MatchEvent
	cfg.OnMatch = func(fsa, end int) {
		out = append(out, engine.MatchEvent{FSA: fsa, End: end})
	}
	NewRunner(m).Run(input, cfg)
	return out
}
