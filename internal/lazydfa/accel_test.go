package lazydfa

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/engine"
)

// fillerInput returns n bytes of mostly-dead filler ('0'–'9') with the given
// live fragments salted in at deterministic positions.
func fillerInput(n int, seed int64, frags ...string) []byte {
	r := rand.New(rand.NewSource(seed))
	in := make([]byte, n)
	for i := range in {
		in[i] = byte('0' + r.Intn(10))
	}
	for _, f := range frags {
		if len(f) >= n {
			continue
		}
		off := r.Intn(n - len(f))
		copy(in[off:], f)
	}
	return in
}

// TestAccelClassification checks that a ruleset with few start bytes yields
// accelerable cached states and that a loop-dominated stream is consumed
// almost entirely by jumps.
func TestAccelClassification(t *testing.T) {
	_, m := compile(t, "xy", "xz")
	in := fillerInput(4096, 1) // no 'x' anywhere: the scan never leaves state 0
	r := NewRunner(m)
	res := r.Run(in, Config{KeepOnMatch: true, Accel: true})
	if res.Matches != 0 {
		t.Fatalf("filler input matched %d times", res.Matches)
	}
	if res.AccelStates == 0 {
		t.Fatal("no cached state classified accelerable")
	}
	if r.AccelStates() != res.AccelStates {
		t.Fatalf("AccelStates() = %d, Result.AccelStates = %d", r.AccelStates(), res.AccelStates)
	}
	// Byte 0 and the final byte always step; everything between is dead.
	if want := int64(len(in) - 2); res.AccelBytes < want {
		t.Fatalf("AccelBytes = %d, want ≥ %d on an all-dead stream", res.AccelBytes, want)
	}
	if res.AccelBytes > int64(res.Symbols) {
		t.Fatalf("AccelBytes %d exceeds Symbols %d", res.AccelBytes, res.Symbols)
	}

	// Accel off: same events, zero accel counters.
	off := NewRunner(m).Run(in, Config{KeepOnMatch: true})
	if off.AccelBytes != 0 || off.AccelStates != 0 {
		t.Fatalf("accel off reported AccelBytes=%d AccelStates=%d", off.AccelBytes, off.AccelStates)
	}
	if off.Matches != res.Matches {
		t.Fatalf("match counts diverged: on=%d off=%d", res.Matches, off.Matches)
	}
}

// TestAccelConformance checks accel on ≡ off byte-identical events across
// anchored, end-anchored, and loop-heavy patterns, whole-stream and under
// random chunking.
func TestAccelConformance(t *testing.T) {
	_, m := compile(t, "xya", "x[yz]b", "^xy", "yz$", "z+x", "xx")
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		in := make([]byte, 1+r.Intn(2048))
		for i := range in {
			if r.Intn(4) == 0 {
				in[i] = byte('x' + r.Intn(3))
			} else {
				in[i] = byte('0' + r.Intn(10))
			}
		}
		want := Matches(m, in, Config{KeepOnMatch: true})
		got := Matches(m, in, Config{KeepOnMatch: true, Accel: true})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: whole-stream accel diverged: %d events vs %d",
				trial, len(got), len(want))
		}
		// Random chunking, fresh runner, accel on.
		var chunked []engine.MatchEvent
		runner := NewRunner(m)
		runner.Begin(Config{KeepOnMatch: true, Accel: true,
			OnMatch: func(fsa, end int) {
				chunked = append(chunked, engine.MatchEvent{FSA: fsa, End: end})
			}})
		for pos := 0; pos < len(in); {
			end := pos + 1 + r.Intn(64)
			if end > len(in) {
				end = len(in)
			}
			runner.Feed(in[pos:end], end == len(in))
			pos = end
		}
		runner.End()
		if !reflect.DeepEqual(chunked, want) {
			t.Fatalf("trial %d: chunked accel diverged: %d events vs %d",
				trial, len(chunked), len(want))
		}
	}
}

// TestAccelWithTinyCache checks that jumps compose with flushes and the
// iMFAnt fallback without changing the event stream.
func TestAccelWithTinyCache(t *testing.T) {
	_, m := compile(t, "x+y", "y+x", "xy+x", "xx", "yy")
	r := rand.New(rand.NewSource(9))
	in := make([]byte, 4096)
	for i := range in {
		if r.Intn(3) == 0 {
			in[i] = byte('x' + r.Intn(2))
		} else {
			in[i] = byte('0' + r.Intn(10))
		}
	}
	want := Matches(m, in, Config{KeepOnMatch: true})
	for _, cfg := range []Config{
		{KeepOnMatch: true, Accel: true, MaxStates: 4, MaxFlushes: 1 << 30},
		{KeepOnMatch: true, Accel: true, MaxStates: 4, MaxFlushes: 1},
	} {
		var got []engine.MatchEvent
		c := cfg
		c.OnMatch = func(fsa, end int) { got = append(got, engine.MatchEvent{FSA: fsa, End: end}) }
		NewRunner(m).Run(in, c)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cfg=%+v diverged: %d events vs %d", cfg, len(got), len(want))
		}
	}
}

// TestAccelToggleRebuildsCache checks the classification invariant: toggling
// Config.Accel between scans rebuilds the cache so every cached state is
// (re)classified under the new mode.
func TestAccelToggleRebuildsCache(t *testing.T) {
	_, m := compile(t, "xy", "xz")
	in := fillerInput(512, 2, "xy", "xz")
	r := NewRunner(m)
	res := r.Run(in, Config{KeepOnMatch: true, Accel: true})
	if res.AccelStates == 0 {
		t.Fatal("accel run classified nothing")
	}
	res = r.Run(in, Config{KeepOnMatch: true})
	if r.AccelStates() != 0 {
		t.Fatalf("accel-off cache kept %d accelerable states", r.AccelStates())
	}
	if res.AccelBytes != 0 {
		t.Fatalf("accel-off scan jumped %d bytes", res.AccelBytes)
	}
	res = r.Run(in, Config{KeepOnMatch: true, Accel: true})
	if res.AccelStates == 0 || res.AccelBytes == 0 {
		t.Fatalf("re-enabled accel inert: states=%d bytes=%d", res.AccelStates, res.AccelBytes)
	}
}

// TestAccelProfiledSamples checks satellite invariant: under the sampling
// profiler, a multi-byte jump settles its crossed stride boundaries as bulk
// samples of the parked state, so sample counts and per-state visit heat are
// byte-identical with acceleration on and off.
func TestAccelProfiledSamples(t *testing.T) {
	_, m := compile(t, "xya", "x[yz]b", "z+x")
	in := fillerInput(8192, 4, "xya", "xzb", "zzzx", "xy")
	for _, chunk := range []int{len(in), 100, 7} {
		profOn := engine.NewProfile(m.p, 64)
		profOff := engine.NewProfile(m.p, 64)
		for _, run := range []struct {
			prof  *engine.Profile
			accel bool
		}{{profOn, true}, {profOff, false}} {
			r := NewRunner(m)
			r.Begin(Config{KeepOnMatch: true, Accel: run.accel, Profile: run.prof})
			for pos := 0; pos < len(in); pos += chunk {
				end := pos + chunk
				if end > len(in) {
					end = len(in)
				}
				r.Feed(in[pos:end], end == len(in))
			}
			r.End()
		}
		if profOn.Samples() != profOff.Samples() {
			t.Fatalf("chunk=%d: sample counts diverged: accel %d, baseline %d",
				chunk, profOn.Samples(), profOff.Samples())
		}
		if !reflect.DeepEqual(profOn.Visits(), profOff.Visits()) {
			t.Fatalf("chunk=%d: per-state visits diverged:\naccel    %v\nbaseline %v",
				chunk, profOn.Visits(), profOff.Visits())
		}
		if !reflect.DeepEqual(profOn.FSAActive(), profOff.FSAActive()) {
			t.Fatalf("chunk=%d: per-FSA heat diverged", chunk)
		}
	}
}

// TestAccelEndAnchoredLastByte pins the stream-end carve-out: a $-anchored
// rule whose final byte is reachable only from an accelerable state must
// still match on the true last byte — a jump may not swallow it.
func TestAccelEndAnchoredLastByte(t *testing.T) {
	_, m := compile(t, "x$")
	in := append(fillerInput(256, 6), 'x') // only 'x' is the last byte
	want := Matches(m, in, Config{KeepOnMatch: true})
	got := Matches(m, in, Config{KeepOnMatch: true, Accel: true})
	if len(want) == 0 {
		t.Fatal("oracle found no match; test input broken")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("accel diverged on $-anchored last byte: %v vs %v", got, want)
	}
}
