// Package similarity implements the insertion-deletion (INDEL) distance —
// Levenshtein distance restricted to insertions and deletions — and the
// normalized INDEL similarity the paper uses in Fig. 1 as a proxy of the
// morphological similarity between the REs of a dataset.
//
// Two implementations are provided: a classic dynamic-programming LCS and
// the bit-parallel algorithm in the style of Hyyrö, Pinzón and Shinohara
// (the paper's reference [31]), which processes 64 pattern positions per
// word operation. Both use INDEL(a,b) = len(a) + len(b) − 2·LCS(a,b).
package similarity

import "math/bits"

// Indel returns the insertion-deletion distance between a and b using the
// bit-parallel LCS under the hood.
func Indel(a, b string) int {
	return len(a) + len(b) - 2*LCSBitParallel(a, b)
}

// Similarity returns the normalized INDEL similarity 1 − INDEL/(len(a)+len(b))
// in [0, 1]. Two empty strings are defined to be fully similar. The paper's
// worked example: lewenstein vs levenshtein has INDEL 3 over lengths 10+11,
// similarity 1 − 3/21 ≈ 0.857.
func Similarity(a, b string) float64 {
	if len(a)+len(b) == 0 {
		return 1
	}
	return 1 - float64(Indel(a, b))/float64(len(a)+len(b))
}

// LCSDP returns the length of the longest common subsequence of a and b by
// the classic O(len(a)·len(b)) dynamic program with two rows. It is the
// reference implementation the bit-parallel version is tested against.
func LCSDP(a, b string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// LCSBitParallel returns the length of the longest common subsequence using
// the Allison–Dix bit-vector recurrence with multi-word support:
//
//	x  = L | M[c]
//	L' = x & ~(x − ((L << 1) | 1))
//
// where M[c] marks the positions of character c in a, and popcount(L) after
// the last text character is the LCS length. Each text character costs
// O(⌈len(a)/64⌉) word operations.
func LCSBitParallel(a, b string) int {
	m := len(a)
	if m == 0 || len(b) == 0 {
		return 0
	}
	words := (m + 63) / 64
	// Match masks, built sparsely: most byte values never occur in a.
	var masks [256][]uint64
	for i := 0; i < m; i++ {
		c := a[i]
		if masks[c] == nil {
			masks[c] = make([]uint64, words)
		}
		masks[c][i>>6] |= 1 << (uint(i) & 63)
	}
	l := make([]uint64, words)
	x := make([]uint64, words)
	sub := make([]uint64, words)
	for i := 0; i < len(b); i++ {
		mc := masks[b[i]]
		if mc == nil {
			continue // no positions to extend; L is unchanged
		}
		// x = L | M[c]
		for w := 0; w < words; w++ {
			x[w] = l[w] | mc[w]
		}
		// y = (L << 1) | 1 with inter-word carry.
		carry := uint64(1)
		for w := 0; w < words; w++ {
			nextCarry := l[w] >> 63
			sub[w] = (l[w] << 1) | carry
			carry = nextCarry
		}
		// sub = x − y with borrow propagation.
		borrow := uint64(0)
		for w := 0; w < words; w++ {
			d, b1 := bits.Sub64(x[w], sub[w], borrow)
			sub[w] = d
			borrow = b1
		}
		// L = x & ~sub
		for w := 0; w < words; w++ {
			l[w] = x[w] &^ sub[w]
		}
	}
	// Mask off bits beyond m (the subtraction can smear into them).
	if r := uint(m) & 63; r != 0 {
		l[words-1] &= (1 << r) - 1
	}
	total := 0
	for _, w := range l {
		total += bits.OnesCount64(w)
	}
	return total
}

// DatasetSimilarity returns the average normalized INDEL similarity over
// every unordered pair of distinct strings — the per-dataset quantity
// plotted in Fig. 1. It returns 0 for fewer than two strings.
func DatasetSimilarity(patterns []string) float64 {
	n := len(patterns)
	if n < 2 {
		return 0
	}
	var total float64
	var pairs int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total += Similarity(patterns[i], patterns[j])
			pairs++
		}
	}
	return total / float64(pairs)
}
