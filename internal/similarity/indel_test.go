package similarity

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperExample(t *testing.T) {
	// §I: lewenstein vs levenshtein → INDEL 3, similarity 1 − 3/21.
	if got := Indel("lewenstein", "levenshtein"); got != 3 {
		t.Fatalf("INDEL=%d, want 3", got)
	}
	want := 1 - 3.0/21.0
	if got := Similarity("lewenstein", "levenshtein"); math.Abs(got-want) > 1e-12 {
		t.Fatalf("similarity=%f, want %f", got, want)
	}
}

func TestLCSBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 0},
		{"", "b", 0},
		{"abc", "abc", 3},
		{"abc", "def", 0},
		{"abcdef", "acf", 3},
		{"aggtab", "gxtxayb", 4},
		{"aaaa", "aa", 2},
		{"ab", "ba", 1},
	}
	for _, c := range cases {
		if got := LCSDP(c.a, c.b); got != c.want {
			t.Errorf("LCSDP(%q,%q)=%d, want %d", c.a, c.b, got, c.want)
		}
		if got := LCSBitParallel(c.a, c.b); got != c.want {
			t.Errorf("LCSBitParallel(%q,%q)=%d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestIndelProperties(t *testing.T) {
	if Indel("abc", "abc") != 0 {
		t.Fatal("identical strings must have distance 0")
	}
	if got := Indel("abc", ""); got != 3 {
		t.Fatalf("distance to empty = %d, want 3", got)
	}
	if s := Similarity("", ""); s != 1 {
		t.Fatalf("similarity of empties = %f", s)
	}
	if s := Similarity("abc", "xyz"); s != 0 {
		t.Fatalf("disjoint similarity = %f, want 0", s)
	}
}

func TestLongPatternsMultiWord(t *testing.T) {
	// Exercise the multi-word carry/borrow paths with > 64-char strings.
	a := strings.Repeat("abcdefgh", 20) // 160 chars
	b := strings.Repeat("abxdefgh", 20)
	dp := LCSDP(a, b)
	bp := LCSBitParallel(a, b)
	if dp != bp {
		t.Fatalf("dp=%d bitparallel=%d", dp, bp)
	}
	if got := LCSBitParallel(a, a); got != len(a) {
		t.Fatalf("self LCS=%d, want %d", got, len(a))
	}
}

func TestQuickBitParallelEqualsDP(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	f := func() bool {
		la, lb := r.Intn(200), r.Intn(200)
		alpha := []byte("abcdxyz")
		a := make([]byte, la)
		b := make([]byte, lb)
		for i := range a {
			a[i] = alpha[r.Intn(len(alpha))]
		}
		for i := range b {
			b[i] = alpha[r.Intn(len(alpha))]
		}
		if LCSDP(string(a), string(b)) != LCSBitParallel(string(a), string(b)) {
			t.Logf("a=%q b=%q", a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMetricProperties(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	randStr := func() string {
		n := r.Intn(40)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(4))
		}
		return string(b)
	}
	f := func() bool {
		a, b, c := randStr(), randStr(), randStr()
		dab, dba := Indel(a, b), Indel(b, a)
		if dab != dba { // symmetry
			return false
		}
		if Indel(a, a) != 0 { // identity
			return false
		}
		// Triangle inequality (INDEL is a metric).
		if Indel(a, c) > Indel(a, b)+Indel(b, c) {
			t.Logf("triangle violated: %q %q %q", a, b, c)
			return false
		}
		// Similarity bounded in [0,1].
		s := Similarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetSimilarity(t *testing.T) {
	if got := DatasetSimilarity(nil); got != 0 {
		t.Fatalf("empty dataset: %f", got)
	}
	if got := DatasetSimilarity([]string{"only"}); got != 0 {
		t.Fatalf("singleton dataset: %f", got)
	}
	if got := DatasetSimilarity([]string{"aaa", "aaa", "aaa"}); got != 1 {
		t.Fatalf("identical dataset: %f", got)
	}
	got := DatasetSimilarity([]string{"abc", "xyz"})
	if got != 0 {
		t.Fatalf("disjoint pair: %f", got)
	}
	// Mixed: average over three pairs.
	ds := []string{"abcd", "abcd", "zzzz"}
	want := (1.0 + 0 + 0) / 3
	if math.Abs(DatasetSimilarity(ds)-want) > 1e-12 {
		t.Fatalf("mixed: %f, want %f", DatasetSimilarity(ds), want)
	}
}

func BenchmarkLCSDP(b *testing.B) {
	x := strings.Repeat("GET /index.php?id=", 4)
	y := strings.Repeat("GET /image.gif?v=2", 4)
	for i := 0; i < b.N; i++ {
		LCSDP(x, y)
	}
}

func BenchmarkLCSBitParallel(b *testing.B) {
	x := strings.Repeat("GET /index.php?id=", 4)
	y := strings.Repeat("GET /image.gif?v=2", 4)
	for i := 0; i < b.N; i++ {
		LCSBitParallel(x, y)
	}
}
