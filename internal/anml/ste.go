package anml

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/charset"
	"repro/internal/mfsa"
)

// This file implements the homogeneous (STE-based) ANML dialect of the
// Micron Automata Processor — the format the ANMLZoo datasets use and the
// one the paper's back-end name refers to. Homogeneous automata put symbol
// sets on states (State Transition Elements) instead of edges: an STE fires
// on input position i when its symbol set matches the byte and it was
// activated at i−1 (or it is a start element). The transition-labeled MFSA
// is homogenized by splitting every state by incoming label; belonging
// survives as an attribute on the activation edges, the same extension the
// transition dialect uses.

// STE is one state-transition element of a homogeneous network.
type STE struct {
	ID      string
	Symbols charset.Set
	// Start marks elements that may fire at any input position
	// ("all-input") or only at offset 0 ("start-of-data"). Empty for
	// non-start elements.
	Start string
	// Reports lists rules whose match ends when this STE fires.
	Reports []int
	// Activates lists outgoing activation edges.
	Activates []Activation
}

// Activation is one activate-on-match edge, carrying the belonging
// extension.
type Activation struct {
	Target  string
	Belongs []int
}

// Network is a homogeneous automata network.
type Network struct {
	ID   string
	STEs []STE
}

// Homogenize converts an MFSA into a homogeneous network by the standard
// state-splitting construction: each (state, incoming label) pair becomes
// one STE; an STE (q, L) is a start element when some transition s→q on L
// leaves an initial state s (all-input for unanchored rules, start-of-data
// for ^-anchored ones); it reports rule j when q is final for j; and it
// activates (q′, L′) when the MFSA has a transition q→q′ on L′, with that
// transition's belonging attached to the edge.
func Homogenize(z *mfsa.MFSA) *Network {
	type skey struct {
		state mfsa.StateID
		label charset.Set
	}
	ids := make(map[skey]int)
	var stes []STE
	steOf := func(state mfsa.StateID, label charset.Set) int {
		k := skey{state, label}
		if i, ok := ids[k]; ok {
			return i
		}
		i := len(stes)
		ids[k] = i
		stes = append(stes, STE{
			ID:      fmt.Sprintf("q%d_%d", state, i),
			Symbols: label,
		})
		return i
	}

	// First pass: create the split states.
	for _, t := range z.Trans {
		steOf(t.To, t.Label)
	}
	// Second pass: start flags — (q, L) is a start element when some
	// L-labeled transition into q leaves an initial state.
	for _, t := range z.Trans {
		if !z.InitMask[t.From].Any() {
			continue
		}
		ste := &stes[steOf(t.To, t.Label)]
		anchored := true
		z.InitMask[t.From].ForEach(func(j int) {
			if !z.FSAs[j].AnchorStart {
				anchored = false
			}
		})
		if anchored {
			if ste.Start == "" {
				ste.Start = "start-of-data"
			}
		} else {
			ste.Start = "all-input"
		}
	}
	// Reports, computed exactly: (q, L) reports j when q ∈ F_j and some
	// incoming transition labeled L belongs to j.
	reportSets := make(map[int]map[int]struct{})
	for i, t := range z.Trans {
		dst := steOf(t.To, t.Label)
		fin := z.FinalMask[t.To]
		if !fin.Any() {
			continue
		}
		z.Bel[i].ForEach(func(j int) {
			if fin.Has(j) {
				if reportSets[dst] == nil {
					reportSets[dst] = make(map[int]struct{})
				}
				reportSets[dst][j] = struct{}{}
			}
		})
	}
	for dst, set := range reportSets {
		for j := range set {
			stes[dst].Reports = append(stes[dst].Reports, j)
		}
		sort.Ints(stes[dst].Reports)
	}
	// Activation edges: (q, L) → (q′, L′) for every MFSA transition
	// q → q′ on L′; every split of q carries the same out-edges.
	outEdges := make(map[mfsa.StateID][]Activation)
	for i, t := range z.Trans {
		dst := steOf(t.To, t.Label)
		outEdges[t.From] = append(outEdges[t.From], Activation{
			Target:  stes[dst].ID,
			Belongs: z.Bel[i].IDs(),
		})
	}
	for k, i := range ids {
		stes[i].Activates = append(stes[i].Activates, outEdges[k.state]...)
	}
	for i := range stes {
		sort.Slice(stes[i].Activates, func(a, b int) bool {
			return stes[i].Activates[a].Target < stes[i].Activates[b].Target
		})
	}
	return &Network{ID: "mfsa", STEs: stes}
}

// xml structures for the homogeneous dialect.
type xmlNetwork struct {
	XMLName xml.Name `xml:"automata-network"`
	ID      string   `xml:"id,attr"`
	STEs    []xmlSTE `xml:"state-transition-element"`
}

type xmlSTE struct {
	ID        string   `xml:"id,attr"`
	SymbolSet string   `xml:"symbol-set,attr"`
	Start     string   `xml:"start,attr,omitempty"`
	Reports   []xmlRep `xml:"report-on-match"`
	Activates []xmlAct `xml:"activate-on-match"`
}

type xmlRep struct {
	Rule int `xml:"reportcode,attr"`
}

type xmlAct struct {
	Element string `xml:"element,attr"`
	Belongs string `xml:"belongs,attr,omitempty"`
}

// WriteSTE serializes the network as homogeneous ANML XML.
func WriteSTE(w io.Writer, net *Network) error {
	doc := xmlNetwork{ID: net.ID}
	for _, s := range net.STEs {
		xs := xmlSTE{ID: s.ID, SymbolSet: s.Symbols.String(), Start: s.Start}
		for _, rep := range s.Reports {
			xs.Reports = append(xs.Reports, xmlRep{Rule: rep})
		}
		for _, a := range s.Activates {
			xs.Activates = append(xs.Activates, xmlAct{Element: a.Target, Belongs: encodeIDs(a.Belongs)})
		}
		doc.STEs = append(doc.STEs, xs)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("anml: encode STE: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// SimulateSTE runs the homogeneous network over input with KeepOnMatch scan
// semantics, ignoring belonging (every report STE reports its rules when it
// fires). It exists to test that homogenization preserves per-rule matching
// for single-rule networks and aggregated matching generally.
func SimulateSTE(net *Network, input []byte) []int {
	idx := make(map[string]int, len(net.STEs))
	for i, s := range net.STEs {
		idx[s.ID] = i
	}
	active := make([]bool, len(net.STEs))
	next := make([]bool, len(net.STEs))
	var ends []int
	for pos := 0; pos < len(input); pos++ {
		c := input[pos]
		for i := range next {
			next[i] = false
		}
		fired := false
		reported := false
		for i := range net.STEs {
			s := &net.STEs[i]
			enabled := active[i] || s.Start == "all-input" || (s.Start == "start-of-data" && pos == 0)
			if !enabled || !s.Symbols.Contains(c) {
				continue
			}
			fired = true
			if len(s.Reports) > 0 && !reported {
				ends = append(ends, pos)
				reported = true
			}
			for _, a := range s.Activates {
				next[idx[a.Target]] = true
			}
		}
		_ = fired
		active, next = next, active
	}
	return ends
}

// steString is a debugging helper rendering the network compactly.
func (n *Network) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "network %s: %d STEs", n.ID, len(n.STEs))
	return sb.String()
}
