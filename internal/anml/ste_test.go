package anml

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
)

func TestHomogenizeSmall(t *testing.T) {
	z := mergePatterns(t, "ab")
	net := Homogenize(z)
	// Two transitions with distinct (state, label): STEs a and b.
	if len(net.STEs) != 2 {
		t.Fatalf("STEs=%d, want 2", len(net.STEs))
	}
	var starts, reports int
	for _, s := range net.STEs {
		if s.Start != "" {
			starts++
		}
		if len(s.Reports) > 0 {
			reports++
		}
	}
	if starts != 1 || reports != 1 {
		t.Fatalf("starts=%d reports=%d", starts, reports)
	}
}

func TestHomogenizeSplitsByIncomingLabel(t *testing.T) {
	// (a|b)x after multiplicity merging has one [ab] arc, then x: the x
	// state keeps a single STE. But a(x|y)x-style re-entry with distinct
	// labels must split.
	z := mergePatterns(t, "(ab|cb)d")
	net := Homogenize(z)
	// states: start -a-> p -b-> q; start -c-> r -b-> q; q -d-> f.
	// STEs: (p,a), (r,c), (q,b) [shared if both b-arcs converge], (f,d).
	// Either way every STE has a uniform symbol set.
	for _, s := range net.STEs {
		if s.Symbols.IsEmpty() {
			t.Fatalf("empty STE symbol set: %+v", s)
		}
	}
}

func TestHomogenizeStartKinds(t *testing.T) {
	z := mergePatterns(t, "^ab")
	net := Homogenize(z)
	found := false
	for _, s := range net.STEs {
		if s.Start == "start-of-data" {
			found = true
		}
		if s.Start == "all-input" {
			t.Fatalf("anchored rule produced all-input STE")
		}
	}
	if !found {
		t.Fatal("no start-of-data STE")
	}
}

func TestSimulateSTEMatchesEngine(t *testing.T) {
	// Single-rule networks: the STE simulator must agree with iMFAnt in
	// KeepOnMatch mode on distinct end offsets.
	patterns := []string{"abc", "a+b", "x[yz]w", "(ab|ba)c", "a{2,3}"}
	r := rand.New(rand.NewSource(61))
	for _, pat := range patterns {
		z := mergePatterns(t, pat)
		net := Homogenize(z)
		p := engine.NewProgram(z)
		for trial := 0; trial < 20; trial++ {
			in := make([]byte, r.Intn(24))
			for i := range in {
				in[i] = byte('a' + r.Intn(4))
			}
			got := dedupInts(SimulateSTE(net, in))
			want := engine.DistinctEnds(engine.Matches(p, in, engine.Config{KeepOnMatch: true}), 1)[0]
			if want == nil {
				want = []int{}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s input %q: ste %v engine %v", pat, in, got, want)
			}
		}
	}
}

func dedupInts(xs []int) []int {
	m := map[int]struct{}{}
	for _, x := range xs {
		m[x] = struct{}{}
	}
	out := make([]int, 0, len(m))
	for x := range m {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

func TestQuickHomogenizePreservesMatching(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	frags := []string{"a", "b", "ab", "a[bc]", "b+", "c?"}
	f := func() bool {
		pat := frags[r.Intn(len(frags))] + frags[r.Intn(len(frags))]
		z := mergePatterns(t, pat)
		net := Homogenize(z)
		p := engine.NewProgram(z)
		in := make([]byte, r.Intn(16))
		for i := range in {
			in[i] = byte('a' + r.Intn(3))
		}
		got := dedupInts(SimulateSTE(net, in))
		want := engine.DistinctEnds(engine.Matches(p, in, engine.Config{KeepOnMatch: true}), 1)[0]
		if want == nil {
			want = []int{}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSTEFormat(t *testing.T) {
	z := mergePatterns(t, "abc", "abd")
	net := Homogenize(z)
	var buf bytes.Buffer
	if err := WriteSTE(&buf, net); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<automata-network", "state-transition-element", "symbol-set=",
		"activate-on-match", "report-on-match", `start="all-input"`, "belongs=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("STE output lacks %q", want)
		}
	}
}

func TestHomogenizeSTECountBounded(t *testing.T) {
	// The split is by (state, incoming label): STE count is bounded by
	// the transition count.
	z := mergePatterns(t, "GET /abc", "GET /abd", "POST /x")
	net := Homogenize(z)
	if len(net.STEs) > z.NumTrans() {
		t.Fatalf("STEs=%d > transitions=%d", len(net.STEs), z.NumTrans())
	}
}
