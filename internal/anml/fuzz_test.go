package anml

import (
	"repro/internal/mfsa"
	"repro/internal/nfa"
	"strings"
	"testing"
)

// FuzzDecodeSymbols checks the symbol-hex codec never panics and that every
// accepted encoding re-encodes canonically.
func FuzzDecodeSymbols(f *testing.F) {
	for _, seed := range []string{
		"61", "61-63", "61-63,78", "00-ff", "zz", "", "61-", "-61",
		"63-61", "0a,0d", "61,61,61",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, enc string) {
		set, err := DecodeSymbols(enc)
		if err != nil {
			return
		}
		re := EncodeSymbols(set)
		back, err := DecodeSymbols(re)
		if err != nil {
			t.Fatalf("canonical form %q does not decode: %v", re, err)
		}
		if !back.Equal(set) {
			t.Fatalf("canonicalization changed the set: %q → %q", enc, re)
		}
	})
}

// FuzzRead checks the extended-ANML reader never panics on arbitrary input.
func FuzzRead(f *testing.F) {
	if a, err := nfa.Compile("ab"); err == nil {
		if b, err := nfa.Compile("ac"); err == nil {
			if z, err := mfsa.Merge([]*nfa.NFA{a, b}); err == nil {
				var sb strings.Builder
				_ = Write(&sb, z)
				f.Add(sb.String())
			}
		}
	}
	f.Add("<mfsa></mfsa>")
	f.Add("not xml at all")
	f.Add(`<mfsa version="imfant-anml/1" states="1"><rule id="0"/></mfsa>`)
	f.Fuzz(func(t *testing.T, doc string) {
		_, _ = Read(strings.NewReader(doc)) // must not panic
	})
}
