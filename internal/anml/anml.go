// Package anml implements the Back-End of the compilation framework
// (§IV-E): lowering MFSAs to an Automata Network Markup Language
// representation, and the inverse reader used by the iMFAnt pre-processing.
//
// Standard ANML has no notion of multi-RE belonging, so — like the paper —
// this dialect extends it: every <transition> carries a `belongs` attribute
// listing the merged FSAs the transition derives from, and every <rule>
// element records one merged RE with its initial and final states and
// anchors. Symbol sets are serialized twice: a human-readable ERE class in
// `symbols`, and a canonical hexadecimal range list in `symbol-hex` that
// the reader parses back byte-exactly. ε-moves cannot be represented
// (ANML does not support them), which is why ε-removal is mandatory before
// this stage (§IV-C).
package anml

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/charset"
	"repro/internal/mfsa"
)

// Version identifies the dialect emitted by this package.
const Version = "imfant-anml/1"

type xmlDoc struct {
	XMLName xml.Name  `xml:"mfsa"`
	Version string    `xml:"version,attr"`
	States  int       `xml:"states,attr"`
	Rules   []xmlRule `xml:"rule"`
	Trans   []xmlTran `xml:"transition"`
}

type xmlRule struct {
	ID          int    `xml:"id,attr"`
	RuleID      int    `xml:"rule-id,attr"`
	Pattern     string `xml:"pattern,attr"`
	Init        int32  `xml:"init,attr"`
	Finals      string `xml:"finals,attr"`
	AnchorStart bool   `xml:"anchor-start,attr,omitempty"`
	AnchorEnd   bool   `xml:"anchor-end,attr,omitempty"`
	NumStates   int    `xml:"fsa-states,attr"`
	NumTrans    int    `xml:"fsa-trans,attr"`
}

type xmlTran struct {
	From      int32  `xml:"from,attr"`
	To        int32  `xml:"to,attr"`
	Symbols   string `xml:"symbols,attr"`
	SymbolHex string `xml:"symbol-hex,attr"`
	Belongs   string `xml:"belongs,attr"`
}

// Write serializes z in the extended-ANML dialect.
func Write(w io.Writer, z *mfsa.MFSA) error {
	doc := xmlDoc{Version: Version, States: z.NumStates}
	for _, info := range z.FSAs {
		doc.Rules = append(doc.Rules, xmlRule{
			ID:          info.ID,
			RuleID:      info.RuleID,
			Pattern:     info.Pattern,
			Init:        info.Init,
			Finals:      encodeIDs32(info.Finals),
			AnchorStart: info.AnchorStart,
			AnchorEnd:   info.AnchorEnd,
			NumStates:   info.NumStates,
			NumTrans:    info.NumTrans,
		})
	}
	for i, t := range z.Trans {
		doc.Trans = append(doc.Trans, xmlTran{
			From:      t.From,
			To:        t.To,
			Symbols:   t.Label.String(),
			SymbolHex: EncodeSymbols(t.Label),
			Belongs:   encodeIDs(z.Bel[i].IDs()),
		})
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("anml: encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Read parses an extended-ANML document back into an MFSA.
func Read(r io.Reader) (*mfsa.MFSA, error) {
	var doc xmlDoc
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("anml: decode: %w", err)
	}
	if doc.Version != Version {
		return nil, fmt.Errorf("anml: unsupported version %q (want %q)", doc.Version, Version)
	}
	n := len(doc.Rules)
	trans := make([]mfsa.Transition, len(doc.Trans))
	bel := make([]mfsa.BelongSet, len(doc.Trans))
	for i, t := range doc.Trans {
		set, err := DecodeSymbols(t.SymbolHex)
		if err != nil {
			return nil, fmt.Errorf("anml: transition %d: %v", i, err)
		}
		trans[i] = mfsa.Transition{From: t.From, To: t.To, Label: set}
		ids, err := decodeIDs(t.Belongs)
		if err != nil {
			return nil, fmt.Errorf("anml: transition %d belongs: %v", i, err)
		}
		b := mfsa.NewBelongSet(n)
		for _, id := range ids {
			if id < 0 || id >= n {
				return nil, fmt.Errorf("anml: transition %d belongs to unknown FSA %d", i, id)
			}
			b.Set(id)
		}
		bel[i] = b
	}
	fsas := make([]mfsa.FSAInfo, n)
	for i, rl := range doc.Rules {
		finals, err := decodeIDs(rl.Finals)
		if err != nil {
			return nil, fmt.Errorf("anml: rule %d finals: %v", i, err)
		}
		info := mfsa.FSAInfo{
			ID:          rl.ID,
			RuleID:      rl.RuleID,
			Pattern:     rl.Pattern,
			Init:        rl.Init,
			AnchorStart: rl.AnchorStart,
			AnchorEnd:   rl.AnchorEnd,
			NumStates:   rl.NumStates,
			NumTrans:    rl.NumTrans,
		}
		for _, f := range finals {
			info.Finals = append(info.Finals, int32(f))
		}
		fsas[i] = info
	}
	return mfsa.Assemble(doc.States, trans, bel, fsas)
}

// EncodeSymbols renders a symbol set as a canonical hexadecimal range list,
// e.g. "61-63,78" for [a-cx].
func EncodeSymbols(s charset.Set) string {
	var sb strings.Builder
	bs := s.Bytes()
	for i := 0; i < len(bs); {
		j := i
		for j+1 < len(bs) && bs[j+1] == bs[j]+1 {
			j++
		}
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		if j == i {
			fmt.Fprintf(&sb, "%02x", bs[i])
		} else {
			fmt.Fprintf(&sb, "%02x-%02x", bs[i], bs[j])
		}
		i = j + 1
	}
	return sb.String()
}

// DecodeSymbols parses the canonical hexadecimal range list produced by
// EncodeSymbols.
func DecodeSymbols(s string) (charset.Set, error) {
	var out charset.Set
	if s == "" {
		return out, fmt.Errorf("empty symbol set")
	}
	for _, part := range strings.Split(s, ",") {
		lo, hi, ok := strings.Cut(part, "-")
		l, err := strconv.ParseUint(lo, 16, 8)
		if err != nil {
			return out, fmt.Errorf("bad symbol range %q", part)
		}
		h := l
		if ok {
			h, err = strconv.ParseUint(hi, 16, 8)
			if err != nil || h < l {
				return out, fmt.Errorf("bad symbol range %q", part)
			}
		}
		for c := l; c <= h; c++ {
			out.Add(byte(c))
		}
	}
	return out, nil
}

func encodeIDs(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, ",")
}

func encodeIDs32(ids []int32) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(int(id))
	}
	return strings.Join(parts, ",")
}

func decodeIDs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad id %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// SplitDocuments cuts a byte stream of concatenated extended-ANML documents
// at the closing </mfsa> tags. The XML decoder reads ahead, so concatenated
// documents must be split before Read. Trailing non-document garbage is
// returned as a final fragment for Read to reject.
func SplitDocuments(raw []byte) []string {
	const closer = "</mfsa>"
	s := string(raw)
	var out []string
	for {
		i := strings.Index(s, closer)
		if i < 0 {
			if strings.TrimSpace(s) != "" {
				out = append(out, s)
			}
			return out
		}
		out = append(out, s[:i+len(closer)])
		s = s[i+len(closer):]
	}
}

// ReadAll parses every document in a concatenated extended-ANML stream.
func ReadAll(r io.Reader) ([]*mfsa.MFSA, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	docs := SplitDocuments(raw)
	if len(docs) == 0 {
		return nil, fmt.Errorf("anml: no documents found")
	}
	out := make([]*mfsa.MFSA, len(docs))
	for i, doc := range docs {
		z, err := Read(strings.NewReader(doc))
		if err != nil {
			return nil, fmt.Errorf("anml: document %d: %w", i, err)
		}
		out[i] = z
	}
	return out, nil
}
