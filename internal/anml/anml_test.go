package anml

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/charset"
	"repro/internal/engine"
	"repro/internal/mfsa"
	"repro/internal/nfa"
)

func mergePatterns(t testing.TB, patterns ...string) *mfsa.MFSA {
	t.Helper()
	fsas := make([]*nfa.NFA, len(patterns))
	for i, p := range patterns {
		n, err := nfa.Compile(p)
		if err != nil {
			t.Fatalf("compile %q: %v", p, err)
		}
		n.ID = i
		fsas[i] = n
	}
	z, err := mfsa.Merge(fsas)
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func TestRoundTripStructure(t *testing.T) {
	z := mergePatterns(t, "a[gj](lm|cd)", "kja[gj]cd", "^x+y$")
	var buf bytes.Buffer
	if err := Write(&buf, z); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumStates != z.NumStates || got.NumTrans() != z.NumTrans() || got.NumFSAs() != z.NumFSAs() {
		t.Fatalf("shape changed: %v vs %v", got, z)
	}
	for j := range z.FSAs {
		a, b := z.FSAs[j], got.FSAs[j]
		if a.Init != b.Init || a.Pattern != b.Pattern || a.RuleID != b.RuleID ||
			a.AnchorStart != b.AnchorStart || a.AnchorEnd != b.AnchorEnd ||
			!reflect.DeepEqual(a.Finals, b.Finals) {
			t.Fatalf("FSA %d metadata changed:\n%+v\n%+v", j, a, b)
		}
	}
	// Transitions are sorted COO on both sides; compare directly.
	for i := range z.Trans {
		if z.Trans[i] != got.Trans[i] {
			t.Fatalf("transition %d: %v vs %v", i, z.Trans[i], got.Trans[i])
		}
		if !z.Bel[i].Equal(got.Bel[i]) {
			t.Fatalf("bel %d: %v vs %v", i, z.Bel[i], got.Bel[i])
		}
	}
}

func TestRoundTripExecutes(t *testing.T) {
	z := mergePatterns(t, "(ad|cb)ab", "a(b|c)")
	var buf bytes.Buffer
	if err := Write(&buf, z); err != nil {
		t.Fatal(err)
	}
	rt, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("acbab")
	want := engine.Matches(engine.NewProgram(z), in, engine.Config{})
	got := engine.Matches(engine.NewProgram(rt), in, engine.Config{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("matches %v, want %v", got, want)
	}
}

func TestWriteContainsExtension(t *testing.T) {
	z := mergePatterns(t, "^abc", "abd")
	var buf bytes.Buffer
	if err := Write(&buf, z); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"belongs=", "symbol-hex=", "anchor-start=", "<mfsa", "version=\"imfant-anml/1\""} {
		if !strings.Contains(s, want) {
			t.Errorf("output lacks %q", want)
		}
	}
	// The shared 'a' transition must belong to both FSAs.
	if !strings.Contains(s, `belongs="0,1"`) {
		t.Error("no transition with belongs=\"0,1\"")
	}
}

func TestSymbolsCodec(t *testing.T) {
	cases := []charset.Set{
		charset.Single('a'),
		charset.Range('a', 'z'),
		charset.Of(0, 255),
		charset.Any(),
		charset.Of('x'),
		charset.Range('0', '9').Union(charset.Single('_')),
	}
	for _, s := range cases {
		enc := EncodeSymbols(s)
		dec, err := DecodeSymbols(enc)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !dec.Equal(s) {
			t.Fatalf("round trip %v → %q → %v", s, enc, dec)
		}
	}
}

func TestQuickSymbolsCodec(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	f := func() bool {
		var s charset.Set
		for i, n := 0, 1+r.Intn(40); i < n; i++ {
			s.Add(byte(r.Intn(256)))
		}
		dec, err := DecodeSymbols(EncodeSymbols(s))
		return err == nil && dec.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSymbolsErrors(t *testing.T) {
	for _, in := range []string{"", "zz", "61-", "-61", "63-61", "61,,62", "611"} {
		if _, err := DecodeSymbols(in); err == nil {
			t.Errorf("%q: no error", in)
		}
	}
}

func TestReadRejectsBadDocs(t *testing.T) {
	cases := map[string]string{
		"not xml":     "hello",
		"bad version": `<mfsa version="other/9" states="1"></mfsa>`,
		"no rules":    `<mfsa version="imfant-anml/1" states="1"></mfsa>`,
		"bad belongs": `<mfsa version="imfant-anml/1" states="2">
			<rule id="0" rule-id="0" pattern="a" init="0" finals="1" fsa-states="2" fsa-trans="1"/>
			<transition from="0" to="1" symbol-hex="61" belongs="7"/></mfsa>`,
		"state range": `<mfsa version="imfant-anml/1" states="1">
			<rule id="0" rule-id="0" pattern="a" init="0" finals="0" fsa-states="1" fsa-trans="1"/>
			<transition from="0" to="5" symbol-hex="61" belongs="0"/></mfsa>`,
		"empty belongs": `<mfsa version="imfant-anml/1" states="2">
			<rule id="0" rule-id="0" pattern="a" init="0" finals="1" fsa-states="2" fsa-trans="1"/>
			<transition from="0" to="1" symbol-hex="61" belongs=""/></mfsa>`,
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestQuickRoundTripRandomMerges(t *testing.T) {
	r := rand.New(rand.NewSource(56))
	frags := []string{"ab", "bc", "a[xy]", "k+", "(p|q)r", "m{2,3}"}
	f := func() bool {
		m := 1 + r.Intn(4)
		patterns := make([]string, m)
		for i := range patterns {
			patterns[i] = frags[r.Intn(len(frags))] + frags[r.Intn(len(frags))]
		}
		z := mergePatterns(t, patterns...)
		var buf bytes.Buffer
		if err := Write(&buf, z); err != nil {
			return false
		}
		rt, err := Read(&buf)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		if rt.NumStates != z.NumStates || rt.NumTrans() != z.NumTrans() {
			return false
		}
		in := make([]byte, 16)
		alpha := []byte("abcxykpqrm")
		for i := range in {
			in[i] = alpha[r.Intn(len(alpha))]
		}
		a := engine.Run(engine.NewProgram(z), in, engine.Config{})
		b := engine.Run(engine.NewProgram(rt), in, engine.Config{})
		return a.Matches == b.Matches && reflect.DeepEqual(a.PerFSA, b.PerFSA)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWrite(b *testing.B) {
	patterns := make([]string, 40)
	for i := range patterns {
		patterns[i] = "GET /app" + string(rune('a'+i%26)) + "/[a-z]{2,4}"
	}
	z := mergePatterns(b, patterns...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, z); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSplitDocumentsAndReadAll(t *testing.T) {
	z1 := mergePatterns(t, "ab", "ac")
	z2 := mergePatterns(t, "xy")
	var buf bytes.Buffer
	if err := Write(&buf, z1); err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf, z2); err != nil {
		t.Fatal(err)
	}
	docs := SplitDocuments(buf.Bytes())
	if len(docs) != 2 {
		t.Fatalf("docs=%d", len(docs))
	}
	zs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(zs) != 2 || zs[0].NumFSAs() != 2 || zs[1].NumFSAs() != 1 {
		t.Fatalf("read %d documents", len(zs))
	}
	// Trailing garbage becomes a fragment Read rejects.
	buf.WriteString("<mfsa trailing garbage")
	if _, err := ReadAll(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := ReadAll(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestNetworkString(t *testing.T) {
	net := Homogenize(mergePatterns(t, "ab"))
	if !strings.Contains(net.String(), "STEs") {
		t.Fatalf("String=%q", net.String())
	}
}
