// Package faultpoint is the fault-injection substrate of the matching
// engines: a registry of named fault points compiled into the hot paths
// behind the same one-nil-check pattern the profiler uses, so production
// scans pay a single predictable branch per chunk and tests can schedule
// deterministic or randomized fault storms through the exact degradation
// machinery — lazy-cache flush storms, forced thrash fallback, worker
// panics, stalled chunks, spurious prefilter wakes, allocation caps —
// that a long-running service will eventually hit for real.
//
// Every injected fault forces a transition the engines already implement
// and prove exact (flush, fallback, replay, panic containment, timeout),
// never a corruption: under any schedule a scan must still return either
// byte-identical matches to the fault-free oracle or a typed error. The
// chaos conformance suite asserts exactly that invariant.
//
// An *Injector is armed by threading it through engine.Config /
// lazydfa.Config (or Ruleset-wide via the imfant layer); a nil Injector is
// inert and free. All methods are safe for concurrent use — parallel
// workers share one Injector — and deterministic schedules stay
// deterministic per (point, hit-ordinal) even under concurrency.
package faultpoint

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Point names one instrumented site in the hot paths.
type Point uint8

const (
	// LazyFlush forces a whole-cache flush at the next lazy-DFA chunk
	// boundary. The flush spends the scan's flush budget, so a scheduled
	// storm drives the runner into its ordinary thrash-fallback path.
	LazyFlush Point = iota
	// LazyThrash forces an immediate thrash fallback to the iMFAnt engine
	// at the next lazy-DFA chunk boundary, as if the flush budget had just
	// run out.
	LazyThrash
	// AllocCap makes the next lazy-DFA cache insertion behave as if the
	// state cap had been reached — the allocation-pressure fault — taking
	// the flush-or-fallback path without the cache actually being full.
	AllocCap
	// WorkerPanic panics inside a parallel worker just before it executes
	// its automaton, exercising RunParallel's panic containment.
	WorkerPanic
	// ChunkStall sleeps for the injector's stall duration before a chunk
	// is processed — the slow/stalled input fault that, combined with
	// Options.ScanTimeout, exercises the timeout rung of the degradation
	// ladder deterministically.
	ChunkStall
	// PrefilterWake spuriously reports every literal factor as seen, waking
	// all gated automata. Waking is always sound (the prefilter only ever
	// elides provably dead work), so the fault adversarially exercises the
	// wake/replay paths without changing results.
	PrefilterWake
	// NumPoints is the number of fault points.
	NumPoints = iota
)

var pointNames = [NumPoints]string{
	LazyFlush:     "lazy-flush",
	LazyThrash:    "lazy-thrash",
	AllocCap:      "alloc-cap",
	WorkerPanic:   "worker-panic",
	ChunkStall:    "chunk-stall",
	PrefilterWake: "prefilter-wake",
}

func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return fmt.Sprintf("faultpoint(%d)", uint8(p))
}

// A Schedule decides whether the n-th hit of a point fires (n counts from
// 1). Fire must be safe for concurrent use and should be a pure function
// of (p, n) so schedules replay deterministically regardless of goroutine
// interleaving.
type Schedule interface {
	Fire(p Point, n uint64) bool
}

// ScheduleFunc adapts a function to the Schedule interface.
type ScheduleFunc func(p Point, n uint64) bool

// Fire implements Schedule.
func (f ScheduleFunc) Fire(p Point, n uint64) bool { return f(p, n) }

// Never is the inert schedule: no point ever fires.
var Never Schedule = ScheduleFunc(func(Point, uint64) bool { return false })

// OnHit returns a schedule firing point p exactly once, on its n-th hit.
func OnHit(p Point, n uint64) Schedule {
	return ScheduleFunc(func(q Point, m uint64) bool { return q == p && m == n })
}

// Every returns a schedule firing point p on every n-th hit (n ≥ 1).
func Every(p Point, n uint64) Schedule {
	if n == 0 {
		n = 1
	}
	return ScheduleFunc(func(q Point, m uint64) bool { return q == p && m%n == 0 })
}

// Union combines schedules: a point fires when any member fires.
func Union(ss ...Schedule) Schedule {
	return ScheduleFunc(func(p Point, n uint64) bool {
		for _, s := range ss {
			if s != nil && s.Fire(p, n) {
				return true
			}
		}
		return false
	})
}

// Random returns a seeded randomized schedule: each hit of each point
// fires independently with the given per-point probability in [0, 1].
// The decision is a pure hash of (seed, point, ordinal), so a schedule is
// reproducible from its seed alone and race-free without locking.
func Random(seed uint64, prob map[Point]float64) Schedule {
	var thresh [NumPoints]uint64
	for p, pr := range prob {
		if int(p) >= NumPoints {
			continue
		}
		switch {
		case pr >= 1:
			thresh[p] = ^uint64(0)
		case pr > 0:
			thresh[p] = uint64(pr * float64(^uint64(0)))
		}
	}
	return ScheduleFunc(func(p Point, n uint64) bool {
		t := thresh[p]
		return t != 0 && splitmix64(seed^uint64(p)<<56^n) < t
	})
}

// FromBytes derives a deterministic schedule from an opaque byte string —
// the fuzz-target decoder. Bytes are consumed in (point, mode, param)
// triples: point selects the fault point (mod NumPoints), mode selects
// deterministic (every param-th hit) or randomized (param/255 probability)
// firing. Any input, including empty or truncated, yields a valid
// schedule, so fuzzers can explore the space freely.
func FromBytes(data []byte) Schedule {
	var ss []Schedule
	for i := 0; i+2 < len(data); i += 3 {
		p := Point(data[i] % NumPoints)
		mode, param := data[i+1], data[i+2]
		if mode%2 == 0 {
			ss = append(ss, Every(p, uint64(param%16)+1))
		} else {
			ss = append(ss, Random(uint64(i)<<8|uint64(param),
				map[Point]float64{p: float64(param) / 255}))
		}
	}
	if len(ss) == 0 {
		return Never
	}
	return Union(ss...)
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-distributed
// 64-bit hash used to make randomized schedules pure and lock-free.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Injector arms a schedule at the fault-point sites. The zero value is not
// usable; create one with New. A nil *Injector is inert: Hit and Stall
// return their zero results, so call sites guard with a single nil check.
type Injector struct {
	sched Schedule
	stall time.Duration
	// hits counts site visits per point (the schedule's ordinal domain);
	// fired counts the subset that actually fired.
	hits  [NumPoints]atomic.Uint64
	fired [NumPoints]atomic.Int64
}

// New returns an Injector driving the given schedule. A nil schedule never
// fires (the injector still counts hits).
func New(sched Schedule) *Injector {
	if sched == nil {
		sched = Never
	}
	return &Injector{sched: sched}
}

// WithStall sets the ChunkStall sleep duration and returns the injector.
func (in *Injector) WithStall(d time.Duration) *Injector {
	in.stall = d
	return in
}

// Hit records one visit of point p and reports whether the fault fires.
// Nil-receiver safe: a nil injector never fires.
func (in *Injector) Hit(p Point) bool {
	if in == nil {
		return false
	}
	n := in.hits[p].Add(1)
	if !in.sched.Fire(p, n) {
		return false
	}
	in.fired[p].Add(1)
	return true
}

// Stall records one ChunkStall visit and, when it fires, sleeps for the
// configured stall duration. Nil-receiver safe.
func (in *Injector) Stall() {
	if in == nil {
		return
	}
	if in.Hit(ChunkStall) && in.stall > 0 {
		time.Sleep(in.stall)
	}
}

// Hits returns the number of times point p's site was visited.
func (in *Injector) Hits(p Point) uint64 {
	if in == nil {
		return 0
	}
	return in.hits[p].Load()
}

// Fired returns the number of times point p actually fired.
func (in *Injector) Fired(p Point) int64 {
	if in == nil {
		return 0
	}
	return in.fired[p].Load()
}

// TotalFired returns the number of faults fired across all points.
func (in *Injector) TotalFired() int64 {
	if in == nil {
		return 0
	}
	var t int64
	for p := 0; p < NumPoints; p++ {
		t += in.fired[p].Load()
	}
	return t
}
