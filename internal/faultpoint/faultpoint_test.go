package faultpoint

import (
	"sync"
	"testing"
	"time"
)

func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	if in.Hit(LazyFlush) {
		t.Fatal("nil injector fired")
	}
	in.Stall() // must not panic
	if in.Hits(LazyFlush) != 0 || in.Fired(LazyFlush) != 0 || in.TotalFired() != 0 {
		t.Fatal("nil injector counted")
	}
}

func TestOnHitFiresExactlyOnce(t *testing.T) {
	in := New(OnHit(LazyThrash, 3))
	var fires []bool
	for i := 0; i < 6; i++ {
		fires = append(fires, in.Hit(LazyThrash))
	}
	for i, f := range fires {
		if want := i == 2; f != want {
			t.Fatalf("hit %d fired=%v, want %v", i+1, f, want)
		}
	}
	if in.Fired(LazyThrash) != 1 || in.Hits(LazyThrash) != 6 {
		t.Fatalf("fired=%d hits=%d", in.Fired(LazyThrash), in.Hits(LazyThrash))
	}
	// Other points never fire.
	if in.Hit(WorkerPanic) {
		t.Fatal("wrong point fired")
	}
}

func TestEveryPeriod(t *testing.T) {
	in := New(Every(AllocCap, 2))
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Hit(AllocCap) {
			fired++
		}
	}
	if fired != 5 {
		t.Fatalf("every-2 fired %d of 10", fired)
	}
}

func TestRandomDeterministicAndSeedSensitive(t *testing.T) {
	probe := func(seed uint64) []bool {
		s := Random(seed, map[Point]float64{ChunkStall: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = s.Fire(ChunkStall, uint64(i+1))
		}
		return out
	}
	a, b := probe(7), probe(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	c := probe(8)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical schedules")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 fired %d of %d", fired, len(a))
	}
	// Probability 0 never fires, 1 always fires.
	if Random(1, map[Point]float64{LazyFlush: 0}).Fire(LazyFlush, 1) {
		t.Fatal("p=0 fired")
	}
	if !Random(1, map[Point]float64{LazyFlush: 1}).Fire(LazyFlush, 1) {
		t.Fatal("p=1 did not fire")
	}
}

func TestUnionAndFromBytes(t *testing.T) {
	u := Union(OnHit(LazyFlush, 1), OnHit(LazyThrash, 2), nil)
	if !u.Fire(LazyFlush, 1) || !u.Fire(LazyThrash, 2) || u.Fire(LazyThrash, 1) {
		t.Fatal("union misroutes")
	}
	// Any byte string decodes to a usable schedule.
	for _, data := range [][]byte{nil, {1}, {1, 2}, {0, 0, 3}, {5, 1, 200, 2, 0, 1}} {
		s := FromBytes(data)
		for p := Point(0); p < NumPoints; p++ {
			s.Fire(p, 1) // must not panic
		}
	}
	// Deterministic: same bytes, same schedule decisions.
	d := []byte{0, 0, 2, 3, 1, 128, 4, 0, 1}
	s1, s2 := FromBytes(d), FromBytes(d)
	for p := Point(0); p < NumPoints; p++ {
		for n := uint64(1); n <= 32; n++ {
			if s1.Fire(p, n) != s2.Fire(p, n) {
				t.Fatalf("FromBytes not deterministic at (%v, %d)", p, n)
			}
		}
	}
}

func TestStallSleeps(t *testing.T) {
	in := New(Every(ChunkStall, 1)).WithStall(5 * time.Millisecond)
	t0 := time.Now()
	in.Stall()
	if d := time.Since(t0); d < 4*time.Millisecond {
		t.Fatalf("stall slept only %v", d)
	}
}

func TestConcurrentCounting(t *testing.T) {
	in := New(Every(WorkerPanic, 2))
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				in.Hit(WorkerPanic)
			}
		}()
	}
	wg.Wait()
	if got := in.Hits(WorkerPanic); got != workers*per {
		t.Fatalf("hits=%d, want %d", got, workers*per)
	}
	if got := in.Fired(WorkerPanic); got != workers*per/2 {
		t.Fatalf("fired=%d, want %d", got, workers*per/2)
	}
	if in.TotalFired() != in.Fired(WorkerPanic) {
		t.Fatal("TotalFired disagrees")
	}
}

func TestPointString(t *testing.T) {
	for p := Point(0); p < NumPoints; p++ {
		if p.String() == "" {
			t.Fatalf("point %d unnamed", p)
		}
	}
	if Point(200).String() == "" {
		t.Fatal("out-of-range point unnamed")
	}
}
