package ahocorasick

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

type hit struct{ pattern, end int }

func scanAll(m *Matcher, input []byte) []hit {
	var out []hit
	m.Scan(input, func(p, e int) { out = append(out, hit{p, e}) })
	sort.Slice(out, func(i, j int) bool {
		if out[i].end != out[j].end {
			return out[i].end < out[j].end
		}
		return out[i].pattern < out[j].pattern
	})
	return out
}

// naive finds all occurrences by brute-force substring comparison.
func naive(patterns [][]byte, input []byte) []hit {
	var out []hit
	for pi, p := range patterns {
		for i := 0; i+len(p) <= len(input); i++ {
			if bytes.Equal(input[i:i+len(p)], p) {
				out = append(out, hit{pi, i + len(p) - 1})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].end != out[j].end {
			return out[i].end < out[j].end
		}
		return out[i].pattern < out[j].pattern
	})
	return out
}

func pats(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestClassicExample(t *testing.T) {
	// The canonical Aho–Corasick example: {he, she, his, hers} on "ushers".
	m, err := New(pats("he", "she", "his", "hers"))
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(m, []byte("ushers"))
	want := []hit{{0, 3}, {1, 3}, {3, 5}} // she@3, he@3, hers@5
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hits %v, want %v", got, want)
	}
}

func TestOverlapsAndNesting(t *testing.T) {
	m, err := New(pats("aa", "aaa", "a"))
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(m, []byte("aaaa"))
	want := naive(pats("aa", "aaa", "a"), []byte("aaaa"))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hits %v, want %v", got, want)
	}
}

func TestDuplicatePatterns(t *testing.T) {
	m, err := New(pats("ab", "ab"))
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(m, []byte("ab"))
	if len(got) != 2 {
		t.Fatalf("hits %v, want both duplicates", got)
	}
}

func TestEmptyPatternRejected(t *testing.T) {
	if _, err := New(pats("a", "")); err == nil {
		t.Fatal("empty pattern accepted")
	}
}

func TestHits(t *testing.T) {
	m, err := New(pats("foo", "bar", "baz"))
	if err != nil {
		t.Fatal(err)
	}
	hits := m.Hits([]byte("xx bar yy foo"))
	if !hits[0] || !hits[1] || hits[2] {
		t.Fatalf("hits %v", hits)
	}
	none := m.Hits([]byte("nothing here"))
	for _, h := range none {
		if h {
			t.Fatalf("phantom hit: %v", none)
		}
	}
}

func TestBinaryPatterns(t *testing.T) {
	p := [][]byte{{0x00, 0xff}, {0xff, 0x00, 0xff}}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	in := []byte{0xff, 0x00, 0xff, 0x00, 0xff}
	got := scanAll(m, in)
	want := naive(p, in)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hits %v, want %v", got, want)
	}
}

func TestQuickMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	f := func() bool {
		np := 1 + r.Intn(6)
		patterns := make([][]byte, np)
		for i := range patterns {
			p := make([]byte, 1+r.Intn(5))
			for k := range p {
				p[k] = byte('a' + r.Intn(3))
			}
			patterns[i] = p
		}
		m, err := New(patterns)
		if err != nil {
			return false
		}
		in := make([]byte, r.Intn(48))
		for k := range in {
			in[k] = byte('a' + r.Intn(3))
		}
		got := scanAll(m, in)
		want := naive(patterns, in)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		if !reflect.DeepEqual(got, want) {
			t.Logf("patterns=%q input=%q: %v want %v", patterns, in, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestNumAccessors(t *testing.T) {
	m, err := New(pats("ab", "cd"))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPatterns() != 2 {
		t.Fatal("NumPatterns")
	}
	if m.NumNodes() != 5 { // root + a,b + c,d
		t.Fatalf("NumNodes=%d", m.NumNodes())
	}
}

func BenchmarkScan(b *testing.B) {
	patterns := make([][]byte, 100)
	r := rand.New(rand.NewSource(6))
	for i := range patterns {
		p := make([]byte, 4+r.Intn(12))
		for k := range p {
			p[k] = byte('a' + r.Intn(26))
		}
		patterns[i] = p
	}
	m, err := New(patterns)
	if err != nil {
		b.Fatal(err)
	}
	in := make([]byte, 64<<10)
	for k := range in {
		in[k] = byte('a' + r.Intn(26))
	}
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(in, func(int, int) {})
	}
}
