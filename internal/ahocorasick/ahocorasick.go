// Package ahocorasick implements the classic Aho–Corasick multi-string
// matching automaton. It is the string-matching substrate of the
// decomposition baseline (§I, §VII: Hyperscan-style regex decomposition
// extracts literal factors, matches them with a string matcher, and delays
// FSA execution until a factor hits).
//
// The automaton is built in the standard three steps — trie (goto
// function), BFS failure links, and output sets — and then flattened into a
// fully-resolved dense next table, so scanning is one table lookup per
// input byte, like a DFA.
package ahocorasick

import (
	"fmt"

	"repro/internal/bytescan"
)

// Matcher is an immutable multi-pattern string matcher; build with New.
type Matcher struct {
	next     []int32   // nodes × 256, fully resolved
	outputs  [][]int32 // pattern ids emitted at each node
	patterns [][]byte
	nodes    int
	// rootFinder (valid when rootAccel) hunts the root-live bytes — the ≤ 4
	// bytes that leave the root state. The root emits nothing (empty
	// patterns are rejected), so while the automaton sits at the root every
	// other byte is a provable no-op and the scan loops may jump over it.
	rootFinder bytescan.Finder
	rootAccel  bool
}

// New builds a matcher over the given patterns. Empty patterns are
// rejected; duplicate patterns are allowed and each reports separately.
func New(patterns [][]byte) (*Matcher, error) {
	for i, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("ahocorasick: pattern %d is empty", i)
		}
	}
	// Trie construction.
	trie := []acNode{{children: map[byte]int32{}}}
	for pi, p := range patterns {
		cur := int32(0)
		for _, c := range p {
			nxt, ok := trie[cur].children[c]
			if !ok {
				nxt = int32(len(trie))
				trie = append(trie, acNode{children: map[byte]int32{}})
				trie[cur].children[c] = nxt
			}
			cur = nxt
		}
		trie[cur].out = append(trie[cur].out, int32(pi))
	}
	// Failure links, BFS order; outputs are merged down the links.
	queue := make([]int32, 0, len(trie))
	for _, child := range trie[0].children {
		trie[child].fail = 0
		queue = append(queue, child)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for c, v := range trie[u].children {
			f := trie[u].fail
			for {
				if w, ok := trie[f].children[c]; ok && w != v {
					trie[v].fail = w
					break
				}
				if f == 0 {
					trie[v].fail = 0
					break
				}
				f = trie[f].fail
			}
			trie[v].out = append(trie[v].out, trie[trie[v].fail].out...)
			queue = append(queue, v)
		}
	}
	// Flatten into a resolved next table: next(u, c) follows failure
	// links until a goto edge exists (or the root).
	m := &Matcher{
		next:     make([]int32, len(trie)*256),
		outputs:  make([][]int32, len(trie)),
		patterns: patterns,
		nodes:    len(trie),
	}
	for u := range trie {
		m.outputs[u] = trie[u].out
		for c := 0; c < 256; c++ {
			m.next[u*256+c] = resolve(trie, int32(u), byte(c))
		}
	}
	var rootBytes []byte
	for c := 0; c < 256; c++ {
		if m.next[c] != 0 {
			rootBytes = append(rootBytes, byte(c))
		}
	}
	if len(rootBytes) <= bytescan.MaxNeedles {
		if f, ok := bytescan.NewFinder(rootBytes); ok {
			m.rootFinder = f
			m.rootAccel = true
		}
	}
	return m, nil
}

// acNode is a trie node during construction.
type acNode struct {
	children map[byte]int32
	out      []int32
	fail     int32
}

func resolve(trie []acNode, u int32, c byte) int32 {
	for {
		if v, ok := trie[u].children[c]; ok {
			return v
		}
		if u == 0 {
			return 0
		}
		u = trie[u].fail
	}
}

// NumNodes returns the automaton size in trie nodes.
func (m *Matcher) NumNodes() int { return m.nodes }

// NumPatterns returns the number of patterns.
func (m *Matcher) NumPatterns() int { return len(m.patterns) }

// MaxPatternLen returns the length of the longest pattern in bytes — the
// overlap window a segmented scan needs: a match ending in segment k starts
// at most MaxPatternLen-1 bytes before k's first byte, so scanning each
// segment with that much left-context makes per-segment AC scans exact
// with no boundary stitching.
func (m *Matcher) MaxPatternLen() int {
	max := 0
	for _, p := range m.patterns {
		if len(p) > max {
			max = len(p)
		}
	}
	return max
}

// Scan reports every occurrence of every pattern: fn receives the pattern
// id and the offset of its last byte. Occurrences of different patterns at
// the same offset are each reported.
func (m *Matcher) Scan(input []byte, fn func(pattern, end int)) {
	state := int32(0)
	for pos := 0; pos < len(input); pos++ {
		if state == 0 && m.rootAccel {
			// Parked at the root: jump to the next byte that leaves it.
			j := m.rootFinder.Index(input[pos:])
			if j < 0 {
				return
			}
			pos += j
		}
		state = m.next[int(state)<<8|int(input[pos])]
		for _, pi := range m.outputs[state] {
			fn(int(pi), pos)
		}
	}
}

// Hits returns, per pattern, whether it occurs at least once in input —
// the prefilter query of the decomposition matcher. It short-circuits when
// every pattern has been seen.
func (m *Matcher) Hits(input []byte) []bool {
	s := m.NewSweeper()
	s.Sweep(input)
	return s.hits
}

// Sweeper is a resumable Hits query: the automaton state is carried across
// Sweep calls, so a pattern split over two chunks of a stream still
// registers — no byte tail is buffered, only the current trie node. The
// zero chunking of a stream therefore never changes the hit set. Reuse via
// Reset. A Sweeper is not safe for concurrent use.
type Sweeper struct {
	m       *Matcher
	state   int32
	hits    []bool
	left    int // patterns not seen yet; 0 short-circuits Sweep
	accel   bool
	skipped int64
}

// NewSweeper returns a fresh resumable hit query over the matcher. Root-state
// acceleration is on by default; SetAccel(false) disables it.
func (m *Matcher) NewSweeper() *Sweeper {
	return &Sweeper{m: m, hits: make([]bool, len(m.patterns)),
		left: len(m.patterns), accel: true}
}

// SetAccel toggles the root-state byte skip for subsequent Sweeps. The hit
// set is byte-identical either way; off exists for measurement and tests.
func (s *Sweeper) SetAccel(on bool) { s.accel = on }

// Skipped returns the cumulative number of bytes the root-state skip jumped
// over (across Resets).
func (s *Sweeper) Skipped() int64 { return s.skipped }

// Sweep consumes the next chunk of the stream, updating the hit set.
func (s *Sweeper) Sweep(chunk []byte) {
	if s.left == 0 {
		return
	}
	m := s.m
	state := s.state
	accel := s.accel && m.rootAccel
	for pos := 0; pos < len(chunk) && s.left > 0; pos++ {
		if accel && state == 0 {
			// Parked at the root: every byte outside the root-live set is
			// a self-loop with no outputs, so jump to the next live byte.
			j := m.rootFinder.Index(chunk[pos:])
			if j < 0 {
				s.skipped += int64(len(chunk) - pos)
				break
			}
			s.skipped += int64(j)
			pos += j
		}
		state = m.next[int(state)<<8|int(chunk[pos])]
		for _, pi := range m.outputs[state] {
			if !s.hits[pi] {
				s.hits[pi] = true
				s.left--
			}
		}
	}
	s.state = state
}

// Hits returns the per-pattern hit set accumulated so far. The slice is a
// copy; later Sweeps do not mutate it.
func (s *Sweeper) Hits() []bool {
	return append([]bool(nil), s.hits...)
}

// Hit reports whether pattern has occurred in the swept stream so far.
func (s *Sweeper) Hit(pattern int) bool { return s.hits[pattern] }

// Seen returns the number of distinct patterns that have occurred so far.
func (s *Sweeper) Seen() int { return len(s.hits) - s.left }

// Done reports whether every pattern has been seen; further Sweeps are
// no-ops.
func (s *Sweeper) Done() bool { return s.left == 0 }

// Reset clears the hit set and rewinds the automaton for a new stream.
func (s *Sweeper) Reset() {
	s.state = 0
	s.left = len(s.hits)
	for i := range s.hits {
		s.hits[i] = false
	}
}

// StreamScanner is a resumable match-emitting Scan: the automaton state is
// carried across chunks, so a pattern split over a chunk boundary still
// reports (at its chunk-relative end offset in the chunk that completes it).
// Unlike Sweeper it reports every occurrence, not just first-seen. Not safe
// for concurrent use.
type StreamScanner struct {
	m       *Matcher
	state   int32
	accel   bool
	skipped int64
}

// NewStreamScanner returns a fresh resumable occurrence scan over the
// matcher. Root-state acceleration is on by default.
func (m *Matcher) NewStreamScanner() *StreamScanner {
	return &StreamScanner{m: m, accel: true}
}

// SetAccel toggles the root-state byte skip for subsequent chunks.
func (s *StreamScanner) SetAccel(on bool) { s.accel = on }

// Skipped returns the cumulative number of bytes the root-state skip jumped
// over (across Resets).
func (s *StreamScanner) Skipped() int64 { return s.skipped }

// Scan consumes the next chunk, reporting pattern occurrences at their
// chunk-relative last-byte offsets.
func (s *StreamScanner) Scan(chunk []byte, fn func(pattern, end int)) {
	m := s.m
	state := s.state
	accel := s.accel && m.rootAccel
	for pos := 0; pos < len(chunk); pos++ {
		if accel && state == 0 {
			j := m.rootFinder.Index(chunk[pos:])
			if j < 0 {
				s.skipped += int64(len(chunk) - pos)
				s.state = 0
				return
			}
			s.skipped += int64(j)
			pos += j
		}
		state = m.next[int(state)<<8|int(chunk[pos])]
		for _, pi := range m.outputs[state] {
			fn(int(pi), pos)
		}
	}
	s.state = state
}

// Reset rewinds the automaton for a new stream.
func (s *StreamScanner) Reset() { s.state = 0 }
