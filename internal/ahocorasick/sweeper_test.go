package ahocorasick

import (
	"math/rand"
	"testing"
)

// TestSweeperSplitPatterns verifies that a pattern split across chunk
// boundaries — including 1-byte chunks — still registers: the sweeper
// carries automaton state, not a byte tail.
func TestSweeperSplitPatterns(t *testing.T) {
	m, err := New([][]byte{[]byte("needle"), []byte("abcabd"), []byte("zz")})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("xxabcabdyyneedlez")
	want := m.Hits(input)

	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		s := m.NewSweeper()
		for off := 0; off < len(input); {
			n := 1 + rng.Intn(4)
			if off+n > len(input) {
				n = len(input) - off
			}
			s.Sweep(input[off : off+n])
			off += n
		}
		got := s.Hits()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pattern %d: chunked hit %v, whole-input hit %v",
					trial, i, got[i], want[i])
			}
		}
		if s.Seen() != 2 || s.Done() {
			t.Fatalf("trial %d: Seen = %d, Done = %v; want 2, false", trial, s.Seen(), s.Done())
		}
	}
}

// TestSweeperReset verifies Reset rewinds both the hit set and the
// automaton state (no carry-over between streams).
func TestSweeperReset(t *testing.T) {
	m, err := New([][]byte{[]byte("ab")})
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewSweeper()
	s.Sweep([]byte("a"))
	s.Reset()
	s.Sweep([]byte("b")) // would complete "ab" if state leaked across Reset
	if s.Hit(0) {
		t.Fatal("Reset leaked automaton state across streams")
	}
	s.Sweep([]byte("ab"))
	if !s.Hit(0) || !s.Done() {
		t.Fatal("sweeper missed the pattern after Reset")
	}
}
