// Package hist provides allocation-free, lock-free latency and size
// histograms for the profiling layer. A Histogram is a fixed array of
// power-of-two (log2) buckets backed by atomic counters: Record is a
// handful of atomic adds with no allocation and no lock, so concurrent
// scanners and stream matchers can share one histogram without contention
// beyond cache-line traffic, and a Snapshot can be taken at any time
// without stopping writers.
//
// The bucket scheme trades precision for constant footprint: bucket 0
// holds non-positive values, bucket i (1 ≤ i ≤ 63) holds values whose
// binary length is i, i.e. the interval [2^(i-1), 2^i − 1]. Relative
// error of a percentile estimate is therefore bounded by 2× — ample for
// the latency-distribution questions the profiler answers (is p99 1 µs or
// 1 ms?) while keeping every histogram at a fixed ~1.5 KiB regardless of
// the value range, which spans 0 through math.MaxInt64.
package hist

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count: bucket 0 for v ≤ 0, buckets 1–63
// for the 63 binary magnitudes of positive int64 values.
const NumBuckets = 64

// Histogram is a concurrent log-bucketed histogram. The zero value is
// ready to use. A Histogram must not be copied after first use.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketOf returns the bucket index of v.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBounds returns the closed value interval [lo, hi] covered by
// bucket i.
func BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		return lo, 1<<63 - 1
	}
	return lo, int64(1)<<i - 1
}

// Record adds one observation. Safe for concurrent use; never allocates.
func (h *Histogram) Record(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// RecordN adds n identical observations of v in one shot — the bulk form
// of Record used by accelerated scans settling several stride-samples of a
// constant value at once. n ≤ 0 records nothing.
func (h *Histogram) RecordN(v, n int64) {
	if n <= 0 {
		return
	}
	h.buckets[bucketOf(v)].Add(n)
	h.count.Add(n)
	if v > 0 {
		h.sum.Add(v * n)
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot returns a point-in-time copy. Buckets are read individually,
// so a snapshot taken during concurrent Records is consistent per bucket
// but the total may lag individual buckets by in-flight records.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	// Clamp the header total to the bucket sum so percentile queries on a
	// snapshot racing with writers never run past the bucket mass.
	var bsum int64
	for _, b := range s.Buckets {
		bsum += b
	}
	if s.Count > bsum {
		s.Count = bsum
	}
	return s
}

// Snapshot is an immutable copy of a Histogram, suitable for JSON export
// and offline math.
type Snapshot struct {
	Buckets [NumBuckets]int64 `json:"buckets"`
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Max     int64             `json:"max"`
}

// Merge folds o into s (bucket-wise addition; Max is the maximum).
func (s *Snapshot) Merge(o Snapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Mean returns the mean of the positive observations' sum over all
// observations; 0 when empty.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Percentile estimates the q-quantile (q in [0, 1]) by locating the
// bucket holding the rank-⌈q·Count⌉ observation and interpolating
// linearly within its bounds. The estimate lands in the same bucket as
// the exact order statistic, so it is within 2× of it; q ≥ 1 (or a
// one-bucket tail) returns at most Max. Returns 0 when empty.
func (s Snapshot) Percentile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, b := range s.Buckets {
		if b == 0 {
			continue
		}
		if cum+b < rank {
			cum += b
			continue
		}
		lo, hi := BucketBounds(i)
		if s.Max > 0 && s.Max < hi && s.Max >= lo {
			hi = s.Max // tail bucket: the true maximum tightens the bound
		}
		// Position of the target rank within this bucket, in (0, 1].
		frac := float64(rank-cum) / float64(b)
		span := hi - lo
		d := int64(frac * float64(span))
		if d < 0 || d > span { // float rounding at the widest buckets
			d = span
		}
		return lo + d
	}
	return s.Max
}
