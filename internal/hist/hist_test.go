package hist

import (
	"encoding/json"
	"math"
	"math/bits"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0}, {-1, 0}, {0, 0},
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 62, 63}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		got := bucketOf(c.v)
		if got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
		lo, hi := BucketBounds(got)
		if c.v > 0 && (c.v < lo || c.v > hi) {
			t.Errorf("value %d outside its bucket bounds [%d, %d]", c.v, lo, hi)
		}
	}
	// Buckets tile the positive range with no gaps or overlaps.
	for i := 1; i < NumBuckets; i++ {
		lo, _ := BucketBounds(i)
		_, prevHi := BucketBounds(i - 1)
		if i > 1 && lo != prevHi+1 {
			t.Errorf("bucket %d starts at %d, previous ends at %d", i, lo, prevHi)
		}
	}
}

func TestRecordBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, math.MaxInt64, -5, 1000} {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Max != math.MaxInt64 {
		t.Fatalf("max = %d, want MaxInt64", s.Max)
	}
	if s.Buckets[0] != 2 { // 0 and -5
		t.Fatalf("bucket 0 = %d, want 2", s.Buckets[0])
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count() = %d, want 5", got)
	}
}

// TestPercentileOracle checks percentile estimates against a sorted-slice
// oracle: the estimate must land in the same log2 bucket as the exact
// order statistic (the documented 2× error bound).
func TestPercentileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dists := map[string]func() int64{
		"uniform":   func() int64 { return rng.Int63n(1 << 20) },
		"exp":       func() int64 { return int64(rng.ExpFloat64() * 50000) },
		"bimodal":   func() int64 { return []int64{100, 1 << 30}[rng.Intn(2)] },
		"constant":  func() int64 { return 4242 },
		"wide":      func() int64 { return rng.Int63() },
		"withZeros": func() int64 { return rng.Int63n(4) - 1 },
	}
	for name, gen := range dists {
		var h Histogram
		vals := make([]int64, 5000)
		for i := range vals {
			vals[i] = gen()
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Snapshot()
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			rank := int(q*float64(len(vals)) + 0.5)
			if rank < 1 {
				rank = 1
			}
			if rank > len(vals) {
				rank = len(vals)
			}
			exact := vals[rank-1]
			got := s.Percentile(q)
			if bucketOf(got) != bucketOf(exact) {
				t.Errorf("%s: p%g = %d (bucket %d), oracle %d (bucket %d)",
					name, 100*q, got, bucketOf(got), exact, bucketOf(exact))
			}
			if got > s.Max {
				t.Errorf("%s: p%g = %d exceeds max %d", name, 100*q, got, s.Max)
			}
		}
	}
}

// TestMerge checks that merging two snapshots is observation-equivalent to
// recording everything into one histogram.
func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var a, b, all Histogram
	for i := 0; i < 3000; i++ {
		v := rng.Int63n(1 << 40)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	m := a.Snapshot()
	m.Merge(b.Snapshot())
	want := all.Snapshot()
	if m != want {
		t.Fatalf("merged snapshot differs from direct recording:\nmerged: %+v\ndirect: %+v", m, want)
	}
	for _, q := range []float64{0.5, 0.99} {
		if m.Percentile(q) != want.Percentile(q) {
			t.Fatalf("p%g differs after merge", 100*q)
		}
	}
}

// TestConcurrentRecordSnapshot hammers one histogram from many goroutines
// while snapshots are taken, under -race. Final counts must be exact.
func TestConcurrentRecordSnapshot(t *testing.T) {
	var h Histogram
	const workers, perWorker = 8, 20000
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	reader.Add(1)
	go func() { // concurrent reader: snapshots must stay internally sane
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var bsum int64
			for _, b := range s.Buckets {
				bsum += b
			}
			if s.Count > bsum {
				t.Errorf("snapshot count %d exceeds bucket mass %d", s.Count, bsum)
				return
			}
			_ = s.Percentile(0.99)
		}
	}()
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	writers.Wait()
	close(stop)
	reader.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
}

func TestSnapshotJSON(t *testing.T) {
	var h Histogram
	h.Record(42)
	b, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b) {
		t.Fatalf("invalid JSON: %s", b)
	}
}

// FuzzRecord exercises bucket-boundary values: recording any int64 must
// keep the histogram internally consistent and percentiles within bounds.
func FuzzRecord(f *testing.F) {
	f.Add(int64(0), int64(1), int64(math.MaxInt64))
	f.Add(int64(-1), int64(math.MinInt64), int64(2))
	f.Add(int64(1<<62), int64(1<<62-1), int64(1<<62+1))
	f.Add(int64(255), int64(256), int64(257))
	f.Fuzz(func(t *testing.T, a, b, c int64) {
		var h Histogram
		for _, v := range []int64{a, b, c} {
			h.Record(v)
			if v > 0 {
				lo, hi := BucketBounds(bucketOf(v))
				if v < lo || v > hi {
					t.Fatalf("value %d outside bucket [%d, %d]", v, lo, hi)
				}
			} else if bucketOf(v) != 0 {
				t.Fatalf("non-positive %d not in bucket 0", v)
			}
		}
		s := h.Snapshot()
		if s.Count != 3 {
			t.Fatalf("count = %d, want 3", s.Count)
		}
		var bsum int64
		for _, n := range s.Buckets {
			bsum += n
		}
		if bsum != 3 {
			t.Fatalf("bucket mass = %d, want 3", bsum)
		}
		for _, q := range []float64{0, 0.5, 1} {
			p := s.Percentile(q)
			if p < 0 || p > s.Max {
				t.Fatalf("p%g = %d outside [0, max=%d]", 100*q, p, s.Max)
			}
			if p > 0 && bits.Len64(uint64(p)) > bits.Len64(uint64(s.Max)) {
				t.Fatalf("p%g bucket above max bucket", 100*q)
			}
		}
	})
}
