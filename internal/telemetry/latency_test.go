package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestLatencyNilSafe(t *testing.T) {
	var l *Latency
	l.Record(StageScan, 100) // must not panic
	if s := l.Snapshot(StageScan); s.Count != 0 {
		t.Fatalf("nil latency snapshot count = %d, want 0", s.Count)
	}
	if st := l.Stats(); st != nil {
		t.Fatalf("nil latency Stats() = %+v, want nil", st)
	}
}

func TestLatencyRecordAndStats(t *testing.T) {
	l := &Latency{}
	if st := l.Stats(); st != nil {
		t.Fatalf("empty latency Stats() = %+v, want nil", st)
	}
	l.Record(StageScan, 1000)
	l.Record(StageScan, 2000)
	l.Record(StagePrefilter, 500)
	l.Record(NumStages, 7)   // out of range: dropped
	l.Record(NumStages+5, 7) // far out of range: dropped

	st := l.Stats()
	if st == nil || len(st.Stages) != 2 {
		t.Fatalf("Stats() = %+v, want 2 stages", st)
	}
	if st.Stages[0].Stage != "scan" || st.Stages[0].Count != 2 {
		t.Errorf("stage 0 = %+v, want scan count 2", st.Stages[0])
	}
	if st.Stages[1].Stage != "prefilter" || st.Stages[1].Count != 1 {
		t.Errorf("stage 1 = %+v, want prefilter count 1", st.Stages[1])
	}
	if p := st.Stages[0].P99; p < 1000 {
		t.Errorf("scan p99 = %d, want >= 1000", p)
	}
}

// TestStageNames pins every stage's exposition name: these strings are the
// JSON "stage" values and the OpenMetrics label values, so renames are
// breaking changes.
func TestStageNames(t *testing.T) {
	want := map[Stage]string{
		StageScan:             "scan",
		StagePrefilter:        "prefilter",
		StageStrategyIMFAnt:   "strategy_imfant",
		StageStrategyLazyDFA:  "strategy_lazydfa",
		StageStrategyAC:       "strategy_ac",
		StageStrategyAnchored: "strategy_anchored",
		StageStrategyDFA:      "strategy_dfa",
		StageParallel:         "parallel",
		StageStreamWrite:      "stream_write",
		StageStreamFlush:      "stream_flush",
		StageSegment:          "segment",
	}
	if len(want) != int(NumStages) {
		t.Fatalf("test covers %d stages, NumStages = %d", len(want), NumStages)
	}
	for s, name := range want {
		if got := s.String(); got != name {
			t.Errorf("Stage(%d).String() = %q, want %q", s, got, name)
		}
	}
	if NumStages.String() != "unknown" {
		t.Errorf("NumStages.String() = %q, want unknown", NumStages.String())
	}
}

// TestStrategyStageOrder pins the contiguity contract StrategyStage relies
// on: strategy k's stage name is "strategy_" + the root package's
// Strategy(k).String() value.
func TestStrategyStageOrder(t *testing.T) {
	names := []string{"imfant", "lazydfa", "ac", "anchored", "dfa"}
	for k, n := range names {
		if got := StrategyStage(k).String(); got != "strategy_"+n {
			t.Errorf("StrategyStage(%d) = %q, want %q", k, got, "strategy_"+n)
		}
	}
}

func TestCollectorLatencySection(t *testing.T) {
	c := NewCollector(0)
	if c.Latency() != nil {
		t.Fatal("Latency() non-nil before EnableLatency")
	}
	if s := c.Snapshot(); s.Latency != nil {
		t.Fatal("snapshot has latency section before EnableLatency")
	}
	l := c.EnableLatency()
	if l == nil || c.Latency() != l {
		t.Fatal("EnableLatency/Latency accessor mismatch")
	}
	if s := c.Snapshot(); s.Latency != nil {
		t.Fatal("snapshot has latency section with no observations")
	}
	l.Record(StageScan, 4096)
	s := c.Snapshot()
	if s.Latency == nil || len(s.Latency.Stages) != 1 || s.Latency.Stages[0].Stage != "scan" {
		t.Fatalf("snapshot latency = %+v, want one scan stage", s.Latency)
	}
	// The expvar JSON must carry the section inline (HistStats embedded).
	var m map[string]any
	if err := json.Unmarshal([]byte(c.String()), &m); err != nil {
		t.Fatalf("collector JSON: %v", err)
	}
	lat, ok := m["latency"].(map[string]any)
	if !ok {
		t.Fatalf("no latency object in %v", m)
	}
	stages, ok := lat["stages"].([]any)
	if !ok || len(stages) != 1 {
		t.Fatalf("latency.stages = %v", lat["stages"])
	}
	st := stages[0].(map[string]any)
	for _, key := range []string{"stage", "count", "p50", "p90", "p99", "max", "mean"} {
		if _, ok := st[key]; !ok {
			t.Errorf("stage entry missing %q: %v", key, st)
		}
	}
}

func TestLatencyConcurrentRecord(t *testing.T) {
	l := &Latency{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Record(StageScan, int64(i+1))
				l.Record(StageStreamWrite, int64(i+1))
			}
		}()
	}
	wg.Wait()
	if got := l.Snapshot(StageScan).Count; got != 8000 {
		t.Errorf("scan count = %d, want 8000", got)
	}
	if got := l.Snapshot(StageStreamWrite).Count; got != 8000 {
		t.Errorf("stream_write count = %d, want 8000", got)
	}
}

// TestTraceKindNames pins the new event kinds' wire names.
func TestTraceKindNames(t *testing.T) {
	want := map[EventKind]string{
		EventScanError:    "scan_error",
		EventLazyPin:      "lazy_pin",
		EventRulesetSwap:  "ruleset_swap",
		EventRulesetDrain: "ruleset_drain",
	}
	for k, name := range want {
		got := k.String()
		if got != name {
			t.Errorf("kind %d = %q, want %q", k, got, name)
		}
		if strings.Contains(got, " ") {
			t.Errorf("kind name %q contains a space", got)
		}
	}
}
