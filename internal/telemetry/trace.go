package telemetry

import (
	"sync"
	"time"
)

// EventKind classifies a trace event.
type EventKind uint8

const (
	// EventScanBegin marks the start of a block scan; Value is the input
	// length in bytes.
	EventScanBegin EventKind = iota + 1
	// EventScanEnd marks the end of a block scan; Value is the number of
	// match events reported.
	EventScanEnd
	// EventMatch is one reported match; Rule is the rule id, Offset the
	// end offset of the match.
	EventMatch
	// EventLazyFlush reports whole-cache flushes during one automaton's
	// scan; Automaton identifies it, Value is the flush count.
	EventLazyFlush
	// EventLazyFallback reports a scan that abandoned the lazy-DFA cache
	// for the iMFAnt engine; Value is 1 for a thrash-forced fallback, 0
	// for pop-mode delegation.
	EventLazyFallback
	// EventStreamEnd marks a StreamMatcher Close; Value is the stream's
	// total match count, Offset the total bytes consumed per automaton.
	EventStreamEnd
	// EventPrefilterSkip reports one MFSA execution elided by the
	// literal-factor prefilter; Automaton identifies it, Value is the
	// number of input bytes it did not have to scan.
	EventPrefilterSkip
	// EventScanError marks a scan (or stream) that completed below full
	// service; Value is a bitmask of degradation causes (the root
	// package's causeMask encoding: timeout, shed, canceled, worker
	// panic), so the span carries the full cause chain of a joined error.
	EventScanError
	// EventLazyPin reports a scan delegated whole to the iMFAnt engine
	// because the degradation ladder bottomed out (thrash at the grown
	// cache cap); Automaton identifies the pinned group.
	EventLazyPin
	// EventRulesetSwap marks a Registry hot-swap; Value is the sequence
	// number of the version that became current. Recorded into both the
	// outgoing and the incoming ruleset's rings (when tracing is on), so
	// either side's tail shows the cutover.
	EventRulesetSwap
	// EventRulesetDrain marks a Registry.DrainOld completion; Value is the
	// number of superseded versions whose last pin was released.
	EventRulesetDrain
)

// String returns the snake_case name of the kind (also used in JSON).
func (k EventKind) String() string {
	switch k {
	case EventScanBegin:
		return "scan_begin"
	case EventScanEnd:
		return "scan_end"
	case EventMatch:
		return "match"
	case EventLazyFlush:
		return "lazy_flush"
	case EventLazyFallback:
		return "lazy_fallback"
	case EventStreamEnd:
		return "stream_end"
	case EventPrefilterSkip:
		return "prefilter_skip"
	case EventScanError:
		return "scan_error"
	case EventLazyPin:
		return "lazy_pin"
	case EventRulesetSwap:
		return "ruleset_swap"
	case EventRulesetDrain:
		return "ruleset_drain"
	}
	return "unknown"
}

// Event is one structured trace record. Fields not meaningful for a kind
// are -1 (Automaton, Rule, Offset) or 0 (Value).
type Event struct {
	// Seq is the global sequence number of the event, starting at 1.
	Seq int64 `json:"seq"`
	// Nanos is the wall-clock timestamp in Unix nanoseconds.
	Nanos int64 `json:"t_ns"`
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Automaton is the MFSA index within the ruleset, -1 when the event
	// spans all automata.
	Automaton int32 `json:"automaton"`
	// Rule is the rule id for match events, -1 otherwise.
	Rule int32 `json:"rule"`
	// Offset is the stream offset the event refers to, -1 when N/A.
	Offset int64 `json:"offset"`
	// Value is kind-specific (see the kind constants).
	Value int64 `json:"value"`
}

// TraceRing is a bounded ring buffer of trace events: the most recent
// capacity events are retained, older ones are overwritten. Record and
// Events are safe for concurrent use. An optional sink observes every
// event synchronously as it is recorded, regardless of ring overwrites.
type TraceRing struct {
	mu   sync.Mutex
	buf  []Event
	seq  int64
	sink func(Event)
}

// NewTraceRing returns a ring retaining the most recent capacity events;
// capacity < 1 is raised to 1.
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]Event, 0, capacity)}
}

// SetSink installs fn as the event sink, called synchronously under the
// ring's lock for every recorded event (keep it fast; nil removes it).
func (t *TraceRing) SetSink(fn func(Event)) {
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

// Record stamps ev with the next sequence number and the current time,
// stores it (overwriting the oldest event when full), and feeds the sink.
func (t *TraceRing) Record(ev Event) {
	now := time.Now().UnixNano()
	t.mu.Lock()
	t.seq++
	ev.Seq = t.seq
	ev.Nanos = now
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[(t.seq-1)%int64(cap(t.buf))] = ev
	}
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink(ev)
	}
}

// Events returns the retained events in chronological order.
func (t *TraceRing) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		return append(out, t.buf...)
	}
	head := t.seq % int64(cap(t.buf)) // index of the oldest event
	out = append(out, t.buf[head:]...)
	return append(out, t.buf[:head]...)
}

// Recorded returns the total number of events ever recorded, including
// those overwritten in the ring.
func (t *TraceRing) Recorded() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}
