package telemetry

import "repro/internal/hist"

// Stage identifies one instrumented span of the scan pipeline for latency
// attribution. Stages are coarse on purpose: a timer brackets a whole
// sweep, a whole per-automaton dispatch, or a whole chunk — never a
// per-byte step — so the cost of attribution is two monotonic clock reads
// per stage invocation, folded into a log2 histogram.
type Stage uint8

const (
	// StageScan brackets one whole block scan (Scanner.run): prefilter
	// sweep, every per-automaton dispatch, and match delivery.
	StageScan Stage = iota
	// StagePrefilter brackets the literal-factor Aho–Corasick sweep that
	// gates a scan or stream chunk.
	StagePrefilter
	// StageStrategyIMFAnt through StageStrategyDFA bracket one automaton's
	// dispatch under the named execution strategy. The five constants are
	// contiguous and ordered exactly like the root package's Strategy
	// values so StrategyStage is a direct offset.
	StageStrategyIMFAnt
	StageStrategyLazyDFA
	StageStrategyAC
	StageStrategyAnchored
	StageStrategyDFA
	// StageParallel brackets the multi-threaded engine fan-out of a
	// parallel count (all default-strategy automata together — wall clock,
	// not the sum of per-worker time).
	StageParallel
	// StageStreamWrite brackets one StreamMatcher.Write chunk.
	StageStreamWrite
	// StageStreamFlush brackets the end-of-stream flush inside
	// StreamMatcher.Close (held-chunk replay, final feed, engine End).
	StageStreamFlush
	// StageSegment brackets one segment-parallel group execution: worker
	// fan-out plus the sequential boundary stitch (wall clock, not the sum
	// of per-worker time).
	StageSegment
	// NumStages is the number of stages; not itself a stage.
	NumStages
)

// StrategyStage maps the root package's strategy index k (imfant=0,
// lazydfa=1, ac=2, anchored=3, dfa=4) to its dispatch stage.
func StrategyStage(k int) Stage { return StageStrategyIMFAnt + Stage(k) }

// String returns the stable snake_case stage name used in JSON stats and
// as the OpenMetrics "stage" label value.
func (s Stage) String() string {
	switch s {
	case StageScan:
		return "scan"
	case StagePrefilter:
		return "prefilter"
	case StageStrategyIMFAnt:
		return "strategy_imfant"
	case StageStrategyLazyDFA:
		return "strategy_lazydfa"
	case StageStrategyAC:
		return "strategy_ac"
	case StageStrategyAnchored:
		return "strategy_anchored"
	case StageStrategyDFA:
		return "strategy_dfa"
	case StageParallel:
		return "parallel"
	case StageStreamWrite:
		return "stream_write"
	case StageStreamFlush:
		return "stream_flush"
	case StageSegment:
		return "segment"
	}
	return "unknown"
}

// Latency holds one allocation-free log2 histogram per pipeline stage.
// A nil *Latency is valid and records nothing, so call sites guard the
// whole instrumentation block with a single nil check.
type Latency struct {
	hists [NumStages]hist.Histogram
}

// Record folds one stage invocation of ns nanoseconds. Nil-safe.
func (l *Latency) Record(s Stage, ns int64) {
	if l == nil || s >= NumStages {
		return
	}
	l.hists[s].Record(ns)
}

// Snapshot returns the stage's histogram snapshot; zero-valued when l is
// nil or the stage never fired.
func (l *Latency) Snapshot(s Stage) hist.Snapshot {
	if l == nil || s >= NumStages {
		return hist.Snapshot{}
	}
	return l.hists[s].Snapshot()
}

// Stats summarizes every stage that has recorded at least one observation,
// in stage order; nil when nothing fired yet (so the JSON section is
// omitted while empty).
func (l *Latency) Stats() *LatencyStats {
	if l == nil {
		return nil
	}
	var out *LatencyStats
	for s := Stage(0); s < NumStages; s++ {
		snap := l.hists[s].Snapshot()
		if snap.Count == 0 {
			continue
		}
		if out == nil {
			out = &LatencyStats{}
		}
		out.Stages = append(out.Stages, StageLatencyStats{
			Stage: s.String(),
			HistStats: HistStats{
				Count: snap.Count,
				Mean:  snap.Mean(),
				P50:   snap.Percentile(0.50),
				P90:   snap.Percentile(0.90),
				P99:   snap.Percentile(0.99),
				Max:   snap.Max,
			},
		})
	}
	return out
}

// LatencyStats is the latency section of a snapshot: one summarized
// wall-clock distribution (nanoseconds) per pipeline stage that fired.
type LatencyStats struct {
	// Stages lists the active stages in pipeline order. Strategy-dispatch
	// stages ("strategy_ac", …) attribute per-automaton dispatch time to
	// the strategy that ran it.
	Stages []StageLatencyStats `json:"stages"`
}

// StageLatencyStats is one stage's latency summary, in nanoseconds.
type StageLatencyStats struct {
	// Stage is the stable stage name (see Stage.String).
	Stage string `json:"stage"`
	HistStats
}
