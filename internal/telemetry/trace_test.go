package telemetry

import (
	"sync"
	"testing"
)

func TestTraceRingOrderAndOverwrite(t *testing.T) {
	r := NewTraceRing(4)
	for i := 1; i <= 10; i++ {
		r.Record(Event{Kind: EventMatch, Value: int64(i)})
	}
	if r.Recorded() != 10 {
		t.Fatalf("recorded = %d, want 10", r.Recorded())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := int64(7 + i)
		if ev.Seq != wantSeq || ev.Value != wantSeq {
			t.Fatalf("event %d: seq=%d value=%d, want %d (chronological tail)", i, ev.Seq, ev.Value, wantSeq)
		}
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Nanos < evs[i-1].Nanos {
			t.Fatalf("timestamps not monotone: %d then %d", evs[i-1].Nanos, evs[i].Nanos)
		}
	}
}

func TestTraceRingPartialFill(t *testing.T) {
	r := NewTraceRing(8)
	r.Record(Event{Kind: EventScanBegin})
	r.Record(Event{Kind: EventScanEnd})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("partial fill: got %+v", evs)
	}
}

func TestTraceRingSinkSeesOverwritten(t *testing.T) {
	r := NewTraceRing(1)
	var got []int64
	r.SetSink(func(ev Event) { got = append(got, ev.Value) })
	for i := 1; i <= 5; i++ {
		r.Record(Event{Kind: EventMatch, Value: int64(i)})
	}
	if len(got) != 5 {
		t.Fatalf("sink saw %d events, want all 5 despite capacity 1", len(got))
	}
	if evs := r.Events(); len(evs) != 1 || evs[0].Value != 5 {
		t.Fatalf("ring kept %+v, want only the last event", evs)
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Event{Kind: EventMatch})
				_ = r.Events()
			}
		}()
	}
	wg.Wait()
	if r.Recorded() != 8*500 {
		t.Fatalf("recorded = %d, want %d", r.Recorded(), 8*500)
	}
	evs := r.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("retained window not contiguous: seq %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

// TestTraceRingConcurrentSinkSwap replaces the sink while recorders run:
// every event must reach exactly one of the sinks installed over its
// lifetime or none (when the swap lands on nil), never two, and the ring's
// own accounting must stay exact.
func TestTraceRingConcurrentSinkSwap(t *testing.T) {
	r := NewTraceRing(32)
	var mu sync.Mutex
	seen := make(map[int64]int) // seq -> delivery count across all sinks
	mkSink := func() func(Event) {
		return func(ev Event) {
			mu.Lock()
			seen[ev.Seq]++
			mu.Unlock()
		}
	}
	const recorders, perG = 4, 2000
	var wg sync.WaitGroup
	for g := 0; g < recorders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Record(Event{Kind: EventMatch, Value: int64(i)})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			r.SetSink(mkSink())
			if i%7 == 0 {
				r.SetSink(nil)
			}
		}
		r.SetSink(nil)
	}()
	wg.Wait()
	<-done
	if r.Recorded() != recorders*perG {
		t.Fatalf("recorded = %d, want %d", r.Recorded(), recorders*perG)
	}
	mu.Lock()
	defer mu.Unlock()
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("seq %d delivered %d times across sinks, want exactly once", seq, n)
		}
	}
}

// TestTraceRingStableSinkLosesNothing pins the no-lost-events half of the
// sink contract: with a single sink installed for the whole run, every
// recorded event is delivered exactly once even under concurrent writers.
func TestTraceRingStableSinkLosesNothing(t *testing.T) {
	r := NewTraceRing(8)
	var mu sync.Mutex
	seen := make(map[int64]int)
	r.SetSink(func(ev Event) {
		mu.Lock()
		seen[ev.Seq]++
		mu.Unlock()
	})
	const recorders, perG = 4, 1000
	var wg sync.WaitGroup
	for g := 0; g < recorders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Record(Event{Kind: EventMatch})
			}
		}()
	}
	wg.Wait()
	if len(seen) != recorders*perG {
		t.Fatalf("sink saw %d distinct events, want %d", len(seen), recorders*perG)
	}
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("seq %d delivered %d times, want 1", seq, n)
		}
	}
}

func TestEventKindString(t *testing.T) {
	kinds := map[EventKind]string{
		EventScanBegin:    "scan_begin",
		EventScanEnd:      "scan_end",
		EventMatch:        "match",
		EventLazyFlush:    "lazy_flush",
		EventLazyFallback: "lazy_fallback",
		EventStreamEnd:    "stream_end",
		EventKind(99):     "unknown",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Fatalf("kind %d: %q, want %q", k, got, want)
		}
	}
}
