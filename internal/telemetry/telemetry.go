// Package telemetry provides cheap, allocation-free runtime counters for
// the matching engines. A Collector aggregates whole-scan totals pushed by
// scanners at scan (not per-byte) granularity, so the per-byte hot loops
// stay branch-free: engines accumulate plain local counters during a scan
// and fold them into the shared Collector exactly once, when the scan ends.
//
// Snapshot() returns an immutable Stats value suitable for JSON export;
// Collector itself implements expvar.Var via String(), so a Collector can
// be published directly with expvar.Publish.
package telemetry

import (
	"encoding/json"
	"sync/atomic"
)

// Stats is an immutable snapshot of a Collector. All counters are
// cumulative since the Collector was created.
type Stats struct {
	// Scans counts completed scan operations (one per automaton execution
	// in parallel scans, one per stream for StreamMatcher).
	Scans int64 `json:"scans"`
	// BytesScanned counts input bytes actually matched against. For
	// parallel multi-automaton scans each automaton's pass counts
	// separately, mirroring the work performed.
	BytesScanned int64 `json:"bytes_scanned"`
	// Matches counts reported match events.
	Matches int64 `json:"matches"`
	// RuleHits holds per-rule match counts, indexed by rule id.
	RuleHits []int64 `json:"rule_hits,omitempty"`
	// Lazy holds lazy-DFA cache counters; nil when the lazy engine is
	// not in use.
	Lazy *LazyStats `json:"lazy,omitempty"`
	// Prefilter holds the literal-factor prefilter counters; nil when the
	// prefilter is not in use.
	Prefilter *PrefilterStats `json:"prefilter,omitempty"`
	// Accel holds the byte-skipping acceleration counters; nil when
	// acceleration is off.
	Accel *AccelStats `json:"accel,omitempty"`
	// Profile holds the sampling profiler's aggregates; nil when
	// profiling is off.
	Profile *ProfileStats `json:"profile,omitempty"`
	// Strategy holds the per-group strategy planner's section: how the
	// groups were classified, bytes scanned per strategy, and the
	// effectiveness tracker's sweep-disable counters. nil for rulesets
	// compiled before the planner existed (none, today).
	Strategy *StrategyStats `json:"strategy,omitempty"`
	// Segment holds the segment-parallel scanning counters; nil when
	// segmented scanning is disabled.
	Segment *SegmentStats `json:"segment,omitempty"`
	// Degraded accounts every rung of the degradation ladder the runtime
	// has taken: timeouts, shed scans, contained panics, thrash
	// fallbacks, cache-grow retries, and pinned delegations. Always
	// present — an all-zero section is the healthy steady state.
	Degraded *DegradedStats `json:"degraded"`
	// Latency holds per-stage wall-clock latency distributions; nil when
	// latency attribution is off or no stage has fired yet.
	Latency *LatencyStats `json:"latency,omitempty"`
}

// DegradedStats is the degradation-ladder section of a snapshot: one
// cumulative counter per way a scan can complete below full service. A scan
// counted here still returned either exact matches or a typed error — these
// counters measure lost headroom, not lost correctness.
type DegradedStats struct {
	// ScanTimeouts counts scans cancelled by Options.ScanTimeout
	// (ErrScanTimeout).
	ScanTimeouts int64 `json:"scan_timeouts"`
	// Shed counts scans rejected by overload shedding (ErrOverloaded)
	// before doing any work.
	Shed int64 `json:"shed"`
	// WorkerPanics counts panics contained inside parallel scan workers
	// (engine.WorkerPanicError): the automaton's results were lost, the
	// process and the sibling automata were not.
	WorkerPanics int64 `json:"worker_panics"`
	// ThrashFallbacks counts lazy-DFA scans that fell back to the iMFAnt
	// engine after thrashing the cache (mirrors Lazy.Fallbacks, surfaced
	// here because the fallback is the ladder's first rung).
	ThrashFallbacks int64 `json:"thrash_fallbacks"`
	// CacheGrows counts one-shot retry-with-larger-cache events: a scan
	// re-run on the cached path with the cap doubled after a thrash.
	CacheGrows int64 `json:"cache_grows"`
	// PinnedScans counts scans delegated whole to the iMFAnt engine
	// because the ladder bottomed out (thrash at the grown cap too).
	PinnedScans int64 `json:"pinned_scans"`
}

// StrategyStats is the strategy-planner section of a snapshot: the
// compile-time classification outcome plus the runtime effectiveness
// tracker's counters.
type StrategyStats struct {
	// Planned reports whether the planner chose strategies per group;
	// false means a forced Options.Engine override put every group on one
	// engine.
	Planned bool `json:"planned"`
	// Groups lists, per execution strategy in use, how many automaton
	// groups run it and how many input bytes it has scanned. Per-strategy
	// bytes partition BytesScanned exactly: every byte an automaton (or
	// its strategy replacement) matched against is attributed to exactly
	// one strategy.
	Groups []StrategyGroupStats `json:"groups,omitempty"`
	// SweepsDisabled counts factor sweeps elided entirely because the
	// effectiveness tracker had disabled gating for every gated group.
	SweepsDisabled int64 `json:"sweeps_disabled"`
	// SweepProbes counts sweeps re-run as explicit probes while disabled,
	// checking whether gating has become worthwhile again.
	SweepProbes int64 `json:"sweep_probes"`
	// GroupsUngated is the current number of gated groups whose factor
	// gate the tracker has disabled (a gauge; the groups scan every input
	// until a probe re-enables them).
	GroupsUngated int64 `json:"groups_ungated"`
}

// StrategyGroupStats is one strategy's row in the planner section.
type StrategyGroupStats struct {
	// Strategy names the execution strategy ("ac", "anchored", "dfa",
	// "imfant", "lazydfa").
	Strategy string `json:"strategy"`
	// Groups is the number of automaton groups the planner routed here.
	Groups int `json:"groups"`
	// Bytes counts input bytes this strategy matched against.
	Bytes int64 `json:"bytes"`
}

// SegmentStats is the segment-parallel scanning section of a snapshot. Its
// three byte counters partition BytesScanned exactly: every matched-against
// byte was scanned either inside a segment worker (ParallelBytes), by a
// boundary-stitch runner (StitchBytes), or serially (SerialBytes — derived
// at snapshot time as the remainder, so the partition holds by construction
// across mixed workloads).
type SegmentStats struct {
	// SegmentedScans counts automaton-group executions that ran
	// segment-parallel.
	SegmentedScans int64 `json:"segmented_scans"`
	// Segments counts segments executed across those scans.
	Segments int64 `json:"segments"`
	// Fallbacks counts scans whose boundary frontier exceeded the
	// speculative budget; the scan still completed exactly and the group
	// was pinned serial for subsequent scans.
	Fallbacks int64 `json:"fallbacks"`
	// ParallelBytes counts input bytes scanned inside segment workers.
	ParallelBytes int64 `json:"parallel_bytes"`
	// StitchBytes counts bytes re-scanned by boundary stitching (carry
	// replay plus local recomputation windows).
	StitchBytes int64 `json:"stitch_bytes"`
	// SerialBytes counts bytes scanned outside the segment-parallel path:
	// BytesScanned − ParallelBytes − StitchBytes.
	SerialBytes int64 `json:"serial_bytes"`
}

// PrefilterStats aggregates literal-factor prefilter behaviour: how often
// the Aho–Corasick factor sweep let whole MFSA groups be skipped, and how
// many automaton-bytes that saved.
type PrefilterStats struct {
	// FilterableRules is the number of rules carrying a literal factor.
	FilterableRules int `json:"filterable_rules"`
	// Factors is the number of distinct factor strings swept for.
	Factors int `json:"factors"`
	// Sweeps counts prefilter sweeps (one per gated scan or stream).
	Sweeps int64 `json:"sweeps"`
	// FactorHits counts distinct factors that occurred, summed over sweeps
	// (the prefilter_factor_hits counter).
	FactorHits int64 `json:"prefilter_factor_hits"`
	// GroupsSkipped counts MFSA executions elided by the prefilter.
	GroupsSkipped int64 `json:"groups_skipped"`
	// BytesSaved is the total input volume those skipped executions would
	// have scanned.
	BytesSaved int64 `json:"bytes_saved"`
}

// AccelStats aggregates byte-skipping acceleration: bytes the engines jumped
// over with a skip kernel instead of stepping one at a time. Skipped bytes
// are still matched against (the jump is provably equivalent), so they also
// count in BytesScanned — BytesSkipped measures per-byte work avoided, not
// input elided, and is disjoint from the prefilter's BytesSaved, which
// counts automaton executions that never ran at all.
type AccelStats struct {
	// Automata is the number of MFSAs sharing these counters.
	Automata int `json:"automata"`
	// AccelStates is the current number of lazy-DFA cached states
	// classified as accelerable, summed across automata (a gauge, like
	// LazyStats.CachedStates); 0 when the iMFAnt engine runs the scans.
	AccelStates int64 `json:"accel_states"`
	// BytesSkipped counts input bytes consumed by accelerated jumps —
	// lazy-DFA state acceleration and the iMFAnt start-byte skip.
	BytesSkipped int64 `json:"bytes_skipped"`
}

// ProfileStats is the profiler section of a snapshot: sampled state heat
// attributed to rules, plus latency and active-set distributions.
type ProfileStats struct {
	// Stride is the symbol-sampling stride in effect (state heat is
	// sampled once every Stride input bytes).
	Stride int `json:"stride"`
	// Samples counts sampling points taken across all scans.
	Samples int64 `json:"samples"`
	// ScanLatencyNS is the per-scan wall-clock latency distribution in
	// nanoseconds; nil when no scan completed yet.
	ScanLatencyNS *HistStats `json:"scan_latency_ns,omitempty"`
	// ChunkLatencyNS is the per-stream-chunk (StreamMatcher.Write)
	// latency distribution in nanoseconds; nil without stream traffic.
	ChunkLatencyNS *HistStats `json:"chunk_latency_ns,omitempty"`
	// ActivePairs is the distribution of active (state, FSA) pairs seen
	// at sampling points — the live working-set size of the engine.
	ActivePairs *HistStats `json:"active_pairs,omitempty"`
	// HotStates lists the most-visited MFSA states with rule attribution,
	// hottest first.
	HotStates []HotStateStats `json:"hot_states,omitempty"`
}

// HistStats is the compact summary of one histogram.
type HistStats struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// HotStateStats is one entry of the hot-state report.
type HotStateStats struct {
	// Automaton is the MFSA index within the ruleset.
	Automaton int `json:"automaton"`
	// State is the state id within that MFSA.
	State int `json:"state"`
	// Visits is the number of sampling points at which the state was
	// active.
	Visits int64 `json:"visits"`
	// Share is Visits as a fraction of all state visits, in [0, 1].
	Share float64 `json:"share"`
	// Rules lists the rule ids whose compiled paths traverse the state.
	Rules []int `json:"rules,omitempty"`
}

// LazyStats aggregates DFA-cache behaviour across all automata of a
// ruleset running in lazy mode.
type LazyStats struct {
	// Automata is the number of MFSAs sharing these counters.
	Automata int `json:"automata"`
	// CachedStates is the current total number of cached DFA states
	// across all automata (a gauge, not a cumulative counter).
	CachedStates int64 `json:"cached_states"`
	// MaxStates is the per-automaton cache capacity in effect.
	MaxStates int `json:"max_states"`
	// ByteClasses is the total byte-class count across automata (the
	// width of the compressed transition rows).
	ByteClasses int `json:"byte_classes"`
	// Hits counts input symbols served by a cached transition.
	Hits int64 `json:"hits"`
	// Misses counts transitions computed on demand (one per uncached
	// (state, class) edge taken).
	Misses int64 `json:"misses"`
	// Flushes counts whole-cache resets due to the capacity limit.
	Flushes int64 `json:"flushes"`
	// Fallbacks counts scans that abandoned the DFA cache and fell back
	// to iMFAnt after thrashing (MaxFlushes exhausted).
	Fallbacks int64 `json:"fallbacks"`
}

// HitRate returns the fraction of symbols served from cache, in [0, 1].
// It returns 0 when no symbols have been processed.
func (l *LazyStats) HitRate() float64 {
	total := l.Hits + l.Misses
	if total == 0 {
		return 0
	}
	return float64(l.Hits) / float64(total)
}

// Collector accumulates counters. All methods are safe for concurrent
// use; writers fold whole-scan totals, so contention is proportional to
// scan count, not input size.
type Collector struct {
	scans   atomic.Int64
	bytes   atomic.Int64
	matches atomic.Int64

	ruleHits []atomic.Int64

	lazyEnabled  bool
	lazyAutomata int
	maxStates    int
	byteClasses  int
	hits         atomic.Int64
	misses       atomic.Int64
	flushes      atomic.Int64
	fallbacks    atomic.Int64
	cachedStates []atomic.Int64 // per-automaton gauge

	prefEnabled bool
	prefRules   int
	prefFactors int
	prefSweeps  atomic.Int64
	prefHits    atomic.Int64
	prefSkipped atomic.Int64
	prefSaved   atomic.Int64

	accelEnabled  bool
	accelAutomata int
	accelBytes    atomic.Int64
	accelStates   []atomic.Int64 // per-automaton gauge (lazy engine only)

	stratEnabled  bool
	stratPlanned  bool
	stratNames    []string
	stratGroups   []int
	stratBytes    []atomic.Int64
	sweepsElided  atomic.Int64
	sweepProbes   atomic.Int64
	groupsUngated atomic.Int64

	segEnabled   bool
	segScans     atomic.Int64
	segSegments  atomic.Int64
	segFallbacks atomic.Int64
	segParallel  atomic.Int64
	segStitch    atomic.Int64

	lat *Latency

	timeouts     atomic.Int64
	shed         atomic.Int64
	workerPanics atomic.Int64
	cacheGrows   atomic.Int64
	pinnedScans  atomic.Int64

	profileFn atomic.Value // func() *ProfileStats
}

// NewCollector returns a Collector tracking numRules per-rule hit
// counters. numRules ≤ 0 disables per-rule tracking.
func NewCollector(numRules int) *Collector {
	c := &Collector{}
	if numRules > 0 {
		c.ruleHits = make([]atomic.Int64, numRules)
	}
	return c
}

// EnableLazy turns on the lazy-DFA section of the snapshot and records
// the static cache configuration: the number of automata, the
// per-automaton state capacity, and the total byte-class count.
func (c *Collector) EnableLazy(automata, maxStates, byteClasses int) {
	c.lazyEnabled = true
	c.lazyAutomata = automata
	c.maxStates = maxStates
	c.byteClasses = byteClasses
	c.cachedStates = make([]atomic.Int64, automata)
}

// EnablePrefilter turns on the prefilter section of the snapshot and
// records its static configuration: the number of factor-bearing rules and
// of distinct factor strings.
func (c *Collector) EnablePrefilter(filterableRules, factors int) {
	c.prefEnabled = true
	c.prefRules = filterableRules
	c.prefFactors = factors
}

// EnableAccel turns on the acceleration section of the snapshot for the
// given number of automata.
func (c *Collector) EnableAccel(automata int) {
	c.accelEnabled = true
	c.accelAutomata = automata
	c.accelStates = make([]atomic.Int64, automata)
}

// EnableStrategy turns on the planner section of the snapshot and records
// the classification outcome: names[i] labels strategy i and groups[i] is
// the number of automaton groups routed to it. planned=false marks a forced
// single-engine override.
func (c *Collector) EnableStrategy(planned bool, names []string, groups []int) {
	c.stratEnabled = true
	c.stratPlanned = planned
	c.stratNames = names
	c.stratGroups = groups
	c.stratBytes = make([]atomic.Int64, len(names))
}

// EnableSegment turns on the segment-parallel section of the snapshot.
func (c *Collector) EnableSegment() { c.segEnabled = true }

// AddSegmentScan folds one segment-parallel group execution: the number of
// segments it ran, whether its frontier budget fell back, and its
// parallel/stitch byte split. parallelBytes + stitchBytes must equal the
// bytes the same execution folded via AddBytes, so the segment partition of
// BytesScanned stays exact.
func (c *Collector) AddSegmentScan(segments, fallbacks, parallelBytes, stitchBytes int64) {
	c.segScans.Add(1)
	c.segSegments.Add(segments)
	c.segFallbacks.Add(fallbacks)
	c.segParallel.Add(parallelBytes)
	c.segStitch.Add(stitchBytes)
}

// EnableLatency turns on the latency section of the snapshot and returns
// the per-stage histogram set scan paths record into. Must be called
// before the collector is shared with scanners (build time), like the
// other Enable methods.
func (c *Collector) EnableLatency() *Latency {
	c.lat = &Latency{}
	return c.lat
}

// Latency returns the per-stage histogram set, nil when latency
// attribution is off. The exposition layer uses it to render full bucket
// distributions rather than the snapshot's percentile summary.
func (c *Collector) Latency() *Latency { return c.lat }

// AddStrategyBytes attributes n matched-against input bytes to strategy.
func (c *Collector) AddStrategyBytes(strategy int, n int64) {
	if strategy >= 0 && strategy < len(c.stratBytes) {
		c.stratBytes[strategy].Add(n)
	}
}

// AddSweepsElided adds n factor sweeps skipped entirely by the
// effectiveness tracker.
func (c *Collector) AddSweepsElided(n int64) { c.sweepsElided.Add(n) }

// AddSweepProbes adds n sweeps run as explicit re-enable probes.
func (c *Collector) AddSweepProbes(n int64) { c.sweepProbes.Add(n) }

// SetGroupsUngated records the current number of gated groups whose factor
// gate the tracker has disabled.
func (c *Collector) SetGroupsUngated(n int64) { c.groupsUngated.Store(n) }

// AddAccelScan folds one scan's accelerated-jump byte count.
func (c *Collector) AddAccelScan(bytesSkipped int64) {
	c.accelBytes.Add(bytesSkipped)
}

// SetAccelStates records the current number of accelerable cached states of
// one automaton (lazy engine only).
func (c *Collector) SetAccelStates(automaton int, n int64) {
	if automaton >= 0 && automaton < len(c.accelStates) {
		c.accelStates[automaton].Store(n)
	}
}

// AddPrefilterScan folds one gated scan's prefilter counters.
func (c *Collector) AddPrefilterScan(sweeps, factorHits, groupsSkipped, bytesSaved int64) {
	c.prefSweeps.Add(sweeps)
	c.prefHits.Add(factorHits)
	c.prefSkipped.Add(groupsSkipped)
	c.prefSaved.Add(bytesSaved)
}

// AddScans adds n completed scans.
func (c *Collector) AddScans(n int64) { c.scans.Add(n) }

// AddBytes adds n matched-against input bytes.
func (c *Collector) AddBytes(n int64) { c.bytes.Add(n) }

// AddMatches adds n match events without per-rule attribution.
func (c *Collector) AddMatches(n int64) { c.matches.Add(n) }

// AddMatch records one match for rule. Out-of-range rule ids still count
// toward the total.
func (c *Collector) AddMatch(rule int) {
	c.matches.Add(1)
	if rule >= 0 && rule < len(c.ruleHits) {
		c.ruleHits[rule].Add(1)
	}
}

// AddRuleHits adds n matches for rule to the per-rule table only (the
// caller has already counted them via AddMatches).
func (c *Collector) AddRuleHits(rule int, n int64) {
	if rule >= 0 && rule < len(c.ruleHits) {
		c.ruleHits[rule].Add(n)
	}
}

// AddLazyScan folds one lazy-mode scan's cache counters.
func (c *Collector) AddLazyScan(hits, misses, flushes, fallbacks int64) {
	c.hits.Add(hits)
	c.misses.Add(misses)
	c.flushes.Add(flushes)
	c.fallbacks.Add(fallbacks)
}

// AddTimeouts adds n scans cancelled by the scan deadline.
func (c *Collector) AddTimeouts(n int64) { c.timeouts.Add(n) }

// AddShed adds n scans rejected by overload shedding.
func (c *Collector) AddShed(n int64) { c.shed.Add(n) }

// AddWorkerPanics adds n panics contained inside parallel scan workers.
func (c *Collector) AddWorkerPanics(n int64) { c.workerPanics.Add(n) }

// AddLazyDegraded folds one lazy-mode scan's degradation-ladder counters:
// cache-grow retries and pinned whole-scan delegations. (Thrash fallbacks
// arrive via AddLazyScan and are mirrored into the Degraded section.)
func (c *Collector) AddLazyDegraded(grows, pins int64) {
	c.cacheGrows.Add(grows)
	c.pinnedScans.Add(pins)
}

// SetCachedStates records the current cache population of one automaton.
func (c *Collector) SetCachedStates(automaton int, n int64) {
	if automaton >= 0 && automaton < len(c.cachedStates) {
		c.cachedStates[automaton].Store(n)
	}
}

// SetProfileFunc installs fn as the producer of the snapshot's Profile
// section. Snapshot calls it on every invocation; fn returning nil leaves
// the section omitted. Safe for concurrent use with Snapshot.
func (c *Collector) SetProfileFunc(fn func() *ProfileStats) {
	c.profileFn.Store(fn)
}

// Snapshot returns a point-in-time copy of every counter. Counters are
// read individually, so a snapshot taken during concurrent scans is
// internally consistent per counter but not across counters.
func (c *Collector) Snapshot() Stats {
	s := Stats{
		Scans:        c.scans.Load(),
		BytesScanned: c.bytes.Load(),
		Matches:      c.matches.Load(),
	}
	if len(c.ruleHits) > 0 {
		s.RuleHits = make([]int64, len(c.ruleHits))
		for i := range c.ruleHits {
			s.RuleHits[i] = c.ruleHits[i].Load()
		}
	}
	if c.lazyEnabled {
		l := &LazyStats{
			Automata:    c.lazyAutomata,
			MaxStates:   c.maxStates,
			ByteClasses: c.byteClasses,
			Hits:        c.hits.Load(),
			Misses:      c.misses.Load(),
			Flushes:     c.flushes.Load(),
			Fallbacks:   c.fallbacks.Load(),
		}
		for i := range c.cachedStates {
			l.CachedStates += c.cachedStates[i].Load()
		}
		s.Lazy = l
	}
	if c.prefEnabled {
		s.Prefilter = &PrefilterStats{
			FilterableRules: c.prefRules,
			Factors:         c.prefFactors,
			Sweeps:          c.prefSweeps.Load(),
			FactorHits:      c.prefHits.Load(),
			GroupsSkipped:   c.prefSkipped.Load(),
			BytesSaved:      c.prefSaved.Load(),
		}
	}
	if c.accelEnabled {
		a := &AccelStats{
			Automata:     c.accelAutomata,
			BytesSkipped: c.accelBytes.Load(),
		}
		for i := range c.accelStates {
			a.AccelStates += c.accelStates[i].Load()
		}
		s.Accel = a
	}
	if c.stratEnabled {
		st := &StrategyStats{
			Planned:        c.stratPlanned,
			SweepsDisabled: c.sweepsElided.Load(),
			SweepProbes:    c.sweepProbes.Load(),
			GroupsUngated:  c.groupsUngated.Load(),
		}
		for i, name := range c.stratNames {
			if c.stratGroups[i] == 0 {
				continue
			}
			st.Groups = append(st.Groups, StrategyGroupStats{
				Strategy: name,
				Groups:   c.stratGroups[i],
				Bytes:    c.stratBytes[i].Load(),
			})
		}
		s.Strategy = st
	}
	if c.segEnabled {
		par, st := c.segParallel.Load(), c.segStitch.Load()
		s.Segment = &SegmentStats{
			SegmentedScans: c.segScans.Load(),
			Segments:       c.segSegments.Load(),
			Fallbacks:      c.segFallbacks.Load(),
			ParallelBytes:  par,
			StitchBytes:    st,
			SerialBytes:    s.BytesScanned - par - st,
		}
	}
	if fn, ok := c.profileFn.Load().(func() *ProfileStats); ok && fn != nil {
		s.Profile = fn()
	}
	if c.lat != nil {
		s.Latency = c.lat.Stats()
	}
	s.Degraded = &DegradedStats{
		ScanTimeouts:    c.timeouts.Load(),
		Shed:            c.shed.Load(),
		WorkerPanics:    c.workerPanics.Load(),
		ThrashFallbacks: c.fallbacks.Load(),
		CacheGrows:      c.cacheGrows.Load(),
		PinnedScans:     c.pinnedScans.Load(),
	}
	return s
}

// String renders the current snapshot as JSON, making Collector an
// expvar.Var: expvar.Publish("imfant", collector).
func (c *Collector) String() string {
	b, err := json.Marshal(c.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}
