package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestSnapshotBasics(t *testing.T) {
	c := NewCollector(3)
	c.AddScans(2)
	c.AddBytes(1000)
	c.AddMatch(0)
	c.AddMatch(2)
	c.AddMatch(2)
	c.AddMatch(99) // out of range: counts toward the total only
	c.AddMatches(5)
	c.AddRuleHits(1, 4)
	c.AddRuleHits(-1, 7) // ignored

	s := c.Snapshot()
	if s.Scans != 2 || s.BytesScanned != 1000 || s.Matches != 9 {
		t.Fatalf("snapshot %+v", s)
	}
	if want := []int64{1, 4, 2}; len(s.RuleHits) != 3 ||
		s.RuleHits[0] != want[0] || s.RuleHits[1] != want[1] || s.RuleHits[2] != want[2] {
		t.Fatalf("rule hits %v, want %v", s.RuleHits, want)
	}
	if s.Lazy != nil {
		t.Fatal("lazy section present without EnableLazy")
	}
}

func TestLazySection(t *testing.T) {
	c := NewCollector(1)
	c.EnableLazy(2, 4096, 17)
	c.AddLazyScan(90, 10, 1, 0)
	c.AddLazyScan(50, 50, 0, 1)
	c.SetCachedStates(0, 30)
	c.SetCachedStates(1, 12)
	c.SetCachedStates(5, 99) // out of range: ignored

	l := c.Snapshot().Lazy
	if l == nil {
		t.Fatal("lazy section missing")
	}
	if l.Automata != 2 || l.MaxStates != 4096 || l.ByteClasses != 17 {
		t.Fatalf("static config %+v", l)
	}
	if l.Hits != 140 || l.Misses != 60 || l.Flushes != 1 || l.Fallbacks != 1 {
		t.Fatalf("counters %+v", l)
	}
	if l.CachedStates != 42 {
		t.Fatalf("CachedStates = %d, want 42", l.CachedStates)
	}
	if got := l.HitRate(); got < 0.69 || got > 0.71 {
		t.Fatalf("HitRate = %v, want 0.7", got)
	}
	if (&LazyStats{}).HitRate() != 0 {
		t.Fatal("empty HitRate not 0")
	}
}

// TestExpvarString checks the expvar.Var contract: String renders valid
// JSON that round-trips into a Stats.
func TestExpvarString(t *testing.T) {
	c := NewCollector(2)
	c.EnableLazy(1, 8, 3)
	c.AddScans(1)
	c.AddBytes(64)
	c.AddMatch(1)
	c.AddLazyScan(60, 4, 0, 0)
	c.SetCachedStates(0, 5)

	var s Stats
	if err := json.Unmarshal([]byte(c.String()), &s); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
	if s.Scans != 1 || s.BytesScanned != 64 || s.Matches != 1 ||
		s.RuleHits[1] != 1 || s.Lazy == nil || s.Lazy.Hits != 60 || s.Lazy.CachedStates != 5 {
		t.Fatalf("round-trip %+v (lazy %+v)", s, s.Lazy)
	}
}

// TestConcurrentFold checks that concurrent writers land every count —
// scanners fold whole-scan totals from many goroutines.
func TestConcurrentFold(t *testing.T) {
	c := NewCollector(4)
	c.EnableLazy(4, 16, 8)
	var wg sync.WaitGroup
	const workers, reps = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				c.AddScans(1)
				c.AddBytes(10)
				c.AddMatch(w % 4)
				c.AddLazyScan(9, 1, 0, 0)
				c.SetCachedStates(w%4, int64(w))
			}
		}(w)
	}
	wg.Wait()
	s := c.Snapshot()
	const n = workers * reps
	if s.Scans != n || s.BytesScanned != 10*n || s.Matches != n {
		t.Fatalf("snapshot %+v", s)
	}
	var hits int64
	for _, h := range s.RuleHits {
		hits += h
	}
	if hits != n {
		t.Fatalf("rule hits sum %d, want %d", hits, n)
	}
	if s.Lazy.Hits != 9*n || s.Lazy.Misses != n {
		t.Fatalf("lazy %+v", s.Lazy)
	}
}
