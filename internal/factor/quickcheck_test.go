package factor

import (
	"bytes"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/mfsa"
	"repro/internal/nfa"
	"repro/internal/rex"
)

// The soundness invariant under test: whenever Extract returns a factor,
// that string occurs in EVERY match of the expression — equivalently, an
// input not containing the factor cannot contain a match. A violation here
// would make the production prefilter drop real matches, so this property
// is checked three ways: against strings sampled from the pattern's own
// language, against the full engine as oracle, and via a fuzz target.

// genExpr generates a random POSIX ERE over a small alphabet, exercising
// every AST op Extract handles: literals, classes, concatenation,
// alternation, all repeat shapes, and (at the top level only) anchors.
func genExpr(rng *rand.Rand, depth int) string {
	var b strings.Builder
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(genConcat(rng, depth))
	}
	return b.String()
}

func genConcat(rng *rand.Rand, depth int) string {
	var b strings.Builder
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		b.WriteString(genUnit(rng, depth))
	}
	return b.String()
}

func genUnit(rng *rand.Rand, depth int) string {
	atom := genAtom(rng, depth)
	switch rng.Intn(8) {
	case 0:
		return atom + "?"
	case 1:
		return atom + "*"
	case 2:
		return atom + "+"
	case 3:
		m := 1 + rng.Intn(3)
		return atom + "{" + strconv.Itoa(m) + "}"
	case 4:
		m := 1 + rng.Intn(3)
		return atom + "{" + strconv.Itoa(m) + "," + strconv.Itoa(m+rng.Intn(3)) + "}"
	default:
		return atom
	}
}

func genAtom(rng *rand.Rand, depth int) string {
	if depth > 0 && rng.Intn(4) == 0 {
		return "(" + genExpr(rng, depth-1) + ")"
	}
	switch rng.Intn(4) {
	case 0:
		return "[abc]"
	case 1:
		return "[a-d]"
	default:
		runLen := 1 + rng.Intn(4)
		var b strings.Builder
		for i := 0; i < runLen; i++ {
			b.WriteByte(byte('a' + rng.Intn(5)))
		}
		return b.String()
	}
}

// genPattern wraps genExpr with optional anchors at the pattern ends (the
// only placement the generator uses, mirroring real rulesets).
func genPattern(rng *rand.Rand) string {
	p := genExpr(rng, 2)
	if rng.Intn(5) == 0 {
		p = "^" + p
	}
	if rng.Intn(5) == 0 {
		p = p + "$"
	}
	return p
}

// sampleMatch appends one string of the expression's language to out.
// Anchors contribute nothing positionally: the sampled string is a whole
// match, so ^/$ at the pattern ends are satisfied by construction.
func sampleMatch(n *rex.Node, rng *rand.Rand, out []byte) []byte {
	switch n.Op {
	case rex.OpLit:
		members := make([]byte, 0, 8)
		for c := 0; c < 256; c++ {
			if n.Set.Contains(byte(c)) {
				members = append(members, byte(c))
			}
		}
		if len(members) > 0 {
			out = append(out, members[rng.Intn(len(members))])
		}
	case rex.OpConcat:
		for _, s := range n.Subs {
			out = sampleMatch(s, rng, out)
		}
	case rex.OpAlt:
		out = sampleMatch(n.Subs[rng.Intn(len(n.Subs))], rng, out)
	case rex.OpRepeat:
		k := n.Min
		if n.Max == rex.Inf {
			k += rng.Intn(3)
		} else if n.Max > n.Min {
			k += rng.Intn(n.Max - n.Min + 1)
		}
		for i := 0; i < k; i++ {
			out = sampleMatch(n.Subs[0], rng, out)
		}
	}
	return out // OpEmpty, OpAnchor: nothing
}

// compileOne lowers a single pattern to an executable program, bypassing
// every prefilter layer so unsoundness cannot hide behind the gating it
// would corrupt.
func compileOne(pattern string) (*engine.Program, error) {
	ast, err := rex.Parse(pattern)
	if err != nil {
		return nil, err
	}
	a, err := nfa.Build(ast)
	if err != nil {
		return nil, err
	}
	a.Pattern = pattern
	if err := nfa.Optimize(a); err != nil {
		return nil, err
	}
	z, err := mfsa.Merge([]*nfa.NFA{a})
	if err != nil {
		return nil, err
	}
	return engine.NewProgram(z), nil
}

// TestFactorSampledMatchesContainFactor samples strings from random
// patterns' own languages and checks each contains the extracted factor.
func TestFactorSampledMatchesContainFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 3000; iter++ {
		pattern := genPattern(rng)
		ast, err := rex.Parse(pattern)
		if err != nil {
			t.Fatalf("generated unparseable pattern %q: %v", pattern, err)
		}
		minLen := 1 + rng.Intn(3)
		f, ok := Extract(ast, minLen)
		if !ok {
			continue
		}
		if len(f) < minLen {
			t.Fatalf("pattern %q: factor %q shorter than minLen %d", pattern, f, minLen)
		}
		for s := 0; s < 5; s++ {
			match := string(sampleMatch(ast, rng, nil))
			if !strings.Contains(match, f) {
				t.Fatalf("pattern %q: sampled match %q does not contain factor %q",
					pattern, match, f)
			}
		}
	}
}

// TestFactorOracleSoundness checks the production-facing direction against
// the full engine: an input without the factor must yield zero matches.
// Inputs mix pure junk with sampled matches embedded in junk (so both
// directions of the gate see traffic).
func TestFactorOracleSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	junk := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(6))
		}
		return b
	}
	for iter := 0; iter < 400; iter++ {
		pattern := genPattern(rng)
		ast, err := rex.Parse(pattern)
		if err != nil {
			t.Fatalf("generated unparseable pattern %q: %v", pattern, err)
		}
		f, ok := Extract(ast, 1+rng.Intn(3))
		if !ok {
			continue
		}
		p, err := compileOne(pattern)
		if err != nil {
			continue // loop-expansion budget; irrelevant to the property
		}
		inputs := [][]byte{
			junk(64),
			append(append(junk(20), sampleMatch(ast, rng, nil)...), junk(20)...),
		}
		for _, in := range inputs {
			res := engine.Run(p, in, engine.Config{})
			if res.Matches > 0 && !bytes.Contains(in, []byte(f)) {
				t.Fatalf("pattern %q factor %q: %d matches in input %q lacking the factor",
					pattern, f, res.Matches, in)
			}
		}
	}
}

// TestFactorEdgeCases pins Extract's output on the shapes that historically
// trip factor extraction: counted repeats, branching, optionals, anchors.
func TestFactorEdgeCases(t *testing.T) {
	cases := []struct {
		pattern string
		minLen  int
		want    string // "" = no factor
	}{
		{"a{2,5}", 2, "aa"},      // counted repeat: only the mandatory floor
		{"a{2,5}", 3, ""},        // ...and no more than that
		{"a{3}b", 3, "aaab"},     // exact repeat extends the run
		{"(ab|ac)", 1, ""},       // alternation guarantees no single literal
		{"(ab|ac)d{2}", 2, "dd"}, // ...but the mandatory tail still factors
		{"x(y)?z", 1, "x"},       // optional breaks the run on both sides
		{"x(y)?z", 2, ""},        //
		{"xy+z", 2, "xy"},        // plus keeps the first mandatory copy
		{"^abc$", 3, "abc"},      // anchors pass factors through
		{"^abc", 3, "abc"},       //
		{"abc$", 3, "abc"},       //
		{"ab[0-9]cd", 2, "ab"},   // class splits runs; longest side wins ties by order
		{"ab[0-9]cde", 3, "cde"}, //
		{"(ab){2}", 3, "abab"},   // literal group repeat
		{"(ab){2,3}", 4, "abab"}, // mandatory floor of a bounded group repeat
		{"a*bc", 2, "bc"},        // star contributes nothing
		{"", 1, ""},              // empty pattern
	}
	for _, c := range cases {
		ast, err := rex.Parse(c.pattern)
		if err != nil {
			t.Fatalf("parse %q: %v", c.pattern, err)
		}
		got, ok := Extract(ast, c.minLen)
		if c.want == "" {
			if ok {
				t.Errorf("Extract(%q, %d) = %q, want no factor", c.pattern, c.minLen, got)
			}
			continue
		}
		if !ok || got != c.want {
			t.Errorf("Extract(%q, %d) = %q, %v; want %q", c.pattern, c.minLen, got, ok, c.want)
		}
	}
}

// FuzzFactorSoundness fuzzes the oracle property with arbitrary patterns
// and inputs: a reported match in an input lacking the extracted factor is
// a prefilter-corrupting bug.
func FuzzFactorSoundness(f *testing.F) {
	f.Add("a{2,5}", []byte("aaaa"))
	f.Add("(ab|ac)", []byte("acab"))
	f.Add("x(y)?z", []byte("xzxyz"))
	f.Add("^abc$", []byte("abc"))
	f.Add("needle[a-z]+", []byte("haystack needlex"))
	f.Fuzz(func(t *testing.T, pattern string, input []byte) {
		if len(pattern) > 64 || len(input) > 4096 {
			t.Skip()
		}
		ast, err := rex.Parse(pattern)
		if err != nil {
			t.Skip()
		}
		fac, ok := Extract(ast, 1)
		if !ok {
			t.Skip()
		}
		p, err := compileOne(pattern)
		if err != nil {
			t.Skip()
		}
		res := engine.Run(p, input, engine.Config{})
		if res.Matches > 0 && !bytes.Contains(input, []byte(fac)) {
			t.Fatalf("pattern %q factor %q: %d matches in input %q lacking the factor",
				pattern, fac, res.Matches, input)
		}
	})
}
