// Package factor extracts required literal factors from parsed regular
// expressions — the compile-time half of Hyperscan-style decomposition
// (Wang et al., the paper's related work [6]). A factor is a string that
// occurs in every match of the RE, so its absence from an input proves the
// rule cannot match there. The package depends only on the rex front-end,
// so both the compilation pipeline and the runtime prefilter can use it
// without layering cycles.
package factor

import "repro/internal/rex"

// MinLen is the default shortest factor worth prefiltering on; shorter
// strings hit too often to skip any work.
const MinLen = 3

// Extract returns the longest literal string guaranteed to occur in every
// match of the expression, or ok=false when no factor of at least minLen
// bytes exists. Only the mandatory concatenation spine contributes:
// alternations, optional parts (min-0 repeats) and character classes break
// factors, while counted repeats of literals extend them.
func Extract(ast *rex.Node, minLen int) (string, bool) {
	best := ""
	cur := make([]byte, 0, 32)
	flush := func() {
		if len(cur) > len(best) {
			best = string(cur)
		}
		cur = cur[:0]
	}
	var walk func(n *rex.Node)
	walk = func(n *rex.Node) {
		switch n.Op {
		case rex.OpLit:
			if b, ok := n.Set.IsSingle(); ok {
				cur = append(cur, b)
				return
			}
			flush()
		case rex.OpConcat:
			for _, s := range n.Subs {
				walk(s)
			}
		case rex.OpRepeat:
			if n.Min == 0 {
				flush()
				return
			}
			// The body occurs at least Min times consecutively; a
			// literal body extends the run Min times, then breaks
			// the run unless the repetition is exact.
			if lit, ok := literalString(n.Subs[0]); ok {
				for i := 0; i < n.Min; i++ {
					cur = append(cur, lit...)
				}
				if n.Max != n.Min {
					flush()
				}
				return
			}
			// Non-literal mandatory body: contributes its own
			// factors but breaks the surrounding run.
			flush()
			walk(n.Subs[0])
			flush()
		case rex.OpAlt, rex.OpAnchor, rex.OpEmpty:
			flush()
		}
	}
	walk(ast)
	flush()
	if len(best) >= minLen {
		return best, true
	}
	return "", false
}

func literalString(n *rex.Node) (string, bool) {
	switch n.Op {
	case rex.OpLit:
		if b, ok := n.Set.IsSingle(); ok {
			return string(b), true
		}
	case rex.OpConcat:
		out := make([]byte, 0, len(n.Subs))
		for _, s := range n.Subs {
			b, ok := s.Set.IsSingle()
			if s.Op != rex.OpLit || !ok {
				return "", false
			}
			out = append(out, b)
		}
		return string(out), true
	}
	return "", false
}
