package imfant

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faultpoint"
)

// checkNoGoroutineLeak registers a cleanup asserting the goroutine count
// returns to its pre-test baseline — the leak detector for the parallel
// scan paths (cancellation, contained panics, shedding), whose workers must
// always be joined.
func checkNoGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d before, %d after\n%s",
			before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
	})
}

// TestCompileStrictTypedError checks that strict compilation rejects the
// whole ruleset with a *CompileError attributing the failing rule and
// stage.
func TestCompileStrictTypedError(t *testing.T) {
	_, err := Compile([]string{"ab+", "(", "cd"}, Options{})
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CompileError, got %T: %v", err, err)
	}
	if ce.Rule != 1 || ce.Pattern != "(" || ce.Stage != StageFrontEnd {
		t.Fatalf("bad attribution: %+v", ce)
	}
	if IsBudget(err) {
		t.Fatalf("syntax error misclassified as budget violation: %v", err)
	}
}

// TestCompileBudgetClassification checks that resource blowups — as opposed
// to syntax errors — satisfy IsBudget through the public error chain.
func TestCompileBudgetClassification(t *testing.T) {
	for _, pat := range []string{
		"a{1,100000}", // repetition bound
		strings.Repeat("(", 300) + "a" + strings.Repeat(")", 300), // nesting depth
		"(a{500}){500}", // state blowup during loop expansion
	} {
		_, err := Compile([]string{pat}, Options{})
		if err == nil {
			t.Fatalf("%.40q: expected a budget violation", pat)
		}
		if !IsBudget(err) {
			t.Fatalf("%.40q: violation does not wrap ErrBudget: %v", pat, err)
		}
		var ce *CompileError
		if !errors.As(err, &ce) || ce.Rule != 0 {
			t.Fatalf("%.40q: want typed rule error, got %v", pat, err)
		}
	}
}

// TestCompileLaxAcceptance is the issue's acceptance scenario: a ruleset
// mixing a repetition blowup (a{1,100000}) and an unparsable rule with good
// rules compiles under default limits, reporting the bad rules as
// RuleErrors while the good rules match correctly under their original
// indices.
func TestCompileLaxAcceptance(t *testing.T) {
	pats := []string{"GET /admin", "a{1,100000}", "(", "cmd\\.exe"}
	rs, ruleErrs, err := CompileLax(pats, Options{})
	if err != nil {
		t.Fatalf("CompileLax: %v", err)
	}
	if len(ruleErrs) != 2 {
		t.Fatalf("want 2 rule errors, got %v", ruleErrs)
	}
	if ruleErrs[0].Rule != 1 || !IsBudget(&ruleErrs[0]) {
		t.Fatalf("rule 1 should fail its repetition budget: %+v", ruleErrs[0])
	}
	if ruleErrs[1].Rule != 2 || ruleErrs[1].Stage != StageFrontEnd {
		t.Fatalf("rule 2 should fail parsing: %+v", ruleErrs[1])
	}
	input := []byte("x GET /admin y cmd.exe z")
	var got []Match
	for _, m := range rs.FindAll(input) {
		got = append(got, m)
	}
	if len(got) != 2 || got[0].Rule != 0 || got[1].Rule != 3 {
		t.Fatalf("survivors should match under original indices, got %v", got)
	}
	if got[0].Pattern != "GET /admin" || got[1].Pattern != "cmd\\.exe" {
		t.Fatalf("survivor patterns wrong: %v", got)
	}
}

// TestCompileLaxDifferential checks the fault-isolation guarantee: the
// survivors of a lax compilation behave byte-identically to compiling them
// alone — same automata sizes, same match events modulo the original rule
// indices.
func TestCompileLaxDifferential(t *testing.T) {
	good := []string{"ab+", "c[de]f", "gh$", "^ij", "k{2,4}"}
	mixed := []string{good[0], "(", good[1], "a{1,100000}", good[2], "[", good[3], good[4]}
	origIdx := []int{0, 2, 4, 6, 7} // positions of good[i] within mixed

	lax, ruleErrs, err := CompileLax(mixed, Options{})
	if err != nil {
		t.Fatalf("CompileLax: %v", err)
	}
	if len(ruleErrs) != 3 {
		t.Fatalf("want 3 rule errors, got %v", ruleErrs)
	}
	alone, err := Compile(good, Options{})
	if err != nil {
		t.Fatalf("Compile(good): %v", err)
	}
	if lax.States() != alone.States() || lax.Transitions() != alone.Transitions() {
		t.Fatalf("lax survivors built different automata: %d/%d states, %d/%d transitions",
			lax.States(), alone.States(), lax.Transitions(), alone.Transitions())
	}

	input := []byte("xabbbx cdf cef gh ij kkk ab\nij gh")
	var laxMatches, aloneMatches []Match
	lax.Scan(input, func(m Match) { laxMatches = append(laxMatches, m) })
	alone.Scan(input, func(m Match) {
		// Remap the standalone indices onto the original ruleset.
		m.Rule = origIdx[m.Rule]
		m.Pattern = mixed[m.Rule]
		aloneMatches = append(aloneMatches, m)
	})
	if !reflect.DeepEqual(laxMatches, aloneMatches) {
		t.Fatalf("match streams diverge:\nlax:   %v\nalone: %v", laxMatches, aloneMatches)
	}
}

// TestCompileLaxAllRulesFail checks the no-survivor case surfaces as a
// ruleset-level error alongside the per-rule reports.
func TestCompileLaxAllRulesFail(t *testing.T) {
	rs, ruleErrs, err := CompileLax([]string{"(", "["}, Options{})
	if err == nil || rs != nil {
		t.Fatalf("want ruleset-level failure, got rs=%v err=%v", rs, err)
	}
	if len(ruleErrs) != 2 {
		t.Fatalf("want 2 rule errors, got %v", ruleErrs)
	}
}

// TestFindAllContextCancelled is the issue's acceptance scenario: a
// context cancelled mid-scan stops a multi-megabyte scan promptly with
// context.Canceled.
func TestFindAllContextCancelled(t *testing.T) {
	rs, err := Compile([]string{"needle", "ab+c"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := make([]byte, 8<<20) // 8 MiB of 'a': no matches, full traversal
	for i := range input {
		input[i] = 'a'
	}

	// Pre-cancelled context: the scan must not consume the input at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rs.FindAllContext(ctx, input); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	// Cancelled from the match callback: the scan stops at the next
	// checkpoint, keeping the matches streamed so far.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	in2 := append([]byte("needle"), input...)
	seen := 0
	err = rs.ScanContext(ctx2, in2, func(m Match) {
		seen++
		cancel2()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled after callback cancel, got %v", err)
	}
	if seen == 0 {
		t.Fatal("match streamed before the cancellation was lost")
	}

	// The uncancelled scan still works on the same Ruleset.
	if got, err := rs.FindAllContext(context.Background(), in2); err != nil || len(got) == 0 {
		t.Fatalf("healthy scan after cancellation: %v, %v", got, err)
	}
}

// TestCountContextPartial checks CountContext surfaces both the partial
// count and the cancellation.
func TestCountContextPartial(t *testing.T) {
	rs, err := Compile([]string{"aa"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := rs.CountContext(ctx, []byte(strings.Repeat("a", 1<<20)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n != 0 {
		t.Fatalf("pre-cancelled scan counted %d matches", n)
	}
}

// TestCountParallelContextCancelled checks the multi-threaded path honors
// cancellation: every worker stops at its next checkpoint.
func TestCountParallelContextCancelled(t *testing.T) {
	rs, err := Compile([]string{"ab", "cd", "ef"}, Options{MergeFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rs.CountParallelContext(ctx, make([]byte, 1<<20), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestStreamWriteAfterClose is the regression test for the io.Writer
// contract: a Write after Close must fail instead of silently reporting
// the bytes as consumed.
func TestStreamWriteAfterClose(t *testing.T) {
	rs, err := Compile([]string{"ab"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sm := rs.NewStreamMatcher(nil)
	if n, err := sm.Write([]byte("xabx")); n != 4 || err != nil {
		t.Fatalf("healthy Write = (%d, %v)", n, err)
	}
	if err := sm.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	n, err := sm.Write([]byte("ab"))
	if n != 0 || !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("Write after Close = (%d, %v), want (0, io.ErrClosedPipe)", n, err)
	}
	if sm.Matches() != 1 {
		t.Fatalf("rejected write mutated the match count: %d", sm.Matches())
	}
	if err := sm.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestStreamContextCancelPartialWrite checks the stream-level checkpoints:
// a context cancelled mid-Write makes Write report the consumed prefix and
// the context's error, and the matcher stays failed (sticky Err) without
// flushing a bogus stream end.
func TestStreamContextCancelPartialWrite(t *testing.T) {
	rs, err := Compile([]string{"ab"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sm := rs.NewStreamMatcherContext(ctx, func(Match) { cancel() })

	chunk := append([]byte("ab"), make([]byte, 64<<10)...)
	n, werr := sm.Write(chunk)
	if !errors.Is(werr, context.Canceled) {
		t.Fatalf("want context.Canceled, got (%d, %v)", n, werr)
	}
	if n <= 0 || n >= len(chunk) {
		t.Fatalf("want a partial consumed count, got %d of %d", n, len(chunk))
	}
	if sm.Matches() != 1 {
		t.Fatalf("match before cancellation lost: %d", sm.Matches())
	}
	if n2, err2 := sm.Write([]byte("ab")); n2 != 0 || !errors.Is(err2, context.Canceled) {
		t.Fatalf("failed matcher accepted input: (%d, %v)", n2, err2)
	}
	if err := sm.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close on failed matcher = %v", err)
	}
	if !errors.Is(sm.Err(), context.Canceled) {
		t.Fatalf("Err() = %v", sm.Err())
	}
}

// TestStreamCloseDuringConcurrentWrite pins the Close-during-concurrent-
// Feed contract: with one goroutine writing and another closing, every
// Write either completes in full — its matches delivered before Close
// returns — or loses the race, consumes nothing, and fails with the sticky
// io.ErrClosedPipe. Afterwards the match count equals the consumed chunks
// exactly: no partial-match loss, no torn chunks. Run under -race this also
// proves the mutex covers every shared field.
func TestStreamCloseDuringConcurrentWrite(t *testing.T) {
	rs := MustCompile([]string{"needle"}, Options{})
	chunk := []byte("xx needle yy") // one match per chunk, no cross-chunk overlap
	for round := 0; round < 50; round++ {
		sm := rs.NewStreamMatcher(nil)
		var consumed int64
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				n, err := sm.Write(chunk)
				if err != nil {
					if n != 0 {
						t.Errorf("failed Write reported %d bytes consumed", n)
					}
					if !errors.Is(err, io.ErrClosedPipe) {
						t.Errorf("Write after close = %v, want io.ErrClosedPipe", err)
					}
					return
				}
				if n != len(chunk) {
					t.Errorf("torn write: %d of %d bytes", n, len(chunk))
					return
				}
				atomic.AddInt64(&consumed, 1)
			}
		}()
		if round%2 == 0 {
			runtime.Gosched() // vary the race window
		}
		if err := sm.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}
		<-done
		if got, want := sm.Matches(), atomic.LoadInt64(&consumed); got != want {
			t.Fatalf("round %d: %d matches for %d fully-consumed chunks — partial-match loss",
				round, got, want)
		}
	}
}

// TestScanTimeoutBlock checks the block-scan rung of the degradation
// ladder: a scan overrunning Options.ScanTimeout is cut off at the next
// checkpoint with the typed ErrScanTimeout, counted in Stats().Degraded.
func TestScanTimeoutBlock(t *testing.T) {
	rs := MustCompile([]string{"needle"}, Options{ScanTimeout: time.Nanosecond})
	input := bytes.Repeat([]byte("a"), 1<<20)
	sc := rs.NewScanner()
	_, err := sc.FindAllContext(context.Background(), input)
	if !errors.Is(err, ErrScanTimeout) {
		t.Fatalf("want ErrScanTimeout, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("ErrScanTimeout must wrap context.DeadlineExceeded for errors.Is interop")
	}
	if got := sc.Stats().Degraded.ScanTimeouts; got != 1 {
		t.Fatalf("scanner Degraded.ScanTimeouts = %d, want 1", got)
	}
	if got := rs.Stats().Degraded.ScanTimeouts; got != 1 {
		t.Fatalf("ruleset Degraded.ScanTimeouts = %d, want 1", got)
	}
	// A caller cancellation takes precedence over the deadline and keeps its
	// own type.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rs.FindAllContext(ctx, input); !errors.Is(err, context.Canceled) ||
		errors.Is(err, ErrScanTimeout) {
		t.Fatalf("pre-cancelled scan = %v, want plain context.Canceled", err)
	}
}

// TestStreamWriteScanTimeout checks the per-Write budget: a Write wedged by
// an injected chunk stall reports the consumed prefix with ErrScanTimeout,
// and the stream fails sticky like a cancellation.
func TestStreamWriteScanTimeout(t *testing.T) {
	// Prefilter off: on factor-free input a gated automaton would never be
	// fed at all, so the stall would have nothing to wedge.
	rs := MustCompile([]string{"needle"}, Options{
		ScanTimeout: 5 * time.Millisecond, Prefilter: PrefilterOff,
	})
	rs.setFaultInjector(faultpoint.New(faultpoint.Every(faultpoint.ChunkStall, 1)).
		WithStall(10 * time.Millisecond))
	sm := rs.NewStreamMatcher(nil)
	big := make([]byte, 3*engine.DefaultCheckpointEvery)
	n, err := sm.Write(big)
	if !errors.Is(err, ErrScanTimeout) {
		t.Fatalf("Write = (%d, %v), want ErrScanTimeout", n, err)
	}
	if n <= 0 || n >= len(big) {
		t.Fatalf("want a partial consumed count, got %d of %d", n, len(big))
	}
	if _, err := sm.Write([]byte("x")); !errors.Is(err, ErrScanTimeout) {
		t.Fatalf("timed-out stream accepted input: %v", err)
	}
	if err := sm.Close(); !errors.Is(err, ErrScanTimeout) {
		t.Fatalf("Close = %v, want sticky ErrScanTimeout", err)
	}
	if got := sm.Stats().Degraded.ScanTimeouts; got != 1 {
		t.Fatalf("stream Degraded.ScanTimeouts = %d, want 1", got)
	}
}

// TestCountParallelOverloadShed checks the bounded-work-queue rung: with
// every slot busy and the queue full, CountParallel is shed fail-fast with
// the typed ErrOverloaded, counted in Stats().Degraded.Shed — and the shed
// path leaks no goroutines.
func TestCountParallelOverloadShed(t *testing.T) {
	checkNoGoroutineLeak(t)
	rs := MustCompile([]string{"ab", "cd"}, Options{MergeFactor: 1, MaxConcurrentScans: 1})
	rs.setFaultInjector(faultpoint.New(faultpoint.Every(faultpoint.ChunkStall, 1)).
		WithStall(100 * time.Millisecond))
	input := bytes.Repeat([]byte("abcd"), 1024)
	done := make(chan error, 1)
	go func() {
		_, err := rs.CountParallel(input, 2)
		done <- err
	}()
	for i := 0; len(rs.sched.slots) == 0 && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	if len(rs.sched.slots) == 0 {
		t.Fatal("first scan never acquired its slot")
	}
	if _, err := rs.CountParallel(input, 2); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second scan = %v, want ErrOverloaded", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("slot-holding scan failed: %v", err)
	}
	if got := rs.Stats().Degraded.Shed; got != 1 {
		t.Fatalf("Degraded.Shed = %d, want 1", got)
	}
	// After the holder finished, admission recovers.
	if _, err := rs.CountParallel(input, 2); err != nil {
		t.Fatalf("scan after recovery: %v", err)
	}
}

// TestCountParallelQueueThenShed checks the queue tier between admission
// and shedding: one waiter is queued and eventually served; the next is
// shed immediately.
func TestCountParallelQueueThenShed(t *testing.T) {
	checkNoGoroutineLeak(t)
	rs := MustCompile([]string{"ab", "cd"}, Options{
		MergeFactor: 1, MaxConcurrentScans: 1, MaxQueuedScans: 1,
	})
	rs.setFaultInjector(faultpoint.New(faultpoint.Every(faultpoint.ChunkStall, 1)).
		WithStall(100 * time.Millisecond))
	input := bytes.Repeat([]byte("abcd"), 1024)
	first := make(chan error, 1)
	go func() {
		_, err := rs.CountParallel(input, 2)
		first <- err
	}()
	for i := 0; len(rs.sched.slots) == 0 && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	queued := make(chan error, 1)
	go func() {
		_, err := rs.CountParallel(input, 2)
		queued <- err
	}()
	for i := 0; rs.sched.queued.Load() == 0 && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	if rs.sched.queued.Load() == 0 {
		t.Fatal("second scan never queued")
	}
	if _, err := rs.CountParallel(input, 2); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third scan = %v, want ErrOverloaded (queue full)", err)
	}
	if err := <-first; err != nil {
		t.Fatalf("slot holder: %v", err)
	}
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter should have been served: %v", err)
	}
	if got := rs.Stats().Degraded.Shed; got != 1 {
		t.Fatalf("Degraded.Shed = %d, want 1", got)
	}
}

// TestCountParallelPanicNoLeak checks that contained worker panics —
// injected through the WorkerPanic fault point — join all workers and leak
// no goroutines, across repeated storms.
func TestCountParallelPanicNoLeak(t *testing.T) {
	checkNoGoroutineLeak(t)
	// The forced engine keeps every group on the parallel workers — the
	// planner would route these all-literal groups to inline AC counting,
	// where there is no worker to panic.
	rs := MustCompile([]string{"ab", "cd", "ef"}, Options{MergeFactor: 1, Engine: EngineIMFAnt})
	rs.setFaultInjector(faultpoint.New(faultpoint.Every(faultpoint.WorkerPanic, 2)))
	input := bytes.Repeat([]byte("abcdef"), 512)
	var errs int
	for i := 0; i < 10; i++ {
		if _, err := rs.CountParallel(input, 3); err != nil {
			var wp *engine.WorkerPanicError
			if !errors.As(err, &wp) {
				t.Fatalf("iteration %d: untyped error: %v", i, err)
			}
			errs++
		}
	}
	if errs == 0 {
		t.Fatal("panic schedule never fired")
	}
	if got := rs.Stats().Degraded.WorkerPanics; got < int64(errs) {
		t.Fatalf("Degraded.WorkerPanics = %d, want >= %d", got, errs)
	}
}

// TestStreamPreCancelled checks a matcher under an already-cancelled
// context consumes nothing.
func TestStreamPreCancelled(t *testing.T) {
	rs, err := Compile([]string{"ab"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sm := rs.NewStreamMatcherContext(ctx, nil)
	if n, err := sm.Write([]byte("abab")); n != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	if sm.Matches() != 0 {
		t.Fatalf("cancelled matcher matched: %d", sm.Matches())
	}
}
